module tlc

go 1.22
