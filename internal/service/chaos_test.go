package service

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"tlc"
	"tlc/internal/faultinject"
)

// joinQuery exercises a value join so physical.valuejoin faults fire on the
// evaluation path: each person matches only itself on age, so it returns 3.
const joinQuery = `FOR $a IN document("site.xml")//person
                   FOR $b IN document("site.xml")//person
                   WHERE $a/age = $b/age RETURN $a/name`

// TestInjectedFaultTaxonomy arms each service-layer injection point in turn
// and checks the fault surfaces with the right HTTP status and taxonomy
// code: injected faults are internal errors, never blamed on the client.
func TestInjectedFaultTaxonomy(t *testing.T) {
	t.Cleanup(faultinject.Disable)
	// A high breaker threshold keeps repeated deliberate 500s from
	// tripping the breakers mid-table.
	_, ts := newServer(t, Config{BreakerThreshold: 1000})
	cases := []struct {
		point string
		hit   func() (*http.Response, []byte)
	}{
		{faultinject.PointServiceQuery, func() (*http.Response, []byte) {
			return postJSON(t, ts.URL+"/query", map[string]any{"query": siteQuery})
		}},
		{faultinject.PointServiceExplain, func() (*http.Response, []byte) {
			return postJSON(t, ts.URL+"/explain", map[string]any{"query": siteQuery})
		}},
		{faultinject.PointServiceProfile, func() (*http.Response, []byte) {
			return postJSON(t, ts.URL+"/profile", map[string]any{"query": siteQuery})
		}},
		{faultinject.PointServiceLoad, func() (*http.Response, []byte) {
			resp, err := http.Post(ts.URL+"/load?name=x.xml", "application/xml", strings.NewReader("<r/>"))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			return resp, readAll(t, resp)
		}},
		{faultinject.PointMatcher, func() (*http.Response, []byte) {
			return postJSON(t, ts.URL+"/query", map[string]any{"query": siteQuery})
		}},
		{faultinject.PointValueJoin, func() (*http.Response, []byte) {
			return postJSON(t, ts.URL+"/query", map[string]any{"query": joinQuery})
		}},
		{faultinject.PointStoreLoad, func() (*http.Response, []byte) {
			resp, err := http.Post(ts.URL+"/load?name=y.xml", "application/xml", strings.NewReader("<r/>"))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			return resp, readAll(t, resp)
		}},
	}
	for _, c := range cases {
		if err := faultinject.Enable(c.point + "=error"); err != nil {
			t.Fatal(err)
		}
		resp, body := c.hit()
		if resp.StatusCode != http.StatusInternalServerError {
			t.Errorf("%s: status = %d (%s), want 500", c.point, resp.StatusCode, body)
			continue
		}
		e := decode[errorResponse](t, body)
		if e.Code != "internal" {
			t.Errorf("%s: code = %q, want internal", c.point, e.Code)
		}
		if e.Error == "" {
			t.Errorf("%s: empty error message", c.point)
		}
	}
	// With injection cleared the very same requests succeed: faults never
	// poison server state.
	faultinject.Disable()
	if resp, body := postJSON(t, ts.URL+"/query", map[string]any{"query": joinQuery}); resp.StatusCode != http.StatusOK {
		t.Errorf("post-chaos query: status = %d (%s)", resp.StatusCode, body)
	}
}

func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestHandlerPanicContained arms a panic at the /query handler itself and
// checks the barrier converts it to a 500 while the process — and the
// server — keep serving, with the recovery visible in /varz.
func TestHandlerPanicContained(t *testing.T) {
	t.Cleanup(faultinject.Disable)
	_, ts := newServer(t, Config{BreakerThreshold: 1000})
	_, vbefore := getBody(t, ts.URL+"/varz")
	before := decode[varz](t, vbefore).PanicsRecovered

	if err := faultinject.Enable(faultinject.PointServiceQuery + "=panic,times=1"); err != nil {
		t.Fatal(err)
	}
	resp, body := postJSON(t, ts.URL+"/query", map[string]any{"query": siteQuery})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d (%s), want 500", resp.StatusCode, body)
	}
	e := decode[errorResponse](t, body)
	if e.Code != "internal" || !strings.Contains(e.Error, "panic") {
		t.Errorf("error = %+v, want an internal panic report", e)
	}

	// The injection window is spent: the next request works.
	resp, body = postJSON(t, ts.URL+"/query", map[string]any{"query": siteQuery})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after panic: status = %d (%s), want 200", resp.StatusCode, body)
	}
	_, vafter := getBody(t, ts.URL+"/varz")
	if after := decode[varz](t, vafter).PanicsRecovered; after <= before {
		t.Errorf("panics_recovered = %d, want > %d", after, before)
	}
}

// TestBudgetViaRequestFields checks a client-set resource budget aborts
// with 422 budget_exceeded, shows up in the /varz governor counters, and
// never leaks into the next, unbudgeted request.
func TestBudgetViaRequestFields(t *testing.T) {
	_, ts := newServer(t, Config{})
	cartesian := `FOR $a IN document("site.xml")//person
	              FOR $b IN document("site.xml")//person
	              RETURN <pair>{$a/name}{$b/name}</pair>`
	_, vbefore := getBody(t, ts.URL+"/varz")
	before := decode[varz](t, vbefore).Governor["result_cardinality"]

	resp, body := postJSON(t, ts.URL+"/query", map[string]any{"query": cartesian, "max_result": 3})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d (%s), want 422", resp.StatusCode, body)
	}
	e := decode[errorResponse](t, body)
	if e.Code != "budget_exceeded" {
		t.Errorf("code = %q, want budget_exceeded", e.Code)
	}
	if !strings.Contains(e.Error, "result_cardinality") {
		t.Errorf("error = %q, want the tripped resource named", e.Error)
	}

	// Budgets are per query: the same query without one completes.
	resp, body = postJSON(t, ts.URL+"/query", map[string]any{"query": cartesian})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("unbudgeted rerun: status = %d (%s)", resp.StatusCode, body)
	}
	if out := decode[queryResponse](t, body); out.Count != 9 {
		t.Errorf("count = %d, want the full 9-pair product", out.Count)
	}

	_, vafter := getBody(t, ts.URL+"/varz")
	if after := decode[varz](t, vafter).Governor["result_cardinality"]; after <= before {
		t.Errorf("governor result_cardinality kills = %d, want > %d", after, before)
	}
}

// TestEvalDeadline504Code checks an evaluation that outlives its request
// deadline comes back 504 with code "timeout": a slow injection inside the
// matcher holds evaluation past a 50ms deadline, and the operator poll
// notices on its next check.
func TestEvalDeadline504Code(t *testing.T) {
	t.Cleanup(faultinject.Disable)
	_, ts := newServer(t, Config{})
	if err := faultinject.Enable(faultinject.PointMatcher + "=slow,delay=250ms"); err != nil {
		t.Fatal(err)
	}
	resp, body := postJSON(t, ts.URL+"/query", map[string]any{"query": siteQuery, "timeout_ms": 50})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d (%s), want 504", resp.StatusCode, body)
	}
	if e := decode[errorResponse](t, body); e.Code != "timeout" {
		t.Errorf("code = %q, want timeout", e.Code)
	}
}

// TestShedCodesAndRetryAfter reruns the overload scenario checking the
// robustness contract on top of the statuses: both shed responses carry
// taxonomy codes and a Retry-After hint, and /varz counts them as shed.
func TestShedCodesAndRetryAfter(t *testing.T) {
	db := newSiteDB(t)
	srv, err := New(Config{DB: db, MaxConcurrent: 1, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{})
	block := make(chan struct{})
	var once sync.Once
	srv.preEval = func() {
		once.Do(func() {
			close(entered)
			<-block
		})
	}
	ts := newTestListener(t, srv)

	aDone := make(chan int, 1)
	go func() {
		resp, _ := postJSON(t, ts+"/query", map[string]any{"query": siteQuery})
		aDone <- resp.StatusCode
	}()
	<-entered

	type shed struct {
		status int
		code   string
		retry  string
	}
	bDone := make(chan shed, 1)
	go func() {
		resp, body := postJSON(t, ts+"/query", map[string]any{"query": siteQuery, "timeout_ms": 300})
		bDone <- shed{resp.StatusCode, decode[errorResponse](t, body).Code, resp.Header.Get("Retry-After")}
	}()
	waitFor(t, func() bool { return srv.limiter.Queued() == 1 })

	resp, body := postJSON(t, ts+"/query", map[string]any{"query": siteQuery, "timeout_ms": 300})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("queue-full status = %d (%s), want 429", resp.StatusCode, body)
	}
	if e := decode[errorResponse](t, body); e.Code != "overloaded" {
		t.Errorf("queue-full code = %q, want overloaded", e.Code)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}

	b := <-bDone
	if b.status != http.StatusServiceUnavailable || b.code != "unavailable" {
		t.Errorf("queued-deadline response = %+v, want 503 unavailable", b)
	}
	if b.retry == "" {
		t.Error("503 without Retry-After")
	}
	close(block)
	if code := <-aDone; code != http.StatusOK {
		t.Errorf("request A status = %d, want 200", code)
	}

	_, vbody := getBody(t, ts+"/varz")
	if v := decode[varz](t, vbody); v.Shed != 2 {
		t.Errorf("varz shed_total = %d, want 2", v.Shed)
	}
}

// TestBreakerOpensShedsAndRecovers drives the /query breaker through its
// whole cycle: repeated internal errors open it, an open breaker sheds
// with 503 + Retry-After without touching the engine, other endpoints stay
// up, and after the cooldown a successful probe closes it again.
func TestBreakerOpensShedsAndRecovers(t *testing.T) {
	t.Cleanup(faultinject.Disable)
	_, ts := newServer(t, Config{BreakerThreshold: 2, BreakerCooldown: 300 * time.Millisecond})
	if err := faultinject.Enable(faultinject.PointServiceQuery + "=error"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		resp, body := postJSON(t, ts.URL+"/query", map[string]any{"query": siteQuery})
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("request %d: status = %d (%s), want 500", i, resp.StatusCode, body)
		}
	}

	// Threshold reached: the breaker sheds without evaluating.
	resp, body := postJSON(t, ts.URL+"/query", map[string]any{"query": siteQuery})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("open breaker: status = %d (%s), want 503", resp.StatusCode, body)
	}
	if e := decode[errorResponse](t, body); e.Code != "unavailable" || !strings.Contains(e.Error, "circuit breaker") {
		t.Errorf("open breaker response = %+v", e)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("open breaker shed without Retry-After")
	}
	_, vbody := getBody(t, ts.URL+"/varz")
	if v := decode[varz](t, vbody); v.Breakers["query"] != "open" {
		t.Errorf("varz breakers = %v, want query open", v.Breakers)
	}

	// The breaker is per endpoint: /explain still answers.
	if resp, body := postJSON(t, ts.URL+"/explain", map[string]any{"query": siteQuery}); resp.StatusCode != http.StatusOK {
		t.Errorf("explain during open query breaker: status = %d (%s)", resp.StatusCode, body)
	}

	// Cooldown passes, the fault is gone, the half-open probe succeeds.
	faultinject.Disable()
	time.Sleep(400 * time.Millisecond)
	resp, body = postJSON(t, ts.URL+"/query", map[string]any{"query": siteQuery})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("probe after cooldown: status = %d (%s), want 200", resp.StatusCode, body)
	}
	_, vbody = getBody(t, ts.URL+"/varz")
	if v := decode[varz](t, vbody); v.Breakers["query"] != "closed" {
		t.Errorf("varz breakers after recovery = %v, want query closed", v.Breakers)
	}
}

// TestSerialFallbackRecoversParallelFailure injects a one-shot panic into
// the value join of a parallel run: the first (parallel) attempt dies on a
// contained internal error, the server retries once on the serial
// evaluator, and the client sees a plain 200.
func TestSerialFallbackRecoversParallelFailure(t *testing.T) {
	t.Cleanup(faultinject.Disable)
	_, ts := newServer(t, Config{})
	if err := faultinject.Enable(faultinject.PointValueJoin + "=panic,times=1"); err != nil {
		t.Fatal(err)
	}
	resp, body := postJSON(t, ts.URL+"/query", map[string]any{"query": joinQuery, "parallelism": 4})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d (%s), want 200 via serial fallback", resp.StatusCode, body)
	}
	if out := decode[queryResponse](t, body); out.Count != 3 {
		t.Errorf("count = %d, want 3", out.Count)
	}
	_, vbody := getBody(t, ts.URL+"/varz")
	if v := decode[varz](t, vbody); v.SerialFallbacks != 1 {
		t.Errorf("varz serial_fallbacks = %d, want 1", v.SerialFallbacks)
	}
}

// TestVarzFaultsVisibleOnlyWhenArmed checks /varz advertises the armed
// injection points (an operator must be able to tell a chaos run from an
// outage) and hides the section entirely in normal operation.
func TestVarzFaultsVisibleOnlyWhenArmed(t *testing.T) {
	t.Cleanup(faultinject.Disable)
	_, ts := newServer(t, Config{BreakerThreshold: 1000})
	if err := faultinject.Enable(faultinject.PointServiceQuery + "=error,times=1"); err != nil {
		t.Fatal(err)
	}
	postJSON(t, ts.URL+"/query", map[string]any{"query": siteQuery})
	_, vbody := getBody(t, ts.URL+"/varz")
	v := decode[varz](t, vbody)
	st, ok := v.Faults[faultinject.PointServiceQuery]
	if !ok {
		t.Fatalf("varz faults = %v, want %s present", v.Faults, faultinject.PointServiceQuery)
	}
	if st.Fired != 1 || st.Mode != "error" {
		t.Errorf("fault counts = %+v", st)
	}
	faultinject.Disable()
	_, vbody = getBody(t, ts.URL+"/varz")
	if v := decode[varz](t, vbody); v.Faults != nil {
		t.Errorf("varz faults = %v after disable, want absent", v.Faults)
	}
}

// TestChaosBarrage hammers the server with concurrent queries and
// cache-invalidating loads while probabilistic faults fire throughout.
// Every response must be a well-formed member of the taxonomy, the
// process must survive, goroutines must not leak, and after disarming the
// results must be byte-identical to a pre-chaos baseline.
func TestChaosBarrage(t *testing.T) {
	t.Cleanup(faultinject.Disable)
	db := newSiteDB(t)
	srv, err := New(Config{DB: db, MaxConcurrent: 4, QueueDepth: 64, BreakerThreshold: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	ts := newTestListener(t, srv)

	baselineQ := `FOR $p IN document("site.xml")//person ORDER BY $p/age RETURN $p/name`
	resp, body := postJSON(t, ts+"/query", map[string]any{"query": baselineQ})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("baseline: %d (%s)", resp.StatusCode, body)
	}
	baseline := decode[queryResponse](t, body).Results

	http.DefaultClient.CloseIdleConnections()
	time.Sleep(20 * time.Millisecond)
	baseGoroutines := runtime.NumGoroutine()

	spec := faultinject.PointMatcher + "=error,p=0.3,seed=11;" +
		faultinject.PointValueJoin + "=panic,p=0.2,seed=23;" +
		faultinject.PointPlanCacheFill + "=error,p=0.1,seed=5;" +
		faultinject.PointServiceQuery + "=slow,delay=1ms"
	if err := faultinject.Enable(spec); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 12; i++ {
				q := joinQuery
				if i%3 == 0 {
					q = baselineQ
				}
				resp, body := postJSON(t, ts+"/query", map[string]any{"query": q})
				switch resp.StatusCode {
				case http.StatusOK:
				case http.StatusInternalServerError:
					if e := decode[errorResponse](t, body); e.Code != "internal" {
						t.Errorf("500 with code %q (%s)", e.Code, body)
					}
				default:
					t.Errorf("unexpected status %d (%s)", resp.StatusCode, body)
				}
			}
		}(g)
	}
	// Concurrent loads invalidate the plan cache mid-barrage: under -race
	// this doubles as the invalidation-vs-evaluation race check.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 6; i++ {
			resp, err := http.Post(fmt.Sprintf("%s/load?name=doc%d.xml", ts, i),
				"application/xml", strings.NewReader("<r><x>1</x></r>"))
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("load status = %d", resp.StatusCode)
			}
		}
	}()
	wg.Wait()

	// Disarm: the same baseline query must return the same bytes.
	faultinject.Disable()
	resp, body = postJSON(t, ts+"/query", map[string]any{"query": baselineQ})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-chaos baseline: %d (%s)", resp.StatusCode, body)
	}
	after := decode[queryResponse](t, body).Results
	if len(after) != len(baseline) {
		t.Fatalf("post-chaos count = %d, want %d", len(after), len(baseline))
	}
	for i := range after {
		if after[i] != baseline[i] {
			t.Errorf("result %d differs after chaos: %q vs %q", i, after[i], baseline[i])
		}
	}

	// No goroutine leak: after idle connections close and in-flight work
	// drains, the count returns to (near) the pre-barrage level.
	http.DefaultClient.CloseIdleConnections()
	waitFor(t, func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= baseGoroutines+8
	})
}

// newSiteDB returns a fresh database with the shared 3-person document.
func newSiteDB(t *testing.T) *tlc.Database {
	t.Helper()
	db := tlc.Open()
	if err := db.LoadXMLString("site.xml", siteXML); err != nil {
		t.Fatal(err)
	}
	return db
}

// newTestListener mounts an already-constructed Server (tests that need to
// install the preEval hook or poke internals build it themselves) and
// returns its base URL.
func newTestListener(t *testing.T, srv *Server) string {
	t.Helper()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}
