// Package service exposes a tlc.Database as a concurrent HTTP/JSON query
// service. The server composes four pieces the engine was extended for:
// context cancellation threaded through plan evaluation (request
// deadlines stop operator loops, not just handler returns), a
// prepared-plan LRU cache (see plancache) shared by concurrent requests,
// admission control with a bounded wait queue (429/503 shedding under
// overload), and /varz metrics with latency quantiles.
//
// Endpoints:
//
//	POST /query     {"query": "...", "engine": "TLC", ...} -> results
//	POST /explain   same body -> plan text
//	POST /profile   same body -> per-operator profile text
//	POST /load      ?name=doc.xml with an XML body, or ?name=&xmark=1
//	POST /update    {"doc": "...", "op": "insert", "target": "...", ...}
//	POST /snapshot  ?dir=/path — write a columnar snapshot of the store
//	                (with a WAL attached, also a durable checkpoint:
//	                rotate, snapshot, truncate)
//	GET  /documents loaded document names and versions
//	GET  /healthz   liveness (alias /livez): the process is up
//	GET  /readyz    readiness: 503 while replaying the WAL or draining
//	GET  /varz      metrics JSON
//	GET  /faultz    fault-injection counters only (lock-free; stays
//	                responsive while an injected stall wedges /varz)
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"tlc"
	"tlc/internal/failure"
	"tlc/internal/faultinject"
	"tlc/internal/governor"
	"tlc/internal/plancache"
	"tlc/internal/seq"
)

// Config configures a Server. The zero value of every field selects a
// sensible default.
type Config struct {
	// DB is the database to serve. Required.
	DB *tlc.Database
	// MaxConcurrent bounds concurrently evaluating requests
	// (default GOMAXPROCS).
	MaxConcurrent int
	// QueueDepth bounds requests waiting for an evaluation slot
	// (default 2*MaxConcurrent). Beyond it requests get 429.
	QueueDepth int
	// DefaultTimeout is the per-request evaluation deadline when the
	// request does not set one (default 30s).
	DefaultTimeout time.Duration
	// MaxTimeout caps request-supplied deadlines (default 5m).
	MaxTimeout time.Duration
	// CacheSize is the plan cache capacity in plans (default 128).
	CacheSize int
	// Parallelism is the default intra-query parallelism for requests
	// that do not set one (default 1, the serial evaluator).
	Parallelism int
	// Limits is the default per-query resource budget (zero = ungoverned).
	// Requests may set their own limits, which override the corresponding
	// defaults; exceeding any budget aborts that query with a 422.
	Limits tlc.Limits
	// BreakerThreshold is how many consecutive internal (500-class) errors
	// open an endpoint's circuit breaker (default 5).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker sheds before letting a
	// probe through (default 5s).
	BreakerCooldown time.Duration
	// UpdateRetries is how many times /update attempts an update that
	// keeps losing its commit race before surfacing the 409 (default 3;
	// 1 disables retrying). Each retry waits a jittered exponential
	// backoff so competing writers de-synchronize.
	UpdateRetries int
	// UpdateRetryBackoff is the base backoff before the first retry
	// (default 2ms, doubling per attempt, capped at 1s).
	UpdateRetryBackoff time.Duration
}

func (c *Config) fillDefaults() {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2 * c.MaxConcurrent
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 128
	}
	if c.Parallelism <= 0 {
		c.Parallelism = 1
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.UpdateRetries <= 0 {
		c.UpdateRetries = 3
	}
	if c.UpdateRetryBackoff <= 0 {
		c.UpdateRetryBackoff = 2 * time.Millisecond
	}
}

// Server handles the HTTP endpoints. Create with New, mount with Handler.
type Server struct {
	cfg     Config
	db      *tlc.Database
	cache   *plancache.Cache
	limiter *Limiter
	metrics *Metrics
	start   time.Time

	// Loads are serialized against in-flight queries per shard: a load
	// takes the write half of only its target shard's lock
	// (db.ShardLock), and a query takes the read half of just the shards
	// its documents route to — so a slow load stalls only the queries
	// that actually read the shard being loaded. The locks live on the
	// database (per shard), not here; see lockShards/handleLoad.

	// breakers holds one circuit breaker per evaluation endpoint, keyed by
	// endpoint name (query, explain, profile, load, snapshot, update).
	breakers map[string]*breaker
	// Snapshot gauges for /varz: snapshots written since start, and the
	// byte size and wall time of the most recent one.
	snapshotsWritten  atomic.Int64
	lastSnapshotBytes atomic.Int64
	lastSnapshotWall  atomic.Int64 // nanoseconds
	// shed counts requests refused by admission control (429 or queued
	// past deadline) and serialFallbacks counts parallel runs retried
	// serially after an internal error.
	shed            atomic.Int64
	serialFallbacks atomic.Int64

	// recovering marks the WAL-replay window between process start and
	// EndRecovery: /readyz reports 503 and mutating endpoints shed, while
	// liveness and read-only endpoints stay up. draining marks the
	// graceful-shutdown window with the same readiness effect.
	recovering atomic.Bool
	draining   atomic.Bool
	// recApplied/recSkipped/recDurNs expose replay progress in /varz and
	// /readyz while recovering (and the final totals afterwards).
	recApplied atomic.Int64
	recSkipped atomic.Int64
	recDurNs   atomic.Int64
	// updateRetries counts /update commit-race retries that were absorbed
	// by the handler's backoff loop rather than surfaced as 409s.
	updateRetries atomic.Int64

	// preEval, when set by tests, runs after admission and plan lookup,
	// immediately before evaluation — it lets overload tests hold all
	// evaluation slots deterministically.
	preEval func()
	// updateOverride, when set by tests, replaces db.UpdateContext in
	// handleUpdate — it lets retry tests script conflict sequences.
	updateOverride func(context.Context, tlc.UpdateRequest, ...tlc.Option) (tlc.UpdateResult, error)
}

// New returns a Server for cfg.
func New(cfg Config) (*Server, error) {
	if cfg.DB == nil {
		return nil, errors.New("service: Config.DB is required")
	}
	cfg.fillDefaults()
	breakers := make(map[string]*breaker, 4)
	for _, ep := range []string{"query", "explain", "profile", "load", "snapshot", "update"} {
		breakers[ep] = newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown)
	}
	return &Server{
		cfg:      cfg,
		db:       cfg.DB,
		cache:    plancache.New(cfg.CacheSize),
		limiter:  NewLimiter(cfg.MaxConcurrent, cfg.QueueDepth),
		metrics:  NewMetrics(),
		start:    time.Now(),
		breakers: breakers,
	}, nil
}

// Handler returns the HTTP handler serving all endpoints.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.instrument(s.protect("query", s.handleQuery)))
	mux.HandleFunc("/explain", s.instrument(s.protect("explain", s.handleExplain)))
	mux.HandleFunc("/profile", s.instrument(s.protect("profile", s.handleProfile)))
	mux.HandleFunc("/load", s.instrument(s.protect("load", s.handleLoad)))
	mux.HandleFunc("/snapshot", s.instrument(s.protect("snapshot", s.handleSnapshot)))
	mux.HandleFunc("/update", s.instrument(s.protect("update", s.handleUpdate)))
	mux.HandleFunc("/documents", s.instrument(s.handleDocuments))
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/livez", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/varz", s.handleVarz)
	mux.HandleFunc("/faultz", s.handleFaultz)
	return mux
}

// handleFaultz reports the armed fault-injection points and their hit
// counters. Unlike /varz it reads nothing but faultinject's atomics, so
// it stays responsive while an injected stall holds store or WAL locks —
// the kill-and-restart chaos harness polls it to time a SIGKILL inside a
// crash window that wedges every other introspection endpoint.
func (s *Server) handleFaultz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErrorCode(w, http.StatusMethodNotAllowed, codeUserError, "use GET")
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"active": faultinject.Active(),
		"faults": faultinject.Stats(),
	})
}

// BeginRecovery puts the server in the recovering state: /readyz reports
// 503 and mutating endpoints shed with code "recovering" while the WAL
// replays. Call before the listener starts accepting so a load balancer
// never routes a write to a half-replayed store.
func (s *Server) BeginRecovery() { s.recovering.Store(true) }

// RecoveryProgress records replay progress (the AttachWAL OnProgress
// hook); /varz and /readyz surface it live.
func (s *Server) RecoveryProgress(applied, skipped int) {
	s.recApplied.Store(int64(applied))
	s.recSkipped.Store(int64(skipped))
}

// EndRecovery leaves the recovering state, recording the final replay
// totals.
func (s *Server) EndRecovery(applied, skipped int, dur time.Duration) {
	s.recApplied.Store(int64(applied))
	s.recSkipped.Store(int64(skipped))
	s.recDurNs.Store(int64(dur))
	s.recovering.Store(false)
}

// Recovering reports whether the server is replaying its WAL.
func (s *Server) Recovering() bool { return s.recovering.Load() }

// SetDraining marks the server as shutting down: /readyz flips to 503 so
// load balancers stop routing new work, while in-flight requests drain.
func (s *Server) SetDraining() { s.draining.Store(true) }

// gateRecovery sheds a mutating request while the store is replaying its
// WAL or the process is draining; reads stay up. Returns true when the
// request was shed.
func (s *Server) gateRecovery(w http.ResponseWriter, endpoint string) bool {
	state := ""
	switch {
	case s.recovering.Load():
		state = "recovering"
	case s.draining.Load():
		state = "draining"
	default:
		return false
	}
	w.Header().Set("Retry-After", "1")
	writeErrorCode(w, http.StatusServiceUnavailable, codeRecovering, "%s: node is %s", endpoint, state)
	return true
}

// statusWriter remembers the status code for metrics and whether a
// response has started (the panic barrier must not write a second one).
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(p)
}

func (s *Server) instrument(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		begin := time.Now()
		h(sw, r)
		s.metrics.Observe(sw.status, time.Since(begin))
	}
}

// protect wraps an evaluation endpoint in its containment shell: the
// endpoint's circuit breaker in front, a panic barrier around the handler
// (a handler panic becomes a 500, not a dead process), and outcome
// recording behind — only 500-class results trip the breaker; shed and
// overload responses don't count either way.
func (s *Server) protect(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	br := s.breakers[endpoint]
	return func(w http.ResponseWriter, r *http.Request) {
		if ok, retry := br.Allow(); !ok {
			w.Header().Set("Retry-After", retryAfter(retry))
			writeErrorCode(w, http.StatusServiceUnavailable, codeUnavailable,
				"circuit breaker open for /%s after repeated internal errors", endpoint)
			return
		}
		defer func() {
			if rec := recover(); rec != nil {
				err := failure.FromPanic("service."+endpoint, rec)
				if sw, ok := w.(*statusWriter); !ok || !sw.wrote {
					writeErrorCode(w, http.StatusInternalServerError, codeInternal, "%v", err)
				}
			}
			if sw, ok := w.(*statusWriter); ok {
				switch {
				case sw.status == http.StatusInternalServerError:
					br.Record(true)
				case sw.status != http.StatusTooManyRequests && sw.status != http.StatusServiceUnavailable:
					br.Record(false)
				}
			}
		}()
		h(w, r)
	}
}

// retryAfter renders a Retry-After header value: whole seconds, at least 1.
// sleepBackoff waits the attempt-th retry backoff: base doubled per
// attempt, capped at a second, plus up to 50% random jitter so competing
// writers spread out instead of colliding again in lockstep. It returns
// false if ctx expired first.
func sleepBackoff(ctx context.Context, base time.Duration, attempt int) bool {
	d := base << uint(attempt-1)
	if d > time.Second {
		d = time.Second
	}
	d += time.Duration(rand.Int63n(int64(d)/2 + 1))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

func retryAfter(d time.Duration) string {
	secs := int(d / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// queryRequest is the JSON body of /query, /explain and /profile.
type queryRequest struct {
	// Query is the XQuery text. Required.
	Query string `json:"query"`
	// Engine selects the evaluation engine by name (TLC, OPT, GTP, TAX,
	// NAV); empty means TLC.
	Engine string `json:"engine,omitempty"`
	// Parallelism overrides the server's default intra-query parallelism.
	Parallelism int `json:"parallelism,omitempty"`
	// NoPlanner disables the cost-based planner (ablation runs).
	NoPlanner bool `json:"no_planner,omitempty"`
	// TimeoutMS overrides the server's default evaluation deadline,
	// capped at Config.MaxTimeout.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// MaxNodes, MaxBytes and MaxResult override the server's default
	// resource budget for this query (0 keeps the server default; see
	// Config.Limits). Exceeding a budget aborts with 422 budget_exceeded.
	MaxNodes  int64 `json:"max_nodes,omitempty"`
	MaxBytes  int64 `json:"max_bytes,omitempty"`
	MaxResult int64 `json:"max_result,omitempty"`
	// MaxWallMS caps evaluation wall time as a budget (422) rather than a
	// deadline (504).
	MaxWallMS int `json:"max_wall_ms,omitempty"`
}

// limits resolves the request's effective resource budget: the server
// default with any request-set budget overriding its field.
func (s *Server) limits(req *queryRequest) tlc.Limits {
	l := s.cfg.Limits
	if req.MaxNodes > 0 {
		l.MaxArenaNodes = req.MaxNodes
	}
	if req.MaxBytes > 0 {
		l.MaxArenaBytes = req.MaxBytes
	}
	if req.MaxResult > 0 {
		l.MaxResultCard = req.MaxResult
	}
	if req.MaxWallMS > 0 {
		l.MaxWall = time.Duration(req.MaxWallMS) * time.Millisecond
	}
	return l
}

type queryResponse struct {
	Engine    string   `json:"engine"`
	Count     int      `json:"count"`
	Results   []string `json:"results"`
	CacheHit  bool     `json:"cache_hit"`
	ElapsedMS float64  `json:"elapsed_ms"`
}

type errorResponse struct {
	Error string `json:"error"`
	// Code is the machine-readable taxonomy class (see errors.go).
	Code string `json:"code,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

func writeErrorCode(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...), Code: code})
}

// decodeQueryRequest parses and validates the shared request body.
func decodeQueryRequest(w http.ResponseWriter, r *http.Request) (*queryRequest, bool) {
	if r.Method != http.MethodPost {
		writeErrorCode(w, http.StatusMethodNotAllowed, codeUserError, "POST required")
		return nil, false
	}
	var req queryRequest
	dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
	if err := dec.Decode(&req); err != nil {
		writeErrorCode(w, http.StatusBadRequest, codeUserError, "bad request body: %v", err)
		return nil, false
	}
	if req.Query == "" {
		writeErrorCode(w, http.StatusBadRequest, codeUserError, "missing \"query\"")
		return nil, false
	}
	if _, ok := tlc.ParseEngine(req.Engine); !ok {
		writeErrorCode(w, http.StatusBadRequest, codeUserError, "unknown engine %q", req.Engine)
		return nil, false
	}
	return &req, true
}

// admit applies the deadline and admission control shared by the three
// evaluation endpoints. On success the returned release func must be
// called when evaluation finishes; it is nil when admission failed (the
// error response has been written already).
func (s *Server) admit(w http.ResponseWriter, r *http.Request, req *queryRequest) (context.Context, context.CancelFunc, func(), bool) {
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	if err := s.limiter.Acquire(ctx); err != nil {
		cancel()
		s.shed.Add(1)
		// Shed responses tell the client when to come back: the queue is
		// sized for ~one evaluation's worth of waiting.
		w.Header().Set("Retry-After", retryAfter(time.Second))
		switch {
		case errors.Is(err, ErrQueueFull):
			writeErrorCode(w, http.StatusTooManyRequests, codeOverloaded, "overloaded: admission queue full")
		default:
			writeErrorCode(w, http.StatusServiceUnavailable, codeUnavailable, "overloaded: timed out waiting for an evaluation slot")
		}
		return nil, nil, nil, false
	}
	return ctx, cancel, s.limiter.Release, true
}

// queryShards resolves the shards a query's documents route to, as a
// sorted, deduplicated index list. When the query cannot be parsed (the
// compile path will report the real error) the footprint defaults to all
// shards — the conservative scope.
func (s *Server) queryShards(query string) []int {
	n := s.db.NumShards()
	all := func() []int {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	docs, err := tlc.QueryDocuments(query)
	if err != nil || len(docs) == 0 {
		return all()
	}
	seen := make(map[int]bool, len(docs))
	var out []int
	for _, name := range docs {
		sh := s.db.ShardOfDocument(name)
		if !seen[sh] {
			seen[sh] = true
			out = append(out, sh)
		}
	}
	sort.Ints(out)
	return out
}

// rlockShards takes the read half of each listed shard lock in ascending
// index order (the deadlock-free acquisition order shared with loads) and
// returns the matching unlock.
func (s *Server) rlockShards(shards []int) func() {
	for _, sh := range shards {
		s.db.ShardLock(sh).RLock()
	}
	return func() {
		for i := len(shards) - 1; i >= 0; i-- {
			s.db.ShardLock(shards[i]).RUnlock()
		}
	}
}

// parallelism resolves the request's effective intra-query parallelism.
func (s *Server) parallelism(req *queryRequest) int {
	if req.Parallelism > 0 {
		return req.Parallelism
	}
	return s.cfg.Parallelism
}

// plan looks the request's plan up in the cache (compiling on a miss),
// with an explicit parallelism so the serial-fallback retry can ask for
// the same query at parallelism 1.
func (s *Server) plan(ctx context.Context, req *queryRequest, par int) (*tlc.Prepared, bool, error) {
	engine, _ := tlc.ParseEngine(req.Engine)
	return s.cache.Load(ctx, s.db, plancache.Key{
		Query:       req.Query,
		Engine:      engine,
		PlannerOff:  req.NoPlanner,
		Parallelism: par,
		Limits:      s.limits(req),
	})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	req, ok := decodeQueryRequest(w, r)
	if !ok {
		return
	}
	if err := faultinject.Hit(faultinject.PointServiceQuery); err != nil {
		status, code := classify(err)
		writeErrorCode(w, status, code, "query: %v", err)
		return
	}
	ctx, cancel, release, ok := s.admit(w, r, req)
	if !ok {
		return
	}
	defer cancel()
	defer release()

	defer s.rlockShards(s.queryShards(req.Query))()

	begin := time.Now()
	par := s.parallelism(req)
	prep, hit, err := s.plan(ctx, req, par)
	if err != nil {
		if internalClass(err) {
			status, code := classify(err)
			writeErrorCode(w, status, code, "compile: %v", err)
			return
		}
		writeErrorCode(w, http.StatusBadRequest, codeUserError, "compile: %v", err)
		return
	}
	if s.preEval != nil {
		s.preEval()
	}
	res, err := s.db.RunContext(ctx, prep)
	if err != nil && internalClass(err) && par > 1 {
		// A parallel run died on an internal error (contained panic or
		// injected fault). Concurrency bugs are the most likely culprit, so
		// retry the query once on the serial evaluator — it shares no
		// goroutine machinery with the path that just failed.
		s.serialFallbacks.Add(1)
		if sprep, _, serr := s.plan(ctx, req, 1); serr == nil {
			res, err = s.db.RunContext(ctx, sprep)
			prep = sprep
		}
	}
	if err != nil {
		status, code := classify(err)
		writeErrorCode(w, status, code, "evaluate: %v", err)
		return
	}
	out := queryResponse{
		Engine:    prep.Engine().String(),
		Count:     res.Len(),
		Results:   make([]string, res.Len()),
		CacheHit:  hit,
		ElapsedMS: float64(time.Since(begin)) / float64(time.Millisecond),
	}
	for i := range out.Results {
		out.Results[i] = res.TreeXML(i)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	req, ok := decodeQueryRequest(w, r)
	if !ok {
		return
	}
	if err := faultinject.Hit(faultinject.PointServiceExplain); err != nil {
		status, code := classify(err)
		writeErrorCode(w, status, code, "explain: %v", err)
		return
	}
	ctx, cancel, release, ok := s.admit(w, r, req)
	if !ok {
		return
	}
	defer cancel()
	defer release()

	defer s.rlockShards(s.queryShards(req.Query))()

	engine, _ := tlc.ParseEngine(req.Engine)
	opts := []tlc.Option{tlc.WithEngine(engine), tlc.WithPlanner(!req.NoPlanner)}
	plan, err := s.db.ExplainContext(ctx, req.Query, opts...)
	if err != nil {
		if internalClass(err) {
			status, code := classify(err)
			writeErrorCode(w, status, code, "explain: %v", err)
			return
		}
		writeErrorCode(w, http.StatusBadRequest, codeUserError, "explain: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"engine": engine.String(), "plan": plan})
}

func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	req, ok := decodeQueryRequest(w, r)
	if !ok {
		return
	}
	if err := faultinject.Hit(faultinject.PointServiceProfile); err != nil {
		status, code := classify(err)
		writeErrorCode(w, status, code, "profile: %v", err)
		return
	}
	ctx, cancel, release, ok := s.admit(w, r, req)
	if !ok {
		return
	}
	defer cancel()
	defer release()

	defer s.rlockShards(s.queryShards(req.Query))()

	engine, _ := tlc.ParseEngine(req.Engine)
	opts := []tlc.Option{
		tlc.WithEngine(engine),
		tlc.WithPlanner(!req.NoPlanner),
		tlc.WithLimits(s.limits(req)),
	}
	if s.preEval != nil {
		s.preEval()
	}
	prof, err := s.db.ProfileContext(ctx, req.Query, opts...)
	if err != nil {
		status, code := classify(err)
		if code == codeQueryError {
			// Profile compiles and evaluates in one call; plain query errors
			// here are overwhelmingly compile errors, kept at 400 as before.
			status, code = http.StatusBadRequest, codeUserError
		}
		writeErrorCode(w, status, code, "profile: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"engine": engine.String(), "profile": prof})
}

// handleLoad loads a document: an XML body under ?name=doc.xml, or a
// generated XMark document with ?name=doc.xml&xmark=<factor> and an empty
// body. The load takes the write half of only the target shard's lock,
// draining in-flight queries on that shard and blocking new ones for the
// duration — queries whose documents live on other shards are unaffected.
func (s *Server) handleLoad(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErrorCode(w, http.StatusMethodNotAllowed, codeUserError, "POST required")
		return
	}
	if s.gateRecovery(w, "load") {
		return
	}
	if err := faultinject.Hit(faultinject.PointServiceLoad); err != nil {
		status, code := classify(err)
		writeErrorCode(w, status, code, "load: %v", err)
		return
	}
	name := r.URL.Query().Get("name")
	if name == "" {
		writeErrorCode(w, http.StatusBadRequest, codeUserError, "missing ?name=")
		return
	}
	var factor float64
	if f := r.URL.Query().Get("xmark"); f != "" {
		var err error
		factor, err = strconv.ParseFloat(f, 64)
		if err != nil || factor <= 0 {
			writeErrorCode(w, http.StatusBadRequest, codeUserError, "bad ?xmark= factor %q", f)
			return
		}
	}

	mu := s.db.ShardLock(s.db.ShardOfDocument(name))
	mu.Lock()
	defer mu.Unlock()
	var err error
	if factor > 0 {
		err = s.db.LoadXMark(name, factor)
	} else {
		err = s.db.LoadXML(name, io.LimitReader(r.Body, 1<<28))
	}
	if err != nil {
		if internalClass(err) {
			status, code := classify(err)
			writeErrorCode(w, status, code, "load: %v", err)
			return
		}
		writeErrorCode(w, http.StatusBadRequest, codeUserError, "load: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"documents":  s.db.Documents(),
		"generation": s.db.Generation(),
	})
}

// handleSnapshot writes a columnar snapshot of the current store to the
// directory named by ?dir=. The write captures a consistent document set
// without blocking queries or loads (the store's directory is swapped
// atomically), so the handler takes no shard locks.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErrorCode(w, http.StatusMethodNotAllowed, codeUserError, "POST required")
		return
	}
	if s.gateRecovery(w, "snapshot") {
		return
	}
	dir := r.URL.Query().Get("dir")
	if dir == "" {
		writeErrorCode(w, http.StatusBadRequest, codeUserError, "missing ?dir=")
		return
	}
	start := time.Now()
	info, err := s.db.Snapshot(dir)
	if err != nil {
		status, code := classify(err)
		writeErrorCode(w, status, code, "snapshot: %v", err)
		return
	}
	wall := time.Since(start)
	s.snapshotsWritten.Add(1)
	s.lastSnapshotBytes.Store(info.Bytes)
	s.lastSnapshotWall.Store(int64(wall))
	writeJSON(w, http.StatusOK, map[string]any{
		"dir":         info.Dir,
		"bytes":       info.Bytes,
		"documents":   info.Docs,
		"shard_files": info.ShardFiles,
		"wall_ms":     wall.Milliseconds(),
	})
}

// updateRequest is the JSON body of /update.
type updateRequest struct {
	// Doc names the loaded document to mutate. Required.
	Doc string `json:"doc"`
	// Op is the update kind: insert, delete or replace. Required.
	Op string `json:"op"`
	// Target addresses the node the op applies to: an absolute path like
	// /site/people/person[2]/@id, or #N for a node ordinal. Required.
	Target string `json:"target"`
	// Position places an inserted fragment relative to the target (into,
	// first, before, after); empty means into. Ignored for delete/replace.
	Position string `json:"position,omitempty"`
	// Fragment is the XML fragment to insert or replace with; delete takes
	// none.
	Fragment string `json:"fragment,omitempty"`
	// TimeoutMS, MaxNodes and MaxBytes mirror the query body fields: the
	// write cost (new version's nodes and bytes) is charged against the
	// same governor budgets, and exceeding one aborts the update with a
	// 422 budget_exceeded before anything commits.
	TimeoutMS int   `json:"timeout_ms,omitempty"`
	MaxNodes  int64 `json:"max_nodes,omitempty"`
	MaxBytes  int64 `json:"max_bytes,omitempty"`
}

// handleUpdate applies one subtree update (insert, delete or replace)
// through the MVCC write path. The handler takes only the READ half of
// the target document's shard lock: updates coexist with in-flight
// queries by design (readers pin the pre-commit version; the commit is a
// copy-on-write directory swap), so the lock only excludes /load, which
// replaces whole documents non-versioned under the write half.
func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErrorCode(w, http.StatusMethodNotAllowed, codeUserError, "POST required")
		return
	}
	if s.gateRecovery(w, "update") {
		return
	}
	if err := faultinject.Hit(faultinject.PointServiceUpdate); err != nil {
		status, code := classify(err)
		writeErrorCode(w, status, code, "update: %v", err)
		return
	}
	var req updateRequest
	dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
	if err := dec.Decode(&req); err != nil {
		writeErrorCode(w, http.StatusBadRequest, codeUserError, "bad request body: %v", err)
		return
	}
	if req.Doc == "" || req.Target == "" {
		writeErrorCode(w, http.StatusBadRequest, codeUserError, "missing \"doc\" or \"target\"")
		return
	}
	op, err := tlc.ParseUpdateKind(req.Op)
	if err != nil {
		writeErrorCode(w, http.StatusBadRequest, codeUserError, "update: %v", err)
		return
	}

	// Updates share the admission gate with queries: a write occupies an
	// evaluation slot for its (short) duration, so a flood of writes sheds
	// instead of starving readers of slots.
	qreq := &queryRequest{TimeoutMS: req.TimeoutMS, MaxNodes: req.MaxNodes, MaxBytes: req.MaxBytes}
	ctx, cancel, release, ok := s.admit(w, r, qreq)
	if !ok {
		return
	}
	defer cancel()
	defer release()

	defer s.rlockShards([]int{s.db.ShardOfDocument(req.Doc)})()

	begin := time.Now()
	apply := s.db.UpdateContext
	if s.updateOverride != nil {
		apply = s.updateOverride
	}
	ureq := tlc.UpdateRequest{
		Doc:      req.Doc,
		Op:       op,
		Target:   req.Target,
		Position: req.Position,
		Fragment: req.Fragment,
	}
	// The database already retries a conflicted commit a few times
	// back-to-back; this outer loop adds jittered backoff between whole
	// attempts, so sustained writer herds de-synchronize instead of
	// bouncing 409s off every client.
	var res tlc.UpdateResult
	err = nil
	for attempt := 1; ; attempt++ {
		res, err = apply(ctx, ureq, tlc.WithLimits(s.limits(qreq)))
		if err == nil || !errors.Is(err, tlc.ErrUpdateConflict) || attempt >= s.cfg.UpdateRetries {
			break
		}
		s.updateRetries.Add(1)
		if !sleepBackoff(ctx, s.cfg.UpdateRetryBackoff, attempt) {
			break // context expired while backing off; surface the conflict
		}
	}
	if err != nil {
		switch {
		case errors.Is(err, tlc.ErrBadUpdateRequest):
			writeErrorCode(w, http.StatusBadRequest, codeUserError, "update: %v", err)
		case errors.Is(err, tlc.ErrUnknownDocument), errors.Is(err, tlc.ErrBadUpdateTarget):
			writeErrorCode(w, http.StatusUnprocessableEntity, codeQueryError, "update: %v", err)
		default:
			// Conflict (409), budget (422), injected fault / contained panic
			// (500), WAL veto (500), timeout (504) all classify like query
			// errors. A conflict that exhausted its retries tells the
			// client when contention is worth re-probing.
			if errors.Is(err, tlc.ErrUpdateConflict) {
				w.Header().Set("Retry-After", "1")
			}
			status, code := classify(err)
			writeErrorCode(w, status, code, "update: %v", err)
		}
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"doc":           res.Doc,
		"version":       res.Version,
		"nodes":         res.Nodes,
		"nodes_added":   res.NodesAdded,
		"nodes_removed": res.NodesRemoved,
		"stats_deltas":  res.StatsDeltas,
		"conflicts":     res.Conflicts,
		"generation":    s.db.Generation(),
		"elapsed_ms":    float64(time.Since(begin)) / float64(time.Millisecond),
	})
}

func (s *Server) handleDocuments(w http.ResponseWriter, r *http.Request) {
	// Loads publish the document directory with an atomic snapshot swap, so
	// listing needs no lock — it sees either the pre- or post-load list.
	docs := s.db.Documents()
	if docs == nil {
		docs = []string{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"documents": docs,
		"versions":  s.db.DocumentVersions(),
	})
}

// handleHealthz is liveness (also mounted at /livez): the process is up
// and serving HTTP. It stays 200 during WAL replay and drain — restarting
// a recovering node would only restart its recovery.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain")
	fmt.Fprintln(w, "ok")
}

// handleReadyz is readiness: 200 only when the node should receive
// traffic. During WAL replay it reports "recovering" with live progress;
// during graceful shutdown it reports "draining".
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	state := "ok"
	switch {
	case s.recovering.Load():
		state = "recovering"
	case s.draining.Load():
		state = "draining"
	}
	status := http.StatusOK
	if state != "ok" {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]any{
		"ready": state == "ok",
		"state": state,
		"replay": map[string]int64{
			"applied": s.recApplied.Load(),
			"skipped": s.recSkipped.Load(),
		},
	})
}

// varz is the /varz metrics document.
type varz struct {
	UptimeSeconds float64           `json:"uptime_seconds"`
	Requests      uint64            `json:"requests_total"`
	Errors        uint64            `json:"errors_total"`
	ByStatus      map[string]uint64 `json:"responses_by_status"`
	InFlight      int               `json:"in_flight"`
	Queued        int               `json:"queued"`
	Latency       LatencyStats      `json:"latency"`
	PlanCache     plancache.Stats   `json:"plan_cache"`
	Store         map[string]int64  `json:"store"`
	// Memory holds the heap gauges an operator watches when sizing the
	// service: bytes in in-use heap spans, bytes of live objects, and
	// completed GC cycles (runtime.ReadMemStats).
	Memory map[string]uint64 `json:"memory"`
	// Arena holds process-wide witness-node allocation totals: nodes drawn
	// from slab arenas, slabs that cost, and nodes allocated individually
	// because no arena was in scope.
	Arena      map[string]int64 `json:"arena"`
	// Snapshot holds the snapshot gauges: bytes currently mmap'd from
	// opened snapshots, snapshots written since start, and the size and
	// wall time of the most recent write.
	Snapshot   map[string]int64 `json:"snapshot"`
	// Mutate holds the MVCC update gauges: updates committed since process
	// start, commit races lost (each one retried), document versions still
	// reachable (live + pinned superseded), and incremental statistics
	// deltas applied in place of catalog rebuilds.
	Mutate     map[string]int64 `json:"mutate"`
	Documents  int              `json:"documents"`
	Generation uint64           `json:"generation"`
	// Shards reports the per-shard gauges: document count and load
	// generation per store shard, in shard-index order.
	Shards []shardVarz `json:"shards"`
	// Governor counts queries aborted by each resource budget since start.
	Governor map[string]int64 `json:"governor"`
	// PanicsRecovered counts panics converted to errors at containment
	// barriers; any nonzero value is a bug report waiting to be filed.
	PanicsRecovered int64 `json:"panics_recovered"`
	// Breakers maps endpoint name to its circuit breaker state.
	Breakers map[string]string `json:"breakers"`
	// Shed counts requests refused by admission control, and
	// SerialFallbacks counts parallel runs retried serially after an
	// internal error.
	Shed            int64 `json:"shed_total"`
	SerialFallbacks int64 `json:"serial_fallbacks"`
	// UpdateRetries counts /update commit-race retries absorbed by the
	// handler's backoff loop.
	UpdateRetries int64 `json:"update_retries"`
	// Recovery reports the WAL-replay state: "recovering" while records
	// re-apply at startup, then "ok" with the final totals.
	Recovery map[string]any `json:"recovery,omitempty"`
	// WAL reports the write-ahead log gauges when one is attached: records
	// appended/synced, rotations, torn-tail repairs, live segments, and
	// the recovery totals from attach time.
	WAL map[string]any `json:"wal,omitempty"`
	// Faults reports the armed fault-injection points (absent in
	// production: injection is off unless TLC_FAULTS is set).
	Faults map[string]faultinject.Counts `json:"faults,omitempty"`
}

// mutateVarz builds the /varz MVCC update gauge map (also mirrored by the
// tlcshell .stats command).
func mutateVarz(db *tlc.Database) map[string]int64 {
	ut := tlc.UpdateCounters()
	return map[string]int64{
		"updates_total":        ut.Updates,
		"update_conflicts":     ut.Conflicts,
		"versions_live":        db.VersionsLive(),
		"stats_deltas_applied": ut.StatsDeltas,
	}
}

// shardVarz is one store shard's /varz entry.
type shardVarz struct {
	Shard      int    `json:"shard"`
	Documents  int    `json:"documents"`
	Generation uint64 `json:"generation"`
}

func (s *Server) handleVarz(w http.ResponseWriter, r *http.Request) {
	snap := s.metrics.Snapshot()
	cs := s.cache.Stats()
	st := s.db.Stats()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	arenaNodes, arenaSlabs, plainNodes := seq.ArenaTotals()
	v := varz{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Requests:      snap.Requests,
		Errors:        snap.Errors,
		ByStatus:      make(map[string]uint64, len(snap.ByStatus)),
		InFlight:      s.limiter.InFlight(),
		Queued:        s.limiter.Queued(),
		Latency:       snap.Latency,
		PlanCache:     cs,
		Store: map[string]int64{
			"tag_lookups":        st.TagLookups,
			"tag_refs":           st.TagRefs,
			"value_lookups":      st.ValueLookups,
			"nodes_read":         st.NodesRead,
			"nodes_materialized": st.NodesMaterialized,
		},
		Memory: map[string]uint64{
			"heap_inuse_bytes": ms.HeapInuse,
			"heap_alloc_bytes": ms.HeapAlloc,
			"gc_cycles":        uint64(ms.NumGC),
		},
		Arena: map[string]int64{
			"nodes":       arenaNodes,
			"slabs":       arenaSlabs,
			"plain_nodes": plainNodes,
		},
		Snapshot: map[string]int64{
			"mapped_bytes":     s.db.MappedBytes(),
			"written_total":    s.snapshotsWritten.Load(),
			"last_bytes":       s.lastSnapshotBytes.Load(),
			"last_duration_ms": time.Duration(s.lastSnapshotWall.Load()).Milliseconds(),
		},
		Mutate:          mutateVarz(s.db),
		Documents:       len(s.db.Documents()),
		Generation:      s.db.Generation(),
		Governor:        make(map[string]int64, 4),
		PanicsRecovered: failure.PanicsRecovered(),
		Breakers:        make(map[string]string, len(s.breakers)),
		Shed:            s.shed.Load(),
		SerialFallbacks: s.serialFallbacks.Load(),
		UpdateRetries:   s.updateRetries.Load(),
	}
	recState := "ok"
	if s.recovering.Load() {
		recState = "recovering"
	} else if s.draining.Load() {
		recState = "draining"
	}
	v.Recovery = map[string]any{
		"state":       recState,
		"applied":     s.recApplied.Load(),
		"skipped":     s.recSkipped.Load(),
		"duration_ms": time.Duration(s.recDurNs.Load()).Milliseconds(),
	}
	if ws, replay, ok := s.db.WALStats(); ok {
		v.WAL = map[string]any{
			"policy":           ws.Policy,
			"appended":         ws.Appended,
			"synced":           ws.Synced,
			"rotations":        ws.Rotations,
			"torn_repairs":     ws.TornRepairs,
			"segments":         ws.Segments,
			"segments_removed": ws.SegmentsRemoved,
			"pending":          ws.Pending,
			"last_seq":         ws.LastSeq,
			"bytes":            ws.Bytes,
			"replay_applied":   replay.Applied,
			"replay_skipped":   replay.Skipped,
		}
	}
	gens := s.db.ShardGenerations()
	v.Shards = make([]shardVarz, len(gens))
	for i, g := range gens {
		v.Shards[i] = shardVarz{Shard: i, Documents: len(s.db.ShardDocuments(i)), Generation: g}
	}
	for res, n := range governor.KillTotals() {
		v.Governor[string(res)] = n
	}
	for ep, br := range s.breakers {
		v.Breakers[ep] = br.State()
	}
	if faultinject.Active() {
		v.Faults = faultinject.Stats()
	}
	for code, n := range snap.ByStatus {
		v.ByStatus[strconv.Itoa(code)] = n
	}
	writeJSON(w, http.StatusOK, v)
}
