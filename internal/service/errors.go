package service

import (
	"context"
	"errors"
	"net/http"

	"tlc"
	"tlc/internal/failure"
	"tlc/internal/faultinject"
	"tlc/internal/physical"
)

// The service error taxonomy. Every error response carries one of these
// machine-readable codes next to the human-readable message, so clients
// and the chaos tests can branch on the class without parsing text:
//
//	user_error       400  malformed request, unknown engine, compile error
//	query_error      422  the query is valid but cannot evaluate (e.g.
//	                      unknown document)
//	budget_exceeded  422  the query tripped its resource governor
//	conflict         409  an update lost its commit race to a concurrent
//	                      writer after retries
//	overloaded       429  shed before evaluation: admission queue full
//	canceled         503  the client went away mid-evaluation
//	unavailable      503  shed while queued, or circuit breaker open
//	timeout          504  the evaluation deadline expired
//	internal         500  a contained panic, injected fault, or a commit
//	                      vetoed by a WAL write failure
//	recovering       503  the node is replaying its WAL (or draining for
//	                      shutdown) and not yet/no longer serving writes
const (
	codeUserError   = "user_error"
	codeQueryError  = "query_error"
	codeBudget      = "budget_exceeded"
	codeConflict    = "conflict"
	codeOverloaded  = "overloaded"
	codeCanceled    = "canceled"
	codeUnavailable = "unavailable"
	codeTimeout     = "timeout"
	codeInternal    = "internal"
	codeRecovering  = "recovering"
)

// classify maps an evaluation error to its HTTP status and taxonomy code.
// The order matters: a budget kill latched while the context expired must
// still read as a budget kill, so the typed matches run before the
// context sentinels.
func classify(err error) (int, string) {
	var be *tlc.BudgetError
	var pe *failure.PanicError
	var xe *physical.ExplosionError
	switch {
	case errors.As(err, &be):
		return http.StatusUnprocessableEntity, codeBudget
	case errors.As(err, &xe):
		// A pattern node exceeded the matcher's alternative cap: the query
		// is well-formed but too explosive for this data — the client's
		// problem (reformulate or shrink scope), never an internal fault.
		return http.StatusUnprocessableEntity, codeQueryError
	case errors.As(err, &pe), errors.Is(err, faultinject.ErrInjected):
		return http.StatusInternalServerError, codeInternal
	case errors.Is(err, tlc.ErrDurability):
		// The WAL refused the commit's record; the store is unchanged but
		// the node can no longer honor its durability contract — an
		// operator problem, not the client's.
		return http.StatusInternalServerError, codeInternal
	case errors.Is(err, tlc.ErrUpdateConflict):
		// The update lost its commit race repeatedly; the client can refetch
		// and retry, so this is contention, not an internal failure.
		return http.StatusConflict, codeConflict
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, codeTimeout
	case errors.Is(err, context.Canceled):
		// The client went away; the exact code is for the access log only.
		return http.StatusServiceUnavailable, codeCanceled
	default:
		return http.StatusUnprocessableEntity, codeQueryError
	}
}

// internalClass reports whether err belongs to the internal (500) class —
// the trigger for the serial fallback and the circuit breaker.
func internalClass(err error) bool {
	status, _ := classify(err)
	return status == http.StatusInternalServerError
}
