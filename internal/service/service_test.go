package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"tlc"
	"tlc/internal/physical"
)

const siteXML = `<site>
  <person id="p0"><name>Alice</name><age>30</age></person>
  <person id="p1"><name>Bob</name><age>20</age></person>
  <person id="p2"><name>Carol</name><age>40</age></person>
</site>`

const siteQuery = `FOR $p IN document("site.xml")//person WHERE $p/age > 25 RETURN $p/name`

func newServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.DB == nil {
		db := tlc.Open()
		if err := db.LoadXMLString("site.xml", siteXML); err != nil {
			t.Fatal(err)
		}
		cfg.DB = db
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func decode[T any](t *testing.T, data []byte) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatalf("bad response JSON %q: %v", data, err)
	}
	return v
}

func TestQueryEndpoint(t *testing.T) {
	_, ts := newServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/query", map[string]any{"query": siteQuery})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body = %s", resp.StatusCode, body)
	}
	out := decode[queryResponse](t, body)
	if out.Count != 2 || len(out.Results) != 2 {
		t.Fatalf("got %d results: %v", out.Count, out.Results)
	}
	if out.Engine != "TLC" {
		t.Errorf("engine = %q", out.Engine)
	}
	if !strings.Contains(out.Results[0], "Alice") {
		t.Errorf("first result = %q", out.Results[0])
	}
	if out.CacheHit {
		t.Error("first request reported a cache hit")
	}
}

func TestQueryEngines(t *testing.T) {
	_, ts := newServer(t, Config{})
	for _, eng := range []string{"TLC", "OPT", "GTP", "TAX", "NAV"} {
		resp, body := postJSON(t, ts.URL+"/query", map[string]any{"query": siteQuery, "engine": eng})
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status = %d, body = %s", eng, resp.StatusCode, body)
			continue
		}
		if out := decode[queryResponse](t, body); out.Count != 2 {
			t.Errorf("%s: count = %d, want 2", eng, out.Count)
		}
	}
}

func TestQueryBadRequests(t *testing.T) {
	_, ts := newServer(t, Config{})
	cases := []struct {
		name string
		body any
		want int
	}{
		{"missing query", map[string]any{}, http.StatusBadRequest},
		{"bad engine", map[string]any{"query": siteQuery, "engine": "SQL"}, http.StatusBadRequest},
		{"parse error", map[string]any{"query": "NOT XQUERY ((("}, http.StatusBadRequest},
		{"unknown document", map[string]any{"query": `FOR $p IN document("nope.xml")//p RETURN $p`}, http.StatusUnprocessableEntity},
	}
	for _, c := range cases {
		resp, body := postJSON(t, ts.URL+"/query", c.body)
		if resp.StatusCode != c.want {
			t.Errorf("%s: status = %d (%s), want %d", c.name, resp.StatusCode, body, c.want)
		}
		if e := decode[errorResponse](t, body); e.Error == "" {
			t.Errorf("%s: empty error message", c.name)
		}
	}
	if resp, _ := postJSON(t, ts.URL+"/query", "not an object"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("non-object body: status = %d", resp.StatusCode)
	}
}

// TestExplosionMapsToQueryError lowers the matcher's alternative bound so a
// GTP extension over a multi-name person explodes, and checks the typed
// physical.ExplosionError reaches the client as 422 query_error — the
// query's problem, not an internal fault.
func TestExplosionMapsToQueryError(t *testing.T) {
	restore := physical.SetMaxAlternatives(1)
	defer restore()
	db := tlc.Open()
	const doc = `<site><person><name>A</name><name>B</name><name>C</name></person></site>`
	if err := db.LoadXMLString("fat.xml", doc); err != nil {
		t.Fatal(err)
	}
	_, ts := newServer(t, Config{DB: db})
	resp, body := postJSON(t, ts.URL+"/query", map[string]any{
		"query":  `FOR $p IN document("fat.xml")//person RETURN $p/name`,
		"engine": "GTP",
	})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d (%s), want 422", resp.StatusCode, body)
	}
	e := decode[errorResponse](t, body)
	if e.Code != "query_error" {
		t.Errorf("code = %q, want query_error", e.Code)
	}
	if !strings.Contains(e.Error, "explode") {
		t.Errorf("error = %q, want the explosion message", e.Error)
	}
}

func TestCacheHitAcrossRequests(t *testing.T) {
	_, ts := newServer(t, Config{})
	postJSON(t, ts.URL+"/query", map[string]any{"query": siteQuery})
	resp, body := postJSON(t, ts.URL+"/query", map[string]any{"query": siteQuery})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if out := decode[queryResponse](t, body); !out.CacheHit {
		t.Error("second identical request missed the plan cache")
	}
	// The acceptance check: /varz shows plan-cache hits > 0.
	vresp, vbody := getBody(t, ts.URL+"/varz")
	if vresp.StatusCode != http.StatusOK {
		t.Fatalf("varz status = %d", vresp.StatusCode)
	}
	v := decode[varz](t, vbody)
	if v.PlanCache.Hits == 0 {
		t.Errorf("varz plan_cache.hits = 0 after repeated query; varz = %s", vbody)
	}
	if v.PlanCache.Misses == 0 {
		t.Error("varz plan_cache.misses = 0")
	}
	if v.Requests < 2 {
		t.Errorf("varz requests_total = %d, want >= 2", v.Requests)
	}
	if v.Latency.Count < 2 {
		t.Errorf("varz latency count = %d, want >= 2", v.Latency.Count)
	}
}

func getBody(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func TestExplainAndProfileEndpoints(t *testing.T) {
	_, ts := newServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/explain", map[string]any{"query": siteQuery})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explain status = %d: %s", resp.StatusCode, body)
	}
	ex := decode[map[string]string](t, body)
	if !strings.Contains(ex["plan"], "Select") {
		t.Errorf("explain plan = %q, want an operator tree", ex["plan"])
	}
	if !strings.Contains(ex["plan"], "est=") {
		t.Errorf("explain plan lacks planner estimates: %q", ex["plan"])
	}

	resp, body = postJSON(t, ts.URL+"/profile", map[string]any{"query": siteQuery})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("profile status = %d: %s", resp.StatusCode, body)
	}
	pr := decode[map[string]string](t, body)
	if !strings.Contains(pr["profile"], "trees") {
		t.Errorf("profile = %q, want per-operator cardinalities", pr["profile"])
	}

	// The navigational engine has no plan to profile.
	resp, _ = postJSON(t, ts.URL+"/profile", map[string]any{"query": siteQuery, "engine": "NAV"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("NAV profile status = %d, want 400", resp.StatusCode)
	}
}

func TestLoadAndDocumentsEndpoints(t *testing.T) {
	db := tlc.Open()
	_, ts := newServer(t, Config{DB: db})

	// No documents yet.
	_, body := getBody(t, ts.URL+"/documents")
	docs := decode[map[string]json.RawMessage](t, body)
	var names []string
	json.Unmarshal(docs["documents"], &names)
	if len(names) != 0 {
		t.Fatalf("fresh server has documents: %v", docs)
	}

	// Load an XML body.
	resp, err := http.Post(ts.URL+"/load?name=site.xml", "application/xml", strings.NewReader(siteXML))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("load status = %d", resp.StatusCode)
	}

	// Load a generated XMark document.
	resp, err = http.Post(ts.URL+"/load?name=auction.xml&xmark=0.05", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("xmark load status = %d", resp.StatusCode)
	}

	_, body = getBody(t, ts.URL+"/documents")
	docs = decode[map[string]json.RawMessage](t, body)
	names = nil
	json.Unmarshal(docs["documents"], &names)
	var versions map[string]uint64
	json.Unmarshal(docs["versions"], &versions)
	if len(versions) != 2 {
		t.Fatalf("versions = %v, want 2 entries", versions)
	}
	if len(names) != 2 {
		t.Fatalf("documents = %v, want 2", docs)
	}

	// The loaded documents answer queries.
	resp2, qbody := postJSON(t, ts.URL+"/query", map[string]any{"query": siteQuery})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("query status = %d: %s", resp2.StatusCode, qbody)
	}

	// Load errors surface as 400.
	resp, err = http.Post(ts.URL+"/load?name=bad.xml", "application/xml", strings.NewReader("<unclosed"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad XML load status = %d, want 400", resp.StatusCode)
	}
	if resp, _ := postJSON(t, ts.URL+"/load", nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("load without name: status = %d, want 400", resp.StatusCode)
	}
}

func TestLoadInvalidatesPlanCache(t *testing.T) {
	db := tlc.Open()
	if err := db.LoadXMLString("site.xml", siteXML); err != nil {
		t.Fatal(err)
	}
	srv, ts := newServer(t, Config{DB: db})
	postJSON(t, ts.URL+"/query", map[string]any{"query": siteQuery})
	postJSON(t, ts.URL+"/query", map[string]any{"query": siteQuery})
	if srv.cache.Stats().Hits != 1 {
		t.Fatalf("cache stats = %+v", srv.cache.Stats())
	}
	resp, err := http.Post(ts.URL+"/load?name=other.xml", "application/xml", strings.NewReader("<r><x>1</x></r>"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// Same query again: the load flushed the cache, so this is a miss.
	_, body := postJSON(t, ts.URL+"/query", map[string]any{"query": siteQuery})
	if out := decode[queryResponse](t, body); out.CacheHit {
		t.Error("query after a load hit a stale cached plan")
	}
	if srv.cache.Stats().Invalidations == 0 {
		t.Error("load did not invalidate the plan cache")
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newServer(t, Config{})
	resp, body := getBody(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Errorf("healthz = %d %q", resp.StatusCode, body)
	}
}

// TestDeadlineExceededMidPlan sends a deliberately expensive Cartesian
// query with a 50ms deadline and requires the 504 to come back well under
// a second: the deadline must reach the physical operator loops through
// the whole HTTP/admission/cache stack.
func TestDeadlineExceededMidPlan(t *testing.T) {
	if testing.Short() {
		t.Skip("generates an XMark document")
	}
	db := tlc.Open()
	if err := db.LoadXMark("auction.xml", 0.5); err != nil {
		t.Fatal(err)
	}
	_, ts := newServer(t, Config{DB: db})
	q := `FOR $p IN document("auction.xml")//person
	      FOR $i IN document("auction.xml")//item
	      RETURN <pair>{$p/name}{$i/location}</pair>`
	start := time.Now()
	resp, body := postJSON(t, ts.URL+"/query", map[string]any{"query": q, "timeout_ms": 50})
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d (%s), want 504", resp.StatusCode, body)
	}
	if e := decode[errorResponse](t, body); !strings.Contains(e.Error, "deadline") {
		t.Errorf("error = %q, want a deadline error", e.Error)
	}
	if elapsed > time.Second {
		t.Errorf("cancellation took %v, want well under 1s", elapsed)
	}
}

// TestOverloadShedding holds the single evaluation slot with the preEval
// test hook, fills the one-deep wait queue, and checks the next request
// is shed with 429 while the queued one times out with 503.
func TestOverloadShedding(t *testing.T) {
	db := tlc.Open()
	if err := db.LoadXMLString("site.xml", siteXML); err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{DB: db, MaxConcurrent: 1, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The hook must be installed before the listener goroutine starts so
	// handlers observe it without a data race; only the first evaluation
	// (request A) parks — B and C never reach evaluation.
	entered := make(chan struct{})
	block := make(chan struct{})
	var once sync.Once
	srv.preEval = func() {
		once.Do(func() {
			close(entered)
			<-block
		})
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	// Request A takes the slot and parks in preEval.
	aDone := make(chan int, 1)
	go func() {
		resp, _ := postJSON(t, ts.URL+"/query", map[string]any{"query": siteQuery})
		aDone <- resp.StatusCode
	}()
	<-entered

	// Request B queues, with a deadline short enough to give up there.
	bDone := make(chan int, 1)
	go func() {
		resp, _ := postJSON(t, ts.URL+"/query", map[string]any{"query": siteQuery, "timeout_ms": 300})
		bDone <- resp.StatusCode
	}()
	waitFor(t, func() bool { return srv.limiter.Queued() == 1 })

	// Request C finds slot and queue both full: shed immediately.
	resp, body := postJSON(t, ts.URL+"/query", map[string]any{"query": siteQuery, "timeout_ms": 300})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("request C status = %d (%s), want 429", resp.StatusCode, body)
	}

	// B's admission deadline expires while A still holds the slot.
	if code := <-bDone; code != http.StatusServiceUnavailable {
		t.Errorf("request B status = %d, want 503", code)
	}
	// Unblock A; it finishes normally.
	close(block)
	if code := <-aDone; code != http.StatusOK {
		t.Errorf("request A status = %d, want 200", code)
	}

	// The shed responses are visible in /varz.
	_, vbody := getBody(t, ts.URL+"/varz")
	v := decode[varz](t, vbody)
	if v.ByStatus["429"] != 1 || v.ByStatus["503"] != 1 {
		t.Errorf("varz responses_by_status = %v, want one 429 and one 503", v.ByStatus)
	}
	if v.Errors < 2 {
		t.Errorf("varz errors_total = %d, want >= 2", v.Errors)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}

// TestConcurrentQueriesAndLoads hammers the server with concurrent
// queries and document loads; under -race this validates the loadMu
// serialization of store mutation against evaluation.
func TestConcurrentQueriesAndLoads(t *testing.T) {
	db := tlc.Open()
	if err := db.LoadXMLString("site.xml", siteXML); err != nil {
		t.Fatal(err)
	}
	_, ts := newServer(t, Config{DB: db, MaxConcurrent: 4, QueueDepth: 64})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				resp, body := postJSON(t, ts.URL+"/query", map[string]any{"query": siteQuery})
				if resp.StatusCode != http.StatusOK {
					t.Errorf("query status = %d: %s", resp.StatusCode, body)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			url := fmt.Sprintf("%s/load?name=doc%d.xml", ts.URL, i)
			resp, err := http.Post(url, "application/xml", strings.NewReader("<r><x>1</x></r>"))
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("load status = %d", resp.StatusCode)
				return
			}
		}
	}()
	wg.Wait()
}

// TestSnapshotEndpoint: POST /snapshot writes a snapshot that reopens into
// a database answering the same queries, and /varz reports the snapshot
// gauges.
func TestSnapshotEndpoint(t *testing.T) {
	_, ts := newServer(t, Config{})
	dir := t.TempDir()

	// GET is rejected; missing ?dir= is rejected.
	resp, err := http.Get(ts.URL + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /snapshot = %d, want 405", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/snapshot", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("POST /snapshot without dir = %d, want 400", resp.StatusCode)
	}

	resp, err = http.Post(ts.URL+"/snapshot?dir="+dir, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Dir        string `json:"dir"`
		Bytes      int64  `json:"bytes"`
		Documents  int    `json:"documents"`
		ShardFiles int    `json:"shard_files"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /snapshot = %d, want 200", resp.StatusCode)
	}
	if out.Documents != 1 || out.Bytes <= 0 || out.ShardFiles != 1 {
		t.Fatalf("snapshot response = %+v", out)
	}

	// The written snapshot opens into an equivalent database.
	snap, err := tlc.OpenSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	res, err := snap.Query(siteQuery)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("snapshot query returned %d trees, want 2", res.Len())
	}

	// /varz reports the write and, for a snapshot-backed server, the
	// mapped bytes.
	resp, err = http.Get(ts.URL + "/varz")
	if err != nil {
		t.Fatal(err)
	}
	var vz struct {
		Snapshot map[string]int64 `json:"snapshot"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&vz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if vz.Snapshot["written_total"] != 1 || vz.Snapshot["last_bytes"] != out.Bytes {
		t.Fatalf("varz snapshot gauges = %v", vz.Snapshot)
	}

	_, ts2 := newServer(t, Config{DB: snap})
	resp, err = http.Get(ts2.URL + "/varz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&vz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if vz.Snapshot["mapped_bytes"] <= 0 {
		t.Fatalf("mapped_bytes = %d, want > 0", vz.Snapshot["mapped_bytes"])
	}
}
