package service

import (
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"tlc"
	"tlc/internal/faultinject"
)

// shardNames returns one unloaded document name routing to the same shard
// as ref and one routing to a different shard (the routing is a pure name
// hash, so the search is deterministic).
func shardNames(t *testing.T, db *tlc.Database, ref string) (same, other string) {
	t.Helper()
	target := db.ShardOfDocument(ref)
	for i := 0; same == "" || other == ""; i++ {
		name := fmt.Sprintf("probe%d.xml", i)
		if db.ShardOfDocument(name) == target {
			if same == "" {
				same = name
			}
		} else if other == "" {
			other = name
		}
		if i > 1<<16 {
			t.Fatal("no shard-distinct names found; is the store single-shard?")
		}
	}
	return same, other
}

// TestSlowLoadDoesNotBlockOtherShardQuery is the shard-isolation regression
// test: a slow injected store.load fault holds one shard's write lock, and
// a query resolving entirely on a different shard must be served while that
// load is still in flight.
func TestSlowLoadDoesNotBlockOtherShardQuery(t *testing.T) {
	t.Cleanup(faultinject.Disable)
	db := tlc.Open(tlc.WithShards(4))
	if err := db.LoadXMLString("site.xml", siteXML); err != nil {
		t.Fatal(err)
	}
	_, ts := newServer(t, Config{DB: db})
	_, other := shardNames(t, db, "site.xml")

	const slow = 900 * time.Millisecond
	if err := faultinject.Enable(fmt.Sprintf("%s=slow,delay=%s,times=1", faultinject.PointStoreLoad, slow)); err != nil {
		t.Fatal(err)
	}

	loadDone := make(chan error, 1)
	loadStart := time.Now()
	go func() {
		resp, err := http.Post(ts.URL+"/load?name="+other, "application/xml", strings.NewReader("<r><x>1</x></r>"))
		if err != nil {
			loadDone <- err
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			loadDone <- fmt.Errorf("load status = %d", resp.StatusCode)
			return
		}
		loadDone <- nil
	}()
	// Let the load reach the injected sleep (it holds its shard's write
	// lock across it).
	time.Sleep(100 * time.Millisecond)

	// The query's only document lives on site.xml's shard; it must not wait
	// for the other shard's load. The timeout is far below the remaining
	// injected delay, so blocking behind the load would surface as a
	// non-200 here.
	begin := time.Now()
	resp, body := postJSON(t, ts.URL+"/query", map[string]any{"query": siteQuery, "timeout_ms": 400})
	elapsed := time.Since(begin)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query during other-shard load: status = %d (%s)", resp.StatusCode, body)
	}
	if remaining := slow - time.Since(loadStart); remaining <= 0 {
		t.Logf("warning: load finished before the query completed; isolation not exercised")
	}
	if elapsed >= slow {
		t.Errorf("query took %v, at least the injected load delay — it blocked behind the load", elapsed)
	}
	if err := <-loadDone; err != nil {
		t.Fatal(err)
	}
}

// TestSlowLoadBlocksSameShardQuery is the counter-case: a query whose
// document routes to the shard being loaded must wait for the load (the
// read-your-writes serialization the lock exists for).
func TestSlowLoadBlocksSameShardQuery(t *testing.T) {
	t.Cleanup(faultinject.Disable)
	db := tlc.Open(tlc.WithShards(4))
	if err := db.LoadXMLString("site.xml", siteXML); err != nil {
		t.Fatal(err)
	}
	_, ts := newServer(t, Config{DB: db})
	same, _ := shardNames(t, db, "site.xml")

	const slow = 600 * time.Millisecond
	if err := faultinject.Enable(fmt.Sprintf("%s=slow,delay=%s,times=1", faultinject.PointStoreLoad, slow)); err != nil {
		t.Fatal(err)
	}

	loadDone := make(chan struct{})
	go func() {
		defer close(loadDone)
		resp, err := http.Post(ts.URL+"/load?name="+same, "application/xml", strings.NewReader("<r><x>1</x></r>"))
		if err == nil {
			resp.Body.Close()
		}
	}()
	time.Sleep(100 * time.Millisecond)

	begin := time.Now()
	resp, _ := postJSON(t, ts.URL+"/query", map[string]any{"query": siteQuery})
	elapsed := time.Since(begin)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query after same-shard load drained: status = %d", resp.StatusCode)
	}
	if elapsed < 300*time.Millisecond {
		t.Errorf("query returned in %v during a same-shard load; expected it to wait for the shard lock", elapsed)
	}
	<-loadDone
}

// TestVarzShardGauges checks /varz reports per-shard document counts and
// generations that sum to the whole-database figures.
func TestVarzShardGauges(t *testing.T) {
	db := tlc.Open(tlc.WithShards(4))
	if err := db.LoadXMLString("site.xml", siteXML); err != nil {
		t.Fatal(err)
	}
	if err := db.LoadXMLString("b.xml", "<r><x>1</x></r>"); err != nil {
		t.Fatal(err)
	}
	_, ts := newServer(t, Config{DB: db})
	_, body := getBody(t, ts.URL+"/varz")
	v := decode[varz](t, body)
	if len(v.Shards) != 4 {
		t.Fatalf("varz shards = %d entries, want 4", len(v.Shards))
	}
	docs, gens := 0, uint64(0)
	for i, sv := range v.Shards {
		if sv.Shard != i {
			t.Errorf("shard entry %d reports index %d", i, sv.Shard)
		}
		docs += sv.Documents
		gens += sv.Generation
	}
	if docs != 2 {
		t.Errorf("per-shard documents sum = %d, want 2", docs)
	}
	if gens != v.Generation {
		t.Errorf("per-shard generations sum = %d, want whole-db generation %d", gens, v.Generation)
	}
}
