package service

import (
	"context"
	"errors"
	"sync/atomic"
)

// ErrQueueFull reports that a request was shed because the admission
// queue was already at capacity. The server maps it to 429.
var ErrQueueFull = errors.New("service: admission queue full")

// Limiter bounds the number of concurrently evaluating requests and the
// number of requests allowed to wait for a slot. Beyond both bounds,
// requests are shed immediately — under overload the cheapest work is
// the work you refuse before doing any of it.
type Limiter struct {
	slots  chan struct{}
	queued atomic.Int64
	// maxQueue is the number of requests allowed to wait for a slot.
	maxQueue int64
}

// NewLimiter returns a limiter admitting maxConcurrent requests at once
// with up to maxQueue more waiting (minimums 1 and 0).
func NewLimiter(maxConcurrent, maxQueue int) *Limiter {
	if maxConcurrent < 1 {
		maxConcurrent = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &Limiter{
		slots:    make(chan struct{}, maxConcurrent),
		maxQueue: int64(maxQueue),
	}
}

// Acquire blocks until a slot is free, the queue is full, or ctx is done.
// It returns nil when a slot was acquired (the caller must Release),
// ErrQueueFull when shed, or ctx.Err() when the caller's deadline expired
// while queued.
func (l *Limiter) Acquire(ctx context.Context) error {
	// Fast path: free slot, no queueing.
	select {
	case l.slots <- struct{}{}:
		return nil
	default:
	}
	if l.queued.Add(1) > l.maxQueue {
		l.queued.Add(-1)
		return ErrQueueFull
	}
	defer l.queued.Add(-1)
	select {
	case l.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Release frees a slot acquired by Acquire.
func (l *Limiter) Release() { <-l.slots }

// InFlight returns the number of requests currently holding a slot.
func (l *Limiter) InFlight() int { return len(l.slots) }

// Queued returns the number of requests waiting for a slot.
func (l *Limiter) Queued() int { return int(l.queued.Load()) }
