package service

import (
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"tlc/internal/faultinject"
)

// davePerson matches the siteQuery predicate (age > 25), so inserting it
// moves the query's result count from 2 to 3.
const davePerson = `<person id="p9"><name>Dave</name><age>50</age></person>`

type updateResponse struct {
	Doc          string `json:"doc"`
	Version      uint64 `json:"version"`
	Nodes        int    `json:"nodes"`
	NodesAdded   int    `json:"nodes_added"`
	NodesRemoved int    `json:"nodes_removed"`
	StatsDeltas  int    `json:"stats_deltas"`
	Conflicts    int    `json:"conflicts"`
}

func queryCount(t *testing.T, url string) int {
	t.Helper()
	resp, body := postJSON(t, url+"/query", map[string]any{"query": siteQuery})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status = %d: %s", resp.StatusCode, body)
	}
	return decode[queryResponse](t, body).Count
}

// TestUpdateEndpoint applies insert, replace and delete through POST
// /update and checks each commit is immediately visible to queries — the
// per-document version bump must invalidate the cached plan, not leave a
// stale hit serving pre-update results.
func TestUpdateEndpoint(t *testing.T) {
	_, ts := newServer(t, Config{})
	if n := queryCount(t, ts.URL); n != 2 {
		t.Fatalf("pre-update count = %d, want 2", n)
	}

	// Insert: Dave (age 50) joins the result set.
	resp, body := postJSON(t, ts.URL+"/update", map[string]any{
		"doc": "site.xml", "op": "insert", "target": "/site", "fragment": davePerson,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("insert status = %d: %s", resp.StatusCode, body)
	}
	out := decode[updateResponse](t, body)
	if out.Doc != "site.xml" || out.Version != 2 || out.NodesAdded == 0 || out.Conflicts != 0 {
		t.Fatalf("insert response = %+v", out)
	}
	if n := queryCount(t, ts.URL); n != 3 {
		t.Fatalf("post-insert count = %d, want 3 (stale plan served?)", n)
	}

	// Replace: Bob (age 20, not in the result) becomes Eve (age 60).
	resp, body = postJSON(t, ts.URL+"/update", map[string]any{
		"doc": "site.xml", "op": "replace", "target": "/site/person[2]",
		"fragment": `<person id="p1"><name>Eve</name><age>60</age></person>`,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replace status = %d: %s", resp.StatusCode, body)
	}
	if out = decode[updateResponse](t, body); out.Version != 3 || out.NodesRemoved == 0 {
		t.Fatalf("replace response = %+v", out)
	}
	if n := queryCount(t, ts.URL); n != 4 {
		t.Fatalf("post-replace count = %d, want 4", n)
	}

	// Delete Dave again.
	resp, body = postJSON(t, ts.URL+"/update", map[string]any{
		"doc": "site.xml", "op": "delete", "target": "/site/person[4]",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete status = %d: %s", resp.StatusCode, body)
	}
	if out = decode[updateResponse](t, body); out.Version != 4 || out.NodesRemoved == 0 {
		t.Fatalf("delete response = %+v", out)
	}
	if n := queryCount(t, ts.URL); n != 3 {
		t.Fatalf("post-delete count = %d, want 3", n)
	}

	// /varz mirrors the write path: update gauges and live versions.
	_, vbody := getBody(t, ts.URL+"/varz")
	v := decode[varz](t, vbody)
	if v.Mutate["updates_total"] < 3 {
		t.Errorf("varz mutate.updates_total = %d, want >= 3", v.Mutate["updates_total"])
	}
	if v.Mutate["versions_live"] < 1 {
		t.Errorf("varz mutate.versions_live = %d, want >= 1", v.Mutate["versions_live"])
	}
	if v.Mutate["stats_deltas_applied"] == 0 {
		t.Error("varz mutate.stats_deltas_applied = 0 after three updates")
	}
	if _, ok := v.Breakers["update"]; !ok {
		t.Errorf("varz breakers lack the update endpoint: %v", v.Breakers)
	}
}

// TestUpdateEndpointErrors drives the /update error taxonomy: client
// mistakes are 400, resolvable-but-wrong targets are 422, and the
// document is untouched by any of them.
func TestUpdateEndpointErrors(t *testing.T) {
	_, ts := newServer(t, Config{})
	// The update counters are process-wide, so compare deltas, not absolutes.
	_, vbody := getBody(t, ts.URL+"/varz")
	before := decode[varz](t, vbody).Mutate["updates_total"]

	resp, err := http.Get(ts.URL + "/update")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /update = %d, want 405", resp.StatusCode)
	}

	cases := []struct {
		name     string
		body     any
		status   int
		code     string
	}{
		{"non-object body", "zap", http.StatusBadRequest, "user_error"},
		{"missing doc", map[string]any{"op": "delete", "target": "/site/person[1]"}, http.StatusBadRequest, "user_error"},
		{"missing target", map[string]any{"doc": "site.xml", "op": "delete"}, http.StatusBadRequest, "user_error"},
		{"unknown op", map[string]any{"doc": "site.xml", "op": "upsert", "target": "/site"}, http.StatusBadRequest, "user_error"},
		{"insert without fragment", map[string]any{"doc": "site.xml", "op": "insert", "target": "/site"}, http.StatusBadRequest, "user_error"},
		{"delete with fragment", map[string]any{"doc": "site.xml", "op": "delete", "target": "/site/person[1]", "fragment": "<x/>"}, http.StatusBadRequest, "user_error"},
		{"bad position", map[string]any{"doc": "site.xml", "op": "insert", "target": "/site", "position": "sideways", "fragment": "<x/>"}, http.StatusBadRequest, "user_error"},
		{"malformed fragment", map[string]any{"doc": "site.xml", "op": "insert", "target": "/site", "fragment": "<unclosed"}, http.StatusBadRequest, "user_error"},
		{"unknown document", map[string]any{"doc": "nope.xml", "op": "insert", "target": "/nope", "fragment": "<x/>"}, http.StatusUnprocessableEntity, "query_error"},
		{"unresolvable target", map[string]any{"doc": "site.xml", "op": "delete", "target": "/site/zebra[1]"}, http.StatusUnprocessableEntity, "query_error"},
		{"delete root", map[string]any{"doc": "site.xml", "op": "delete", "target": "/site"}, http.StatusUnprocessableEntity, "query_error"},
	}
	for _, c := range cases {
		resp, body := postJSON(t, ts.URL+"/update", c.body)
		if resp.StatusCode != c.status {
			t.Errorf("%s: status = %d (%s), want %d", c.name, resp.StatusCode, body, c.status)
			continue
		}
		if e := decode[errorResponse](t, body); e.Code != c.code || e.Error == "" {
			t.Errorf("%s: error = %+v, want code %q", c.name, e, c.code)
		}
	}

	// None of the failures touched the document.
	if n := queryCount(t, ts.URL); n != 2 {
		t.Errorf("count after failed updates = %d, want 2", n)
	}
	_, vbody = getBody(t, ts.URL+"/varz")
	if v := decode[varz](t, vbody); v.Mutate["updates_total"] != before {
		t.Errorf("varz mutate.updates_total moved %d -> %d on failed updates", before, v.Mutate["updates_total"])
	}
}

// TestUpdateBudgetExceeded caps the write's arena-node budget below the
// fragment size and checks the update aborts with 422 budget_exceeded
// before anything commits.
func TestUpdateBudgetExceeded(t *testing.T) {
	_, ts := newServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/update", map[string]any{
		"doc": "site.xml", "op": "insert", "target": "/site",
		"fragment": davePerson, "max_nodes": 2,
	})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d (%s), want 422", resp.StatusCode, body)
	}
	if e := decode[errorResponse](t, body); e.Code != "budget_exceeded" {
		t.Fatalf("code = %q, want budget_exceeded", e.Code)
	}
	if n := queryCount(t, ts.URL); n != 2 {
		t.Errorf("count after budget kill = %d, want 2 (partial commit?)", n)
	}
}

// TestUpdateFaultInjected arms the update-path injection points — the
// handler itself, the pre-commit hook, and the statistics-delta hook —
// and checks each fault reads as a 500 internal with the store still on
// the old version; clearing injection makes the same update succeed.
func TestUpdateFaultInjected(t *testing.T) {
	t.Cleanup(faultinject.Disable)
	_, ts := newServer(t, Config{BreakerThreshold: 1000})
	ins := map[string]any{"doc": "site.xml", "op": "insert", "target": "/site", "fragment": davePerson}

	for _, point := range []string{
		faultinject.PointServiceUpdate,
		faultinject.PointMutateCommit,
		faultinject.PointMutateStatsDelta,
	} {
		if err := faultinject.Enable(point + "=error"); err != nil {
			t.Fatal(err)
		}
		resp, body := postJSON(t, ts.URL+"/update", ins)
		if resp.StatusCode != http.StatusInternalServerError {
			t.Errorf("%s: status = %d (%s), want 500", point, resp.StatusCode, body)
			continue
		}
		if e := decode[errorResponse](t, body); e.Code != "internal" {
			t.Errorf("%s: code = %q, want internal", point, e.Code)
		}
		if n := queryCount(t, ts.URL); n != 2 {
			t.Errorf("%s: count = %d after injected failure, want 2", point, n)
		}
	}

	faultinject.Disable()
	resp, body := postJSON(t, ts.URL+"/update", ins)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-chaos update: status = %d (%s)", resp.StatusCode, body)
	}
	if out := decode[updateResponse](t, body); out.Version != 2 {
		t.Fatalf("post-chaos version = %d, want 2 (failed attempts must not bump)", out.Version)
	}
	if n := queryCount(t, ts.URL); n != 3 {
		t.Errorf("post-chaos count = %d, want 3", n)
	}
}

// TestUpdateBreakerTrips feeds the /update breaker consecutive injected
// 500s past its threshold and checks it opens — shedding with 503 before
// the handler — then closes again after the cooldown probe succeeds.
func TestUpdateBreakerTrips(t *testing.T) {
	t.Cleanup(faultinject.Disable)
	_, ts := newServer(t, Config{BreakerThreshold: 2, BreakerCooldown: 50 * time.Millisecond})
	ins := map[string]any{"doc": "site.xml", "op": "insert", "target": "/site", "fragment": davePerson}

	if err := faultinject.Enable(faultinject.PointServiceUpdate + "=error,times=2"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if resp, _ := postJSON(t, ts.URL+"/update", ins); resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("request %d: status = %d, want 500", i, resp.StatusCode)
		}
	}
	resp, body := postJSON(t, ts.URL+"/update", ins)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("breaker-open status = %d (%s), want 503", resp.StatusCode, body)
	}
	if e := decode[errorResponse](t, body); !strings.Contains(e.Error, "circuit breaker") {
		t.Fatalf("breaker-open error = %q", e.Error)
	}
	// Queries ride a different breaker: reads keep working while writes shed.
	if n := queryCount(t, ts.URL); n != 2 {
		t.Fatalf("query during open update breaker: count = %d, want 2", n)
	}

	// After the cooldown the injection budget is spent, so the probe
	// succeeds and closes the breaker.
	time.Sleep(60 * time.Millisecond)
	resp, body = postJSON(t, ts.URL+"/update", ins)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("probe status = %d (%s), want 200", resp.StatusCode, body)
	}
}

// TestUpdateConcurrentWithQueries hammers concurrent reads and writes on
// one document; under -race this exercises reader generation pinning
// against copy-on-write commits. The inserted persons are all below the
// query's age predicate, so every read must return exactly 2 results —
// any torn read or half-applied update shows up as a wrong count.
func TestUpdateConcurrentWithQueries(t *testing.T) {
	_, ts := newServer(t, Config{MaxConcurrent: 4, QueueDepth: 128, DefaultTimeout: 30 * time.Second})
	_, vbody := getBody(t, ts.URL+"/varz")
	before := decode[varz](t, vbody).Mutate["updates_total"]
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				resp, body := postJSON(t, ts.URL+"/query", map[string]any{"query": siteQuery})
				if resp.StatusCode != http.StatusOK {
					t.Errorf("query status = %d: %s", resp.StatusCode, body)
					return
				}
				if out := decode[queryResponse](t, body); out.Count != 2 {
					t.Errorf("concurrent read saw %d results, want 2", out.Count)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			frag := fmt.Sprintf(`<person id="x%d"><name>Kid</name><age>10</age></person>`, i)
			resp, body := postJSON(t, ts.URL+"/update", map[string]any{
				"doc": "site.xml", "op": "insert", "target": "/site", "fragment": frag,
			})
			if resp.StatusCode != http.StatusOK {
				t.Errorf("update status = %d: %s", resp.StatusCode, body)
				return
			}
		}
	}()
	wg.Wait()

	_, vbody = getBody(t, ts.URL+"/varz")
	v := decode[varz](t, vbody)
	if v.Mutate["updates_total"]-before != 8 {
		t.Errorf("varz mutate.updates_total moved %d -> %d, want +8", before, v.Mutate["updates_total"])
	}
	if n := queryCount(t, ts.URL); n != 2 {
		t.Errorf("final count = %d, want 2", n)
	}
}
