package service

import (
	"sort"
	"sync"
	"time"
)

// latencyWindow is the size of the sliding latency window the quantiles
// are computed over. A fixed ring keeps the quantiles recent (old
// latencies age out) without unbounded memory or a random-eviction
// reservoir.
const latencyWindow = 1024

// Metrics accumulates the request counters exported on /varz. All methods
// are safe for concurrent use.
type Metrics struct {
	mu       sync.Mutex
	requests uint64
	errors   uint64
	byStatus map[int]uint64

	ring  [latencyWindow]float64 // milliseconds
	count uint64                 // total observations (ring index = count % window)
}

// NewMetrics returns zeroed metrics.
func NewMetrics() *Metrics {
	return &Metrics{byStatus: make(map[int]uint64)}
}

// Observe records one finished request with its response status and
// latency.
func (m *Metrics) Observe(status int, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests++
	m.byStatus[status]++
	if status >= 400 {
		m.errors++
	}
	m.ring[m.count%latencyWindow] = float64(d) / float64(time.Millisecond)
	m.count++
}

// LatencyStats summarizes the sliding latency window in milliseconds.
type LatencyStats struct {
	Count uint64  `json:"count"`
	P50   float64 `json:"p50_ms"`
	P90   float64 `json:"p90_ms"`
	P99   float64 `json:"p99_ms"`
	Max   float64 `json:"max_ms"`
}

// Snapshot is a point-in-time view of the metrics.
type Snapshot struct {
	Requests uint64
	Errors   uint64
	ByStatus map[int]uint64
	Latency  LatencyStats
}

// Snapshot copies out the counters and computes quantiles over the
// current window.
func (m *Metrics) Snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Snapshot{
		Requests: m.requests,
		Errors:   m.errors,
		ByStatus: make(map[int]uint64, len(m.byStatus)),
		Latency:  LatencyStats{Count: m.count},
	}
	for k, v := range m.byStatus {
		s.ByStatus[k] = v
	}
	n := int(m.count)
	if n > latencyWindow {
		n = latencyWindow
	}
	if n == 0 {
		return s
	}
	window := make([]float64, n)
	copy(window, m.ring[:n])
	sort.Float64s(window)
	s.Latency.P50 = quantile(window, 0.50)
	s.Latency.P90 = quantile(window, 0.90)
	s.Latency.P99 = quantile(window, 0.99)
	s.Latency.Max = window[n-1]
	return s
}

// quantile returns the q-quantile of sorted (nearest-rank).
func quantile(sorted []float64, q float64) float64 {
	idx := int(q * float64(len(sorted)))
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
