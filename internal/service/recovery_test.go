package service

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"tlc"
)

func getJSON[T any](t *testing.T, url string) (int, T) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("bad JSON from %s: %v", url, err)
	}
	return resp.StatusCode, v
}

func TestReadyzTracksRecoveryAndDrain(t *testing.T) {
	srv, ts := newServer(t, Config{})

	// Fresh server: ready.
	status, body := getJSON[map[string]any](t, ts.URL+"/readyz")
	if status != http.StatusOK || body["ready"] != true {
		t.Fatalf("fresh readyz = %d %v", status, body)
	}

	// Liveness stays 200 through every state below.
	checkLive := func() {
		t.Helper()
		for _, ep := range []string{"/healthz", "/livez"} {
			resp, err := http.Get(ts.URL + ep)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("%s = %d during recovery/drain, want 200", ep, resp.StatusCode)
			}
		}
	}

	srv.BeginRecovery()
	srv.RecoveryProgress(12, 3)
	checkLive()
	status, body = getJSON[map[string]any](t, ts.URL+"/readyz")
	if status != http.StatusServiceUnavailable || body["state"] != "recovering" {
		t.Fatalf("recovering readyz = %d %v", status, body)
	}
	replay := body["replay"].(map[string]any)
	if replay["applied"].(float64) != 12 || replay["skipped"].(float64) != 3 {
		t.Fatalf("replay progress = %v", replay)
	}

	// Mutating endpoints shed with the recovering code; reads still work.
	resp, errBody := postJSON(t, ts.URL+"/update",
		map[string]any{"doc": "site.xml", "op": "delete", "target": "/site/person[1]"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("update during recovery = %d %s", resp.StatusCode, errBody)
	}
	if er := decode[errorResponse](t, errBody); er.Code != codeRecovering {
		t.Fatalf("update during recovery code = %q, want %q", er.Code, codeRecovering)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed update carries no Retry-After")
	}
	if resp, _ := postJSON(t, ts.URL+"/query", map[string]any{"query": siteQuery}); resp.StatusCode != http.StatusOK {
		t.Fatalf("query during recovery = %d, want 200", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/snapshot?dir="+t.TempDir(), nil)
	if resp, err := http.DefaultClient.Do(req); err != nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("snapshot during recovery = %v %v", resp, err)
	}

	srv.EndRecovery(20, 3, 150*time.Millisecond)
	status, body = getJSON[map[string]any](t, ts.URL+"/readyz")
	if status != http.StatusOK || body["ready"] != true {
		t.Fatalf("post-recovery readyz = %d %v", status, body)
	}

	// /varz reports the recovery outcome.
	_, vz := getJSON[map[string]any](t, ts.URL+"/varz")
	rec := vz["recovery"].(map[string]any)
	if rec["state"] != "ok" || rec["applied"].(float64) != 20 {
		t.Fatalf("varz recovery = %v", rec)
	}

	// Draining flips readiness the same way.
	srv.SetDraining()
	checkLive()
	status, body = getJSON[map[string]any](t, ts.URL+"/readyz")
	if status != http.StatusServiceUnavailable || body["state"] != "draining" {
		t.Fatalf("draining readyz = %d %v", status, body)
	}
	resp, errBody = postJSON(t, ts.URL+"/update",
		map[string]any{"doc": "site.xml", "op": "delete", "target": "/site/person[1]"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("update while draining = %d %s", resp.StatusCode, errBody)
	}
}

func TestVarzWALSection(t *testing.T) {
	db := tlc.Open()
	if err := db.LoadXMLString("site.xml", siteXML); err != nil {
		t.Fatal(err)
	}
	if _, err := db.AttachWAL(tlc.WALOptions{Dir: t.TempDir(), Fsync: "batch"}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	_, ts := newServer(t, Config{DB: db})

	resp, body := postJSON(t, ts.URL+"/update", map[string]any{
		"doc": "site.xml", "op": "insert", "target": "/site",
		"fragment": "<person id=\"p3\"><name>Dan</name><age>50</age></person>",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update = %d %s", resp.StatusCode, body)
	}

	_, vz := getJSON[map[string]any](t, ts.URL+"/varz")
	wal, ok := vz["wal"].(map[string]any)
	if !ok {
		t.Fatalf("varz has no wal section: %v", vz["wal"])
	}
	if wal["policy"] != "batch" {
		t.Fatalf("wal policy = %v, want batch", wal["policy"])
	}
	if wal["appended"].(float64) != 1 || wal["last_seq"].(float64) != 1 {
		t.Fatalf("wal gauges after one update: %v", wal)
	}
}

// TestUpdateConflictRetries scripts a conflict sequence through the
// updateOverride seam: the handler must absorb transient conflicts with
// backoff and only surface a 409 (with Retry-After) when attempts are
// exhausted.
func TestUpdateConflictRetries(t *testing.T) {
	srv, ts := newServer(t, Config{UpdateRetries: 3, UpdateRetryBackoff: time.Millisecond})

	var calls int
	srv.updateOverride = func(ctx context.Context, req tlc.UpdateRequest, opts ...tlc.Option) (tlc.UpdateResult, error) {
		calls++
		if calls < 3 {
			return tlc.UpdateResult{}, tlc.ErrUpdateConflict
		}
		return tlc.UpdateResult{Doc: req.Doc, Version: 2}, nil
	}
	resp, body := postJSON(t, ts.URL+"/update",
		map[string]any{"doc": "site.xml", "op": "delete", "target": "/site/person[1]"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update after transient conflicts = %d %s", resp.StatusCode, body)
	}
	if calls != 3 {
		t.Fatalf("handler attempted %d times, want 3", calls)
	}
	if srv.updateRetries.Load() != 2 {
		t.Fatalf("updateRetries counter = %d, want 2", srv.updateRetries.Load())
	}

	// Persistent conflict: attempts exhaust, 409 + Retry-After.
	calls = 0
	srv.updateOverride = func(ctx context.Context, req tlc.UpdateRequest, opts ...tlc.Option) (tlc.UpdateResult, error) {
		calls++
		return tlc.UpdateResult{}, tlc.ErrUpdateConflict
	}
	resp, body = postJSON(t, ts.URL+"/update",
		map[string]any{"doc": "site.xml", "op": "delete", "target": "/site/person[1]"})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("persistent conflict = %d %s", resp.StatusCode, body)
	}
	if calls != 3 {
		t.Fatalf("persistent conflict attempted %d times, want 3", calls)
	}
	if er := decode[errorResponse](t, body); er.Code != codeConflict {
		t.Fatalf("code = %q, want %q", er.Code, codeConflict)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("final 409 carries no Retry-After")
	}

	// UpdateRetries=1 disables retrying entirely.
	srv2, ts2 := newServer(t, Config{UpdateRetries: 1})
	calls = 0
	srv2.updateOverride = func(ctx context.Context, req tlc.UpdateRequest, opts ...tlc.Option) (tlc.UpdateResult, error) {
		calls++
		return tlc.UpdateResult{}, tlc.ErrUpdateConflict
	}
	resp, _ = postJSON(t, ts2.URL+"/update",
		map[string]any{"doc": "site.xml", "op": "delete", "target": "/site/person[1]"})
	if resp.StatusCode != http.StatusConflict || calls != 1 {
		t.Fatalf("retries=1: status %d after %d calls, want 409 after 1", resp.StatusCode, calls)
	}
}
