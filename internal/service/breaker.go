package service

import (
	"sync"
	"time"
)

// breakerState is the classic three-state circuit-breaker lifecycle.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker is a per-endpoint circuit breaker over internal (500-class)
// errors. Repeated contained panics on one endpoint mean that endpoint is
// tickling a real bug; the breaker turns the retry storm into fast 503s
// with a Retry-After instead of burning evaluation slots on requests that
// will die the same way. Budget kills, timeouts and user errors never
// trip it — those are the query's fault, not the server's.
type breaker struct {
	threshold int           // consecutive internal errors that open the breaker
	cooldown  time.Duration // how long the breaker stays open before probing

	mu          sync.Mutex
	state       breakerState
	consecutive int       // internal errors in a row while closed
	openedAt    time.Time // when the breaker last opened
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// Allow reports whether a request may proceed. When the breaker is open
// it returns false and how long the caller should wait before retrying.
// After the cooldown the breaker moves to half-open and lets requests
// probe: the first internal error reopens it, the first success closes it.
func (b *breaker) Allow() (bool, time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != breakerOpen {
		return true, 0
	}
	if remain := b.cooldown - time.Since(b.openedAt); remain > 0 {
		return false, remain
	}
	b.state = breakerHalfOpen
	return true, 0
}

// Record feeds one completed request's outcome to the breaker: internal
// is true for 500-class results only.
func (b *breaker) Record(internal bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if internal {
		b.consecutive++
		if b.state == breakerHalfOpen || b.consecutive >= b.threshold {
			b.state = breakerOpen
			b.openedAt = time.Now()
			b.consecutive = 0
		}
		return
	}
	b.consecutive = 0
	b.state = breakerClosed
}

// State returns the breaker's current state name for /varz.
func (b *breaker) State() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	// An expired open breaker reads as half-open: the next Allow would
	// admit a probe.
	if b.state == breakerOpen && time.Since(b.openedAt) >= b.cooldown {
		return breakerHalfOpen.String()
	}
	return b.state.String()
}
