package faultinject

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestDisabledIsNoop(t *testing.T) {
	Disable()
	if Active() {
		t.Fatal("Active after Disable")
	}
	for _, p := range Catalog() {
		if err := Hit(p); err != nil {
			t.Errorf("Hit(%s) = %v while disabled", p, err)
		}
	}
}

func TestErrorMode(t *testing.T) {
	t.Cleanup(Disable)
	if err := Enable(PointStoreLoad + "=error"); err != nil {
		t.Fatal(err)
	}
	err := Hit(PointStoreLoad)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("Hit = %v, want ErrInjected", err)
	}
	if !strings.Contains(err.Error(), PointStoreLoad) {
		t.Errorf("error %q does not name the point", err)
	}
	// Unarmed points stay silent.
	if err := Hit(PointValueJoin); err != nil {
		t.Errorf("unarmed point fired: %v", err)
	}
}

func TestPanicMode(t *testing.T) {
	t.Cleanup(Disable)
	if err := Enable(PointValueJoin + "=panic"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("Hit did not panic")
		}
	}()
	Hit(PointValueJoin)
}

func TestSlowMode(t *testing.T) {
	t.Cleanup(Disable)
	if err := Enable(PointServiceQuery + "=slow,delay=30ms"); err != nil {
		t.Fatal(err)
	}
	begin := time.Now()
	if err := Hit(PointServiceQuery); err != nil {
		t.Fatalf("slow mode returned error: %v", err)
	}
	if d := time.Since(begin); d < 30*time.Millisecond {
		t.Errorf("slow mode slept %v, want >= 30ms", d)
	}
}

func TestAfterAndTimes(t *testing.T) {
	t.Cleanup(Disable)
	if err := Enable(PointMatcher + "=error,after=3,times=2"); err != nil {
		t.Fatal(err)
	}
	var outcomes []bool
	for i := 0; i < 6; i++ {
		outcomes = append(outcomes, Hit(PointMatcher) != nil)
	}
	want := []bool{false, false, true, true, false, false}
	for i := range want {
		if outcomes[i] != want[i] {
			t.Fatalf("hit %d fired=%v, want %v (all: %v)", i+1, outcomes[i], want[i], outcomes)
		}
	}
	st := Stats()[PointMatcher]
	if st.Hits != 6 || st.Fired != 2 || st.Mode != "error" {
		t.Errorf("stats = %+v", st)
	}
}

func TestProbabilityIsDeterministic(t *testing.T) {
	t.Cleanup(Disable)
	run := func() []bool {
		if err := Enable(PointStructJoin + "=error,p=0.5,seed=7"); err != nil {
			t.Fatal(err)
		}
		var fired []bool
		for i := 0; i < 32; i++ {
			fired = append(fired, Hit(PointStructJoin) != nil)
		}
		return fired
	}
	a, b := run(), run()
	some, all := false, true
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run divergence at hit %d", i)
		}
		some = some || a[i]
		all = all && a[i]
	}
	if !some || all {
		t.Errorf("p=0.5 fired on %v — expected a mix", a)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"nonsense",
		"unknown.point=error",
		PointStoreLoad + "=explode",
		PointStoreLoad + "=error,after=x",
		PointStoreLoad + "=error,wat=1",
		PointStoreLoad + "=slow,delay=zzz",
	} {
		if err := Enable(bad); err == nil {
			Disable()
			t.Errorf("Enable(%q) succeeded, want error", bad)
		}
	}
	// A bad spec must not leave a previous one half-disabled.
	if err := Enable(""); err != nil {
		t.Fatalf("Enable(empty) = %v", err)
	}
	if Active() {
		t.Error("empty spec left injection active")
	}
}

func TestCatalogSortedAndComplete(t *testing.T) {
	cat := Catalog()
	if len(cat) < 9 {
		t.Fatalf("catalog has %d points, want >= 9", len(cat))
	}
	for i := 1; i < len(cat); i++ {
		if cat[i-1] >= cat[i] {
			t.Errorf("catalog not sorted at %d: %s >= %s", i, cat[i-1], cat[i])
		}
	}
}
