// Package faultinject provides named, deterministic fault-injection
// points compiled into the engine's failure-prone seams: store document
// loads, structural and value joins, matcher allocation, plan-cache fill,
// and the service handlers. The chaos test suite drives them to prove the
// containment layer holds — every injected failure must surface as a
// well-formed taxonomy error for that request only.
//
// Points are inert by default: Hit is a single atomic load when no spec is
// installed, so production pays nothing for the instrumentation. A spec is
// installed programmatically (Enable) or from the TLC_FAULTS environment
// variable / -faults flag in tlcserve:
//
//	TLC_FAULTS="store.load=error;physical.valuejoin=panic,after=2;service.query=slow,delay=50ms,times=1"
//
// Each rule is "<point>=<mode>" plus optional comma-separated options:
//
//	mode:   error | panic | slow
//	delay=D   latency injected by slow (default 10ms)
//	after=N   start firing at the N-th hit of the point (default 1)
//	times=M   fire at most M times (default unlimited)
//	p=F,seed=S  fire with probability F per eligible hit, from a rand
//	          seeded with S — deterministic across runs, no wall-clock
//	          entropy (default p=1, always fire)
//
// Counting is per point and deterministic, which is what lets the chaos
// tests assert exact outcomes.
package faultinject

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the root of every injected error; the service taxonomy
// classifies it as internal (500). Call sites return it verbatim.
var ErrInjected = errors.New("faultinject: injected fault")

// The injection-point catalog. Every Hit call site names one of these;
// the chaos suite iterates the catalog to prove coverage.
const (
	// PointStoreLoad fires in Store.Load, before a parsed document is
	// indexed — a failing storage backend.
	PointStoreLoad = "store.load"
	// PointStructJoin fires on entry of every structural join.
	PointStructJoin = "physical.structjoin"
	// PointValueJoin fires on entry of every value/cartesian join.
	PointValueJoin = "physical.valuejoin"
	// PointMatcher fires when a matcher builds the partial-match set of a
	// pattern node — the allocation-heaviest matching step.
	PointMatcher = "physical.matcher"
	// PointPlanCacheFill fires when the plan cache compiles on a miss.
	PointPlanCacheFill = "plancache.fill"
	// PointServiceQuery, PointServiceExplain, PointServiceProfile,
	// PointServiceLoad and PointServiceUpdate fire at the top of the
	// corresponding handler.
	PointServiceQuery   = "service.query"
	PointServiceExplain = "service.explain"
	PointServiceProfile = "service.profile"
	PointServiceLoad    = "service.load"
	PointServiceUpdate  = "service.update"
	// PointMutateCommit fires in Store.Commit, before the directory swap
	// that publishes a new document version — a failing write path. An
	// injected failure must leave the store on the old version.
	PointMutateCommit = "mutate.commit"
	// PointMutateStatsDelta fires when a splice applies its incremental
	// statistics delta to the catalog; an injected failure must abort the
	// whole mutation with no partial state.
	PointMutateStatsDelta = "mutate.statsdelta"
	// PointWALAppend fires at the top of wal.Log.Append, before the record
	// is written — a commit that dies here must leave no trace in the log.
	PointWALAppend = "wal.append"
	// PointWALFsync fires before the WAL fsync syscall — the window where
	// a record is written but not yet durable. A slow-mode stall here is
	// how the chaos harness times its SIGKILL.
	PointWALFsync = "wal.fsync"
	// PointWALRotate fires at the start of a segment rotation (the first
	// step of the snapshot checkpoint protocol).
	PointWALRotate = "wal.rotate"
	// PointRecoverReplay fires once per record applied during WAL replay
	// at startup — a crash mid-recovery must itself be recoverable.
	PointRecoverReplay = "recover.replay"
)

// Catalog returns every registered injection point name, sorted.
func Catalog() []string {
	pts := []string{
		PointStoreLoad,
		PointStructJoin,
		PointValueJoin,
		PointMatcher,
		PointPlanCacheFill,
		PointServiceQuery,
		PointServiceExplain,
		PointServiceProfile,
		PointServiceLoad,
		PointServiceUpdate,
		PointMutateCommit,
		PointMutateStatsDelta,
		PointWALAppend,
		PointWALFsync,
		PointWALRotate,
		PointRecoverReplay,
	}
	sort.Strings(pts)
	return pts
}

// Mode is what an armed point does when it fires.
type Mode int

// Injection modes.
const (
	// ModeError makes Hit return ErrInjected.
	ModeError Mode = iota
	// ModePanic makes Hit panic — exercising the recover barriers.
	ModePanic
	// ModeSlow makes Hit sleep for the rule's delay, then proceed.
	ModeSlow
)

func (m Mode) String() string {
	switch m {
	case ModeError:
		return "error"
	case ModePanic:
		return "panic"
	case ModeSlow:
		return "slow"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// rule is one armed injection point.
type rule struct {
	point string
	mode  Mode
	delay time.Duration
	after int64 // fire from this hit number on (1-based)
	times int64 // max fires; 0 = unlimited
	prob  float64

	hits  atomic.Int64
	fired atomic.Int64

	rngMu sync.Mutex
	rng   *rand.Rand // nil when prob == 1
}

var (
	// enabled short-circuits Hit when no spec is installed; the common
	// production path is one atomic load and a branch.
	enabled atomic.Bool
	mu      sync.RWMutex
	rules   map[string]*rule
)

// Enable parses and installs a fault spec, replacing any previous one.
// An empty spec disables injection (like Disable).
func Enable(spec string) error {
	parsed, err := parse(spec)
	if err != nil {
		return err
	}
	mu.Lock()
	rules = parsed
	mu.Unlock()
	enabled.Store(len(parsed) > 0)
	return nil
}

// Disable removes every armed point.
func Disable() {
	enabled.Store(false)
	mu.Lock()
	rules = nil
	mu.Unlock()
}

// parse parses "point=mode[,k=v...]" rules separated by ';'.
func parse(spec string) (map[string]*rule, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	known := make(map[string]bool)
	for _, p := range Catalog() {
		known[p] = true
	}
	out := make(map[string]*rule)
	for _, item := range strings.Split(spec, ";") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		point, rest, ok := strings.Cut(item, "=")
		point = strings.TrimSpace(point)
		if !ok || point == "" {
			return nil, fmt.Errorf("faultinject: bad rule %q, want point=mode[,opts]", item)
		}
		if !known[point] {
			return nil, fmt.Errorf("faultinject: unknown point %q (catalog: %s)", point, strings.Join(Catalog(), " "))
		}
		parts := strings.Split(rest, ",")
		r := &rule{point: point, delay: 10 * time.Millisecond, after: 1, prob: 1}
		switch strings.TrimSpace(parts[0]) {
		case "error":
			r.mode = ModeError
		case "panic":
			r.mode = ModePanic
		case "slow":
			r.mode = ModeSlow
		default:
			return nil, fmt.Errorf("faultinject: unknown mode %q for %s (error|panic|slow)", parts[0], point)
		}
		var seed int64 = 1
		for _, opt := range parts[1:] {
			k, v, ok := strings.Cut(strings.TrimSpace(opt), "=")
			if !ok {
				return nil, fmt.Errorf("faultinject: bad option %q for %s", opt, point)
			}
			var err error
			switch k {
			case "delay":
				r.delay, err = time.ParseDuration(v)
			case "after":
				r.after, err = strconv.ParseInt(v, 10, 64)
			case "times":
				r.times, err = strconv.ParseInt(v, 10, 64)
			case "p":
				r.prob, err = strconv.ParseFloat(v, 64)
			case "seed":
				seed, err = strconv.ParseInt(v, 10, 64)
			default:
				return nil, fmt.Errorf("faultinject: unknown option %q for %s", k, point)
			}
			if err != nil {
				return nil, fmt.Errorf("faultinject: bad value for %s.%s: %v", point, k, err)
			}
		}
		if r.after < 1 {
			r.after = 1
		}
		if r.prob < 1 {
			r.rng = rand.New(rand.NewSource(seed))
		}
		out[point] = r
	}
	return out, nil
}

// Hit is an injection point: it returns an error, panics, or sleeps when
// the point is armed and its rule fires, and is a near-free no-op
// otherwise. Call sites compile it in unconditionally.
func Hit(point string) error {
	if !enabled.Load() {
		return nil
	}
	mu.RLock()
	r := rules[point]
	mu.RUnlock()
	if r == nil {
		return nil
	}
	hit := r.hits.Add(1)
	if hit < r.after {
		return nil
	}
	if r.times > 0 && r.fired.Load() >= r.times {
		return nil
	}
	if r.rng != nil {
		r.rngMu.Lock()
		roll := r.rng.Float64()
		r.rngMu.Unlock()
		if roll >= r.prob {
			return nil
		}
	}
	r.fired.Add(1)
	switch r.mode {
	case ModePanic:
		panic(fmt.Sprintf("faultinject: injected panic at %s", point))
	case ModeSlow:
		time.Sleep(r.delay)
		return nil
	default:
		return fmt.Errorf("%w at %s", ErrInjected, point)
	}
}

// Counts reports one point's hit/fire counters.
type Counts struct {
	// Hits counts Hit calls observed while the point was armed.
	Hits int64 `json:"hits"`
	// Fired counts hits that actually injected.
	Fired int64 `json:"fired"`
	// Mode is the armed mode.
	Mode string `json:"mode"`
}

// Stats returns the counters of every armed point.
func Stats() map[string]Counts {
	mu.RLock()
	defer mu.RUnlock()
	out := make(map[string]Counts, len(rules))
	for p, r := range rules {
		out[p] = Counts{Hits: r.hits.Load(), Fired: r.fired.Load(), Mode: r.mode.String()}
	}
	return out
}

// Active reports whether any injection spec is installed.
func Active() bool { return enabled.Load() }
