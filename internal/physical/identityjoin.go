package physical

import (
	"context"
	"fmt"

	"tlc/internal/seq"
	"tlc/internal/store"
)

// IdentityMergeJoin joins two sequences on node identity: a left tree
// pairs with every right tree whose node bound to rightLCL references the
// same underlying node as the left tree's leftLCL binding. For each pair,
// the right anchor's attached branches (its witness kids) are grafted
// under the left anchor and the right tree's classes carried over.
//
// This is the "join on the bound variables" the TAX baseline performs to
// stitch the RETURN-clause path selections back onto the FOR/WHERE part
// (Section 6.1): the re-matched paths are reconciled with the already
// bound nodes by identity. Left trees without a partner pass through
// unchanged (the re-matched path may be optional); identifiers are already
// in memory, so the join itself is cheap — the cost TAX pays is the fresh
// pattern match producing the right side.
func IdentityMergeJoin(ctx context.Context, st *store.Store, left, right seq.Seq, leftLCL, rightLCL int) (seq.Seq, error) {
	byID := make(map[string][]*seq.Tree, len(right))
	for _, r := range right {
		a, err := r.Singleton(rightLCL)
		if err != nil {
			return nil, fmt.Errorf("physical: identity join right side: %w", err)
		}
		byID[a.Identity()] = append(byID[a.Identity()], r)
	}
	// takeRight consumes a right tree on first use when unfrozen (grafting
	// re-parents its anchor's branches); later uses and frozen trees are
	// copied. A right tree may partner several left trees (same identity).
	usedRight := make(map[*seq.Tree]bool, len(right))
	takeRight := func(r *seq.Tree) (*seq.Tree, seq.NodeMap) {
		if !usedRight[r] {
			usedRight[r] = true
			if !r.Frozen() {
				return r, seq.NodeMap{}
			}
		}
		return r.CloneWithMapping()
	}
	var out seq.Seq
	for i, l := range left {
		if err := poll(ctx, i); err != nil {
			return nil, err
		}
		members := l.Class(leftLCL)
		if len(members) != 1 {
			// No (or ambiguous) anchor: nothing to merge onto.
			out = append(out, l)
			continue
		}
		partners := byID[members[0].Identity()]
		if len(partners) == 0 {
			out = append(out, l)
			continue
		}
		for pi, r := range partners {
			// Copy the left per pair; its last pair consumes it if unfrozen.
			nt, mapping := l, seq.NodeMap{}
			if pi < len(partners)-1 || l.Frozen() {
				nt, mapping = l.CloneWithMapping()
			}
			anchor := mapping.Get(members[0])
			rc, rmap := takeRight(r)
			ra, err := rc.Singleton(rightLCL)
			if err != nil {
				return nil, fmt.Errorf("physical: identity join right side: %w", err)
			}
			for _, k := range ra.Kids {
				seq.Attach(anchor, k)
			}
			for _, lcl := range r.Classes() {
				if lcl == rightLCL {
					continue // the anchor itself is already bound on the left
				}
				for _, n := range r.ClassAll(lcl) {
					cp := rmap.Get(n)
					if cp == ra {
						cp = anchor
					}
					nt.AddToClass(lcl, cp)
				}
			}
			out = append(out, nt)
		}
	}
	return out, nil
}
