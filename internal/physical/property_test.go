package physical

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"tlc/internal/pattern"
	"tlc/internal/seq"
	"tlc/internal/store"
	"tlc/internal/xmltree"
)

// This file cross-checks the structural-join-based APT matcher against a
// brute-force reference evaluator on randomly generated documents and
// patterns. The reference enumerates witness trees directly from the
// semantics of Definition 3; agreement over thousands of random cases is
// the strongest correctness evidence we have for the matcher.

// genDoc builds a random document over a tiny tag alphabet with repeated
// and missing children at every level.
func genDoc(rng *rand.Rand, maxNodes int) *xmltree.Document {
	b := xmltree.NewBuilder("rand.xml")
	b.OpenElement("r")
	n := 1
	var grow func(depth int)
	grow = func(depth int) {
		if depth > 4 {
			return
		}
		kids := rng.Intn(4)
		for i := 0; i < kids && n < maxNodes; i++ {
			tag := string(rune('a' + rng.Intn(3)))
			n++
			b.OpenElement(tag)
			if rng.Intn(2) == 0 {
				b.TextNode(fmt.Sprint(rng.Intn(5)))
			}
			grow(depth + 1)
			b.CloseElement()
		}
	}
	grow(0)
	b.CloseElement()
	d, err := b.Done()
	if err != nil {
		panic(err)
	}
	return d
}

// genPattern builds a random APT rooted at the document with 1-4 nodes.
func genPattern(rng *rand.Rand) *pattern.Tree {
	lcl := 0
	newNode := func() *pattern.Node {
		lcl++
		return pattern.NewTagNode(lcl, string(rune('a'+rng.Intn(3))))
	}
	specs := []pattern.MSpec{pattern.One, pattern.ZeroOrOne, pattern.OneOrMore, pattern.ZeroOrMore}
	axes := []pattern.Axis{pattern.Child, pattern.Descendant}
	lcl++
	root := pattern.NewDocRoot(lcl, "rand.xml")
	nodes := []*pattern.Node{root}
	for i, n := 0, 1+rng.Intn(3); i < n; i++ {
		parent := nodes[rng.Intn(len(nodes))]
		child := newNode()
		if rng.Intn(4) == 0 {
			child.Pred = &pattern.Predicate{Op: pattern.GT, Value: fmt.Sprint(rng.Intn(4))}
		}
		parent.Add(child, axes[rng.Intn(2)], specs[rng.Intn(4)])
		nodes = append(nodes, child)
	}
	return &pattern.Tree{Root: root}
}

// refMatch enumerates witness trees by direct recursion over Definition 3:
// for each candidate x of a pattern node, each edge contributes either the
// clustered set of all matching children ("+"/"*") or a choice over single
// children ("-"/"?"); the result is the cross product of edge choices.
type refWitness struct {
	// classes maps LCL -> sorted store ordinals.
	classes map[int][]int32
}

func refMatch(st *store.Store, id store.DocID, apt *pattern.Tree) []refWitness {
	d := st.Doc(id)
	var matchNode func(p *pattern.Node, ord int32) []refWitness
	candidatesBelow := func(p *pattern.Node, anc int32, axis pattern.Axis) []int32 {
		var out []int32
		aid := d.ID(anc)
		for i := 0; i < d.Len(); i++ {
			ord := int32(i)
			if d.Tag(ord) != p.Tag || !aid.Contains(d.ID(ord)) {
				continue
			}
			if axis == pattern.Child && d.Level(ord) != aid.Level+1 {
				continue
			}
			if p.Pred != nil && !p.Pred.Eval(d.Content(ord)) {
				continue
			}
			out = append(out, ord)
		}
		return out
	}
	merge := func(a, b refWitness) refWitness {
		m := refWitness{classes: map[int][]int32{}}
		for k, v := range a.classes {
			m.classes[k] = append(m.classes[k], v...)
		}
		for k, v := range b.classes {
			m.classes[k] = append(m.classes[k], v...)
		}
		return m
	}
	matchNode = func(p *pattern.Node, ord int32) []refWitness {
		base := refWitness{classes: map[int][]int32{}}
		if p.LCL > 0 {
			base.classes[p.LCL] = []int32{ord}
		}
		results := []refWitness{base}
		for _, e := range p.Edges {
			cands := candidatesBelow(e.To, ord, e.Axis)
			// Sub-witnesses per candidate.
			var subs [][]refWitness
			for _, c := range cands {
				subs = append(subs, matchNode(e.To, c))
			}
			var edgeAlts []refWitness
			if e.Spec.Nested() {
				// Join semantics (Section 5.2, normative for the
				// implementation): the cluster contains every matched
				// sub-witness of every candidate — candidates whose own
				// subtrees cannot match are silently dropped, and a
				// candidate whose flat descendants multiply contributes
				// one cluster entry per alternative.
				cluster := refWitness{classes: map[int][]int32{}}
				contributed := 0
				for _, sw := range subs {
					for _, w := range sw {
						cluster = merge(cluster, w)
						contributed++
					}
				}
				if contributed == 0 && !e.Spec.Optional() {
					return nil
				}
				edgeAlts = []refWitness{cluster}
			} else {
				for _, sw := range subs {
					edgeAlts = append(edgeAlts, sw...)
				}
				if len(edgeAlts) == 0 && e.Spec.Optional() {
					edgeAlts = []refWitness{{classes: map[int][]int32{}}}
				}
			}
			if len(edgeAlts) == 0 {
				return nil
			}
			var next []refWitness
			for _, r := range results {
				for _, ea := range edgeAlts {
					next = append(next, merge(r, ea))
				}
			}
			results = next
		}
		return results
	}
	return matchNode(apt.Root, 0)
}

// canonicalWitnesses renders witnesses order-insensitively.
func canonicalWitnesses(ws []refWitness) string {
	lines := make([]string, 0, len(ws))
	for _, w := range ws {
		var ks []int
		for k := range w.classes {
			ks = append(ks, k)
		}
		sort.Ints(ks)
		var sb strings.Builder
		for _, k := range ks {
			v := append([]int32(nil), w.classes[k]...)
			sort.Slice(v, func(i, j int) bool { return v[i] < v[j] })
			fmt.Fprintf(&sb, "%d=%v;", k, v)
		}
		lines = append(lines, sb.String())
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

func witnessesOf(res seq.Seq) []refWitness {
	out := make([]refWitness, 0, len(res))
	for _, t := range res {
		w := refWitness{classes: map[int][]int32{}}
		for _, lcl := range t.Classes() {
			for _, n := range t.Class(lcl) {
				w.classes[lcl] = append(w.classes[lcl], n.Ord)
			}
		}
		out = append(out, w)
	}
	return out
}

// TestPropertyMatchAgainstReference runs the matcher against the reference
// evaluator on many random (document, pattern) pairs.
func TestPropertyMatchAgainstReference(t *testing.T) {
	const cases = 400
	mismatches := 0
	for i := 0; i < cases; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		doc := genDoc(rng, 40)
		st := store.New()
		id, err := st.Load(doc)
		if err != nil {
			t.Fatal(err)
		}
		apt := genPattern(rng)
		m := NewMatcher(st)
		res, err := m.MatchDocument(context.Background(), apt)
		if err != nil {
			t.Fatalf("case %d: match: %v\npattern:\n%s", i, err, apt)
		}
		got := canonicalWitnesses(witnessesOf(res))
		want := canonicalWitnesses(refMatch(st, id, apt))
		if got != want {
			mismatches++
			if mismatches <= 3 {
				t.Errorf("case %d mismatch\npattern:\n%s\ndoc: %s\ngot:\n%s\nwant:\n%s",
					i, apt, doc.XML(0), got, want)
			}
		}
	}
	if mismatches > 0 {
		t.Fatalf("%d/%d cases mismatched", mismatches, cases)
	}
}
