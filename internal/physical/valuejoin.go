package physical

import (
	"context"
	"fmt"
	"sort"

	"tlc/internal/faultinject"
	"tlc/internal/pattern"
	"tlc/internal/seq"
	"tlc/internal/store"
)

// JoinSpec describes a value join between two tree sequences: the content
// of the singleton left class is compared against the content of the
// singleton right class. Only equality joins use the sort–merge–sort
// algorithm of Section 5.1; other comparison operators fall back to a
// nested-loop join (the paper's implementation "does not support indices
// on join values" either).
type JoinSpec struct {
	// LeftLCL and RightLCL are the logical classes carrying the join
	// values. Both must bind to singleton sets per tree.
	LeftLCL, RightLCL int
	// Op is the comparison; EQ enables sort–merge–sort.
	Op pattern.Cmp
	// RightSpec is the mSpec of the right edge of the join's result
	// pattern: "-" pairs, "?" left-outer pairs, "+" nest, "*" outer-nest
	// (the Join operator of Section 2.3).
	RightSpec pattern.MSpec
	// RootTag and RootLCL describe the artificial root node stitched on
	// top of each output tree.
	RootTag string
	RootLCL int
	// ForceNestedLoop disables the sort–merge–sort strategy for equality
	// joins; used by the ablation benchmarks to quantify Section 5.1's
	// claim.
	ForceNestedLoop bool
}

// ValueJoin joins the two sequences according to spec, producing output
// trees in the document order of the left input (sort–merge–sort: sort by
// key, merge, then restore left order). Trees on either side whose join
// class does not bind to exactly one active node are skipped for "-"/"+"
// joins — a missing join value cannot satisfy the predicate — matching the
// semantics of value predicates over optional paths.
func ValueJoin(ctx context.Context, st *store.Store, left, right seq.Seq, spec JoinSpec) (seq.Seq, error) {
	if err := faultinject.Hit(faultinject.PointValueJoin); err != nil {
		return nil, err
	}
	if spec.RootTag == "" {
		spec.RootTag = "join_root"
	}
	lk, err := joinKeys(st, left, spec.LeftLCL)
	if err != nil {
		return nil, fmt.Errorf("physical: value join left side: %w", err)
	}
	rk, err := joinKeys(st, right, spec.RightLCL)
	if err != nil {
		return nil, fmt.Errorf("physical: value join right side: %w", err)
	}
	var matches func(i int) []int
	if spec.Op == pattern.EQ && !spec.ForceNestedLoop {
		matches = mergeMatcher(lk, rk)
	} else {
		matches = loopMatcher(lk, rk, spec.Op)
	}
	// The operator owns its unfrozen single-consumer inputs: each left tree
	// is consumed by its first emitted pair (copied only for additional
	// pairs), and each right tree by its first participating output. Frozen
	// trees are shared with other plan consumers and always copied —
	// stitching re-parents their nodes.
	rightUsed := make([]bool, len(right))
	takeRight := func(j int) *seq.Tree {
		if !rightUsed[j] {
			rightUsed[j] = true
			if !right[j].Frozen() {
				return right[j]
			}
		}
		return right[j].Clone()
	}
	var out seq.Seq
	for i := range left {
		if err := poll(ctx, i); err != nil {
			return nil, err
		}
		if lk[i].missing {
			continue
		}
		ms := matches(i)
		leftUsed := false
		takeLeft := func() *seq.Tree {
			if !leftUsed {
				leftUsed = true
				if !left[i].Frozen() {
					return left[i]
				}
			}
			return left[i].Clone()
		}
		switch {
		case spec.RightSpec.Nested():
			if len(ms) == 0 && !spec.RightSpec.Optional() {
				continue
			}
			rights := make([]*seq.Tree, 0, len(ms))
			for _, j := range ms {
				rights = append(rights, takeRight(j))
			}
			out = append(out, stitchTrees(spec.RootTag, spec.RootLCL, takeLeft(), rights))
		default:
			if len(ms) == 0 {
				if spec.RightSpec.Optional() {
					out = append(out, stitchTrees(spec.RootTag, spec.RootLCL, takeLeft(), nil))
				}
				continue
			}
			// Stitching re-parents the left tree's nodes, so every pair needs
			// its own copy; takeLeft hands the original to the first pair
			// (when unfrozen) and copies for the rest.
			for _, j := range ms {
				out = append(out, stitchTrees(spec.RootTag, spec.RootLCL, takeLeft(), []*seq.Tree{takeRight(j)}))
			}
		}
	}
	return out, nil
}

// CartesianJoin stitches every pair of left and right trees under a fresh
// root — the join created for multiple FOR clauses before any predicate is
// known (Join 5 of Figure 7 at creation time). The output is quadratic, so
// the context is polled per emitted pair: a Cartesian product under a
// deadline stops almost immediately.
func CartesianJoin(ctx context.Context, rootTag string, rootLCL int, left, right seq.Seq) (seq.Seq, error) {
	if rootTag == "" {
		rootTag = "join_root"
	}
	out := make(seq.Seq, 0, len(left)*len(right))
	for li, l := range left {
		for ri, r := range right {
			if err := poll(ctx, len(out)); err != nil {
				return nil, err
			}
			// Each pair stitches private copies, except that an unfrozen
			// tree is consumed (not copied) by its last participating pair.
			lt := l
			if ri < len(right)-1 || l.Frozen() {
				lt = l.Clone()
			}
			rt := r
			if li < len(left)-1 || r.Frozen() {
				rt = r.Clone()
			}
			out = append(out, stitchTrees(rootTag, rootLCL, lt, []*seq.Tree{rt}))
		}
	}
	return out, nil
}

// NestAllJoin stitches, for every left tree, all right trees under one
// fresh root — the unconditional nest join used for uncorrelated LET
// bindings over a nested FLWOR (every binding tuple sees the whole inner
// result, clustered).
func NestAllJoin(ctx context.Context, rootTag string, rootLCL int, left, right seq.Seq) (seq.Seq, error) {
	if rootTag == "" {
		rootTag = "join_root"
	}
	stitched := 0
	out := make(seq.Seq, 0, len(left))
	for li, l := range left {
		lastL := li == len(left)-1
		rights := make([]*seq.Tree, 0, len(right))
		for _, r := range right {
			if err := poll(ctx, stitched); err != nil {
				return nil, err
			}
			stitched++
			// The last left tree consumes unfrozen rights; earlier ones copy.
			rt := r
			if !lastL || r.Frozen() {
				rt = r.Clone()
			}
			rights = append(rights, rt)
		}
		lt := l
		if l.Frozen() {
			lt = l.Clone()
		}
		out = append(out, stitchTrees(rootTag, rootLCL, lt, rights))
	}
	return out, nil
}

// stitchTrees builds one output tree: a fresh root with the left tree's
// root as first child and the right roots following, class maps merged.
// The left tree is consumed (its nodes are re-parented, not copied), so
// callers pass only trees they own (unfrozen or freshly copied). The new
// root draws from the left tree's arena.
func stitchTrees(rootTag string, rootLCL int, left *seq.Tree, rights []*seq.Tree) *seq.Tree {
	a := left.Arena()
	root := a.TempElement(rootTag)
	t := a.NewTree(root)
	if rootLCL > 0 {
		t.AddToClass(rootLCL, root)
	}
	seq.Attach(root, left.Root)
	for _, lcl := range left.Classes() {
		for _, n := range left.ClassAll(lcl) {
			t.AddToClass(lcl, n)
		}
	}
	for _, r := range rights {
		seq.Attach(root, r.Root)
		for _, lcl := range r.Classes() {
			for _, n := range r.ClassAll(lcl) {
				t.AddToClass(lcl, n)
			}
		}
	}
	return t
}

type joinKey struct {
	values  []string
	missing bool
	// shard is the store shard owning the key's first class member (0 for
	// purely temporary members). The equality matcher builds its sorted key
	// runs shard-locally and k-way merges them.
	shard int
}

// joinKeys extracts the join values of every tree: the contents of the
// class's active members. The paper's Join requires singleton classes, but
// a correlated join deferred out of a nested block carries the clustered
// class of Figure 8 (LCL 9 under a "*" edge), so the predicate is
// evaluated existentially over the member set — which is also XQuery's
// general-comparison semantics. A class binding to zero nodes yields a
// missing key: a tree without a join value cannot satisfy the predicate.
func joinKeys(st *store.Store, s seq.Seq, lcl int) ([]joinKey, error) {
	keys := make([]joinKey, len(s))
	for i, t := range s {
		members := t.Class(lcl)
		if len(members) == 0 {
			keys[i] = joinKey{missing: true}
			continue
		}
		vals := make([]string, len(members))
		for j, m := range members {
			vals[j] = seq.Content(st, m)
		}
		shard := 0
		if members[0].IsStore() {
			shard = st.ShardOf(members[0].Doc)
		}
		keys[i] = joinKey{values: vals, shard: shard}
	}
	return keys, nil
}

// runEntry is one (join value, right index) pair of a shard-local run.
type runEntry struct {
	v string
	j int
}

// mergeMatcher implements the equality phase of sort–merge–sort with
// shard-local sorted runs: the right side's (value, index) pairs are
// grouped by the shard owning each tree, each shard's run is sorted
// independently — the per-shard "sort" pass, which a sharded store can do
// shard-parallel without any cross-shard coordination — and the runs are
// k-way merged into the value → right-index grouping the lookup probes.
// Because the caller iterates the left side in its original order and we
// only return indexes, the final "sort back to document order" is implicit.
// Multi-valued keys match existentially: any shared value pairs the trees.
func mergeMatcher(lk, rk []joinKey) func(int) []int {
	runsByShard := make(map[int][]runEntry)
	for j, k := range rk {
		for _, v := range k.values {
			runsByShard[k.shard] = append(runsByShard[k.shard], runEntry{v: v, j: j})
		}
	}
	runs := make([][]runEntry, 0, len(runsByShard))
	for _, r := range runsByShard {
		r := r
		sort.Slice(r, func(a, b int) bool {
			if r[a].v != r[b].v {
				return r[a].v < r[b].v
			}
			return r[a].j < r[b].j
		})
		runs = append(runs, r)
	}
	groups := mergeRuns(runs)
	return func(i int) []int {
		k := lk[i]
		if len(k.values) == 1 {
			// Merged groups are already index-sorted and deduplicated.
			return groups[k.values[0]]
		}
		var out []int
		for _, v := range k.values {
			out = append(out, groups[v]...)
		}
		return dedupSorted(out)
	}
}

// mergeRuns k-way merges shard-local (value, index) runs into the global
// value → right-index grouping. Each run is sorted by (value, index), so
// popping the least head yields, per value, its right indexes in ascending
// order — the group lists come out sorted and adjacent duplicates (one
// tree carrying the same value twice) are dropped during the merge.
func mergeRuns(runs [][]runEntry) map[string][]int {
	heads := make([]int, len(runs))
	n := 0
	for _, r := range runs {
		n += len(r)
	}
	groups := make(map[string][]int, n)
	for {
		best := -1
		for r := range runs {
			if heads[r] >= len(runs[r]) {
				continue
			}
			if best < 0 {
				best = r
				continue
			}
			a, b := runs[r][heads[r]], runs[best][heads[best]]
			if a.v < b.v || (a.v == b.v && a.j < b.j) {
				best = r
			}
		}
		if best < 0 {
			return groups
		}
		e := runs[best][heads[best]]
		heads[best]++
		g := groups[e.v]
		if len(g) == 0 || g[len(g)-1] != e.j {
			groups[e.v] = append(g, e.j)
		}
	}
}

// dedupSorted sorts the index list and removes duplicates (one output per
// matching right tree, regardless of how many values matched).
func dedupSorted(in []int) []int {
	if len(in) <= 1 {
		return in
	}
	out := append([]int(nil), in...)
	sort.Ints(out)
	w := 1
	for i := 1; i < len(out); i++ {
		if out[i] != out[w-1] {
			out[w] = out[i]
			w++
		}
	}
	return out[:w]
}

// loopMatcher evaluates a non-equality join predicate by nested loops,
// existentially over the value sets.
func loopMatcher(lk, rk []joinKey, op pattern.Cmp) func(int) []int {
	return func(i int) []int {
		var out []int
		for j, k := range rk {
			if k.missing {
				continue
			}
			matched := false
			for _, lv := range lk[i].values {
				for _, rv := range k.values {
					if pattern.Compare(op, lv, rv) {
						matched = true
						break
					}
				}
				if matched {
					break
				}
			}
			if matched {
				out = append(out, j)
			}
		}
		return out
	}
}
