package physical

import (
	"context"
	"strings"
	"testing"

	"tlc/internal/pattern"
	"tlc/internal/seq"
)

// matchAs returns the witness trees of doc_root/a with classes 1=a.
func matchAs(t *testing.T, m *Matcher) seq.Seq {
	t.Helper()
	res, err := m.MatchDocument(context.Background(), aTree())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestExtendAddsBranches(t *testing.T) {
	s, _ := loadFixture(t, fixtureXML)
	m := NewMatcher(s)
	in := matchAs(t, m) // three bare a trees
	// class(1) -> b{*}[5]
	anchor := pattern.NewLCAnchor(0, 1)
	anchor.Add(pattern.NewTagNode(5, "b"), pattern.Child, pattern.ZeroOrMore)
	out, err := m.MatchExtend(context.Background(), in, &pattern.Tree{Root: anchor})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("got %d trees, want 3", len(out))
	}
	for i, want := range []int{2, 1, 0} {
		if got := len(out[i].Class(5)); got != want {
			t.Errorf("tree %d class 5 size = %d, want %d", i, got, want)
		}
	}
	// The branches are attached under the anchor.
	a := out[0].Class(1)[0]
	if len(a.Kids) != 2 || a.Kids[0].Tag != "b" {
		t.Errorf("anchor kids = %v", tags(a.Kids))
	}
	// Single-combination extensions mutate in place (operators own their
	// single-consumer inputs): the output trees ARE the input trees.
	if out[0] != in[0] {
		t.Error("single-combination extension did not reuse the input tree")
	}
}

func TestExtendDashMultipliesAndDrops(t *testing.T) {
	s, _ := loadFixture(t, fixtureXML)
	m := NewMatcher(s)
	in := matchAs(t, m)
	anchor := pattern.NewLCAnchor(0, 1)
	anchor.Add(pattern.NewTagNode(5, "b"), pattern.Child, pattern.One)
	out, err := m.MatchExtend(context.Background(), in, &pattern.Tree{Root: anchor})
	if err != nil {
		t.Fatal(err)
	}
	// a1 -> two witnesses, a2 -> one, a3 dropped ("-" needs a match).
	if len(out) != 3 {
		t.Fatalf("got %d trees, want 3", len(out))
	}
	var vals []string
	for _, w := range out {
		b, err := w.Singleton(5)
		if err != nil {
			t.Fatal(err)
		}
		vals = append(vals, seq.Content(s, b))
	}
	if strings.Join(vals, ",") != "1,2,3" {
		t.Errorf("b values = %v", vals)
	}
}

func TestExtendPlusDropsAnchorlessTree(t *testing.T) {
	s, _ := loadFixture(t, fixtureXML)
	m := NewMatcher(s)
	in := matchAs(t, m)
	anchor := pattern.NewLCAnchor(0, 1)
	anchor.Add(pattern.NewTagNode(5, "c"), pattern.Child, pattern.OneOrMore)
	out, err := m.MatchExtend(context.Background(), in, &pattern.Tree{Root: anchor})
	if err != nil {
		t.Fatal(err)
	}
	// a1 has one c, a2 none (dropped), a3 has two (clustered).
	if len(out) != 2 {
		t.Fatalf("got %d trees, want 2", len(out))
	}
	if got := len(out[1].Class(5)); got != 2 {
		t.Errorf("clustered c class = %d, want 2", got)
	}
}

func TestExtendEmptyAnchorClassPassesThrough(t *testing.T) {
	s, _ := loadFixture(t, fixtureXML)
	m := NewMatcher(s)
	in := matchAs(t, m)
	anchor := pattern.NewLCAnchor(0, 42) // class 42 empty everywhere
	anchor.Add(pattern.NewTagNode(5, "b"), pattern.Child, pattern.One)
	out, err := m.MatchExtend(context.Background(), in, &pattern.Tree{Root: anchor})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Errorf("got %d trees, want %d", len(out), len(in))
	}
}

func TestExtendRelabelsAnchor(t *testing.T) {
	s, _ := loadFixture(t, fixtureXML)
	m := NewMatcher(s)
	in := matchAs(t, m)
	anchor := pattern.NewLCAnchor(9, 1) // anchor additionally labelled 9
	out, err := m.MatchExtend(context.Background(), in, &pattern.Tree{Root: anchor})
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range out {
		if len(w.Class(9)) != 1 {
			t.Errorf("tree %d: anchor not added to class 9", i)
		}
	}
}

func TestExtendDeepPath(t *testing.T) {
	s, _ := loadFixture(t, `<r>
	  <a><m><n>7</n></m></a>
	  <a><m/></a>
	</r>`)
	m := NewMatcher(s)
	in := matchAs(t, m)
	anchor := pattern.NewLCAnchor(0, 1)
	mn := anchor.Add(pattern.NewTagNode(5, "m"), pattern.Child, pattern.ZeroOrMore)
	mn.Add(pattern.NewTagNode(6, "n"), pattern.Child, pattern.One)
	out, err := m.MatchExtend(context.Background(), in, &pattern.Tree{Root: anchor})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("got %d trees, want 2", len(out))
	}
	// First a: m survives because its n matched; second a: its m has no n,
	// so the "*" cluster is empty.
	if got := len(out[0].Class(6)); got != 1 {
		t.Errorf("first tree class 6 = %d", got)
	}
	if got := len(out[1].Class(5)); got != 0 {
		t.Errorf("second tree class 5 = %d, want 0 (m without n is not a match)", got)
	}
}

func TestExtendTemporaryAnchorClassifiesInPlace(t *testing.T) {
	s, _ := loadFixture(t, fixtureXML)
	m := NewMatcher(s)
	// Build a constructed tree: <res><b/>(store b)</res> where the b nodes
	// are materialized copies.
	bs := s.Tag(0, "b")
	root := seq.NewTempElement("res")
	tr := seq.NewTree(root)
	tr.AddToClass(1, root)
	for _, o := range bs {
		seq.Attach(root, seq.Materialize(s, 0, o))
	}
	anchor := pattern.NewLCAnchor(0, 1)
	anchor.Add(pattern.NewTagNode(5, "b"), pattern.Child, pattern.ZeroOrMore)
	out, err := m.MatchExtend(context.Background(), seq.Seq{tr}, &pattern.Tree{Root: anchor})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("got %d trees", len(out))
	}
	if got := len(out[0].Class(5)); got != 3 {
		t.Errorf("class 5 = %d, want 3 existing nodes classified", got)
	}
	// No branches were added: the kids are still exactly the 3 b nodes.
	if got := len(out[0].Root.Kids); got != 3 {
		t.Errorf("root kids = %d, want 3", got)
	}
}

func TestExtendTemporaryAnchorDescendant(t *testing.T) {
	s, _ := loadFixture(t, fixtureXML)
	m := NewMatcher(s)
	root := seq.NewTempElement("res")
	mid := seq.NewTempElement("mid")
	seq.Attach(root, mid)
	seq.Attach(mid, seq.NewTempText("x"))
	leaf := seq.NewTempElement("leaf")
	seq.Attach(mid, leaf)
	tr := seq.NewTree(root)
	tr.AddToClass(1, root)
	anchor := pattern.NewLCAnchor(0, 1)
	anchor.Add(pattern.NewTagNode(5, "leaf"), pattern.Descendant, pattern.OneOrMore)
	out, err := m.MatchExtend(context.Background(), seq.Seq{tr}, &pattern.Tree{Root: anchor})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || len(out[0].Class(5)) != 1 {
		t.Fatalf("descendant classify failed: %d trees", len(out))
	}
}

func TestExtendRequiresLCAnchor(t *testing.T) {
	s, _ := loadFixture(t, fixtureXML)
	m := NewMatcher(s)
	if _, err := m.MatchExtend(context.Background(), nil, aTree()); err == nil {
		t.Error("doc-rooted pattern accepted by MatchExtend")
	}
}
