// Package physical implements the physical operators of Section 5 of the
// TLC paper: annotated-pattern-tree matching compiled to structural joins
// (with the nest variants of Definition 8), the sort–merge–sort value join
// that preserves document order (Section 5.1), and the grouping machinery
// that the TAX and GTP baselines rely on instead of nest-joins.
//
// Pattern matching follows Section 5.2 exactly: each pattern edge is
// matched bottom-up by a structural join chosen by the edge's matching
// specification — "-" by a regular structural join, "?" by a left-outer
// join, "+" by a nest-join and "*" by a left-outer-nest-join. Candidate
// lists come from the store's tag index (merged with the value index for
// equality content predicates), and containment is decided on interval
// node identifiers, so each join is a range scan over sorted candidates.
package physical

import (
	"context"
	"fmt"
	"sync"

	"tlc/internal/faultinject"
	"tlc/internal/pattern"
	"tlc/internal/seq"
	"tlc/internal/store"
)

type classEntry struct {
	lcl  int
	node *seq.Node
}

// partial is a matched instance of a pattern subtree: its root witness node
// with all matched descendants already attached, plus the class labels
// collected along the way. A partial is single-use; take returns the
// partial itself on first use and a deep clone afterwards, so one matched
// subtree can be stitched under several ancestors.
type partial struct {
	root    *seq.Node
	classes []classEntry
	used    bool
}

func (p *partial) take(a *seq.Arena) *partial {
	if !p.used {
		p.used = true
		return p
	}
	return p.clone(a)
}

func (p *partial) clone(a *seq.Arena) *partial {
	root, nm := seq.CopySubtree(a, p.root)
	classes := make([]classEntry, len(p.classes))
	for i, c := range p.classes {
		classes[i] = classEntry{lcl: c.lcl, node: nm.Get(c.node)}
	}
	return &partial{root: root, classes: classes}
}

func (p *partial) attach(c *partial) {
	seq.Attach(p.root, c.root)
	p.classes = append(p.classes, c.classes...)
}

// Matcher executes annotated pattern trees against a store. It caches
// candidate node lists per pattern node, so a pattern used over a whole
// sequence probes each index once — the set-at-a-time behaviour of a
// structural join — rather than once per input tree.
type Matcher struct {
	st    *store.Store
	cands map[candKey][]int32
	// partials caches the matched subtree instances per pattern node, so
	// an extension pattern evaluated for every tree of a sequence builds
	// its candidate matches once; take() hands out the original on first
	// use and clones afterwards, keeping cached instances reusable.
	partials map[candKey][]*partial
	// shared marks a matcher used from concurrent worker goroutines: cache
	// access goes through mu, and cached partials are handed out as clones
	// only (never the mutable original), so the cache stays immutable and
	// race-free. Serial matchers keep the cheaper take-the-original path.
	shared bool
	mu     sync.Mutex
	// arena backs the witness nodes this matcher creates and clones; nil
	// falls back to plain new (tests, standalone use). The arena itself is
	// race-safe, so shared matchers use it from concurrent workers as-is.
	arena *seq.Arena
}

type candKey struct {
	doc  store.DocID
	node *pattern.Node
}

// NewMatcher returns a matcher over st for single-goroutine use.
func NewMatcher(st *store.Store) *Matcher {
	return &Matcher{
		st:       st,
		cands:    make(map[candKey][]int32),
		partials: make(map[candKey][]*partial),
	}
}

// NewSharedMatcher returns a matcher safe for use from concurrent
// goroutines (the parallel executor's DAG-branch and chunk workers).
func NewSharedMatcher(st *store.Store) *Matcher {
	m := NewMatcher(st)
	m.shared = true
	return m
}

// WithArena makes the matcher allocate witness nodes from a (nil keeps
// plain new) and returns the matcher for chaining. Set once, before use.
func (m *Matcher) WithArena(a *seq.Arena) *Matcher {
	m.arena = a
	return m
}

// take hands out a matched instance: serial matchers give the original on
// first use (the cheap path — most instances are consumed exactly once),
// shared matchers always clone so the cached instance is never mutated by
// a worker while another worker reads or clones it.
func (m *Matcher) take(p *partial) *partial {
	if m.shared {
		return p.clone(m.arena)
	}
	return p.take(m.arena)
}

// MatchDocument evaluates an APT rooted at a document-root test and returns
// the full set of witness trees in document order of their roots. The
// context is polled inside the matching loops, so cancellation stops a
// large match mid-way.
func (m *Matcher) MatchDocument(ctx context.Context, apt *pattern.Tree) (seq.Seq, error) {
	if err := apt.Validate(); err != nil {
		return nil, err
	}
	if apt.Root.Kind != pattern.TestDocRoot {
		return nil, fmt.Errorf("physical: MatchDocument needs a doc_root pattern, got kind %d", apt.Root.Kind)
	}
	doc, ok := m.st.Lookup(apt.Root.Doc)
	if !ok {
		return nil, fmt.Errorf("physical: document %q not loaded", apt.Root.Doc)
	}
	parts, err := m.matchNode(ctx, doc, apt.Root)
	if err != nil {
		return nil, err
	}
	out := make(seq.Seq, 0, len(parts))
	for i, p := range parts {
		if err := poll(ctx, i); err != nil {
			return nil, err
		}
		p := m.take(p) // the witness trees own these instances
		t := m.arena.NewTree(p.root)
		for _, c := range p.classes {
			t.AddToClass(c.lcl, c.node)
		}
		out = append(out, t)
	}
	return out, nil
}

// matchNode matches the pattern subtree rooted at p bottom-up and returns
// the resulting partials sorted by root ordinal. Results are cached per
// pattern node: repeated evaluations (one per input tree in extension
// matching) reuse the matched instances through take().
func (m *Matcher) matchNode(ctx context.Context, doc store.DocID, p *pattern.Node) ([]*partial, error) {
	key := candKey{doc: doc, node: p}
	if parts, ok := m.loadPartials(key); ok {
		return parts, nil
	}
	parts, err := m.buildPartials(ctx, doc, p)
	if err != nil {
		return nil, err
	}
	m.storePartials(key, parts)
	return parts, nil
}

// loadPartials and storePartials guard the partial cache in shared mode.
// Two workers racing on a miss both build the same (immutable, always-
// cloned) instance set and the last store wins — duplicated work on a cold
// cache, never a correctness issue. A single mutex around the whole build
// would deadlock: buildPartials recurses into matchNode for child patterns.
func (m *Matcher) loadPartials(key candKey) ([]*partial, bool) {
	if m.shared {
		m.mu.Lock()
		defer m.mu.Unlock()
	}
	parts, ok := m.partials[key]
	return parts, ok
}

func (m *Matcher) storePartials(key candKey, parts []*partial) {
	if m.shared {
		m.mu.Lock()
		defer m.mu.Unlock()
	}
	m.partials[key] = parts
}

func (m *Matcher) buildPartials(ctx context.Context, doc store.DocID, p *pattern.Node) ([]*partial, error) {
	if err := faultinject.Hit(faultinject.PointMatcher); err != nil {
		return nil, err
	}
	ords, err := m.candidates(doc, p)
	if err != nil {
		return nil, err
	}
	d := m.st.Doc(doc)
	// One backing array for the partial structs and one for their seed
	// class entries: a leaf pattern node allocates one partial per
	// candidate, which made the per-candidate &partial{} and its one-entry
	// classes slice the two hottest allocation sites of the evaluator.
	ps := make([]partial, len(ords))
	var entries []classEntry
	if p.LCL > 0 {
		entries = make([]classEntry, len(ords))
	}
	parts := make([]*partial, 0, len(ords))
	for i, o := range ords {
		if err := poll(ctx, i); err != nil {
			return nil, err
		}
		n := m.arena.StoreNodeOf(doc, o, d)
		pt := &ps[i]
		pt.root = n
		if p.LCL > 0 {
			entries[i] = classEntry{lcl: p.LCL, node: n}
			// Full-slice cap: an attach that appends to classes must
			// reallocate rather than stomp the next candidate's entry.
			pt.classes = entries[i : i+1 : i+1]
		}
		parts = append(parts, pt)
	}
	var seenGroups map[int]bool
	for i := range p.Edges {
		e := p.Edges[i]
		switch {
		case e.Group > 0:
			// All member edges of an OR group are evaluated as one unit at
			// the position of the first member.
			if seenGroups[e.Group] {
				continue
			}
			if seenGroups == nil {
				seenGroups = make(map[int]bool)
			}
			seenGroups[e.Group] = true
			parts, err = m.filterGroup(ctx, doc, parts, memberEdges(p, e.Group))
		case e.Not:
			parts, err = m.filterNot(ctx, doc, parts, e)
		default:
			parts, err = m.expandEdge(ctx, doc, parts, e)
		}
		if err != nil {
			return nil, err
		}
	}
	return parts, nil
}

// memberEdges collects the edges of n belonging to OR group id.
func memberEdges(n *pattern.Node, id int) []pattern.Edge {
	var out []pattern.Edge
	for _, e := range n.Edges {
		if e.Group == id {
			out = append(out, e)
		}
	}
	return out
}

// filterNot implements a NOT-annotated edge as an anti-join: parents with
// at least one structural match of the edge's subtree are dropped, nothing
// is attached. The subtree matches come from the same per-node cache as
// positive edges, so the probe cost is one index lookup per tag.
func (m *Matcher) filterNot(ctx context.Context, doc store.DocID, parents []*partial, e pattern.Edge) ([]*partial, error) {
	children, err := m.matchNode(ctx, doc, e.To)
	if err != nil {
		return nil, err
	}
	d := m.st.Doc(doc)
	var out, scratch []*partial
	for i, P := range parents {
		if err := poll(ctx, i); err != nil {
			return nil, err
		}
		var ms []*partial
		ms, scratch = structuralMatches(d, P.root.Ord, children, e.Axis, scratch)
		if len(ms) == 0 {
			out = append(out, P)
		}
	}
	return out, nil
}

// filterGroup implements an OR-annotated edge set natively: the parent
// survives when at least one positive member has a structural match or one
// NOT member has none. Positive members sharing an axis are merged into a
// single document-ordered candidate list first, so the group costs one
// range scan per parent and axis instead of one pass per disjunct — the
// single-pass evaluation that replaces the old rewrite into a filter
// union. Like NOT edges, group edges are pure existence tests: no witness
// nodes are attached and no classes are bound.
func (m *Matcher) filterGroup(ctx context.Context, doc store.DocID, parents []*partial, members []pattern.Edge) ([]*partial, error) {
	merged := make(map[pattern.Axis][]*partial)
	type notMember struct {
		axis     pattern.Axis
		children []*partial
	}
	var nots []notMember
	for _, e := range members {
		children, err := m.matchNode(ctx, doc, e.To)
		if err != nil {
			return nil, err
		}
		if e.Not {
			nots = append(nots, notMember{axis: e.Axis, children: children})
			continue
		}
		merged[e.Axis] = mergeByOrd(merged[e.Axis], children)
	}
	dd := m.st.Doc(doc)
	var out, scratch []*partial
	for i, P := range parents {
		if err := poll(ctx, i); err != nil {
			return nil, err
		}
		pass := false
		for axis, children := range merged {
			var ms []*partial
			ms, scratch = structuralMatches(dd, P.root.Ord, children, axis, scratch)
			if len(ms) > 0 {
				pass = true
				break
			}
		}
		for _, nm := range nots {
			if pass {
				break
			}
			var ms []*partial
			ms, scratch = structuralMatches(dd, P.root.Ord, nm.children, nm.axis, scratch)
			if len(ms) == 0 {
				pass = true
			}
		}
		if pass {
			out = append(out, P)
		}
	}
	return out, nil
}

// mergeByOrd merges two partial lists sorted by root ordinal into one
// document-ordered list (the "alternatives merged in document order" step
// of native OR matching). Duplicate ordinals across disjuncts are kept;
// existence tests only probe for a non-empty range.
func mergeByOrd(a, b []*partial) []*partial {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make([]*partial, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i].root.Ord <= b[j].root.Ord {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// expandEdge joins the parent partials with the matches of one pattern
// edge, implementing the mSpec → join-variant mapping of Section 5.2.
func (m *Matcher) expandEdge(ctx context.Context, doc store.DocID, parents []*partial, e pattern.Edge) ([]*partial, error) {
	children, err := m.matchNode(ctx, doc, e.To)
	if err != nil {
		return nil, err
	}
	d := m.st.Doc(doc)
	var out []*partial
	// scratch is reused across parents for the parent-child axis filter;
	// each ms is fully consumed within its iteration, so overwriting it on
	// the next parent is safe and saves one slice allocation per parent.
	var scratch []*partial
	for i, P := range parents {
		if err := poll(ctx, i); err != nil {
			return nil, err
		}
		var ms []*partial
		ms, scratch = structuralMatches(d, P.root.Ord, children, e.Axis, scratch)
		switch {
		case e.Spec.Nested():
			if len(ms) == 0 && !e.Spec.Optional() {
				continue // "+" requires at least one match
			}
			for _, C := range ms {
				P.attach(m.take(C))
			}
			out = append(out, P)
		default: // "-" or "?"
			if len(ms) == 0 {
				if e.Spec.Optional() {
					out = append(out, P) // "?" lets the parent through
				}
				continue
			}
			for i, C := range ms {
				target := P
				if i < len(ms)-1 {
					target = P.clone(m.arena)
				}
				target.attach(m.take(C))
				out = append(out, target)
			}
		}
	}
	// Combination order: clones for the first k-1 children of a parent are
	// appended before the parent itself, which already follows child
	// document order per parent and parent order overall.
	return out, nil
}

// structuralMatches returns the child partials whose roots stand in the
// required structural relationship to the parent ordinal. Children are
// sorted by root ordinal, so containment is a binary-search range scan;
// the parent-child axis additionally filters on level (within an ancestor's
// interval, a node one level deeper is necessarily a child).
//
// The second result is the (possibly grown) scratch buffer: the child-axis
// filter appends into scratch[:0] and returns it as ms, so a caller looping
// over many parents reuses one buffer instead of allocating per parent. The
// caller must be done with ms before the next call; the descendant axis
// returns a subslice of children and leaves scratch untouched.
func structuralMatches(d *store.Doc, parentOrd int32, children []*partial, axis pattern.Axis, scratch []*partial) (ms, spare []*partial) {
	start, end := d.Start(parentOrd), d.End(parentOrd)
	lo := searchPartials(children, start+1)
	hi := searchPartials(children, end+1)
	in := children[lo:hi]
	if axis == pattern.Descendant {
		return in, scratch
	}
	level := d.Level(parentOrd)
	out := scratch[:0]
	for _, c := range in {
		if d.Level(c.root.Ord) == level+1 {
			out = append(out, c)
		}
	}
	return out, out
}

// searchPartials returns the first index whose root ordinal is >= ord.
func searchPartials(parts []*partial, ord int32) int {
	lo, hi := 0, len(parts)
	for lo < hi {
		mid := (lo + hi) / 2
		if parts[mid].root.Ord < ord {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// candidates returns the filtered, document-ordered candidate ordinals for
// one pattern node, caching the result so a pattern probed for a whole
// sequence hits each index once.
func (m *Matcher) candidates(doc store.DocID, p *pattern.Node) ([]int32, error) {
	key := candKey{doc: doc, node: p}
	if c, ok := m.loadCands(key); ok {
		return c, nil
	}
	var ords []int32
	switch p.Kind {
	case pattern.TestDocRoot:
		if m.st.Doc(doc).Name() != p.Doc {
			return nil, fmt.Errorf("physical: pattern document %q does not match %q", p.Doc, m.st.Doc(doc).Name())
		}
		ords = []int32{0}
	case pattern.TestTag:
		switch {
		case p.Pred != nil && p.Pred.Op == pattern.EQ:
			// Equality content predicates are answered by merging the tag
			// and value indexes, as in the paper's experimental setup.
			ords = m.st.TagValue(doc, p.Tag, p.Pred.Value)
		case p.Pred != nil:
			for _, o := range m.st.Tag(doc, p.Tag) {
				if p.Pred.Eval(m.st.Content(doc, o)) {
					ords = append(ords, o)
				}
			}
		default:
			ords = m.st.Tag(doc, p.Tag)
		}
	case pattern.TestWildcard:
		return nil, fmt.Errorf("physical: wildcard node tests are not supported in stored matches")
	case pattern.TestLC:
		return nil, fmt.Errorf("physical: logical-class anchor below the pattern root")
	default:
		return nil, fmt.Errorf("physical: unknown node test kind %d", p.Kind)
	}
	m.storeCands(key, ords)
	return ords, nil
}

func (m *Matcher) loadCands(key candKey) ([]int32, bool) {
	if m.shared {
		m.mu.Lock()
		defer m.mu.Unlock()
	}
	c, ok := m.cands[key]
	return c, ok
}

func (m *Matcher) storeCands(key candKey, ords []int32) {
	if m.shared {
		m.mu.Lock()
		defer m.mu.Unlock()
	}
	m.cands[key] = ords
}
