package physical

import (
	"context"
	"strings"
	"testing"

	"tlc/internal/pattern"
	"tlc/internal/seq"
	"tlc/internal/store"
)

// fixtureXML exercises heterogeneity in both dimensions, in the spirit of
// Figure 4: repeated b children, optional c children, and one a with no b.
const fixtureXML = `<r>
  <a><b>1</b><b>2</b><c>x</c></a>
  <a><b>3</b></a>
  <a><c>y</c><c>z</c></a>
</r>`

func loadFixture(t *testing.T, xml string) (*store.Store, store.DocID) {
	t.Helper()
	s := store.New()
	id, err := s.LoadXML("fixture.xml", strings.NewReader(xml))
	if err != nil {
		t.Fatal(err)
	}
	return s, id
}

// docRootTree builds doc_root -> a[1] (axis child) with the given extra
// edges below a.
func aTree(edges ...pattern.Edge) *pattern.Tree {
	root := pattern.NewDocRoot(0, "fixture.xml")
	a := pattern.NewTagNode(1, "a")
	a.Edges = edges
	root.Add(a, pattern.Child, pattern.One)
	return &pattern.Tree{Root: root}
}

func edge(tag string, lcl int, axis pattern.Axis, spec pattern.MSpec) pattern.Edge {
	return pattern.Edge{Axis: axis, Spec: spec, To: pattern.NewTagNode(lcl, tag)}
}

func tags(nodes []*seq.Node) []string {
	out := make([]string, len(nodes))
	for i, n := range nodes {
		out[i] = n.Tag
	}
	return out
}

func TestMatchClusteredPlusOptional(t *testing.T) {
	s, _ := loadFixture(t, fixtureXML)
	m := NewMatcher(s)
	// a[1] with b{+}[2] and c{?}[3] — the Figure 4 shape.
	res, err := m.MatchDocument(context.Background(), aTree(
		edge("b", 2, pattern.Child, pattern.OneOrMore),
		edge("c", 3, pattern.Child, pattern.ZeroOrOne),
	))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("got %d witness trees, want 2 (third a has no b)", len(res))
	}
	// First witness: both bs clustered, one c.
	if got := len(res[0].Class(2)); got != 2 {
		t.Errorf("witness 0 class 2 size = %d, want 2", got)
	}
	if got := len(res[0].Class(3)); got != 1 {
		t.Errorf("witness 0 class 3 size = %d, want 1", got)
	}
	// Second witness: one b, empty c class ("?" lets the parent through).
	if got := len(res[1].Class(2)); got != 1 {
		t.Errorf("witness 1 class 2 size = %d, want 1", got)
	}
	if got := len(res[1].Class(3)); got != 0 {
		t.Errorf("witness 1 class 3 size = %d, want 0", got)
	}
	// Structure: matched children attached under the a node.
	a := res[0].Class(1)[0]
	if got := tags(a.Kids); len(got) != 3 {
		t.Errorf("witness 0 a kids = %v", got)
	}
}

func TestMatchDashMultiplies(t *testing.T) {
	s, _ := loadFixture(t, fixtureXML)
	m := NewMatcher(s)
	res, err := m.MatchDocument(context.Background(), aTree(edge("b", 2, pattern.Child, pattern.One)))
	if err != nil {
		t.Fatal(err)
	}
	// a1 splits into two witnesses (one per b), a2 gives one, a3 none.
	if len(res) != 3 {
		t.Fatalf("got %d witness trees, want 3", len(res))
	}
	var bVals []string
	for _, w := range res {
		b, err := w.Singleton(2)
		if err != nil {
			t.Fatal(err)
		}
		bVals = append(bVals, seq.Content(s, b))
	}
	if strings.Join(bVals, ",") != "1,2,3" {
		t.Errorf("b contents in document order = %v", bVals)
	}
}

func TestMatchStarLetsEmptyThrough(t *testing.T) {
	s, _ := loadFixture(t, fixtureXML)
	m := NewMatcher(s)
	res, err := m.MatchDocument(context.Background(), aTree(edge("b", 2, pattern.Child, pattern.ZeroOrMore)))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("got %d witness trees, want 3", len(res))
	}
	if got := len(res[2].Class(2)); got != 0 {
		t.Errorf("third a class 2 = %d members, want 0", got)
	}
}

func TestMatchDescendantAxis(t *testing.T) {
	s, _ := loadFixture(t, fixtureXML)
	m := NewMatcher(s)
	root := pattern.NewDocRoot(0, "fixture.xml")
	root.Add(pattern.NewTagNode(1, "b"), pattern.Descendant, pattern.One)
	res, err := m.MatchDocument(context.Background(), &pattern.Tree{Root: root})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Errorf("//b gave %d witnesses, want 3", len(res))
	}
}

func TestMatchContentPredicate(t *testing.T) {
	s, _ := loadFixture(t, fixtureXML)
	m := NewMatcher(s)
	b := pattern.NewTagNode(2, "b")
	b.Pred = &pattern.Predicate{Op: pattern.GT, Value: "1"}
	res, err := m.MatchDocument(context.Background(), aTree(pattern.Edge{Axis: pattern.Child, Spec: pattern.One, To: b}))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("b>1 gave %d witnesses, want 2", len(res))
	}
}

func TestMatchEqualityPredicateUsesValueIndex(t *testing.T) {
	s, _ := loadFixture(t, fixtureXML)
	s.ResetStats()
	m := NewMatcher(s)
	c := pattern.NewTagNode(2, "c")
	c.Pred = &pattern.Predicate{Op: pattern.EQ, Value: "y"}
	res, err := m.MatchDocument(context.Background(), aTree(pattern.Edge{Axis: pattern.Child, Spec: pattern.One, To: c}))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("c=y gave %d witnesses, want 1", len(res))
	}
	if st := s.Snapshot(); st.ValueLookups == 0 {
		t.Error("equality predicate did not use the value index")
	}
}

func TestMatchParentChildVsDescendant(t *testing.T) {
	s, _ := loadFixture(t, `<r><x><y><z>1</z></y></x></r>`)
	m := NewMatcher(s)
	// x / z : no match (z is a grandchild).
	root := pattern.NewDocRoot(0, "fixture.xml")
	x := root.Add(pattern.NewTagNode(1, "x"), pattern.Descendant, pattern.One)
	x.Add(pattern.NewTagNode(2, "z"), pattern.Child, pattern.One)
	res, err := m.MatchDocument(context.Background(), &pattern.Tree{Root: root})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Errorf("x/z gave %d witnesses, want 0", len(res))
	}
	// x // z : match.
	root2 := pattern.NewDocRoot(0, "fixture.xml")
	x2 := root2.Add(pattern.NewTagNode(1, "x"), pattern.Descendant, pattern.One)
	x2.Add(pattern.NewTagNode(2, "z"), pattern.Descendant, pattern.One)
	res, err = m.MatchDocument(context.Background(), &pattern.Tree{Root: root2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Errorf("x//z gave %d witnesses, want 1", len(res))
	}
}

func TestMatchDeepPattern(t *testing.T) {
	s, _ := loadFixture(t, `<r>
	  <p><q><b>1</b></q><q><b>2</b></q></p>
	  <p><q/></p>
	</r>`)
	m := NewMatcher(s)
	root := pattern.NewDocRoot(0, "fixture.xml")
	p := root.Add(pattern.NewTagNode(1, "p"), pattern.Child, pattern.One)
	q := p.Add(pattern.NewTagNode(2, "q"), pattern.Child, pattern.OneOrMore)
	q.Add(pattern.NewTagNode(3, "b"), pattern.Child, pattern.One)
	res, err := m.MatchDocument(context.Background(), &pattern.Tree{Root: root})
	if err != nil {
		t.Fatal(err)
	}
	// First p: q{+} over q-with-b partials: both qs qualify, clustered -> 1
	// witness. Second p: its q has no b, "+" fails -> dropped.
	if len(res) != 1 {
		t.Fatalf("got %d witnesses, want 1", len(res))
	}
	if got := len(res[0].Class(2)); got != 2 {
		t.Errorf("q class size = %d, want 2", got)
	}
	if got := len(res[0].Class(3)); got != 2 {
		t.Errorf("b class size = %d, want 2", got)
	}
}

func TestMatchDocumentErrors(t *testing.T) {
	s, _ := loadFixture(t, fixtureXML)
	m := NewMatcher(s)
	// Pattern rooted at a tag test.
	bad := &pattern.Tree{Root: pattern.NewTagNode(1, "a")}
	if _, err := m.MatchDocument(context.Background(), bad); err == nil {
		t.Error("tag-rooted MatchDocument succeeded")
	}
	// Unknown document.
	if _, err := m.MatchDocument(context.Background(), &pattern.Tree{Root: pattern.NewDocRoot(0, "nope.xml")}); err == nil {
		t.Error("unknown document succeeded")
	}
	// Invalid pattern.
	if _, err := m.MatchDocument(context.Background(), &pattern.Tree{}); err == nil {
		t.Error("nil-root pattern succeeded")
	}
}

func TestCandidateCachingProbesIndexOnce(t *testing.T) {
	s, _ := loadFixture(t, fixtureXML)
	m := NewMatcher(s)
	apt := aTree(edge("b", 2, pattern.Child, pattern.One))
	s.ResetStats()
	if _, err := m.MatchDocument(context.Background(), apt); err != nil {
		t.Fatal(err)
	}
	first := s.Snapshot().TagLookups
	s.ResetStats()
	if _, err := m.MatchDocument(context.Background(), apt); err != nil {
		t.Fatal(err)
	}
	if again := s.Snapshot().TagLookups; again != 0 {
		t.Errorf("re-match probed the index %d times; candidates should be cached", again)
	}
	if first == 0 {
		t.Error("first match did not probe the index")
	}
}
