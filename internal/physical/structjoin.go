package physical

import (
	"context"
	"fmt"
	"sort"

	"tlc/internal/faultinject"
	"tlc/internal/pattern"
	"tlc/internal/seq"
	"tlc/internal/store"
)

// StructuralJoin joins two tree sequences on a structural relationship
// (Definition 8 and its variants). The node bound to leftLCL in each left
// tree (a singleton) is tested against the root of each right tree; right
// trees standing in the required relationship are stitched under the left
// class node. The edge specification selects the variant exactly as in
// Section 5.2:
//
//	"-"  regular structural join: one output per matching pair
//	"?"  left-outer structural join
//	"+"  nest-structural-join: one output per left tree, all matches
//	"*"  left-outer-nest-structural-join
//
// Both the left class node and the right roots must reference stored nodes
// of the same document; structural predicates are undefined on temporary
// nodes (Section 5.1, property 2 is not required of temporaries).
func StructuralJoin(ctx context.Context, st *store.Store, left, right seq.Seq, leftLCL int, axis pattern.Axis, spec pattern.MSpec) (seq.Seq, error) {
	if err := faultinject.Hit(faultinject.PointStructJoin); err != nil {
		return nil, err
	}
	// Index right trees by root ordinal; right sequences are in document
	// order, so containment is a binary-search range scan.
	type rentry struct {
		tree *seq.Tree
		used bool
	}
	rents := make([]*rentry, 0, len(right))
	var prevOrd int32 = -1
	sorted := true
	for _, r := range right {
		if !r.Root.IsStore() {
			return nil, fmt.Errorf("physical: structural join right root is a temporary node")
		}
		if r.Root.Ord < prevOrd {
			sorted = false
		}
		prevOrd = r.Root.Ord
		rents = append(rents, &rentry{tree: r})
	}
	if !sorted {
		return nil, fmt.Errorf("physical: structural join right input not in document order")
	}
	// takeRight consumes a right tree: the original on first use when this
	// operator owns it, a private copy when it is already used or frozen
	// (shared with another consumer) — stitching re-parents its root.
	takeRight := func(e *rentry) *seq.Tree {
		if !e.used {
			e.used = true
			if !e.tree.Frozen() {
				return e.tree
			}
		}
		return e.tree.Clone()
	}
	var out seq.Seq
	for i, l := range left {
		if err := poll(ctx, i); err != nil {
			return nil, err
		}
		anchor, err := l.Singleton(leftLCL)
		if err != nil {
			return nil, fmt.Errorf("physical: structural join left side: %w", err)
		}
		if !anchor.IsStore() {
			return nil, fmt.Errorf("physical: structural join left anchor is a temporary node")
		}
		d := st.Doc(anchor.Doc)
		aStart, aEnd, aLevel := d.Start(anchor.Ord), d.End(anchor.Ord), d.Level(anchor.Ord)
		lo := sort.Search(len(rents), func(i int) bool { return rents[i].tree.Root.Ord >= aStart+1 })
		hi := sort.Search(len(rents), func(i int) bool { return rents[i].tree.Root.Ord >= aEnd+1 })
		var ms []*rentry
		for _, e := range rents[lo:hi] {
			if e.tree.Root.Doc != anchor.Doc {
				continue
			}
			if axis == pattern.Child && d.Level(e.tree.Root.Ord) != aLevel+1 {
				continue
			}
			ms = append(ms, e)
		}
		emit := func(l *seq.Tree, anchor *seq.Node, rights []*seq.Tree) {
			for _, r := range rights {
				seq.Attach(anchor, r.Root)
				for _, lcl := range r.Classes() {
					for _, n := range r.ClassAll(lcl) {
						l.AddToClass(lcl, n)
					}
				}
			}
			out = append(out, l)
		}
		switch {
		case spec.Nested():
			if len(ms) == 0 && !spec.Optional() {
				continue
			}
			rights := make([]*seq.Tree, 0, len(ms))
			for _, e := range ms {
				rights = append(rights, takeRight(e))
			}
			lt, a := l, anchor
			if len(rights) > 0 && l.Frozen() {
				// Emitting mutates the left tree (attach + class merge);
				// a frozen left is shared, so work on a private copy.
				var nm seq.NodeMap
				lt, nm = l.MutableWithMapping()
				a = nm.Get(anchor)
			}
			emit(lt, a, rights)
		default:
			if len(ms) == 0 {
				if spec.Optional() {
					emit(l, anchor, nil) // no rights: nothing mutated
				}
				continue
			}
			for i, e := range ms {
				lt, a := l, anchor
				if i < len(ms)-1 || l.Frozen() {
					// Copy the left for all but the last pair — and for the
					// last one too when it is frozen (shared).
					var nm seq.NodeMap
					lt, nm = l.CloneWithMapping()
					a = nm.Get(anchor)
				}
				emit(lt, a, []*seq.Tree{takeRight(e)})
			}
		}
	}
	return out, nil
}
