package physical

import (
	"context"
	"errors"
	"testing"

	"tlc/internal/faultinject"
	"tlc/internal/pattern"
)

// TestJoinFaultPointsFire checks the physical join entry points honor their
// armed injection rules before touching any input — the seam the chaos
// suite relies on. The injected error fires at function entry, so nil
// inputs never get dereferenced.
func TestJoinFaultPointsFire(t *testing.T) {
	t.Cleanup(faultinject.Disable)
	if err := faultinject.Enable(faultinject.PointStructJoin + "=error;" + faultinject.PointValueJoin + "=error"); err != nil {
		t.Fatal(err)
	}
	if _, err := StructuralJoin(context.Background(), nil, nil, nil, 0, pattern.Child, pattern.One); !errors.Is(err, faultinject.ErrInjected) {
		t.Errorf("StructuralJoin err = %v, want ErrInjected", err)
	}
	if _, err := ValueJoin(context.Background(), nil, nil, nil, JoinSpec{}); !errors.Is(err, faultinject.ErrInjected) {
		t.Errorf("ValueJoin err = %v, want ErrInjected", err)
	}
}
