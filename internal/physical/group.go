package physical

import (
	"context"
	"fmt"
	"strings"

	"tlc/internal/seq"
	"tlc/internal/store"
)

// GroupBy implements the grouping procedure that the TAX and GTP baselines
// use in place of annotated edges (Section 6.1): the input trees are
// partitioned by the identity of everything *except* the grouped branch —
// the tree root, the basis node, and every other class binding (minus the
// labels listed in exclude, the grouped branch's own classes) — and each
// group collapses into a single output tree in which the member nodes
// (class memberLCL) of every group member are gathered under the shared
// basis node. The first tree of each group supplies the output structure.
//
// This is deliberately more expensive than a nest-join: it hashes every
// tree over all its bindings, clones member subtrees across trees, and —
// unlike the nest-join — runs *after* a flat match has already multiplied
// the intermediate result.
func GroupBy(ctx context.Context, st *store.Store, input seq.Seq, basisLCL, memberLCL int, exclude []int) (seq.Seq, error) {
	excluded := make(map[int]bool, len(exclude)+2)
	for _, lcl := range exclude {
		excluded[lcl] = true
	}
	excluded[basisLCL] = true
	excluded[memberLCL] = true
	type group struct {
		tree  *seq.Tree
		basis *seq.Node
	}
	groups := make(map[string]*group)
	var order []string
	passKey := 0
	for i, t := range input {
		if err := poll(ctx, i); err != nil {
			return nil, err
		}
		members := t.Class(basisLCL)
		if len(members) == 0 {
			// No basis to group on: the tree forms its own group.
			passKey++
			key := fmt.Sprintf("pass|%d", passKey)
			groups[key] = &group{tree: t}
			order = append(order, key)
			continue
		}
		if len(members) > 1 {
			return nil, fmt.Errorf("physical: group basis class %d binds to %d nodes", basisLCL, len(members))
		}
		b := members[0]
		key := groupKey(t, b, excluded)
		g, ok := groups[key]
		if !ok {
			// The first tree of a group becomes the representative; it is
			// adopted as-is and made mutable lazily, on the first merge.
			groups[key] = &group{tree: t, basis: b}
			order = append(order, key)
			continue
		}
		// Merge this tree's member nodes into the group representative. A
		// frozen representative (shared with another consumer) is replaced
		// by a private copy before its first mutation.
		if g.tree.Frozen() {
			var nm seq.NodeMap
			g.tree, nm = g.tree.MutableWithMapping()
			g.basis = nm.Get(g.basis)
		}
		rev := make(map[*seq.Node][]int)
		for _, lcl := range t.Classes() {
			if lcl == memberLCL {
				continue
			}
			for _, n := range t.ClassAll(lcl) {
				rev[n] = append(rev[n], lcl)
			}
		}
		// An unfrozen source is consumed: its member subtrees move over. A
		// frozen source must stay intact, so its member subtrees are copied.
		frozenSrc := t.Frozen()
		for _, m := range t.Class(memberLCL) {
			mv, nm := m, seq.NodeMap{}
			if frozenSrc {
				mv, nm = seq.CopySubtree(t.Arena(), m)
			} else {
				seq.Detach(m)
			}
			seq.Attach(g.basis, mv)
			g.tree.AddToClass(memberLCL, mv)
			// Nested classes inside the member subtree follow along.
			m.Walk(func(n *seq.Node) bool {
				for _, lcl := range rev[n] {
					g.tree.AddToClass(lcl, nm.Get(n))
				}
				return true
			})
		}
	}
	out := make(seq.Seq, 0, len(order))
	for _, k := range order {
		out = append(out, groups[k].tree)
	}
	return out, nil
}

// groupKey builds the grouping key: root identity, basis identity, and
// the identities of every class binding not excluded. Flat-multiplication
// clones agree on all of these (clones preserve temporary IDs and store
// coordinates, differing only in the grouped branch), while genuinely
// distinct witnesses differ in at least one other binding.
func groupKey(t *seq.Tree, basis *seq.Node, excluded map[int]bool) string {
	var sb strings.Builder
	sb.WriteString(t.Root.Identity())
	sb.WriteByte('|')
	sb.WriteString(basis.Identity())
	for _, lcl := range t.Classes() {
		if excluded[lcl] {
			continue
		}
		members := t.Class(lcl)
		switch {
		case len(members) == 0:
		case len(members) <= 2:
			for _, n := range members {
				fmt.Fprintf(&sb, "|%d:%s", lcl, n.Identity())
			}
		default:
			// Already-clustered classes (an earlier grouping round) are
			// summarized by size and endpoints: a real grouping
			// implementation operates per split path and never hashes a
			// sibling cluster member-by-member.
			fmt.Fprintf(&sb, "|%d:#%d:%s:%s", lcl, len(members),
				members[0].Identity(), members[len(members)-1].Identity())
		}
	}
	return sb.String()
}

// MergeOnRoot merges two sequences whose trees are rooted at stored nodes,
// joining trees whose roots are the *same* stored node: the right tree's
// branches and classes are grafted onto the left tree. Trees without a
// partner on the other side are dropped (inner merge). This is the "merge"
// step of the split/group/merge DAG procedure used by the GTP baseline.
func MergeOnRoot(ctx context.Context, st *store.Store, left, right seq.Seq) (seq.Seq, error) {
	byRoot := make(map[string][]*seq.Tree, len(right))
	for _, r := range right {
		byRoot[r.Root.Identity()] = append(byRoot[r.Root.Identity()], r)
	}
	// takeRight consumes a right tree on first use when unfrozen (grafting
	// re-parents its branches); later uses and frozen trees are copied.
	usedRight := make(map[*seq.Tree]bool, len(right))
	takeRight := func(r *seq.Tree) (*seq.Tree, seq.NodeMap) {
		if !usedRight[r] {
			usedRight[r] = true
			if !r.Frozen() {
				return r, seq.NodeMap{}
			}
		}
		return r.CloneWithMapping()
	}
	var out seq.Seq
	for i, l := range left {
		if err := poll(ctx, i); err != nil {
			return nil, err
		}
		partners := byRoot[l.Root.Identity()]
		if len(partners) == 0 {
			continue
		}
		// Grafting mutates the left tree; an unfrozen left is consumed, a
		// frozen one copied.
		nt := l.Mutable()
		for _, r := range partners {
			rc, mapping := takeRight(r)
			for _, k := range rc.Root.Kids {
				seq.Attach(nt.Root, k)
			}
			for _, lcl := range r.Classes() {
				for _, n := range r.ClassAll(lcl) {
					cp := mapping.Get(n)
					if cp == rc.Root {
						cp = nt.Root
					}
					nt.AddToClass(lcl, cp)
				}
			}
		}
		out = append(out, nt)
	}
	return out, nil
}
