package physical

import (
	"context"
	"fmt"

	"tlc/internal/pattern"
	"tlc/internal/seq"
	"tlc/internal/xmltree"
)

// maxAlternatives bounds the number of witness trees a single input tree
// may expand into during an extension match. Exceeding it indicates a
// runaway "-" edge combination and is reported as an error rather than
// allowed to exhaust memory. A variable so tests can lower the bound; use
// SetMaxAlternatives to restore it.
var maxAlternatives = 65536

// SetMaxAlternatives overrides the witness-tree explosion bound and
// returns a func restoring the previous value. Testing hook: production
// code never calls it.
func SetMaxAlternatives(n int) (restore func()) {
	prev := maxAlternatives
	maxAlternatives = n
	return func() { maxAlternatives = prev }
}

// ExplosionError reports an extension match whose witness-tree expansion
// exceeded the maxAlternatives bound. It is a property of the query shape
// against the data (a runaway "-" edge combination), not an evaluator
// fault, so the service maps it to the 422 query_error taxonomy class.
type ExplosionError struct {
	// Limit is the bound that was exceeded.
	Limit int
	// Anchor reports whether the per-anchor cross product (rather than the
	// per-tree witness expansion) overflowed.
	Anchor bool
}

func (e *ExplosionError) Error() string {
	if e.Anchor {
		return fmt.Sprintf("physical: anchor alternatives explode past %d", e.Limit)
	}
	return fmt.Sprintf("physical: extension match explodes past %d witness trees", e.Limit)
}

// attachment is one branch to add under an anchor node: either a fresh
// partial matched in the store (branch) or an existing in-memory node of
// the input tree that merely gets classified (existing).
type attachment struct {
	branch   *partial
	existing *seq.Node
	classes  []classEntry // classes for existing-node attachments
}

// alternative is one way of satisfying all edges of the anchor pattern for
// a single anchor node.
type alternative struct {
	attachments []attachment
}

// MatchExtend evaluates an extension APT — a pattern anchored at an
// existing logical class (Section 4.1, pattern tree reuse) — over every
// tree of the input sequence. For each input tree the pattern is matched at
// every active member of the anchored class; "-" edges can multiply a tree
// into several witness trees, "?"/"*" edges let trees without matches
// through, and a failed "-"/"+" edge at any anchor drops the tree.
//
// Anchors that reference stored nodes are extended by probing the store
// indexes within the anchor's interval (new branches are attached to the
// tree). Anchors that are temporary nodes — constructed intermediate
// results — are matched against their in-memory children instead, and
// matching nodes are classified in place.
func (m *Matcher) MatchExtend(ctx context.Context, input seq.Seq, apt *pattern.Tree) (seq.Seq, error) {
	if err := apt.Validate(); err != nil {
		return nil, err
	}
	anchor := apt.Root
	if anchor.Kind != pattern.TestLC {
		return nil, fmt.Errorf("physical: MatchExtend needs a logical-class anchor, got kind %d", anchor.Kind)
	}
	out := make(seq.Seq, 0, len(input))
	for i, t := range input {
		if err := poll(ctx, i); err != nil {
			return nil, err
		}
		trees, err := m.extendTree(ctx, t, anchor)
		if err != nil {
			return nil, err
		}
		out = append(out, trees...)
	}
	return out, nil
}

func (m *Matcher) extendTree(ctx context.Context, t *seq.Tree, anchor *pattern.Node) (seq.Seq, error) {
	anchors := t.Class(anchor.InClass)
	if len(anchors) == 0 {
		// Nothing to anchor at: the pattern is vacuously satisfied and the
		// tree passes through unchanged.
		return seq.Seq{t}, nil
	}
	// Per anchor node, the set of alternatives; the tree's alternatives are
	// the cross product (each anchor must be satisfied in every witness).
	perAnchor := make([][]alternative, len(anchors))
	total := 1
	for i, a := range anchors {
		alts, err := m.anchorAlternatives(ctx, a, anchor)
		if err != nil {
			return nil, err
		}
		if len(alts) == 0 {
			return nil, nil // some anchor cannot satisfy a required edge
		}
		perAnchor[i] = alts
		total *= len(alts)
		if total > maxAlternatives {
			return nil, &ExplosionError{Limit: maxAlternatives}
		}
	}
	// Fast path: a single combination (all edges nested or unique) extends
	// the tree in place when this operator owns it — extension selects over
	// "*" edges are the common case (RETURN paths). A frozen tree is shared
	// with another consumer, so MutableWithMapping copies it first and the
	// anchors and existing-node targets are re-located through the mapping.
	if total == 1 {
		nt, nm := t.MutableWithMapping()
		for i, a := range anchors {
			alt := perAnchor[i][0]
			target := nm.Get(a)
			if anchor.LCL > 0 && anchor.LCL != anchor.InClass {
				nt.AddToClass(anchor.LCL, target)
			}
			for _, att := range alt.attachments {
				if att.existing != nil {
					ex := nm.Get(att.existing)
					for _, c := range att.classes {
						nt.AddToClass(c.lcl, ex)
					}
					continue
				}
				b := m.take(att.branch)
				seq.Attach(target, b.root)
				for _, c := range b.classes {
					nt.AddToClass(c.lcl, c.node)
				}
			}
		}
		return seq.Seq{nt}, nil
	}
	// Enumerate the cross product; each combination yields one witness built
	// on its own copy of the tree — except the last combination, which
	// consumes the original when this operator owns it (t itself is never
	// mutated before that point).
	combo := make([]int, len(anchors))
	var out seq.Seq
	for {
		if err := poll(ctx, len(out)); err != nil {
			return nil, err
		}
		last := true
		for i := range combo {
			if combo[i] < len(perAnchor[i])-1 {
				last = false
				break
			}
		}
		nt, mapping := t, seq.NodeMap{}
		if !last || t.Frozen() {
			nt, mapping = t.CloneWithMapping()
		}
		for i, a := range anchors {
			alt := perAnchor[i][combo[i]]
			target := mapping.Get(a)
			if anchor.LCL > 0 && anchor.LCL != anchor.InClass {
				nt.AddToClass(anchor.LCL, target)
			}
			for _, att := range alt.attachments {
				if att.existing != nil {
					ex := mapping.Get(att.existing)
					for _, c := range att.classes {
						nt.AddToClass(c.lcl, ex)
					}
					continue
				}
				b := m.take(att.branch)
				seq.Attach(target, b.root)
				for _, c := range b.classes {
					nt.AddToClass(c.lcl, c.node)
				}
			}
		}
		out = append(out, nt)
		// Advance the combination odometer.
		i := len(combo) - 1
		for ; i >= 0; i-- {
			combo[i]++
			if combo[i] < len(perAnchor[i]) {
				break
			}
			combo[i] = 0
		}
		if i < 0 {
			break
		}
	}
	return out, nil
}

// anchorAlternatives computes the ways the anchor pattern's edges can be
// satisfied at one concrete anchor node. An empty result means a required
// edge has no match.
func (m *Matcher) anchorAlternatives(ctx context.Context, a *seq.Node, anchor *pattern.Node) ([]alternative, error) {
	var alts []alternative
	first := true
	var seenGroups map[int]bool
	for _, e := range anchor.Edges {
		// Logical (OR/NOT) edges are existence tests during extension: a
		// NOT edge is an anti-join that kills the anchor when its subtree
		// matches, an OR group passes when at least one member does.
		// Neither contributes attachments or alternatives.
		if e.Group > 0 {
			if seenGroups[e.Group] {
				continue
			}
			if seenGroups == nil {
				seenGroups = make(map[int]bool)
			}
			seenGroups[e.Group] = true
			pass := false
			for _, ge := range memberEdges(anchor, e.Group) {
				exists, err := m.edgeExists(ctx, a, ge)
				if err != nil {
					return nil, err
				}
				if exists != ge.Not {
					pass = true
					break
				}
			}
			if !pass {
				return nil, nil
			}
			continue
		}
		if e.Not {
			exists, err := m.edgeExists(ctx, a, e)
			if err != nil {
				return nil, err
			}
			if exists {
				return nil, nil
			}
			continue
		}
		var edgeAlts []alternative
		var err error
		if a.IsStore() {
			edgeAlts, err = m.storeEdgeAlternatives(ctx, a, e)
		} else {
			edgeAlts, err = m.memoryEdgeAlternatives(a, e)
		}
		if err != nil {
			return nil, err
		}
		if len(edgeAlts) == 0 {
			return nil, nil
		}
		// The first edge's alternatives are used as-is — the common anchor
		// has exactly one edge, and copying its attachments per combination
		// was a measurable share of the evaluator's allocations. Later
		// edges take the cross product with what has accumulated.
		if first {
			alts = edgeAlts
			first = false
			continue
		}
		var next []alternative
		for _, base := range alts {
			for _, ea := range edgeAlts {
				merged := alternative{attachments: append(append([]attachment(nil), base.attachments...), ea.attachments...)}
				next = append(next, merged)
				if len(next) > maxAlternatives {
					return nil, &ExplosionError{Limit: maxAlternatives, Anchor: true}
				}
			}
		}
		alts = next
	}
	if first {
		// No edges at all: the anchor is vacuously satisfied once.
		return []alternative{{}}, nil
	}
	return alts, nil
}

// edgeExists reports whether one pattern edge (ignoring its logical
// annotations and multiplicity) has at least one match below the anchor.
// Store anchors probe the cached per-node matches with a binary search;
// memory anchors scan their in-memory children.
func (m *Matcher) edgeExists(ctx context.Context, a *seq.Node, e pattern.Edge) (bool, error) {
	pe := e
	pe.Not, pe.Group, pe.Spec = false, 0, pattern.One
	if a.IsStore() {
		children, err := m.matchNode(ctx, a.Doc, pe.To)
		if err != nil {
			return false, err
		}
		d := m.st.Doc(a.Doc)
		ms, _ := structuralMatches(d, a.Ord, children, pe.Axis, nil)
		return len(ms) > 0, nil
	}
	alts, err := m.memoryEdgeAlternatives(a, pe)
	if err != nil {
		return false, err
	}
	return len(alts) > 0, nil
}

// storeEdgeAlternatives matches one pattern edge below a stored anchor by
// probing the store within the anchor's interval.
func (m *Matcher) storeEdgeAlternatives(ctx context.Context, a *seq.Node, e pattern.Edge) ([]alternative, error) {
	children, err := m.matchNode(ctx, a.Doc, e.To)
	if err != nil {
		return nil, err
	}
	d := m.st.Doc(a.Doc)
	ms, _ := structuralMatches(d, a.Ord, children, e.Axis, nil)
	return specAlternatives(ms, e.Spec), nil
}

// memoryEdgeAlternatives matches one pattern edge below a temporary anchor
// by scanning the anchor's in-memory children, classifying matches in
// place. Deeper pattern levels below the matched child are resolved in
// memory as well.
func (m *Matcher) memoryEdgeAlternatives(a *seq.Node, e pattern.Edge) ([]alternative, error) {
	var nodes []*seq.Node
	collect := func(n *seq.Node) {
		if n.Shadowed {
			return
		}
		if matchesTest(n, e.To) && m.predHolds(n, e.To.Pred) {
			nodes = append(nodes, n)
		}
	}
	if e.Axis == pattern.Child {
		for _, k := range a.Kids {
			collect(k)
		}
	} else {
		for _, k := range a.Kids {
			k.Walk(func(n *seq.Node) bool {
				collect(n)
				return true
			})
		}
	}
	var ms []*partial
	for _, n := range nodes {
		sub, err := m.memorySubMatch(n, e.To)
		if err != nil {
			return nil, err
		}
		ms = append(ms, sub...)
	}
	// In-memory matches attach nothing: they classify existing nodes.
	var alts []alternative
	mkAtt := func(p *partial) attachment {
		att := attachment{existing: p.root, classes: p.classes}
		return att
	}
	switch {
	case e.Spec.Nested():
		if len(ms) == 0 && !e.Spec.Optional() {
			return nil, nil
		}
		alt := alternative{}
		for _, p := range ms {
			alt.attachments = append(alt.attachments, mkAtt(p))
		}
		return []alternative{alt}, nil
	default:
		if len(ms) == 0 {
			if e.Spec.Optional() {
				return []alternative{{}}, nil
			}
			return nil, nil
		}
		for _, p := range ms {
			alts = append(alts, alternative{attachments: []attachment{mkAtt(p)}})
		}
		return alts, nil
	}
}

// memorySubMatch matches the pattern subtree rooted at p against the
// in-memory node n (already known to satisfy p's own test/predicate) and
// returns the classified combinations. Attachments are in-memory nodes, so
// the partial's root is n itself and classes reference existing nodes.
func (m *Matcher) memorySubMatch(n *seq.Node, p *pattern.Node) ([]*partial, error) {
	base := &partial{root: n, used: true} // never cloned; existing node
	if p.LCL > 0 {
		base.classes = append(base.classes, classEntry{lcl: p.LCL, node: n})
	}
	parts := []*partial{base}
	var seenGroups map[int]bool
	for _, e := range p.Edges {
		// Logical edges gate all combinations at once: every partial here
		// shares the same root node n, so existence is decided once.
		if e.Group > 0 {
			if seenGroups[e.Group] {
				continue
			}
			if seenGroups == nil {
				seenGroups = make(map[int]bool)
			}
			seenGroups[e.Group] = true
			pass := false
			for _, ge := range memberEdges(p, e.Group) {
				exists, err := m.edgeExists(context.Background(), n, ge)
				if err != nil {
					return nil, err
				}
				if exists != ge.Not {
					pass = true
					break
				}
			}
			if !pass {
				return nil, nil
			}
			continue
		}
		if e.Not {
			exists, err := m.edgeExists(context.Background(), n, e)
			if err != nil {
				return nil, err
			}
			if exists {
				return nil, nil
			}
			continue
		}
		var next []*partial
		for _, P := range parts {
			var kids []*seq.Node
			if e.Axis == pattern.Child {
				kids = n.Kids
			} else {
				for _, k := range n.Kids {
					k.Walk(func(x *seq.Node) bool {
						kids = append(kids, x)
						return true
					})
				}
			}
			var ms []*partial
			for _, k := range kids {
				if k.Shadowed || !matchesTest(k, e.To) || !m.predHolds(k, e.To.Pred) {
					continue
				}
				sub, err := m.memorySubMatch(k, e.To)
				if err != nil {
					return nil, err
				}
				ms = append(ms, sub...)
			}
			switch {
			case e.Spec.Nested():
				if len(ms) == 0 && !e.Spec.Optional() {
					continue
				}
				for _, C := range ms {
					P.classes = append(P.classes, C.classes...)
				}
				next = append(next, P)
			default:
				if len(ms) == 0 {
					if e.Spec.Optional() {
						next = append(next, P)
					}
					continue
				}
				for _, C := range ms {
					cp := &partial{root: P.root, used: true, classes: append(append([]classEntry(nil), P.classes...), C.classes...)}
					next = append(next, cp)
				}
			}
		}
		parts = next
	}
	return parts, nil
}

// specAlternatives converts the matched partials of a store edge into
// alternatives according to the edge's matching specification.
func specAlternatives(ms []*partial, spec pattern.MSpec) []alternative {
	switch {
	case spec.Nested():
		if len(ms) == 0 {
			if spec.Optional() {
				return []alternative{{}}
			}
			return nil
		}
		alt := alternative{}
		for _, p := range ms {
			alt.attachments = append(alt.attachments, attachment{branch: p})
		}
		return []alternative{alt}
	default:
		if len(ms) == 0 {
			if spec.Optional() {
				return []alternative{{}}
			}
			return nil
		}
		// One attachment backing array for all alternatives; the full-slice
		// caps keep an append on one alternative's attachments (the cross
		// product in anchorAlternatives copies instead) from spilling into
		// the next one's slot.
		atts := make([]attachment, len(ms))
		alts := make([]alternative, len(ms))
		for i, p := range ms {
			atts[i] = attachment{branch: p}
			alts[i] = alternative{attachments: atts[i : i+1 : i+1]}
		}
		return alts
	}
}

// matchesTest reports whether the in-memory node satisfies the pattern
// node's tag test.
func matchesTest(n *seq.Node, p *pattern.Node) bool {
	switch p.Kind {
	case pattern.TestTag:
		return n.Tag == p.Tag
	case pattern.TestWildcard:
		return n.Kind == xmltree.Element
	default:
		return false
	}
}

// predHolds evaluates an optional content predicate against a node.
func (m *Matcher) predHolds(n *seq.Node, p *pattern.Predicate) bool {
	if p == nil {
		return true
	}
	return p.Eval(seq.Content(m.st, n))
}
