package physical

import (
	"context"

	"tlc/internal/governor"
)

// PollStride is the iteration stride of the cooperative cancellation checks
// shared by every engine: the physical operators' per-tree and join loops
// and the navigational baseline's node-visit counter all read the context
// every PollStride-th step. The value trades cancellation latency against
// poll overhead: context.Err() is an atomic load plus a branch (~ns), and a
// loop iteration here is at minimum a store read (~100ns), so at 512 the
// poll costs well under 1% of loop time while a cancelled multi-second scan
// still stops within a few hundred iterations — microseconds. Halving it
// buys nothing measurable; growing it past ~10k makes tight deadline tests
// (TestDeadlineCancelsMidPlan) visibly laggy on small stores.
const PollStride = 512

// poll returns the context's cancellation error — or the governing
// query's budget error — on every PollStride-th iteration (including
// iteration 0), nil otherwise. Cancellation errors are the context's own
// Err(), so errors.Is(err, context.DeadlineExceeded) and errors.Is(err,
// context.Canceled) hold all the way up through the evaluator's
// operator-label wrapping; budget errors are *governor.ErrBudgetExceeded
// and survive the same wrapping via errors.As. Ungoverned contexts pay one
// nil value lookup per stride.
func poll(ctx context.Context, i int) error {
	if i%PollStride != 0 {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return governor.Poll(ctx)
}
