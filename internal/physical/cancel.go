package physical

import "context"

// pollStride is the iteration stride of the cooperative cancellation checks
// inside the per-tree and join loops: frequent enough that a deadline stops
// a multi-second loop after a few microseconds of extra work, rare enough
// that the context poll never shows up in profiles.
const pollStride = 256

// poll returns the context's cancellation error on every pollStride-th
// iteration (including iteration 0), nil otherwise. The error is the
// context's own Err(), so errors.Is(err, context.DeadlineExceeded) and
// errors.Is(err, context.Canceled) hold all the way up through the
// evaluator's operator-label wrapping.
func poll(ctx context.Context, i int) error {
	if i%pollStride != 0 {
		return nil
	}
	return ctx.Err()
}
