package physical

import (
	"context"
	"strings"
	"testing"

	"tlc/internal/pattern"
	"tlc/internal/seq"
	"tlc/internal/store"
)

const joinXML = `<site>
  <person id="p0"><name>Alice</name></person>
  <person id="p1"><name>Bob</name></person>
  <person id="p2"><name>Carol</name></person>
  <open_auction><ref person="p0"/></open_auction>
  <open_auction><ref person="p0"/></open_auction>
  <open_auction><ref person="p2"/></open_auction>
  <open_auction><ref person="px"/></open_auction>
</site>`

// personSeq returns witness trees person[1]/@id[2]; auctionSeq returns
// open_auction[3]/ref/@person[4].
func joinInputs(t *testing.T, s *store.Store, m *Matcher) (seq.Seq, seq.Seq) {
	t.Helper()
	pRoot := pattern.NewDocRoot(0, "fixture.xml")
	p := pRoot.Add(pattern.NewTagNode(1, "person"), pattern.Descendant, pattern.One)
	p.Add(pattern.NewTagNode(2, "@id"), pattern.Child, pattern.One)
	left, err := m.MatchDocument(context.Background(), &pattern.Tree{Root: pRoot})
	if err != nil {
		t.Fatal(err)
	}
	aRoot := pattern.NewDocRoot(0, "fixture.xml")
	a := aRoot.Add(pattern.NewTagNode(3, "open_auction"), pattern.Descendant, pattern.One)
	r := a.Add(pattern.NewTagNode(0, "ref"), pattern.Child, pattern.One)
	r.Add(pattern.NewTagNode(4, "@person"), pattern.Child, pattern.One)
	right, err := m.MatchDocument(context.Background(), &pattern.Tree{Root: aRoot})
	if err != nil {
		t.Fatal(err)
	}
	return left, right
}

func TestValueJoinPairs(t *testing.T) {
	s, _ := loadFixture(t, joinXML)
	m := NewMatcher(s)
	left, right := joinInputs(t, s, m)
	out, err := ValueJoin(context.Background(), s, left, right, JoinSpec{
		LeftLCL: 2, RightLCL: 4, Op: pattern.EQ, RightSpec: pattern.One, RootLCL: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	// p0 matches two auctions, p2 one; p1 none; px matches nobody.
	if len(out) != 3 {
		t.Fatalf("got %d joined trees, want 3", len(out))
	}
	for _, w := range out {
		if w.Root.Tag != "join_root" {
			t.Errorf("root tag = %q", w.Root.Tag)
		}
		if len(w.Root.Kids) != 2 {
			t.Errorf("pair join root has %d kids, want 2", len(w.Root.Kids))
		}
		if len(w.Class(9)) != 1 {
			t.Error("join root not classified")
		}
		p, err := w.Singleton(2)
		if err != nil {
			t.Fatal(err)
		}
		a, err := w.Singleton(4)
		if err != nil {
			t.Fatal(err)
		}
		if seq.Content(s, p) != seq.Content(s, a) {
			t.Errorf("join mismatch: %q vs %q", seq.Content(s, p), seq.Content(s, a))
		}
	}
	// Output in left (document) order: p0, p0, p2.
	var ids []string
	for _, w := range out {
		n, _ := w.Singleton(2)
		ids = append(ids, seq.Content(s, n))
	}
	if strings.Join(ids, ",") != "p0,p0,p2" {
		t.Errorf("left order = %v", ids)
	}
}

func TestValueJoinNest(t *testing.T) {
	s, _ := loadFixture(t, joinXML)
	m := NewMatcher(s)
	left, right := joinInputs(t, s, m)
	out, err := ValueJoin(context.Background(), s, left, right, JoinSpec{
		LeftLCL: 2, RightLCL: 4, Op: pattern.EQ, RightSpec: pattern.OneOrMore,
	})
	if err != nil {
		t.Fatal(err)
	}
	// One output per matching left tree: p0 (two auctions nested), p2.
	if len(out) != 2 {
		t.Fatalf("got %d, want 2", len(out))
	}
	if got := len(out[0].Class(3)); got != 2 {
		t.Errorf("nested auctions = %d, want 2", got)
	}
	if got := len(out[0].Root.Kids); got != 3 {
		t.Errorf("nest join root kids = %d, want 1 left + 2 right", got)
	}
}

func TestValueJoinOuterNest(t *testing.T) {
	s, _ := loadFixture(t, joinXML)
	m := NewMatcher(s)
	left, right := joinInputs(t, s, m)
	out, err := ValueJoin(context.Background(), s, left, right, JoinSpec{
		LeftLCL: 2, RightLCL: 4, Op: pattern.EQ, RightSpec: pattern.ZeroOrMore,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every person survives; p1 with empty nest.
	if len(out) != 3 {
		t.Fatalf("got %d, want 3", len(out))
	}
	if got := len(out[1].Class(3)); got != 0 {
		t.Errorf("p1 nested auctions = %d, want 0", got)
	}
}

func TestValueJoinOuterPairs(t *testing.T) {
	s, _ := loadFixture(t, joinXML)
	m := NewMatcher(s)
	left, right := joinInputs(t, s, m)
	out, err := ValueJoin(context.Background(), s, left, right, JoinSpec{
		LeftLCL: 2, RightLCL: 4, Op: pattern.EQ, RightSpec: pattern.ZeroOrOne,
	})
	if err != nil {
		t.Fatal(err)
	}
	// p0 two pairs, p1 passes bare, p2 one pair.
	if len(out) != 4 {
		t.Fatalf("got %d, want 4", len(out))
	}
}

func TestValueJoinNonEquality(t *testing.T) {
	s, _ := loadFixture(t, `<r><l><v>5</v></l><l><v>1</v></l><rr><w>3</w></rr></r>`)
	m := NewMatcher(s)
	lt := pattern.NewDocRoot(0, "fixture.xml")
	lt.Add(pattern.NewTagNode(1, "l"), pattern.Child, pattern.One).
		Add(pattern.NewTagNode(2, "v"), pattern.Child, pattern.One)
	left, err := m.MatchDocument(context.Background(), &pattern.Tree{Root: lt})
	if err != nil {
		t.Fatal(err)
	}
	rt := pattern.NewDocRoot(0, "fixture.xml")
	rt.Add(pattern.NewTagNode(3, "rr"), pattern.Child, pattern.One).
		Add(pattern.NewTagNode(4, "w"), pattern.Child, pattern.One)
	right, err := m.MatchDocument(context.Background(), &pattern.Tree{Root: rt})
	if err != nil {
		t.Fatal(err)
	}
	out, err := ValueJoin(context.Background(), s, left, right, JoinSpec{LeftLCL: 2, RightLCL: 4, Op: pattern.GT, RightSpec: pattern.One})
	if err != nil {
		t.Fatal(err)
	}
	// Only v=5 > w=3.
	if len(out) != 1 {
		t.Fatalf("got %d, want 1", len(out))
	}
}

func TestValueJoinMissingKeySkipsTree(t *testing.T) {
	s, _ := loadFixture(t, joinXML)
	m := NewMatcher(s)
	left, right := joinInputs(t, s, m)
	// Join on a class that exists on the right but is empty on the left
	// trees: every left tree is skipped.
	out, err := ValueJoin(context.Background(), s, left, right, JoinSpec{LeftLCL: 77, RightLCL: 4, Op: pattern.EQ, RightSpec: pattern.One})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Errorf("got %d outputs from missing-key join", len(out))
	}
}

func TestValueJoinExistentialOverClusters(t *testing.T) {
	s, _ := loadFixture(t, fixtureXML)
	m := NewMatcher(s)
	// Clustered b values per a: {1,2} and {3} (third a has no b).
	res, err := m.MatchDocument(context.Background(), aTree(edge("b", 2, pattern.Child, pattern.OneOrMore)))
	if err != nil {
		t.Fatal(err)
	}
	// Left side: single b per witness (flat): values 1, 2, 3.
	flat, err := m.MatchDocument(context.Background(), aTree(edge("b", 2, pattern.Child, pattern.One)))
	if err != nil {
		t.Fatal(err)
	}
	// Existential equality: flat values 1 and 2 match the {1,2} cluster,
	// 3 matches {3}: one pair per (left tree, matching right tree).
	out, err := ValueJoin(context.Background(), s, flat, res, JoinSpec{LeftLCL: 2, RightLCL: 2, Op: pattern.EQ, RightSpec: pattern.One})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Errorf("existential cluster join: %d pairs, want 3", len(out))
	}
	// A cluster matching via two values still pairs once.
	out, err = ValueJoin(context.Background(), s, res, res, JoinSpec{LeftLCL: 2, RightLCL: 2, Op: pattern.EQ, RightSpec: pattern.One})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Errorf("cluster-cluster join: %d pairs, want 2", len(out))
	}
}

func TestCartesianJoin(t *testing.T) {
	s, _ := loadFixture(t, joinXML)
	m := NewMatcher(s)
	left, right := joinInputs(t, s, m)
	// Frozen (shared) inputs must be copied, never consumed; unfrozen ones
	// may be re-parented by their last participating pair.
	left.Freeze()
	right.Freeze()
	out, err := CartesianJoin(context.Background(), "join_root", 1, left, right)
	if err != nil {
		t.Fatalf("CartesianJoin: %v", err)
	}
	if len(out) != len(left)*len(right) {
		t.Fatalf("got %d, want %d", len(out), len(left)*len(right))
	}
	// Inputs unchanged (everything copied).
	if left[0].Root.Parent != nil {
		t.Error("cartesian join re-parented its frozen input")
	}
}

// Figure 14: structural join vs nest structural join.
func TestStructuralJoinFigure14(t *testing.T) {
	s, _ := loadFixture(t, `<A><E/><B/><D/><D/></A>`)
	m := NewMatcher(s)
	aPat := &pattern.Tree{Root: pattern.NewDocRoot(0, "fixture.xml")}
	aPat.Root.LCL = 1
	left, err := m.MatchDocument(context.Background(), aPat)
	if err != nil {
		t.Fatal(err)
	}
	dRoot := pattern.NewDocRoot(0, "fixture.xml")
	dRoot.Add(pattern.NewTagNode(2, "D"), pattern.Descendant, pattern.One)
	dsel, err := m.MatchDocument(context.Background(), &pattern.Tree{Root: dRoot})
	if err != nil {
		t.Fatal(err)
	}
	// Project to bare D trees.
	var right seq.Seq
	for _, w := range dsel {
		d, err := w.Singleton(2)
		if err != nil {
			t.Fatal(err)
		}
		nt := seq.NewTree(seq.NewStoreNode(d.Doc, d.Ord, s.Doc(d.Doc)))
		nt.AddToClass(2, nt.Root)
		right = append(right, nt)
	}

	// Regular structural join: one output tree per (A, D) pair.
	pairs, err := StructuralJoin(context.Background(), s, left.Clone(), right.Clone(), 1, pattern.Descendant, pattern.One)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 2 {
		t.Fatalf("regular join: %d trees, want 2", len(pairs))
	}
	for _, w := range pairs {
		if got := len(w.Class(2)); got != 1 {
			t.Errorf("pair tree has %d D nodes, want 1", got)
		}
	}

	// Nest structural join: a single output with both Ds clustered.
	nested, err := StructuralJoin(context.Background(), s, left.Clone(), right.Clone(), 1, pattern.Descendant, pattern.OneOrMore)
	if err != nil {
		t.Fatal(err)
	}
	if len(nested) != 1 {
		t.Fatalf("nest join: %d trees, want 1", len(nested))
	}
	if got := len(nested[0].Class(2)); got != 2 {
		t.Errorf("nest tree has %d D nodes, want 2", got)
	}
}

func TestStructuralJoinOuterAndChildAxis(t *testing.T) {
	s, _ := loadFixture(t, `<r><A><D/></A><A><x><D/></x></A></r>`)
	m := NewMatcher(s)
	aRoot := pattern.NewDocRoot(0, "fixture.xml")
	aRoot.Add(pattern.NewTagNode(1, "A"), pattern.Child, pattern.One)
	left, err := m.MatchDocument(context.Background(), &pattern.Tree{Root: aRoot})
	if err != nil {
		t.Fatal(err)
	}
	dRoot := pattern.NewDocRoot(0, "fixture.xml")
	dRoot.Add(pattern.NewTagNode(2, "D"), pattern.Descendant, pattern.One)
	dsel, err := m.MatchDocument(context.Background(), &pattern.Tree{Root: dRoot})
	if err != nil {
		t.Fatal(err)
	}
	var right seq.Seq
	for _, w := range dsel {
		d, _ := w.Singleton(2)
		nt := seq.NewTree(seq.NewStoreNode(d.Doc, d.Ord, s.Doc(d.Doc)))
		nt.AddToClass(2, nt.Root)
		right = append(right, nt)
	}
	// Child axis: only the first A has a D child.
	out, err := StructuralJoin(context.Background(), s, left.Clone(), right.Clone(), 1, pattern.Child, pattern.ZeroOrMore)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("outer nest child join: %d trees, want 2", len(out))
	}
	if got := len(out[0].Class(2)); got != 1 {
		t.Errorf("first A: %d D kids, want 1", got)
	}
	if got := len(out[1].Class(2)); got != 0 {
		t.Errorf("second A: %d D kids, want 0 (grandchild)", got)
	}
}

func TestGroupByCollapsesPairs(t *testing.T) {
	s, _ := loadFixture(t, `<A><D>1</D><D>2</D></A>`)
	m := NewMatcher(s)
	// Flat match: (A, D) pairs.
	root := pattern.NewDocRoot(0, "fixture.xml")
	root.LCL = 1
	root.Add(pattern.NewTagNode(2, "D"), pattern.Child, pattern.One)
	pairs, err := m.MatchDocument(context.Background(), &pattern.Tree{Root: root})
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 2 {
		t.Fatalf("flat match: %d pairs", len(pairs))
	}
	grouped, err := GroupBy(context.Background(), s, pairs, 1, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(grouped) != 1 {
		t.Fatalf("grouped: %d trees, want 1", len(grouped))
	}
	if got := len(grouped[0].Class(2)); got != 2 {
		t.Errorf("group member class = %d, want 2", got)
	}
}

func TestMergeOnRoot(t *testing.T) {
	s, _ := loadFixture(t, `<r><A id="1"><B/><C/></A><A id="2"><B/></A></r>`)
	m := NewMatcher(s)
	mk := func(childTag string, lcl int) seq.Seq {
		root := pattern.NewDocRoot(0, "fixture.xml")
		a := root.Add(pattern.NewTagNode(1, "A"), pattern.Child, pattern.One)
		a.Add(pattern.NewTagNode(lcl, childTag), pattern.Child, pattern.One)
		res, err := m.MatchDocument(context.Background(), &pattern.Tree{Root: root})
		if err != nil {
			t.Fatal(err)
		}
		// Re-root each tree at the A node.
		var out seq.Seq
		for _, w := range res {
			aNode, _ := w.Singleton(1)
			seq.Detach(aNode)
			nt := seq.NewTree(aNode)
			nt.AddToClass(1, aNode)
			for _, c := range w.Class(lcl) {
				nt.AddToClass(lcl, c)
			}
			out = append(out, nt)
		}
		return out
	}
	withB := mk("B", 2)
	withC := mk("C", 3)
	merged, err := MergeOnRoot(context.Background(), s, withB, withC)
	if err != nil {
		t.Fatal(err)
	}
	// Only the first A has both B and C.
	if len(merged) != 1 {
		t.Fatalf("merged: %d trees, want 1", len(merged))
	}
	if len(merged[0].Class(2)) != 1 || len(merged[0].Class(3)) != 1 {
		t.Errorf("merged classes: B=%d C=%d", len(merged[0].Class(2)), len(merged[0].Class(3)))
	}
}
