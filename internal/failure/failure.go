// Package failure converts panics into structured errors at the engine's
// containment boundaries. Before it existed, a panic anywhere in plan
// evaluation — an operator bug, a corrupt witness tree, an injected fault
// — unwound straight through the HTTP handler and killed the whole
// tlcserve process for every tenant. The recover barriers built from this
// package sit at the evaluator top level, around every parallel future and
// chunk worker, around the navigational interpreter, and around the
// service handlers, so a panic takes down exactly one query.
//
// Two kinds of panic cross a barrier: governor budget aborts (a controlled
// panic carrying an *ErrBudgetExceeded from an allocation site with no
// error return), which are unwrapped back into their budget error, and
// genuine bugs, which become a *PanicError carrying the panic value and
// stack — the service maps those to 500 and counts them.
package failure

import (
	"fmt"
	"runtime/debug"
	"sync/atomic"

	"tlc/internal/governor"
)

// PanicError is a panic recovered at a containment barrier, preserving the
// panic value and the stack of the panicking goroutine. It maps to the
// "internal" class of the service error taxonomy.
type PanicError struct {
	// Op names the barrier that recovered the panic (operator label,
	// "algebra.Eval", "service.query", ...).
	Op string
	// Value is the value passed to panic.
	Value any
	// Stack is the panicking goroutine's stack at recovery time.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("internal: panic in %s: %v", e.Op, e.Value)
}

// panicsRecovered counts panics converted to errors process-wide,
// surfaced in /varz and .stats. Budget aborts are not panics and are not
// counted here.
var panicsRecovered atomic.Int64

// PanicsRecovered returns the number of panics converted to errors since
// process start.
func PanicsRecovered() int64 { return panicsRecovered.Load() }

// FromPanic converts a recovered panic value into an error: governor
// aborts unwrap to their budget error, everything else becomes a counted
// *PanicError with the current stack.
func FromPanic(op string, r any) error {
	if err, ok := governor.AbortError(r); ok {
		return err
	}
	panicsRecovered.Add(1)
	return &PanicError{Op: op, Value: r, Stack: debug.Stack()}
}

// Recover is the deferred form of a containment barrier:
//
//	defer failure.Recover(&err, "algebra.Eval")
//
// It converts an in-flight panic into an error assigned through errp and
// lets normal returns pass through untouched.
func Recover(errp *error, op string) {
	if r := recover(); r != nil {
		*errp = FromPanic(op, r)
	}
}
