package failure

import (
	"errors"
	"strings"
	"testing"

	"tlc/internal/governor"
)

func TestRecoverConvertsPanic(t *testing.T) {
	before := PanicsRecovered()
	err := func() (err error) {
		defer Recover(&err, "test.op")
		panic("boom")
	}()
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Op != "test.op" || pe.Value != "boom" {
		t.Errorf("got %+v", pe)
	}
	if len(pe.Stack) == 0 {
		t.Error("no stack captured")
	}
	if !strings.Contains(pe.Error(), "test.op") || !strings.Contains(pe.Error(), "boom") {
		t.Errorf("message %q", pe.Error())
	}
	if PanicsRecovered() != before+1 {
		t.Errorf("panics recovered %d, want %d", PanicsRecovered(), before+1)
	}
}

func TestRecoverPassesNormalReturn(t *testing.T) {
	sentinel := errors.New("ordinary")
	err := func() (err error) {
		defer Recover(&err, "test.op")
		return sentinel
	}()
	if err != sentinel {
		t.Fatalf("err = %v, want sentinel", err)
	}
}

func TestRecoverUnwrapsGovernorAbort(t *testing.T) {
	before := PanicsRecovered()
	want := &governor.ErrBudgetExceeded{Resource: governor.ResourceNodes, Limit: 1, Observed: 2}
	err := func() (err error) {
		defer Recover(&err, "test.op")
		governor.Abort(want)
		return nil
	}()
	var be *governor.ErrBudgetExceeded
	if !errors.As(err, &be) || be != want {
		t.Fatalf("err = %v, want the aborted budget error", err)
	}
	if PanicsRecovered() != before {
		t.Error("a governor abort was counted as a panic")
	}
}
