package pattern

import (
	"strings"
	"testing"
	"testing/quick"
)

// q1SelectTree builds the APT of Select 1 in Figure 7:
// doc_root//person with children @id and age>25.
func q1SelectTree() *Tree {
	root := NewDocRoot(2, "auction.xml")
	person := root.Add(NewTagNode(3, "person"), Descendant, One)
	person.Add(NewTagNode(7, "@id"), Child, One)
	age := NewTagNode(10, "age")
	age.Pred = &Predicate{Op: GT, Value: "25"}
	person.Add(age, Child, One)
	return &Tree{Root: root}
}

func TestValidateOK(t *testing.T) {
	if err := q1SelectTree().Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := map[string]*Tree{
		"nil root":     {},
		"dup lcl":      {Root: func() *Node { r := NewTagNode(1, "a"); r.Add(NewTagNode(1, "b"), Child, One); return r }()},
		"empty tag":    {Root: NewTagNode(1, "")},
		"empty doc":    {Root: NewDocRoot(1, "")},
		"lc not root":  {Root: func() *Node { r := NewTagNode(1, "a"); r.Add(NewLCAnchor(2, 5), Child, One); return r }()},
		"lc bad class": {Root: NewLCAnchor(1, 0)},
		"negative lcl": {Root: NewTagNode(-1, "a")},
	}
	for name, tree := range cases {
		if err := tree.Validate(); err == nil {
			t.Errorf("%s: Validate succeeded, want error", name)
		}
	}
}

func TestNodesAndFind(t *testing.T) {
	tr := q1SelectTree()
	nodes := tr.Nodes()
	if len(nodes) != 4 {
		t.Fatalf("Nodes len = %d, want 4", len(nodes))
	}
	if n := tr.FindLCL(10); n == nil || n.Tag != "age" {
		t.Errorf("FindLCL(10) = %+v", n)
	}
	if tr.FindLCL(99) != nil {
		t.Error("FindLCL(99) found a node")
	}
}

func TestParentOf(t *testing.T) {
	tr := q1SelectTree()
	age := tr.FindLCL(10)
	parent, edge := tr.ParentOf(age)
	if parent == nil || parent.LCL != 3 {
		t.Fatalf("ParentOf(age) = %+v", parent)
	}
	if edge.Axis != Child || edge.Spec != One {
		t.Errorf("edge = %+v", edge)
	}
	if p, _ := tr.ParentOf(tr.Root); p != nil {
		t.Error("root has a parent")
	}
}

func TestCloneIsDeep(t *testing.T) {
	tr := q1SelectTree()
	cp := tr.Clone()
	cp.FindLCL(10).Pred.Value = "99"
	cp.FindLCL(3).Tag = "changed"
	if tr.FindLCL(10).Pred.Value != "25" || tr.FindLCL(3).Tag != "person" {
		t.Error("Clone shares state with original")
	}
	if err := cp.Validate(); err != nil {
		t.Errorf("clone Validate: %v", err)
	}
}

func TestString(t *testing.T) {
	s := q1SelectTree().String()
	for _, want := range []string{"doc_root(auction.xml)", "//person [3]", "/age>25 [10]", "/@id [7]"} {
		if !strings.Contains(s, want) {
			t.Errorf("String missing %q:\n%s", want, s)
		}
	}
}

func TestStringAnnotations(t *testing.T) {
	root := NewTagNode(1, "open_auction")
	root.Add(NewTagNode(2, "bidder"), Child, ZeroOrMore)
	root.Add(NewTagNode(3, "quantity"), Child, ZeroOrOne)
	s := (&Tree{Root: root}).String()
	if !strings.Contains(s, "{*}") || !strings.Contains(s, "{?}") {
		t.Errorf("annotations missing:\n%s", s)
	}
}

func TestMSpecHelpers(t *testing.T) {
	cases := []struct {
		m        MSpec
		nested   bool
		optional bool
		str      string
	}{
		{One, false, false, "-"},
		{ZeroOrOne, false, true, "?"},
		{OneOrMore, true, false, "+"},
		{ZeroOrMore, true, true, "*"},
	}
	for _, c := range cases {
		if c.m.Nested() != c.nested || c.m.Optional() != c.optional || c.m.String() != c.str {
			t.Errorf("MSpec %v: nested=%v optional=%v str=%q", c.m, c.m.Nested(), c.m.Optional(), c.m.String())
		}
	}
}

func TestCompareNumeric(t *testing.T) {
	cases := []struct {
		op   Cmp
		l, r string
		want bool
	}{
		{GT, "30", "25", true},
		{GT, "9", "25", false}, // numeric, not lexicographic
		{LT, "2.5", "10", true},
		{EQ, "5.0", "5", true}, // numeric equality
		{GE, "25", "25", true},
		{NE, "1", "2", true},
		{LE, "3", "2", false},
	}
	for _, c := range cases {
		if got := Compare(c.op, c.l, c.r); got != c.want {
			t.Errorf("Compare(%v, %q, %q) = %v, want %v", c.op, c.l, c.r, got, c.want)
		}
	}
}

func TestCompareString(t *testing.T) {
	cases := []struct {
		op   Cmp
		l, r string
		want bool
	}{
		{EQ, "person0", "person0", true},
		{EQ, "person0", "person1", false},
		{LT, "apple", "banana", true},
		{GT, "banana", "apple", true},
		{NE, "a", "a", false},
		{GT, "10x", "9", false}, // mixed types: ordering comparisons are false
	}
	for _, c := range cases {
		if got := Compare(c.op, c.l, c.r); got != c.want {
			t.Errorf("Compare(%v, %q, %q) = %v, want %v", c.op, c.l, c.r, got, c.want)
		}
	}
}

func TestPredicateEval(t *testing.T) {
	p := Predicate{Op: GT, Value: "25"}
	if !p.Eval("30") || p.Eval("20") || p.Eval("25") {
		t.Error("Predicate.Eval wrong")
	}
	if p.String() != ">25" {
		t.Errorf("Predicate.String = %q", p.String())
	}
}

// TestQuickCompareTrichotomy: for numeric operands exactly one of <, =, >
// holds, and EQ/NE are complements.
func TestQuickCompareTrichotomy(t *testing.T) {
	f := func(a, b int16) bool {
		l, r := itoa(int(a)), itoa(int(b))
		lt, eq, gt := Compare(LT, l, r), Compare(EQ, l, r), Compare(GT, l, r)
		if btoi(lt)+btoi(eq)+btoi(gt) != 1 {
			return false
		}
		return Compare(NE, l, r) != eq &&
			Compare(LE, l, r) == (lt || eq) &&
			Compare(GE, l, r) == (gt || eq)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func itoa(v int) string {
	if v < 0 {
		return "-" + itoa(-v)
	}
	if v < 10 {
		return string(rune('0' + v))
	}
	return itoa(v/10) + string(rune('0'+v%10))
}

func btoi(b bool) int {
	if b {
		return 1
	}
	return 0
}

func TestConstructString(t *testing.T) {
	c := NewElement("person",
		NewSubtreeRef(13),
		NewTextRef(12),
		&ConstructNode{Kind: ConstructLiteral, Literal: "hi"},
	)
	c.Attrs = append(c.Attrs, ConstructAttr{Name: "name", FromLCL: 12})
	c.NewLCL = 15
	s := c.String()
	for _, want := range []string{"<person name=(12).text()>", "(13)", "(12).text()", `"hi"`, "[15]"} {
		if !strings.Contains(s, want) {
			t.Errorf("construct String missing %q:\n%s", want, s)
		}
	}
}

func TestAxisString(t *testing.T) {
	if Child.String() != "/" || Descendant.String() != "//" {
		t.Error("Axis.String wrong")
	}
}
