package pattern

import (
	"fmt"
	"strings"
)

// ConstructKind discriminates the nodes of an annotated construct-pattern
// tree (Section 2.3, operator Construct). A construct pattern describes how
// each output tree is assembled: fresh tagged elements, attributes whose
// values come from logical classes, text pulled from a class via .text(),
// whole subtrees copied from a class, and aggregate result references.
type ConstructKind uint8

// Construct node kinds.
const (
	// ConstructElement creates a fresh element with the given Tag.
	ConstructElement ConstructKind = iota
	// ConstructSubtree copies the full subtree of every node in FromLCL,
	// in document order ("*" semantics — zero nodes produce no output).
	ConstructSubtree
	// ConstructText emits the textual content of the nodes in FromLCL
	// (the (12).text() references of Figure 7).
	ConstructText
	// ConstructLiteral emits a fixed text node.
	ConstructLiteral
)

// ConstructNode is one node of a construct pattern.
type ConstructNode struct {
	Kind ConstructKind
	// Tag is the element tag for ConstructElement nodes.
	Tag string
	// FromLCL is the referenced logical class for subtree/text nodes.
	FromLCL int
	// Literal is the text for ConstructLiteral nodes.
	Literal string
	// Attrs are attributes placed on a ConstructElement, evaluated against
	// the input tree.
	Attrs []ConstructAttr
	// Children are the element's children, in output order.
	Children []*ConstructNode
	// NewLCL, when positive, labels the nodes this construct node creates
	// (or copies) in the output tree, so that outer query blocks can keep
	// referring to them (the LCL=14/15 labels of Figure 8).
	NewLCL int
}

// ConstructAttr is an attribute on a constructed element. Exactly one of
// FromLCL (text of the class member) or Literal supplies the value.
type ConstructAttr struct {
	Name    string
	FromLCL int
	Literal string
}

// NewElement returns a construct node creating element tag.
func NewElement(tag string, children ...*ConstructNode) *ConstructNode {
	return &ConstructNode{Kind: ConstructElement, Tag: tag, Children: children}
}

// NewSubtreeRef returns a construct node copying the subtrees of class lcl.
func NewSubtreeRef(lcl int) *ConstructNode {
	return &ConstructNode{Kind: ConstructSubtree, FromLCL: lcl}
}

// NewTextRef returns a construct node emitting the text of class lcl.
func NewTextRef(lcl int) *ConstructNode {
	return &ConstructNode{Kind: ConstructText, FromLCL: lcl}
}

// String renders the construct pattern compactly for plan explanation.
func (c *ConstructNode) String() string {
	if c == nil {
		return "(nil construct)\n"
	}
	var sb strings.Builder
	c.render(&sb, 0)
	return sb.String()
}

func (c *ConstructNode) render(sb *strings.Builder, depth int) {
	sb.WriteString(strings.Repeat("  ", depth))
	switch c.Kind {
	case ConstructElement:
		sb.WriteString("<" + c.Tag)
		for _, a := range c.Attrs {
			if a.FromLCL > 0 {
				fmt.Fprintf(sb, " %s=(%d).text()", a.Name, a.FromLCL)
			} else {
				fmt.Fprintf(sb, " %s=%q", a.Name, a.Literal)
			}
		}
		sb.WriteString(">")
	case ConstructSubtree:
		fmt.Fprintf(sb, "(%d)", c.FromLCL)
	case ConstructText:
		fmt.Fprintf(sb, "(%d).text()", c.FromLCL)
	case ConstructLiteral:
		fmt.Fprintf(sb, "%q", c.Literal)
	}
	if c.NewLCL > 0 {
		fmt.Fprintf(sb, " [%d]", c.NewLCL)
	}
	sb.WriteByte('\n')
	for _, ch := range c.Children {
		ch.render(sb, depth+1)
	}
}
