package pattern

import (
	"fmt"
	"strconv"
	"strings"
)

// This file decides pattern containment ("Containment for Conditional Tree
// Patterns", see DESIGN.md §15): Subsumes(general, specific) reports that
// every document match of the specific pattern is also a match of the
// general one, so a plan compiled for the general pattern can answer the
// specific query once a residual filter re-applies the stronger
// predicates. The test is a conservative homomorphism — it may say "no"
// for contained patterns, never "yes" for uncontained ones.

// Implies reports that the strong predicate entails the weak one under the
// Compare value semantics: every content value satisfying strong also
// satisfies weak. A nil predicate is the trivial "always true" constraint.
//
// Soundness note: ordered comparisons against a numeric literal reject all
// non-numeric content (Compare's mixed-type rule), so interval reasoning
// over numeric literals is exact for every op except NE, whose complement
// keeps non-numeric content and therefore only entails an identical NE.
func Implies(strong, weak *Predicate) bool {
	if weak == nil {
		return true
	}
	if strong == nil {
		return false
	}
	if strong.Op == weak.Op && strong.Value == weak.Value {
		return true
	}
	sv, serr := strconv.ParseFloat(strong.Value, 64)
	wv, werr := strconv.ParseFloat(weak.Value, 64)
	if serr != nil || werr != nil {
		return false // non-numeric literals: only identity (handled above)
	}
	switch weak.Op {
	case NE:
		switch strong.Op {
		case EQ:
			return sv != wv
		case GT:
			return wv <= sv
		case GE:
			return wv < sv
		case LT:
			return wv >= sv
		case LE:
			return wv > sv
		}
	case GT:
		switch strong.Op {
		case EQ:
			return sv > wv
		case GT:
			return sv >= wv
		case GE:
			return sv > wv
		}
	case GE:
		switch strong.Op {
		case EQ:
			return sv >= wv
		case GE:
			return sv >= wv
		case GT:
			return sv >= wv
		}
	case LT:
		switch strong.Op {
		case EQ:
			return sv < wv
		case LT:
			return sv <= wv
		case LE:
			return sv < wv
		}
	case LE:
		switch strong.Op {
		case EQ:
			return sv <= wv
		case LE:
			return sv <= wv
		case LT:
			return sv <= wv
		}
	}
	return false
}

// Subsumes reports that the general pattern contains the specific one:
// every witness anchor matched by specific is matched by general. Both
// trees must share their anchor (same document root or the same input
// class for extension patterns).
func Subsumes(general, specific *Tree) bool {
	if general == nil || specific == nil || general.Root == nil || specific.Root == nil {
		return false
	}
	g, s := general.Root, specific.Root
	if g.Kind != s.Kind {
		return false
	}
	switch g.Kind {
	case TestDocRoot:
		if g.Doc != s.Doc {
			return false
		}
	case TestLC:
		if g.InClass != s.InClass {
			return false
		}
	}
	return nodeSubsumes(g, s)
}

// nodeSubsumes checks that any document node matched by specific (with its
// required structure) is matched by general.
func nodeSubsumes(g, s *Node) bool {
	if !testSubsumes(g, s) {
		return false
	}
	if !Implies(s.Pred, g.Pred) {
		return false
	}
	// Every requirement the general node imposes must be guaranteed by a
	// requirement of the specific node.
	seenGroups := make(map[int]bool)
	for i := range g.Edges {
		ge := &g.Edges[i]
		switch {
		case ge.Group > 0:
			if seenGroups[ge.Group] {
				continue
			}
			seenGroups[ge.Group] = true
			if !groupSatisfied(groupEdges(g, ge.Group), s) {
				return false
			}
		case ge.Not:
			if !notSatisfied(ge, s) {
				return false
			}
		default:
			if ge.Spec.Optional() {
				continue // imposes no existence requirement
			}
			if !edgeSatisfied(ge, s) {
				return false
			}
		}
	}
	return true
}

// testSubsumes checks the node tests: general must accept every node the
// specific test accepts.
func testSubsumes(g, s *Node) bool {
	switch g.Kind {
	case TestWildcard:
		return s.Kind == TestWildcard || s.Kind == TestTag
	case TestTag:
		return s.Kind == TestTag && g.Tag == s.Tag
	case TestDocRoot:
		return s.Kind == TestDocRoot && g.Doc == s.Doc
	case TestLC:
		return s.Kind == TestLC && g.InClass == s.InClass
	}
	return false
}

// axisCovers reports that a match under the specific axis is a match under
// the general axis (a child is also a descendant).
func axisCovers(g, s Axis) bool {
	return g == Descendant || s == Child
}

// edgeSatisfied looks for a specific-side requirement that guarantees the
// general edge: a non-optional positive edge whose subtree is subsumed by
// the general edge's subtree under a compatible axis.
func edgeSatisfied(ge *Edge, s *Node) bool {
	for i := range s.Edges {
		se := &s.Edges[i]
		if se.Not || se.Group > 0 || se.Spec.Optional() {
			continue
		}
		if axisCovers(ge.Axis, se.Axis) && nodeSubsumes(ge.To, se.To) {
			return true
		}
	}
	// An OR group on the specific side guarantees the edge only when every
	// member does (whichever disjunct holds, the general edge is matched).
	for _, grp := range specificGroups(s) {
		all := true
		for _, se := range grp {
			if se.Not || !axisCovers(ge.Axis, se.Axis) || !nodeSubsumes(ge.To, se.To) {
				all = false
				break
			}
		}
		if all && len(grp) > 0 {
			return true
		}
	}
	return false
}

// groupSatisfied checks a general-side OR group: the specific pattern must
// guarantee that at least one member edge is matched. It suffices that one
// member is individually guaranteed, or that a specific-side OR group is
// member-wise covered (each specific disjunct satisfies some general
// member).
func groupSatisfied(members []*Edge, s *Node) bool {
	for _, ge := range members {
		if ge.Not {
			continue // a required "no match" cannot be guaranteed positively here
		}
		if edgeSatisfied(ge, s) {
			return true
		}
	}
	for _, grp := range specificGroups(s) {
		covered := true
		for _, se := range grp {
			ok := false
			for _, ge := range members {
				if ge.Not == se.Not && logicalEdgeCovers(ge, se) {
					ok = true
					break
				}
			}
			if !ok {
				covered = false
				break
			}
		}
		if covered && len(grp) > 0 {
			return true
		}
	}
	return false
}

// logicalEdgeCovers reports that satisfying the specific edge se satisfies
// the general edge ge. For positive edges that is axis coverage plus
// subtree subsumption; for NOT edges the direction flips — the specific
// side must forbid a superset of what the general side forbids.
func logicalEdgeCovers(ge, se *Edge) bool {
	if ge.Not {
		return axisCovers(se.Axis, ge.Axis) && nodeSubsumes(se.To, ge.To)
	}
	return axisCovers(ge.Axis, se.Axis) && nodeSubsumes(ge.To, se.To)
}

// notSatisfied checks a general-side NOT edge: the specific pattern must
// forbid at least as much, i.e. carry a NOT edge whose forbidden set is a
// superset (more general subtree, wider axis).
func notSatisfied(ge *Edge, s *Node) bool {
	for i := range s.Edges {
		se := &s.Edges[i]
		if !se.Not || se.Group > 0 {
			continue
		}
		if axisCovers(se.Axis, ge.Axis) && nodeSubsumes(se.To, ge.To) {
			return true
		}
	}
	return false
}

// groupEdges collects the member edges of OR group id on node n.
func groupEdges(n *Node, id int) []*Edge {
	var out []*Edge
	for i := range n.Edges {
		if n.Edges[i].Group == id {
			out = append(out, &n.Edges[i])
		}
	}
	return out
}

// specificGroups enumerates the OR groups of n as member-edge slices.
func specificGroups(n *Node) [][]*Edge {
	byID := make(map[int][]*Edge)
	var order []int
	for i := range n.Edges {
		e := &n.Edges[i]
		if e.Group <= 0 {
			continue
		}
		if _, ok := byID[e.Group]; !ok {
			order = append(order, e.Group)
		}
		byID[e.Group] = append(byID[e.Group], e)
	}
	out := make([][]*Edge, 0, len(order))
	for _, id := range order {
		out = append(out, byID[id])
	}
	return out
}

// Signature renders a canonical structural signature of the pattern:
// tags, axes, matching specs and logical annotations, with content
// predicates reduced to their operator (the literal is elided, so patterns
// differing only in predicate constants share a signature). Two trees with
// equal signatures have isomorphic skeletons, which is the index key the
// plan cache uses to find containment candidates.
func Signature(t *Tree) string {
	if t == nil || t.Root == nil {
		return ""
	}
	var sb strings.Builder
	var walk func(n *Node, e *Edge)
	walk = func(n *Node, e *Edge) {
		if e != nil {
			if e.Not {
				sb.WriteByte('!')
			}
			if e.Group > 0 {
				fmt.Fprintf(&sb, "|%d", e.Group)
			}
			sb.WriteString(e.Axis.String())
			sb.WriteString(e.Spec.String())
		}
		switch n.Kind {
		case TestTag:
			sb.WriteString(n.Tag)
		case TestDocRoot:
			sb.WriteString("doc(" + n.Doc + ")")
		case TestLC:
			fmt.Fprintf(&sb, "class(%d)", n.InClass)
		case TestWildcard:
			sb.WriteByte('*')
		}
		if n.Pred != nil {
			sb.WriteString(n.Pred.Op.String())
			sb.WriteByte('?')
		}
		if len(n.Edges) > 0 {
			sb.WriteByte('(')
			for i := range n.Edges {
				if i > 0 {
					sb.WriteByte(',')
				}
				walk(n.Edges[i].To, &n.Edges[i])
			}
			sb.WriteByte(')')
		}
	}
	walk(t.Root, nil)
	return sb.String()
}
