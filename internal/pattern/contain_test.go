package pattern

import "testing"

// impliesCase is one row of the Implies truth table.
type impliesCase struct {
	strongOp Cmp
	strongV  string
	weakOp   Cmp
	weakV    string
	want     bool
}

func TestImpliesTruthTable(t *testing.T) {
	cases := []impliesCase{
		// Identity always implies.
		{EQ, "5", EQ, "5", true},
		{NE, "x", NE, "x", true},
		{GT, "abc", GT, "abc", true},
		// EQ against intervals.
		{EQ, "10", GT, "5", true},
		{EQ, "10", GT, "10", false},
		{EQ, "10", GE, "10", true},
		{EQ, "10", LT, "20", true},
		{EQ, "10", LE, "10", true},
		{EQ, "10", LT, "10", false},
		{EQ, "10", NE, "11", true},
		{EQ, "10", NE, "10", false},
		// EQ does not imply a different EQ.
		{EQ, "10", EQ, "11", false},
		// Interval nesting.
		{GT, "10", GT, "5", true},
		{GT, "10", GT, "10", true},
		{GT, "5", GT, "10", false},
		{GE, "10", GE, "10", true},
		{GE, "10", GE, "11", false},
		{GT, "10", GE, "10", true}, // everything > 10 is >= 10
		{LT, "5", LT, "10", true},
		{LT, "10", LT, "5", false},
		{LE, "5", LE, "5", true},
		{LE, "5", LT, "5", false},
		{LT, "5", LE, "4", false},
		// Mixed directions never imply.
		{GT, "10", LT, "20", false},
		{LT, "5", GT, "1", false},
		// Ordered ops entail NE outside their interval.
		{GT, "10", NE, "10", true},
		{GT, "10", NE, "5", true},
		{GT, "10", NE, "15", false},
		{GE, "10", NE, "9", true},
		{GE, "10", NE, "10", false},
		{LT, "5", NE, "5", true},
		{LT, "5", NE, "7", true},
		{LT, "5", NE, "3", false},
		{LE, "5", NE, "6", true},
		{LE, "5", NE, "5", false},
		// NE only implies an identical NE: its complement keeps non-numeric
		// content, so interval reasoning is unsound.
		{NE, "10", NE, "11", false},
		{NE, "10", GT, "5", false},
		{NE, "10", LT, "20", false},
		// Non-numeric literals: identity only.
		{EQ, "abc", NE, "abd", false},
		{GT, "abc", GT, "abb", false},
		{EQ, "abc", EQ, "abc", true},
	}
	for _, c := range cases {
		strong := &Predicate{Op: c.strongOp, Value: c.strongV}
		weak := &Predicate{Op: c.weakOp, Value: c.weakV}
		if got := Implies(strong, weak); got != c.want {
			t.Errorf("Implies(%s%s, %s%s) = %v, want %v",
				c.strongOp, c.strongV, c.weakOp, c.weakV, got, c.want)
		}
	}
}

func TestImpliesNilPredicates(t *testing.T) {
	p := &Predicate{Op: EQ, Value: "5"}
	if !Implies(p, nil) {
		t.Error("any predicate must imply the trivial nil constraint")
	}
	if !Implies(nil, nil) {
		t.Error("nil must imply nil")
	}
	if Implies(nil, p) {
		t.Error("nil (always true) must not imply a real constraint")
	}
}

// chain builds doc(d)/-tag1/-tag2... with One edges, returning the tree and
// its leaf.
func chain(doc string, tags ...string) (*Tree, *Node) {
	root := NewDocRoot(0, doc)
	n := root
	for i, tag := range tags {
		n = n.Add(NewTagNode(i+1, tag), Child, One)
	}
	return &Tree{Root: root}, n
}

func TestSubsumesStructural(t *testing.T) {
	eq := func(v string) *Predicate { return &Predicate{Op: EQ, Value: v} }
	gt := func(v string) *Predicate { return &Predicate{Op: GT, Value: v} }

	t.Run("identical chains subsume", func(t *testing.T) {
		g, _ := chain("a.xml", "person", "name")
		s, _ := chain("a.xml", "person", "name")
		if !Subsumes(g, s) {
			t.Error("identical patterns must subsume each other")
		}
	})
	t.Run("different documents do not", func(t *testing.T) {
		g, _ := chain("a.xml", "person")
		s, _ := chain("b.xml", "person")
		if Subsumes(g, s) {
			t.Error("patterns over different documents must not subsume")
		}
	})
	t.Run("different tags do not", func(t *testing.T) {
		g, _ := chain("a.xml", "person", "name")
		s, _ := chain("a.xml", "person", "age")
		if Subsumes(g, s) {
			t.Error("sibling tags must not subsume")
		}
	})
	t.Run("specific with extra required edge is contained", func(t *testing.T) {
		g, _ := chain("a.xml", "person")
		s, leaf := chain("a.xml", "person")
		leaf.Add(NewTagNode(9, "age"), Child, One)
		if !Subsumes(g, s) {
			t.Error("a pattern with an extra requirement is contained in the one without")
		}
		if Subsumes(s, g) {
			t.Error("the general pattern is not contained in the stricter one")
		}
	})
	t.Run("wildcard covers tag", func(t *testing.T) {
		g := &Tree{Root: NewDocRoot(0, "a.xml")}
		g.Root.Add(&Node{LCL: 1, Kind: TestWildcard}, Child, One)
		s, _ := chain("a.xml", "person")
		if !Subsumes(g, s) {
			t.Error("a wildcard test must cover a tag test")
		}
		if Subsumes(s, g) {
			t.Error("a tag test must not cover a wildcard")
		}
	})
	t.Run("descendant covers child", func(t *testing.T) {
		g := &Tree{Root: NewDocRoot(0, "a.xml")}
		g.Root.Add(NewTagNode(1, "name"), Descendant, One)
		s := &Tree{Root: NewDocRoot(0, "a.xml")}
		s.Root.Add(NewTagNode(1, "name"), Child, One)
		if !Subsumes(g, s) {
			t.Error("descendant edge must cover a child edge")
		}
		if Subsumes(s, g) {
			t.Error("child edge must not cover a descendant edge")
		}
	})
	t.Run("weaker predicate subsumes stronger", func(t *testing.T) {
		g, gl := chain("a.xml", "person", "age")
		gl.Pred = gt("10")
		s, sl := chain("a.xml", "person", "age")
		sl.Pred = gt("20")
		if !Subsumes(g, s) {
			t.Error("age > 20 must be contained in age > 10")
		}
		if Subsumes(s, g) {
			t.Error("age > 10 must not be contained in age > 20")
		}
	})
	t.Run("optional general edge imposes nothing", func(t *testing.T) {
		g, gl := chain("a.xml", "person")
		gl.Add(NewTagNode(5, "phone"), Child, ZeroOrMore)
		s, _ := chain("a.xml", "person")
		if !Subsumes(g, s) {
			t.Error("an optional edge on the general side must not block containment")
		}
	})
	t.Run("required general edge must be guaranteed", func(t *testing.T) {
		g, gl := chain("a.xml", "person")
		gl.Add(NewTagNode(5, "phone"), Child, One)
		s, _ := chain("a.xml", "person")
		if Subsumes(g, s) {
			t.Error("a required general edge absent from the specific side must block containment")
		}
	})
	t.Run("predicate EQ values differ", func(t *testing.T) {
		g, gl := chain("a.xml", "person", "name")
		gl.Pred = eq("Alice")
		s, sl := chain("a.xml", "person", "name")
		sl.Pred = eq("Bob")
		if Subsumes(g, s) {
			t.Error("name = Bob must not be contained in name = Alice")
		}
	})
}

func TestSubsumesLogical(t *testing.T) {
	orGroup := func(doc string, gid int, tags ...string) (*Tree, *Node) {
		tr, leaf := chain(doc, "person")
		for i, tag := range tags {
			leaf.Edges = append(leaf.Edges, Edge{
				Axis: Child, Spec: ZeroOrMore, To: NewTagNode(0, tag), Group: gid,
			})
			_ = i
		}
		return tr, leaf
	}

	t.Run("group member guarantees the group", func(t *testing.T) {
		g, _ := orGroup("a.xml", 1, "phone", "homepage")
		s, sl := chain("a.xml", "person")
		sl.Add(NewTagNode(5, "phone"), Child, One)
		if !Subsumes(g, s) {
			t.Error("a required phone edge must satisfy the phone|homepage group")
		}
	})
	t.Run("unrelated member does not", func(t *testing.T) {
		g, _ := orGroup("a.xml", 1, "phone", "homepage")
		s, sl := chain("a.xml", "person")
		sl.Add(NewTagNode(5, "address"), Child, One)
		if Subsumes(g, s) {
			t.Error("an address edge must not satisfy the phone|homepage group")
		}
	})
	t.Run("narrower specific group is covered", func(t *testing.T) {
		g, _ := orGroup("a.xml", 1, "phone", "homepage")
		s, _ := orGroup("a.xml", 1, "phone")
		// A single-member group is invalid in a real pattern; widen to two
		// members both covered by the general group.
		s2, _ := orGroup("a.xml", 1, "phone", "homepage")
		if !Subsumes(g, s2) {
			t.Error("an identical OR group must be covered")
		}
		_ = s
	})
	t.Run("wider specific group is not covered", func(t *testing.T) {
		g, _ := orGroup("a.xml", 1, "phone", "homepage")
		s, _ := orGroup("a.xml", 1, "phone", "homepage", "address")
		if Subsumes(g, s) {
			t.Error("a wider OR disjunction must not be covered by a narrower one")
		}
	})
	t.Run("NOT edge must be matched by NOT", func(t *testing.T) {
		g, gl := chain("a.xml", "person")
		g2 := NewTagNode(0, "watches")
		gl.Edges = append(gl.Edges, Edge{Axis: Child, Spec: ZeroOrMore, To: g2, Not: true})
		s, sl := chain("a.xml", "person")
		s2 := NewTagNode(0, "watches")
		sl.Edges = append(sl.Edges, Edge{Axis: Child, Spec: ZeroOrMore, To: s2, Not: true})
		if !Subsumes(g, s) {
			t.Error("identical NOT edges must subsume")
		}
		plain, _ := chain("a.xml", "person")
		if Subsumes(g, plain) {
			t.Error("a pattern without the NOT edge must not be contained")
		}
	})
	t.Run("specific NOT forbids superset", func(t *testing.T) {
		// general forbids child::watches; specific forbids descendant::watches
		// (a superset of subtrees) — contained.
		g, gl := chain("a.xml", "person")
		gl.Edges = append(gl.Edges, Edge{Axis: Child, Spec: ZeroOrMore, To: NewTagNode(0, "watches"), Not: true})
		s, sl := chain("a.xml", "person")
		sl.Edges = append(sl.Edges, Edge{Axis: Descendant, Spec: ZeroOrMore, To: NewTagNode(0, "watches"), Not: true})
		if !Subsumes(g, s) {
			t.Error("forbidding descendant::watches must satisfy forbidding child::watches")
		}
		if Subsumes(s, g) {
			t.Error("forbidding child::watches must not satisfy forbidding descendant::watches")
		}
	})
}

func TestSignatureStability(t *testing.T) {
	eq := func(v string) *Predicate { return &Predicate{Op: EQ, Value: v} }
	a, al := chain("a.xml", "person", "age")
	al.Pred = eq("10")
	b, bl := chain("a.xml", "person", "age")
	bl.Pred = eq("99")
	if Signature(a) != Signature(b) {
		t.Errorf("signatures must elide predicate literals:\n%s\n%s", Signature(a), Signature(b))
	}
	c, cl := chain("a.xml", "person", "age")
	cl.Pred = &Predicate{Op: GT, Value: "10"}
	if Signature(a) == Signature(c) {
		t.Error("signatures must keep the predicate operator")
	}
	d, _ := chain("a.xml", "person", "name")
	if Signature(a) == Signature(d) {
		t.Error("different tags must produce different signatures")
	}
	// Logical annotations are part of the signature.
	e, el := chain("a.xml", "person")
	el.Edges = append(el.Edges, Edge{Axis: Child, Spec: ZeroOrMore, To: NewTagNode(0, "phone"), Group: 1})
	el.Edges = append(el.Edges, Edge{Axis: Child, Spec: ZeroOrMore, To: NewTagNode(0, "homepage"), Group: 1})
	f, fl := chain("a.xml", "person")
	fl.Add(NewTagNode(0, "phone"), Child, ZeroOrMore)
	fl.Add(NewTagNode(0, "homepage"), Child, ZeroOrMore)
	if Signature(e) == Signature(f) {
		t.Error("OR-group annotations must distinguish signatures")
	}
}
