// Package pattern implements Annotated Pattern Trees (APTs), the extension
// of classical tree pattern queries introduced in Section 2.1 of the TLC
// paper (Definitions 1 and 2). An APT is a rooted tree whose nodes carry a
// node test plus an optional content predicate and whose edges carry a
// structural axis (parent-child or ancestor-descendant) together with a
// matching specification mSpec drawn from {-, ?, +, *} that controls how
// many matches of the child are admitted per match of the parent:
//
//	"-"  exactly one match       (default; classical pattern match)
//	"?"  zero or one match
//	"+"  one or more matches, clustered into a single witness tree
//	"*"  zero or more matches, clustered into a single witness tree
//
// Every pattern node is assigned a Logical Class Label (LCL); the nodes of
// a witness tree that matched pattern node v form the logical class LC(v)
// (Definition 4), addressable by the label in all subsequent operators.
//
// Pattern node tests come in three forms: a tag test (element tag,
// "@attribute", or "#text"), a document-root test that anchors the pattern
// at a named document, and a logical-class membership test that anchors the
// pattern at nodes already classified by an earlier match — the mechanism
// behind pattern tree reuse (Section 4.1).
package pattern

import (
	"fmt"
	"strings"
)

// Axis is the structural relationship required along a pattern edge.
type Axis uint8

// Supported axes.
const (
	// Child requires a parent-child relationship.
	Child Axis = iota
	// Descendant requires an ancestor-descendant relationship ("//").
	Descendant
)

// String renders the axis in XPath style.
func (a Axis) String() string {
	if a == Descendant {
		return "//"
	}
	return "/"
}

// MSpec is the matching specification of an annotated pattern tree edge
// (Definition 1).
type MSpec uint8

// The four matching specifications.
const (
	// One ("-"): one and only one match of the child per match of the
	// parent in one witness tree.
	One MSpec = iota
	// ZeroOrOne ("?"): zero or one match.
	ZeroOrOne
	// OneOrMore ("+"): one or more matches, clustered.
	OneOrMore
	// ZeroOrMore ("*"): zero or more matches, clustered.
	ZeroOrMore
)

// Nested reports whether the specification clusters all matching relatives
// into a single witness tree ("+" or "*").
func (m MSpec) Nested() bool { return m == OneOrMore || m == ZeroOrMore }

// Optional reports whether the specification admits parents with no
// matching child ("?" or "*").
func (m MSpec) Optional() bool { return m == ZeroOrOne || m == ZeroOrMore }

// String renders the specification symbol used in the paper.
func (m MSpec) String() string {
	switch m {
	case One:
		return "-"
	case ZeroOrOne:
		return "?"
	case OneOrMore:
		return "+"
	default:
		return "*"
	}
}

// Cmp is a comparison operator in a content predicate.
type Cmp uint8

// Comparison operators supported by content predicates.
const (
	EQ Cmp = iota
	NE
	LT
	LE
	GT
	GE
)

// String renders the comparison operator.
func (c Cmp) String() string {
	switch c {
	case EQ:
		return "="
	case NE:
		return "!="
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	default:
		return ">="
	}
}

// Predicate is a content predicate attached to a pattern node, e.g.
// "> 25" on an age node. Comparison is numeric when both sides parse as
// numbers, textual otherwise (see Compare).
type Predicate struct {
	Op    Cmp
	Value string
}

// String renders the predicate.
func (p *Predicate) String() string { return p.Op.String() + p.Value }

// TestKind discriminates the node test of a pattern node.
type TestKind uint8

// Node test kinds.
const (
	// TestTag matches nodes by tag name (element tag, "@attr", "#text").
	TestTag TestKind = iota
	// TestDocRoot matches the root node of the named document; used for
	// the doc_root anchor of document()-rooted paths.
	TestDocRoot
	// TestLC matches the nodes of an existing logical class in the input
	// tree; used by extension pattern trees (pattern tree reuse).
	TestLC
	// TestWildcard matches any element node.
	TestWildcard
)

// Node is a node of an annotated pattern tree.
type Node struct {
	// LCL is the logical class label assigned to matches of this node.
	// Labels are positive and unique within the pattern; 0 means the node
	// has not been labelled (anonymous pattern nodes used only as glue).
	LCL int
	// Kind selects the node test.
	Kind TestKind
	// Tag is the tag name for TestTag nodes.
	Tag string
	// Doc is the document name for TestDocRoot nodes.
	Doc string
	// InClass is the referenced logical class for TestLC nodes.
	InClass int
	// Pred is an optional content predicate on the matched node.
	Pred *Predicate
	// Edges are the outgoing (downward) pattern edges in query order.
	Edges []Edge
}

// Edge is a downward edge of an annotated pattern tree.
//
// Beyond the structural axis and matching specification, an edge can carry
// a logical-operator annotation (after "Adding Logical Operators to Tree
// Pattern Queries", see DESIGN.md §15): edges of one node that share a
// positive Group identifier form an OR-disjunction — the parent matches
// when at least one member edge is satisfied — and an edge with Not set is
// an anti-join: the parent matches only when the edge's subtree has NO
// match (a Not member inside a Group is satisfied exactly when its subtree
// has no match). Annotated edges are pure existence tests: their subtrees
// are anonymous (every LCL is 0), nothing is attached to the witness tree,
// and they never multiply matches. Plain edges (Group == 0, !Not) are the
// implicit AND of the classical APT.
type Edge struct {
	Axis Axis
	Spec MSpec
	To   *Node
	// Group links this edge into an OR-disjunction with the sibling edges
	// carrying the same positive identifier; 0 means a plain AND edge.
	Group int
	// Not inverts the edge into an anti-join existence test.
	Not bool
}

// Logical reports whether the edge carries a logical-operator annotation
// (OR-group membership or NOT) and is therefore a pure existence test.
func (e *Edge) Logical() bool { return e.Group != 0 || e.Not }

// Tree is an annotated pattern tree.
type Tree struct {
	Root *Node
}

// NewTagNode returns a pattern node testing for the given tag with logical
// class label lcl.
func NewTagNode(lcl int, tag string) *Node {
	return &Node{LCL: lcl, Kind: TestTag, Tag: tag}
}

// NewDocRoot returns a pattern node anchored at the root of document doc.
func NewDocRoot(lcl int, doc string) *Node {
	return &Node{LCL: lcl, Kind: TestDocRoot, Doc: doc}
}

// NewLCAnchor returns a pattern node matching the members of logical class
// inClass of the input tree. It is the anchor of extension pattern trees.
func NewLCAnchor(lcl, inClass int) *Node {
	return &Node{LCL: lcl, Kind: TestLC, InClass: inClass}
}

// Add appends a child pattern node along an edge with the given axis and
// matching specification and returns the child for chaining.
func (n *Node) Add(child *Node, axis Axis, spec MSpec) *Node {
	n.Edges = append(n.Edges, Edge{Axis: axis, Spec: spec, To: child})
	return child
}

// Nodes returns all pattern nodes in pre-order.
func (t *Tree) Nodes() []*Node {
	var out []*Node
	var walk func(*Node)
	walk = func(n *Node) {
		out = append(out, n)
		for _, e := range n.Edges {
			walk(e.To)
		}
	}
	if t.Root != nil {
		walk(t.Root)
	}
	return out
}

// FindLCL returns the pattern node labelled lcl, or nil.
func (t *Tree) FindLCL(lcl int) *Node {
	for _, n := range t.Nodes() {
		if n.LCL == lcl {
			return n
		}
	}
	return nil
}

// ParentOf returns the pattern parent of child and the connecting edge, or
// nil if child is the root or not part of the tree.
func (t *Tree) ParentOf(child *Node) (*Node, *Edge) {
	for _, n := range t.Nodes() {
		for i := range n.Edges {
			if n.Edges[i].To == child {
				return n, &n.Edges[i]
			}
		}
	}
	return nil, nil
}

// Clone returns a deep copy of the pattern tree.
func (t *Tree) Clone() *Tree {
	var cp func(*Node) *Node
	cp = func(n *Node) *Node {
		m := *n
		m.Edges = make([]Edge, len(n.Edges))
		for i, e := range n.Edges {
			e.To = cp(e.To)
			m.Edges[i] = e
		}
		if n.Pred != nil {
			p := *n.Pred
			m.Pred = &p
		}
		return &m
	}
	if t.Root == nil {
		return &Tree{}
	}
	return &Tree{Root: cp(t.Root)}
}

// Validate checks structural sanity: non-nil root, unique positive LCLs,
// LC anchors only at the root, tag tests with non-empty tags, and
// well-formed logical annotations (OR groups need at least two member
// edges, and annotated subtrees must be anonymous — they are existence
// tests that bind no logical class). A nil error means the pattern is well
// formed.
func (t *Tree) Validate() error {
	if t.Root == nil {
		return fmt.Errorf("pattern: nil root")
	}
	if err := validateLogical(t.Root); err != nil {
		return err
	}
	seen := make(map[int]bool)
	nodes := t.Nodes()
	for i, n := range nodes {
		if n.LCL < 0 {
			return fmt.Errorf("pattern: negative LCL %d", n.LCL)
		}
		if n.LCL > 0 {
			if seen[n.LCL] {
				return fmt.Errorf("pattern: duplicate LCL %d", n.LCL)
			}
			seen[n.LCL] = true
		}
		switch n.Kind {
		case TestTag:
			if n.Tag == "" {
				return fmt.Errorf("pattern: empty tag test")
			}
		case TestDocRoot:
			if n.Doc == "" {
				return fmt.Errorf("pattern: empty document name")
			}
		case TestLC:
			if i != 0 {
				return fmt.Errorf("pattern: LC anchor (class %d) must be the pattern root", n.InClass)
			}
			if n.InClass <= 0 {
				return fmt.Errorf("pattern: LC anchor with class %d", n.InClass)
			}
		}
	}
	return nil
}

// validateLogical checks the logical-operator annotations below n: group
// identifiers are non-negative, every OR group has at least two member
// edges of the same node, and annotated (group or NOT) subtrees carry no
// logical class labels.
func validateLogical(n *Node) error {
	groupSize := make(map[int]int)
	for i := range n.Edges {
		e := &n.Edges[i]
		if e.Group < 0 {
			return fmt.Errorf("pattern: negative OR-group id %d", e.Group)
		}
		if e.Group > 0 {
			groupSize[e.Group]++
		}
		if e.Logical() {
			if err := requireAnonymous(e.To); err != nil {
				return err
			}
		}
		if err := validateLogical(e.To); err != nil {
			return err
		}
	}
	for g, size := range groupSize {
		if size < 2 {
			return fmt.Errorf("pattern: OR group %d has a single member edge", g)
		}
	}
	return nil
}

// requireAnonymous rejects logical class labels inside an annotated
// (existence-test) subtree: nothing is attached for such edges, so a label
// would silently produce an empty class.
func requireAnonymous(n *Node) error {
	if n.LCL != 0 {
		return fmt.Errorf("pattern: class label %d inside a logical (OR/NOT) subtree", n.LCL)
	}
	for i := range n.Edges {
		if err := requireAnonymous(n.Edges[i].To); err != nil {
			return err
		}
	}
	return nil
}

// String renders the pattern tree in a compact indented form used by plan
// explanation and tests, e.g.
//
//	doc_root(auction.xml) [1]
//	  //person [2]
//	    /age>25 [3]
func (t *Tree) String() string {
	if t == nil {
		return "(nil pattern)\n"
	}
	var sb strings.Builder
	var walk func(n *Node, depth int, e *Edge)
	walk = func(n *Node, depth int, e *Edge) {
		sb.WriteString(strings.Repeat("  ", depth))
		if e != nil {
			if e.Not {
				sb.WriteString("not ")
			}
			sb.WriteString(e.Axis.String())
		}
		switch n.Kind {
		case TestTag:
			sb.WriteString(n.Tag)
		case TestDocRoot:
			sb.WriteString("doc_root(" + n.Doc + ")")
		case TestLC:
			fmt.Fprintf(&sb, "class(%d)", n.InClass)
		case TestWildcard:
			sb.WriteString("*any*")
		}
		if n.Pred != nil {
			sb.WriteString(n.Pred.String())
		}
		if n.LCL > 0 {
			fmt.Fprintf(&sb, " [%d]", n.LCL)
		}
		if e != nil && e.Spec != One {
			fmt.Fprintf(&sb, " {%s}", e.Spec)
		}
		if e != nil && e.Group > 0 {
			fmt.Fprintf(&sb, " {or:%d}", e.Group)
		}
		sb.WriteByte('\n')
		for i := range n.Edges {
			walk(n.Edges[i].To, depth+1, &n.Edges[i])
		}
	}
	if t.Root != nil {
		walk(t.Root, 0, nil)
	}
	return sb.String()
}
