package pattern

import "strconv"

// Compare evaluates "left op right" with XML value semantics: if both
// operands parse as numbers the comparison is numeric; if both are
// non-numeric it is a lexicographic string comparison; a mixed pair only
// supports (in)equality — ordering a number against a non-number is false,
// which also makes comparisons against the aggregate "empty" flag fail,
// as the paper's Aggregate-Function semantics require. This is the
// comparison used by content predicates, value joins and order-by keys.
func Compare(op Cmp, left, right string) bool {
	lf, lerr := strconv.ParseFloat(left, 64)
	rf, rerr := strconv.ParseFloat(right, 64)
	switch {
	case lerr == nil && rerr == nil:
		return compareOrd(op, cmpFloat(lf, rf))
	case lerr == nil || rerr == nil: // mixed types
		switch op {
		case EQ:
			return false
		case NE:
			return true
		default:
			return false
		}
	}
	switch {
	case left == right:
		return compareOrd(op, 0)
	case left < right:
		return compareOrd(op, -1)
	default:
		return compareOrd(op, 1)
	}
}

// Flip returns the comparison with its operand sides exchanged, so that
// "a op b" holds exactly when "b op.Flip() a" holds.
func (c Cmp) Flip() Cmp {
	switch c {
	case LT:
		return GT
	case LE:
		return GE
	case GT:
		return LT
	case GE:
		return LE
	default: // EQ, NE are symmetric
		return c
	}
}

// Eval applies the predicate to a content value.
func (p *Predicate) Eval(content string) bool {
	return Compare(p.Op, content, p.Value)
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func compareOrd(op Cmp, ord int) bool {
	switch op {
	case EQ:
		return ord == 0
	case NE:
		return ord != 0
	case LT:
		return ord < 0
	case LE:
		return ord <= 0
	case GT:
		return ord > 0
	default:
		return ord >= 0
	}
}
