package xmark

import (
	"sort"
	"strings"
	"testing"

	"tlc/internal/algebra"
	"tlc/internal/baselines/gtp"
	"tlc/internal/baselines/nav"
	"tlc/internal/baselines/tax"
	"tlc/internal/rewrite"
	"tlc/internal/seq"
	"tlc/internal/store"
	"tlc/internal/translate"
	"tlc/internal/xquery"
)

func smallStore(t *testing.T) *store.Store {
	t.Helper()
	s := store.New()
	doc := GenerateSized("auction.xml", Sizes{
		Persons: 60, OpenAuctions: 40, ClosedAuctions: 30, Items: 48, Categories: 8,
	}, 7)
	if _, err := s.Load(doc); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestGenerateIsValidAndDeterministic(t *testing.T) {
	d1 := Generate("a.xml", 0.02)
	d2 := Generate("a.xml", 0.02)
	if err := d1.Validate(); err != nil {
		t.Fatal(err)
	}
	if d1.Len() != d2.Len() {
		t.Fatalf("non-deterministic: %d vs %d nodes", d1.Len(), d2.Len())
	}
	for i := range d1.Nodes {
		if d1.Nodes[i].Tag != d2.Nodes[i].Tag || d1.Nodes[i].Value != d2.Nodes[i].Value {
			t.Fatalf("non-deterministic at node %d", i)
		}
	}
}

func TestGenerateScalesLinearly(t *testing.T) {
	small := Generate("a.xml", 0.02)
	big := Generate("b.xml", 0.08)
	ratio := float64(big.Len()) / float64(small.Len())
	if ratio < 3.0 || ratio > 5.0 {
		t.Errorf("4x factor gave %.1fx nodes", ratio)
	}
}

func TestGeneratePopulations(t *testing.T) {
	s := smallStore(t)
	id, _ := s.Lookup("auction.xml")
	for tag, want := range map[string]int{
		"person": 60, "open_auction": 40, "closed_auction": 30,
		"item": 48, "category": 8,
	} {
		if got := len(s.Tag(id, tag)); got != want {
			t.Errorf("%s count = %d, want %d", tag, got, want)
		}
	}
	// Skewed bidders: some auction exceeds 5 bidders, some has none.
	doc := s.Doc(id)
	over5, zero := false, false
	for _, a := range s.Tag(id, "open_auction") {
		n := 0
		for _, c := range doc.Children(a) {
			if doc.Tag(c) == "bidder" {
				n++
			}
		}
		if n > 5 {
			over5 = true
		}
		if n == 0 {
			zero = true
		}
	}
	if !over5 || !zero {
		t.Errorf("bidder skew missing: over5=%v zero=%v", over5, zero)
	}
	// Optional age: present and absent persons both exist.
	withAge := len(s.Tag(id, "age"))
	if withAge == 0 || withAge == 60 {
		t.Errorf("age count = %d of 60, want a strict subset", withAge)
	}
}

func TestQueriesAllParseAndTranslate(t *testing.T) {
	for _, q := range Queries() {
		ast, err := xquery.Parse(q.Text)
		if err != nil {
			t.Errorf("%s: parse: %v", q.ID, err)
			continue
		}
		if _, err := translate.Translate(ast); err != nil {
			t.Errorf("%s: translate: %v", q.ID, err)
		}
	}
	if len(Queries()) != 23 {
		t.Errorf("workload has %d queries, want 23 (x1..x20, Q1, Q2, 10a)", len(Queries()))
	}
}

func TestQueryByID(t *testing.T) {
	if q, ok := QueryByID("Q1"); !ok || !q.Rewritable {
		t.Errorf("QueryByID(Q1) = %+v, %v", q, ok)
	}
	if _, ok := QueryByID("nope"); ok {
		t.Error("QueryByID(nope) found something")
	}
}

func canonical(s *store.Store, out seq.Seq) string {
	xs := make([]string, len(out))
	for i, w := range out {
		xs[i] = w.XML(s)
	}
	sort.Strings(xs)
	return strings.Join(xs, "\n")
}

// TestAllEnginesAgreeOnWorkload is the central correctness check of the
// benchmark: every engine (TLC, TLC+rewrites, GTP, TAX, NAV) must produce
// identical result sets for all 23 workload queries on generated data.
func TestAllEnginesAgreeOnWorkload(t *testing.T) {
	s := smallStore(t)
	for _, q := range Queries() {
		q := q
		t.Run(q.ID, func(t *testing.T) {
			ast, err := xquery.Parse(q.Text)
			if err != nil {
				t.Fatal(err)
			}
			tlcRes, err := translate.Translate(ast)
			if err != nil {
				t.Fatal(err)
			}
			want, err := algebra.Run(s, tlcRes.Plan)
			if err != nil {
				t.Fatalf("tlc: %v", err)
			}
			wantC := canonical(s, want)

			optRes, err := translate.Translate(ast)
			if err != nil {
				t.Fatal(err)
			}
			optPlan, n := rewrite.Optimize(optRes.Plan)
			if q.Rewritable && n == 0 {
				t.Errorf("%s marked rewritable but no rewrite fired", q.ID)
			}
			optOut, err := algebra.Run(s, optPlan)
			if err != nil {
				t.Fatalf("opt: %v\n%s", err, algebra.Explain(optPlan))
			}
			if got := canonical(s, optOut); got != wantC {
				t.Errorf("OPT differs on %s\nplan:\n%s", q.ID, algebra.Explain(optPlan))
			}

			gtpRes, err := gtp.Translate(ast)
			if err != nil {
				t.Fatal(err)
			}
			gtpOut, err := algebra.Run(s, gtpRes.Plan)
			if err != nil {
				t.Fatalf("gtp: %v\n%s", err, algebra.Explain(gtpRes.Plan))
			}
			if got := canonical(s, gtpOut); got != wantC {
				t.Errorf("GTP differs on %s", q.ID)
			}

			taxRes, err := tax.Translate(ast)
			if err != nil {
				t.Fatal(err)
			}
			taxOut, err := algebra.Run(s, taxRes.Plan)
			if err != nil {
				t.Fatalf("tax: %v\n%s", err, algebra.Explain(taxRes.Plan))
			}
			if got := canonical(s, taxOut); got != wantC {
				t.Errorf("TAX differs on %s", q.ID)
			}

			navOut, err := nav.Run(s, ast)
			if err != nil {
				t.Fatalf("nav: %v", err)
			}
			if got := canonical(s, navOut); got != wantC {
				t.Errorf("NAV differs on %s\nTLC:\n%.400s\nNAV:\n%.400s", q.ID, wantC, canonical(s, navOut))
			}
		})
	}
}

// TestOrderByAgreesInOrder cross-validates ORDER BY output *order* (the
// canonical comparison above is order-insensitive) between the algebraic
// engines and the navigational interpreter.
func TestOrderByAgreesInOrder(t *testing.T) {
	s := smallStore(t)
	q, ok := QueryByID("x19")
	if !ok {
		t.Fatal("x19 missing")
	}
	ast, err := xquery.Parse(q.Text)
	if err != nil {
		t.Fatal(err)
	}
	tlcRes, err := translate.Translate(ast)
	if err != nil {
		t.Fatal(err)
	}
	want, err := algebra.Run(s, tlcRes.Plan)
	if err != nil {
		t.Fatal(err)
	}
	wantXML := want.XML(s)
	navOut, err := nav.Run(s, ast)
	if err != nil {
		t.Fatal(err)
	}
	// Sort keys may tie; compare the key sequence, not full trees.
	keyOf := func(x string) string {
		i := strings.LastIndex(x, ">")
		_ = i
		return x[strings.Index(x, ">")+1:]
	}
	wantLines := strings.Split(wantXML, "\n")
	gotLines := strings.Split(navOut.XML(s), "\n")
	if len(wantLines) != len(gotLines) {
		t.Fatalf("lengths differ: %d vs %d", len(wantLines), len(gotLines))
	}
	for i := range wantLines {
		if keyOf(wantLines[i]) != keyOf(gotLines[i]) {
			t.Fatalf("order differs at %d:\n%s\nvs\n%s", i, wantLines[i], gotLines[i])
		}
	}
}

// TestWorkloadResultCountsStable pins the result cardinalities of the
// workload on the deterministic small store — a regression tripwire for
// engine, translator and generator changes alike.
func TestWorkloadResultCountsStable(t *testing.T) {
	s := smallStore(t)
	counts := map[string]int{}
	for _, q := range Queries() {
		ast, err := xquery.Parse(q.Text)
		if err != nil {
			t.Fatal(err)
		}
		res, err := translate.Translate(ast)
		if err != nil {
			t.Fatal(err)
		}
		out, err := algebra.Run(s, res.Plan)
		if err != nil {
			t.Fatalf("%s: %v", q.ID, err)
		}
		counts[q.ID] = len(out)
	}
	// Structural sanity rather than exact pinning for every row: the
	// highly selective rows must be small, the full-scan rows large.
	if counts["x1"] != 1 {
		t.Errorf("x1 = %d, want 1", counts["x1"])
	}
	if counts["x17"] < 20 || counts["x17"] > 60 {
		t.Errorf("x17 = %d, want most persons", counts["x17"])
	}
	if counts["x18"] != 40 {
		t.Errorf("x18 = %d, want all 40 auctions", counts["x18"])
	}
	if counts["x20"] != 1 {
		t.Errorf("x20 = %d, want 1", counts["x20"])
	}
	if counts["10a"] >= counts["x10"] {
		t.Errorf("10a (%d) must be more selective than x10 (%d)", counts["10a"], counts["x10"])
	}
	if counts["Q1"] == 0 || counts["Q2"] == 0 {
		t.Errorf("Q1/Q2 empty: %d/%d", counts["Q1"], counts["Q2"])
	}
}
