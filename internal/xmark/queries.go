package xmark

// Query is one benchmark query of Figure 15.
type Query struct {
	// ID is the Figure 15 row name: x1…x20, Q1, Q2, 10a.
	ID string
	// Text is the query in the Figure 5 XQuery fragment.
	Text string
	// Comment mirrors the Figure 15 comment column (A/R = arguments per
	// RETURN, OT = output trees, J = value join).
	Comment string
	// Rewritable marks the queries the Section 4 rewrites apply to
	// (Figure 16 runs x3, x5, Q1 and Q2).
	Rewritable bool
}

// Queries returns the Figure 15 workload in table order. The queries are
// faithful adaptations of the XMark queries to the supported fragment:
// each keeps its original profile — the heterogeneity instigators
// (aggregates, LETs, multiple RETURN arguments, nesting), selectivity,
// '//' usage and output volume — which is what the Figure 15 comparisons
// exercise.
func Queries() []Query {
	return []Query{
		{ID: "x1", Comment: "1 A/R, single OT", Text: `
FOR $p IN document("auction.xml")//person
WHERE $p/@id = "person0"
RETURN <out>{$p/name/text()}</out>`},

		{ID: "x2", Comment: "1 A/R, lots OT", Text: `
FOR $b IN document("auction.xml")//open_auction/bidder
RETURN <increase>{$b/increase/text()}</increase>`},

		{ID: "x3", Comment: "J, 2 A/R, avg OT", Rewritable: true, Text: `
FOR $p IN document("auction.xml")//person
FOR $o IN document("auction.xml")//open_auction
WHERE $p/@id = $o/bidder//@person AND $p/age > 50
RETURN <auction name={$p/name/text()}> $o/bidder </auction>`},

		{ID: "x4", Comment: "1 A/R, two OT", Text: `
FOR $a IN document("auction.xml")//closed_auction
WHERE $a/buyer//@person = "person1"
RETURN <history>{$a/price/text()}</history>`},

		{ID: "x5", Comment: "small count, 1 A/R", Rewritable: true, Text: `
FOR $o IN document("auction.xml")//open_auction
WHERE count($o/bidder) > 5
  AND EVERY $b IN $o/bidder SATISFIES $b/increase > 0
RETURN <bids>{count($o/bidder)}</bids>`},

		{ID: "x6", Comment: "big count, '//'", Text: `
FOR $r IN document("auction.xml")/regions
RETURN <n>{count($r//item)}</n>`},

		{ID: "x7", Comment: "3 big counts, '//'", Text: `
FOR $s IN document("auction.xml")/regions
RETURN <counts>
  <descriptions>{count($s//description)}</descriptions>
  <mails>{count($s//mail)}</mails>
  <names>{count($s//name)}</names>
</counts>`},

		{ID: "x8", Comment: "J, LET, 2 A/R", Text: `
FOR $p IN document("auction.xml")//person
LET $a := FOR $t IN document("auction.xml")//closed_auction
          WHERE $t/buyer//@person = $p/@id
          RETURN $t/price
RETURN <item person={$p/name/text()}><bought>{count($a/price)}</bought></item>`},

		{ID: "x9", Comment: "2J, LETs, 2 A/R", Text: `
FOR $p IN document("auction.xml")//person
LET $a := FOR $t IN document("auction.xml")//closed_auction
          FOR $i IN document("auction.xml")//item
          WHERE $t/buyer//@person = $p/@id
            AND $t/itemref//@item = $i/@id
          RETURN <history>{$i/name/text()}</history>
RETURN <person name={$p/name/text()}>{$a}</person>`},

		{ID: "x10", Comment: "LET, 12 A/R, lots OT", Text: x10Body("")},

		{ID: "x11", Comment: "count, LET, lots OT", Text: `
FOR $p IN document("auction.xml")//person
LET $a := FOR $i IN document("auction.xml")//item
          WHERE $i/quantity < $p/profile/@income
          RETURN $i/name
WHERE $p/profile/@income > 90000
RETURN <items name={$p/name/text()}><n>{count($a/name)}</n></items>`},

		{ID: "x12", Comment: "count, LET, avg OT", Text: `
FOR $p IN document("auction.xml")//person
LET $a := FOR $i IN document("auction.xml")//item
          WHERE $i/quantity < $p/profile/@income
          RETURN $i/name
WHERE $p/profile/@income > 98000
RETURN <items name={$p/name/text()}><n>{count($a/name)}</n></items>`},

		{ID: "x13", Comment: "2 A/R, avg OT", Text: `
FOR $i IN document("auction.xml")/regions/australia/item
RETURN <item name={$i/name/text()}>{$i/description}</item>`},

		{ID: "x14", Comment: "'//', value cond on desc", Text: `
FOR $i IN document("auction.xml")//item
WHERE $i//payment = "Creditcard"
RETURN <item>{$i/name/text()}</item>`},

		{ID: "x15", Comment: "long path, return $var", Text: `
FOR $q IN document("auction.xml")/open_auctions/open_auction/annotation/description/text
RETURN $q`},

		{ID: "x16", Comment: "long path, 1 A/R", Text: `
FOR $a IN document("auction.xml")/open_auctions/open_auction/annotation
RETURN <who>{$a/author/@person}</who>`},

		{ID: "x17", Comment: "1 A/R, lots OT", Text: `
FOR $p IN document("auction.xml")//person
WHERE $p/age > 20
RETURN <person>{$p/name/text()}</person>`},

		{ID: "x18", Comment: "1 A/R, lots OT", Text: `
FOR $o IN document("auction.xml")//open_auction
RETURN <amount>{$o/current/text()}</amount>`},

		{ID: "x19", Comment: "'//', 2 A/R, sort, lots OT", Text: `
FOR $i IN document("auction.xml")//item
ORDER BY $i/location ASCENDING
RETURN <item name={$i/name/text()}>{$i/location/text()}</item>`},

		{ID: "x20", Comment: "4 counts", Text: `
FOR $c IN document("auction.xml")/people
RETURN <result>
  <persons>{count($c/person)}</persons>
  <withage>{count($c/person/age)}</withage>
  <withphone>{count($c/person/phone)}</withphone>
  <withaddress>{count($c/person/address)}</withaddress>
</result>`},

		{ID: "Q1", Comment: "'//', J, count, 2 A/R", Rewritable: true, Text: `
FOR $p IN document("auction.xml")//person
FOR $o IN document("auction.xml")//open_auction
WHERE count($o/bidder) > 5 AND $p/age > 25
  AND $p/@id = $o/bidder//@person
RETURN <person name={$p/name/text()}> $o/bidder </person>`},

		{ID: "Q2", Comment: "'//', J, count, 2 A/R, LET", Rewritable: true, Text: `
FOR $p IN document("auction.xml")//person
LET $a := FOR $o IN document("auction.xml")//open_auction
          WHERE count($o/bidder) > 5
            AND $p/@id = $o/bidder//@person
          RETURN <myauction> {$o/bidder}
            <myquan>{$o/quantity/text()}</myquan>
          </myauction>
WHERE $p/age > 25
  AND EVERY $i IN $a/myquan SATISFIES $i > 0
RETURN <person name={$p/name/text()}>{$a/bidder}</person>`},

		{ID: "10a", Comment: "LET, 12 A/R, few OT", Text: x10Body(`WHERE $p/@id = "person3"` + "\n")},
	}
}

// QueryByID returns the query with the given Figure 15 row name.
func QueryByID(id string) (Query, bool) {
	for _, q := range Queries() {
		if q.ID == id {
			return q, true
		}
	}
	return Query{}, false
}

// x10Body builds x10 (and its selective variant 10a): a nested LET whose
// inner RETURN carries twelve arguments — the worst case for grouping-based
// engines, which must split, group and merge every one of them.
func x10Body(filter string) string {
	return `
FOR $p IN document("auction.xml")//person
LET $a := FOR $o IN document("auction.xml")//open_auction
          WHERE $o/seller//@person = $p/@id
          RETURN <listing>
            <aid>{$o/@id}</aid>
            <first>{$o/initial/text()}</first>
            <cur>{$o/current/text()}</cur>
            <qty>{$o/quantity/text()}</qty>
            <kind>{$o/type/text()}</kind>
            <begin>{$o/interval/start/text()}</begin>
            <finish>{$o/interval/end/text()}</finish>
            <itm>{$o/itemref/@item}</itm>
            <bids>{count($o/bidder)}</bids>
            <raised>{$o/bidder/increase/text()}</raised>
            <when>{$o/bidder/date/text()}</when>
            <note>{$o/annotation/description/text}</note>
          </listing>
` + filter + `RETURN <person name={$p/name/text()}>{$a}</person>`
}
