// Package xmark provides the benchmark substrate of Section 6: a
// deterministic generator for XMark-like auction documents (Schmidt et
// al., VLDB 2002) and the query workload of Figure 15 — the twenty XMark
// queries x1…x20 (adapted to the Figure 5 fragment), the paper's examples
// Q1 and Q2, and the selective x10 variant 10a.
//
// The paper ran xmlgen documents of 67 MB–3.5 GB; this generator
// reproduces the *shape* that drives the evaluation — repeated bidders with
// a skewed fan-out, optional person fields, person/auction/item cross
// references, six regions of items with mailboxes — at laptop scale. The
// factor parameter is preserved: factor 1 here corresponds to roughly a
// tenth of an xmlgen factor-1 document, and everything scales linearly,
// which is all Figures 15–17 need.
package xmark

import (
	"fmt"
	"math/rand"

	"tlc/internal/xmltree"
)

// Sizes describes the element populations of a generated document.
type Sizes struct {
	Persons        int
	OpenAuctions   int
	ClosedAuctions int
	Items          int
	Categories     int
}

// SizesFor returns the populations for a scale factor. Factor 1 is a
// laptop-scale document (about 120k nodes); populations scale linearly and
// keep the XMark ratios (persons : open auctions : items ≈ 25.5 : 12 :
// 21.75).
func SizesFor(factor float64) Sizes {
	n := func(base int) int {
		v := int(float64(base) * factor)
		if v < 2 {
			v = 2
		}
		return v
	}
	return Sizes{
		Persons:        n(2550),
		OpenAuctions:   n(1200),
		ClosedAuctions: n(975),
		Items:          n(2175),
		Categories:     n(100),
	}
}

var (
	firstNames = []string{"Alice", "Bob", "Carol", "Dave", "Erin", "Frank", "Grace",
		"Heidi", "Ivan", "Judy", "Ken", "Laura", "Mallory", "Niaj", "Olivia",
		"Peggy", "Quentin", "Rupert", "Sybil", "Trent", "Uma", "Victor",
		"Wendy", "Xavier", "Yolanda", "Zach"}
	lastNames = []string{"Smith", "Jones", "Brown", "Wilson", "Taylor", "Lee",
		"Walker", "Hall", "Allen", "Young", "King", "Wright", "Scott",
		"Green", "Baker", "Adams", "Nelson", "Hill", "Ramos", "Campbell"}
	cities = []string{"Ann Arbor", "Vancouver", "Paris", "Tokyo", "Nairobi",
		"Lima", "Sydney", "Oslo", "Cairo", "Seoul"}
	countries = []string{"United States", "Canada", "France", "Japan", "Kenya",
		"Peru", "Australia", "Norway", "Egypt", "South Korea"}
	regions  = []string{"africa", "asia", "australia", "europe", "namerica", "samerica"}
	payments = []string{"Creditcard", "Money order", "Personal check", "Cash"}
	words    = []string{"vintage", "rare", "mint", "boxed", "antique", "signed",
		"limited", "classic", "restored", "original", "pristine", "engraved"}
)

// Generate builds a deterministic auction document named name for the
// given scale factor.
func Generate(name string, factor float64) *xmltree.Document {
	return GenerateSized(name, SizesFor(factor), 42)
}

// GenerateSized builds a document with explicit populations and seed.
func GenerateSized(name string, sz Sizes, seed int64) *xmltree.Document {
	rng := rand.New(rand.NewSource(seed))
	b := xmltree.NewBuilder(name)
	b.OpenElement("site")

	genRegions(b, rng, sz)
	genCategories(b, rng, sz)
	genPeople(b, rng, sz)
	genOpenAuctions(b, rng, sz)
	genClosedAuctions(b, rng, sz)

	b.CloseElement()
	// The generator opens and closes in lockstep, so Done cannot fail.
	doc, err := b.Done()
	if err != nil {
		panic(err)
	}
	return doc
}

func genRegions(b *xmltree.Builder, rng *rand.Rand, sz Sizes) {
	b.OpenElement("regions")
	perRegion := sz.Items / len(regions)
	item := 0
	for ri, region := range regions {
		b.OpenElement(region)
		count := perRegion
		if ri == len(regions)-1 {
			count = sz.Items - item // remainder into the last region
		}
		for i := 0; i < count; i++ {
			genItem(b, rng, item, sz)
			item++
		}
		b.CloseElement()
	}
	b.CloseElement()
}

func genItem(b *xmltree.Builder, rng *rand.Rand, id int, sz Sizes) {
	b.OpenElement("item")
	b.Attr("id", fmt.Sprintf("item%d", id))
	b.Element("location", countries[rng.Intn(len(countries))])
	b.Element("quantity", itoa(1+rng.Intn(7)))
	b.Element("name", words[rng.Intn(len(words))]+" "+words[rng.Intn(len(words))])
	b.Element("payment", payments[rng.Intn(len(payments))])
	b.OpenElement("description")
	b.Element("text", sentence(rng, 6))
	b.CloseElement()
	for i, n := 0, 1+rng.Intn(2); i < n; i++ {
		b.OpenElement("incategory")
		b.Attr("category", fmt.Sprintf("category%d", rng.Intn(sz.Categories)))
		b.CloseElement()
	}
	b.OpenElement("mailbox")
	for i, n := 0, rng.Intn(3); i < n; i++ {
		b.OpenElement("mail")
		b.Element("from", name(rng))
		b.Element("to", name(rng))
		b.Element("date", date(rng))
		b.Element("text", sentence(rng, 8))
		b.CloseElement()
	}
	b.CloseElement()
	b.CloseElement()
}

func genCategories(b *xmltree.Builder, rng *rand.Rand, sz Sizes) {
	b.OpenElement("categories")
	for i := 0; i < sz.Categories; i++ {
		b.OpenElement("category")
		b.Attr("id", fmt.Sprintf("category%d", i))
		b.Element("name", words[rng.Intn(len(words))])
		b.OpenElement("description")
		b.Element("text", sentence(rng, 5))
		b.CloseElement()
		b.CloseElement()
	}
	b.CloseElement()
}

func genPeople(b *xmltree.Builder, rng *rand.Rand, sz Sizes) {
	b.OpenElement("people")
	for i := 0; i < sz.Persons; i++ {
		b.OpenElement("person")
		b.Attr("id", fmt.Sprintf("person%d", i))
		b.Element("name", name(rng))
		b.Element("emailaddress", fmt.Sprintf("mailto:user%d@example.net", i))
		if rng.Float64() < 0.5 {
			b.Element("phone", fmt.Sprintf("+1 (%d) %d", 100+rng.Intn(900), 1000000+rng.Intn(9000000)))
		}
		if rng.Float64() < 0.4 {
			b.OpenElement("address")
			b.Element("street", fmt.Sprintf("%d %s St", 1+rng.Intn(99), lastNames[rng.Intn(len(lastNames))]))
			b.Element("city", cities[rng.Intn(len(cities))])
			b.Element("country", countries[rng.Intn(len(countries))])
			b.CloseElement()
		}
		if rng.Float64() < 0.3 {
			b.Element("homepage", fmt.Sprintf("http://example.net/~user%d", i))
		}
		// age is optional: the paper's $p/age > 25 predicates need both
		// missing and present cases.
		if rng.Float64() < 0.6 {
			b.Element("age", itoa(18+rng.Intn(53)))
		}
		if rng.Float64() < 0.7 {
			b.OpenElement("profile")
			b.Attr("income", fmt.Sprintf("%d", 9000+rng.Intn(91000)))
			for j, n := 0, rng.Intn(4); j < n; j++ {
				b.OpenElement("interest")
				b.Attr("category", fmt.Sprintf("category%d", rng.Intn(sz.Categories)))
				b.CloseElement()
			}
			if rng.Float64() < 0.5 {
				b.Element("education", []string{"High School", "College", "Graduate School"}[rng.Intn(3)])
			}
			b.CloseElement()
		}
		if rng.Float64() < 0.4 {
			b.OpenElement("watches")
			for j, n := 0, rng.Intn(3); j < n; j++ {
				b.OpenElement("watch")
				b.Attr("open_auction", fmt.Sprintf("open_auction%d", rng.Intn(sz.OpenAuctions)))
				b.CloseElement()
			}
			b.CloseElement()
		}
		b.CloseElement()
	}
	b.CloseElement()
}

func genOpenAuctions(b *xmltree.Builder, rng *rand.Rand, sz Sizes) {
	b.OpenElement("open_auctions")
	for i := 0; i < sz.OpenAuctions; i++ {
		b.OpenElement("open_auction")
		b.Attr("id", fmt.Sprintf("open_auction%d", i))
		initial := 1 + rng.Intn(200)
		b.Element("initial", itoa(initial))
		if rng.Float64() < 0.4 {
			b.Element("reserve", itoa(initial+rng.Intn(100)))
		}
		current := initial
		for j, n := 0, bidderCount(rng); j < n; j++ {
			inc := 1 + rng.Intn(24)
			current += inc
			b.OpenElement("bidder")
			b.Element("date", date(rng))
			b.Element("time", fmt.Sprintf("%02d:%02d:%02d", rng.Intn(24), rng.Intn(60), rng.Intn(60)))
			b.OpenElement("personref")
			b.Attr("person", fmt.Sprintf("person%d", rng.Intn(sz.Persons)))
			b.CloseElement()
			b.Element("increase", itoa(inc))
			b.CloseElement()
		}
		b.Element("current", itoa(current))
		b.OpenElement("itemref")
		b.Attr("item", fmt.Sprintf("item%d", rng.Intn(sz.Items)))
		b.CloseElement()
		b.OpenElement("seller")
		b.Attr("person", fmt.Sprintf("person%d", rng.Intn(sz.Persons)))
		b.CloseElement()
		if rng.Float64() < 0.5 {
			b.OpenElement("annotation")
			b.OpenElement("author")
			b.Attr("person", fmt.Sprintf("person%d", rng.Intn(sz.Persons)))
			b.CloseElement()
			b.OpenElement("description")
			b.Element("text", sentence(rng, 6))
			b.CloseElement()
			b.CloseElement()
		}
		b.Element("quantity", itoa(1+rng.Intn(7)))
		b.Element("type", []string{"Regular", "Featured", "Dutch"}[rng.Intn(3)])
		b.OpenElement("interval")
		b.Element("start", date(rng))
		b.Element("end", date(rng))
		b.CloseElement()
		b.CloseElement()
	}
	b.CloseElement()
}

func genClosedAuctions(b *xmltree.Builder, rng *rand.Rand, sz Sizes) {
	b.OpenElement("closed_auctions")
	for i := 0; i < sz.ClosedAuctions; i++ {
		b.OpenElement("closed_auction")
		b.OpenElement("seller")
		b.Attr("person", fmt.Sprintf("person%d", rng.Intn(sz.Persons)))
		b.CloseElement()
		b.OpenElement("buyer")
		b.Attr("person", fmt.Sprintf("person%d", rng.Intn(sz.Persons)))
		b.CloseElement()
		b.OpenElement("itemref")
		b.Attr("item", fmt.Sprintf("item%d", rng.Intn(sz.Items)))
		b.CloseElement()
		b.Element("price", fmt.Sprintf("%d.%02d", 1+rng.Intn(400), rng.Intn(100)))
		b.Element("date", date(rng))
		b.Element("quantity", itoa(1+rng.Intn(7)))
		b.Element("type", []string{"Regular", "Featured", "Dutch"}[rng.Intn(3)])
		if rng.Float64() < 0.4 {
			b.OpenElement("annotation")
			b.OpenElement("author")
			b.Attr("person", fmt.Sprintf("person%d", rng.Intn(sz.Persons)))
			b.CloseElement()
			b.OpenElement("description")
			b.Element("text", sentence(rng, 5))
			b.CloseElement()
			b.CloseElement()
		}
		b.CloseElement()
	}
	b.CloseElement()
}

// bidderCount draws a skewed bidder fan-out: most auctions have few
// bidders, a tail has many — count($o/bidder) > 5 must select a real
// minority, as in XMark data.
func bidderCount(rng *rand.Rand) int {
	r := rng.Float64()
	switch {
	case r < 0.25:
		return 0
	case r < 0.60:
		return 1 + rng.Intn(2)
	case r < 0.85:
		return 3 + rng.Intn(3)
	case r < 0.97:
		return 6 + rng.Intn(4)
	default:
		return 10 + rng.Intn(6)
	}
}

func name(rng *rand.Rand) string {
	return firstNames[rng.Intn(len(firstNames))] + " " + lastNames[rng.Intn(len(lastNames))]
}

func date(rng *rand.Rand) string {
	return fmt.Sprintf("%02d/%02d/%d", 1+rng.Intn(12), 1+rng.Intn(28), 1998+rng.Intn(4))
}

func sentence(rng *rand.Rand, n int) string {
	out := ""
	for i := 0; i < n; i++ {
		if i > 0 {
			out += " "
		}
		out += words[rng.Intn(len(words))]
	}
	return out
}

func itoa(v int) string { return fmt.Sprintf("%d", v) }
