package mutate

import (
	"context"
	"errors"
	"strings"
	"testing"

	"tlc/internal/faultinject"
	"tlc/internal/governor"
	"tlc/internal/store"
)

const auctionXML = `<site>
  <people>
    <person id="p0"><name>Alice</name><age>30</age></person>
    <person id="p1"><name>Bob</name><age>30</age></person>
  </people>
  <open_auctions>
    <open_auction id="a0">
      <bidder><personref person="p0"/><increase>3</increase></bidder>
    </open_auction>
  </open_auctions>
</site>`

func loadStore(t *testing.T, name, xml string) (*store.Store, store.DocID) {
	t.Helper()
	s := store.New()
	id, err := s.LoadXML(name, strings.NewReader(xml))
	if err != nil {
		t.Fatalf("LoadXML: %v", err)
	}
	return s, id
}

// checkOracle compares the updated document against a fresh load of its
// own serialization: tree, indexes and statistics must all agree.
func checkOracle(t *testing.T, s *store.Store, id store.DocID) {
	t.Helper()
	d := s.Doc(id)
	fresh := store.New()
	fid, err := fresh.LoadXML(d.Name(), strings.NewReader(d.XML(0)))
	if err != nil {
		t.Fatalf("oracle reload: %v", err)
	}
	if got, want := d.Fingerprint(), fresh.Doc(fid).Fingerprint(); got != want {
		t.Fatalf("fingerprint diverges from rebuild oracle:\n--- updated ---\n%s\n--- fresh ---\n%s", got, want)
	}
}

func apply(t *testing.T, s *store.Store, req Request) Result {
	t.Helper()
	res, err := Apply(context.Background(), s, req)
	if err != nil {
		t.Fatalf("Apply(%+v): %v", req, err)
	}
	return res
}

func TestApplyInsertPositions(t *testing.T) {
	s, id := loadStore(t, "a.xml", auctionXML)

	res := apply(t, s, Request{Doc: "a.xml", Op: Insert, Target: "/site/people",
		Fragment: `<person id="p2"><name>Carol</name></person>`})
	if res.Version != 2 || res.NodesAdded != 4 || res.NodesRemoved != 0 {
		t.Fatalf("into: res = %+v", res)
	}
	checkOracle(t, s, id)

	apply(t, s, Request{Doc: "a.xml", Op: Insert, Target: "/site/people", Position: PosFirst,
		Fragment: `<person id="p3"><name>Dan</name></person>`})
	checkOracle(t, s, id)

	apply(t, s, Request{Doc: "a.xml", Op: Insert, Target: "/site/people/person[2]", Position: PosBefore,
		Fragment: `<person id="p4"><name>Eve</name></person>`})
	checkOracle(t, s, id)

	apply(t, s, Request{Doc: "a.xml", Op: Insert, Target: "/site/people/person[5]", Position: PosAfter,
		Fragment: `<person id="p5"><name>Fay</name></person>`})
	checkOracle(t, s, id)

	if got := len(s.Tag(id, "person")); got != 6 {
		t.Fatalf("person count = %d, want 6", got)
	}
	// Order: Dan (first), Alice, Eve (before #2 == Alice... resolved per
	// current version), then the rest; just pin the first child.
	d := s.Doc(id)
	people, _ := resolveTarget(d, "/site/people")
	first, ok := childByTag(d, people, "person", 1)
	if !ok || d.Tag(d.FirstChild(first)+1) == "" {
		t.Fatalf("no person under people")
	}
	if v, _ := s.DocVersion("a.xml"); v != 5 {
		t.Fatalf("version = %d, want 5 after four updates", v)
	}
}

func TestApplyDelete(t *testing.T) {
	s, id := loadStore(t, "a.xml", auctionXML)
	res := apply(t, s, Request{Doc: "a.xml", Op: Delete, Target: "/site/people/person[2]"})
	if res.NodesRemoved != 6 || res.NodesAdded != 0 {
		t.Fatalf("res = %+v", res)
	}
	checkOracle(t, s, id)
	if got := len(s.Tag(id, "person")); got != 1 {
		t.Fatalf("person count = %d, want 1", got)
	}
	if got := len(s.Value(id, "Bob")); got != 0 {
		t.Fatalf("Bob still indexed after delete")
	}
}

func TestApplyDeleteAttribute(t *testing.T) {
	s, id := loadStore(t, "a.xml", auctionXML)
	apply(t, s, Request{Doc: "a.xml", Op: Delete, Target: "/site/people/person[1]/@id"})
	checkOracle(t, s, id)
	if got := len(s.Tag(id, "@id")); got != 2 {
		t.Fatalf("@id count = %d, want 2", got)
	}
}

func TestApplyDeleteCoalescesText(t *testing.T) {
	s, id := loadStore(t, "m.xml", `<doc><p>alpha<b>x</b>omega</p><p>solo</p></doc>`)
	res := apply(t, s, Request{Doc: "m.xml", Op: Delete, Target: "/doc/p[1]/b"})
	// The two text neighbours and the element go; one merged text returns.
	if res.NodesRemoved != 4 || res.NodesAdded != 1 {
		t.Fatalf("res = %+v, want 4 removed, 1 added", res)
	}
	checkOracle(t, s, id)
	if got := len(s.Value(id, "alphaomega")); got != 2 {
		t.Fatalf("Value(alphaomega) = %d refs, want 2 (element + merged text)", got)
	}
	d := s.Doc(id)
	if got := d.XML(0); got != `<doc><p>alphaomega</p><p>solo</p></doc>` {
		t.Fatalf("serialized = %s", got)
	}
}

func TestApplyReplace(t *testing.T) {
	s, id := loadStore(t, "a.xml", auctionXML)
	res := apply(t, s, Request{Doc: "a.xml", Op: Replace,
		Target: "/site/open_auctions/open_auction/bidder",
		Fragment: `<bidder><personref person="p1"/><increase>7</increase></bidder>`})
	if res.NodesRemoved != 5 || res.NodesAdded != 5 {
		t.Fatalf("res = %+v", res)
	}
	checkOracle(t, s, id)
	if got := len(s.Value(id, "7")); got != 2 {
		t.Fatalf("Value(7) = %d refs, want 2", got)
	}
	if got := len(s.Value(id, "3")); got != 0 {
		t.Fatalf("old increase value still indexed")
	}
}

func TestApplyOrdinalTarget(t *testing.T) {
	s, id := loadStore(t, "a.xml", auctionXML)
	d := s.Doc(id)
	bob, err := resolveTarget(d, "/site/people/person[2]")
	if err != nil {
		t.Fatalf("resolveTarget: %v", err)
	}
	apply(t, s, Request{Doc: "a.xml", Op: Delete, Target: "#" + itoa(bob)})
	checkOracle(t, s, id)
	if got := len(s.Tag(id, "person")); got != 1 {
		t.Fatalf("person count = %d, want 1", got)
	}
}

func itoa(v int32) string {
	b := [12]byte{}
	i := len(b)
	n := v
	for {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
		if n == 0 {
			break
		}
	}
	return string(b[i:])
}

func TestApplyErrors(t *testing.T) {
	s, _ := loadStore(t, "a.xml", auctionXML)
	cases := []struct {
		what string
		req  Request
		want error
	}{
		{"unknown doc", Request{Doc: "nope.xml", Op: Delete, Target: "/site"}, ErrUnknownDocument},
		{"delete root", Request{Doc: "a.xml", Op: Delete, Target: "/site"}, ErrBadTarget},
		{"replace root", Request{Doc: "a.xml", Op: Replace, Target: "/site", Fragment: `<x/>`}, ErrBadTarget},
		{"missing fragment", Request{Doc: "a.xml", Op: Insert, Target: "/site/people"}, ErrBadRequest},
		{"delete with fragment", Request{Doc: "a.xml", Op: Delete, Target: "/site/people/person[1]", Fragment: `<x/>`}, ErrBadRequest},
		{"bad position", Request{Doc: "a.xml", Op: Insert, Target: "/site/people", Position: "sideways", Fragment: `<x/>`}, ErrBadRequest},
		{"relative path", Request{Doc: "a.xml", Op: Delete, Target: "people/person[1]"}, ErrBadTarget},
		{"wrong root", Request{Doc: "a.xml", Op: Delete, Target: "/nosite/people"}, ErrBadTarget},
		{"missing child", Request{Doc: "a.xml", Op: Delete, Target: "/site/people/person[9]"}, ErrBadTarget},
		{"attr step not last", Request{Doc: "a.xml", Op: Delete, Target: "/site/people/@id/person"}, ErrBadTarget},
		{"ordinal out of range", Request{Doc: "a.xml", Op: Delete, Target: "#9999"}, ErrBadTarget},
		{"malformed index", Request{Doc: "a.xml", Op: Delete, Target: "/site/people/person[x]"}, ErrBadTarget},
		{"bad fragment xml", Request{Doc: "a.xml", Op: Insert, Target: "/site/people", Fragment: `<unclosed`}, ErrBadRequest},
		{"insert before root", Request{Doc: "a.xml", Op: Insert, Target: "/site", Position: PosBefore, Fragment: `<x/>`}, ErrBadTarget},
		{"insert into attribute", Request{Doc: "a.xml", Op: Insert, Target: "/site/people/person[1]/@id", Fragment: `<x/>`}, ErrBadTarget},
		{"replace attribute", Request{Doc: "a.xml", Op: Replace, Target: "/site/people/person[1]/@id", Fragment: `<x/>`}, ErrBadTarget},
	}
	for _, c := range cases {
		if _, err := Apply(context.Background(), s, c.req); !errors.Is(err, c.want) {
			t.Errorf("%s: err = %v, want %v", c.what, err, c.want)
		}
	}
	// Nothing committed.
	if v, _ := s.DocVersion("a.xml"); v != 1 {
		t.Fatalf("version = %d after rejected requests, want 1", v)
	}
	if s.InFlightWriters() != 0 {
		t.Fatalf("writer epoch leaked")
	}
}

func TestApplyGovernorBudget(t *testing.T) {
	s, _ := loadStore(t, "a.xml", auctionXML)
	g := governor.New(governor.Limits{MaxArenaNodes: 2})
	ctx := governor.WithContext(context.Background(), g)
	_, err := Apply(ctx, s, Request{Doc: "a.xml", Op: Insert, Target: "/site/people",
		Fragment: `<person id="pX"><name>Big</name><age>9</age></person>`})
	var be *governor.ErrBudgetExceeded
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if v, _ := s.DocVersion("a.xml"); v != 1 {
		t.Fatalf("budget-killed update committed anyway (version %d)", v)
	}
}

// TestApplyFaultInjected arms the mutate fault points and checks an
// injected failure aborts the update with the store unchanged.
func TestApplyFaultInjected(t *testing.T) {
	s, id := loadStore(t, "a.xml", auctionXML)
	before := Counters()

	for _, point := range []string{faultinject.PointMutateCommit, faultinject.PointMutateStatsDelta} {
		if err := faultinject.Enable(point + "=error"); err != nil {
			t.Fatalf("Enable(%s): %v", point, err)
		}
		_, err := Apply(context.Background(), s, Request{Doc: "a.xml", Op: Insert,
			Target: "/site/people", Fragment: `<person id="pF"><name>F</name></person>`})
		faultinject.Disable()
		if !errors.Is(err, faultinject.ErrInjected) {
			t.Fatalf("%s: err = %v, want ErrInjected", point, err)
		}
		if v, _ := s.DocVersion("a.xml"); v != 1 {
			t.Fatalf("%s: injected failure committed (version %d)", point, v)
		}
		if s.InFlightWriters() != 0 {
			t.Fatalf("%s: writer epoch leaked", point)
		}
	}
	if after := Counters(); after.Updates != before.Updates {
		t.Fatalf("failed updates counted as committed")
	}

	// The same request succeeds once injection is off.
	apply(t, s, Request{Doc: "a.xml", Op: Insert, Target: "/site/people",
		Fragment: `<person id="pF"><name>F</name></person>`})
	checkOracle(t, s, id)
	if after := Counters(); after.Updates != before.Updates+1 {
		t.Fatalf("committed update not counted")
	}
}

func TestParseKind(t *testing.T) {
	for s, want := range map[string]Kind{"insert": Insert, "delete": Delete, "replace": Replace} {
		k, err := ParseKind(s)
		if err != nil || k != want {
			t.Errorf("ParseKind(%s) = %v, %v", s, k, err)
		}
		if k.String() != s {
			t.Errorf("Kind.String() = %q, want %q", k.String(), s)
		}
	}
	if _, err := ParseKind("upsert"); !errors.Is(err, ErrBadRequest) {
		t.Errorf("ParseKind(upsert) err = %v", err)
	}
}
