// Package mutate is the MVCC update subsystem: it turns user-level
// subtree operations — insert, delete, replace — into the store's splice
// primitive, applies write budgets, retries optimistic-concurrency
// conflicts, and keeps the process-wide update counters the service and
// shell surface.
//
// Every update is one splice on one document: the target is resolved by a
// simple absolute path (`/site/people/person[2]`, attribute steps like
// `@id` last) or a raw preorder ordinal (`#17`) against the document
// version current at that attempt; the splice builds a whole new document
// version off to the side, and the commit swaps it in under the store's
// copy-on-write directory. Readers that pinned the store before the
// commit keep the old version to completion — an update never blocks a
// query, and a query never observes a half-applied update.
//
// Deleting an element that sits between two text siblings would leave
// adjacent text nodes — a shape a fresh parse of the serialized document
// could never produce. Apply therefore widens such a deletion to cover
// both neighbours and re-inserts one merged text node, keeping the
// parent's concatenated content (which the store's splice invariant
// demands) and the parse-shape canonical form at once.
package mutate

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"

	"tlc/internal/governor"
	"tlc/internal/store"
	"tlc/internal/xmltree"
)

// Typed request errors.
var (
	// ErrUnknownDocument reports an update naming a document the store
	// does not hold.
	ErrUnknownDocument = errors.New("mutate: unknown document")
	// ErrBadTarget reports a target path or ordinal that does not resolve
	// to a node the operation can apply to.
	ErrBadTarget = errors.New("mutate: bad target")
	// ErrBadRequest reports a structurally invalid request (unknown op,
	// missing or unparsable fragment, bad position).
	ErrBadRequest = errors.New("mutate: bad request")
)

// Kind is the update operation.
type Kind int

const (
	// Insert adds a fragment relative to the target node.
	Insert Kind = iota
	// Delete removes the target subtree (element or attribute).
	Delete
	// Replace swaps the target element subtree for the fragment.
	Replace
)

func (k Kind) String() string {
	switch k {
	case Insert:
		return "insert"
	case Delete:
		return "delete"
	case Replace:
		return "replace"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ParseKind maps the wire spelling of an operation to its Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "insert":
		return Insert, nil
	case "delete":
		return Delete, nil
	case "replace":
		return Replace, nil
	}
	return 0, fmt.Errorf("%w: unknown op %q (insert|delete|replace)", ErrBadRequest, s)
}

// Insert positions.
const (
	// PosInto appends the fragment as the target element's last child
	// (the default).
	PosInto = "into"
	// PosFirst inserts as the first non-attribute child.
	PosFirst = "first"
	// PosBefore inserts as the preceding sibling of the target.
	PosBefore = "before"
	// PosAfter inserts as the following sibling of the target.
	PosAfter = "after"
)

// Request is one update against one document.
type Request struct {
	// Doc names the target document.
	Doc string
	// Op is the operation.
	Op Kind
	// Target locates the node the operation applies to: an absolute path
	// of child steps with optional 1-based indexes and an optional final
	// attribute step (`/site/people/person[2]/@id`), or `#N` for the raw
	// preorder ordinal N.
	Target string
	// Position qualifies Insert: into (default), first, before, after.
	Position string
	// Fragment is the XML to insert (Insert and Replace); its root must
	// be an element.
	Fragment string
}

// wireRequest is the WAL (and HTTP) encoding of a Request: the logical
// operation, not the spliced columns, so replay exercises the same
// resolve/splice/commit path as live traffic.
type wireRequest struct {
	Doc      string `json:"doc"`
	Op       string `json:"op"`
	Target   string `json:"target"`
	Position string `json:"position,omitempty"`
	Fragment string `json:"fragment,omitempty"`
}

// EncodeRequest serializes a Request for the write-ahead log.
func EncodeRequest(req Request) ([]byte, error) {
	return json.Marshal(wireRequest{
		Doc:      req.Doc,
		Op:       req.Op.String(),
		Target:   req.Target,
		Position: req.Position,
		Fragment: req.Fragment,
	})
}

// DecodeRequest parses a WAL record payload back into the Request it was
// encoded from. Errors wrap ErrBadRequest: a payload that passed the
// log's CRC but does not decode is a version-skew or corruption bug, not
// a user error.
func DecodeRequest(data []byte) (Request, error) {
	var w wireRequest
	if err := json.Unmarshal(data, &w); err != nil {
		return Request{}, fmt.Errorf("%w: undecodable update record: %v", ErrBadRequest, err)
	}
	op, err := ParseKind(w.Op)
	if err != nil {
		return Request{}, err
	}
	return Request{Doc: w.Doc, Op: op, Target: w.Target, Position: w.Position, Fragment: w.Fragment}, nil
}

// Result summarizes an applied update.
type Result struct {
	// Doc and Version identify the document version the update produced.
	Doc     string
	Version uint64
	// Nodes is the node count of the new version.
	Nodes int
	// NodesAdded and NodesRemoved count the spliced range.
	NodesAdded, NodesRemoved int
	// StatsDeltas counts the ±1 adjustments applied to the statistics
	// catalog instead of a recomputation.
	StatsDeltas int
	// Conflicts counts commit attempts lost to concurrent writers before
	// this one won.
	Conflicts int
}

// maxRetries bounds optimistic-concurrency retries before the conflict is
// surfaced to the caller.
const maxRetries = 3

// Process-wide update counters (mirrored at /varz and in the shell).
var (
	updatesTotal     atomic.Int64
	updateConflicts  atomic.Int64
	statsDeltasTotal atomic.Int64
)

// Totals is a snapshot of the process-wide update counters.
type Totals struct {
	// Updates counts committed updates.
	Updates int64
	// Conflicts counts commit attempts lost to a concurrent writer
	// (including ones whose update later succeeded on retry).
	Conflicts int64
	// StatsDeltas counts individual incremental statistics adjustments
	// applied by committed updates.
	StatsDeltas int64
}

// Counters returns the process-wide update counters.
func Counters() Totals {
	return Totals{
		Updates:     updatesTotal.Load(),
		Conflicts:   updateConflicts.Load(),
		StatsDeltas: statsDeltasTotal.Load(),
	}
}

// Apply runs one update against the store. The write cost is charged to
// the governor carried by ctx (nodes written and an estimate of bytes),
// so update budgets use the same taxonomy as query budgets. On a commit
// conflict the target is re-resolved against the winning version and the
// splice retried a bounded number of times; the final conflict, if any,
// wraps store.ErrVersionConflict.
func Apply(ctx context.Context, st *store.Store, req Request) (Result, error) {
	var res Result
	if req.Op != Delete {
		if strings.TrimSpace(req.Fragment) == "" {
			return res, fmt.Errorf("%w: %s needs a fragment", ErrBadRequest, req.Op)
		}
	} else if req.Fragment != "" {
		return res, fmt.Errorf("%w: delete takes no fragment", ErrBadRequest)
	}
	var frag *xmltree.Document
	if req.Op != Delete {
		f, err := store.ParseFragment(req.Fragment)
		if err != nil {
			return res, fmt.Errorf("%w: fragment: %v", ErrBadRequest, err)
		}
		if f.Nodes[0].Kind != xmltree.Element {
			return res, fmt.Errorf("%w: fragment root must be an element", ErrBadRequest)
		}
		frag = f
	}
	switch req.Position {
	case "", PosInto, "append", PosFirst, PosBefore, PosAfter:
	default:
		return res, fmt.Errorf("%w: unknown position %q (into|first|before|after)", ErrBadRequest, req.Position)
	}

	// Serialize the logical operation once, outside the retry loop: the
	// WAL records what was asked, so every attempt logs identical bytes.
	var payload []byte
	if st.LogsCommits() {
		p, err := EncodeRequest(req)
		if err != nil {
			return res, fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
		payload = p
	}

	// The writer epoch makes the mutation visible to LoadSnapshot, which
	// refuses to rewrite the directory under an in-flight splice.
	release := st.BeginMutation()
	defer release()

	var lastErr error
	for attempt := 0; attempt < maxRetries; attempt++ {
		if err := governor.Poll(ctx); err != nil {
			return res, err
		}
		id, ok := st.Lookup(req.Doc)
		if !ok {
			return res, fmt.Errorf("%w: %q", ErrUnknownDocument, req.Doc)
		}
		d := st.Doc(id)
		op, err := buildOp(d, req, frag)
		if err != nil {
			return res, err
		}
		// Charge the write before doing it: new nodes plus an estimate of
		// the column bytes they occupy (8 int32/uint32 columns) and the
		// fragment text.
		var newNodes int64
		if op.Frag != nil {
			newNodes = int64(len(op.Frag.Nodes))
		}
		if err := governor.FromContext(ctx).AddAlloc(newNodes, newNodes*32+int64(len(req.Fragment))); err != nil {
			return res, err
		}
		nd, sr, err := st.BuildSplice(d, op)
		if err != nil {
			return res, err
		}
		if err := st.CommitLogged(d, nd, payload); err != nil {
			if errors.Is(err, store.ErrVersionConflict) {
				updateConflicts.Add(1)
				res.Conflicts++
				lastErr = err
				continue
			}
			return res, err
		}
		updatesTotal.Add(1)
		statsDeltasTotal.Add(int64(sr.StatsDeltas))
		res.Doc = req.Doc
		res.Version = nd.Version()
		res.Nodes = nd.Len()
		res.NodesAdded = sr.NodesAdded
		res.NodesRemoved = sr.NodesRemoved
		res.StatsDeltas = sr.StatsDeltas
		return res, nil
	}
	return res, lastErr
}

// buildOp resolves the request target against one document version and
// lowers the operation to a splice.
func buildOp(d *store.Doc, req Request, frag *xmltree.Document) (store.SpliceOp, error) {
	var op store.SpliceOp
	target, err := resolveTarget(d, req.Target)
	if err != nil {
		return op, err
	}
	switch req.Op {
	case Insert:
		return insertOp(d, target, req.Position, frag)
	case Delete:
		return deleteOp(d, target)
	case Replace:
		if target == d.Root() {
			return op, fmt.Errorf("%w: cannot replace the document root", ErrBadTarget)
		}
		if d.Kind(target) != xmltree.Element {
			return op, fmt.Errorf("%w: replace target %q is not an element", ErrBadTarget, req.Target)
		}
		return store.SpliceOp{Parent: d.Parent(target), At: target, DelEnd: d.End(target) + 1, Frag: frag}, nil
	}
	return op, fmt.Errorf("%w: unknown op %d", ErrBadRequest, int(req.Op))
}

func insertOp(d *store.Doc, target int32, pos string, frag *xmltree.Document) (store.SpliceOp, error) {
	var op store.SpliceOp
	switch pos {
	case "", PosInto, "append", PosFirst:
		if d.Kind(target) != xmltree.Element {
			return op, fmt.Errorf("%w: insert target is not an element", ErrBadTarget)
		}
		at := d.End(target) + 1
		if pos == PosFirst {
			// First position lands after the attribute run: attributes
			// always precede element and text children in parse order.
			for c := d.FirstChild(target); c >= 0 && c <= d.End(target); c = d.End(c) + 1 {
				if d.Kind(c) != xmltree.Attribute {
					at = c
					break
				}
			}
		}
		return store.SpliceOp{Parent: target, At: at, DelEnd: at, Frag: frag}, nil
	case PosBefore, PosAfter:
		if target == d.Root() {
			return op, fmt.Errorf("%w: cannot insert a sibling of the document root", ErrBadTarget)
		}
		if d.Kind(target) == xmltree.Attribute {
			return op, fmt.Errorf("%w: cannot insert relative to an attribute", ErrBadTarget)
		}
		at := target
		if pos == PosAfter {
			at = d.End(target) + 1
		}
		return store.SpliceOp{Parent: d.Parent(target), At: at, DelEnd: at, Frag: frag}, nil
	}
	return op, fmt.Errorf("%w: unknown position %q", ErrBadRequest, pos)
}

func deleteOp(d *store.Doc, target int32) (store.SpliceOp, error) {
	var op store.SpliceOp
	if target == d.Root() {
		return op, fmt.Errorf("%w: cannot delete the document root", ErrBadTarget)
	}
	if d.Kind(target) == xmltree.Text {
		return op, fmt.Errorf("%w: cannot delete a text node (replace the parent element)", ErrBadTarget)
	}
	p := d.Parent(target)
	at, delEnd := target, d.End(target)+1

	// Coalesce: removing an element between two text siblings must merge
	// them, exactly as re-parsing the serialized document would.
	if d.Kind(target) == xmltree.Element {
		var prev int32 = -1
		for c := d.FirstChild(p); c >= 0 && c <= d.End(p); c = d.End(c) + 1 {
			if c == target {
				break
			}
			prev = c
		}
		next := d.End(target) + 1
		if next > d.End(p) {
			next = -1
		}
		if prev >= 0 && next >= 0 &&
			d.Kind(prev) == xmltree.Text && d.Kind(next) == xmltree.Text {
			at, delEnd = prev, d.End(next)+1
			return store.SpliceOp{Parent: p, At: at, DelEnd: delEnd,
				Frag: store.TextFragment(d.Value(prev) + d.Value(next))}, nil
		}
	}
	return store.SpliceOp{Parent: p, At: at, DelEnd: delEnd}, nil
}

// resolveTarget locates a node by `#ordinal` or by absolute path. Path
// steps select children by tag with an optional 1-based index
// (`person[2]`); a final `@name` step selects an attribute. The leading
// step must name the document root.
func resolveTarget(d *store.Doc, target string) (int32, error) {
	t := strings.TrimSpace(target)
	if t == "" {
		return 0, fmt.Errorf("%w: empty target", ErrBadTarget)
	}
	if strings.HasPrefix(t, "#") {
		n, err := strconv.Atoi(t[1:])
		if err != nil || n < 0 || n >= d.Len() {
			return 0, fmt.Errorf("%w: ordinal %q out of range [0, %d)", ErrBadTarget, t, d.Len())
		}
		return int32(n), nil
	}
	if !strings.HasPrefix(t, "/") {
		return 0, fmt.Errorf("%w: path %q must be absolute or #ordinal", ErrBadTarget, target)
	}
	steps := strings.Split(t[1:], "/")
	cur := d.Root()
	for i, step := range steps {
		if step == "" {
			return 0, fmt.Errorf("%w: empty step in %q", ErrBadTarget, target)
		}
		name, k, err := parseStep(step)
		if err != nil {
			return 0, err
		}
		if strings.HasPrefix(name, "@") {
			if i != len(steps)-1 {
				return 0, fmt.Errorf("%w: attribute step %q must be last", ErrBadTarget, step)
			}
			a, ok := childByTag(d, cur, name, 1)
			if !ok {
				return 0, fmt.Errorf("%w: no attribute %q on %q", ErrBadTarget, name, d.Tag(cur))
			}
			return a, nil
		}
		if i == 0 {
			// The first step names the root element itself.
			if d.Tag(cur) != name || k != 1 {
				return 0, fmt.Errorf("%w: document root is %q, path starts at %q", ErrBadTarget, d.Tag(cur), step)
			}
			continue
		}
		c, ok := childByTag(d, cur, name, k)
		if !ok {
			return 0, fmt.Errorf("%w: no child %q under step %d of %q", ErrBadTarget, step, i, target)
		}
		cur = c
	}
	return cur, nil
}

// parseStep splits `name[k]` into its tag and 1-based index (default 1).
func parseStep(step string) (string, int, error) {
	name, k := step, 1
	if i := strings.IndexByte(step, '['); i >= 0 {
		if !strings.HasSuffix(step, "]") {
			return "", 0, fmt.Errorf("%w: malformed step %q", ErrBadTarget, step)
		}
		n, err := strconv.Atoi(step[i+1 : len(step)-1])
		if err != nil || n < 1 {
			return "", 0, fmt.Errorf("%w: bad index in step %q", ErrBadTarget, step)
		}
		name, k = step[:i], n
	}
	if name == "" {
		return "", 0, fmt.Errorf("%w: empty name in step %q", ErrBadTarget, step)
	}
	return name, k, nil
}

// childByTag returns the k-th (1-based) direct child of p with the given
// tag.
func childByTag(d *store.Doc, p int32, tag string, k int) (int32, bool) {
	for c := d.FirstChild(p); c >= 0 && c <= d.End(p); c = d.End(c) + 1 {
		if d.Tag(c) == tag {
			k--
			if k == 0 {
				return c, true
			}
		}
	}
	return 0, false
}
