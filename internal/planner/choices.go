package planner

import (
	"fmt"
	"sort"

	"tlc/internal/algebra"
	"tlc/internal/pattern"
)

// --- Pass 1: pattern-match edge ordering -----------------------------------
//
// The matcher evaluates a pattern node's edges left to right, and a "-"
// edge multiplies the partial witnesses — every later edge then pays per
// multiplied partial (Section 5.2 defers exactly this ordering to an
// optimizer). Edges are sorted by
//
//  1. selectivity class: predicated flat edges first (they prune parents
//     early and multiply least), then unpredicated flat edges, then nested
//     edges;
//  2. within a class, ascending estimated branch cardinality from the
//     catalog, across every document the pattern can read.
//
// Edge order only changes evaluation order and the order of matched kids,
// never the witness set, so correctness is unaffected.

func orderEdges(root algebra.Op, est *estimator) int {
	reordered := 0
	for _, op := range algebra.Ops(root) {
		sel, ok := op.(*algebra.Select)
		if !ok || sel.APT == nil || sel.APT.Root == nil {
			continue
		}
		docs := est.selectDocs(sel)
		for _, n := range sel.APT.Nodes() {
			if len(n.Edges) < 2 {
				continue
			}
			before := edgeOrderKey(n.Edges)
			sort.SliceStable(n.Edges, func(i, j int) bool {
				ci, cj := edgeClass(n.Edges[i]), edgeClass(n.Edges[j])
				if ci != cj {
					return ci < cj
				}
				// Keep OR-group members adjacent so the matcher's one-pass
				// group evaluation sees them as a unit.
				if gi, gj := n.Edges[i].Group, n.Edges[j].Group; gi != gj {
					return gi < gj
				}
				return est.branchCard(docs, n.Edges[i].To) < est.branchCard(docs, n.Edges[j].To)
			})
			if edgeOrderKey(n.Edges) != before {
				reordered++
			}
		}
	}
	return reordered
}

// edgeClass ranks edges: 0 = flat with a predicate somewhere in the
// branch, 1 = logical existence tests (OR groups, NOT anti-joins — they
// prune parents and never multiply partials), 2 = flat, 3 = nested.
func edgeClass(e pattern.Edge) int {
	if e.Logical() {
		return 1
	}
	if e.Spec.Nested() {
		return 3
	}
	if branchHasPredicate(e.To) {
		return 0
	}
	return 2
}

func branchHasPredicate(n *pattern.Node) bool {
	if n.Pred != nil {
		return true
	}
	for _, e := range n.Edges {
		if branchHasPredicate(e.To) {
			return true
		}
	}
	return false
}

func edgeOrderKey(edges []pattern.Edge) string {
	key := ""
	for _, e := range edges {
		if e.Not {
			key += "!"
		}
		if e.Group != 0 {
			key += fmt.Sprintf("g%d:", e.Group)
		}
		key += e.To.Tag + e.Spec.String() + "|"
	}
	return key
}

// --- Pass 2: predicate ordering in filter chains ---------------------------
//
// Consecutive per-tree filters (Filter, DisjFilter, FilterCompare) commute:
// each keeps an order-preserving subset of its input. Executing the most
// selective predicate first shrinks the sequence every later filter scans,
// so chains are reordered ascending by estimated selectivity bottom-up.
// Only chains whose interior links have a single consumer are touched — a
// filter feeding two consumers is a DAG interface that must keep its
// output.

func isFilterOp(op algebra.Op) bool {
	switch op.(type) {
	case *algebra.Filter, *algebra.DisjFilter, *algebra.FilterCompare:
		return true
	}
	return false
}

// filterOpSel is the estimated pass fraction of one filter operator.
func (e *estimator) filterOpSel(op algebra.Op) float64 {
	switch o := op.(type) {
	case *algebra.Filter:
		li := e.lcls[o.LCL]
		return e.predSel(li.docs, li.tag, &o.Pred)
	case *algebra.DisjFilter:
		fail := 1.0
		for i := range o.Branches {
			fail *= 1 - e.branchSel(&o.Branches[i])
		}
		return 1 - fail
	case *algebra.FilterCompare:
		return e.compareSel(o.LLCL, o.Op, o.RLCL)
	}
	return 1
}

func setFilterIn(op, in algebra.Op) {
	switch f := op.(type) {
	case *algebra.Filter:
		f.In = in
	case *algebra.DisjFilter:
		f.In = in
	case *algebra.FilterCompare:
		f.In = in
	}
}

func reorderFilterChains(root algebra.Op, est *estimator) (algebra.Op, int) {
	fanout := make(map[algebra.Op]int)
	parents := make(map[algebra.Op][]algebra.Op)
	ops := algebra.Ops(root)
	for _, o := range ops {
		for _, in := range o.Inputs() {
			fanout[in]++
			parents[in] = append(parents[in], o)
		}
	}

	changed := 0
	for _, top := range ops {
		if !isFilterOp(top) {
			continue
		}
		// Chain tops only: a filter with a filter consumer is interior.
		interior := false
		for _, p := range parents[top] {
			if isFilterOp(p) {
				interior = true
				break
			}
		}
		if interior {
			continue
		}
		// Walk down through single-consumer filter links.
		chain := []algebra.Op{top}
		cur := top
		for {
			in := cur.Inputs()[0]
			if !isFilterOp(in) || fanout[in] != 1 {
				break
			}
			chain = append(chain, in)
			cur = in
		}
		if len(chain) < 2 {
			continue
		}
		base := chain[len(chain)-1].Inputs()[0]

		// Desired order, top to bottom: descending selectivity, so the most
		// selective filter sits at the bottom and runs first.
		desired := append([]algebra.Op(nil), chain...)
		sort.SliceStable(desired, func(i, j int) bool {
			return est.filterOpSel(desired[i]) > est.filterOpSel(desired[j])
		})
		same := true
		for i := range chain {
			if chain[i] != desired[i] {
				same = false
				break
			}
		}
		if same {
			continue
		}
		changed++
		for i := 0; i < len(desired)-1; i++ {
			setFilterIn(desired[i], desired[i+1])
		}
		setFilterIn(desired[len(desired)-1], base)
		newTop := desired[0]
		if top == root {
			root = newTop
		}
		for _, p := range parents[top] {
			algebra.ReplaceInput(p, top, newTop)
		}
	}
	return root, changed
}

// reorderDisjBranches orders each DisjFilter's disjuncts by descending
// estimated pass probability: the OR short-circuits on the first holding
// branch, so likely branches first minimize the branches examined per
// tree. The tree set and output order are unchanged.
func reorderDisjBranches(root algebra.Op, est *estimator) int {
	changed := 0
	for _, op := range algebra.Ops(root) {
		d, ok := op.(*algebra.DisjFilter)
		if !ok || len(d.Branches) < 2 {
			continue
		}
		before := branchOrderKey(d.Branches)
		sort.SliceStable(d.Branches, func(i, j int) bool {
			return est.branchSel(&d.Branches[i]) > est.branchSel(&d.Branches[j])
		})
		if branchOrderKey(d.Branches) != before {
			changed++
		}
	}
	return changed
}

func branchOrderKey(branches []algebra.FilterBranch) string {
	key := ""
	for _, b := range branches {
		key += b.Mode.String() + b.Pred.String() + "|"
	}
	return key
}

// --- Pass 3: value-join algorithm selection --------------------------------
//
// Equality value joins have two physical algorithms (Section 5.1): the
// sort–merge–sort join — sort both sides by join value, merge, re-sort the
// output into sequence order — and the nested loop. In comparison units,
// the nested loop costs l·r; the merge join costs l + 2r (each side
// grouped once, the right side's groups also re-emitted) plus a constant
// setup for its group table. Tiny inputs therefore go nested-loop, real
// inputs merge. The ablation can pin the choice through
// Options.PinNestedLoop; non-equality predicates always run the loop (the
// merge join requires equality groups).

const smsSetupCost = 64

func chooseJoins(root algebra.Op, est *estimator, opts Options, info *Info) {
	for _, op := range algebra.Ops(root) {
		j, ok := op.(*algebra.Join)
		if !ok || j.Pred == nil || j.Pred.Op != pattern.EQ {
			continue
		}
		if opts.PinNestedLoop != nil {
			j.ForceNestedLoop = *opts.PinNestedLoop
		} else {
			ins := j.Inputs()
			l, r := est.estimate(ins[0]), est.estimate(ins[1])
			costNL := l * r
			costSMS := l + 2*r + smsSetupCost
			j.ForceNestedLoop = costNL < costSMS
		}
		if j.ForceNestedLoop {
			info.NestedLoopJoins++
		} else {
			info.MergeJoins++
		}
	}
}
