package planner

import (
	"math"
	"strings"
	"testing"

	"tlc/internal/algebra"
	"tlc/internal/pattern"
	"tlc/internal/store"
	"tlc/internal/translate"
	"tlc/internal/xquery"
)

const testAuction = `<site>
  <people>
    <person id="p0"><name>Alice</name><age>30</age></person>
    <person id="p1"><name>Bob</name><age>20</age></person>
    <person id="p2"><name>Carol</name><age>40</age></person>
  </people>
  <open_auctions>
    <open_auction id="a0">
      <bidder><personref person="p0"/><increase>3</increase></bidder>
      <bidder><personref person="p2"/><increase>4</increase></bidder>
      <bidder><personref person="p0"/><increase>5</increase></bidder>
      <quantity>2</quantity>
    </open_auction>
    <open_auction id="a1">
      <bidder><personref person="p2"/><increase>1</increase></bidder>
      <quantity>5</quantity>
    </open_auction>
    <open_auction id="a2"><quantity>1</quantity></open_auction>
  </open_auctions>
</site>`

func loadStore(t *testing.T) *store.Store {
	t.Helper()
	s := store.New()
	if _, err := s.LoadXML("auction.xml", strings.NewReader(testAuction)); err != nil {
		t.Fatal(err)
	}
	return s
}

func buildPlan(t *testing.T, q string) algebra.Op {
	t.Helper()
	ast, err := xquery.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	res, err := translate.Translate(ast)
	if err != nil {
		t.Fatal(err)
	}
	return res.Plan
}

// TestEstimatesFiniteAndPresent: after planning, every operator of the
// plan carries a finite, non-negative cardinality estimate.
func TestEstimatesFiniteAndPresent(t *testing.T) {
	s := loadStore(t)
	queries := []string{
		`FOR $p IN document("auction.xml")//person WHERE $p/age > 25 RETURN $p/name`,
		`FOR $o IN document("auction.xml")//open_auction RETURN <bids>{count($o/bidder)}</bids>`,
		`FOR $p IN document("auction.xml")//person
		 FOR $o IN document("auction.xml")//open_auction
		 WHERE $p/@id = $o/bidder//@person
		 RETURN <hit>{$p/name/text()}</hit>`,
	}
	for _, q := range queries {
		plan := buildPlan(t, q)
		plan, info := Plan(plan, s, Options{})
		for _, op := range algebra.Ops(plan) {
			e, ok := info.Estimate(op)
			if !ok {
				t.Errorf("no estimate for %q", strings.Split(op.Label(), "\n")[0])
				continue
			}
			if math.IsNaN(e) || math.IsInf(e, 0) || e < 0 {
				t.Errorf("estimate for %q = %v, want finite non-negative",
					strings.Split(op.Label(), "\n")[0], e)
			}
			if info.Annotate(op) == "" {
				t.Errorf("empty annotation for estimated op %q", strings.Split(op.Label(), "\n")[0])
			}
		}
	}
}

// TestSelectEstimateOrderOfMagnitude: the doc-rooted person select should
// estimate close to the three stored persons, not collapse to 0 or explode.
func TestSelectEstimateOrderOfMagnitude(t *testing.T) {
	s := loadStore(t)
	plan := buildPlan(t, `FOR $p IN document("auction.xml")//person RETURN $p/name`)
	plan, info := Plan(plan, s, Options{})
	root := plan
	e, ok := info.Estimate(root)
	if !ok {
		t.Fatal("no estimate for plan root")
	}
	if e < 1 || e > 9 {
		t.Errorf("root estimate = %g, want within [1, 9] (3 persons stored)", e)
	}
}

// TestJoinChoiceCosted: on a store this small, the nested loop beats the
// sort–merge–sort setup cost and the planner must pick it; the ablation pin
// overrides the cost model in both directions.
func TestJoinChoiceCosted(t *testing.T) {
	s := loadStore(t)
	q := `FOR $p IN document("auction.xml")//person
	      FOR $o IN document("auction.xml")//open_auction
	      WHERE $p/@id = $o/bidder//@person
	      RETURN <hit>{$p/name/text()}</hit>`

	joinsOf := func(root algebra.Op) []*algebra.Join {
		var out []*algebra.Join
		for _, op := range algebra.Ops(root) {
			if j, ok := op.(*algebra.Join); ok && j.Pred != nil {
				out = append(out, j)
			}
		}
		return out
	}

	plan := buildPlan(t, q)
	plan, info := Plan(plan, s, Options{})
	joins := joinsOf(plan)
	if len(joins) == 0 {
		t.Fatal("no value join in plan")
	}
	if info.NestedLoopJoins+info.MergeJoins != len(joins) {
		t.Errorf("join decisions %d+%d, want %d",
			info.NestedLoopJoins, info.MergeJoins, len(joins))
	}
	for _, j := range joins {
		if !j.ForceNestedLoop {
			t.Errorf("tiny join not costed to nested loop: %s", j.Label())
		}
	}

	for _, pin := range []bool{true, false} {
		pin := pin
		plan := buildPlan(t, q)
		plan, _ = Plan(plan, s, Options{PinNestedLoop: &pin})
		for _, j := range joinsOf(plan) {
			if j.ForceNestedLoop != pin {
				t.Errorf("PinNestedLoop=%v not honored: %s", pin, j.Label())
			}
		}
	}
}

// TestFilterChainReorder: a chain of two commuting filters must come out
// with the more selective one at the bottom (executed first), and the
// reordered plan must produce exactly the trees of the original.
func TestFilterChainReorder(t *testing.T) {
	s := loadStore(t)

	build := func() (algebra.Op, *algebra.Filter, *algebra.Filter) {
		apt := &pattern.Tree{Root: pattern.NewDocRoot(1, "auction.xml")}
		person := apt.Root.Add(pattern.NewTagNode(2, "person"), pattern.Descendant, pattern.One)
		person.Add(pattern.NewTagNode(3, "age"), pattern.Child, pattern.One)
		base := algebra.NewSelect(apt)
		// Bottom: NE (passes 2 of 3 distinct ages). Top: EQ (passes 1 of 3).
		weak := algebra.NewFilter(base, 3, pattern.Predicate{Op: pattern.NE, Value: "30"}, algebra.AtLeastOne)
		strong := algebra.NewFilter(weak, 3, pattern.Predicate{Op: pattern.EQ, Value: "20"}, algebra.AtLeastOne)
		return strong, strong, weak
	}

	before, _, _ := build()
	wantOut, err := algebra.Run(s, before)
	if err != nil {
		t.Fatal(err)
	}

	root, strong, weak := build()
	root, info := Plan(root, s, Options{})
	if info.FiltersReordered != 1 {
		t.Errorf("FiltersReordered = %d, want 1", info.FiltersReordered)
	}
	if root != weak {
		t.Errorf("plan root = %s, want the weak filter on top", root.Label())
	}
	if _, ok := strong.Inputs()[0].(*algebra.Select); !ok {
		t.Errorf("strong filter's input = %s, want the base select", strong.Inputs()[0].Label())
	}
	gotOut, err := algebra.Run(s, root)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotOut) != len(wantOut) {
		t.Fatalf("reordered chain returns %d trees, want %d", len(gotOut), len(wantOut))
	}
}

// TestDisjBranchReorder: disjuncts are tried most-likely-first so the OR
// short-circuits early; the branch set itself is unchanged.
func TestDisjBranchReorder(t *testing.T) {
	s := loadStore(t)
	apt := &pattern.Tree{Root: pattern.NewDocRoot(1, "auction.xml")}
	person := apt.Root.Add(pattern.NewTagNode(2, "person"), pattern.Descendant, pattern.One)
	person.Add(pattern.NewTagNode(3, "age"), pattern.Child, pattern.ZeroOrOne)
	base := algebra.NewSelect(apt)
	d := algebra.NewDisjFilter(base,
		algebra.FilterBranch{LCL: 3, Pred: pattern.Predicate{Op: pattern.EQ, Value: "20"}, Mode: algebra.AtLeastOne},
		algebra.FilterBranch{LCL: 3, Pred: pattern.Predicate{Op: pattern.NE, Value: "20"}, Mode: algebra.AtLeastOne},
	)
	root, info := Plan(d, s, Options{})
	if info.BranchesReordered != 1 {
		t.Errorf("BranchesReordered = %d, want 1", info.BranchesReordered)
	}
	dd := root.(*algebra.DisjFilter)
	if dd.Branches[0].Pred.Op != pattern.NE {
		t.Errorf("first branch = %s, want the likely NE disjunct", dd.Branches[0].Pred.String())
	}
	if len(dd.Branches) != 2 {
		t.Errorf("branch count changed: %d", len(dd.Branches))
	}
}

// TestFormatEst pins the deterministic estimate rendering golden plans
// depend on.
func TestFormatEst(t *testing.T) {
	for _, tc := range []struct {
		in   float64
		want string
	}{
		{0, "0"}, {3, "3"}, {2.5, "2.5"}, {99.94, "99.9"}, {100.2, "100"}, {12345, "12345"},
	} {
		if got := FormatEst(tc.in); got != tc.want {
			t.Errorf("FormatEst(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}
