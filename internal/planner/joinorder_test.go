package planner

import (
	"sort"
	"strings"
	"testing"

	"tlc/internal/algebra"
	"tlc/internal/pattern"
	"tlc/internal/seq"
	"tlc/internal/store"
)

// orderTestAuction is the edge-ordering fixture: open_auction a0 carries six
// bidders so the Q1 shape's count($o/bidder) > 5 predicate selects it.
const orderTestAuction = `<site>
  <people>
    <person id="p0"><name>Alice</name><age>30</age></person>
    <person id="p1"><name>Bob</name><age>20</age></person>
    <person id="p2"><name>Carol</name><age>40</age></person>
  </people>
  <open_auctions>
    <open_auction id="a0">
      <bidder><personref person="p0"/><increase>3</increase></bidder>
      <bidder><personref person="p2"/><increase>4</increase></bidder>
      <bidder><personref person="p0"/><increase>5</increase></bidder>
      <bidder><personref person="p2"/><increase>6</increase></bidder>
      <bidder><personref person="p0"/><increase>7</increase></bidder>
      <bidder><personref person="p2"/><increase>8</increase></bidder>
      <quantity>2</quantity>
    </open_auction>
    <open_auction id="a1">
      <bidder><personref person="p2"/><increase>1</increase></bidder>
      <quantity>5</quantity>
    </open_auction>
    <open_auction id="a2"><quantity>1</quantity></open_auction>
  </open_auctions>
</site>`

const orderQ1Text = `
FOR $p IN document("auction.xml")//person
FOR $o IN document("auction.xml")//open_auction
WHERE count($o/bidder) > 5 AND $p/age > 25
  AND $p/@id = $o/bidder//@person
RETURN
<person name={$p/name/text()}> $o/bidder </person>`

func loadOrderStore(t *testing.T) *store.Store {
	t.Helper()
	s := store.New()
	if _, err := s.LoadXML("auction.xml", strings.NewReader(orderTestAuction)); err != nil {
		t.Fatal(err)
	}
	return s
}

// canonical renders a result sequence in an order-insensitive form for
// equivalence checks (reordering may permute trees with equal roots).
func canonical(s *store.Store, out seq.Seq) []string {
	xs := make([]string, len(out))
	for i, w := range out {
		xs[i] = w.XML(s)
	}
	sort.Strings(xs)
	return xs
}

func runPlan(t *testing.T, s *store.Store, p algebra.Op) seq.Seq {
	t.Helper()
	out, err := algebra.Run(s, p)
	if err != nil {
		t.Fatalf("eval: %v\nplan:\n%s", err, algebra.Explain(p))
	}
	return out
}

// TestOrderEdgesPreservesResults reorders pattern edges by selectivity and
// checks result equality plus that a reorder actually happened on the Q1
// shape (flat join branch before the nested cluster).
func TestOrderEdgesPreservesResults(t *testing.T) {
	s := loadOrderStore(t)
	base := buildPlan(t, orderQ1Text)
	want := canonical(s, runPlan(t, s, base))

	ordered := buildPlan(t, orderQ1Text)
	if n := OrderEdges(ordered, s); n == 0 {
		t.Fatalf("no edges reordered:\n%s", algebra.Explain(ordered))
	}
	got := canonical(s, runPlan(t, s, ordered))
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("edge ordering changed results.\nwant:\n%s\ngot:\n%s",
			strings.Join(want, "\n"), strings.Join(got, "\n"))
	}
}

// TestOrderEdgesPredicatesFirst checks the selectivity classes: a
// predicated flat branch sorts before an unpredicated one, nested last.
func TestOrderEdgesPredicatesFirst(t *testing.T) {
	s := loadOrderStore(t)
	q := `FOR $o IN document("auction.xml")//open_auction
		LET $b := $o/bidder
		WHERE $o/quantity > 1 AND count($b) > 0
		RETURN $o/@id`
	plan := buildPlan(t, q)
	OrderEdges(plan, s)
	for _, op := range algebra.Ops(plan) {
		sel, ok := op.(*algebra.Select)
		if !ok || sel.APT == nil || sel.APT.Root == nil {
			continue
		}
		for _, n := range sel.APT.Nodes() {
			lastClass := -1
			for _, e := range n.Edges {
				c := edgeClass(e)
				if c < lastClass {
					t.Errorf("edges out of class order:\n%s", algebra.Explain(plan))
				}
				lastClass = c
			}
		}
	}
}

// TestOrderEdgesMultiDoc is the regression test for multi-document edge
// ordering. The original rewrite-layer heuristic pinned its cardinality
// estimates to a single statically-known document and silently degraded to
// class-only ordering when the pattern root was not a doc-root test — on
// multi-doc stores, same-class edges then kept query order. The planner
// implementation estimates across every document the pattern can read: a
// class-anchored pattern with unknown provenance orders by the summed tag
// counts, while a doc-rooted pattern still uses only its own document.
func TestOrderEdgesMultiDoc(t *testing.T) {
	s := store.New()
	if _, err := s.LoadXML("one.xml", strings.NewReader(
		`<r><common/><common/><common/><common/><common/><rare/><x/><y/><y/><y/><y/><y/></r>`)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadXML("two.xml", strings.NewReader(
		`<r><common/><common/><common/><common/><common/><common/><rare/><rare/><x/><x/><x/><x/><x/><x/><x/><x/><y/></r>`)); err != nil {
		t.Fatal(err)
	}

	// A class-anchored pattern (no statically-known document): the summed
	// counts are common=11 vs rare=3, so rare must move first. The old
	// heuristic left this in query order.
	anchored := &pattern.Tree{Root: pattern.NewLCAnchor(10, 1)}
	anchored.Root.Add(pattern.NewTagNode(11, "common"), pattern.Descendant, pattern.One)
	anchored.Root.Add(pattern.NewTagNode(12, "rare"), pattern.Descendant, pattern.One)
	base := algebra.NewSelect(&pattern.Tree{Root: pattern.NewDocRoot(1, "one.xml")})
	plan := algebra.NewExtendSelect(base, anchored)
	if n := OrderEdges(plan, s); n == 0 {
		t.Fatalf("no edges reordered on the multi-doc store:\n%s", algebra.Explain(plan))
	}
	if got := anchored.Root.Edges[0].To.Tag; got != "rare" {
		t.Errorf("first edge = %q, want rare (summed across documents)", got)
	}

	// A doc-rooted pattern pins to its own document: in one.xml, x=1 < y=5,
	// so x stays first even though the cross-document totals (x=9 > y=6)
	// would flip the order.
	rooted := &pattern.Tree{Root: pattern.NewDocRoot(1, "one.xml")}
	rooted.Root.Add(pattern.NewTagNode(2, "x"), pattern.Descendant, pattern.One)
	rooted.Root.Add(pattern.NewTagNode(3, "y"), pattern.Descendant, pattern.One)
	rootedPlan := algebra.NewSelect(rooted)
	OrderEdges(rootedPlan, s)
	if got := rooted.Root.Edges[0].To.Tag; got != "x" {
		t.Errorf("first edge = %q, want x (doc-rooted patterns use their own document)", got)
	}
}
