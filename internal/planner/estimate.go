package planner

import (
	"math"

	"tlc/internal/algebra"
	"tlc/internal/pattern"
	"tlc/internal/store"
)

// estMax caps estimates so products of large inputs stay finite and
// comparable; estimates are ordinal quantities, not predictions.
const estMax = 1e15

func clamp(v float64) float64 {
	if math.IsNaN(v) || v < 0 {
		return 0
	}
	if v > estMax {
		return estMax
	}
	return v
}

// lclInfo is what the estimator knows about one logical class: the tag of
// the nodes it binds and the documents those nodes can come from (nil =
// any loaded document, the conservative scope).
type lclInfo struct {
	tag  string
	docs []store.DocID
}

// estimator computes bottom-up output-cardinality estimates for the
// operators of one plan, from the statistics catalog.
type estimator struct {
	st   *store.Store
	cat  store.Catalog
	lcls map[int]lclInfo
	memo map[algebra.Op]float64
}

func newEstimator(st *store.Store, root algebra.Op) *estimator {
	e := &estimator{
		st:   st,
		cat:  st.Catalog(),
		lcls: make(map[int]lclInfo),
		memo: make(map[algebra.Op]float64),
	}
	// Collect class → (tag, doc scope) from the Selects, inputs before
	// consumers so extension anchors see their producer's classes.
	seen := make(map[algebra.Op]bool)
	var walk func(op algebra.Op)
	walk = func(op algebra.Op) {
		if seen[op] {
			return
		}
		seen[op] = true
		for _, in := range op.Inputs() {
			walk(in)
		}
		switch o := op.(type) {
		case *algebra.Select:
			if o.APT == nil || o.APT.Root == nil {
				return
			}
			docs := e.selectDocs(o)
			for _, n := range o.APT.Nodes() {
				if n.LCL <= 0 {
					continue
				}
				e.lcls[n.LCL] = lclInfo{tag: e.tagOfNode(docs, n), docs: docs}
			}
		case *algebra.Join:
			if o.RootLCL > 0 {
				e.lcls[o.RootLCL] = lclInfo{} // synthetic root, no stats
			}
		}
	}
	walk(root)
	return e
}

// selectDocs resolves the document scope a Select's pattern reads: the
// named document for a doc-rooted pattern, the anchor class's scope for an
// extension pattern, and all documents otherwise.
func (e *estimator) selectDocs(sel *algebra.Select) []store.DocID {
	root := sel.APT.Root
	switch root.Kind {
	case pattern.TestDocRoot:
		if id, ok := e.st.Lookup(root.Doc); ok {
			return []store.DocID{id}
		}
	case pattern.TestLC:
		return e.lcls[root.InClass].docs
	}
	return nil
}

// tagOfNode resolves a pattern node to the tag its matches carry, "" when
// statically unknown.
func (e *estimator) tagOfNode(docs []store.DocID, n *pattern.Node) string {
	switch n.Kind {
	case pattern.TestTag:
		return n.Tag
	case pattern.TestDocRoot:
		if id, ok := e.st.Lookup(n.Doc); ok {
			return e.cat.RootTag(id)
		}
	case pattern.TestLC:
		return e.lcls[n.InClass].tag
	}
	return ""
}

// candCount is the raw candidate count of a pattern node in scope.
func (e *estimator) candCount(docs []store.DocID, n *pattern.Node) float64 {
	switch n.Kind {
	case pattern.TestTag:
		return float64(e.cat.TagCount(docs, n.Tag))
	case pattern.TestDocRoot:
		return 1
	case pattern.TestWildcard:
		return float64(e.cat.NodeCount(docs))
	default:
		return 1
	}
}

// predSel estimates the fraction of tag-carrying nodes passing pred, from
// the distinct-value count: an equality hits 1 value in D, an inequality
// misses 1 in D, ranges default to the classic 1/3.
func (e *estimator) predSel(docs []store.DocID, tag string, pred *pattern.Predicate) float64 {
	if pred == nil {
		return 1
	}
	d := 0
	if tag != "" {
		d = e.cat.DistinctValues(docs, tag)
	}
	switch pred.Op {
	case pattern.EQ:
		if d > 0 {
			return 1 / float64(d)
		}
		return 0.1
	case pattern.NE:
		if d > 0 {
			return 1 - 1/float64(d)
		}
		return 0.9
	default:
		return 1.0 / 3
	}
}

// structExp is the expected number of raw edge.To matches per match of the
// parent node: exact pair-count averages when both tags are known, a
// uniform spread of the child candidates over the parent candidates
// otherwise.
func (e *estimator) structExp(docs []store.DocID, parentTag string, parentCand float64, edge pattern.Edge) float64 {
	childTag := e.tagOfNode(docs, edge.To)
	if parentTag != "" && childTag != "" {
		if edge.Axis == pattern.Child {
			return e.cat.ChildPerParent(docs, parentTag, childTag)
		}
		return e.cat.DescPerAncestor(docs, parentTag, childTag)
	}
	if parentCand < 1 {
		parentCand = 1
	}
	return e.candCount(docs, edge.To) / parentCand
}

// expTo is the expected number of surviving edge.To matches per parent
// match: the structural expectation thinned by the child's own predicate
// and required-subtree constraints.
func (e *estimator) expTo(docs []store.DocID, parentTag string, parentCand float64, edge pattern.Edge) float64 {
	return e.structExp(docs, parentTag, parentCand, edge) * e.survive(docs, edge.To)
}

// survive is the probability that a candidate match of n satisfies its
// content predicate and its non-optional subtree constraints.
func (e *estimator) survive(docs []store.DocID, n *pattern.Node) float64 {
	p := e.predSel(docs, e.tagOfNode(docs, n), n.Pred)
	tag := e.tagOfNode(docs, n)
	cand := e.candCount(docs, n)
	// OR groups combine disjunctively: the group fails only when every
	// member fails, so its pass probability is 1 − Π(1 − s_member), with a
	// NOT member's satisfaction being the complement of its subtree's
	// existence probability.
	var groupFail map[int]float64
	for _, edge := range n.Edges {
		switch {
		case edge.Group > 0:
			s := math.Min(1, e.expTo(docs, tag, cand, edge))
			if edge.Not {
				s = 1 - s
			}
			if groupFail == nil {
				groupFail = make(map[int]float64)
			}
			if f, ok := groupFail[edge.Group]; ok {
				groupFail[edge.Group] = f * (1 - s)
			} else {
				groupFail[edge.Group] = 1 - s
			}
		case edge.Not:
			// Standalone anti-join: pass iff the subtree has no match.
			p *= math.Max(0, 1-math.Min(1, e.expTo(docs, tag, cand, edge)))
		case edge.Spec.Optional():
			continue
		default:
			p *= math.Min(1, e.expTo(docs, tag, cand, edge))
		}
	}
	for _, fail := range groupFail {
		p *= 1 - fail
	}
	return p
}

// wit is the expected number of witness trees per surviving match of n:
// nested edges cluster into one witness; flat edges multiply by the
// (conditional, hence at least 1) expected child count.
func (e *estimator) wit(docs []store.DocID, n *pattern.Node) float64 {
	w := 1.0
	tag := e.tagOfNode(docs, n)
	cand := e.candCount(docs, n)
	for _, edge := range n.Edges {
		if edge.Spec.Nested() || edge.Logical() {
			continue
		}
		w *= math.Max(1, e.expTo(docs, tag, cand, edge)*e.wit(docs, edge.To))
	}
	return clamp(w)
}

// branchCard is the edge-ordering cost key: a conjunctive branch cannot
// match more often than its rarest tag, summed over the pattern's document
// scope (the multi-document fix over the former per-doc heuristic).
func (e *estimator) branchCard(docs []store.DocID, n *pattern.Node) float64 {
	min := math.Inf(1)
	var walkNode func(p *pattern.Node)
	walkNode = func(p *pattern.Node) {
		if p.Kind == pattern.TestTag {
			if c := float64(e.cat.TagCount(docs, p.Tag)); c < min {
				min = c
			}
		}
		for _, edge := range p.Edges {
			// Logical branches are not conjunctive requirements (a NOT or a
			// lone disjunct does not bound the match count), so their tags
			// cannot cap the branch cardinality.
			if edge.Logical() {
				continue
			}
			walkNode(edge.To)
		}
	}
	walkNode(n)
	if math.IsInf(min, 1) {
		return estMax
	}
	return min
}

// estimate returns the estimated output cardinality of op, memoized.
func (e *estimator) estimate(op algebra.Op) float64 {
	if v, ok := e.memo[op]; ok {
		return v
	}
	// Seed the memo to break cycles defensively (plans are DAGs).
	e.memo[op] = 0
	v := clamp(e.compute(op))
	e.memo[op] = v
	return v
}

func (e *estimator) compute(op algebra.Op) float64 {
	ins := op.Inputs()
	in := make([]float64, len(ins))
	for i := range ins {
		in[i] = e.estimate(ins[i])
	}

	switch o := op.(type) {
	case *algebra.Select:
		if o.APT == nil || o.APT.Root == nil {
			return 0
		}
		docs := e.selectDocs(o)
		perAnchor := e.survive(docs, o.APT.Root) * e.wit(docs, o.APT.Root)
		if o.APT.Root.Kind == pattern.TestLC {
			// Extension select: one anchor per input tree.
			return in[0] * perAnchor
		}
		return e.candCount(docs, o.APT.Root) * perAnchor

	case *algebra.Filter:
		li := e.lcls[o.LCL]
		return in[0] * e.predSel(li.docs, li.tag, &o.Pred)

	case *algebra.DisjFilter:
		fail := 1.0
		for i := range o.Branches {
			fail *= 1 - e.branchSel(&o.Branches[i])
		}
		return in[0] * (1 - fail)

	case *algebra.FilterCompare:
		return in[0] * e.compareSel(o.LLCL, o.Op, o.RLCL)

	case *algebra.Join:
		if o.Pred == nil {
			if o.RightSpec.Nested() {
				return in[0] // nest-all: one output per left tree
			}
			return in[0] * in[1]
		}
		p := e.compareSel(o.Pred.LeftLCL, o.Pred.Op, o.Pred.RightLCL)
		switch {
		case o.RightSpec.Nested():
			if o.RightSpec.Optional() {
				return in[0] // "*": every left kept, matches clustered
			}
			return in[0] * math.Min(1, in[1]*p) // "+": left filtered
		case o.RightSpec.Optional():
			return in[0] * math.Max(1, in[1]*p) // "?": left kept or multiplied
		default:
			return in[0] * in[1] * p // "-": pair enumeration
		}

	case *algebra.Union:
		sum := 0.0
		for _, v := range in {
			sum += v
		}
		return sum

	case *algebra.DupElim:
		limit := 1.0
		for _, lcl := range o.On {
			li := e.lcls[lcl]
			if li.tag == "" {
				return in[0]
			}
			var k int
			if o.ByContent {
				k = e.cat.DistinctValues(li.docs, li.tag)
			} else {
				k = e.cat.TagCount(li.docs, li.tag)
			}
			if k <= 0 {
				return in[0]
			}
			limit *= float64(k)
		}
		return math.Min(in[0], limit)

	case *algebra.Flatten:
		return in[0] * math.Max(1, e.memberExp(o.PLCL, o.CLCL))

	case *algebra.Shadow:
		return in[0] * math.Max(1, e.memberExp(o.PLCL, o.CLCL))

	case *algebra.GroupByOp:
		li := e.lcls[o.BasisLCL]
		if li.tag != "" {
			if k := e.cat.TagCount(li.docs, li.tag); k > 0 {
				return math.Min(in[0], float64(k))
			}
		}
		return in[0]

	case *algebra.MergeOp:
		return math.Min(in[0], in[1])

	case *algebra.IdentityJoinOp:
		return math.Min(in[0], in[1])

	case *algebra.StructuralJoinOp:
		return in[0]
	}

	// Per-tree operators (Project, Sort, SortDocOrder, Aggregate,
	// Construct, Materialize, Illuminate) and anything unknown: cardinality
	// passes through; multi-input unknowns report their widest input.
	switch len(in) {
	case 0:
		return 1
	case 1:
		return in[0]
	default:
		max := in[0]
		for _, v := range in[1:] {
			if v > max {
				max = v
			}
		}
		return max
	}
}

// branchSel is the pass probability of one DisjFilter disjunct.
func (e *estimator) branchSel(b *algebra.FilterBranch) float64 {
	li := e.lcls[b.LCL]
	return e.predSel(li.docs, li.tag, &b.Pred)
}

// compareSel estimates a class-to-class comparison: equality hits 1 value
// in the larger distinct count, other comparisons default to 1/3.
func (e *estimator) compareSel(llcl int, op pattern.Cmp, rlcl int) float64 {
	if op != pattern.EQ && op != pattern.NE {
		return 1.0 / 3
	}
	l, r := e.lcls[llcl], e.lcls[rlcl]
	d := 0
	if l.tag != "" {
		d = e.cat.DistinctValues(l.docs, l.tag)
	}
	if r.tag != "" {
		if rd := e.cat.DistinctValues(r.docs, r.tag); rd > d {
			d = rd
		}
	}
	eq := 0.05
	if d > 0 {
		eq = 1 / float64(d)
	}
	if op == pattern.NE {
		return 1 - eq
	}
	return eq
}

// memberExp estimates the member count of a clustered class per tree, for
// Flatten/Shadow fan-out.
func (e *estimator) memberExp(plcl, clcl int) float64 {
	p, c := e.lcls[plcl], e.lcls[clcl]
	if p.tag == "" || c.tag == "" {
		return 2
	}
	return e.cat.DescPerAncestor(p.docs, p.tag, c.tag)
}
