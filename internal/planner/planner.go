// Package planner is the cost-based optimizer layer: it separates what a
// plan computes (the algebra DAG the translators emit) from how it is
// executed. Section 5.2 of the paper defers structural-join ordering "to
// an optimizer"; this package is that optimizer, centralizing every
// physical decision the codebase previously made ad hoc:
//
//   - pattern-match edge ordering for all engines (previously
//     rewrite.OrderEdges, applied only to TLCOpt);
//   - equality value-join algorithm selection, sort–merge–sort vs
//     nested-loop (previously the hardcoded JoinSpec.ForceNestedLoop
//     ablation flag);
//   - predicate ordering in Filter/DisjFilter chains (previously query
//     order).
//
// Decisions are driven by bottom-up cardinality estimation over the
// operator DAG, fed by the load-time statistics catalog (store.Catalog).
// Every planned operator carries an estimated output cardinality, exposed
// through Info so EXPLAIN can print est=N per node and PROFILE can report
// estimated vs actual with a Q-error column.
package planner

import (
	"fmt"

	"tlc/internal/algebra"
	"tlc/internal/pattern"
	"tlc/internal/store"
)

// Options configures a planning pass.
type Options struct {
	// PinNestedLoop, when non-nil, pins the algorithm of every equality
	// value join instead of costing it: true forces nested-loop, false
	// forces sort–merge–sort. Used by the ablation benchmarks; normal
	// planning leaves it nil.
	PinNestedLoop *bool
}

// Info reports what the planner did and what it expects, keyed by operator
// identity so EXPLAIN/PROFILE can annotate the plan they already render.
type Info struct {
	est map[algebra.Op]float64

	// EdgesReordered counts pattern nodes whose edge order changed.
	EdgesReordered int
	// FiltersReordered counts filter chains whose operator order changed.
	FiltersReordered int
	// BranchesReordered counts DisjFilters whose branch order changed.
	BranchesReordered int
	// NestedLoopJoins and MergeJoins count the costed algorithm choices.
	NestedLoopJoins int
	MergeJoins      int
	// ShardScan is, per store shard, the summed estimated cardinality of
	// the plan's document-rooted pattern selects resolving on that shard —
	// the planner's view of how the scatter–gather leaf work spreads across
	// shards. The per-shard figures come from the same catalog partials
	// (Catalog.TagCountByShard) whose sum drives every TagCount-based
	// estimate, so the costing total and the shard breakdown always agree.
	ShardScan map[int]float64
	// DocVersions records the MVCC version of every document the plan's
	// pattern selects resolved against at planning time. The estimates
	// above were read from those versions' statistics catalogs, so a plan
	// cache can revalidate per document: a committed update bumps the
	// mutated document's version (and only that), marking exactly the
	// plans whose costing inputs moved.
	DocVersions map[string]uint64
}

// Estimate returns the estimated output cardinality of op, if planned.
func (i *Info) Estimate(op algebra.Op) (float64, bool) {
	if i == nil {
		return 0, false
	}
	e, ok := i.est[op]
	return e, ok
}

// Annotate renders the per-operator estimate annotation for EXPLAIN
// ("est=N"), or "" for operators the planner did not estimate.
func (i *Info) Annotate(op algebra.Op) string {
	e, ok := i.Estimate(op)
	if !ok {
		return ""
	}
	return "est=" + FormatEst(e)
}

// FormatEst renders a cardinality estimate compactly and deterministically:
// integral or large values without decimals, small fractional ones with a
// single decimal.
func FormatEst(e float64) string {
	if e >= 100 || e == float64(int64(e)) {
		return fmt.Sprintf("%.0f", e)
	}
	return fmt.Sprintf("%.1f", e)
}

// Summary renders the decision counters in one line.
func (i *Info) Summary() string {
	return fmt.Sprintf("edges reordered=%d, filter chains reordered=%d, disjunct branches reordered=%d, value joins: %d merge / %d nested-loop",
		i.EdgesReordered, i.FiltersReordered, i.BranchesReordered, i.MergeJoins, i.NestedLoopJoins)
}

// Plan runs the physical planning passes over the plan rooted at root and
// returns the (possibly re-rooted) plan together with the planning record.
// The passes, in order:
//
//  1. pattern-match edge ordering (cheapest branch first, per node);
//  2. filter-chain reordering (most selective predicate evaluated first)
//     and DisjFilter branch ordering (most likely disjunct tested first);
//  3. equality value-join algorithm selection by cost;
//  4. a final bottom-up estimation pass recording est(op) for every
//     operator of the finished plan.
//
// Plan mutates operators in place (edge slices, filter links, join flags);
// it must run before the plan is first evaluated.
func Plan(root algebra.Op, st *store.Store, opts Options) (algebra.Op, *Info) {
	info := &Info{est: make(map[algebra.Op]float64)}
	est := newEstimator(st, root)

	info.EdgesReordered = orderEdges(root, est)
	root, info.FiltersReordered = reorderFilterChains(root, est)
	info.BranchesReordered = reorderDisjBranches(root, est)

	// Join algorithm choice needs input cardinalities of the final shape.
	est = newEstimator(st, root)
	chooseJoins(root, est, opts, info)

	for _, op := range algebra.Ops(root) {
		info.est[op] = est.estimate(op)
		if sel, ok := op.(*algebra.Select); ok && sel.APT != nil && sel.APT.Root != nil && sel.APT.Root.Kind == pattern.TestDocRoot {
			if id, loaded := st.Lookup(sel.APT.Root.Doc); loaded {
				if info.ShardScan == nil {
					info.ShardScan = make(map[int]float64)
				}
				info.ShardScan[st.ShardOf(id)] += info.est[op]
				if info.DocVersions == nil {
					info.DocVersions = make(map[string]uint64)
				}
				info.DocVersions[sel.APT.Root.Doc] = st.Doc(id).Version()
			}
		}
	}
	return root, info
}

// OrderEdges applies only the edge-ordering pass — the multi-document-aware
// replacement for the rewrite layer's former single-document heuristic,
// exported for the ordering ablation. It returns the number of pattern
// nodes whose edge order changed.
func OrderEdges(root algebra.Op, st *store.Store) int {
	return orderEdges(root, newEstimator(st, root))
}
