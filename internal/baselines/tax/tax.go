// Package tax builds TAX-style evaluation plans (Jagadish et al., DBPL
// 2001; Section 6.1 of the TLC paper). TAX has every disadvantage GTP has
// — flat matches plus the grouping procedure in place of annotated edges —
// and three of its own, all reproduced here:
//
//  1. no pattern tree reuse: every RETURN-clause path triggers a fresh
//     pattern match against the document, re-selecting nodes that were
//     already bound (the "Redundant Accesses" of Section 1.2);
//  2. early materialization: the complete subtree of every bound variable
//     is copied into the intermediate result right after selection, and
//     dragged through all subsequent joins and groupings;
//  3. a join at the end: the re-matched RETURN paths are stitched back
//     onto the bound variables with an identity join.
package tax

import (
	"tlc/internal/algebra"
	"tlc/internal/baselines/gtp"
	"tlc/internal/pattern"
	"tlc/internal/translate"
	"tlc/internal/xquery"
)

// Translate compiles the query with the TLC translator and reshapes the
// plan into TAX style.
func Translate(f *xquery.FLWOR) (*translate.Result, error) {
	res, err := translate.Translate(f)
	if err != nil {
		return nil, err
	}
	res.Plan = Transform(res.Plan, res)
	return res, nil
}

// Transform reshapes a TLC plan into a TAX-style plan. It first applies
// the GTP transformation (flat matches + grouping), then removes pattern
// reuse (fresh document selects + identity joins for extension matches)
// and inserts early materialization of the bound variables.
func Transform(root algebra.Op, res *translate.Result) algebra.Op {
	root = gtp.Transform(root)
	root = breakReuse(root, res)
	root = materializeEarly(root, res)
	return root
}

// breakReuse replaces every extension Select anchored at a stored class
// with a fresh document-rooted Select (re-matching the anchor tag from the
// root, "//") plus an identity join that reconciles the re-matched anchor
// with the bound one. Extension selects over constructed classes stay:
// constructed nodes do not exist in the document.
func breakReuse(root algebra.Op, res *translate.Result) algebra.Op {
	if len(res.DocNames) == 0 {
		return root
	}
	doc := res.DocNames[0]
	fresh := maxLabel(res.TagOf)
	for {
		changed := false
		for _, op := range algebra.Ops(root) {
			es, ok := op.(*algebra.Select)
			if !ok || es.APT == nil || es.APT.Root == nil || es.APT.Root.Kind != pattern.TestLC {
				continue
			}
			anchorClass := es.APT.Root.InClass
			tag, known := res.TagOf[anchorClass]
			if !known || tag == "doc_root" || len(es.APT.Root.Edges) == 0 {
				continue
			}
			if definedByConstruct(root, anchorClass) {
				continue
			}
			fresh++
			freshLbl := fresh
			res.TagOf[freshLbl] = tag
			docRoot := pattern.NewDocRoot(0, doc)
			anchor := pattern.NewTagNode(freshLbl, tag)
			anchor.Edges = es.APT.Root.Edges
			docRoot.Add(anchor, pattern.Descendant, pattern.One)
			freshSel := algebra.NewSelect(&pattern.Tree{Root: docRoot})

			join := algebra.NewIdentityJoin(es.Inputs()[0], freshSel, anchorClass, freshLbl)
			root = replaceOp(root, es, join)
			changed = true
			break
		}
		if !changed {
			return root
		}
	}
}

// materializeEarly inserts a Materialize of the bound-variable classes
// directly above every document Select that defines one.
func materializeEarly(root algebra.Op, res *translate.Result) algebra.Op {
	vars := make(map[int]bool, len(res.VarLCLs))
	for _, lcl := range res.VarLCLs {
		vars[lcl] = true
	}
	for _, op := range algebra.Ops(root) {
		sel, ok := op.(*algebra.Select)
		if !ok || sel.APT == nil || sel.APT.Root == nil || sel.APT.Root.Kind != pattern.TestDocRoot {
			continue
		}
		var classes []int
		for _, n := range sel.APT.Nodes() {
			if n.LCL > 0 && vars[n.LCL] {
				classes = append(classes, n.LCL)
			}
		}
		if len(classes) == 0 {
			continue
		}
		root = replaceOp(root, sel, algebra.NewMaterialize(sel, classes...))
	}
	return root
}

// replaceOp swaps oldOp for newOp in every consumer (or re-roots the plan).
func replaceOp(root, oldOp, newOp algebra.Op) algebra.Op {
	if root == oldOp {
		return newOp
	}
	for _, op := range algebra.Ops(root) {
		if op == newOp {
			continue
		}
		algebra.ReplaceInput(op, oldOp, newOp)
	}
	return root
}

// definedByConstruct reports whether some Construct in the plan labels its
// output with lcl (so the class holds constructed nodes, not stored ones).
func definedByConstruct(root algebra.Op, lcl int) bool {
	for _, op := range algebra.Ops(root) {
		c, ok := op.(*algebra.Construct)
		if !ok || c.Pattern == nil {
			continue
		}
		found := false
		var walk func(n *pattern.ConstructNode)
		walk = func(n *pattern.ConstructNode) {
			if n.NewLCL == lcl {
				found = true
			}
			for _, ch := range n.Children {
				walk(ch)
			}
		}
		walk(c.Pattern)
		if found {
			return true
		}
	}
	return false
}

func maxLabel(tagOf map[int]string) int {
	max := 0
	for l := range tagOf {
		if l > max {
			max = l
		}
	}
	return max
}
