// Package gtp builds GTP-style evaluation plans (Chen et al., VLDB 2003;
// Section 6.1 of the TLC paper). GTP shares TLC's pattern tree reuse — one
// generalized tree per query block, no early materialization, no final
// value join for the RETURN clause — but it has no annotated edges:
// wherever TLC matches a "+"/"*" edge with a nest-join, GTP performs a
// flat match (multiplying the intermediate result) followed by the
// grouping procedure that splits, groups and merges the nested paths.
//
// The transformation below converts a TLC plan into that shape: every
// nested branch of every Select is pulled out into a flat extension match
// (multiplying) topped by a GroupBy that re-nests the members. The paper's
// measured disadvantages of GTP — group-by costs more than a nest-join,
// and the multiplied intermediate results must be cloned and collapsed —
// all fall out of these operators.
package gtp

import (
	"tlc/internal/algebra"
	"tlc/internal/pattern"
	"tlc/internal/translate"
	"tlc/internal/xquery"
)

// Translate parses nothing: it compiles the query with the TLC translator
// and then reshapes the plan into GTP style.
func Translate(f *xquery.FLWOR) (*translate.Result, error) {
	res, err := translate.Translate(f)
	if err != nil {
		return nil, err
	}
	res.Plan = Transform(res.Plan)
	return res, nil
}

// Transform reshapes a TLC plan into a GTP-style plan in place and returns
// the (possibly new) root.
func Transform(root algebra.Op) algebra.Op {
	for {
		changed := false
		for _, op := range algebra.Ops(root) {
			sel, ok := op.(*algebra.Select)
			if !ok || sel.APT == nil || sel.APT.Root == nil {
				continue
			}
			node, edgeIdx := findNestedEdge(sel.APT)
			if node == nil {
				continue
			}
			root = pullOutBranch(root, sel, node, edgeIdx)
			changed = true
			break
		}
		if !changed {
			return root
		}
	}
}

// findNestedEdge locates the first nested edge in an APT (pre-order).
// Logical (OR-group or NOT) edges are pure existence tests that bind no
// classes — pulling one out would split its group — so they stay in place.
func findNestedEdge(apt *pattern.Tree) (*pattern.Node, int) {
	for _, n := range apt.Nodes() {
		for i := range n.Edges {
			if n.Edges[i].Spec.Nested() && !n.Edges[i].Logical() {
				return n, i
			}
		}
	}
	return nil, 0
}

// pullOutBranch removes the nested branch from the select's APT and stacks
// a flat extension match plus a GroupBy above the select. Returns the new
// plan root.
func pullOutBranch(root algebra.Op, sel *algebra.Select, node *pattern.Node, edgeIdx int) algebra.Op {
	e := node.Edges[edgeIdx]
	node.Edges = append(node.Edges[:edgeIdx:edgeIdx], node.Edges[edgeIdx+1:]...)

	anchorClass := node.LCL
	if node.Kind == pattern.TestLC && anchorClass == 0 {
		anchorClass = node.InClass
	}

	flattenSpecs(&e)
	anchor := pattern.NewLCAnchor(0, anchorClass)
	anchor.Edges = []pattern.Edge{e}
	ext := &pattern.Tree{Root: anchor}

	build := func(in algebra.Op) algebra.Op {
		return algebra.NewGroupBy(
			algebra.NewExtendSelect(in, ext),
			anchorClass, e.To.LCL, branchLabels(e.To)...)
	}

	// When stripping the branch empties an anonymous extension select, the
	// select reduces to a no-op and is spliced out of the plan.
	below := algebra.Op(sel)
	if sel.APT.Root.Kind == pattern.TestLC && sel.APT.Root.LCL == 0 &&
		len(sel.APT.Root.Edges) == 0 && len(sel.Inputs()) == 1 {
		below = sel.Inputs()[0]
	}
	if sel == root {
		return build(below)
	}
	for _, op := range algebra.Ops(root) {
		for _, in := range op.Inputs() {
			if in == sel {
				algebra.ReplaceInput(op, sel, build(below))
				return root
			}
		}
	}
	return root
}

// flattenSpecs converts the matching specifications of a branch to their
// flat counterparts: "*" → "?" and "+" → "-", at every level.
func flattenSpecs(e *pattern.Edge) {
	switch e.Spec {
	case pattern.ZeroOrMore:
		e.Spec = pattern.ZeroOrOne
	case pattern.OneOrMore:
		e.Spec = pattern.One
	}
	for i := range e.To.Edges {
		flattenSpecs(&e.To.Edges[i])
	}
}

// branchLabels collects the class labels of a pattern branch.
func branchLabels(n *pattern.Node) []int {
	var out []int
	var walk func(*pattern.Node)
	walk = func(p *pattern.Node) {
		if p.LCL > 0 {
			out = append(out, p.LCL)
		}
		for _, e := range p.Edges {
			walk(e.To)
		}
	}
	walk(n)
	return out
}
