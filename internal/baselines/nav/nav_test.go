package nav

import (
	"strings"
	"testing"

	"tlc/internal/store"
	"tlc/internal/xquery"
)

const navXML = `<site>
  <person id="p0"><name>Alice</name><age>30</age></person>
  <person id="p1"><name>Bob</name><age>20</age></person>
  <auction><ref person="p0"/><amount>5</amount></auction>
  <auction><ref person="p0"/><amount>9</amount></auction>
</site>`

func navStore(t *testing.T) *store.Store {
	t.Helper()
	s := store.New()
	if _, err := s.LoadXML("n.xml", strings.NewReader(navXML)); err != nil {
		t.Fatal(err)
	}
	return s
}

func navRun(t *testing.T, s *store.Store, q string) string {
	t.Helper()
	ast, err := xquery.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(s, ast)
	if err != nil {
		t.Fatal(err)
	}
	return out.XML(s)
}

func TestNavNestedLoopCorrelation(t *testing.T) {
	s := navStore(t)
	got := navRun(t, s, `FOR $p IN document("n.xml")/person
		LET $a := FOR $x IN document("n.xml")/auction
		          WHERE $x/ref/@person = $p/@id
		          RETURN $x/amount/text()
		RETURN <r name={$p/name/text()}><n>{count($a)}</n></r>`)
	if !strings.Contains(got, `<r name="Alice"><n>2</n></r>`) ||
		!strings.Contains(got, `<r name="Bob"><n>0</n></r>`) {
		t.Errorf("correlated LET: %s", got)
	}
}

func TestNavCountsStoreReads(t *testing.T) {
	s := navStore(t)
	s.ResetStats()
	navRun(t, s, `FOR $p IN document("n.xml")//name RETURN $p`)
	st := s.Snapshot()
	if st.NodesRead == 0 {
		t.Error("navigation recorded no node reads")
	}
	if st.TagLookups != 0 {
		t.Error("navigation used the tag index")
	}
}

func TestNavOrderBy(t *testing.T) {
	s := navStore(t)
	got := navRun(t, s, `FOR $a IN document("n.xml")/auction
		ORDER BY $a/amount DESCENDING
		RETURN <amt>{$a/amount/text()}</amt>`)
	if !strings.HasPrefix(got, "<amt>9</amt>") {
		t.Errorf("descending order: %s", got)
	}
}

func TestNavQuantifiers(t *testing.T) {
	s := navStore(t)
	got := navRun(t, s, `FOR $p IN document("n.xml")/person
		WHERE EVERY $x IN $p/age SATISFIES $x > 25
		RETURN $p/name/text()`)
	// Alice (30) passes; Bob (20) fails; a person without age would pass
	// vacuously.
	if !strings.Contains(got, "Alice") || strings.Contains(got, "Bob") {
		t.Errorf("EVERY: %s", got)
	}
	got = navRun(t, s, `FOR $p IN document("n.xml")/person
		WHERE SOME $x IN $p/age SATISFIES $x < 25
		RETURN $p/name/text()`)
	if strings.Contains(got, "Alice") || !strings.Contains(got, "Bob") {
		t.Errorf("SOME: %s", got)
	}
}

func TestNavAggregates(t *testing.T) {
	s := navStore(t)
	got := navRun(t, s, `FOR $s IN document("n.xml")/auction
		WHERE avg($s/amount) >= 5 RETURN $s/amount/text()`)
	if !strings.Contains(got, "5") || !strings.Contains(got, "9") {
		t.Errorf("avg filter: %s", got)
	}
	// Aggregate over missing path compares false (flag "empty").
	got = navRun(t, s, `FOR $s IN document("n.xml")/auction
		WHERE max($s/missing) > 0 RETURN $s`)
	if got != "" {
		t.Errorf("empty max: %s", got)
	}
}

func TestNavErrors(t *testing.T) {
	s := navStore(t)
	for _, q := range []string{
		`FOR $p IN document("missing.xml")/a RETURN $p`,
		`FOR $p IN document("n.xml")/person WHERE sum($p/name) > 0 RETURN $p`, // non-numeric sum
	} {
		ast, err := xquery.Parse(q)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Run(s, ast); err == nil {
			t.Errorf("Run(%q) succeeded, want error", q)
		}
	}
}

func TestNavOrSemantics(t *testing.T) {
	s := navStore(t)
	got := navRun(t, s, `FOR $p IN document("n.xml")/person
		WHERE $p/age > 25 OR $p/@id = "p1"
		RETURN $p/name/text()`)
	if !strings.Contains(got, "Alice") || !strings.Contains(got, "Bob") {
		t.Errorf("OR: %s", got)
	}
}

func TestNavAttributeSteps(t *testing.T) {
	s := navStore(t)
	got := navRun(t, s, `FOR $a IN document("n.xml")/auction
		RETURN <who>{$a/ref/@person}</who>`)
	if strings.Count(got, `person="p0"`) != 2 {
		t.Errorf("attribute step: %s", got)
	}
}
