package nav

import (
	"fmt"
	"strconv"

	"tlc/internal/pattern"
	"tlc/internal/seq"
	"tlc/internal/xquery"
)

// whereHolds evaluates a WHERE expression under the environment by
// navigation. Comparisons over node sequences are existential (XQuery
// general comparisons).
func (ev *evaluator) whereHolds(x xquery.Expr, e env) (bool, error) {
	if x == nil {
		return true, nil
	}
	switch w := x.(type) {
	case *xquery.And:
		l, err := ev.whereHolds(w.L, e)
		if err != nil || !l {
			return false, err
		}
		return ev.whereHolds(w.R, e)
	case *xquery.Or:
		l, err := ev.whereHolds(w.L, e)
		if err != nil || l {
			return l, err
		}
		return ev.whereHolds(w.R, e)
	case *xquery.Comparison:
		lv, err := ev.values(w.Left, e)
		if err != nil {
			return false, err
		}
		if w.RightPath == nil {
			for _, v := range lv {
				if pattern.Compare(w.Op, v, w.RightVal) {
					return true, nil
				}
			}
			return false, nil
		}
		rv, err := ev.values(w.RightPath, e)
		if err != nil {
			return false, err
		}
		for _, l := range lv {
			for _, r := range rv {
				if pattern.Compare(w.Op, l, r) {
					return true, nil
				}
			}
		}
		return false, nil
	case *xquery.AggrPred:
		nodes, err := ev.path(w.Path, e)
		if err != nil {
			return false, err
		}
		agg, err := ev.aggregate(w.Fn, nodes)
		if err != nil {
			return false, err
		}
		return pattern.Compare(w.Op, agg, w.Value), nil
	case *xquery.Quantified:
		nodes, err := ev.path(w.Path, e)
		if err != nil {
			return false, err
		}
		for _, n := range nodes {
			ok, err := ev.whereHolds(w.Cond, e.extend(w.Var, []*seq.Node{n}))
			if err != nil {
				return false, err
			}
			if w.Every && !ok {
				return false, nil
			}
			if !w.Every && ok {
				return true, nil
			}
		}
		// EVERY is vacuously true over an empty sequence; SOME is false.
		return w.Every, nil
	case *xquery.Not:
		ok, err := ev.whereHolds(w.X, e)
		if err != nil {
			return false, err
		}
		return !ok, nil
	case *xquery.Exists:
		nodes, err := ev.path(w.Path, e)
		if err != nil {
			return false, err
		}
		return len(nodes) > 0, nil
	default:
		return false, fmt.Errorf("nav: unsupported WHERE expression %T", x)
	}
}

// values evaluates a path to the content values of its matches.
func (ev *evaluator) values(p *xquery.Path, e env) ([]string, error) {
	nodes, err := ev.path(p, e)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(nodes))
	for i, n := range nodes {
		out[i] = seq.Content(ev.st, n)
	}
	return out, nil
}

// aggregate applies an aggregate function over node contents.
func (ev *evaluator) aggregate(fn string, nodes []*seq.Node) (string, error) {
	if fn == "count" {
		return strconv.Itoa(len(nodes)), nil
	}
	if len(nodes) == 0 {
		return "empty", nil
	}
	var acc float64
	var vals []float64
	for _, n := range nodes {
		f, err := strconv.ParseFloat(seq.Content(ev.st, n), 64)
		if err != nil {
			return "", fmt.Errorf("nav: aggregate %s over non-numeric content", fn)
		}
		vals = append(vals, f)
	}
	switch fn {
	case "sum", "avg":
		for _, v := range vals {
			acc += v
		}
		if fn == "avg" {
			acc /= float64(len(vals))
		}
	case "min":
		acc = vals[0]
		for _, v := range vals[1:] {
			if v < acc {
				acc = v
			}
		}
	case "max":
		acc = vals[0]
		for _, v := range vals[1:] {
			if v > acc {
				acc = v
			}
		}
	default:
		return "", fmt.Errorf("nav: unknown aggregate %q", fn)
	}
	return strconv.FormatFloat(acc, 'f', -1, 64), nil
}

// buildReturn materializes one output tree for a binding tuple.
func (ev *evaluator) buildReturn(r *xquery.RetNode, e env) (*seq.Tree, error) {
	nodes, err := ev.retNodes(r, e)
	if err != nil {
		return nil, err
	}
	if len(nodes) == 1 {
		return ev.arena.NewTree(nodes[0]), nil
	}
	root := ev.arena.TempElement("result")
	for _, n := range nodes {
		seq.Attach(root, n)
	}
	return ev.arena.NewTree(root), nil
}

func (ev *evaluator) retNodes(r *xquery.RetNode, e env) ([]*seq.Node, error) {
	switch r.Kind {
	case xquery.RetElement:
		el := ev.arena.TempElement(r.Tag)
		for _, a := range r.Attrs {
			if a.Path == nil {
				seq.Attach(el, ev.arena.TempAttr(a.Name, a.Literal))
				continue
			}
			vs, err := ev.values(a.Path, e)
			if err != nil {
				return nil, err
			}
			if len(vs) > 0 {
				seq.Attach(el, ev.arena.TempAttr(a.Name, vs[0]))
			}
		}
		for _, ch := range r.Children {
			kids, err := ev.retNodes(ch, e)
			if err != nil {
				return nil, err
			}
			for _, k := range kids {
				seq.Attach(el, k)
			}
		}
		return []*seq.Node{el}, nil
	case xquery.RetPath:
		nodes, err := ev.path(r.Path, e)
		if err != nil {
			return nil, err
		}
		var out []*seq.Node
		for _, n := range nodes {
			if r.Path.Text {
				out = append(out, ev.arena.TempText(seq.Content(ev.st, n)))
				continue
			}
			out = append(out, ev.copyOut(n))
		}
		return out, nil
	case xquery.RetAggr:
		nodes, err := ev.path(r.Path, e)
		if err != nil {
			return nil, err
		}
		v, err := ev.aggregate(r.Fn, nodes)
		if err != nil {
			return nil, err
		}
		return []*seq.Node{ev.arena.TempText(v)}, nil
	case xquery.RetLiteral:
		return []*seq.Node{ev.arena.TempText(r.Literal)}, nil
	case xquery.RetSub:
		sub, err := ev.flwor(r.Sub, e)
		if err != nil {
			return nil, err
		}
		var out []*seq.Node
		for _, t := range sub {
			out = append(out, t.Root)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("nav: unsupported RETURN node kind %d", r.Kind)
	}
}

// copyOut materializes a node into the output: stored nodes are copied
// from the store, temporary nodes (inner FLWOR results) are reused.
func (ev *evaluator) copyOut(n *seq.Node) *seq.Node {
	if n.IsStore() && !n.Full {
		return seq.MaterializeIn(ev.arena, ev.st, n.Doc, n.Ord)
	}
	return n
}
