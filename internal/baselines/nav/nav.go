// Package nav implements the navigational baseline of Section 6.1: a
// recursive tree-walking interpreter for the same XQuery fragment. It uses
// no indexes and no joins — every path step "traverses down a path by
// recursively getting all children of a node and checking them for a
// condition on content or name", paying one store read per visited node.
// Correlated predicates come for free from the nested-loop evaluation
// order, which is also why navigation is insensitive to the
// heterogeneity instigators that hurt TAX and GTP, but degrades with path
// length, fan-out and '//' steps (Section 6.3).
package nav

import (
	"context"
	"fmt"
	"sort"
	"strconv"

	"tlc/internal/failure"
	"tlc/internal/governor"
	"tlc/internal/pattern"
	"tlc/internal/physical"
	"tlc/internal/seq"
	"tlc/internal/store"
	"tlc/internal/xquery"
)

// Run evaluates the query against the store by navigation and returns the
// result sequence (one tree per binding tuple, as for the algebraic
// engines).
func Run(st *store.Store, f *xquery.FLWOR) (seq.Seq, error) {
	return RunContext(context.Background(), st, f)
}

// RunContext evaluates like Run under goCtx: the interpreter polls the
// context every physical.PollStride visited nodes and per binding tuple,
// so a deadline or client disconnect stops a long navigation mid-walk and
// surfaces as goCtx.Err(). A governor carried by goCtx budgets the walk
// the same way it budgets the algebraic engines (arena slabs at
// allocation, wall time at the poll sites), and RunContext is a
// containment barrier: interpreter panics come back as errors.
func RunContext(goCtx context.Context, st *store.Store, f *xquery.FLWOR) (out seq.Seq, err error) {
	if err := goCtx.Err(); err != nil {
		return nil, err
	}
	defer failure.Recover(&err, "nav.Run")
	gov := governor.FromContext(goCtx)
	ev := &evaluator{st: st, goCtx: goCtx, gov: gov, arena: seq.NewArena().WithGovernor(gov)}
	return ev.flwor(f, env{})
}

type evaluator struct {
	st    *store.Store
	goCtx context.Context
	// gov budgets the walk; nil when the query is ungoverned.
	gov *governor.Governor
	// arena slab-allocates the visited-node wrappers: navigation wraps
	// every fetched child in a fresh seq.Node, which made it by far the
	// allocation-heaviest engine.
	arena *seq.Arena
	// steps counts poll sites passed; every physical.PollStride-th one
	// reads the context. cancelErr latches the first cancellation so walks
	// that cannot return an error themselves (descendantsNamed) abort
	// early and the nearest error-returning frame reports it.
	steps     int
	cancelErr error
}

// poll advances the visit counter and returns the latched or freshly
// observed cancellation error, if any.
func (ev *evaluator) poll() error {
	if ev.cancelErr != nil {
		return ev.cancelErr
	}
	ev.steps++
	if ev.steps%physical.PollStride == 0 && ev.goCtx != nil {
		ev.cancelErr = ev.goCtx.Err()
		if ev.cancelErr == nil {
			ev.cancelErr = ev.gov.Check()
		}
	}
	return ev.cancelErr
}

// env is the variable environment: each variable binds to one node (FOR)
// or a node sequence (LET).
type env map[string][]*seq.Node

func (e env) extend(name string, nodes []*seq.Node) env {
	ne := make(env, len(e)+1)
	for k, v := range e {
		ne[k] = v
	}
	ne[name] = nodes
	return ne
}

// flwor evaluates a FLWOR block under the given environment.
func (ev *evaluator) flwor(f *xquery.FLWOR, e env) (seq.Seq, error) {
	type row struct {
		tree *seq.Tree
		keys []string
	}
	var rows []row
	var loop func(i int, e env) error
	loop = func(i int, e env) error {
		if i == len(f.Bindings) {
			keep, err := ev.whereHolds(f.Where, e)
			if err != nil {
				return err
			}
			if !keep {
				return nil
			}
			// ORDER BY keys are evaluated in the binding-tuple
			// environment, before the output is constructed.
			var keys []string
			for _, k := range f.OrderBy {
				vs, err := ev.values(k.Path, e)
				if err != nil {
					return err
				}
				if len(vs) == 0 {
					keys = append(keys, "￿") // missing sorts last
				} else {
					keys = append(keys, vs[0])
				}
			}
			tree, err := ev.buildReturn(f.Return, e)
			if err != nil {
				return err
			}
			rows = append(rows, row{tree: tree, keys: keys})
			// The accumulated result rows are this engine's only
			// intermediate sequence; budget them like an operator output.
			if err := ev.gov.CheckCard(len(rows)); err != nil {
				return err
			}
			return nil
		}
		if err := ev.poll(); err != nil {
			return err
		}
		b := f.Bindings[i]
		var nodes []*seq.Node
		if b.Sub != nil {
			sub, err := ev.flwor(b.Sub, e)
			if err != nil {
				return err
			}
			for _, t := range sub {
				nodes = append(nodes, t.Root)
			}
		} else {
			var err error
			nodes, err = ev.path(b.Path, e)
			if err != nil {
				return err
			}
		}
		if b.Kind == xquery.BindLet {
			return loop(i+1, e.extend(b.Var, nodes))
		}
		for _, n := range nodes {
			if err := loop(i+1, e.extend(b.Var, []*seq.Node{n})); err != nil {
				return err
			}
		}
		return nil
	}
	if err := loop(0, e); err != nil {
		return nil, err
	}
	if len(f.OrderBy) > 0 {
		sort.SliceStable(rows, func(a, b int) bool {
			for j, k := range f.OrderBy {
				c := compareValues(rows[a].keys[j], rows[b].keys[j])
				if c == 0 {
					continue
				}
				if k.Descending {
					return c > 0
				}
				return c < 0
			}
			return false
		})
	}
	out := make(seq.Seq, len(rows))
	for i, r := range rows {
		out[i] = r.tree
	}
	return out, nil
}

func compareValues(a, b string) int {
	af, aerr := strconv.ParseFloat(a, 64)
	bf, berr := strconv.ParseFloat(b, 64)
	if aerr == nil && berr == nil {
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	}
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// path evaluates a simple path by navigation, returning matching nodes in
// document order.
func (ev *evaluator) path(p *xquery.Path, e env) ([]*seq.Node, error) {
	var cur []*seq.Node
	switch p.Root {
	case xquery.RootDocument:
		id, ok := ev.st.Lookup(p.Doc)
		if !ok {
			return nil, fmt.Errorf("nav: document %q not loaded", p.Doc)
		}
		nd := ev.st.Node(id, 0)
		cur = []*seq.Node{ev.arena.StoreNode(id, 0, nd.Kind, nd.Tag, nd.Value)}
	default:
		bound, ok := e[p.Var]
		if !ok {
			return nil, fmt.Errorf("nav: unbound variable %s", p.Var)
		}
		cur = bound
	}
	for _, s := range p.Steps {
		var next []*seq.Node
		for _, n := range cur {
			if err := ev.poll(); err != nil {
				return nil, err
			}
			if s.Axis == pattern.Child {
				next = append(next, ev.childrenNamed(n, s.Name)...)
			} else {
				next = append(next, ev.descendantsNamed(n, s.Name)...)
			}
		}
		cur = next
	}
	if ev.cancelErr != nil {
		return nil, ev.cancelErr
	}
	return cur, nil
}

// childrenNamed returns the children of n with the given tag, reading the
// store for store references and the in-memory kids for temporaries.
func (ev *evaluator) childrenNamed(n *seq.Node, tag string) []*seq.Node {
	var out []*seq.Node
	for _, k := range ev.children(n) {
		if k.Tag == tag {
			out = append(out, k)
		}
	}
	return out
}

func (ev *evaluator) descendantsNamed(n *seq.Node, tag string) []*seq.Node {
	var out []*seq.Node
	var walk func(x *seq.Node)
	walk = func(x *seq.Node) {
		// A deep '//' walk is the navigational engine's dominant cost;
		// abort it as soon as a poll observes cancellation (the caller
		// reports the latched error).
		if ev.poll() != nil {
			return
		}
		for _, k := range ev.children(x) {
			if k.Tag == tag {
				out = append(out, k)
			}
			walk(k)
		}
	}
	walk(n)
	return out
}

// children enumerates a node's children, paying store reads for stored
// nodes (this is the navigational cost model: every visited child is a
// node fetch).
func (ev *evaluator) children(n *seq.Node) []*seq.Node {
	if !n.IsStore() || n.Full {
		return n.Kids
	}
	ords := ev.st.Children(n.Doc, n.Ord)
	out := make([]*seq.Node, 0, len(ords))
	d := ev.st.Doc(n.Doc)
	for _, o := range ords {
		out = append(out, ev.arena.StoreNodeOf(n.Doc, o, d))
	}
	return out
}
