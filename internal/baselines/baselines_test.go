// Package baselines_test cross-validates the three baseline engines (TAX,
// GTP, navigational) against the TLC engine: every engine must produce the
// same result trees for the same query, while their plans exhibit the
// characteristic shapes Section 6.1 describes.
package baselines_test

import (
	"sort"
	"strings"
	"testing"

	"tlc/internal/algebra"
	"tlc/internal/baselines/gtp"
	"tlc/internal/baselines/nav"
	"tlc/internal/baselines/tax"
	"tlc/internal/seq"
	"tlc/internal/store"
	"tlc/internal/translate"
	"tlc/internal/xquery"
)

const testAuction = `<site>
  <people>
    <person id="p0"><name>Alice</name><age>30</age></person>
    <person id="p1"><name>Bob</name><age>20</age></person>
    <person id="p2"><name>Carol</name><age>40</age></person>
    <person id="p3"><name>Dave</name></person>
  </people>
  <open_auctions>
    <open_auction id="a0">
      <bidder><personref person="p0"/><increase>3</increase></bidder>
      <bidder><personref person="p2"/><increase>4</increase></bidder>
      <bidder><personref person="p0"/><increase>5</increase></bidder>
      <bidder><personref person="p2"/><increase>6</increase></bidder>
      <bidder><personref person="p0"/><increase>7</increase></bidder>
      <bidder><personref person="p2"/><increase>8</increase></bidder>
      <quantity>2</quantity>
    </open_auction>
    <open_auction id="a1">
      <bidder><personref person="p2"/><increase>1</increase></bidder>
      <quantity>5</quantity>
    </open_auction>
    <open_auction id="a2"><quantity>1</quantity></open_auction>
  </open_auctions>
</site>`

var crossQueries = map[string]string{
	"simple-for": `FOR $p IN document("auction.xml")//person RETURN $p/name`,
	"predicate": `FOR $p IN document("auction.xml")//person
		WHERE $p/age > 25 RETURN $p/name/text()`,
	"equality": `FOR $p IN document("auction.xml")//person
		WHERE $p/@id = "p1" RETURN <hit>{$p/name/text()}</hit>`,
	"count-filter": `FOR $o IN document("auction.xml")//open_auction
		WHERE count($o/bidder) > 5 RETURN $o/@id`,
	"count-return": `FOR $o IN document("auction.xml")//open_auction
		RETURN <n>{count($o/bidder)}</n>`,
	"value-join": `FOR $p IN document("auction.xml")//person
		FOR $o IN document("auction.xml")//open_auction
		WHERE $p/@id = $o/bidder//@person AND $p/age > 25
		RETURN <pair>{$p/name/text()}</pair>`,
	"q1": `FOR $p IN document("auction.xml")//person
		FOR $o IN document("auction.xml")//open_auction
		WHERE count($o/bidder) > 5 AND $p/age > 25
		  AND $p/@id = $o/bidder//@person
		RETURN <person name={$p/name/text()}> $o/bidder </person>`,
	"q2": `FOR $p IN document("auction.xml")//person
		LET $a := FOR $o IN document("auction.xml")//open_auction
			WHERE count($o/bidder) > 5 AND $p/@id = $o/bidder//@person
			RETURN <myauction> {$o/bidder}
				<myquan>{$o/quantity/text()}</myquan></myauction>
		WHERE $p/age > 25
		  AND EVERY $i IN $a/myquan SATISFIES $i > 1
		RETURN <person name={$p/name/text()}>{$a/bidder}</person>`,
	"quantifier": `FOR $o IN document("auction.xml")//open_auction
		WHERE SOME $b IN $o/bidder SATISFIES $b/increase > 7
		RETURN $o/@id`,
	"every-vacuous": `FOR $o IN document("auction.xml")//open_auction
		WHERE EVERY $b IN $o/bidder SATISFIES $b/increase > 0
		RETURN $o/@id`,
	"let-count": `FOR $o IN document("auction.xml")//open_auction
		LET $b := $o/bidder
		RETURN <a><c>{count($b)}</c></a>`,
	"var-rooted": `FOR $o IN document("auction.xml")//open_auction
		FOR $b IN $o/bidder
		WHERE $b/increase > 6
		RETURN $b/increase/text()`,
	"or": `FOR $p IN document("auction.xml")//person
		WHERE $p/age > 35 OR $p/age < 25
		RETURN $p/name/text()`,
	"or-exists": `FOR $p IN document("auction.xml")//person
		WHERE $p/age OR $p/name = "Dave"
		RETURN $p/name/text()`,
	"not": `FOR $p IN document("auction.xml")//person
		WHERE not($p/age)
		RETURN $p/name/text()`,
	"not-pred": `FOR $p IN document("auction.xml")//person
		WHERE not($p/age > 25)
		RETURN $p/name/text()`,
	"or-not": `FOR $p IN document("auction.xml")//person
		WHERE not($p/age) OR $p/age > 35
		RETURN $p/name/text()`,
	"or-under-and": `FOR $p IN document("auction.xml")//person
		WHERE $p/age > 25 AND ($p/name = "Carol" OR $p/age < 35)
		RETURN $p/name/text()`,
	"order-by": `FOR $p IN document("auction.xml")//person
		WHERE $p/age > 0
		ORDER BY $p/age DESCENDING
		RETURN $p/age/text()`,
}

func loadStore(t *testing.T) *store.Store {
	t.Helper()
	s := store.New()
	if _, err := s.LoadXML("auction.xml", strings.NewReader(testAuction)); err != nil {
		t.Fatal(err)
	}
	return s
}

func canonical(s *store.Store, out seq.Seq) string {
	xs := make([]string, len(out))
	for i, w := range out {
		xs[i] = w.XML(s)
	}
	sort.Strings(xs)
	return strings.Join(xs, "\n")
}

func TestEnginesAgree(t *testing.T) {
	s := loadStore(t)
	for name, q := range crossQueries {
		t.Run(name, func(t *testing.T) {
			ast, err := xquery.Parse(q)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			tlcRes, err := translate.Translate(ast)
			if err != nil {
				t.Fatalf("translate: %v", err)
			}
			want, err := algebra.Run(s, tlcRes.Plan)
			if err != nil {
				t.Fatalf("tlc eval: %v", err)
			}
			wantC := canonical(s, want)

			gtpRes, err := gtp.Translate(ast)
			if err != nil {
				t.Fatalf("gtp translate: %v", err)
			}
			gtpOut, err := algebra.Run(s, gtpRes.Plan)
			if err != nil {
				t.Fatalf("gtp eval: %v\nplan:\n%s", err, algebra.Explain(gtpRes.Plan))
			}
			if got := canonical(s, gtpOut); got != wantC {
				t.Errorf("GTP differs from TLC.\nTLC:\n%s\nGTP:\n%s\nplan:\n%s",
					wantC, got, algebra.Explain(gtpRes.Plan))
			}

			taxRes, err := tax.Translate(ast)
			if err != nil {
				t.Fatalf("tax translate: %v", err)
			}
			taxOut, err := algebra.Run(s, taxRes.Plan)
			if err != nil {
				t.Fatalf("tax eval: %v\nplan:\n%s", err, algebra.Explain(taxRes.Plan))
			}
			if got := canonical(s, taxOut); got != wantC {
				t.Errorf("TAX differs from TLC.\nTLC:\n%s\nTAX:\n%s\nplan:\n%s",
					wantC, got, algebra.Explain(taxRes.Plan))
			}

			navOut, err := nav.Run(s, ast)
			if err != nil {
				t.Fatalf("nav eval: %v", err)
			}
			if got := canonical(s, navOut); got != wantC {
				t.Errorf("NAV differs from TLC.\nTLC:\n%s\nNAV:\n%s", wantC, got)
			}
		})
	}
}

func TestGTPPlanUsesGrouping(t *testing.T) {
	ast, err := xquery.Parse(crossQueries["q1"])
	if err != nil {
		t.Fatal(err)
	}
	res, err := gtp.Translate(ast)
	if err != nil {
		t.Fatal(err)
	}
	exp := algebra.Explain(res.Plan)
	if !strings.Contains(exp, "GroupBy") {
		t.Errorf("GTP plan has no GroupBy:\n%s", exp)
	}
	if strings.Contains(exp, "{*}") || strings.Contains(exp, "{+}") {
		t.Errorf("GTP plan retains nested select edges:\n%s", exp)
	}
}

func TestTAXPlanShape(t *testing.T) {
	ast, err := xquery.Parse(crossQueries["q1"])
	if err != nil {
		t.Fatal(err)
	}
	res, err := tax.Translate(ast)
	if err != nil {
		t.Fatal(err)
	}
	exp := algebra.Explain(res.Plan)
	for _, want := range []string{"GroupBy", "IdentityJoin", "Materialize"} {
		if !strings.Contains(exp, want) {
			t.Errorf("TAX plan missing %s:\n%s", want, exp)
		}
	}
	if strings.Contains(exp, "class(") {
		t.Errorf("TAX plan retains extension selects (pattern reuse):\n%s", exp)
	}
}

func TestBaselinesAreSlowerOnQ1(t *testing.T) {
	s := loadStore(t)
	ast, err := xquery.Parse(crossQueries["q1"])
	if err != nil {
		t.Fatal(err)
	}
	cost := func(res *translate.Result) store.Stats {
		s.ResetStats()
		if _, err := algebra.Run(s, res.Plan); err != nil {
			t.Fatal(err)
		}
		return s.Snapshot()
	}
	tlcRes, _ := translate.Translate(ast)
	taxRes, _ := tax.Translate(ast)
	tlcStats := cost(tlcRes)
	taxStats := cost(taxRes)
	if taxStats.NodesMaterialized <= tlcStats.NodesMaterialized {
		t.Errorf("TAX materialized %d nodes, TLC %d — early materialization not visible",
			taxStats.NodesMaterialized, tlcStats.NodesMaterialized)
	}
}
