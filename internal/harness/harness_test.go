package harness

import (
	"strings"
	"testing"
	"time"

	"tlc"
)

func tinyConfig() Config {
	return Config{Factor: 0.01, Reps: 1, Deadline: time.Minute}
}

func TestOpenDatabase(t *testing.T) {
	db, err := OpenDatabase(0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := db.Documents(); len(got) != 1 || got[0] != "auction.xml" {
		t.Errorf("documents = %v", got)
	}
}

func TestMeasure(t *testing.T) {
	db, err := OpenDatabase(0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	q, _ := findQuery("x1")
	m := Measure(db, q.Text, tlc.TLC, tinyConfig())
	if m.Err != nil {
		t.Fatalf("measure: %v", m.Err)
	}
	if m.DNF || m.Time <= 0 {
		t.Errorf("measurement = %+v", m)
	}
	// Compile errors surface on the measurement.
	if bad := Measure(db, "not a query", tlc.TLC, tinyConfig()); bad.Err == nil {
		t.Error("bad query measured without error")
	}
}

func TestMeasureDeadlineExcluded(t *testing.T) {
	db, err := OpenDatabase(0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	q, _ := findQuery("x1")
	cfg := tinyConfig()
	cfg.Reps = 5
	cfg.Deadline = time.Nanosecond // every run blows the deadline
	m := Measure(db, q.Text, tlc.TLC, cfg)
	if !m.DNF {
		t.Fatalf("expected DNF, got %+v", m)
	}
	// The over-deadline sample must not leak into the trimmed mean: the
	// very first run hit the deadline, so no valid samples exist.
	if m.Time != 0 {
		t.Errorf("DNF time = %v, want 0 (over-deadline sample excluded)", m.Time)
	}
}

func TestMeasureParallelism(t *testing.T) {
	db, err := OpenDatabase(0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	q, _ := findQuery("x5")
	serial := Measure(db, q.Text, tlc.TLC, tinyConfig())
	cfg := tinyConfig()
	cfg.Parallelism = 4
	par := Measure(db, q.Text, tlc.TLC, cfg)
	if serial.Err != nil || par.Err != nil {
		t.Fatalf("errs: %v / %v", serial.Err, par.Err)
	}
	if par.Results != serial.Results {
		t.Errorf("parallel results = %d, serial = %d", par.Results, serial.Results)
	}
}

func TestTrimmedMean(t *testing.T) {
	times := []time.Duration{100, 1, 5, 3, 1000} // drop 1 and 1000
	if got := trimmedMean(times); got != (100+5+3)/3 {
		t.Errorf("trimmedMean = %d", got)
	}
	if got := trimmedMean([]time.Duration{7}); got != 7 {
		t.Errorf("single sample = %d", got)
	}
	if got := trimmedMean(nil); got != 0 {
		t.Errorf("empty = %d", got)
	}
}

func TestRunFigure16AndFormat(t *testing.T) {
	db, err := OpenDatabase(0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	rows := RunFigure16(db, tinyConfig())
	if len(rows) != 4 { // x3, x5, Q1, Q2
		t.Fatalf("figure 16 rows = %d, want 4", len(rows))
	}
	out := FormatFigure16(rows)
	for _, want := range []string{"TLC", "OPT", "speedup", "Q1", "x5"} {
		if !strings.Contains(out, want) {
			t.Errorf("format missing %q:\n%s", want, out)
		}
	}
	for _, r := range rows {
		if r.Cells["TLC"].Err != nil || r.Cells["OPT"].Err != nil {
			t.Errorf("%s errored: %+v", r.QueryID, r.Cells)
		}
	}
}

func TestRunFigure17AndFormat(t *testing.T) {
	points, err := RunFigure17([]float64{0.01, 0.02}, tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2*len(Figure17Queries) {
		t.Fatalf("points = %d", len(points))
	}
	out := FormatFigure17(points)
	if !strings.Contains(out, "factor") || !strings.Contains(out, "x13") {
		t.Errorf("format17:\n%s", out)
	}
}

func TestFigure15SubsetAndFormat(t *testing.T) {
	db, err := OpenDatabase(0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := tinyConfig()
	cfg.Engines = []tlc.Engine{tlc.TLC, tlc.GTP}
	// Run just a couple of rows through the full-table path by measuring
	// directly (RunFigure15 over the whole workload is exercised by the
	// benchmarks; keep the unit test fast).
	q, _ := findQuery("Q1")
	row := Row{QueryID: q.ID, Comment: q.Comment, Cells: map[string]Measurement{}}
	for _, e := range cfg.Engines {
		row.Cells[e.String()] = Measure(db, q.Text, e, cfg)
	}
	out := FormatFigure15([]Row{row}, cfg.Engines)
	if !strings.Contains(out, "Q1") || !strings.Contains(out, "GTP") {
		t.Errorf("format15:\n%s", out)
	}
	if strings.Contains(out, "ERR") {
		t.Errorf("Q1 errored:\n%s", out)
	}
}

func TestFormatCellStates(t *testing.T) {
	if got := formatCell(Measurement{Err: errTest}); got != "ERR" {
		t.Errorf("err cell = %q", got)
	}
	if got := formatCell(Measurement{DNF: true}); got != "DNF" {
		t.Errorf("dnf cell = %q", got)
	}
	if got := formatCell(Measurement{Time: 1500 * time.Millisecond}); got != "1.500s" {
		t.Errorf("time cell = %q", got)
	}
}

var errTest = errTestType{}

type errTestType struct{}

func (errTestType) Error() string { return "test" }
