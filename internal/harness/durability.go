package harness

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"tlc"
)

// DurabilityPoint measures one WAL fsync policy: sequential paired
// insert/delete updates through the full commit path (encode, append,
// sync per policy, MVCC splice).
type DurabilityPoint struct {
	// Policy is the WAL durability policy: off, batch or always.
	Policy string `json:"policy"`
	// NsPerOp is the mean wall time per committed update.
	NsPerOp int64 `json:"ns_per_op"`
	// UpdatesPerSec is the sequential single-writer commit throughput.
	UpdatesPerSec float64 `json:"updates_per_sec"`
	// OverheadVsOff is NsPerOp relative to the off policy (1.0 = free).
	OverheadVsOff float64 `json:"overhead_vs_off"`
	// Syncs and Bytes are the log's own counters over the run: how many
	// fsyncs the policy actually issued and how much it wrote.
	Syncs int64 `json:"syncs"`
	Bytes int64 `json:"bytes"`
}

// DurabilityReport is the tlcbench -durability sweep: the same update
// workload under each WAL fsync policy, quantifying what crash safety
// costs at the commit path's throughput ceiling.
type DurabilityReport struct {
	// Factor and Shards describe the database; Ops is the committed
	// update count per policy.
	Factor float64           `json:"factor"`
	Shards int               `json:"shards"`
	Ops    int               `json:"ops"`
	Points []DurabilityPoint `json:"points"`
}

func (r *DurabilityReport) String() string {
	s := fmt.Sprintf("factor %g, %d shard(s), %d updates per policy\n", r.Factor, r.Shards, r.Ops)
	for _, p := range r.Points {
		s += fmt.Sprintf("  fsync=%-6s %10s/op  %8.0f updates/s  %5.2fx vs off  (%d fsyncs, %d bytes logged)\n",
			p.Policy, time.Duration(p.NsPerOp).Round(time.Microsecond),
			p.UpdatesPerSec, p.OverheadVsOff, p.Syncs, p.Bytes)
	}
	return s
}

// MeasureDurability loads XMark at factor once per policy and drives ops
// sequential updates (alternating marker insert and delete, so the store
// ends where it began) with the WAL attached under that policy. Each
// policy gets a fresh log directory under baseDir. The off policy is the
// no-durability baseline the others are normalized against.
func MeasureDurability(factor float64, shards, ops int, baseDir string) (*DurabilityReport, error) {
	if ops < 2 {
		ops = 2
	}
	if ops%2 == 1 {
		ops++ // inserts and deletes pair up
	}
	rep := &DurabilityReport{Factor: factor, Ops: ops}
	for _, policy := range []string{"off", "batch", "always"} {
		db, err := OpenDatabase(factor, shards)
		if err != nil {
			return nil, err
		}
		rep.Shards = db.NumShards()
		dir := filepath.Join(baseDir, "wal-"+policy)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			db.Close()
			return nil, err
		}
		if _, err := db.AttachWAL(tlc.WALOptions{Dir: dir, Fsync: policy}); err != nil {
			db.Close()
			return nil, err
		}
		// Warm the commit path before the clock starts.
		for i := 0; i < 2; i++ {
			if err := pairedUpdate(db); err != nil {
				db.Close()
				return nil, err
			}
		}
		start := time.Now()
		for i := 0; i < ops/2; i++ {
			if err := pairedUpdate(db); err != nil {
				db.Close()
				return nil, err
			}
		}
		wall := time.Since(start)
		pt := DurabilityPoint{
			Policy:        policy,
			NsPerOp:       wall.Nanoseconds() / int64(ops),
			UpdatesPerSec: float64(ops) / wall.Seconds(),
		}
		if ws, _, ok := db.WALStats(); ok {
			pt.Syncs = ws.Synced
			pt.Bytes = ws.Bytes
		}
		db.Close()
		rep.Points = append(rep.Points, pt)
	}
	base := rep.Points[0].NsPerOp
	for i := range rep.Points {
		if base > 0 {
			rep.Points[i].OverheadVsOff = float64(rep.Points[i].NsPerOp) / float64(base)
		}
	}
	return rep, nil
}

// pairedUpdate commits one marker insert and one delete.
func pairedUpdate(db *tlc.Database) error {
	if _, err := db.Update(tlc.UpdateRequest{
		Doc: "auction.xml", Op: tlc.UpdateInsert, Target: "/site",
		Fragment: "<durmark>probe</durmark>",
	}); err != nil {
		return fmt.Errorf("harness: durability insert: %w", err)
	}
	if _, err := db.Update(tlc.UpdateRequest{
		Doc: "auction.xml", Op: tlc.UpdateDelete, Target: "/site/durmark[1]",
	}); err != nil {
		return fmt.Errorf("harness: durability delete: %w", err)
	}
	return nil
}
