package harness

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"tlc"
	"tlc/internal/plancache"
)

// ContainMixReport measures the plan cache under a skewed multi-client
// query mix: every client draws an income threshold — mostly from a small
// hot set, sometimes a fresh value — and issues the same query shape with
// it. Exact repeats hit the cache directly; fresh, stricter thresholds are
// served by containment (a cached plan for a weaker predicate plus a
// residual filter), skipping parse, translate and planning entirely. The
// interesting numbers are how much of the workload never compiles.
type ContainMixReport struct {
	// Factor and Shards describe the database.
	Factor float64 `json:"factor"`
	Shards int     `json:"shards"`
	// Clients is the concurrent client goroutine count; Ops the total
	// queries issued across them.
	Clients int   `json:"clients"`
	Ops     int64 `json:"ops"`
	// Distinct is how many distinct query texts the mix produced.
	Distinct int `json:"distinct_queries"`
	// HitsExact / HitsContainment / Misses / Probes are the plan-cache
	// counter deltas over the run: Misses is the number of full compiles,
	// everything else skipped compilation.
	HitsExact       uint64 `json:"plan_hits_exact"`
	HitsContainment uint64 `json:"plan_hits_containment"`
	Misses          uint64 `json:"misses"`
	Probes          uint64 `json:"containment_probes"`
	// P50Ns/P99Ns are per-query latency quantiles (load + evaluate).
	P50Ns int64 `json:"p50_ns"`
	P99Ns int64 `json:"p99_ns"`
	// QueriesPerSec is the aggregate throughput; WallNs the wall time.
	QueriesPerSec float64 `json:"queries_per_sec"`
	WallNs        int64   `json:"wall_ns"`
}

func (r *ContainMixReport) String() string {
	return fmt.Sprintf(
		"factor %g, %d shard(s), %d clients, %d queries (%d distinct)\n"+
			"  plan cache: %d exact hits, %d containment hits, %d compiles (%d containment probes)\n"+
			"  latency: p50 %s  p99 %s; throughput %.0f queries/s in %s\n",
		r.Factor, r.Shards, r.Clients, r.Ops, r.Distinct,
		r.HitsExact, r.HitsContainment, r.Misses, r.Probes,
		time.Duration(r.P50Ns).Round(time.Microsecond), time.Duration(r.P99Ns).Round(time.Microsecond),
		r.QueriesPerSec, fmtDuration(time.Duration(r.WallNs)))
}

// containTemplate is the query shape every client issues; only the income
// threshold varies, which is exactly the situation the containment index
// exploits — the structural signature is shared, the literal is lifted.
const containTemplate = `FOR $p IN document("auction.xml")//person WHERE $p/profile/@income > %d RETURN $p/name`

// MeasureContainMix loads XMark at factor and runs totalOps queries across
// `clients` goroutines through one shared plan cache. Thresholds are drawn
// 80/20: mostly from a three-value hot set (exact hits after first touch),
// otherwise a fresh value at or above the hot minimum, so the fresh
// predicate implies a cached one and is served by containment.
func MeasureContainMix(factor float64, shards, clients, totalOps int) (*ContainMixReport, error) {
	if clients < 1 {
		clients = 1
	}
	if totalOps < clients {
		totalOps = clients
	}
	db, err := OpenDatabase(factor, shards)
	if err != nil {
		return nil, err
	}
	defer db.Close()
	cache := plancache.New(64)
	rep := &ContainMixReport{
		Factor: factor, Shards: db.NumShards(), Clients: clients,
	}

	// The hot set anchors the cache: its minimum threshold is the weakest
	// predicate in play, so every fresh draw (>= hotMin) is implied by it.
	hot := []int{50000, 80000, 95000}
	const hotMin, coldSpan = 50000, 49000
	distinct := map[int]bool{}
	var mu sync.Mutex
	lats := make([]int64, 0, totalOps)
	var firstErr error
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}

	before := cache.Stats()
	begin := time.Now()
	var wg sync.WaitGroup
	perClient := totalOps / clients
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			local := make([]int64, 0, perClient)
			for i := 0; i < perClient; i++ {
				var threshold int
				if rng.Float64() < 0.8 {
					threshold = hot[rng.Intn(len(hot))]
				} else {
					threshold = hotMin + rng.Intn(coldSpan)
				}
				query := fmt.Sprintf(containTemplate, threshold)
				start := time.Now()
				prep, _, err := cache.Load(context.Background(), db, plancache.Key{Query: query, Engine: tlc.TLC})
				if err != nil {
					fail(fmt.Errorf("contain-mix load %q: %w", query, err))
					return
				}
				res, err := db.Run(prep)
				if err != nil {
					fail(fmt.Errorf("contain-mix run %q: %w", query, err))
					return
				}
				_ = res.Len()
				local = append(local, time.Since(start).Nanoseconds())
				mu.Lock()
				distinct[threshold] = true
				mu.Unlock()
			}
			mu.Lock()
			lats = append(lats, local...)
			mu.Unlock()
		}(int64(g + 1))
	}
	wg.Wait()
	rep.WallNs = time.Since(begin).Nanoseconds()
	if firstErr != nil {
		return nil, firstErr
	}
	after := cache.Stats()
	rep.Ops = int64(len(lats))
	rep.Distinct = len(distinct)
	rep.HitsExact = after.HitsExact - before.HitsExact
	rep.HitsContainment = after.HitsContainment - before.HitsContainment
	rep.Misses = after.Misses - before.Misses
	rep.Probes = after.ContainmentProbes - before.ContainmentProbes
	rep.P50Ns = latQuantile(lats, 0.50)
	rep.P99Ns = latQuantile(lats, 0.99)
	if rep.WallNs > 0 {
		rep.QueriesPerSec = float64(rep.Ops) / (float64(rep.WallNs) / 1e9)
	}
	return rep, nil
}
