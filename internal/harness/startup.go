package harness

import (
	"fmt"
	"runtime"
	"time"

	"tlc"
	"tlc/internal/xmark"
)

// StartupReport compares the two cold-start paths at one scale factor:
// parsing and indexing the XML text versus validating and mapping a
// columnar snapshot. Wall times are single-shot (cold start is a
// one-time cost; the variance of interest is between paths, not runs),
// heap numbers are the post-GC live-heap growth attributable to the
// opened database — the snapshot path keeps its columns in the mapped
// file, so its heap cost is bookkeeping, not data.
type StartupReport struct {
	// Factor is the XMark scale factor the corpus was generated at.
	Factor float64 `json:"factor"`
	// Shards is the store shard count of both databases.
	Shards int `json:"shards"`
	// XMLBytes is the size of the serialized XML text.
	XMLBytes int64 `json:"xml_bytes"`
	// SnapshotBytes is the total size of the snapshot files.
	SnapshotBytes int64 `json:"snapshot_bytes"`
	// LoadNs is the wall time of LoadXMLString (parse + index + stats).
	LoadNs int64 `json:"load_ns"`
	// LoadHeapBytes is the live-heap growth the XML-loaded database holds.
	LoadHeapBytes int64 `json:"load_heap_bytes"`
	// OpenNs is the wall time of OpenSnapshot (validate + map).
	OpenNs int64 `json:"open_ns"`
	// OpenHeapBytes is the live-heap growth the snapshot-opened database
	// holds; its column data lives in the mapping, counted in MappedBytes.
	OpenHeapBytes int64 `json:"open_heap_bytes"`
	// MappedBytes is the snapshot-opened database's mmap'd region size.
	MappedBytes int64 `json:"mapped_bytes"`
	// Speedup is LoadNs / OpenNs.
	Speedup float64 `json:"speedup"`
}

func (r *StartupReport) String() string {
	return fmt.Sprintf(
		"factor %g, %d shard(s)\n"+
			"  xml load:      %10s  heap %8.1f MB   (%.1f MB xml)\n"+
			"  snapshot open: %10s  heap %8.1f MB   (%.1f MB mapped)\n"+
			"  speedup:       %.1fx\n",
		r.Factor, r.Shards,
		fmtDuration(time.Duration(r.LoadNs)), float64(r.LoadHeapBytes)/(1<<20), float64(r.XMLBytes)/(1<<20),
		fmtDuration(time.Duration(r.OpenNs)), float64(r.OpenHeapBytes)/(1<<20), float64(r.MappedBytes)/(1<<20),
		r.Speedup)
}

// liveHeap returns the post-GC live heap, for before/after deltas around
// a database open.
func liveHeap() int64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.HeapAlloc)
}

// MeasureStartup generates an XMark corpus at factor, then measures the
// two ways a process can come up with it: parsing the XML text into a
// fresh database, and opening a snapshot of that database written to dir
// (which must be empty or absent). The snapshot directory is left in
// place for inspection.
func MeasureStartup(factor float64, shards int, dir string) (*StartupReport, error) {
	xmlText := xmark.Generate("auction.xml", factor).XML(0)
	rep := &StartupReport{Factor: factor, XMLBytes: int64(len(xmlText))}

	// Cold-start path 1: parse and index the XML.
	h0 := liveHeap()
	t0 := time.Now()
	db := tlc.Open(tlc.WithShards(shards))
	if err := db.LoadXMLString("auction.xml", xmlText); err != nil {
		return nil, err
	}
	rep.LoadNs = time.Since(t0).Nanoseconds()
	rep.LoadHeapBytes = max(liveHeap()-h0-rep.XMLBytes, 0) // xmlText stays live; exclude it
	rep.Shards = db.NumShards()

	info, err := db.Snapshot(dir)
	if err != nil {
		return nil, err
	}
	rep.SnapshotBytes = info.Bytes
	if err := db.Close(); err != nil {
		return nil, err
	}
	db = nil //nolint:ineffassign // release the XML-loaded store before measuring the snapshot path

	// Cold-start path 2: validate and map the snapshot.
	h1 := liveHeap()
	t1 := time.Now()
	snap, err := tlc.OpenSnapshot(dir)
	if err != nil {
		return nil, err
	}
	rep.OpenNs = time.Since(t1).Nanoseconds()
	rep.OpenHeapBytes = max(liveHeap()-h1, 0)
	rep.MappedBytes = snap.MappedBytes()
	if err := snap.Close(); err != nil {
		return nil, err
	}
	if rep.OpenNs > 0 {
		rep.Speedup = float64(rep.LoadNs) / float64(rep.OpenNs)
	}
	return rep, nil
}
