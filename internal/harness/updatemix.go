package harness

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"tlc"
)

// mixQuery is the read side of the update-mix workload: a pattern scan
// with a predicate, cheap enough to repeat thousands of times but real
// enough (index probes, structural join, serialization) that writer
// interference would show in its latency.
const mixQuery = `FOR $p IN document("auction.xml")//person WHERE $p/profile/@income > 80000 RETURN $p/name`

// UpdateMixReport measures a mixed read/write workload against one
// document: concurrent readers evaluate mixQuery while one writer applies
// paired subtree inserts and deletes through the MVCC update path. The
// interesting numbers are the update throughput and how far the readers'
// latency quantiles move relative to the read-only baseline — with
// snapshot-isolated readers the answer should be "barely" (readers never
// block on the writer; the cost is cache pressure from version churn).
type UpdateMixReport struct {
	// Factor and Shards describe the database.
	Factor float64 `json:"factor"`
	Shards int     `json:"shards"`
	// ReadPct/WritePct is the requested operation mix (e.g. 95/5).
	ReadPct  int `json:"read_pct"`
	WritePct int `json:"write_pct"`
	// Readers is the concurrent reader goroutine count.
	Readers int `json:"readers"`
	// Reads, Writes and Conflicts count the mixed-phase operations; every
	// conflict was retried internally, so Writes all committed.
	Reads     int64 `json:"reads"`
	Writes    int64 `json:"writes"`
	Conflicts int64 `json:"conflicts"`
	// ReadOnlyP50Ns/P99Ns are the baseline read latencies with no writer.
	ReadOnlyP50Ns int64 `json:"read_only_p50_ns"`
	ReadOnlyP99Ns int64 `json:"read_only_p99_ns"`
	// MixedP50Ns/P99Ns are the read latencies with the writer running.
	MixedP50Ns int64 `json:"mixed_p50_ns"`
	MixedP99Ns int64 `json:"mixed_p99_ns"`
	// ReadsPerSec and WritesPerSec are mixed-phase throughputs; WallNs is
	// the mixed-phase wall time.
	ReadsPerSec  float64 `json:"reads_per_sec"`
	WritesPerSec float64 `json:"writes_per_sec"`
	WallNs       int64   `json:"wall_ns"`
}

func (r *UpdateMixReport) String() string {
	return fmt.Sprintf(
		"factor %g, %d shard(s), %d/%d read/write, %d readers\n"+
			"  read-only latency:  p50 %10s  p99 %10s\n"+
			"  mixed read latency: p50 %10s  p99 %10s\n"+
			"  throughput:         %.0f reads/s, %.0f updates/s (%d reads, %d updates, %d conflicts in %s)\n",
		r.Factor, r.Shards, r.ReadPct, r.WritePct, r.Readers,
		// Read latencies sit in the microsecond range, below fmtDuration's
		// resolution; Duration.Round keeps them legible.
		time.Duration(r.ReadOnlyP50Ns).Round(time.Microsecond), time.Duration(r.ReadOnlyP99Ns).Round(time.Microsecond),
		time.Duration(r.MixedP50Ns).Round(time.Microsecond), time.Duration(r.MixedP99Ns).Round(time.Microsecond),
		r.ReadsPerSec, r.WritesPerSec, r.Reads, r.Writes, r.Conflicts,
		fmtDuration(time.Duration(r.WallNs)))
}

// latQuantile returns the q-quantile (nearest-rank) of the latencies.
func latQuantile(lats []int64, q float64) int64 {
	if len(lats) == 0 {
		return 0
	}
	sorted := make([]int64, len(lats))
	copy(sorted, lats)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q * float64(len(sorted)))
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// MeasureUpdateMix loads XMark at factor and runs the mixed workload:
// totalOps operations split readPct/(100-readPct) between reads and
// updates. The baseline phase runs a slice of the reads with no writer;
// the mixed phase runs all reads across `readers` goroutines while one
// writer goroutine applies the updates (alternating insert and delete of
// a marker subtree, so the document ends byte-identical to how it
// started).
func MeasureUpdateMix(factor float64, shards, readPct, totalOps, readers int) (*UpdateMixReport, error) {
	if readPct <= 0 || readPct >= 100 {
		return nil, fmt.Errorf("harness: read percentage %d out of range (1..99)", readPct)
	}
	if readers < 1 {
		readers = 1
	}
	db, err := OpenDatabase(factor, shards)
	if err != nil {
		return nil, err
	}
	defer db.Close()
	rep := &UpdateMixReport{
		Factor: factor, Shards: db.NumShards(),
		ReadPct: readPct, WritePct: 100 - readPct, Readers: readers,
	}
	prep, err := db.Compile(mixQuery)
	if err != nil {
		return nil, err
	}

	writes := totalOps * (100 - readPct) / 100
	if writes < 2 {
		writes = 2
	}
	if writes%2 == 1 {
		writes++ // inserts and deletes pair up
	}
	reads := totalOps - writes
	if reads < readers {
		reads = readers
	}

	runRead := func() (int64, error) {
		start := time.Now()
		res, err := db.Run(prep)
		if err != nil {
			return 0, err
		}
		_ = res.Len()
		return time.Since(start).Nanoseconds(), nil
	}

	// Phase 1: read-only baseline (plus warmup before the clock matters).
	baseline := reads / 4
	if baseline > 500 {
		baseline = 500
	}
	if baseline < 50 {
		baseline = 50
	}
	for i := 0; i < 5; i++ {
		if _, err := runRead(); err != nil {
			return nil, err
		}
	}
	baseLats := make([]int64, 0, baseline)
	for i := 0; i < baseline; i++ {
		ns, err := runRead()
		if err != nil {
			return nil, err
		}
		baseLats = append(baseLats, ns)
	}
	rep.ReadOnlyP50Ns = latQuantile(baseLats, 0.50)
	rep.ReadOnlyP99Ns = latQuantile(baseLats, 0.99)

	// Phase 2: mixed. Readers share the read budget; one writer applies
	// the updates. Reader errors abort the run — a mixed workload must
	// never surface reader-visible failures.
	var (
		wg        sync.WaitGroup
		latMu     sync.Mutex
		mixedLats = make([]int64, 0, reads)
		errMu     sync.Mutex
		firstErr  error
	)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	begin := time.Now()
	perReader := reads / readers
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]int64, 0, perReader)
			for i := 0; i < perReader; i++ {
				ns, err := runRead()
				if err != nil {
					fail(fmt.Errorf("mixed-phase read: %w", err))
					return
				}
				local = append(local, ns)
			}
			latMu.Lock()
			mixedLats = append(mixedLats, local...)
			latMu.Unlock()
		}()
	}
	var writeWall time.Duration
	wg.Add(1)
	go func() {
		defer wg.Done()
		wstart := time.Now()
		for i := 0; i < writes/2; i++ {
			res, err := db.Update(tlc.UpdateRequest{
				Doc: "auction.xml", Op: tlc.UpdateInsert, Target: "/site",
				Fragment: "<mixmark>probe</mixmark>",
			})
			if err != nil {
				fail(fmt.Errorf("mixed-phase insert: %w", err))
				return
			}
			rep.Conflicts += int64(res.Conflicts)
			res, err = db.Update(tlc.UpdateRequest{
				Doc: "auction.xml", Op: tlc.UpdateDelete, Target: "/site/mixmark[1]",
			})
			if err != nil {
				fail(fmt.Errorf("mixed-phase delete: %w", err))
				return
			}
			rep.Conflicts += int64(res.Conflicts)
			rep.Writes += 2
		}
		writeWall = time.Since(wstart)
	}()
	wg.Wait()
	rep.WallNs = time.Since(begin).Nanoseconds()
	if firstErr != nil {
		return nil, firstErr
	}
	rep.Reads = int64(len(mixedLats))
	rep.MixedP50Ns = latQuantile(mixedLats, 0.50)
	rep.MixedP99Ns = latQuantile(mixedLats, 0.99)
	if rep.WallNs > 0 {
		rep.ReadsPerSec = float64(rep.Reads) / (float64(rep.WallNs) / 1e9)
	}
	if writeWall > 0 {
		rep.WritesPerSec = float64(rep.Writes) / writeWall.Seconds()
	}
	return rep, nil
}
