package harness

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"tlc"
)

// BenchResult is one (query, engine) measurement in machine-readable form
// — the go-test benchmark triple (ns/op, bytes/op, allocs/op) plus the
// result cardinality that makes cross-run comparisons meaningful.
type BenchResult struct {
	Query       string `json:"query"`
	Engine      string `json:"engine"`
	NsPerOp     int64  `json:"ns_per_op"`
	BytesPerOp  uint64 `json:"bytes_per_op"`
	AllocsPerOp uint64 `json:"allocs_per_op"`
	Results     int    `json:"results"`
	DNF         bool   `json:"dnf,omitempty"`
	Err         string `json:"error,omitempty"`
}

// BenchReport is the JSON document tlcbench -json writes: the Figure 15
// workload measurements plus the configuration they were taken under, so a
// later run can refuse to compare apples to oranges.
type BenchReport struct {
	Factor      float64       `json:"factor"`
	Reps        int           `json:"reps"`
	Parallelism int           `json:"parallelism"`
	Shards      int           `json:"shards,omitempty"`
	Results     []BenchResult `json:"results"`
	// Startup, when present, is the cold-start comparison of tlcbench
	// -startup: XML parse+index versus snapshot open (its own factor —
	// startup is typically measured at a larger scale than the workload).
	Startup *StartupReport `json:"startup,omitempty"`
	// UpdateMix, when present, is the mixed read/write workload of
	// tlcbench -update-mix: MVCC update throughput and the reader-latency
	// quantiles against a read-only baseline.
	UpdateMix *UpdateMixReport `json:"update_mix,omitempty"`
	// Disjuncts, when present, is the tlcbench -disjuncts ablation: native
	// logical-edge OR/NOT matching versus the legacy union-chain form.
	Disjuncts *DisjunctReport `json:"disjuncts,omitempty"`
	// ContainMix, when present, is the tlcbench -contain-mix workload:
	// plan-cache exact versus containment reuse under a skewed client mix.
	ContainMix *ContainMixReport `json:"contain_mix,omitempty"`
	// Durability, when present, is the tlcbench -durability sweep: update
	// commit cost under each WAL fsync policy (off, batch, always).
	Durability *DurabilityReport `json:"durability,omitempty"`
}

// Report flattens Figure 15 rows into a BenchReport.
func Report(rows []Row, engines []tlc.Engine, cfg Config) *BenchReport {
	cfg = cfg.withDefaults()
	if len(engines) == 0 {
		engines = cfg.Engines
	}
	rep := &BenchReport{Factor: cfg.Factor, Reps: cfg.Reps, Parallelism: cfg.Parallelism, Shards: cfg.Shards}
	for _, r := range rows {
		for _, e := range engines {
			m, ok := r.Cells[e.String()]
			if !ok {
				continue
			}
			br := BenchResult{
				Query:       r.QueryID,
				Engine:      e.String(),
				NsPerOp:     m.Time.Nanoseconds(),
				BytesPerOp:  m.AllocBytes,
				AllocsPerOp: m.Allocs,
				Results:     m.Results,
				DNF:         m.DNF,
			}
			if m.Err != nil {
				br.Err = m.Err.Error()
			}
			rep.Results = append(rep.Results, br)
		}
	}
	return rep
}

// WriteFile writes the report as indented JSON.
func (r *BenchReport) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadReport loads a report written by WriteFile.
func ReadReport(path string) (*BenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r BenchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("harness: bad report %s: %w", path, err)
	}
	return &r, nil
}

// CompareAllocs compares the current report's allocs/op against a committed
// baseline and returns one warning line per regression beyond tolerance
// (e.g. 0.10 = 10%). Allocation counts — unlike wall-clock times — are
// nearly machine-independent, which is what makes a committed baseline
// meaningful in CI; the caller decides whether warnings fail the build.
// Cells present in only one report, and runs at a different scale factor,
// are reported too (a factor mismatch makes every comparison meaningless).
func CompareAllocs(cur, base *BenchReport, tolerance float64) []string {
	var warns []string
	if cur.Factor != base.Factor {
		return []string{fmt.Sprintf(
			"factor mismatch: current %g vs baseline %g — allocation counts are not comparable",
			cur.Factor, base.Factor)}
	}
	baseline := make(map[string]BenchResult, len(base.Results))
	for _, b := range base.Results {
		baseline[b.Query+"/"+b.Engine] = b
	}
	seen := make(map[string]bool, len(cur.Results))
	for _, c := range cur.Results {
		key := c.Query + "/" + c.Engine
		seen[key] = true
		b, ok := baseline[key]
		if !ok {
			warns = append(warns, fmt.Sprintf("%s: no baseline entry", key))
			continue
		}
		if c.Err != "" || b.Err != "" || b.AllocsPerOp == 0 {
			continue
		}
		ratio := float64(c.AllocsPerOp) / float64(b.AllocsPerOp)
		if ratio > 1+tolerance {
			warns = append(warns, fmt.Sprintf(
				"%s: allocs/op regressed %.1f%% (%d -> %d)",
				key, (ratio-1)*100, b.AllocsPerOp, c.AllocsPerOp))
		}
	}
	for key := range baseline {
		if !seen[key] {
			warns = append(warns, fmt.Sprintf("%s: present in baseline but not in this run", key))
		}
	}
	sort.Strings(warns)
	return warns
}
