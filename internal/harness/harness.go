// Package harness drives the experiments of Section 6: it loads XMark
// data at a chosen scale factor, runs the Figure 15 workload under every
// engine, the Figure 16 rewrite comparison, and the Figure 17 scalability
// sweep, and renders the results as the paper's tables. Timing follows the
// paper's methodology: each query runs five times, the best and worst
// runs are dropped and the remaining three averaged; queries exceeding the
// deadline are reported as DNF.
package harness

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"tlc"
	"tlc/internal/store"
)

// Config controls an experiment run.
type Config struct {
	// Factor is the XMark scale factor (see xmark.SizesFor).
	Factor float64
	// Reps is the number of timed repetitions per query (default 5; the
	// best and worst are discarded when Reps >= 3).
	Reps int
	// Deadline aborts further repetitions of a query once one run exceeds
	// it; the query is reported as DNF (paper: 10 minutes).
	Deadline time.Duration
	// Engines to run, in column order; defaults to TLC, GTP, TAX, NAV.
	Engines []tlc.Engine
	// Parallelism is the intra-query worker budget passed to the engines.
	// It defaults to 1 — the paper measured strictly serial evaluation, so
	// the figures stay comparable unless parallelism is requested
	// explicitly (the -parallel flag of cmd/tlcbench).
	Parallelism int
	// PlannerOff disables the cost-based planner, running the plans exactly
	// as translated (the -planner=off ablation of cmd/tlcbench). The zero
	// value keeps the planner on.
	PlannerOff bool
	// Shards is the store shard count for databases the harness opens. It
	// defaults to 1 — a single shard keeps the figures comparable to the
	// paper's unpartitioned store — and -1 selects GOMAXPROCS (the
	// -shards=0 spelling of cmd/tlcbench).
	Shards int
}

func (c Config) withDefaults() Config {
	if c.Factor == 0 {
		c.Factor = 0.1
	}
	if c.Reps == 0 {
		c.Reps = 5
	}
	if c.Deadline == 0 {
		c.Deadline = 10 * time.Minute
	}
	if len(c.Engines) == 0 {
		c.Engines = tlc.Engines()
	}
	if c.Parallelism == 0 {
		c.Parallelism = 1
	}
	if c.Shards == 0 {
		c.Shards = 1
	}
	return c
}

// Measurement is one (query, engine) cell.
type Measurement struct {
	Time    time.Duration
	DNF     bool
	Err     error
	Results int
	Stats   store.Stats
	// AllocBytes and Allocs are the mean heap bytes and heap objects
	// allocated per evaluation (runtime.MemStats deltas averaged over the
	// timed repetitions). The harness runs queries serially, so the deltas
	// are attributable to the measured run.
	AllocBytes uint64
	Allocs     uint64
}

// Row is one Figure 15 table row.
type Row struct {
	QueryID string
	Comment string
	Cells   map[string]Measurement // keyed by engine name
}

// OpenDatabase loads a fresh database with an XMark document at the given
// factor, partitioned across the given shard count (< 1 selects
// GOMAXPROCS).
func OpenDatabase(factor float64, shards int) (*tlc.Database, error) {
	db := tlc.Open(tlc.WithShards(shards))
	if err := db.LoadXMark("auction.xml", factor); err != nil {
		return nil, err
	}
	return db, nil
}

// Measure runs one query text under one engine with the configured
// repetitions and returns the trimmed-mean measurement.
func Measure(db *tlc.Database, text string, engine tlc.Engine, cfg Config) Measurement {
	cfg = cfg.withDefaults()
	prep, err := db.Compile(text, tlc.WithEngine(engine),
		tlc.WithParallelism(cfg.Parallelism), tlc.WithPlanner(!cfg.PlannerOff))
	if err != nil {
		return Measurement{Err: err}
	}
	var times []time.Duration
	var m Measurement
	var allocBytes, allocs, samples uint64
	var ms0, ms1 runtime.MemStats
	for i := 0; i < cfg.Reps; i++ {
		db.ResetStats()
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		res, err := db.Run(prep)
		elapsed := time.Since(start)
		runtime.ReadMemStats(&ms1)
		if err != nil {
			return Measurement{Err: err}
		}
		allocBytes += ms1.TotalAlloc - ms0.TotalAlloc
		allocs += ms1.Mallocs - ms0.Mallocs
		samples++
		m.Results = res.Len()
		m.Stats = db.Stats()
		if elapsed > cfg.Deadline {
			// The over-deadline run is excluded from the trimmed mean: a DNF
			// cell reports the mean of the samples collected before the
			// deadline hit (zero when the very first run blew it), not a
			// mean skewed by the partial overlong sample.
			m.DNF = true
			break
		}
		times = append(times, elapsed)
	}
	m.Time = trimmedMean(times)
	if samples > 0 {
		m.AllocBytes = allocBytes / samples
		m.Allocs = allocs / samples
	}
	return m
}

// trimmedMean averages the times after dropping the best and the worst
// (when at least three samples exist) — the paper's footnote 6.
func trimmedMean(times []time.Duration) time.Duration {
	if len(times) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), times...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if len(sorted) >= 3 {
		sorted = sorted[1 : len(sorted)-1]
	}
	var sum time.Duration
	for _, t := range sorted {
		sum += t
	}
	return sum / time.Duration(len(sorted))
}

// RunFigure15 runs the full workload under every configured engine.
func RunFigure15(db *tlc.Database, cfg Config) []Row {
	cfg = cfg.withDefaults()
	var rows []Row
	for _, q := range tlc.Workload() {
		row := Row{QueryID: q.ID, Comment: q.Comment, Cells: make(map[string]Measurement)}
		for _, e := range cfg.Engines {
			row.Cells[e.String()] = Measure(db, q.Text, e, cfg)
		}
		rows = append(rows, row)
	}
	return rows
}

// RunFigure16 runs the rewrite-applicable queries under plain TLC and the
// optimized (OPT) configuration.
func RunFigure16(db *tlc.Database, cfg Config) []Row {
	cfg = cfg.withDefaults()
	var rows []Row
	for _, q := range tlc.Workload() {
		if !q.Rewritable {
			continue
		}
		row := Row{QueryID: q.ID, Comment: q.Comment, Cells: make(map[string]Measurement)}
		row.Cells["TLC"] = Measure(db, q.Text, tlc.TLC, cfg)
		row.Cells["OPT"] = Measure(db, q.Text, tlc.TLCOpt, cfg)
		rows = append(rows, row)
	}
	return rows
}

// ScalePoint is one (factor, query) measurement of Figure 17.
type ScalePoint struct {
	Factor  float64
	QueryID string
	Time    time.Duration
}

// Figure17Queries are the queries plotted in Figure 17.
var Figure17Queries = []string{"x3", "x5", "x13", "Q1", "Q2"}

// RunFigure17 sweeps the TLC engine over the given factors for the
// Figure 17 query set. A fresh database is loaded per factor.
func RunFigure17(factors []float64, cfg Config) ([]ScalePoint, error) {
	cfg = cfg.withDefaults()
	var out []ScalePoint
	for _, f := range factors {
		db, err := OpenDatabase(f, cfg.Shards)
		if err != nil {
			return nil, err
		}
		for _, id := range Figure17Queries {
			q, ok := findQuery(id)
			if !ok {
				return nil, fmt.Errorf("harness: unknown query %q", id)
			}
			m := Measure(db, q.Text, tlc.TLC, cfg)
			if m.Err != nil {
				return nil, fmt.Errorf("harness: %s at factor %g: %w", id, f, m.Err)
			}
			out = append(out, ScalePoint{Factor: f, QueryID: id, Time: m.Time})
		}
	}
	return out, nil
}

func findQuery(id string) (tlc.WorkloadQuery, bool) {
	for _, q := range tlc.Workload() {
		if q.ID == id {
			return q, true
		}
	}
	return tlc.WorkloadQuery{}, false
}

// FormatFigure15 renders the rows as the paper's Figure 15 table.
func FormatFigure15(rows []Row, engines []tlc.Engine) string {
	if len(engines) == 0 {
		engines = tlc.Engines()
	}
	var sb strings.Builder
	sb.WriteString(fmt.Sprintf("%-5s", ""))
	// Paper column order: TLC, GTP, TAX, NAV.
	for _, e := range engines {
		sb.WriteString(fmt.Sprintf("%10s", e.String()))
	}
	sb.WriteString("   Comments\n")
	for _, r := range rows {
		sb.WriteString(fmt.Sprintf("%-5s", r.QueryID))
		for _, e := range engines {
			sb.WriteString(fmt.Sprintf("%10s", formatCell(r.Cells[e.String()])))
		}
		sb.WriteString("   " + r.Comment + "\n")
	}
	return sb.String()
}

// FormatFigure16 renders the TLC-vs-OPT comparison.
func FormatFigure16(rows []Row) string {
	var sb strings.Builder
	sb.WriteString(fmt.Sprintf("%-5s%10s%10s%10s\n", "", "TLC", "OPT", "speedup"))
	for _, r := range rows {
		t, o := r.Cells["TLC"], r.Cells["OPT"]
		speedup := "-"
		if o.Time > 0 {
			speedup = fmt.Sprintf("%.2fx", float64(t.Time)/float64(o.Time))
		}
		sb.WriteString(fmt.Sprintf("%-5s%10s%10s%10s\n",
			r.QueryID, formatCell(t), formatCell(o), speedup))
	}
	return sb.String()
}

// FormatFigure17 renders the scalability sweep as factor rows × query
// columns.
func FormatFigure17(points []ScalePoint) string {
	factors := []float64{}
	seen := map[float64]bool{}
	for _, p := range points {
		if !seen[p.Factor] {
			seen[p.Factor] = true
			factors = append(factors, p.Factor)
		}
	}
	var sb strings.Builder
	sb.WriteString(fmt.Sprintf("%-8s", "factor"))
	for _, id := range Figure17Queries {
		sb.WriteString(fmt.Sprintf("%10s", id))
	}
	sb.WriteByte('\n')
	for _, f := range factors {
		sb.WriteString(fmt.Sprintf("%-8g", f))
		for _, id := range Figure17Queries {
			for _, p := range points {
				if p.Factor == f && p.QueryID == id {
					sb.WriteString(fmt.Sprintf("%10s", fmtDuration(p.Time)))
				}
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func formatCell(m Measurement) string {
	switch {
	case m.Err != nil:
		return "ERR"
	case m.DNF:
		return "DNF"
	default:
		return fmtDuration(m.Time)
	}
}

func fmtDuration(d time.Duration) string {
	return fmt.Sprintf("%.3fs", d.Seconds())
}
