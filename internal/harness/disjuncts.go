package harness

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"tlc"
)

// heapAllocs reads the cumulative heap-object count (runtime.MemStats
// Mallocs); deltas around a serial run attribute allocations to it.
func heapAllocs() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Mallocs
}

// DisjunctQueries is the OR/NOT workload of the disjunct ablation: every
// WHERE clause is a boolean combination the translator can compile either
// natively (logical-operator edges on one pattern tree, one index probe
// per tag) or through the legacy union-chain form (optional "*" branches
// plus a disjunctive post-filter). The queries cover value disjuncts,
// existence disjuncts, and negation mixed into an OR.
var DisjunctQueries = []tlc.WorkloadQuery{
	{ID: "d1", Text: `FOR $p IN document("auction.xml")//person WHERE $p/profile/education = "Graduate School" or $p/profile/education = "College" RETURN $p/name`,
		Comment: "2-way value disjunction on one path"},
	{ID: "d2", Text: `FOR $p IN document("auction.xml")//person WHERE $p/homepage or $p/phone or $p/address/city = "Dallas" RETURN $p/name`,
		Comment: "3-way existence/value disjunction"},
	{ID: "d3", Text: `FOR $p IN document("auction.xml")//person WHERE not($p/watches) or $p/profile/@income > 95000 RETURN $p/name`,
		Comment: "negated branch inside a disjunction"},
	{ID: "d4", Text: `FOR $p IN document("auction.xml")//person WHERE $p/age > 25 and ($p/profile/education = "College" or $p/homepage) RETURN $p/name`,
		Comment: "disjunction under a conjunction"},
}

// DisjunctRow is one query of the disjunct ablation: native logical-edge
// matching versus the legacy union-chain compilation, same engine, same
// data.
type DisjunctRow struct {
	Query       string  `json:"query"`
	NativeNs    int64   `json:"native_ns"`
	LegacyNs    int64   `json:"legacy_ns"`
	Speedup     float64 `json:"speedup"`
	Results     int     `json:"results"`
	NativeAlloc uint64  `json:"native_allocs_per_op"`
	LegacyAlloc uint64  `json:"legacy_allocs_per_op"`
	Err         string  `json:"error,omitempty"`
}

// DisjunctReport is the -disjuncts section of the tlcbench JSON report.
type DisjunctReport struct {
	Factor float64       `json:"factor"`
	Shards int           `json:"shards"`
	Reps   int           `json:"reps"`
	Engine string        `json:"engine"`
	Rows   []DisjunctRow `json:"rows"`
	// Geomean is the geometric mean of the per-query speedups — the
	// headline native-vs-legacy number, robust to one query dominating.
	Geomean float64 `json:"speedup_geomean"`
}

func (r *DisjunctReport) String() string {
	var out string
	out += fmt.Sprintf("%-5s%12s%12s%10s%10s\n", "", "native", "legacy", "speedup", "results")
	for _, row := range r.Rows {
		if row.Err != "" {
			out += fmt.Sprintf("%-5s  ERR: %s\n", row.Query, row.Err)
			continue
		}
		out += fmt.Sprintf("%-5s%12s%12s%9.2fx%10d\n", row.Query,
			fmtDuration(time.Duration(row.NativeNs)), fmtDuration(time.Duration(row.LegacyNs)),
			row.Speedup, row.Results)
	}
	if r.Geomean > 0 {
		out += fmt.Sprintf("geomean speedup: %.2fx\n", r.Geomean)
	}
	return out
}

// MeasureDisjuncts runs the disjunct workload twice per query — once with
// the native logical-edge compilation and once with the legacy union-chain
// ablation — and reports the trimmed-mean times. Both compilations must
// return the same result multiset; a mismatch is reported as the row's
// error, because a fast wrong answer is not a speedup.
func MeasureDisjuncts(db *tlc.Database, cfg Config) *DisjunctReport {
	cfg = cfg.withDefaults()
	// The per-query times sit around a millisecond, where a trimmed mean
	// of three keeps a single sample and scheduler noise swamps the ratio;
	// the ablation pins its own floor of nine repetitions.
	if cfg.Reps < 9 {
		cfg.Reps = 9
	}
	rep := &DisjunctReport{Factor: cfg.Factor, Shards: db.NumShards(), Reps: cfg.Reps, Engine: tlc.TLC.String()}
	for _, q := range DisjunctQueries {
		row := DisjunctRow{Query: q.ID}
		native := measureOpts(db, q.Text, cfg, tlc.WithEngine(tlc.TLC))
		legacy := measureOpts(db, q.Text, cfg, tlc.WithEngine(tlc.TLC), tlc.WithLegacyDisjuncts(true))
		switch {
		case native.Err != nil:
			row.Err = "native: " + native.Err.Error()
		case legacy.Err != nil:
			row.Err = "legacy: " + legacy.Err.Error()
		case native.Results != legacy.Results:
			row.Err = fmt.Sprintf("result mismatch: native %d vs legacy %d", native.Results, legacy.Results)
		default:
			row.NativeNs = native.Time.Nanoseconds()
			row.LegacyNs = legacy.Time.Nanoseconds()
			row.Results = native.Results
			row.NativeAlloc = native.Allocs
			row.LegacyAlloc = legacy.Allocs
			if native.Time > 0 {
				row.Speedup = float64(legacy.Time) / float64(native.Time)
			}
		}
		rep.Rows = append(rep.Rows, row)
	}
	var logSum float64
	var n int
	for _, row := range rep.Rows {
		if row.Err == "" && row.Speedup > 0 {
			logSum += math.Log(row.Speedup)
			n++
		}
	}
	if n > 0 {
		rep.Geomean = math.Exp(logSum / float64(n))
	}
	return rep
}

// measureOpts is Measure with extra compile options (the ablation toggle).
func measureOpts(db *tlc.Database, text string, cfg Config, opts ...tlc.Option) Measurement {
	cfg = cfg.withDefaults()
	opts = append(opts, tlc.WithParallelism(cfg.Parallelism), tlc.WithPlanner(!cfg.PlannerOff))
	prep, err := db.Compile(text, opts...)
	if err != nil {
		return Measurement{Err: err}
	}
	// Warm the store's postings and the runtime before the clock matters,
	// and size the inner batch off the warmup time: sub-millisecond runs
	// are batched until a sample spans ~10ms, so scheduler noise divides
	// across the batch instead of dominating a single run.
	var warm time.Duration
	for i := 0; i < 2; i++ {
		start := time.Now()
		if _, err := db.Run(prep); err != nil {
			return Measurement{Err: err}
		}
		warm = time.Since(start)
	}
	batch := 1
	if warm > 0 && warm < 10*time.Millisecond {
		batch = int(10*time.Millisecond/warm) + 1
	}
	var times []time.Duration
	var m Measurement
	var allocs, samples uint64
	for i := 0; i < cfg.Reps; i++ {
		a0 := heapAllocs()
		start := time.Now()
		var res *tlc.Result
		var err error
		for j := 0; j < batch; j++ {
			res, err = db.Run(prep)
			if err != nil {
				return Measurement{Err: err}
			}
		}
		elapsed := time.Since(start) / time.Duration(batch)
		allocs += (heapAllocs() - a0) / uint64(batch)
		samples++
		m.Results = res.Len()
		if elapsed > cfg.Deadline {
			m.DNF = true
			break
		}
		times = append(times, elapsed)
	}
	m.Time = trimmedMean(times)
	if samples > 0 {
		m.Allocs = allocs / samples
	}
	return m
}
