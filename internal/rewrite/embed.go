// Package rewrite implements the redundancy-eliminating plan rewrites of
// Section 4 of the TLC paper: pattern tree reuse (branch merging and
// extension-select reuse, Section 4.1), the Flatten rewrite (Section 4.2,
// Figure 10) and the Shadow/Illuminate rewrite (Section 4.3, Figure 12).
// The entry point Optimize applies them in the order the paper's "OPT"
// plans use: merge duplicate branches, reuse existing matches for
// extension selects, and break up clustered matches with Flatten — or,
// when a later operator needs the suppressed siblings back, with Shadow
// and a matching Illuminate in place of the redundant re-match.
package rewrite

import (
	"tlc/internal/pattern"
)

// extra is a pattern branch of the richer tree (C) that the poorer tree
// (B) lacks: it must be re-matched by an extension select anchored at the
// B-side node corresponding to the C-side parent.
type extra struct {
	anchorLCL int
	edge      pattern.Edge
}

// embed tries to embed the pattern subtree b into the pattern subtree c
// (tree(B) ⊆ tree(C) in the paper's notation). On success it returns a
// mapping from the labels of c's matched nodes to the labels of the
// corresponding b nodes, plus the branches of c that b lacks, anchored at
// b labels.
func embed(b, c *pattern.Node) (lclMap map[int]int, extras []extra, ok bool) {
	lclMap = make(map[int]int)
	if !nodesCompatible(b, c) {
		return nil, nil, false
	}
	if !embedInto(b, c, lclMap, &extras) {
		return nil, nil, false
	}
	return lclMap, extras, true
}

func embedInto(b, c *pattern.Node, lclMap map[int]int, extras *[]extra) bool {
	if c.LCL > 0 && b.LCL > 0 {
		lclMap[c.LCL] = b.LCL
	}
	usedC := make([]bool, len(c.Edges))
	// Every b edge must match a distinct c edge.
	for _, be := range b.Edges {
		matched := false
		for i, ce := range c.Edges {
			if usedC[i] || be.Axis != ce.Axis || be.Spec != ce.Spec || !nodesCompatible(be.To, ce.To) {
				continue
			}
			// Tentatively recurse; embedInto only mutates on success paths,
			// so a failed branch match just tries the next candidate.
			sub := make(map[int]int)
			var subExtras []extra
			if embedInto(be.To, ce.To, sub, &subExtras) {
				for k, v := range sub {
					lclMap[k] = v
				}
				*extras = append(*extras, subExtras...)
				usedC[i] = true
				matched = true
				break
			}
		}
		if !matched {
			return false
		}
	}
	// c's unmatched edges become extras anchored at the b node.
	for i, ce := range c.Edges {
		if !usedC[i] {
			*extras = append(*extras, extra{anchorLCL: b.LCL, edge: ce})
		}
	}
	return true
}

// nodesCompatible reports whether two pattern nodes perform the same test
// and carry the same predicate.
func nodesCompatible(a, b *pattern.Node) bool {
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case pattern.TestTag:
		if a.Tag != b.Tag {
			return false
		}
	case pattern.TestDocRoot:
		if a.Doc != b.Doc {
			return false
		}
	case pattern.TestLC:
		if a.InClass != b.InClass {
			return false
		}
	}
	switch {
	case a.Pred == nil && b.Pred == nil:
		return true
	case a.Pred == nil || b.Pred == nil:
		return false
	default:
		return *a.Pred == *b.Pred
	}
}

// subtreeLCLs collects the labels of a pattern subtree.
func subtreeLCLs(n *pattern.Node) []int {
	var out []int
	var walk func(*pattern.Node)
	walk = func(p *pattern.Node) {
		if p.LCL > 0 {
			out = append(out, p.LCL)
		}
		for _, e := range p.Edges {
			walk(e.To)
		}
	}
	walk(n)
	return out
}
