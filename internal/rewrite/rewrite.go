package rewrite

import (
	"tlc/internal/algebra"
	"tlc/internal/pattern"
)

// Optimize applies the Section 4 rewrites to a TLC plan and returns the
// (possibly new) plan root together with the number of rewrites applied.
// The plan is rewritten in place where possible; callers should use the
// returned root.
func Optimize(root algebra.Op) (algebra.Op, int) {
	applied := 0
	for {
		// Flatten / Shadow-Illuminate first: they need the original
		// duplicate branches in place (merging or reusing them first would
		// hide the Figure 10/12 shapes).
		root1, n1 := flattenRewrite(root)
		root2, n2 := shadowNativeRewrite(root1)
		root3, n3 := mergeDuplicateBranches(root2)
		root4, n4 := reuseExtensionSelects(root3)
		root = root4
		applied += n1 + n2 + n3 + n4
		if n1+n2+n3+n4 == 0 {
			break
		}
	}
	return root, applied
}

// definesClasses returns the labels op introduces into its output trees
// (as opposed to labels it reads). A remap must not cross a definition
// point: above a Construct that labels its copies with NewLCL, references
// to that label mean the copies, not the matched originals.
func definesClasses(op algebra.Op) []int {
	switch x := op.(type) {
	case *algebra.Select:
		if x.APT == nil || x.APT.Root == nil {
			return nil
		}
		var out []int
		for _, n := range x.APT.Nodes() {
			if n.LCL > 0 {
				out = append(out, n.LCL)
			}
		}
		return out
	case *algebra.Aggregate:
		return []int{x.NewLCL}
	case *algebra.Join:
		return []int{x.RootLCL}
	case *algebra.Construct:
		var out []int
		var walk func(c *pattern.ConstructNode)
		walk = func(c *pattern.ConstructNode) {
			if c.NewLCL > 0 {
				out = append(out, c.NewLCL)
			}
			for _, ch := range c.Children {
				walk(ch)
			}
		}
		if x.Pattern != nil {
			walk(x.Pattern)
		}
		return out
	default:
		return nil
	}
}

// remapAbove applies the class remap to every operator strictly above
// `from` along its consumer chain, dropping a label from the remap once an
// operator redefines it.
func remapAbove(root algebra.Op, from algebra.Op, m map[int]int) {
	p := analyze(root)
	chain, ok := p.chainAbove(from)
	if !ok {
		// Fall back to a conservative global remap (rewrites only fire on
		// linear chains, so this is unreachable in practice).
		for _, op := range p.ops {
			algebra.RemapOf(op, m)
		}
		return
	}
	active := make(map[int]int, len(m))
	for k, v := range m {
		active[k] = v
	}
	for _, op := range chain {
		if len(active) == 0 {
			return
		}
		algebra.RemapOf(op, active)
		for _, def := range definesClasses(op) {
			delete(active, def)
		}
	}
}

// plan is a lightweight view of the operator DAG with parent links,
// rebuilt before each rewrite because rewrites splice operators.
type plan struct {
	root    algebra.Op
	ops     []algebra.Op
	parents map[algebra.Op][]algebra.Op
}

func analyze(root algebra.Op) *plan {
	p := &plan{root: root, parents: make(map[algebra.Op][]algebra.Op)}
	p.ops = algebra.Ops(root)
	for _, op := range p.ops {
		for _, in := range op.Inputs() {
			p.parents[in] = append(p.parents[in], op)
		}
	}
	return p
}

// chainAbove returns the consumers of op from just above it to the root,
// provided the path is linear (every node has exactly one consumer). A
// non-linear region returns ok=false and the rewrite is skipped.
func (p *plan) chainAbove(op algebra.Op) ([]algebra.Op, bool) {
	var chain []algebra.Op
	cur := op
	for cur != p.root {
		ps := p.parents[cur]
		if len(ps) != 1 {
			return nil, false
		}
		cur = ps[0]
		chain = append(chain, cur)
	}
	return chain, true
}

// spliceAbove inserts build(below) between below and its single consumer
// (or re-roots the plan). Returns the new root.
func (p *plan) spliceAbove(below algebra.Op, build func(algebra.Op) algebra.Op) algebra.Op {
	nw := build(below)
	if below == p.root {
		return nw
	}
	for _, par := range p.parents[below] {
		algebra.ReplaceInput(par, below, nw)
	}
	return p.root
}

// spliceOut removes op (single-input, single-consumer) from the plan.
func (p *plan) spliceOut(op algebra.Op) algebra.Op {
	in := op.Inputs()[0]
	if op == p.root {
		return in
	}
	for _, par := range p.parents[op] {
		algebra.ReplaceInput(par, op, in)
	}
	return p.root
}

func refsAny(op algebra.Op, set map[int]bool) bool {
	for _, r := range algebra.RefsOf(op) {
		if set[r] {
			return true
		}
	}
	return false
}

func toSet(lcls []int) map[int]bool {
	m := make(map[int]bool, len(lcls))
	for _, l := range lcls {
		m[l] = true
	}
	return m
}

// docSelects returns the document-rooted Selects of the plan.
func (p *plan) docSelects() []*algebra.Select {
	var out []*algebra.Select
	for _, op := range p.ops {
		if s, ok := op.(*algebra.Select); ok && s.APT != nil && s.APT.Root != nil &&
			s.APT.Root.Kind == pattern.TestDocRoot {
			out = append(out, s)
		}
	}
	return out
}

// mergeDuplicateBranches implements pattern tree reuse inside one APT
// (Section 4.1): two sibling branches with identical axis and matching
// specification where one embeds into the other collapse into the richer
// branch, and every consumer of the eliminated labels is redirected. This
// is the rewrite that merges the two "*" bidder branches of the Q2 inner
// select.
func mergeDuplicateBranches(root algebra.Op) (algebra.Op, int) {
	applied := 0
	for {
		p := analyze(root)
		changed := false
		for _, sel := range p.docSelects() {
			for _, node := range sel.APT.Nodes() {
				if merged, m := mergeSiblings(node); merged {
					remapAbove(root, sel, m)
					applied++
					changed = true
					break
				}
			}
			if changed {
				break
			}
		}
		if !changed {
			return root, applied
		}
	}
}

// mergeSiblings merges the first embeddable same-spec sibling pair under n.
func mergeSiblings(n *pattern.Node) (bool, map[int]int) {
	for i := 0; i < len(n.Edges); i++ {
		for j := 0; j < len(n.Edges); j++ {
			if i == j {
				continue
			}
			ei, ej := n.Edges[i], n.Edges[j]
			if ei.Axis != ej.Axis || ei.Spec != ej.Spec {
				continue
			}
			// Branch i is redundant when it embeds into branch j (branch j
			// matches at least everything branch i matches). embed maps
			// j-side labels to i-side labels for the shared structure;
			// inverting it redirects the dropped branch's labels to the
			// surviving one.
			m, _, ok := embed(ei.To, ej.To)
			if !ok {
				continue
			}
			n.Edges = append(n.Edges[:i:i], n.Edges[i+1:]...)
			inv := make(map[int]int, len(m))
			for jLbl, iLbl := range m {
				inv[iLbl] = jLbl
			}
			return true, inv
		}
	}
	return false, nil
}
