package rewrite

import (
	"tlc/internal/algebra"
	"tlc/internal/pattern"
)

// shadowNativeRewrite implements the Shadow/Illuminate rewrite in its
// original Figure 12 form: a document Select matches a branch B with a
// flat edge ("-"/"?"), and a later extension Select anchored at the same
// node re-matches the branch with a nested edge ("+"/"*") to cluster all
// siblings for the output. The rewrite upgrades the Select's edge to the
// nested specification, inserts a Shadow directly above the Select — which
// reproduces the flat multiplication while *retaining* the suppressed
// siblings as shadowed nodes — and replaces the re-matching extension
// Select with an Illuminate. Intermediate projections are patched to carry
// the shadowed class, and any branches the extension Select had beyond B
// are re-attached by a small extension Select after the Illuminate.
func shadowNativeRewrite(root algebra.Op) (algebra.Op, int) {
	applied := 0
	for {
		p := analyze(root)
		newRoot, ok := shadowOnce(p)
		if !ok {
			return root, applied
		}
		root = newRoot
		applied++
	}
}

func shadowOnce(p *plan) (algebra.Op, bool) {
	for _, sel := range p.docSelects() {
		chain, linear := p.chainAbove(sel)
		if !linear {
			continue
		}
		for _, a := range sel.APT.Nodes() {
			if a.LCL <= 0 {
				continue
			}
			for bi := range a.Edges {
				eb := &a.Edges[bi]
				// Only "-" edges: Shadow (like Flatten) emits nothing for
				// an empty sibling class, so it cannot reproduce the
				// pass-through of "?".
				if eb.Spec != pattern.One {
					continue
				}
				rm := findNestedRematch(chain, a.LCL, *eb)
				if rm == nil {
					continue
				}
				// No operator may use B's classes after the re-match (they
				// would observe the cluster where they expected the flat
				// multiplication).
				bSet := toSet(subtreeLCLs(eb.To))
				safe := true
				for i := rm.idx + 1; i < len(chain); i++ {
					if refsAny(chain[i], bSet) {
						safe = false
						break
					}
				}
				// Flatten and Shadow on the same classes in between would
				// interfere.
				for i := 0; i < rm.idx && safe; i++ {
					switch x := chain[i].(type) {
					case *algebra.Flatten:
						safe = !(bSet[x.CLCL] || x.PLCL == a.LCL)
					case *algebra.Shadow:
						safe = !(bSet[x.CLCL] || x.PLCL == a.LCL)
					}
				}
				if !safe {
					continue
				}
				return applyShadowNative(p, sel, a, eb, rm, bSet), true
			}
		}
	}
	return nil, false
}

// rematch describes a redundant re-matching extension Select and how to
// reconcile it with the select branch B.
type rematch struct {
	es *algebra.Select
	// m maps the extension select's labels onto B's labels.
	m map[int]int
	// postIlluminate are branches the extension select has beyond B,
	// re-matched after the Illuminate.
	postIlluminate []extra
	// moveOut are B's branches beyond the extension select's needs: they
	// are detached from the select's APT and re-matched by an extension
	// select placed after the Shadow, so that B's class membership matches
	// what the re-match would have produced (all siblings, not only the
	// ones satisfying B's sub-branches).
	moveOut bool
	idx     int
}

// findNestedRematch looks along the chain for an extension Select anchored
// at anchorLCL whose single nested edge matches branch eb in either
// direction: tree(B) ⊆ tree(C) (the paper's phase-1 condition — C's
// surplus re-matches after Illuminate) or C bare with tree(C) ⊂ tree(B)
// (B's sub-branches move after the Shadow).
func findNestedRematch(chain []algebra.Op, anchorLCL int, eb pattern.Edge) *rematch {
	for i, op := range chain {
		es, ok := op.(*algebra.Select)
		if !ok || es.APT == nil || es.APT.Root == nil || es.APT.Root.Kind != pattern.TestLC {
			continue
		}
		if es.APT.Root.InClass != anchorLCL || len(es.APT.Root.Edges) != 1 {
			continue
		}
		ee := es.APT.Root.Edges[0]
		if !ee.Spec.Nested() || ee.Axis != eb.Axis {
			continue
		}
		if m, extras, ok := embed(eb.To, ee.To); ok {
			return &rematch{es: es, m: invertMap(m), postIlluminate: extras, idx: i}
		}
		// Reverse direction: the re-match asks for bare nodes that the
		// select branch restricts further.
		if len(ee.To.Edges) == 0 && nodesCompatible(eb.To, ee.To) && len(eb.To.Edges) > 0 {
			m := map[int]int{}
			if ee.To.LCL > 0 && eb.To.LCL > 0 {
				m[ee.To.LCL] = eb.To.LCL
			}
			return &rematch{es: es, m: m, moveOut: true, idx: i}
		}
	}
	return nil
}

// invertMap flips an embed mapping (c-label → b-label) into the
// (extension-label → branch-label) orientation finishIlluminate expects.
func invertMap(m map[int]int) map[int]int {
	// embed(b=eb.To, c=ee.To) maps ee labels to eb labels already.
	return m
}

func applyShadowNative(p *plan, sel *algebra.Select, a *pattern.Node,
	eb *pattern.Edge, rm *rematch, bSet map[int]bool) algebra.Op {

	// Upgrade the flat edge to the nested specification and reproduce the
	// flat multiplication with a Shadow directly above the Select.
	eb.Spec = pattern.OneOrMore
	bLCL := eb.To.LCL

	// In the reverse direction, B's sub-branches leave the select (so the
	// nested class covers *all* siblings, as the re-match would) and are
	// re-applied to the single active sibling after the Shadow.
	var moved []pattern.Edge
	if rm.moveOut {
		moved = eb.To.Edges
		eb.To.Edges = nil
	}
	p.root = p.spliceAbove(sel, func(in algebra.Op) algebra.Op {
		out := algebra.Op(algebra.NewShadow(in, a.LCL, bLCL))
		if len(moved) > 0 {
			anchor := pattern.NewLCAnchor(0, bLCL)
			anchor.Edges = moved
			out = algebra.NewExtendSelect(out, &pattern.Tree{Root: anchor})
		}
		return out
	})
	finishIlluminate(p, sel, rm.es, bLCL, bSet, rm.m, rm.postIlluminate)
	return p.root
}
