package rewrite

import (
	"sort"
	"strings"
	"testing"

	"tlc/internal/algebra"
	"tlc/internal/seq"
	"tlc/internal/store"
	"tlc/internal/translate"
	"tlc/internal/xquery"
)

const testAuction = `<site>
  <people>
    <person id="p0"><name>Alice</name><age>30</age></person>
    <person id="p1"><name>Bob</name><age>20</age></person>
    <person id="p2"><name>Carol</name><age>40</age></person>
  </people>
  <open_auctions>
    <open_auction id="a0">
      <bidder><personref person="p0"/><increase>3</increase></bidder>
      <bidder><personref person="p2"/><increase>4</increase></bidder>
      <bidder><personref person="p0"/><increase>5</increase></bidder>
      <bidder><personref person="p2"/><increase>6</increase></bidder>
      <bidder><personref person="p0"/><increase>7</increase></bidder>
      <bidder><personref person="p2"/><increase>8</increase></bidder>
      <quantity>2</quantity>
    </open_auction>
    <open_auction id="a1">
      <bidder><personref person="p2"/><increase>1</increase></bidder>
      <quantity>5</quantity>
    </open_auction>
    <open_auction id="a2"><quantity>1</quantity></open_auction>
  </open_auctions>
</site>`

const q1Text = `
FOR $p IN document("auction.xml")//person
FOR $o IN document("auction.xml")//open_auction
WHERE count($o/bidder) > 5 AND $p/age > 25
  AND $p/@id = $o/bidder//@person
RETURN
<person name={$p/name/text()}> $o/bidder </person>`

const q2Text = `
FOR $p IN document("auction.xml")//person
LET $a := FOR $o IN document("auction.xml")//open_auction
          WHERE count($o/bidder) > 5
            AND $p/@id = $o/bidder//@person
          RETURN <myauction> {$o/bidder}
                   <myquan>{$o/quantity/text()}</myquan>
                 </myauction>
WHERE $p/age > 25
  AND EVERY $i IN $a/myquan SATISFIES $i > 1
RETURN
<person name={$p/name/text()}>{$a/bidder}</person>`

// q5Text exercises the plain Flatten rewrite: the bidder path feeds an
// aggregate (nested edge) and a value join ("-" edge), and the RETURN does
// not re-match bidders, so Shadow/Illuminate is not triggered.
const q5Text = `
FOR $p IN document("auction.xml")//person
FOR $o IN document("auction.xml")//open_auction
WHERE count($o/bidder) > 0 AND $p/@id = $o/bidder//@person
RETURN <q>{$o/quantity/text()}</q>`

func loadStore(t *testing.T) *store.Store {
	t.Helper()
	s := store.New()
	if _, err := s.LoadXML("auction.xml", strings.NewReader(testAuction)); err != nil {
		t.Fatal(err)
	}
	return s
}

func buildPlan(t *testing.T, q string) algebra.Op {
	t.Helper()
	ast, err := xquery.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	res, err := translate.Translate(ast)
	if err != nil {
		t.Fatal(err)
	}
	return res.Plan
}

// canonical renders a result sequence in an order-insensitive form for
// equivalence checks (rewrites may reorder trees with equal roots).
func canonical(s *store.Store, out seq.Seq) []string {
	xs := make([]string, len(out))
	for i, w := range out {
		xs[i] = w.XML(s)
	}
	sort.Strings(xs)
	return xs
}

func runPlan(t *testing.T, s *store.Store, p algebra.Op) seq.Seq {
	t.Helper()
	out, err := algebra.Run(s, p)
	if err != nil {
		t.Fatalf("eval: %v\nplan:\n%s", err, algebra.Explain(p))
	}
	return out
}

func TestOptimizeQ1ShadowIlluminate(t *testing.T) {
	s := loadStore(t)
	base := buildPlan(t, q1Text)
	want := canonical(s, runPlan(t, s, base))

	opt := buildPlan(t, q1Text)
	opt, n := Optimize(opt)
	if n == 0 {
		t.Fatalf("no rewrites applied to Q1:\n%s", algebra.Explain(opt))
	}
	exp := algebra.Explain(opt)
	if !strings.Contains(exp, "Shadow") || !strings.Contains(exp, "Illuminate") {
		t.Errorf("Q1 OPT plan missing Shadow/Illuminate:\n%s", exp)
	}
	got := canonical(s, runPlan(t, s, opt))
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("Q1 OPT results differ.\nwant:\n%s\ngot:\n%s\nplan:\n%s",
			strings.Join(want, "\n"), strings.Join(got, "\n"), exp)
	}
}

func TestOptimizeQ1SavesIndexWork(t *testing.T) {
	s := loadStore(t)
	base := buildPlan(t, q1Text)
	s.ResetStats()
	runPlan(t, s, base)
	baseStats := s.Snapshot()

	opt, _ := Optimize(buildPlan(t, q1Text))
	s.ResetStats()
	runPlan(t, s, opt)
	optStats := s.Snapshot()

	if optStats.TagLookups >= baseStats.TagLookups {
		t.Errorf("OPT did not reduce index probes: base %d, opt %d",
			baseStats.TagLookups, optStats.TagLookups)
	}
}

func TestOptimizeQ2Equivalent(t *testing.T) {
	s := loadStore(t)
	base := buildPlan(t, q2Text)
	want := canonical(s, runPlan(t, s, base))

	opt, n := Optimize(buildPlan(t, q2Text))
	if n == 0 {
		t.Fatalf("no rewrites applied to Q2:\n%s", algebra.Explain(opt))
	}
	got := canonical(s, runPlan(t, s, opt))
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("Q2 OPT results differ.\nwant:\n%s\ngot:\n%s\nplan:\n%s",
			strings.Join(want, "\n"), strings.Join(got, "\n"), algebra.Explain(opt))
	}
}

func TestOptimizeQ5PlainFlatten(t *testing.T) {
	s := loadStore(t)
	base := buildPlan(t, q5Text)
	want := canonical(s, runPlan(t, s, base))

	opt, n := Optimize(buildPlan(t, q5Text))
	if n == 0 {
		t.Fatalf("no rewrites applied:\n%s", algebra.Explain(opt))
	}
	exp := algebra.Explain(opt)
	if !strings.Contains(exp, "Flatten") {
		t.Errorf("plan missing Flatten:\n%s", exp)
	}
	if strings.Contains(exp, "Illuminate") {
		t.Errorf("unexpected Illuminate (no re-match to replace):\n%s", exp)
	}
	got := canonical(s, runPlan(t, s, opt))
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("Q5 OPT results differ.\nwant:\n%s\ngot:\n%s\nplan:\n%s",
			strings.Join(want, "\n"), strings.Join(got, "\n"), exp)
	}
}

func TestOptimizeIdempotentOnSimpleQuery(t *testing.T) {
	s := loadStore(t)
	q := `FOR $p IN document("auction.xml")//person WHERE $p/age > 25 RETURN $p/name`
	base := buildPlan(t, q)
	want := canonical(s, runPlan(t, s, base))
	opt, _ := Optimize(buildPlan(t, q))
	got := canonical(s, runPlan(t, s, opt))
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("simple query changed under Optimize")
	}
}

func TestOptimizePreservesResultCountQ1(t *testing.T) {
	s := loadStore(t)
	opt, _ := Optimize(buildPlan(t, q1Text))
	out := runPlan(t, s, opt)
	if len(out) != 2 {
		t.Fatalf("Q1 OPT produced %d trees, want 2:\n%s\nplan:\n%s",
			len(out), out.XML(s), algebra.Explain(opt))
	}
	for _, w := range out {
		if got := strings.Count(w.XML(s), "<bidder>"); got != 6 {
			t.Errorf("OPT result has %d bidders, want 6", got)
		}
	}
}

// q3Text exercises the native Shadow/Illuminate rewrite (Figure 12): the
// bidder path feeds a value join with a "-" edge, and the RETURN re-matches
// bidders with a "*" extension select — no aggregate in sight.
const q3Text = `
FOR $p IN document("auction.xml")//person
FOR $o IN document("auction.xml")//open_auction
WHERE $p/@id = $o/bidder//@person AND $p/age > 25
RETURN <auction name={$p/name/text()}> $o/bidder </auction>`

func TestOptimizeNativeShadow(t *testing.T) {
	s := loadStore(t)
	base := buildPlan(t, q3Text)
	want := canonical(s, runPlan(t, s, base))

	opt, n := Optimize(buildPlan(t, q3Text))
	if n == 0 {
		t.Fatalf("no rewrites applied:\n%s", algebra.Explain(opt))
	}
	exp := algebra.Explain(opt)
	if !strings.Contains(exp, "Shadow") || !strings.Contains(exp, "Illuminate") {
		t.Errorf("native shadow plan missing Shadow/Illuminate:\n%s", exp)
	}
	got := canonical(s, runPlan(t, s, opt))
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("native shadow results differ.\nwant:\n%s\ngot:\n%s\nplan:\n%s",
			strings.Join(want, "\n"), strings.Join(got, "\n"), exp)
	}
}

// TestOptimizeFlattenPredicateBranch checks the relaxed phase-1 condition:
// a C branch that only filters (predicate path, referenced by no operator)
// still enables the Flatten rewrite.
func TestOptimizeFlattenPredicateBranch(t *testing.T) {
	s := loadStore(t)
	q := `FOR $o IN document("auction.xml")//open_auction
		WHERE count($o/bidder) > 0 AND $o/bidder/increase > 7
		RETURN <n>{count($o/bidder)}</n>`
	base := buildPlan(t, q)
	want := canonical(s, runPlan(t, s, base))
	opt, _ := Optimize(buildPlan(t, q))
	got := canonical(s, runPlan(t, s, opt))
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("predicate-branch flatten results differ.\nwant:\n%s\ngot:\n%s\nplan:\n%s",
			strings.Join(want, "\n"), strings.Join(got, "\n"), algebra.Explain(opt))
	}
}
