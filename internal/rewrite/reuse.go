package rewrite

import (
	"tlc/internal/algebra"
	"tlc/internal/pattern"
)

// reuseExtensionSelects implements pattern tree reuse across operators
// (Section 4.1): an extension Select that re-matches, under an anchor
// class A, a branch the originating document Select already matched with a
// compatible nested edge is redundant — the input trees already carry the
// wanted nodes in a logical class. The redundant branch is removed from
// the extension Select (the whole Select is spliced out when no branch
// remains), its labels are redirected to the existing class, and the
// projections in between are patched so the reused class survives.
func reuseExtensionSelects(root algebra.Op) (algebra.Op, int) {
	applied := 0
	for {
		p := analyze(root)
		newRoot, ok := reuseOnce(p)
		if !ok {
			return root, applied
		}
		root = newRoot
		applied++
	}
}

func reuseOnce(p *plan) (algebra.Op, bool) {
	for _, op := range p.ops {
		es, ok := op.(*algebra.Select)
		if !ok || es.APT == nil || es.APT.Root == nil || es.APT.Root.Kind != pattern.TestLC {
			continue
		}
		anchorClass := es.APT.Root.InClass
		below := es.Inputs()
		if len(below) != 1 {
			continue
		}
		subOps := algebra.Ops(below[0])
		for ei := range es.APT.Root.Edges {
			ee := es.APT.Root.Edges[ei]
			ds, eb := findCoveringBranch(subOps, anchorClass, ee)
			if ds == nil {
				continue
			}
			if !pathSafe(p, ds, es, eb) {
				continue
			}
			return applyReuse(p, ds, es, ei, eb), true
		}
	}
	return nil, false
}

// findCoveringBranch looks for a document Select whose APT has a node
// labelled anchorClass with a nested branch that covers the extension
// edge: same axis, compatible spec, the extension subtree embeds into the
// branch, and the branch's surplus structure is all optional (so it does
// not restrict the class membership the extension would have produced).
func findCoveringBranch(ops []algebra.Op, anchorClass int, ee pattern.Edge) (*algebra.Select, *pattern.Edge) {
	for _, op := range ops {
		ds, ok := op.(*algebra.Select)
		if !ok || ds.APT == nil || ds.APT.Root == nil || ds.APT.Root.Kind != pattern.TestDocRoot {
			continue
		}
		a := ds.APT.FindLCL(anchorClass)
		if a == nil {
			continue
		}
		for bi := range a.Edges {
			eb := &a.Edges[bi]
			// Logical (OR-group / NOT) branches are existence tests, not
			// class producers — they cannot serve an extension match.
			if eb.Logical() {
				continue
			}
			if eb.Axis != ee.Axis || !eb.Spec.Nested() {
				continue
			}
			if eb.Spec != ee.Spec && eb.Spec != pattern.ZeroOrMore {
				continue
			}
			_, extras, ok := embed(ee.To, eb.To)
			if !ok {
				continue
			}
			safe := true
			for _, ex := range extras {
				if !ex.edge.Spec.Optional() || ex.edge.Logical() {
					safe = false
					break
				}
			}
			if safe {
				return ds, eb
			}
		}
	}
	return nil, nil
}

// pathSafe verifies that no Flatten or Shadow between the originating
// select and the extension select touches the reused classes (either
// would make the existing class diverge from a fresh re-match).
func pathSafe(p *plan, ds *algebra.Select, es *algebra.Select, eb *pattern.Edge) bool {
	chain, ok := p.chainAbove(ds)
	if !ok {
		return false
	}
	classes := toSet(subtreeLCLs(eb.To))
	reachedES := false
	for _, op := range chain {
		if op == es {
			reachedES = true
			break
		}
		switch x := op.(type) {
		case *algebra.Flatten:
			if classes[x.CLCL] || classes[x.PLCL] {
				return false
			}
		case *algebra.Shadow:
			if classes[x.CLCL] || classes[x.PLCL] {
				return false
			}
		}
	}
	return reachedES
}

// applyReuse removes edge ei from the extension select (splicing the whole
// select out when it was the only edge), redirects its labels to the
// covering branch and patches the intermediate projections.
func applyReuse(p *plan, ds *algebra.Select, es *algebra.Select, ei int, eb *pattern.Edge) algebra.Op {
	ee := es.APT.Root.Edges[ei]
	m, _, _ := embed(ee.To, eb.To) // maps eb labels -> ee labels
	remapM := make(map[int]int, len(m))
	for bLbl, eLbl := range m {
		if eLbl != bLbl {
			remapM[eLbl] = bLbl
		}
	}
	es.APT.Root.Edges = append(es.APT.Root.Edges[:ei:ei], es.APT.Root.Edges[ei+1:]...)
	if len(es.APT.Root.Edges) == 0 && es.APT.Root.LCL == 0 {
		p.root = p.spliceOut(es)
	}
	// Patch projections between origin and extension select so the reused
	// class survives projection.
	np := analyze(p.root)
	if chain, ok := np.chainAbove(ds); ok {
		for _, op := range chain {
			if op == es {
				break
			}
			if pr, isP := op.(*algebra.Project); isP {
				for _, lcl := range subtreeLCLs(eb.To) {
					pr.Keep = append(pr.Keep, lcl)
				}
			}
		}
	}
	remapAbove(p.root, ds, remapM)
	return p.root
}
