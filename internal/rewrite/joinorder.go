package rewrite

import (
	"tlc/internal/algebra"
	"tlc/internal/planner"
	"tlc/internal/store"
)

// OrderEdges applies selectivity-based pattern-match edge ordering — the
// join-order optimization Section 5.2 defers to an optimizer. The
// implementation lives in internal/planner (where all physical decisions
// are made); this wrapper survives so the rewrite API keeps covering the
// full Section 4/5 optimization surface. Unlike the original heuristic
// here, which pinned its cardinality estimates to a single statically-known
// document and silently degraded to class-only ordering otherwise, the
// planner estimates across every document the pattern can read.
func OrderEdges(root algebra.Op, st *store.Store) int {
	return planner.OrderEdges(root, st)
}
