package rewrite

import (
	"sort"

	"tlc/internal/algebra"
	"tlc/internal/pattern"
	"tlc/internal/store"
)

// OrderEdges implements the pattern-match join ordering the paper defers
// to an optimizer (Section 5.2: "Join order should be considered by an
// optimizer ... For our implementation we used a simple bottom-up
// approach"). The matcher evaluates a pattern node's edges left to right,
// and a "-" edge multiplies the partial witnesses — every later edge then
// pays per multiplied partial. Ordering the edges cheapest-first therefore
// matters: this pass sorts each pattern node's edges by
//
//  1. selectivity class: predicated flat edges first (they prune parents
//     early and multiply least), then unpredicated flat edges, then nested
//     edges (clusters are attached once, but cloning a partial that
//     already carries a cluster is what makes late "-" edges expensive —
//     so nested branches go last only among non-multiplying choices);
//  2. within a class, ascending estimated candidate count from the store
//     catalog (tag counts).
//
// Correctness is unaffected — edge order only changes evaluation order and
// the order of matched kids, never the witness set (the matcher's output
// order is parent-major regardless).
func OrderEdges(root algebra.Op, st *store.Store) int {
	reordered := 0
	for _, op := range algebra.Ops(root) {
		sel, ok := op.(*algebra.Select)
		if !ok || sel.APT == nil || sel.APT.Root == nil {
			continue
		}
		doc, haveDoc := docOf(sel.APT.Root, st)
		for _, n := range sel.APT.Nodes() {
			if len(n.Edges) < 2 {
				continue
			}
			before := edgeOrderKey(n.Edges)
			sort.SliceStable(n.Edges, func(i, j int) bool {
				ci, cj := edgeClass(n.Edges[i]), edgeClass(n.Edges[j])
				if ci != cj {
					return ci < cj
				}
				if !haveDoc {
					return false
				}
				return subtreeCardinality(st, doc, n.Edges[i].To) <
					subtreeCardinality(st, doc, n.Edges[j].To)
			})
			if edgeOrderKey(n.Edges) != before {
				reordered++
			}
		}
	}
	return reordered
}

// edgeClass ranks edges: 0 = flat with a predicate somewhere in the
// branch, 1 = flat, 2 = nested.
func edgeClass(e pattern.Edge) int {
	if e.Spec.Nested() {
		return 2
	}
	if branchHasPredicate(e.To) {
		return 0
	}
	return 1
}

func branchHasPredicate(n *pattern.Node) bool {
	if n.Pred != nil {
		return true
	}
	for _, e := range n.Edges {
		if branchHasPredicate(e.To) {
			return true
		}
	}
	return false
}

// subtreeCardinality estimates a branch's match count as the minimum tag
// count along the branch (a conjunctive pattern cannot match more often
// than its rarest tag).
func subtreeCardinality(st *store.Store, doc store.DocID, n *pattern.Node) int {
	min := 1 << 30
	var walk func(p *pattern.Node)
	walk = func(p *pattern.Node) {
		if p.Kind == pattern.TestTag {
			if c := st.TagCount(doc, p.Tag); c < min {
				min = c
			}
		}
		for _, e := range p.Edges {
			walk(e.To)
		}
	}
	walk(n)
	return min
}

// docOf resolves the document a pattern reads, when statically known.
func docOf(root *pattern.Node, st *store.Store) (store.DocID, bool) {
	if root.Kind != pattern.TestDocRoot {
		return 0, false
	}
	id, ok := st.Lookup(root.Doc)
	return id, ok
}

func edgeOrderKey(edges []pattern.Edge) string {
	key := ""
	for _, e := range edges {
		key += e.To.Tag + e.Spec.String() + "|"
	}
	return key
}
