package rewrite

import (
	"sort"

	"tlc/internal/algebra"
	"tlc/internal/pattern"
)

// flattenRewrite implements the Flatten rewrite of Section 4.2 (Figure 10)
// and, when a later extension Select re-matches the flattened class, the
// Shadow/Illuminate variant of Section 4.3 (Figure 12, applied to Q1 as
// described at the end of Section 4.3).
//
// Detection (phase 1): a document Select whose APT contains a node A with
// two branches over the same tag — B with a nested edge ("+"/"*") and C
// with a flat edge ("-"/"?") — where tree(B) embeds into tree(C), and the
// operator chain uses tree(B) strictly before the first use of tree(C).
//
// Rewrite (phase 2): branch C is removed from the APT; after the last
// operator using tree(B), a Flatten(A, B) breaks the cluster apart and an
// extension Select re-attaches the branches C had beyond B; all references
// to C's labels are redirected to B's. When a later extension Select
// anchored at A re-matches the same tag with a nested edge, Shadow is used
// instead of Flatten, the re-matching Select is replaced by Illuminate,
// and the projections in between are patched to carry the shadowed class.
func flattenRewrite(root algebra.Op) (algebra.Op, int) {
	applied := 0
	for {
		p := analyze(root)
		newRoot, ok := flattenOnce(p)
		if !ok {
			return root, applied
		}
		root = newRoot
		applied++
	}
}

func flattenOnce(p *plan) (algebra.Op, bool) {
	for _, sel := range p.docSelects() {
		chain, linear := p.chainAbove(sel)
		if !linear {
			continue
		}
		for _, a := range sel.APT.Nodes() {
			if a.LCL <= 0 {
				continue
			}
			for bi := range a.Edges {
				for ci := range a.Edges {
					if bi == ci {
						continue
					}
					eb, ec := a.Edges[bi], a.Edges[ci]
					// Phase 1 conditions: B nested, C strictly "-" (a "?"
					// edge lets childless parents through, which Flatten
					// would drop), same axis.
					if !eb.Spec.Nested() || ec.Spec != pattern.One || eb.Axis != ec.Axis {
						continue
					}
					lclMap, extras, ok := embed(eb.To, ec.To)
					if !ok {
						continue
					}
					if newRoot, done := applyFlatten(p, sel, chain, a, bi, ci, lclMap, extras); done {
						return newRoot, true
					}
				}
			}
		}
	}
	return nil, false
}

func applyFlatten(p *plan, sel *algebra.Select, chain []algebra.Op, a *pattern.Node,
	bi, ci int, lclMap map[int]int, extras []extra) (algebra.Op, bool) {

	eb, ec := a.Edges[bi], a.Edges[ci]
	bSet := toSet(subtreeLCLs(eb.To))
	cSet := toSet(subtreeLCLs(ec.To))

	// Usage ordering along the chain: every B use must precede the first
	// C use, and B must actually be used (otherwise branch merging is the
	// right rewrite, not Flatten). A C branch referenced by no operator is
	// purely a filtering branch (a predicate path); its "use" is the match
	// itself, which the extension select after Flatten reproduces.
	lastB, firstC := -1, len(chain)
	for i, op := range chain {
		if refsAny(op, bSet) {
			lastB = i
		}
		if firstC == len(chain) && refsAny(op, cSet) {
			firstC = i
		}
	}
	if lastB == -1 || lastB >= firstC {
		return nil, false
	}

	// Is there a later extension Select anchored at A's class re-matching
	// the same tag with a nested edge? Then use Shadow + Illuminate.
	var illumSel *algebra.Select
	var illumMap map[int]int
	var illumExtras []extra
	for i := lastB + 1; i < len(chain); i++ {
		es, ok := chain[i].(*algebra.Select)
		if !ok || es.APT == nil || es.APT.Root == nil || es.APT.Root.Kind != pattern.TestLC {
			continue
		}
		if es.APT.Root.InClass != a.LCL || len(es.APT.Root.Edges) != 1 {
			continue
		}
		ee := es.APT.Root.Edges[0]
		if !ee.Spec.Nested() || ee.Axis != eb.Axis {
			continue
		}
		m, ex, ok := embed(eb.To, ee.To)
		if !ok {
			continue
		}
		illumSel = es
		illumMap = m
		illumExtras = ex
		break
	}

	// Phase 2: remove branch C.
	a.Edges = append(a.Edges[:ci:ci], a.Edges[ci+1:]...)

	// Insertion point: directly above the last operator using tree(B)
	// (or above the Select itself when B is used only via the pattern).
	below := algebra.Op(sel)
	if lastB >= 0 {
		below = chain[lastB]
	}
	breaker := func(in algebra.Op) algebra.Op {
		if illumSel != nil {
			return algebra.NewShadow(in, a.LCL, eb.To.LCL)
		}
		return algebra.NewFlatten(in, a.LCL, eb.To.LCL)
	}
	p.root = p.spliceAbove(below, func(in algebra.Op) algebra.Op {
		out := breaker(in)
		if len(extras) > 0 {
			out = algebra.NewExtendSelect(out, extrasAPT(extras))
		}
		return out
	})

	// Redirect the consumers of C's labels to B's, stopping at operators
	// that redefine a label (construct copies).
	remap := make(map[int]int, len(lclMap))
	for cLbl, bLbl := range lclMap {
		if cLbl != bLbl {
			remap[cLbl] = bLbl
		}
	}
	remapAbove(p.root, sel, remap)

	if illumSel != nil {
		finishIlluminate(p, sel, illumSel, eb.To.LCL, bSet, illumMap, illumExtras)
	}
	return p.root, true
}

// finishIlluminate replaces the redundant extension Select with an
// Illuminate of the shadowed class, remaps the Select's labels onto the
// shadowed branch's, re-attaches any surplus branches, and patches the
// projections in between so the shadowed nodes survive to the Illuminate.
func finishIlluminate(p *plan, origin, es *algebra.Select, bLCL int, bSet map[int]bool,
	m map[int]int, extras []extra) {

	// Patch every Project between origin and the extension select: the
	// shadowed class rides through invisibly but must not be projected
	// away.
	np := analyze(p.root)
	chain, ok := np.chainAbove(origin)
	if ok {
		for _, op := range chain {
			if op == es {
				break
			}
			if pr, isP := op.(*algebra.Project); isP {
				// Sorted for a deterministic plan rendering (bSet is a map).
				lcls := make([]int, 0, len(bSet))
				for lcl := range bSet {
					lcls = append(lcls, lcl)
				}
				sort.Ints(lcls)
				pr.Keep = append(pr.Keep, lcls...)
			}
		}
	}
	// Replace the extension select with Illuminate (+ extras re-match).
	in := es.Inputs()[0]
	var repl algebra.Op = algebra.NewIlluminate(in, bLCL)
	if len(extras) > 0 {
		repl = algebra.NewExtendSelect(repl, extrasAPT(extras))
	}
	if es == np.root {
		p.root = repl
	} else {
		for _, par := range np.parents[es] {
			algebra.ReplaceInput(par, es, repl)
		}
	}
	// Redirect the extension select's labels (anchor relabel plus branch
	// labels) to the shadowed branch, definition-scoped.
	remap := make(map[int]int, len(m)+1)
	for esLbl, bLbl := range m {
		if esLbl != bLbl {
			remap[esLbl] = bLbl
		}
	}
	if es.APT.Root.Edges[0].To.LCL != bLCL {
		remap[es.APT.Root.Edges[0].To.LCL] = bLCL
	}
	remapAbove(p.root, origin, remap)
}

// extrasAPT assembles one extension APT from surplus branches grouped by
// their anchor class. All current call sites produce extras under a single
// anchor; grouping keeps the helper total.
func extrasAPT(extras []extra) *pattern.Tree {
	anchor := pattern.NewLCAnchor(0, extras[0].anchorLCL)
	for _, e := range extras {
		if e.anchorLCL == extras[0].anchorLCL {
			anchor.Edges = append(anchor.Edges, e.edge)
		}
	}
	return &pattern.Tree{Root: anchor}
}
