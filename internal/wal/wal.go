// Package wal implements the durable write-ahead log behind the MVCC
// update subsystem. The log records *logical* update operations (the
// serialized mutate.Request, not the spliced columns), appended and —
// depending on the sync policy — fsynced before the store's directory
// swap publishes the new document version. Replaying the log through the
// ordinary mutate path therefore reconstructs exactly the committed
// updates, exercised by the same splice/commit code as live traffic.
//
// # Layout
//
// A log is a directory of segment files named wal-<base>.tlcw, where
// <base> is the sequence number of the last record *before* the segment
// (records in a segment carry seq base+1, base+2, … contiguously). The
// highest-base segment is active; the rest are sealed. Each file starts
// with a 32-byte header (magic, format version, base sequence, header
// CRC) followed by length-prefixed records:
//
//	seq      uint64   commit sequence number (== store update generation)
//	len      uint32   payload length in bytes
//	crc      uint64   CRC64-ECMA over the seq+len header and the payload
//	payload  []byte   the serialized logical update
//
// # Torn tails versus corruption
//
// A crash can tear the last record (partial write at the physical end of
// the log). Open distinguishes the two failure shapes deterministically:
// a record in the *active* segment that fails to decode and whose extent
// reaches end-of-file is a torn tail — the file is truncated at the last
// good record and the log stays usable. A record that fails to decode
// with valid bytes *after* its claimed end (or any failure in a sealed
// segment) is mid-log corruption and surfaces as ErrCorrupt: silently
// skipping it would replay a divergent history. A trailing segment whose
// header never finished writing (a crash inside rotation, before any
// record could exist) is removed on open.
//
// # Sync policies
//
// SyncAlways fsyncs inside every Append — the commit is not acknowledged
// until the record is durable. SyncBatch group-commits under the log's
// single mutex: appends return once buffered, and an fsync covers the
// whole pending batch when it reaches BatchRecords or BatchDelay elapses
// (plus unconditionally at rotation and close), bounding the
// acknowledged-but-lost window to one batch. SyncOff never fsyncs on the
// append path (rotation and close still sync) — the benchmark baseline.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"tlc/internal/faultinject"
)

// Typed errors, matchable with errors.Is.
var (
	// ErrCorrupt reports mid-log corruption: a record that fails its CRC
	// or sequence check with valid data after it, damage in a sealed
	// segment, or a malformed segment header. A torn tail is *not*
	// corruption — it is repaired by truncation on open.
	ErrCorrupt = errors.New("wal: corrupt log")
	// ErrClosed reports an operation on a closed log.
	ErrClosed = errors.New("wal: log closed")
)

// Policy selects when appends reach durable storage.
type Policy int

const (
	// SyncAlways fsyncs every append before it returns.
	SyncAlways Policy = iota
	// SyncBatch group-commits: one fsync per pending batch.
	SyncBatch
	// SyncOff never fsyncs on the append path.
	SyncOff
)

func (p Policy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncBatch:
		return "batch"
	case SyncOff:
		return "off"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// ParsePolicy maps the -fsync flag spelling to its Policy ("" selects
// SyncAlways, the safe default).
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "always":
		return SyncAlways, nil
	case "batch":
		return SyncBatch, nil
	case "off":
		return SyncOff, nil
	}
	return 0, fmt.Errorf("wal: unknown sync policy %q (always|batch|off)", s)
}

// Options configures a Log.
type Options struct {
	// Policy is the durability policy (zero value: SyncAlways).
	Policy Policy
	// BatchRecords triggers a group-commit fsync once this many appends
	// are pending (SyncBatch only; default 32).
	BatchRecords int
	// BatchDelay bounds how long a pending batch may wait for company
	// before it is synced anyway (SyncBatch only; default 2ms).
	BatchDelay time.Duration
}

func (o *Options) fillDefaults() {
	if o.BatchRecords <= 0 {
		o.BatchRecords = 32
	}
	if o.BatchDelay <= 0 {
		o.BatchDelay = 2 * time.Millisecond
	}
}

// Record is one logged update: its commit sequence number and the
// serialized logical operation.
type Record struct {
	Seq     uint64
	Payload []byte
}

// Stats is a snapshot of the log's gauges and counters.
type Stats struct {
	// Policy is the configured sync policy.
	Policy string `json:"policy"`
	// Appended counts records appended since open.
	Appended int64 `json:"appended"`
	// Synced counts fsync calls since open.
	Synced int64 `json:"synced"`
	// Rotations counts segment rotations since open.
	Rotations int64 `json:"rotations"`
	// TornRepairs counts torn tails truncated (and torn trailing segments
	// removed) by Open.
	TornRepairs int64 `json:"torn_repairs"`
	// SegmentsRemoved counts sealed segments deleted by checkpoints.
	SegmentsRemoved int64 `json:"segments_removed"`
	// Segments is the current segment-file count (including the active
	// one).
	Segments int `json:"segments"`
	// Pending is the number of appended records not yet fsynced.
	Pending int `json:"pending"`
	// LastSeq is the sequence number of the newest record.
	LastSeq uint64 `json:"last_seq"`
	// Bytes counts record bytes appended since open.
	Bytes int64 `json:"bytes"`
}

const (
	segMagic      = "TLCWAL01"
	segHeaderSize = 32
	recHeaderSize = 20
	// maxRecordLen caps one record's payload; anything claiming more is
	// either a torn length field or corruption (it matches the service's
	// request body cap with lots of headroom).
	maxRecordLen = 1 << 28

	segPrefix = "wal-"
	segSuffix = ".tlcw"
)

var crcTable = crc64.MakeTable(crc64.ECMA)

// segment is one log file: records (base, last] live in it.
type segment struct {
	path string
	base uint64 // seq of the last record before this segment
	last uint64 // seq of the last record in it (== base when empty)
}

// Log is an append-only, checksummed record log. All methods are safe
// for concurrent use; appends and syncs serialize under one mutex (the
// group-commit domain).
type Log struct {
	dir  string
	opts Options

	mu       sync.Mutex
	segments []*segment // ascending base; the last one is active
	f        *os.File   // active segment
	writeOff int64      // append offset in the active segment
	pending  int        // appended records not yet fsynced
	timer    *time.Timer
	closed   bool
	// broken latches a failure after which the log can no longer
	// guarantee its tail is well-formed (a truncate-back that failed, a
	// batch fsync that failed with acknowledged records pending). Every
	// later append refuses, so the damage cannot grow silently.
	broken error

	stAppended, stSynced, stRotations   int64
	stTornRepairs, stRemoved, stBytes   int64
}

// Open opens (creating if needed) the log in dir, validating every
// segment: a torn tail in the active segment is truncated away, a torn
// trailing segment (crash during rotation) is removed, and mid-log
// damage returns ErrCorrupt. The returned log is positioned to append
// record LastSeq()+1.
func Open(dir string, opts Options) (*Log, error) {
	opts.fillDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{dir: dir, opts: opts}
	segs, torn, err := scanDir(dir)
	if err != nil {
		return nil, err
	}
	l.stTornRepairs += int64(torn)
	for i, sg := range segs {
		if i > 0 && sg.base < segs[i-1].last {
			return nil, fmt.Errorf("%w: segment %s base %d overlaps previous segment (records through %d)",
				ErrCorrupt, filepath.Base(sg.path), sg.base, segs[i-1].last)
		}
		isLast := i == len(segs)-1
		lastSeq, tailOff, repaired, err := scanSegment(sg.path, sg.base, isLast, nil)
		if err != nil {
			return nil, err
		}
		if repaired {
			if err := os.Truncate(sg.path, tailOff); err != nil {
				return nil, fmt.Errorf("wal: repairing torn tail of %s: %w", filepath.Base(sg.path), err)
			}
			l.stTornRepairs++
		}
		sg.last = lastSeq
	}
	if len(segs) == 0 {
		sg, err := createSegment(dir, 0)
		if err != nil {
			return nil, err
		}
		segs = append(segs, sg)
	}
	l.segments = segs
	if err := l.openActive(); err != nil {
		return nil, err
	}
	return l, nil
}

// openActive opens the active segment for appending.
func (l *Log) openActive() error {
	act := l.active()
	f, err := os.OpenFile(act.path, os.O_RDWR, 0)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	off, err := f.Seek(0, 2)
	if err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	l.f, l.writeOff = f, off
	return nil
}

func (l *Log) active() *segment { return l.segments[len(l.segments)-1] }

// Dir returns the log directory.
func (l *Log) Dir() string { return l.dir }

// LastSeq returns the sequence number of the newest appended record (0
// for an empty log whose base is 0).
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.active().last
}

// Stats returns the log's counters and gauges.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{
		Policy:          l.opts.Policy.String(),
		Appended:        l.stAppended,
		Synced:          l.stSynced,
		Rotations:       l.stRotations,
		TornRepairs:     l.stTornRepairs,
		SegmentsRemoved: l.stRemoved,
		Segments:        len(l.segments),
		Pending:         l.pending,
		LastSeq:         l.active().last,
		Bytes:           l.stBytes,
	}
}

// Append logs one record. Sequence numbers must be contiguous: seq must
// be exactly LastSeq()+1, which the store guarantees by calling under
// its commit lock with the next update generation. Under SyncAlways the
// record is durable when Append returns; under SyncBatch it is durable
// after the batch syncs; under SyncOff whenever the OS flushes it. An
// error means the record is NOT in the log (the tail is rolled back), so
// the caller must fail the commit.
func (l *Log) Append(seq uint64, payload []byte) error {
	if err := faultinject.Hit(faultinject.PointWALAppend); err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.broken != nil {
		return fmt.Errorf("wal: log disabled by earlier failure: %w", l.broken)
	}
	act := l.active()
	if seq != act.last+1 {
		return fmt.Errorf("wal: append out of order: seq %d, want %d", seq, act.last+1)
	}
	if len(payload) == 0 || len(payload) > maxRecordLen {
		return fmt.Errorf("wal: bad payload length %d", len(payload))
	}
	rec := encodeRecord(seq, payload)
	prevOff := l.writeOff
	if _, err := l.f.WriteAt(rec, prevOff); err != nil {
		// The write may have landed partially; cut it back so the next
		// append does not land after garbage.
		if terr := l.f.Truncate(prevOff); terr != nil {
			l.broken = terr
		}
		return fmt.Errorf("wal: append: %w", err)
	}
	l.writeOff += int64(len(rec))
	act.last = seq
	l.pending++
	l.stAppended++
	l.stBytes += int64(len(rec))

	switch l.opts.Policy {
	case SyncAlways:
		if err := l.syncLocked(); err != nil {
			// The record reached the page cache but not durable storage;
			// roll it back so the failed commit cannot reappear at replay.
			if terr := l.f.Truncate(prevOff); terr != nil {
				l.broken = terr
			} else {
				l.writeOff = prevOff
				act.last = seq - 1
				l.pending--
				l.stAppended--
				l.stBytes -= int64(len(rec))
			}
			return err
		}
	case SyncBatch:
		if l.pending >= l.opts.BatchRecords {
			if err := l.syncLocked(); err != nil {
				// Earlier records of this batch were already acknowledged;
				// poison the log instead of pretending.
				l.broken = err
				return err
			}
		} else if l.timer == nil {
			l.timer = time.AfterFunc(l.opts.BatchDelay, l.flushTimer)
		}
	}
	return nil
}

// flushTimer is the SyncBatch deadline: a pending batch that never grew
// to BatchRecords still reaches the disk within BatchDelay.
func (l *Log) flushTimer() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.timer = nil
	if l.closed || l.broken != nil || l.pending == 0 {
		return
	}
	if err := l.syncLocked(); err != nil {
		l.broken = err
	}
}

// syncLocked fsyncs the active segment. Caller holds l.mu.
func (l *Log) syncLocked() error {
	if err := faultinject.Hit(faultinject.PointWALFsync); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.pending = 0
	l.stSynced++
	if l.timer != nil {
		l.timer.Stop()
		l.timer = nil
	}
	return nil
}

// Sync forces any pending records to durable storage (a group-commit
// flush on demand; shutdown paths call it via Close).
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.broken != nil {
		return l.broken
	}
	if l.pending == 0 {
		return nil
	}
	return l.syncLocked()
}

// Rotate seals the active segment (fsyncing any pending records) and
// starts a new one based at the current last sequence — step one of the
// snapshot checkpoint protocol. Rotating an already-empty active segment
// is a no-op, which makes back-to-back checkpoints idempotent.
func (l *Log) Rotate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rotateTo(l.active().last)
}

// RotateTo is Rotate with an explicit base ≥ LastSeq(). It records a
// deliberate sequence gap: after a snapshot is bulk-loaded into a store
// whose generation jumps past the log, the next appends continue at the
// new generation in a fresh segment.
func (l *Log) RotateTo(base uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if base < l.active().last {
		return fmt.Errorf("wal: rotate to base %d behind last record %d", base, l.active().last)
	}
	return l.rotateTo(base)
}

func (l *Log) rotateTo(base uint64) error {
	if l.closed {
		return ErrClosed
	}
	if l.broken != nil {
		return fmt.Errorf("wal: log disabled by earlier failure: %w", l.broken)
	}
	act := l.active()
	if act.last == act.base && act.base == base {
		return nil // active segment is already fresh at this base
	}
	if err := faultinject.Hit(faultinject.PointWALRotate); err != nil {
		return err
	}
	// Everything in the sealed segment must be durable before the new
	// segment exists: replay trusts sealed segments completely.
	if l.pending > 0 {
		if err := l.syncLocked(); err != nil {
			return err
		}
	}
	sg, err := createSegment(l.dir, base)
	if err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		os.Remove(sg.path)
		return fmt.Errorf("wal: sealing %s: %w", filepath.Base(act.path), err)
	}
	l.segments = append(l.segments, sg)
	if err := l.openActive(); err != nil {
		l.broken = err
		return err
	}
	l.stRotations++
	// A sealed segment with no records carries nothing to replay; drop it
	// now instead of waiting for a checkpoint.
	if act.last == act.base {
		if err := os.Remove(act.path); err == nil {
			l.stRemoved++
			l.segments = append(l.segments[:len(l.segments)-2], sg)
			syncDir(l.dir)
		}
	}
	return nil
}

// TruncateThrough deletes sealed segments whose records are all ≤ seq —
// step three of the checkpoint protocol, after the snapshot holding
// those updates is durably on disk. The active segment is never removed.
func (l *Log) TruncateThrough(seq uint64) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	removed := 0
	kept := l.segments[:0]
	for i, sg := range l.segments {
		if i < len(l.segments)-1 && sg.last <= seq {
			if err := os.Remove(sg.path); err != nil {
				kept = append(kept, l.segments[i:]...)
				l.segments = kept
				return removed, fmt.Errorf("wal: truncate: %w", err)
			}
			removed++
			l.stRemoved++
			continue
		}
		kept = append(kept, sg)
	}
	l.segments = kept
	if removed > 0 {
		syncDir(l.dir)
	}
	return removed, nil
}

// Replay streams every record with seq > after to fn, in sequence
// order, re-reading the segment files (Open already validated and
// repaired them). It returns how many records fn received and how many
// were skipped as at-or-below the watermark. An error from fn aborts the
// replay and is returned verbatim.
func (l *Log) Replay(after uint64, fn func(Record) error) (applied, skipped int, err error) {
	l.mu.Lock()
	segs := append([]*segment(nil), l.segments...)
	l.mu.Unlock()
	for i, sg := range segs {
		isLast := i == len(segs)-1
		_, _, _, err := scanSegment(sg.path, sg.base, isLast, func(rec Record) error {
			if rec.Seq <= after {
				skipped++
				return nil
			}
			if err := fn(rec); err != nil {
				return err
			}
			applied++
			return nil
		})
		if err != nil {
			return applied, skipped, err
		}
	}
	return applied, skipped, nil
}

// Close fsyncs pending records and closes the active segment. Closing a
// closed log is a no-op.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if l.timer != nil {
		l.timer.Stop()
		l.timer = nil
	}
	var firstErr error
	if l.pending > 0 && l.broken == nil {
		firstErr = l.syncLocked()
	}
	if err := l.f.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// encodeRecord renders one record: seq, length, CRC over header+payload,
// payload.
func encodeRecord(seq uint64, payload []byte) []byte {
	buf := make([]byte, recHeaderSize+len(payload))
	binary.LittleEndian.PutUint64(buf[0:], seq)
	binary.LittleEndian.PutUint32(buf[8:], uint32(len(payload)))
	copy(buf[recHeaderSize:], payload)
	c := crc64.Checksum(buf[:12], crcTable)
	c = crc64.Update(c, crcTable, payload)
	binary.LittleEndian.PutUint64(buf[12:], c)
	return buf
}

// scanSegment walks one segment file, calling fn (when non-nil) per
// record. It returns the last sequence seen and, for the active segment,
// whether a torn tail was found and the offset to truncate it at.
// Anomalies follow the package's torn-versus-corrupt rule: in the active
// (last) segment, a record whose claimed extent reaches end-of-file is a
// torn tail; an undecodable record with data after it — and any anomaly
// in a sealed segment — is ErrCorrupt.
func scanSegment(path string, base uint64, isLast bool, fn func(Record) error) (lastSeq uint64, tailOff int64, torn bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, false, fmt.Errorf("wal: %w", err)
	}
	name := filepath.Base(path)
	size := len(data)
	off := segHeaderSize
	lastSeq = base
	want := base + 1
	for off < size {
		overrun := size-off < recHeaderSize
		var seq, crc uint64
		var plen int
		var end int
		if !overrun {
			seq = binary.LittleEndian.Uint64(data[off:])
			plen = int(binary.LittleEndian.Uint32(data[off+8:]))
			crc = binary.LittleEndian.Uint64(data[off+12:])
			end = off + recHeaderSize + plen
			if plen > maxRecordLen || end < off || end > size {
				overrun = true
			}
		}
		if overrun {
			if isLast {
				return lastSeq, int64(off), true, nil
			}
			return 0, 0, false, fmt.Errorf("%w: record at offset %d of sealed segment %s overruns end of file", ErrCorrupt, off, name)
		}
		payload := data[off+recHeaderSize : end]
		c := crc64.Checksum(data[off:off+12], crcTable)
		c = crc64.Update(c, crcTable, payload)
		switch {
		case plen == 0 || c != crc || seq != want:
			if isLast && end == size {
				// The bad record is the physical tail: a torn write.
				return lastSeq, int64(off), true, nil
			}
			return 0, 0, false, fmt.Errorf("%w: record %d at offset %d of %s fails validation (seq %d, want %d)",
				ErrCorrupt, want, off, name, seq, want)
		}
		if fn != nil {
			if err := fn(Record{Seq: seq, Payload: payload}); err != nil {
				return lastSeq, int64(off), false, err
			}
		}
		lastSeq = seq
		want++
		off = end
	}
	return lastSeq, int64(off), false, nil
}

// scanDir lists and header-validates the segment files in dir, sorted by
// base sequence. A trailing segment whose header never finished writing
// (crash inside rotation) is removed and counted; a malformed header
// anywhere else is ErrCorrupt.
func scanDir(dir string) ([]*segment, int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, 0, fmt.Errorf("wal: %w", err)
	}
	var segs []*segment
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		base, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix), 16, 64)
		if err != nil {
			continue
		}
		segs = append(segs, &segment{path: filepath.Join(dir, name), base: base, last: base})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].base < segs[j].base })
	torn := 0
	for i := 0; i < len(segs); i++ {
		err := checkHeader(segs[i])
		if err == nil {
			continue
		}
		if i == len(segs)-1 {
			// A bad header on the newest segment is a crash during
			// rotation — but only if no record bytes follow it. The header
			// is fsynced before the first append, so a record-bearing
			// segment can never legitimately have a damaged header; that
			// shape is corruption, and dropping it would lose durable data.
			if fi, serr := os.Stat(segs[i].path); serr == nil && fi.Size() <= segHeaderSize {
				if rerr := os.Remove(segs[i].path); rerr != nil {
					return nil, torn, fmt.Errorf("wal: removing torn segment: %w", rerr)
				}
				segs = segs[:i]
				torn++
				syncDir(dir)
				break
			}
		}
		return nil, torn, err
	}
	return segs, torn, nil
}

// checkHeader validates one segment's 32-byte header against its name.
func checkHeader(sg *segment) error {
	f, err := os.Open(sg.path)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	hdr := make([]byte, segHeaderSize)
	if _, err := io.ReadFull(f, hdr); err != nil {
		return fmt.Errorf("%w: segment %s: short header", ErrCorrupt, filepath.Base(sg.path))
	}
	if string(hdr[:8]) != segMagic {
		return fmt.Errorf("%w: segment %s: bad magic", ErrCorrupt, filepath.Base(sg.path))
	}
	if v := binary.LittleEndian.Uint32(hdr[8:]); v != 1 {
		return fmt.Errorf("%w: segment %s: unsupported format version %d", ErrCorrupt, filepath.Base(sg.path), v)
	}
	if got := binary.LittleEndian.Uint64(hdr[24:]); got != crc64.Checksum(hdr[:24], crcTable) {
		return fmt.Errorf("%w: segment %s: header checksum mismatch", ErrCorrupt, filepath.Base(sg.path))
	}
	if base := binary.LittleEndian.Uint64(hdr[16:]); base != sg.base {
		return fmt.Errorf("%w: segment %s: header base %d does not match file name", ErrCorrupt, filepath.Base(sg.path), base)
	}
	return nil
}

// createSegment writes a new segment file (header only), fsyncing the
// file and its directory before returning — a crash after createSegment
// leaves a valid empty segment, a crash during it leaves a torn one that
// scanDir removes.
func createSegment(dir string, base uint64) (*segment, error) {
	path := filepath.Join(dir, segName(base))
	hdr := make([]byte, segHeaderSize)
	copy(hdr, segMagic)
	binary.LittleEndian.PutUint32(hdr[8:], 1)
	binary.LittleEndian.PutUint64(hdr[16:], base)
	binary.LittleEndian.PutUint64(hdr[24:], crc64.Checksum(hdr[:24], crcTable))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	if _, err := f.Write(hdr); err == nil {
		err = f.Sync()
	}
	if err != nil {
		f.Close()
		os.Remove(path)
		return nil, fmt.Errorf("wal: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(path)
		return nil, fmt.Errorf("wal: %w", err)
	}
	syncDir(dir)
	return &segment{path: path, base: base, last: base}, nil
}

func segName(base uint64) string { return fmt.Sprintf("%s%016x%s", segPrefix, base, segSuffix) }

// syncDir fsyncs a directory so entry creations/removals are durable;
// best-effort on platforms where directories cannot be synced.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
