package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func mustOpen(t *testing.T, dir string, opts Options) *Log {
	t.Helper()
	l, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func appendN(t *testing.T, l *Log, from, to uint64) {
	t.Helper()
	for seq := from; seq <= to; seq++ {
		if err := l.Append(seq, []byte(fmt.Sprintf("record-%d", seq))); err != nil {
			t.Fatalf("Append(%d): %v", seq, err)
		}
	}
}

func collect(t *testing.T, l *Log, after uint64) []Record {
	t.Helper()
	var recs []Record
	_, _, err := l.Replay(after, func(r Record) error {
		recs = append(recs, Record{Seq: r.Seq, Payload: append([]byte(nil), r.Payload...)})
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return recs
}

func TestAppendReplayRoundtrip(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{Policy: SyncAlways})
	appendN(t, l, 1, 25)
	if got := l.LastSeq(); got != 25 {
		t.Fatalf("LastSeq = %d, want 25", got)
	}
	recs := collect(t, l, 0)
	if len(recs) != 25 {
		t.Fatalf("replayed %d records, want 25", len(recs))
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d", i, r.Seq)
		}
		if want := fmt.Sprintf("record-%d", r.Seq); string(r.Payload) != want {
			t.Fatalf("record %d payload %q, want %q", i, r.Payload, want)
		}
	}
	if got := len(collect(t, l, 20)); got != 5 {
		t.Fatalf("Replay(after=20) visited %d records, want 5", got)
	}
}

func TestReopenContinues(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	appendN(t, l, 1, 7)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	l2 := mustOpen(t, dir, Options{})
	if got := l2.LastSeq(); got != 7 {
		t.Fatalf("LastSeq after reopen = %d, want 7", got)
	}
	appendN(t, l2, 8, 10)
	if got := len(collect(t, l2, 0)); got != 10 {
		t.Fatalf("replayed %d records, want 10", got)
	}
}

func TestAppendRejectsOutOfOrder(t *testing.T) {
	l := mustOpen(t, t.TempDir(), Options{})
	appendN(t, l, 1, 3)
	if err := l.Append(3, []byte("dup")); err == nil {
		t.Fatal("Append(3) twice succeeded")
	}
	if err := l.Append(5, []byte("gap")); err == nil {
		t.Fatal("Append(5) with a gap succeeded")
	}
	if err := l.Append(4, []byte("ok")); err != nil {
		t.Fatalf("Append(4): %v", err)
	}
}

func TestRotateAndTruncate(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	appendN(t, l, 1, 5)
	if err := l.Rotate(); err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	appendN(t, l, 6, 9)
	if got := len(collect(t, l, 0)); got != 9 {
		t.Fatalf("after rotate: replayed %d records, want 9", got)
	}
	// The checkpoint covers records 1..5: its sealed segment goes away.
	removed, err := l.TruncateThrough(5)
	if err != nil {
		t.Fatalf("TruncateThrough: %v", err)
	}
	if removed != 1 {
		t.Fatalf("TruncateThrough removed %d segments, want 1", removed)
	}
	recs := collect(t, l, 0)
	if len(recs) != 4 || recs[0].Seq != 6 {
		t.Fatalf("after truncate: %d records starting at %d, want 4 starting at 6", len(recs), recs[0].Seq)
	}
	// A sealed segment with live records past the watermark must survive.
	if err := l.Rotate(); err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	if removed, _ := l.TruncateThrough(7); removed != 0 {
		t.Fatalf("TruncateThrough(7) removed a segment holding records 6..9")
	}
}

func TestRotateIdempotentOnEmptySegment(t *testing.T) {
	l := mustOpen(t, t.TempDir(), Options{})
	appendN(t, l, 1, 3)
	if err := l.Rotate(); err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	before := l.Stats()
	if err := l.Rotate(); err != nil {
		t.Fatalf("second Rotate: %v", err)
	}
	if after := l.Stats(); after.Rotations != before.Rotations || after.Segments != before.Segments {
		t.Fatalf("rotating an empty active segment changed state: %+v -> %+v", before, after)
	}
}

func TestRotateToRecordsGap(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	appendN(t, l, 1, 3)
	if err := l.RotateTo(10); err != nil {
		t.Fatalf("RotateTo(10): %v", err)
	}
	if err := l.Append(4, []byte("stale")); err == nil {
		t.Fatal("append at pre-gap seq succeeded after RotateTo")
	}
	if err := l.Append(11, []byte("post-gap")); err != nil {
		t.Fatalf("Append(11): %v", err)
	}
	if err := l.RotateTo(5); err == nil {
		t.Fatal("RotateTo behind LastSeq succeeded")
	}
	l.Close()
	l2 := mustOpen(t, dir, Options{})
	recs := collect(t, l2, 0)
	if len(recs) != 4 || recs[3].Seq != 11 {
		t.Fatalf("after reopen across gap: %d records, last %d; want 4 ending at 11", len(recs), recs[len(recs)-1].Seq)
	}
}

func TestBatchPolicyFlushesOnCountAndTimer(t *testing.T) {
	l := mustOpen(t, t.TempDir(), Options{Policy: SyncBatch, BatchRecords: 3, BatchDelay: 20 * time.Millisecond})
	appendN(t, l, 1, 2)
	if st := l.Stats(); st.Synced != 0 || st.Pending != 2 {
		t.Fatalf("before batch full: %+v", st)
	}
	appendN(t, l, 3, 3) // third append reaches BatchRecords
	if st := l.Stats(); st.Synced != 1 || st.Pending != 0 {
		t.Fatalf("after batch full: %+v", st)
	}
	appendN(t, l, 4, 4)
	deadline := time.Now().Add(2 * time.Second)
	for {
		if st := l.Stats(); st.Pending == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("batch timer never flushed: %+v", l.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestSyncDrainsPending(t *testing.T) {
	l := mustOpen(t, t.TempDir(), Options{Policy: SyncOff})
	appendN(t, l, 1, 4)
	if st := l.Stats(); st.Pending != 4 {
		t.Fatalf("SyncOff pending = %d, want 4", st.Pending)
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if st := l.Stats(); st.Pending != 0 || st.Synced != 1 {
		t.Fatalf("after Sync: %+v", st)
	}
}

func TestClosedLogRefuses(t *testing.T) {
	l := mustOpen(t, t.TempDir(), Options{})
	appendN(t, l, 1, 1)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := l.Append(2, []byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Close = %v, want ErrClosed", err)
	}
	if err := l.Rotate(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Rotate after Close = %v, want ErrClosed", err)
	}
}

// activeSegmentPath returns the highest-base segment file in dir.
func activeSegmentPath(t *testing.T, dir string) string {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, segPrefix+"*"+segSuffix))
	if err != nil || len(names) == 0 {
		t.Fatalf("no segments in %s (%v)", dir, err)
	}
	return names[len(names)-1]
}

func TestTornTailTruncated(t *testing.T) {
	for _, cut := range []int{1, recHeaderSize - 1, recHeaderSize + 3} {
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			l := mustOpen(t, dir, Options{})
			appendN(t, l, 1, 5)
			l.Close()
			// Tear the last record: keep `cut` bytes of it.
			path := activeSegmentPath(t, dir)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			last := len(data) - (recHeaderSize + len("record-5"))
			if err := os.WriteFile(path, data[:last+cut], 0o644); err != nil {
				t.Fatal(err)
			}
			l2, err := Open(dir, Options{})
			if err != nil {
				t.Fatalf("Open after torn tail: %v", err)
			}
			defer l2.Close()
			if st := l2.Stats(); st.TornRepairs != 1 {
				t.Fatalf("TornRepairs = %d, want 1", st.TornRepairs)
			}
			if got := l2.LastSeq(); got != 4 {
				t.Fatalf("LastSeq after repair = %d, want 4", got)
			}
			// The log must accept the re-issued record 5.
			if err := l2.Append(5, []byte("record-5-retry")); err != nil {
				t.Fatalf("Append after repair: %v", err)
			}
		})
	}
}

func TestMidLogCorruptionTyped(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	appendN(t, l, 1, 6)
	l.Close()
	// Flip a payload byte of record 2 — not the tail, so not torn.
	path := activeSegmentPath(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	off := segHeaderSize + (recHeaderSize + len("record-1")) + recHeaderSize
	data[off] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open with mid-log corruption = %v, want ErrCorrupt", err)
	}
}

func TestSealedSegmentDamageTyped(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	appendN(t, l, 1, 3)
	if err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 4, 5)
	l.Close()
	// Truncate the SEALED segment's tail: damage there is never "torn".
	names, _ := filepath.Glob(filepath.Join(dir, segPrefix+"*"+segSuffix))
	if len(names) != 2 {
		t.Fatalf("want 2 segments, have %v", names)
	}
	info, err := os.Stat(names[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(names[0], info.Size()-4); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open with sealed-segment damage = %v, want ErrCorrupt", err)
	}
}

func TestTornRotationSegmentRemoved(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	appendN(t, l, 1, 3)
	l.Close()
	// Simulate a crash mid-rotation: a new segment file whose header never
	// finished writing.
	torn := filepath.Join(dir, segName(3))
	if err := os.WriteFile(torn, []byte(segMagic[:5]), 0o644); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open with torn rotation segment: %v", err)
	}
	defer l2.Close()
	if _, err := os.Stat(torn); !os.IsNotExist(err) {
		t.Fatalf("torn segment still present: %v", err)
	}
	if got := l2.LastSeq(); got != 3 {
		t.Fatalf("LastSeq = %d, want 3", got)
	}
	if err := l2.Append(4, []byte("next")); err != nil {
		t.Fatalf("Append after repair: %v", err)
	}
}

// TestByteFlipSweepNeverPanics flips every byte of a multi-segment log in
// turn and opens the result: each position must yield a clean open (with
// possible torn-tail repair) or a typed error — never a panic, never an
// unwrapped error class.
func TestByteFlipSweepNeverPanics(t *testing.T) {
	master := t.TempDir()
	l := mustOpen(t, master, Options{})
	appendN(t, l, 1, 4)
	if err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 5, 8)
	l.Close()
	names, _ := filepath.Glob(filepath.Join(master, segPrefix+"*"+segSuffix))
	for _, name := range names {
		orig, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		for off := 0; off < len(orig); off++ {
			dir := t.TempDir()
			for _, cp := range names {
				data, _ := os.ReadFile(cp)
				if cp == name {
					data = append([]byte(nil), data...)
					data[off] ^= 0xff
				}
				if err := os.WriteFile(filepath.Join(dir, filepath.Base(cp)), data, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			l2, err := Open(dir, Options{})
			if err != nil {
				if !errors.Is(err, ErrCorrupt) {
					t.Fatalf("flip at %s+%d: untyped error %v", filepath.Base(name), off, err)
				}
				continue
			}
			// Opened — replay must also hold together.
			if _, _, err := l2.Replay(0, func(Record) error { return nil }); err != nil && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("flip at %s+%d: untyped replay error %v", filepath.Base(name), off, err)
			}
			l2.Close()
		}
	}
}

func TestReplayCallbackErrorPropagates(t *testing.T) {
	l := mustOpen(t, t.TempDir(), Options{})
	appendN(t, l, 1, 5)
	boom := errors.New("boom")
	applied, _, err := l.Replay(0, func(r Record) error {
		if r.Seq == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Replay error = %v, want boom", err)
	}
	if applied != 2 {
		t.Fatalf("applied = %d, want 2", applied)
	}
}

func TestParsePolicy(t *testing.T) {
	for in, want := range map[string]Policy{"": SyncAlways, "always": SyncAlways, "Batch": SyncBatch, "off": SyncOff} {
		got, err := ParsePolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParsePolicy(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParsePolicy("sometimes"); err == nil {
		t.Fatal("ParsePolicy accepted garbage")
	}
}

func TestHeaderValidation(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, dir, Options{})
	appendN(t, l, 1, 2)
	if err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 3, 3)
	l.Close()
	// Corrupt the SEALED segment's header base field (and leave its CRC
	// stale): typed corruption.
	names, _ := filepath.Glob(filepath.Join(dir, segPrefix+"*"+segSuffix))
	data, _ := os.ReadFile(names[0])
	binary.LittleEndian.PutUint64(data[16:], 99)
	os.WriteFile(names[0], data, 0o644)
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open with bad sealed header = %v, want ErrCorrupt", err)
	}
}

func TestEncodeRecordStable(t *testing.T) {
	a := encodeRecord(7, []byte("payload"))
	b := encodeRecord(7, []byte("payload"))
	if !bytes.Equal(a, b) {
		t.Fatal("encodeRecord is not deterministic")
	}
	if len(a) != recHeaderSize+len("payload") {
		t.Fatalf("record length %d", len(a))
	}
	if !strings.Contains(string(a), "payload") {
		t.Fatal("payload not embedded verbatim")
	}
}
