package algebra

import (
	"fmt"
	"strings"

	"tlc/internal/seq"
)

// Prune removes the nodes of the listed classes (with their subtrees) from
// every tree and drops the class bindings. The translator uses it to clean
// up the join-value copies that a nested block threads through its
// Construct for the outer Join (the "(9)" child of Construct 8 in
// Figure 8): once the Join has consumed them, they must not leak into the
// final output.
type Prune struct {
	unary
	Classes []int
}

// NewPrune returns a Prune over in.
func NewPrune(in Op, classes ...int) *Prune {
	p := &Prune{Classes: append([]int(nil), classes...)}
	p.In = in
	return p
}

// Label implements Op.
func (p *Prune) Label() string {
	parts := make([]string, len(p.Classes))
	for i, c := range p.Classes {
		parts[i] = fmt.Sprintf("(%d)", c)
	}
	return "Prune " + strings.Join(parts, ", ")
}

func (p *Prune) eval(_ *Context, in []seq.Seq) (seq.Seq, error) {
	// Prune mutates trees it owns in place; frozen shared trees are copied
	// first — and only when they actually bind one of the pruned classes.
	out := in[0]
	for i, t := range out {
		needs := false
		for _, lcl := range p.Classes {
			if len(t.ClassAll(lcl)) > 0 {
				needs = true
				break
			}
		}
		if !needs {
			continue
		}
		mt := t.Mutable()
		out[i] = mt
		for _, lcl := range p.Classes {
			for _, n := range append([]*seq.Node(nil), mt.ClassAll(lcl)...) {
				seq.Detach(n)
				n.Walk(func(m *seq.Node) bool {
					mt.RemoveFromClasses(m)
					return true
				})
			}
		}
	}
	return out, nil
}

// ClassRefs implements ClassUser.
func (p *Prune) ClassRefs() []int { return append([]int(nil), p.Classes...) }

// RemapClasses implements ClassRemapper.
func (p *Prune) RemapClasses(m map[int]int) {
	for i := range p.Classes {
		p.Classes[i] = remap(m, p.Classes[i])
	}
}

var _ Op = (*Prune)(nil)
