package algebra

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"tlc/internal/seq"
)

// SortKey is one ORDER BY key: the content of the singleton node bound to
// LCL, compared numerically when both values parse as numbers.
type SortKey struct {
	LCL        int
	Descending bool
}

// Sort orders the sequence by the given keys (Section 2.3 / the
// OrderClause case of Figure 6). Trees whose key class is empty sort after
// all keyed trees, preserving their relative order; the sort is stable.
type Sort struct {
	unary
	Keys []SortKey
}

// NewSort returns a Sort over in.
func NewSort(in Op, keys ...SortKey) *Sort {
	s := &Sort{Keys: append([]SortKey(nil), keys...)}
	s.In = in
	return s
}

// Label implements Op.
func (s *Sort) Label() string {
	parts := make([]string, len(s.Keys))
	for i, k := range s.Keys {
		dir := "asc"
		if k.Descending {
			dir = "desc"
		}
		parts[i] = fmt.Sprintf("(%d) %s", k.LCL, dir)
	}
	return "Sort: " + strings.Join(parts, ", ")
}

func (s *Sort) eval(ctx *Context, in []seq.Seq) (seq.Seq, error) {
	type keyed struct {
		tree *seq.Tree
		keys []sortVal
	}
	rows := make([]keyed, len(in[0]))
	for i, t := range in[0] {
		ks := make([]sortVal, len(s.Keys))
		for j, k := range s.Keys {
			members := t.Class(k.LCL)
			if len(members) == 0 {
				ks[j] = sortVal{missing: true}
				continue
			}
			ks[j] = newSortVal(seq.Content(ctx.Store, members[0]))
		}
		rows[i] = keyed{tree: t, keys: ks}
	}
	sort.SliceStable(rows, func(a, b int) bool {
		for j, k := range s.Keys {
			c := rows[a].keys[j].compare(rows[b].keys[j])
			if c == 0 {
				continue
			}
			if k.Descending {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	out := make(seq.Seq, len(rows))
	for i, r := range rows {
		out[i] = r.tree
	}
	return out, nil
}

// SortDocOrder restores document order by the identifier of the node bound
// to LCL (or the tree root when LCL is zero) — the final pass of the
// sort–merge–sort strategy, exposed as its own operator for baseline plans
// that lose order in grouping.
type SortDocOrder struct {
	unary
	LCL int
}

// NewSortDocOrder returns a document-order Sort over in.
func NewSortDocOrder(in Op, lcl int) *SortDocOrder {
	s := &SortDocOrder{LCL: lcl}
	s.In = in
	return s
}

// Label implements Op.
func (s *SortDocOrder) Label() string {
	if s.LCL == 0 {
		return "SortDocOrder: root"
	}
	return fmt.Sprintf("SortDocOrder: (%d)", s.LCL)
}

func (s *SortDocOrder) eval(_ *Context, in []seq.Seq) (seq.Seq, error) {
	out := append(seq.Seq(nil), in[0]...)
	anchor := func(t *seq.Tree) *seq.Node {
		if s.LCL == 0 {
			return t.Root
		}
		m := t.Class(s.LCL)
		if len(m) == 0 {
			return t.Root
		}
		return m[0]
	}
	sort.SliceStable(out, func(a, b int) bool {
		return seq.Less(anchor(out[a]), anchor(out[b]))
	})
	return out, nil
}

// sortVal is a comparison key with numeric-aware semantics.
type sortVal struct {
	raw     string
	num     float64
	isNum   bool
	missing bool
}

func newSortVal(s string) sortVal {
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return sortVal{raw: s, num: f, isNum: true}
	}
	return sortVal{raw: s}
}

func (v sortVal) compare(o sortVal) int {
	switch {
	case v.missing && o.missing:
		return 0
	case v.missing:
		return 1
	case o.missing:
		return -1
	}
	if v.isNum && o.isNum {
		switch {
		case v.num < o.num:
			return -1
		case v.num > o.num:
			return 1
		default:
			return 0
		}
	}
	return strings.Compare(v.raw, o.raw)
}

var _ Op = (*Sort)(nil)
var _ Op = (*SortDocOrder)(nil)
