package algebra

import (
	"fmt"
	"strconv"

	"tlc/internal/seq"
	"tlc/internal/store"
)

// AggFunc names an aggregate function.
type AggFunc string

// Supported aggregate functions.
const (
	Count AggFunc = "count"
	Sum   AggFunc = "sum"
	Avg   AggFunc = "avg"
	Min   AggFunc = "min"
	Max   AggFunc = "max"
)

// Aggregate applies an aggregate function to the members of a logical
// class within each tree (Section 2.3, Aggregate-Function). The result is
// a fresh node labelled NewLCL, placed as a sibling of the class members
// (or under the root when the class is empty). An empty class yields 0 for
// count and the flag "empty" for every other function, per the paper.
type Aggregate struct {
	unary
	Fn     AggFunc
	LCL    int
	NewLCL int
}

// NewAggregate returns an Aggregate over in.
func NewAggregate(in Op, fn AggFunc, lcl, newLCL int) *Aggregate {
	a := &Aggregate{Fn: fn, LCL: lcl, NewLCL: newLCL}
	a.In = in
	return a
}

// Label implements Op.
func (a *Aggregate) Label() string {
	return fmt.Sprintf("Aggregate: %s((%d)) -> new (%d)", a.Fn, a.LCL, a.NewLCL)
}

func (a *Aggregate) eval(ctx *Context, in []seq.Seq) (seq.Seq, error) {
	// Aggregate only adds one node per tree; it mutates trees it owns in
	// place and copies frozen shared ones first. The result nodes are
	// temporaries, so the chunked path renumbers after gathering (copies
	// preserve TempIDs, so making a tree mutable never disturbs the
	// watermark bookkeeping).
	return chunkMap(ctx, in[0], true, func(chunk seq.Seq) (seq.Seq, error) {
		for i, in := range chunk {
			t, nm := in.MutableWithMapping()
			chunk[i] = t
			members := make([]*seq.Node, 0, len(in.Class(a.LCL)))
			for _, m := range in.Class(a.LCL) {
				members = append(members, nm.Get(m))
			}
			val, err := applyAgg(ctx.Store, a.Fn, members)
			if err != nil {
				return nil, err
			}
			res := ctx.arena.TempElement(string(a.Fn))
			seq.Attach(res, ctx.arena.TempText(val))
			parent := t.Root
			if len(members) > 0 && members[0].Parent != nil {
				parent = members[0].Parent
			}
			seq.Attach(parent, res)
			t.AddToClass(a.NewLCL, res)
		}
		return chunk, nil
	})
}

// applyAgg computes the aggregate over the member contents.
func applyAgg(st *store.Store, fn AggFunc, members []*seq.Node) (string, error) {
	if fn == Count {
		return strconv.Itoa(len(members)), nil
	}
	if len(members) == 0 {
		return "empty", nil
	}
	vals := make([]float64, 0, len(members))
	for _, m := range members {
		c := seq.Content(st, m)
		f, err := strconv.ParseFloat(c, 64)
		if err != nil {
			return "", fmt.Errorf("aggregate %s over non-numeric content %q", fn, c)
		}
		vals = append(vals, f)
	}
	var acc float64
	switch fn {
	case Sum, Avg:
		for _, v := range vals {
			acc += v
		}
		if fn == Avg {
			acc /= float64(len(vals))
		}
	case Min:
		acc = vals[0]
		for _, v := range vals[1:] {
			if v < acc {
				acc = v
			}
		}
	case Max:
		acc = vals[0]
		for _, v := range vals[1:] {
			if v > acc {
				acc = v
			}
		}
	default:
		return "", fmt.Errorf("unknown aggregate function %q", fn)
	}
	return strconv.FormatFloat(acc, 'f', -1, 64), nil
}

var _ Op = (*Aggregate)(nil)
