package algebra

import (
	"context"
	"fmt"
	"testing"

	"tlc/internal/seq"
)

// TestDAGSplitIsolation is the copy-on-write contract test: when one
// subplan feeds two consumers (fan-out > 1 in the DAG), a consumer that
// mutates its input — Prune detaches nodes and drops class bindings — must
// never affect what the sibling consumer sees. The shared Select feeds
// both a Prune of the bidder class and an Aggregate counting that same
// class. The Aggregate runs after the Prune (evaluation is input order),
// so a leak makes every count 0; isolation keeps the counts {3, 1, 0}.
// The merge grafts all counts onto each tree (the select's trees share the
// document root), which doesn't matter for what's being tested. The 4-way
// budget runs the two branches concurrently, so under -race a missing copy
// is also a data race, not just a wrong count.
func TestDAGSplitIsolation(t *testing.T) {
	s := loadAuction(t)
	for _, par := range []int{1, 4} {
		t.Run(fmt.Sprintf("parallelism=%d", par), func(t *testing.T) {
			shared := auctionSelect()
			pruned := NewPrune(shared, 5)
			counted := NewAggregate(shared, Count, 5, 11)
			merged := NewMerge(pruned, counted)

			out, err := RunContext(context.Background(), s, merged, par)
			if err != nil {
				t.Fatal(err)
			}
			if len(out) != 3 {
				t.Fatalf("%d trees, want 3", len(out))
			}
			for ti, w := range out {
				got := map[string]int{}
				for _, cnt := range w.ClassAll(11) {
					got[seq.Content(s, cnt)]++
				}
				want := map[string]int{"3": 1, "1": 1, "0": 1}
				for k, n := range want {
					if got[k] != n {
						t.Fatalf("tree %d: bidder counts %v, want one each of 3/1/0 — the Prune branch leaked into the Aggregate branch", ti, got)
					}
				}
			}
		})
	}
}

// TestDAGSplitFrozenInputPreserved pins the other half of the contract:
// the shared sequence itself must come out of the evaluation unchanged,
// because the memo keeps handing aliases of it to later consumers.
func TestDAGSplitFrozenInputPreserved(t *testing.T) {
	s := loadAuction(t)
	shared := auctionSelect()
	base, err := Run(s, shared)
	if err != nil {
		t.Fatal(err)
	}
	wantBidders := make([]int, len(base))
	for i, w := range base {
		wantBidders[i] = len(w.ClassAll(5))
	}

	pruned := NewPrune(shared, 5)
	counted := NewAggregate(shared, Count, 5, 11)
	merged := NewMerge(pruned, counted)
	ctx := NewContext(s)
	if _, err := Eval(ctx, merged); err != nil {
		t.Fatal(err)
	}
	memo, ok := ctx.memo[shared]
	if !ok {
		t.Fatal("shared subplan was not memoized despite fan-out 2")
	}
	for i, w := range memo {
		if !w.Frozen() {
			t.Error("memoized shared tree is not frozen")
		}
		if got := len(w.ClassAll(5)); got != wantBidders[i] {
			t.Errorf("tree %d: shared input mutated: %d bidders bound, want %d", i, got, wantBidders[i])
		}
	}
}
