package algebra

import "reflect"

// SpliceAbove returns a plan in which build(target) replaces target as the
// input of every consumer on the paths from root down to target. The
// original plan is left untouched: only the operators on those paths are
// cloned (shallow whole-struct copies, so labels, patterns and modes are
// shared), everything else — including target itself and any subplan
// hanging off the cloned spine — is shared between the two plans. The
// second return is false (and the plan unchanged) when target is not
// reachable from root.
//
// The plan cache uses this to graft residual filters onto a cached plan
// without mutating the entry other queries share.
func SpliceAbove(root, target Op, build func(Op) Op) (Op, bool) {
	if root == target {
		return build(target), true
	}
	var replacement Op
	memo := make(map[Op]Op)
	var rec func(op Op) Op
	rec = func(op Op) Op {
		if op == target {
			if replacement == nil {
				replacement = build(target)
			}
			return replacement
		}
		if c, ok := memo[op]; ok {
			return c
		}
		memo[op] = op // tentative: guards against revisiting shared subplans
		var clone Op
		for _, in := range op.Inputs() {
			nin := rec(in)
			if nin == in {
				continue
			}
			if clone == nil {
				clone = shallowClone(op)
			}
			ReplaceInput(clone, in, nin)
		}
		if clone == nil {
			return op
		}
		memo[op] = clone
		return clone
	}
	out := rec(root)
	return out, out != root
}

// shallowClone copies one operator node: a fresh struct of the same type
// with every field (inputs included) aliasing the original's.
func shallowClone(op Op) Op {
	v := reflect.ValueOf(op)
	if v.Kind() != reflect.Pointer || v.IsNil() {
		return op
	}
	c := reflect.New(v.Elem().Type())
	c.Elem().Set(v.Elem())
	return c.Interface().(Op)
}
