package algebra

import (
	"fmt"
	"strings"

	"tlc/internal/physical"
	"tlc/internal/seq"
)

// Materialize copies the full stored subtree of every node bound to the
// listed classes into the intermediate result. TLC never needs this
// operator — its Construct materializes at the very end — but the TAX
// baseline materializes the subtrees of all bound variables right after
// its first selection (Section 6.1), which is one of the costs the paper
// charges it for.
type Materialize struct {
	unary
	Classes []int
}

// NewMaterialize returns a Materialize over in.
func NewMaterialize(in Op, classes ...int) *Materialize {
	m := &Materialize{Classes: append([]int(nil), classes...)}
	m.In = in
	return m
}

// Label implements Op.
func (m *Materialize) Label() string {
	parts := make([]string, len(m.Classes))
	for i, c := range m.Classes {
		parts[i] = fmt.Sprintf("(%d)", c)
	}
	return "Materialize " + strings.Join(parts, ", ")
}

func (m *Materialize) eval(ctx *Context, in []seq.Seq) (seq.Seq, error) {
	// In-place expansion keeps the already-matched witness kids (and their
	// class memberships) while pulling in the rest of the stored subtree.
	// Trees this operator owns expand in place; frozen shared trees are
	// copied first, and only when they bind one of the listed classes.
	out := in[0]
	for i, t := range out {
		needs := false
		for _, lcl := range m.Classes {
			if len(t.Class(lcl)) > 0 {
				needs = true
				break
			}
		}
		if !needs {
			continue
		}
		mt := t.Mutable()
		out[i] = mt
		for _, lcl := range m.Classes {
			for _, n := range mt.Class(lcl) {
				seq.ExpandInPlaceIn(ctx.arena, ctx.Store, n)
			}
		}
	}
	return out, nil
}

// GroupByOp exposes the grouping procedure (flat match + group-by) that
// TAX and GTP use instead of nest-joins; see physical.GroupBy. Exclude
// lists the class labels of the grouped branch, which must not take part
// in the grouping key.
type GroupByOp struct {
	unary
	BasisLCL, MemberLCL int
	Exclude             []int
}

// NewGroupBy returns a GroupByOp over in.
func NewGroupBy(in Op, basis, member int, exclude ...int) *GroupByOp {
	g := &GroupByOp{BasisLCL: basis, MemberLCL: member, Exclude: append([]int(nil), exclude...)}
	g.In = in
	return g
}

// Label implements Op.
func (g *GroupByOp) Label() string {
	return fmt.Sprintf("GroupBy: basis (%d), members (%d)", g.BasisLCL, g.MemberLCL)
}

func (g *GroupByOp) eval(ctx *Context, in []seq.Seq) (seq.Seq, error) {
	return physical.GroupBy(ctx.GoContext(), ctx.Store, in[0], g.BasisLCL, g.MemberLCL, g.Exclude)
}

// MergeOp merges two sequences of trees rooted at the same stored nodes —
// the merge step of the split/group/merge DAG in GTP plans; see
// physical.MergeOnRoot.
type MergeOp struct {
	binary
}

// NewMerge returns a MergeOp of left and right.
func NewMerge(left, right Op) *MergeOp {
	m := &MergeOp{}
	m.Left, m.Right = left, right
	return m
}

// Label implements Op.
func (m *MergeOp) Label() string { return "Merge on root" }

func (m *MergeOp) eval(ctx *Context, in []seq.Seq) (seq.Seq, error) {
	return physical.MergeOnRoot(ctx.GoContext(), ctx.Store, in[0], in[1])
}

var _ Op = (*Materialize)(nil)
var _ Op = (*GroupByOp)(nil)
var _ Op = (*MergeOp)(nil)
