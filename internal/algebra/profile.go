package algebra

import (
	"fmt"
	"strings"
	"time"

	"tlc/internal/failure"
	"tlc/internal/seq"
	"tlc/internal/store"
)

// OpStats is the runtime record of one operator in a profiled evaluation.
type OpStats struct {
	// Op is the profiled operator.
	Op Op
	// OutTrees is the cardinality of the operator's output sequence.
	OutTrees int
	// Elapsed is the operator's own evaluation time, excluding inputs.
	Elapsed time.Duration
	// Store is the store work attributable to this operator (counter delta
	// around its evaluation, excluding inputs).
	Store store.Stats
}

// ProfileResult is the outcome of a profiled evaluation.
type ProfileResult struct {
	// Out is the plan's result sequence.
	Out seq.Seq
	// Stats holds one record per operator, in post-order (inputs before
	// consumers), matching evaluation order.
	Stats []OpStats
	// Arena is the evaluation's witness-node allocation record: how many
	// nodes the run drew from its slab arena and how many slabs that cost.
	Arena seq.ArenaStats
}

// Profile evaluates the plan like Eval while recording, per operator, its
// output cardinality, its own wall-clock time and its own store accesses —
// the data behind an EXPLAIN ANALYZE. Shared subplans (fan-out > 1) are
// profiled once, like Eval computes them once. Like Eval, Profile is a
// containment barrier: panics in profiled evaluation come back as errors.
func Profile(ctx *Context, root Op) (res *ProfileResult, err error) {
	defer failure.Recover(&err, "algebra.Profile")
	fanout := make(map[Op]int)
	for _, o := range Ops(root) {
		for _, in := range o.Inputs() {
			fanout[in]++
		}
	}
	pr := &ProfileResult{}
	out, err := profileNode(ctx, root, fanout, pr)
	if err != nil {
		return nil, err
	}
	pr.Out = out
	pr.Arena = ctx.ArenaStats()
	return pr, nil
}

func profileNode(ctx *Context, op Op, fanout map[Op]int, pr *ProfileResult) (seq.Seq, error) {
	if err := ctx.Cancelled(); err != nil {
		return nil, err
	}
	if res, ok := ctx.memo[op]; ok {
		return res.Alias(), nil
	}
	ins := op.Inputs()
	res := make([]seq.Seq, len(ins))
	for i, in := range ins {
		r, err := profileNode(ctx, in, fanout, pr)
		if err != nil {
			return nil, err
		}
		res[i] = r
	}
	before := ctx.Store.Snapshot()
	start := time.Now()
	out, err := op.eval(ctx, res)
	elapsed := time.Since(start)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", op.Label(), err)
	}
	if err := ctx.checkCard(op, len(out)); err != nil {
		return nil, err
	}
	after := ctx.Store.Snapshot()
	pr.Stats = append(pr.Stats, OpStats{
		Op:       op,
		OutTrees: len(out),
		Elapsed:  elapsed,
		Store: store.Stats{
			TagLookups:        after.TagLookups - before.TagLookups,
			TagRefs:           after.TagRefs - before.TagRefs,
			ValueLookups:      after.ValueLookups - before.ValueLookups,
			NodesRead:         after.NodesRead - before.NodesRead,
			NodesMaterialized: after.NodesMaterialized - before.NodesMaterialized,
		},
	})
	if fanout[op] > 1 {
		out.Freeze()
		ctx.memo[op] = out
		return out.Alias(), nil
	}
	return out, nil
}

// String renders the profile as the plan tree annotated with cardinality
// and time per operator.
func (pr *ProfileResult) String() string { return pr.StringWithEstimates(nil) }

// StringWithEstimates renders the profile like String and, for operators
// est knows, adds the planner's estimated cardinality next to the actual
// one together with the Q-error — max(est/actual, actual/est), both sides
// clamped to at least one tree, so 1.0 is a perfect estimate and the
// factor is symmetric in direction. Mis-estimates are then visible on the
// same screen as the timings they caused.
func (pr *ProfileResult) StringWithEstimates(est func(Op) (float64, bool)) string {
	byOp := make(map[Op]OpStats, len(pr.Stats))
	var root Op
	for _, s := range pr.Stats {
		byOp[s.Op] = s
	}
	// The last record is the plan root (post-order).
	if len(pr.Stats) > 0 {
		root = pr.Stats[len(pr.Stats)-1].Op
	}
	if root == nil {
		return "(empty profile)\n"
	}
	var sb strings.Builder
	var walk func(op Op, depth int)
	walk = func(op Op, depth int) {
		indent := strings.Repeat("  ", depth)
		label := strings.Split(op.Label(), "\n")[0]
		s := byOp[op]
		fmt.Fprintf(&sb, "%s%-*s -> %d trees", indent, 40-len(indent), label, s.OutTrees)
		if est != nil {
			if e, ok := est(op); ok {
				fmt.Fprintf(&sb, " (est=%.0f q=%.1f)", e, qerror(e, float64(s.OutTrees)))
			}
		}
		fmt.Fprintf(&sb, ", %.3fms", float64(s.Elapsed.Microseconds())/1000)
		if s.Store != (store.Stats{}) {
			fmt.Fprintf(&sb, " [%s]", s.Store)
		}
		sb.WriteByte('\n')
		for _, in := range op.Inputs() {
			walk(in, depth+1)
		}
	}
	walk(root, 0)
	if pr.Arena != (seq.ArenaStats{}) {
		fmt.Fprintf(&sb, "%s\n", pr.Arena)
	}
	return sb.String()
}

// qerror is the Q-error of an estimate: the multiplicative factor by which
// it misses the actual cardinality, with both sides clamped to >= 1 so
// empty results keep the factor finite.
func qerror(est, actual float64) float64 {
	if est < 1 {
		est = 1
	}
	if actual < 1 {
		actual = 1
	}
	if est > actual {
		return est / actual
	}
	return actual / est
}
