package algebra

import (
	"fmt"
	"strings"

	"tlc/internal/pattern"
	"tlc/internal/seq"
)

// FilterCompare keeps the trees in which the content of a node bound to
// LLCL compares against the content of a node bound to RLCL, existentially
// over the member sets (general-comparison semantics, consistent with the
// value join). It covers value-join predicates that cannot be folded into
// a Join operator (e.g. a second predicate over an already-joined pair).
// Trees where either class is empty fail the predicate.
type FilterCompare struct {
	unary
	LLCL int
	Op   pattern.Cmp
	RLCL int
}

// NewFilterCompare returns a FilterCompare over in.
func NewFilterCompare(in Op, llcl int, op pattern.Cmp, rlcl int) *FilterCompare {
	f := &FilterCompare{LLCL: llcl, Op: op, RLCL: rlcl}
	f.In = in
	return f
}

// Label implements Op.
func (f *FilterCompare) Label() string {
	return fmt.Sprintf("FilterCompare: (%d) %s (%d)", f.LLCL, f.Op, f.RLCL)
}

func (f *FilterCompare) eval(ctx *Context, in []seq.Seq) (seq.Seq, error) {
	return chunkMap(ctx, in[0], false, func(chunk seq.Seq) (seq.Seq, error) {
		var out seq.Seq
		for _, t := range chunk {
			l := t.Class(f.LLCL)
			r := t.Class(f.RLCL)
			pass := false
			for _, ln := range l {
				lc := seq.Content(ctx.Store, ln)
				for _, rn := range r {
					if pattern.Compare(f.Op, lc, seq.Content(ctx.Store, rn)) {
						pass = true
						break
					}
				}
				if pass {
					break
				}
			}
			if pass {
				out = append(out, t)
			}
		}
		return out, nil
	})
}

// FilterBranch is one disjunct of a DisjFilter.
type FilterBranch struct {
	LCL  int
	Pred pattern.Predicate
	Mode FilterMode
}

// DisjFilter keeps trees satisfying at least one branch — the plan-level
// treatment of OR-expressions: each disjunct's path is matched with
// optional edges and the disjunction is decided here, instead of the
// UNION-of-plans formulation, which produces the same trees without
// duplicating the block plan.
type DisjFilter struct {
	unary
	Branches []FilterBranch
}

// NewDisjFilter returns a DisjFilter over in.
func NewDisjFilter(in Op, branches ...FilterBranch) *DisjFilter {
	f := &DisjFilter{Branches: append([]FilterBranch(nil), branches...)}
	f.In = in
	return f
}

// Label implements Op.
func (f *DisjFilter) Label() string {
	parts := make([]string, len(f.Branches))
	for i, b := range f.Branches {
		parts[i] = fmt.Sprintf("%s (%d)%s", b.Mode, b.LCL, b.Pred.String())
	}
	return "Filter: " + strings.Join(parts, " OR ")
}

func (f *DisjFilter) eval(ctx *Context, in []seq.Seq) (seq.Seq, error) {
	return chunkMap(ctx, in[0], false, func(chunk seq.Seq) (seq.Seq, error) {
		var out seq.Seq
		for _, t := range chunk {
			pass := false
			for _, b := range f.Branches {
				members := t.Class(b.LCL)
				hold := 0
				for _, n := range members {
					if b.Pred.Eval(seq.Content(ctx.Store, n)) {
						hold++
					}
				}
				switch b.Mode {
				case Every:
					// For a disjunct, an empty class is a non-match rather than
					// vacuous truth: OR semantics require a witness.
					pass = len(members) > 0 && hold == len(members)
				case AtLeastOne:
					pass = hold >= 1
				case ExactlyOne:
					pass = hold == 1
				case NoneOf:
					// A negated disjunct: the branch holds when no class member
					// satisfies the predicate — including the empty class (the
					// negated path simply being absent).
					pass = hold == 0
				}
				if pass {
					break
				}
			}
			if pass {
				out = append(out, t)
			}
		}
		return out, nil
	})
}

var _ Op = (*FilterCompare)(nil)
var _ Op = (*DisjFilter)(nil)
