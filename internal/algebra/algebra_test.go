package algebra

import (
	"strings"
	"testing"

	"tlc/internal/pattern"
	"tlc/internal/seq"
	"tlc/internal/store"
)

const auctionXML = `<site>
  <people>
    <person id="p0"><name>Alice</name><age>30</age></person>
    <person id="p1"><name>Bob</name><age>20</age></person>
    <person id="p2"><name>Carol</name><age>40</age></person>
  </people>
  <open_auctions>
    <open_auction id="a0">
      <bidder><personref person="p0"/><increase>3</increase></bidder>
      <bidder><personref person="p2"/><increase>5</increase></bidder>
      <bidder><personref person="p0"/><increase>7</increase></bidder>
      <quantity>2</quantity>
    </open_auction>
    <open_auction id="a1">
      <bidder><personref person="p2"/><increase>1</increase></bidder>
      <quantity>5</quantity>
    </open_auction>
    <open_auction id="a2">
      <quantity>1</quantity>
    </open_auction>
  </open_auctions>
</site>`

func loadAuction(t *testing.T) *store.Store {
	t.Helper()
	s := store.New()
	if _, err := s.LoadXML("auction.xml", strings.NewReader(auctionXML)); err != nil {
		t.Fatal(err)
	}
	return s
}

// personSelect builds Select: doc_root//person[1] with @id[2] and age[3].
func personSelect() *Select {
	root := pattern.NewDocRoot(0, "auction.xml")
	p := root.Add(pattern.NewTagNode(1, "person"), pattern.Descendant, pattern.One)
	p.Add(pattern.NewTagNode(2, "@id"), pattern.Child, pattern.One)
	p.Add(pattern.NewTagNode(3, "age"), pattern.Child, pattern.One)
	return NewSelect(&pattern.Tree{Root: root})
}

// auctionSelect builds Select: doc_root//open_auction[4] with bidder{*}[5]
// and bidder//@person via a second bidder branch [6]->[7] (flat), matching
// the Selection 2 shape of Figure 7.
func auctionSelect() *Select {
	root := pattern.NewDocRoot(0, "auction.xml")
	a := root.Add(pattern.NewTagNode(4, "open_auction"), pattern.Descendant, pattern.One)
	a.Add(pattern.NewTagNode(5, "bidder"), pattern.Child, pattern.ZeroOrMore)
	return NewSelect(&pattern.Tree{Root: root})
}

func TestSelectDocument(t *testing.T) {
	s := loadAuction(t)
	res, err := Run(s, personSelect())
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("%d persons, want 3", len(res))
	}
	for _, w := range res {
		if _, err := w.Singleton(2); err != nil {
			t.Errorf("witness missing @id: %v", err)
		}
	}
}

func TestFilterModes(t *testing.T) {
	s := loadAuction(t)
	sel := auctionSelect()
	base, err := Run(s, sel)
	if err != nil {
		t.Fatal(err)
	}
	if len(base) != 3 {
		t.Fatalf("%d auctions, want 3", len(base))
	}
	// Extend with increase values per bidder cluster.
	anchor := pattern.NewLCAnchor(0, 5)
	anchor.Add(pattern.NewTagNode(8, "increase"), pattern.Child, pattern.One)
	ext := NewExtendSelect(sel, &pattern.Tree{Root: anchor})

	cases := []struct {
		mode FilterMode
		pred pattern.Predicate
		want int
	}{
		// increase > 2 for all bidders: a1 fails (increase 1), a2 passes
		// vacuously (no bidders), a0 passes (3,5,7).
		{Every, pattern.Predicate{Op: pattern.GT, Value: "2"}, 2},
		// at least one increase > 4: a0 only.
		{AtLeastOne, pattern.Predicate{Op: pattern.GT, Value: "4"}, 1},
		// exactly one increase > 4: a0 (only 5 and 7... two) -> 0; use > 6.
		{ExactlyOne, pattern.Predicate{Op: pattern.GT, Value: "6"}, 1},
	}
	for _, c := range cases {
		res, err := Run(s, NewFilter(ext, 8, c.pred, c.mode))
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != c.want {
			t.Errorf("filter %s %s: %d trees, want %d", c.mode, c.pred.String(), len(res), c.want)
		}
	}
}

func TestAggregateCountAndFilter(t *testing.T) {
	s := loadAuction(t)
	agg := NewAggregate(auctionSelect(), Count, 5, 11)
	res, err := Run(s, agg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("%d trees", len(res))
	}
	var counts []string
	for _, w := range res {
		n, err := w.Singleton(11)
		if err != nil {
			t.Fatal(err)
		}
		counts = append(counts, seq.Content(s, n))
		// The result node is a sibling of the bidders (child of auction)
		// or under the root for the empty cluster.
		if n.Parent == nil {
			t.Error("aggregate node not attached")
		}
	}
	if strings.Join(counts, ",") != "3,1,0" {
		t.Errorf("counts = %v", counts)
	}
	// Filter count > 2: only a0.
	fl, err := Run(s, NewFilter(NewAggregate(auctionSelect(), Count, 5, 11), 11,
		pattern.Predicate{Op: pattern.GT, Value: "2"}, AtLeastOne))
	if err != nil {
		t.Fatal(err)
	}
	if len(fl) != 1 {
		t.Errorf("count>2 keeps %d trees, want 1", len(fl))
	}
}

func TestAggregateNumericFunctions(t *testing.T) {
	s := loadAuction(t)
	anchor := pattern.NewLCAnchor(0, 5)
	anchor.Add(pattern.NewTagNode(8, "increase"), pattern.Child, pattern.One)
	ext := NewExtendSelect(auctionSelect(), &pattern.Tree{Root: anchor})
	for fn, wants := range map[AggFunc][]string{
		Sum: {"15", "1", "empty"},
		Avg: {"5", "1", "empty"},
		Min: {"3", "1", "empty"},
		Max: {"7", "1", "empty"},
	} {
		res, err := Run(s, NewAggregate(ext, fn, 8, 12))
		if err != nil {
			t.Fatalf("%s: %v", fn, err)
		}
		var got []string
		for _, w := range res {
			n, _ := w.Singleton(12)
			got = append(got, seq.Content(s, n))
		}
		if strings.Join(got, ",") != strings.Join(wants, ",") {
			t.Errorf("%s = %v, want %v", fn, got, wants)
		}
	}
}

func TestValueJoinPlan(t *testing.T) {
	s := loadAuction(t)
	// person @id = bidder//@person, nest right.
	// Use a flat auction select for the right side: auction[4]/bidder[6]/personref/@person[7].
	root := pattern.NewDocRoot(0, "auction.xml")
	a := root.Add(pattern.NewTagNode(4, "open_auction"), pattern.Descendant, pattern.One)
	b := a.Add(pattern.NewTagNode(6, "bidder"), pattern.Child, pattern.One)
	b.Add(pattern.NewTagNode(7, "@person"), pattern.Descendant, pattern.One)
	right := NewSelect(&pattern.Tree{Root: root})
	join := NewValueJoin(personSelect(), right, JoinPred{LeftLCL: 2, Op: pattern.EQ, RightLCL: 7}, pattern.One, 9)
	res, err := Run(s, join)
	if err != nil {
		t.Fatal(err)
	}
	// Pairs: p0 x 2 (a0 twice), p2 x 2 (a0, a1).
	if len(res) != 4 {
		t.Fatalf("%d joined trees, want 4", len(res))
	}
}

func TestProjectKeepsSubtreesAndClasses(t *testing.T) {
	s := loadAuction(t)
	res, err := Run(s, NewProject(personSelect(), 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("%d trees", len(res))
	}
	w := res[0]
	// Root retained, person under it, @id under person (witness subtree).
	if w.Root.Tag != "site" {
		t.Errorf("projected root = %q", w.Root.Tag)
	}
	p, err := w.Singleton(1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Parent != w.Root {
		t.Error("person not promoted under root")
	}
	if _, err := w.Singleton(2); err != nil {
		t.Errorf("@id class lost: %v", err)
	}
	// The age class (3) was projected away.
	if len(w.Class(3)) != 0 {
		t.Error("age class survived projection")
	}
}

func TestDupElim(t *testing.T) {
	s := loadAuction(t)
	// Join multiplies persons; DE on person brings them back to unique.
	root := pattern.NewDocRoot(0, "auction.xml")
	a := root.Add(pattern.NewTagNode(4, "open_auction"), pattern.Descendant, pattern.One)
	b := a.Add(pattern.NewTagNode(6, "bidder"), pattern.Child, pattern.One)
	b.Add(pattern.NewTagNode(7, "@person"), pattern.Descendant, pattern.One)
	right := NewSelect(&pattern.Tree{Root: root})
	join := NewValueJoin(personSelect(), right, JoinPred{LeftLCL: 2, Op: pattern.EQ, RightLCL: 7}, pattern.One, 9)
	de := NewDupElim(join, 1)
	res, err := Run(s, de)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("DE left %d trees, want 2 (p0, p2)", len(res))
	}
	// Content-based DE over age: all three persons distinct.
	res2, err := Run(s, NewDupElimContent(personSelect(), 3))
	if err != nil {
		t.Fatal(err)
	}
	if len(res2) != 3 {
		t.Errorf("content DE left %d, want 3", len(res2))
	}
}

func TestConstruct(t *testing.T) {
	s := loadAuction(t)
	// <person name={name.text()}>{bidder subtrees}</person> over a join of
	// persons and auctions — simplified Q1 RETURN.
	sel := personSelect()
	anchor := pattern.NewLCAnchor(0, 1)
	anchor.Add(pattern.NewTagNode(12, "name"), pattern.Child, pattern.One)
	withName := NewExtendSelect(sel, &pattern.Tree{Root: anchor})
	pat := pattern.NewElement("person")
	pat.Attrs = []pattern.ConstructAttr{{Name: "name", FromLCL: 12}}
	pat.NewLCL = 15
	res, err := Run(s, NewConstruct(withName, pat))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("%d constructed trees", len(res))
	}
	xml := res[0].XML(s)
	if xml != `<person name="Alice"/>` {
		t.Errorf("constructed XML = %s", xml)
	}
	if len(res[0].Class(15)) != 1 {
		t.Error("construct root not classified")
	}
}

func TestConstructSubtreeAndText(t *testing.T) {
	s := loadAuction(t)
	sel := auctionSelect()
	anchor := pattern.NewLCAnchor(0, 4)
	anchor.Add(pattern.NewTagNode(13, "quantity"), pattern.Child, pattern.One)
	ext := NewExtendSelect(sel, &pattern.Tree{Root: anchor})
	pat := pattern.NewElement("myauction",
		pattern.NewSubtreeRef(5),
		pattern.NewElement("myquan", pattern.NewTextRef(13)),
	)
	res, err := Run(s, NewConstruct(ext, pat))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("%d trees", len(res))
	}
	xml0 := res[0].XML(s)
	if strings.Count(xml0, "<bidder>") != 3 || !strings.Contains(xml0, "<myquan>2</myquan>") {
		t.Errorf("xml0 = %s", xml0)
	}
	xml2 := res[2].XML(s)
	if strings.Contains(xml2, "<bidder>") || !strings.Contains(xml2, "<myquan>1</myquan>") {
		t.Errorf("xml2 = %s", xml2)
	}
}

func TestSortByContentAndDocOrder(t *testing.T) {
	s := loadAuction(t)
	res, err := Run(s, NewSort(personSelect(), SortKey{LCL: 3}))
	if err != nil {
		t.Fatal(err)
	}
	var ages []string
	for _, w := range res {
		n, _ := w.Singleton(3)
		ages = append(ages, seq.Content(s, n))
	}
	if strings.Join(ages, ",") != "20,30,40" {
		t.Errorf("ascending ages = %v", ages)
	}
	res, err = Run(s, NewSort(personSelect(), SortKey{LCL: 3, Descending: true}))
	if err != nil {
		t.Fatal(err)
	}
	ages = nil
	for _, w := range res {
		n, _ := w.Singleton(3)
		ages = append(ages, seq.Content(s, n))
	}
	if strings.Join(ages, ",") != "40,30,20" {
		t.Errorf("descending ages = %v", ages)
	}
	// Restore document order.
	back, err := Run(s, NewSortDocOrder(NewSort(personSelect(), SortKey{LCL: 3, Descending: true}), 1))
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for _, w := range back {
		n, _ := w.Singleton(2)
		ids = append(ids, seq.Content(s, n))
	}
	if strings.Join(ids, ",") != "p0,p1,p2" {
		t.Errorf("doc order ids = %v", ids)
	}
}

// TestFlattenFigure9 reproduces the Figure 9 example: a nested tree with
// E class {E1,E2} and A class {A1,A2} under B1 flattens to two trees by
// FL[B,E], then to four by FL[B,A].
func TestFlattenFigure9(t *testing.T) {
	s := store.New()
	if _, err := s.LoadXML("f9.xml", strings.NewReader(`<B><E>1</E><E>2</E><A>x</A><A>y</A></B>`)); err != nil {
		t.Fatal(err)
	}
	root := pattern.NewDocRoot(1, "f9.xml")
	root.Add(pattern.NewTagNode(2, "E"), pattern.Child, pattern.OneOrMore)
	root.Add(pattern.NewTagNode(3, "A"), pattern.Child, pattern.OneOrMore)
	sel := NewSelect(&pattern.Tree{Root: root})
	flE := NewFlatten(sel, 1, 2)
	resB, err := Run(s, flE)
	if err != nil {
		t.Fatal(err)
	}
	if len(resB) != 2 {
		t.Fatalf("FL[B,E]: %d trees, want 2", len(resB))
	}
	for _, w := range resB {
		if len(w.Class(2)) != 1 || len(w.Class(3)) != 2 {
			t.Errorf("FL[B,E] classes: E=%d A=%d", len(w.Class(2)), len(w.Class(3)))
		}
	}
	flA := NewFlatten(flE, 1, 3)
	resC, err := Run(s, flA)
	if err != nil {
		t.Fatal(err)
	}
	if len(resC) != 4 {
		t.Fatalf("FL[B,A]: %d trees, want 4", len(resC))
	}
	for _, w := range resC {
		if len(w.Class(2)) != 1 || len(w.Class(3)) != 1 {
			t.Errorf("FL[B,A] classes: E=%d A=%d", len(w.Class(2)), len(w.Class(3)))
		}
	}
}

// TestShadowFigure11 contrasts Flatten and Shadow on the Figure 11 input:
// B1 with A1,A2,A3. Both yield three trees; Shadow keeps the suppressed
// nodes in the class, invisible, and Illuminate brings them back.
func TestShadowFigure11(t *testing.T) {
	s := store.New()
	if _, err := s.LoadXML("f11.xml", strings.NewReader(`<B><A>1</A><A>2</A><A>3</A></B>`)); err != nil {
		t.Fatal(err)
	}
	root := pattern.NewDocRoot(1, "f11.xml")
	root.Add(pattern.NewTagNode(2, "A"), pattern.Child, pattern.OneOrMore)
	sel := NewSelect(&pattern.Tree{Root: root})

	flat, err := Run(s, NewFlatten(sel, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	shadowOp := NewShadow(sel, 1, 2)
	shad, err := Run(s, shadowOp)
	if err != nil {
		t.Fatal(err)
	}
	if len(flat) != 3 || len(shad) != 3 {
		t.Fatalf("flatten %d, shadow %d trees; want 3 each", len(flat), len(shad))
	}
	// Flatten dropped the other As entirely; shadow retained them.
	if got := len(flat[0].ClassAll(2)); got != 1 {
		t.Errorf("flatten retains %d A members", got)
	}
	if got := len(shad[0].ClassAll(2)); got != 3 {
		t.Errorf("shadow retains %d A members, want 3", got)
	}
	if got := len(shad[0].Class(2)); got != 1 {
		t.Errorf("shadow active A members = %d, want 1", got)
	}
	// Serialization of a materialized tree hides shadowed nodes. (An
	// unmaterialized store reference serializes the authoritative stored
	// subtree, so the shadow check needs the expanded form.)
	shadMat, err := Run(s, NewShadow(NewMaterialize(sel, 1), 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if xml := shadMat[0].XML(s); strings.Count(xml, "<A>") != 1 {
		t.Errorf("shadowed XML = %s", xml)
	}
	// Illuminate re-activates.
	lit, err := Run(s, NewIlluminate(NewShadow(sel, 1, 2), 2))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(lit[0].Class(2)); got != 3 {
		t.Errorf("after illuminate active A members = %d, want 3", got)
	}
}

func TestUnion(t *testing.T) {
	s := loadAuction(t)
	u := NewUnion(personSelect(), personSelect())
	res, err := Run(s, u)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 6 {
		t.Errorf("union size = %d, want 6", len(res))
	}
}

func TestMaterializeOp(t *testing.T) {
	s := loadAuction(t)
	s.ResetStats()
	res, err := Run(s, NewMaterialize(personSelect(), 1))
	if err != nil {
		t.Fatal(err)
	}
	if s.Snapshot().NodesMaterialized == 0 {
		t.Error("materialize copied nothing")
	}
	p, _ := res[0].Singleton(1)
	if !p.Full || len(p.Kids) != 3 {
		t.Errorf("person not fully materialized: full=%v kids=%d", p.Full, len(p.Kids))
	}
}

func TestEvalDAGSharedSubplan(t *testing.T) {
	s := loadAuction(t)
	sel := personSelect() // shared by two consumers
	u := NewUnion(NewFilter(sel, 3, pattern.Predicate{Op: pattern.GT, Value: "25"}, AtLeastOne),
		NewFilter(sel, 3, pattern.Predicate{Op: pattern.LE, Value: "25"}, AtLeastOne))
	s.ResetStats()
	res, err := Run(s, u)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Errorf("split union = %d trees, want 3", len(res))
	}
	// The shared select probed the person index once, not twice.
	st := s.Snapshot()
	if st.TagLookups > 3 {
		t.Errorf("shared subplan re-evaluated: %d tag lookups", st.TagLookups)
	}
}

func TestExplain(t *testing.T) {
	s := loadAuction(t)
	_ = s
	plan := NewFilter(NewAggregate(auctionSelect(), Count, 5, 11), 11,
		pattern.Predicate{Op: pattern.GT, Value: "5"}, AtLeastOne)
	out := Explain(plan)
	for _, want := range []string{"Filter: ALO (11)>5", "Aggregate: count((5)) -> new (11)", "Select", "doc_root(auction.xml)"} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain missing %q:\n%s", want, out)
		}
	}
}
