package algebra

import (
	"fmt"

	"tlc/internal/pattern"
	"tlc/internal/physical"
	"tlc/internal/seq"
)

// Select performs an annotated pattern tree match (Section 2.3). A Select
// whose pattern is rooted at a document-root test is a plan leaf reading
// from the store; a Select whose pattern is anchored at a logical class is
// an extension select re-using an earlier match (Section 4.1) and takes one
// input.
type Select struct {
	unary
	APT *pattern.Tree
}

// NewSelect returns a document-rooted Select leaf.
func NewSelect(apt *pattern.Tree) *Select {
	return &Select{APT: apt}
}

// NewExtendSelect returns an extension Select over in.
func NewExtendSelect(in Op, apt *pattern.Tree) *Select {
	s := &Select{APT: apt}
	s.In = in
	return s
}

// Label implements Op.
func (s *Select) Label() string {
	if s.APT == nil {
		return "Select (no pattern)"
	}
	return "Select\n" + s.APT.String()
}

func (s *Select) eval(ctx *Context, in []seq.Seq) (seq.Seq, error) {
	if s.APT == nil || s.APT.Root == nil {
		return nil, fmt.Errorf("select without a pattern")
	}
	if s.APT.Root.Kind == pattern.TestLC {
		if len(in) != 1 {
			return nil, fmt.Errorf("extension select needs exactly one input, has %d", len(in))
		}
		// Extension matching is per-tree; scatter over chunks (the shared
		// matcher's caches make concurrent matching safe). Each chunk is
		// served by the matcher of the shard its trees anchor in — routing
		// partitions the matcher caches by shard, and mis-routed trees (a
		// chunk mixing documents from two shards) still match correctly,
		// just against a colder cache.
		return chunkMap(ctx, in[0], false, func(chunk seq.Seq) (seq.Seq, error) {
			return matcherForChunk(ctx, chunk).MatchExtend(ctx.GoContext(), chunk, s.APT)
		})
	}
	if len(in) != 0 {
		return nil, fmt.Errorf("document select takes no input, has %d", len(in))
	}
	// A document-rooted select reads exactly one document; its pattern work
	// belongs to the shard that owns it.
	return ctx.MatcherFor(ctx.Store.ShardOfName(s.APT.Root.Doc)).MatchDocument(ctx.GoContext(), s.APT)
}

// matcherForChunk routes a chunk of witness trees to the matcher of the
// shard owning the first tree's anchoring document (the context's default
// matcher when the chunk is empty or anchored at temporary nodes).
func matcherForChunk(ctx *Context, chunk seq.Seq) *physical.Matcher {
	for _, t := range chunk {
		if t.Root != nil && t.Root.IsStore() {
			return ctx.MatcherFor(ctx.Store.ShardOf(t.Root.Doc))
		}
	}
	return ctx.Matcher
}

// Filter restricts a sequence to the trees whose logical class LCL
// satisfies predicate Pred under the given quantification mode
// (Section 2.3). The default mode Every passes trees whose class is empty,
// per the paper's footnote on Every semantics.
type Filter struct {
	unary
	LCL  int
	Pred pattern.Predicate
	Mode FilterMode
}

// FilterMode is the quantification mode of a Filter.
type FilterMode uint8

// Filter modes.
const (
	// Every requires the predicate to hold at all members (vacuously true
	// for an empty class).
	Every FilterMode = iota
	// AtLeastOne requires the predicate at one or more members.
	AtLeastOne
	// ExactlyOne requires the predicate at exactly one member.
	ExactlyOne
	// NoneOf requires the predicate to fail at every member (vacuously
	// true for an empty class) — the complement of AtLeastOne, used for
	// negated predicates.
	NoneOf
)

// String renders the mode.
func (m FilterMode) String() string {
	switch m {
	case Every:
		return "EVERY"
	case AtLeastOne:
		return "ALO"
	case NoneOf:
		return "NONE"
	default:
		return "EX"
	}
}

// NewFilter returns a Filter over in.
func NewFilter(in Op, lcl int, pred pattern.Predicate, mode FilterMode) *Filter {
	f := &Filter{LCL: lcl, Pred: pred, Mode: mode}
	f.In = in
	return f
}

// Label implements Op.
func (f *Filter) Label() string {
	return fmt.Sprintf("Filter: %s (%d)%s", f.Mode, f.LCL, f.Pred.String())
}

func (f *Filter) eval(ctx *Context, in []seq.Seq) (seq.Seq, error) {
	return chunkMap(ctx, in[0], false, func(chunk seq.Seq) (seq.Seq, error) {
		var out seq.Seq
		for _, t := range chunk {
			hold := 0
			members := t.Class(f.LCL)
			for _, n := range members {
				if f.Pred.Eval(seq.Content(ctx.Store, n)) {
					hold++
				}
			}
			keep := false
			switch f.Mode {
			case Every:
				keep = hold == len(members)
			case AtLeastOne:
				keep = hold >= 1
			case ExactlyOne:
				keep = hold == 1
			case NoneOf:
				keep = hold == 0
			}
			if keep {
				out = append(out, t)
			}
		}
		return out, nil
	})
}
