package algebra

import (
	"fmt"

	"tlc/internal/pattern"
	"tlc/internal/seq"
	"tlc/internal/store"
)

// Construct assembles one output tree per input tree according to an
// annotated construct-pattern tree (Section 2.3). Class references copy
// whole subtrees — store-backed nodes are materialized from the store at
// this point and only at this point, which is the deferred-materialization
// property TLC has over TAX — and copies labelled with NewLCL remain
// addressable by enclosing query blocks (Figure 8).
type Construct struct {
	unary
	Pattern *pattern.ConstructNode
}

// NewConstruct returns a Construct over in.
func NewConstruct(in Op, pat *pattern.ConstructNode) *Construct {
	c := &Construct{Pattern: pat}
	c.In = in
	return c
}

// Label implements Op.
func (c *Construct) Label() string {
	return "Construct\n" + c.Pattern.String()
}

func (c *Construct) eval(ctx *Context, in []seq.Seq) (seq.Seq, error) {
	if c.Pattern == nil {
		return nil, fmt.Errorf("construct without a pattern")
	}
	// Construction creates temporary nodes, so the chunked path renumbers
	// after the gather to restore creation order across chunks.
	return chunkMap(ctx, in[0], true, func(chunk seq.Seq) (seq.Seq, error) {
		out := make(seq.Seq, 0, len(chunk))
		for _, t := range chunk {
			nt := ctx.arena.NewTree(nil)
			roots, err := buildConstruct(ctx.arena, ctx.Store, t, nt, c.Pattern)
			if err != nil {
				return nil, err
			}
			switch len(roots) {
			case 1:
				nt.Root = roots[0]
			default:
				// A pattern whose top level expands to zero or several nodes
				// (e.g. a bare subtree reference) is wrapped in a result root,
				// keeping the output a tree.
				root := ctx.arena.TempElement("result")
				for _, r := range roots {
					seq.Attach(root, r)
				}
				nt.Root = root
			}
			out = append(out, nt)
		}
		return out, nil
	})
}

// buildConstruct evaluates one construct node against input tree t,
// returning the nodes it produces and registering classes in nt. Fresh
// nodes come out of the arena a — construction is where TLC pays its
// deferred materialization cost, so it is the allocation-heaviest spot.
func buildConstruct(a *seq.Arena, st *store.Store, t *seq.Tree, nt *seq.Tree, c *pattern.ConstructNode) ([]*seq.Node, error) {
	switch c.Kind {
	case pattern.ConstructElement:
		el := a.TempElement(c.Tag)
		for _, at := range c.Attrs {
			val := at.Literal
			if at.FromLCL > 0 {
				members := t.Class(at.FromLCL)
				if len(members) == 0 {
					continue // no value: attribute omitted
				}
				val = seq.Content(st, members[0])
			}
			seq.Attach(el, a.TempAttr(at.Name, val))
		}
		for _, ch := range c.Children {
			kids, err := buildConstruct(a, st, t, nt, ch)
			if err != nil {
				return nil, err
			}
			for _, k := range kids {
				seq.Attach(el, k)
			}
		}
		if c.NewLCL > 0 {
			nt.AddToClass(c.NewLCL, el)
		}
		return []*seq.Node{el}, nil

	case pattern.ConstructSubtree:
		members := t.Class(c.FromLCL)
		outs := make([]*seq.Node, 0, len(members))
		for _, m := range members {
			cp := copyForOutput(a, st, t, nt, m)
			if c.NewLCL > 0 {
				nt.AddToClass(c.NewLCL, cp)
			}
			outs = append(outs, cp)
		}
		return outs, nil

	case pattern.ConstructText:
		members := t.Class(c.FromLCL)
		outs := make([]*seq.Node, 0, len(members))
		for _, m := range members {
			txt := a.TempText(seq.Content(st, m))
			if c.NewLCL > 0 {
				nt.AddToClass(c.NewLCL, txt)
			}
			outs = append(outs, txt)
		}
		return outs, nil

	case pattern.ConstructLiteral:
		return []*seq.Node{a.TempText(c.Literal)}, nil

	default:
		return nil, fmt.Errorf("unknown construct kind %d", c.Kind)
	}
}

// copyForOutput copies the full subtree of a referenced node into the
// output tree: store references are materialized from the store, temporary
// nodes (earlier construct results) are deep-copied, carrying their class
// labels along so outer blocks can keep referencing them.
func copyForOutput(a *seq.Arena, st *store.Store, t *seq.Tree, nt *seq.Tree, n *seq.Node) *seq.Node {
	if n.IsStore() && !n.Full {
		return seq.MaterializeIn(a, st, n.Doc, n.Ord)
	}
	// Reverse class lookup for carried labels.
	classOf := make(map[*seq.Node][]int)
	for _, lcl := range t.Classes() {
		for _, m := range t.ClassAll(lcl) {
			classOf[m] = append(classOf[m], lcl)
		}
	}
	cp, nm := seq.CopySubtree(a, n)
	n.Walk(func(x *seq.Node) bool {
		if x != n { // the reference root's own class is set by the caller
			for _, lcl := range classOf[x] {
				nt.AddToClass(lcl, nm.Get(x))
			}
		}
		return true
	})
	return cp
}

var _ Op = (*Construct)(nil)
