// Package algebra implements the TLC logical algebra of Section 2.3 of the
// paper — Select, Filter, Join, Project, Duplicate-Elimination,
// Aggregate-Function, Construct, Sort, Union — together with the
// redundancy-eliminating operators of Section 4: Flatten, Shadow and
// Illuminate. It also provides the Materialize, GroupBy and Merge operators
// that the TAX and GTP baseline plan generators use; sharing one executor
// keeps the engine comparison honest (identical data structures, identical
// store, different plan shapes).
//
// Every operator maps one or more sequences of trees to one sequence of
// trees (possibly heterogeneous); operators address nodes through logical
// class labels only. Plans are DAGs of operators evaluated bottom-up with
// per-node memoization, so a shared subplan (pattern tree reuse) is
// computed once.
package algebra

import (
	"fmt"
	"strings"

	"tlc/internal/physical"
	"tlc/internal/seq"
	"tlc/internal/store"
)

// Op is a node of a logical plan.
type Op interface {
	// Inputs returns the operator's input plans, leftmost first.
	Inputs() []Op
	// Label renders the operator for plan explanation, without inputs.
	Label() string
	// eval computes the output sequence given the evaluated inputs.
	eval(ctx *Context, in []seq.Seq) (seq.Seq, error)
}

// Context carries the evaluation environment for one query.
type Context struct {
	Store   *store.Store
	Matcher *physical.Matcher
	// memo caches operator results so DAG-shaped plans evaluate shared
	// subplans once (pattern tree reuse across operators).
	memo map[Op]seq.Seq
}

// NewContext returns a fresh evaluation context over st.
func NewContext(st *store.Store) *Context {
	return &Context{Store: st, Matcher: physical.NewMatcher(st), memo: make(map[Op]seq.Seq)}
}

// Eval evaluates the plan rooted at op and returns its result sequence.
// Plans may be DAGs: operators feeding several consumers are evaluated once
// and their results cloned per consumer, so downstream restructuring cannot
// corrupt a shared subplan's output.
func Eval(ctx *Context, op Op) (seq.Seq, error) {
	fanout := make(map[Op]int)
	for _, o := range Ops(op) {
		for _, in := range o.Inputs() {
			fanout[in]++
		}
	}
	return evalNode(ctx, op, fanout)
}

func evalNode(ctx *Context, op Op, fanout map[Op]int) (seq.Seq, error) {
	if res, ok := ctx.memo[op]; ok {
		return res.Clone(), nil
	}
	ins := op.Inputs()
	res := make([]seq.Seq, len(ins))
	for i, in := range ins {
		r, err := evalNode(ctx, in, fanout)
		if err != nil {
			return nil, err
		}
		res[i] = r
	}
	out, err := op.eval(ctx, res)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", op.Label(), err)
	}
	if fanout[op] > 1 {
		ctx.memo[op] = out
		return out.Clone(), nil
	}
	return out, nil
}

// Run is a convenience wrapper: build a context, evaluate, return result.
func Run(st *store.Store, op Op) (seq.Seq, error) {
	return Eval(NewContext(st), op)
}

// Explain renders the plan as an indented operator tree, children below
// their consumer, mirroring the bottom-up figures of the paper.
func Explain(op Op) string {
	var sb strings.Builder
	var walk func(o Op, depth int)
	walk = func(o Op, depth int) {
		indent := strings.Repeat("  ", depth)
		label := o.Label()
		// Multi-line labels (operators embedding a pattern tree) are
		// indented as a block.
		lines := strings.Split(strings.TrimRight(label, "\n"), "\n")
		for i, l := range lines {
			if i == 0 {
				sb.WriteString(indent + l + "\n")
			} else {
				sb.WriteString(indent + "    " + l + "\n")
			}
		}
		for _, in := range o.Inputs() {
			walk(in, depth+1)
		}
	}
	walk(op, 0)
	return sb.String()
}

// Ops returns all operators of the plan in pre-order, each once (DAG
// aware). Used by rewrite rules and plan statistics.
func Ops(root Op) []Op {
	seen := make(map[Op]bool)
	var out []Op
	var walk func(Op)
	walk = func(o Op) {
		if seen[o] {
			return
		}
		seen[o] = true
		out = append(out, o)
		for _, in := range o.Inputs() {
			walk(in)
		}
	}
	walk(root)
	return out
}

// ReplaceInput swaps the input oldIn of op for newIn. It reports whether a
// replacement happened. Rewrite rules use it to splice plans.
func ReplaceInput(op Op, oldIn, newIn Op) bool {
	type mutable interface{ replaceInput(oldIn, newIn Op) bool }
	if m, ok := op.(mutable); ok {
		return m.replaceInput(oldIn, newIn)
	}
	return false
}

// unary is the common base of single-input operators.
type unary struct {
	In Op
}

func (u *unary) Inputs() []Op {
	if u.In == nil {
		return nil
	}
	return []Op{u.In}
}

func (u *unary) replaceInput(oldIn, newIn Op) bool {
	if u.In == oldIn {
		u.In = newIn
		return true
	}
	return false
}

// binary is the common base of two-input operators.
type binary struct {
	Left, Right Op
}

func (b *binary) Inputs() []Op { return []Op{b.Left, b.Right} }

func (b *binary) replaceInput(oldIn, newIn Op) bool {
	done := false
	if b.Left == oldIn {
		b.Left = newIn
		done = true
	}
	if b.Right == oldIn {
		b.Right = newIn
		done = true
	}
	return done
}
