// Package algebra implements the TLC logical algebra of Section 2.3 of the
// paper — Select, Filter, Join, Project, Duplicate-Elimination,
// Aggregate-Function, Construct, Sort, Union — together with the
// redundancy-eliminating operators of Section 4: Flatten, Shadow and
// Illuminate. It also provides the Materialize, GroupBy and Merge operators
// that the TAX and GTP baseline plan generators use; sharing one executor
// keeps the engine comparison honest (identical data structures, identical
// store, different plan shapes).
//
// Every operator maps one or more sequences of trees to one sequence of
// trees (possibly heterogeneous); operators address nodes through logical
// class labels only. Plans are DAGs of operators evaluated bottom-up with
// per-node memoization, so a shared subplan (pattern tree reuse) is
// computed once.
package algebra

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"tlc/internal/failure"
	"tlc/internal/governor"
	"tlc/internal/physical"
	"tlc/internal/seq"
	"tlc/internal/store"
)

// Op is a node of a logical plan.
type Op interface {
	// Inputs returns the operator's input plans, leftmost first.
	Inputs() []Op
	// Label renders the operator for plan explanation, without inputs.
	Label() string
	// eval computes the output sequence given the evaluated inputs.
	eval(ctx *Context, in []seq.Seq) (seq.Seq, error)
}

// Context carries the evaluation environment for one query.
type Context struct {
	Store   *store.Store
	Matcher *physical.Matcher
	// goCtx is the context.Context governing this evaluation: the evaluator
	// checks it between operators, chunkMap checks it between chunks, and
	// the physical operators poll it inside their per-tree and join loops,
	// so a deadline or a client disconnect stops work mid-plan instead of
	// after the current operator finishes.
	goCtx context.Context
	// memo caches operator results so DAG-shaped plans evaluate shared
	// subplans once (pattern tree reuse across operators). Used by the
	// serial evaluator and Profile; the parallel evaluator memoizes
	// through futures instead. Memoized sequences are frozen: consumers
	// receive aliases and copy-on-write, never clones.
	memo map[Op]seq.Seq
	// arena backs witness-node allocation for this evaluation: operators
	// and the matcher bump-allocate nodes from run-scoped slabs instead of
	// paying one GC allocation each. The arena is race-safe, so parallel
	// workers share it. Result trees keep their slabs alive after the run;
	// the GC reclaims everything when the result is dropped.
	arena *seq.Arena
	// parallelism is the worker budget for this evaluation: 1 evaluates
	// exactly like the original serial executor; n>1 evaluates independent
	// DAG branches concurrently and scatters per-tree operators over
	// chunks of their input sequence.
	parallelism int
	// sem holds parallelism-1 tokens: the calling goroutine always works,
	// extra goroutines are spawned only while a token is available. Workers
	// acquire non-blockingly and fall back to running in the caller, so the
	// pool can never deadlock on nested fan-out.
	sem chan struct{}
	// futures memoizes operator evaluations in the parallel executor: the
	// first consumer to claim an operator evaluates it, later consumers
	// block on done and share (clone) the result. This keeps DAG-shaped
	// plans evaluating shared subplans exactly once even when two
	// consumers race — required for temporary-node identity (NodeIDDE,
	// identity joins) to keep working across branches.
	futures map[Op]*opFuture
	mu      sync.Mutex
	// gov enforces this evaluation's resource budgets (nil = ungoverned).
	// It is taken from goCtx at construction: the arena charges slab
	// allocations against it, the physical poll sites check its wall
	// budget, and the evaluators check every operator's output cardinality.
	// Per-shard arenas all charge this one governor, so the budget is
	// query-wide across shard workers, never N× the limit.
	gov *governor.Governor
	// shardEvals holds lazily created per-shard matching state (matcher +
	// arena) when the store has more than one shard. Routing pattern work to
	// the owning shard's matcher partitions the candidate/partial caches and
	// their mutexes by shard — a contention and locality win; it is never a
	// correctness requirement (match results are identical whichever matcher
	// serves them), so routing is best-effort.
	shardEvals []shardEval
}

// shardEval is one shard's lazily initialized matching state.
type shardEval struct {
	once    sync.Once
	matcher *physical.Matcher
	arena   *seq.Arena
}

type opFuture struct {
	done chan struct{}
	out  seq.Seq
	err  error
}

// NewContext returns a fresh serial evaluation context over st.
func NewContext(st *store.Store) *Context {
	return NewContextFor(context.Background(), st, 1)
}

// NewParallelContext returns an evaluation context with the given worker
// budget (see NewContextFor for the parallelism convention).
func NewParallelContext(st *store.Store, parallelism int) *Context {
	return NewContextFor(context.Background(), st, parallelism)
}

// NewContextFor returns an evaluation context bound to goCtx: cancelling
// goCtx (or exceeding its deadline) makes the evaluation return goCtx.Err()
// promptly, cooperatively checked between operators, between chunks and
// inside the physical operators' loops. Parallelism below 1 defaults to
// GOMAXPROCS; 1 yields the plain serial context (bit-for-bit identical
// behavior, including store counters). For n > 1 the matcher runs in
// shared mode so worker goroutines can match patterns concurrently.
func NewContextFor(goCtx context.Context, st *store.Store, parallelism int) *Context {
	if goCtx == nil {
		goCtx = context.Background()
	}
	if parallelism < 1 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	gov := governor.FromContext(goCtx)
	arena := seq.NewArena().WithGovernor(gov)
	if parallelism <= 1 {
		// Serial evaluation has no arena or matcher-cache contention to
		// partition away, so it uses the single main matcher and arena
		// regardless of the store's shard count — per-shard state would
		// cost a matcher+arena setup per run and buy nothing.
		return &Context{Store: st, Matcher: physical.NewMatcher(st).WithArena(arena), goCtx: goCtx, memo: make(map[Op]seq.Seq), parallelism: 1, arena: arena, gov: gov}
	}
	var evals []shardEval
	if n := st.NumShards(); n > 1 {
		evals = make([]shardEval, n)
	}
	return &Context{
		Store:       st,
		Matcher:     physical.NewSharedMatcher(st).WithArena(arena),
		goCtx:       goCtx,
		memo:        make(map[Op]seq.Seq),
		parallelism: parallelism,
		sem:         make(chan struct{}, parallelism-1),
		futures:     make(map[Op]*opFuture),
		arena:       arena,
		gov:         gov,
		shardEvals:  evals,
	}
}

// Arena returns the evaluation's witness-node arena (never nil for
// contexts built by NewContextFor).
func (ctx *Context) Arena() *seq.Arena { return ctx.arena }

// shardEval returns shard i's matching state, creating it on first use.
// Each shard gets its own matcher (candidate/partial caches and, in shared
// mode, their mutex are partitioned per shard) backed by its own arena —
// and every shard arena charges the *same* governor as the main arena, so
// arena-byte and witness-node budgets stay one query-wide budget no matter
// how many shard workers allocate.
func (ctx *Context) shardEvalFor(i int) *shardEval {
	se := &ctx.shardEvals[i]
	se.once.Do(func() {
		se.arena = seq.NewArena().WithGovernor(ctx.gov)
		if ctx.parallel() {
			se.matcher = physical.NewSharedMatcher(ctx.Store).WithArena(se.arena)
		} else {
			se.matcher = physical.NewMatcher(ctx.Store).WithArena(se.arena)
		}
	})
	return se
}

// MatcherFor returns the matcher owning shard i's pattern work — the
// context's single matcher on a one-shard store (or out-of-range i), shard
// i's own matcher otherwise.
func (ctx *Context) MatcherFor(i int) *physical.Matcher {
	if len(ctx.shardEvals) == 0 || i < 0 || i >= len(ctx.shardEvals) {
		return ctx.Matcher
	}
	return ctx.shardEvalFor(i).matcher
}

// ArenaFor returns the arena backing shard i's witness nodes (the main
// arena on a one-shard store or out-of-range i).
func (ctx *Context) ArenaFor(i int) *seq.Arena {
	if len(ctx.shardEvals) == 0 || i < 0 || i >= len(ctx.shardEvals) {
		return ctx.arena
	}
	return ctx.shardEvalFor(i).arena
}

// ArenaStats aggregates allocation counters across the main arena and
// every shard arena touched by this evaluation.
func (ctx *Context) ArenaStats() seq.ArenaStats {
	total := ctx.arena.Stats()
	for i := range ctx.shardEvals {
		se := &ctx.shardEvals[i]
		// Only count shards whose once fired; Stats on a nil arena is zero.
		s := se.arena.Stats()
		total.Nodes += s.Nodes
		total.Slabs += s.Slabs
	}
	return total
}

// GoContext returns the context.Context governing this evaluation; it is
// never nil. Operators pass it down to the physical layer.
func (ctx *Context) GoContext() context.Context {
	if ctx.goCtx == nil {
		return context.Background()
	}
	return ctx.goCtx
}

// Cancelled returns the evaluation's cancellation error (nil while the
// evaluation may continue). The returned error is the governing context's
// own Err(), so errors.Is(err, context.DeadlineExceeded) and
// errors.Is(err, context.Canceled) work on evaluation results.
func (ctx *Context) Cancelled() error {
	if ctx.goCtx == nil {
		return nil
	}
	return ctx.goCtx.Err()
}

// Parallelism returns the context's worker budget.
func (ctx *Context) Parallelism() int { return ctx.parallelism }

func (ctx *Context) parallel() bool { return ctx.parallelism > 1 }

// tryAcquire takes a worker token without blocking.
func (ctx *Context) tryAcquire() bool {
	select {
	case ctx.sem <- struct{}{}:
		return true
	default:
		return false
	}
}

func (ctx *Context) release() { <-ctx.sem }

// Eval evaluates the plan rooted at op and returns its result sequence.
// Plans may be DAGs: operators feeding several consumers are evaluated
// once, their results frozen, and each consumer handed an alias — shared
// trees are copied lazily, only by the operators that actually mutate
// them (copy-on-write), so downstream restructuring cannot corrupt a
// shared subplan's output.
//
// Eval is a containment barrier: a panic anywhere in serial plan
// evaluation (or rethrown from a parallel branch) is recovered here and
// returned as an error — a governor budget abort as its typed
// *ErrBudgetExceeded, anything else as a *failure.PanicError — so one
// broken or over-budget query can never take down the process.
func Eval(ctx *Context, op Op) (out seq.Seq, err error) {
	defer failure.Recover(&err, "algebra.Eval")
	fanout := make(map[Op]int)
	for _, o := range Ops(op) {
		for _, in := range o.Inputs() {
			fanout[in]++
		}
	}
	if ctx.parallel() {
		return evalNodeParallel(ctx, op, fanout)
	}
	return evalNode(ctx, op, fanout)
}

// checkCard enforces the intermediate-cardinality budget on one operator's
// output, labelling the violation with the operator that produced it.
func (ctx *Context) checkCard(op Op, n int) error {
	if err := ctx.gov.CheckCard(n); err != nil {
		return fmt.Errorf("%s: %w", op.Label(), err)
	}
	return nil
}

func evalNode(ctx *Context, op Op, fanout map[Op]int) (seq.Seq, error) {
	if err := ctx.Cancelled(); err != nil {
		return nil, err
	}
	if res, ok := ctx.memo[op]; ok {
		return res.Alias(), nil
	}
	ins := op.Inputs()
	res := make([]seq.Seq, len(ins))
	for i, in := range ins {
		r, err := evalNode(ctx, in, fanout)
		if err != nil {
			return nil, err
		}
		res[i] = r
	}
	out, err := op.eval(ctx, res)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", op.Label(), err)
	}
	if err := ctx.checkCard(op, len(out)); err != nil {
		return nil, err
	}
	if fanout[op] > 1 {
		// Freeze once, alias per consumer: mutating consumers copy on
		// write, reading consumers share the trees outright.
		out.Freeze()
		ctx.memo[op] = out
		return out.Alias(), nil
	}
	return out, nil
}

// evalNodeParallel is the concurrent evaluator: independent input branches
// of an operator are evaluated on worker goroutines (bounded by the
// context's token pool), and DAG-shaped plans synchronize on per-operator
// futures so a shared subplan is evaluated exactly once no matter which
// consumer reaches it first. Like the serial evaluator, results consumed
// by several operators are frozen and aliased per consumer.
func evalNodeParallel(ctx *Context, op Op, fanout map[Op]int) (seq.Seq, error) {
	// Checked before claiming a future so a cancelled evaluation never
	// leaves an unclosed future behind for other consumers to block on.
	if err := ctx.Cancelled(); err != nil {
		return nil, err
	}
	ctx.mu.Lock()
	if f, ok := ctx.futures[op]; ok {
		ctx.mu.Unlock()
		<-f.done
		if f.err != nil {
			return nil, f.err
		}
		return f.out.Alias(), nil
	}
	f := &opFuture{done: make(chan struct{})}
	ctx.futures[op] = f
	ctx.mu.Unlock()

	// Per-future containment barrier: the claiming consumer computes the
	// result inside a recover, so a panic (operator bug, injected fault,
	// budget abort from an allocation site) lands in f.err and the future
	// is always closed — waiting consumers get the error instead of
	// blocking forever on a future nobody will finish.
	f.out, f.err = func() (out seq.Seq, err error) {
		defer failure.Recover(&err, op.Label())
		return evalInputsParallel(ctx, op, fanout)
	}()
	if f.err == nil && fanout[op] > 1 {
		// Freeze before close(done): the channel close gives every waiting
		// consumer a happens-before edge on the frozen bit, so concurrent
		// consumers see immutable trees and copy on write — no goroutine
		// ever mutates a tree another goroutine can reach.
		f.out.Freeze()
	}
	close(f.done)
	if f.err != nil {
		return nil, f.err
	}
	if fanout[op] > 1 {
		return f.out.Alias(), nil
	}
	return f.out, nil
}

func evalInputsParallel(ctx *Context, op Op, fanout map[Op]int) (seq.Seq, error) {
	ins := op.Inputs()
	res := make([]seq.Seq, len(ins))
	errs := make([]error, len(ins))
	if len(ins) > 1 {
		var wg sync.WaitGroup
		var inline []int
		for i := 1; i < len(ins); i++ {
			if ctx.tryAcquire() {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					defer ctx.release()
					// A panic on a branch worker goroutine would kill the
					// process before any downstream barrier could run;
					// contain it here and report it as the branch's error.
					defer failure.Recover(&errs[i], ins[i].Label())
					res[i], errs[i] = evalNodeParallel(ctx, ins[i], fanout)
				}(i)
			} else {
				inline = append(inline, i)
			}
		}
		res[0], errs[0] = evalNodeParallel(ctx, ins[0], fanout)
		for _, i := range inline {
			res[i], errs[i] = evalNodeParallel(ctx, ins[i], fanout)
		}
		wg.Wait()
		// Report the leftmost failure for deterministic error messages.
		for _, e := range errs {
			if e != nil {
				return nil, e
			}
		}
	} else if len(ins) == 1 {
		r, err := evalNodeParallel(ctx, ins[0], fanout)
		if err != nil {
			return nil, err
		}
		res[0] = r
	}
	out, err := op.eval(ctx, res)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", op.Label(), err)
	}
	if err := ctx.checkCard(op, len(out)); err != nil {
		return nil, err
	}
	return out, nil
}

// minChunk is the smallest per-worker slice of a sequence worth scattering:
// below it, goroutine handoff costs more than the per-tree work saved.
const minChunk = 16

// chunkMap is the scatter–gather path for per-tree operators: fn maps a
// contiguous chunk of the input sequence to its output subsequence, chunks
// are claimed by workers off an atomic counter, and the outputs are
// concatenated in chunk order — so the gathered sequence is exactly the
// sequence a serial left-to-right loop would produce. Operators that create
// temporary nodes pass renumber=true: after the gather, identifiers issued
// by the workers (all above the watermark taken here, before scattering)
// are re-issued in sequence order, restoring node-ID property 4. On a
// serial context, or when the input is too small to be worth scattering,
// fn runs once over the whole sequence.
func chunkMap(ctx *Context, in seq.Seq, renumber bool, fn func(seq.Seq) (seq.Seq, error)) (seq.Seq, error) {
	if !ctx.parallel() || len(in) < 2*minChunk {
		return fn(in)
	}
	watermark := seq.TempWatermark()
	size := (len(in) + 4*ctx.parallelism - 1) / (4 * ctx.parallelism)
	if size < minChunk {
		size = minChunk
	}
	numChunks := (len(in) + size - 1) / size
	outs := make([]seq.Seq, numChunks)
	errs := make([]error, numChunks)
	var next atomic.Int64
	worker := func() {
		for {
			c := int(next.Add(1)) - 1
			if c >= numChunks {
				return
			}
			if err := ctx.Cancelled(); err != nil {
				errs[c] = err
				return
			}
			lo := c * size
			hi := lo + size
			if hi > len(in) {
				hi = len(in)
			}
			outs[c], errs[c] = runChunk(fn, in[lo:hi])
		}
	}
	var wg sync.WaitGroup
	for i := 1; i < numChunks; i++ {
		if !ctx.tryAcquire() {
			break
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer ctx.release()
			worker()
		}()
	}
	worker() // the caller is always a worker too
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return nil, e // leftmost chunk's error, deterministically
		}
	}
	n := 0
	for _, o := range outs {
		n += len(o)
	}
	out := make(seq.Seq, 0, n)
	for _, o := range outs {
		out = append(out, o...)
	}
	if renumber {
		seq.RenumberTemps(out, watermark)
	}
	return out, nil
}

// runChunk applies fn to one chunk behind a containment barrier: a panic
// in a chunk worker goroutine becomes that chunk's error (reported in
// deterministic leftmost order by the gather) instead of killing the
// process.
func runChunk(fn func(seq.Seq) (seq.Seq, error), chunk seq.Seq) (out seq.Seq, err error) {
	defer failure.Recover(&err, "chunk")
	return fn(chunk)
}

// Run is a convenience wrapper: build a context, evaluate, return result.
func Run(st *store.Store, op Op) (seq.Seq, error) {
	return Eval(NewContext(st), op)
}

// RunParallel evaluates the plan with the given worker budget (see
// NewParallelContext for the parallelism convention).
func RunParallel(st *store.Store, op Op, parallelism int) (seq.Seq, error) {
	return Eval(NewParallelContext(st, parallelism), op)
}

// RunContext evaluates the plan under goCtx with the given worker budget;
// cancellation and deadline expiry surface as goCtx.Err() (see
// NewContextFor).
func RunContext(goCtx context.Context, st *store.Store, op Op, parallelism int) (seq.Seq, error) {
	return Eval(NewContextFor(goCtx, st, parallelism), op)
}

// Explain renders the plan as an indented operator tree, children below
// their consumer, mirroring the bottom-up figures of the paper.
func Explain(op Op) string { return ExplainFunc(op, nil) }

// ExplainFunc renders the plan like Explain, appending " [annotate(op)]"
// to each operator's first label line when annotate returns non-empty —
// the hook the planner uses to show per-operator cardinality estimates.
func ExplainFunc(op Op, annotate func(Op) string) string {
	var sb strings.Builder
	var walk func(o Op, depth int)
	walk = func(o Op, depth int) {
		indent := strings.Repeat("  ", depth)
		label := o.Label()
		// Multi-line labels (operators embedding a pattern tree) are
		// indented as a block.
		lines := strings.Split(strings.TrimRight(label, "\n"), "\n")
		for i, l := range lines {
			if i == 0 {
				if annotate != nil {
					if a := annotate(o); a != "" {
						l += " [" + a + "]"
					}
				}
				sb.WriteString(indent + l + "\n")
			} else {
				sb.WriteString(indent + "    " + l + "\n")
			}
		}
		for _, in := range o.Inputs() {
			walk(in, depth+1)
		}
	}
	walk(op, 0)
	return sb.String()
}

// Ops returns all operators of the plan in pre-order, each once (DAG
// aware). Used by rewrite rules and plan statistics.
func Ops(root Op) []Op {
	seen := make(map[Op]bool)
	var out []Op
	var walk func(Op)
	walk = func(o Op) {
		if seen[o] {
			return
		}
		seen[o] = true
		out = append(out, o)
		for _, in := range o.Inputs() {
			walk(in)
		}
	}
	walk(root)
	return out
}

// ReplaceInput swaps the input oldIn of op for newIn. It reports whether a
// replacement happened. Rewrite rules use it to splice plans.
func ReplaceInput(op Op, oldIn, newIn Op) bool {
	type mutable interface{ replaceInput(oldIn, newIn Op) bool }
	if m, ok := op.(mutable); ok {
		return m.replaceInput(oldIn, newIn)
	}
	return false
}

// unary is the common base of single-input operators.
type unary struct {
	In Op
}

func (u *unary) Inputs() []Op {
	if u.In == nil {
		return nil
	}
	return []Op{u.In}
}

func (u *unary) replaceInput(oldIn, newIn Op) bool {
	if u.In == oldIn {
		u.In = newIn
		return true
	}
	return false
}

// binary is the common base of two-input operators.
type binary struct {
	Left, Right Op
}

func (b *binary) Inputs() []Op { return []Op{b.Left, b.Right} }

func (b *binary) replaceInput(oldIn, newIn Op) bool {
	done := false
	if b.Left == oldIn {
		b.Left = newIn
		done = true
	}
	if b.Right == oldIn {
		b.Right = newIn
		done = true
	}
	return done
}
