package algebra

import (
	"fmt"

	"tlc/internal/pattern"
	"tlc/internal/physical"
	"tlc/internal/seq"
)

// Join stitches trees from two inputs under an artificial root
// (Section 2.3). With a predicate it is a value join evaluated by
// sort–merge–sort (Section 5.1); without one it is a Cartesian product —
// the state a Join created for two FOR clauses is in before the WHERE
// clause contributes its condition.
type Join struct {
	binary
	// Pred describes the value-join condition; nil means Cartesian.
	Pred *JoinPred
	// RightSpec is the mSpec of the right edge of the result pattern
	// ("-", "?", "+", "*"). Ignored for Cartesian joins (always "-").
	RightSpec pattern.MSpec
	// RootTag and RootLCL describe the artificial root node.
	RootTag string
	RootLCL int
	// ForceNestedLoop disables sort–merge–sort for equality predicates
	// (ablation benchmarks only).
	ForceNestedLoop bool
}

// JoinPred is the value predicate of a Join: content of the left class
// compared to content of the right class.
type JoinPred struct {
	LeftLCL  int
	Op       pattern.Cmp
	RightLCL int
}

// NewCartesianJoin returns a Cartesian Join of left and right.
func NewCartesianJoin(left, right Op, rootLCL int) *Join {
	j := &Join{RootTag: "join_root", RootLCL: rootLCL, RightSpec: pattern.One}
	j.Left, j.Right = left, right
	return j
}

// NewValueJoin returns a value Join of left and right.
func NewValueJoin(left, right Op, pred JoinPred, rightSpec pattern.MSpec, rootLCL int) *Join {
	j := &Join{Pred: &pred, RightSpec: rightSpec, RootTag: "join_root", RootLCL: rootLCL}
	j.Left, j.Right = left, right
	return j
}

// Label implements Op.
func (j *Join) Label() string {
	if j.Pred == nil {
		return fmt.Sprintf("Join: cartesian -> %s[%d]", j.RootTag, j.RootLCL)
	}
	return fmt.Sprintf("Join: (%d) %s (%d) {%s} -> %s[%d]",
		j.Pred.LeftLCL, j.Pred.Op, j.Pred.RightLCL, j.RightSpec, j.RootTag, j.RootLCL)
}

func (j *Join) eval(ctx *Context, in []seq.Seq) (seq.Seq, error) {
	if j.Pred == nil {
		if j.RightSpec.Nested() {
			return physical.NestAllJoin(ctx.GoContext(), j.RootTag, j.RootLCL, in[0], in[1])
		}
		return physical.CartesianJoin(ctx.GoContext(), j.RootTag, j.RootLCL, in[0], in[1])
	}
	return physical.ValueJoin(ctx.GoContext(), ctx.Store, in[0], in[1], physical.JoinSpec{
		LeftLCL:         j.Pred.LeftLCL,
		RightLCL:        j.Pred.RightLCL,
		Op:              j.Pred.Op,
		RightSpec:       j.RightSpec,
		RootTag:         j.RootTag,
		RootLCL:         j.RootLCL,
		ForceNestedLoop: j.ForceNestedLoop,
	})
}

// Union concatenates the results of its inputs, preserving input order —
// the operator OR-expressions translate to (Figure 6, ORExp case).
type Union struct {
	ins []Op
}

// NewUnion returns a Union of the given inputs.
func NewUnion(ins ...Op) *Union { return &Union{ins: ins} }

// Inputs implements Op.
func (u *Union) Inputs() []Op { return u.ins }

func (u *Union) replaceInput(oldIn, newIn Op) bool {
	done := false
	for i, in := range u.ins {
		if in == oldIn {
			u.ins[i] = newIn
			done = true
		}
	}
	return done
}

// Label implements Op.
func (u *Union) Label() string { return fmt.Sprintf("Union: %d inputs", len(u.ins)) }

func (u *Union) eval(_ *Context, in []seq.Seq) (seq.Seq, error) {
	var out seq.Seq
	for _, s := range in {
		out = append(out, s...)
	}
	return out, nil
}

var _ Op = (*Join)(nil)
var _ Op = (*Union)(nil)
var _ Op = (*Select)(nil)
var _ Op = (*Filter)(nil)

// StructuralJoinOp exposes the (nest-)structural join of Definition 8 as a
// plan operator. The TLC translation itself embeds structural matching
// inside Select, but baseline plans and the ablation benchmarks compose the
// primitive directly.
type StructuralJoinOp struct {
	binary
	LeftLCL int
	Axis    pattern.Axis
	Spec    pattern.MSpec
}

// NewStructuralJoin returns a structural join of left and right.
func NewStructuralJoin(left, right Op, leftLCL int, axis pattern.Axis, spec pattern.MSpec) *StructuralJoinOp {
	s := &StructuralJoinOp{LeftLCL: leftLCL, Axis: axis, Spec: spec}
	s.Left, s.Right = left, right
	return s
}

// Label implements Op.
func (s *StructuralJoinOp) Label() string {
	return fmt.Sprintf("StructuralJoin: (%d) %s child {%s}", s.LeftLCL, s.Axis, s.Spec)
}

func (s *StructuralJoinOp) eval(ctx *Context, in []seq.Seq) (seq.Seq, error) {
	return physical.StructuralJoin(ctx.GoContext(), ctx.Store, in[0], in[1], s.LeftLCL, s.Axis, s.Spec)
}

var _ Op = (*StructuralJoinOp)(nil)
