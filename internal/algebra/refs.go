package algebra

import "tlc/internal/pattern"

// ClassUser is implemented by operators that read logical classes of their
// input trees. ClassRefs returns the referenced labels (definitions such as
// an Aggregate's NewLCL or a Select's fresh pattern labels are excluded).
// The rewriter uses it to locate the operators that "use tree(B)" in the
// Section 4 rewrite rules.
type ClassUser interface {
	ClassRefs() []int
}

// ClassRemapper is implemented by operators whose class references can be
// redirected. The rewriter applies it after merging redundant pattern
// branches, pointing consumers of the eliminated classes at the surviving
// ones.
type ClassRemapper interface {
	RemapClasses(m map[int]int)
}

func remap(m map[int]int, lcl int) int {
	if n, ok := m[lcl]; ok {
		return n
	}
	return lcl
}

// ClassRefs implements ClassUser.
func (f *Filter) ClassRefs() []int { return []int{f.LCL} }

// RemapClasses implements ClassRemapper.
func (f *Filter) RemapClasses(m map[int]int) { f.LCL = remap(m, f.LCL) }

// ClassRefs implements ClassUser.
func (f *FilterCompare) ClassRefs() []int { return []int{f.LLCL, f.RLCL} }

// RemapClasses implements ClassRemapper.
func (f *FilterCompare) RemapClasses(m map[int]int) {
	f.LLCL = remap(m, f.LLCL)
	f.RLCL = remap(m, f.RLCL)
}

// ClassRefs implements ClassUser.
func (f *DisjFilter) ClassRefs() []int {
	out := make([]int, len(f.Branches))
	for i, b := range f.Branches {
		out[i] = b.LCL
	}
	return out
}

// RemapClasses implements ClassRemapper.
func (f *DisjFilter) RemapClasses(m map[int]int) {
	for i := range f.Branches {
		f.Branches[i].LCL = remap(m, f.Branches[i].LCL)
	}
}

// ClassRefs implements ClassUser.
func (j *Join) ClassRefs() []int {
	if j.Pred == nil {
		return nil
	}
	return []int{j.Pred.LeftLCL, j.Pred.RightLCL}
}

// RemapClasses implements ClassRemapper.
func (j *Join) RemapClasses(m map[int]int) {
	if j.Pred == nil {
		return
	}
	j.Pred.LeftLCL = remap(m, j.Pred.LeftLCL)
	j.Pred.RightLCL = remap(m, j.Pred.RightLCL)
}

// ClassRefs implements ClassUser.
func (p *Project) ClassRefs() []int { return append([]int(nil), p.Keep...) }

// RemapClasses implements ClassRemapper.
func (p *Project) RemapClasses(m map[int]int) {
	for i := range p.Keep {
		p.Keep[i] = remap(m, p.Keep[i])
	}
}

// ClassRefs implements ClassUser.
func (d *DupElim) ClassRefs() []int { return append([]int(nil), d.On...) }

// RemapClasses implements ClassRemapper.
func (d *DupElim) RemapClasses(m map[int]int) {
	for i := range d.On {
		d.On[i] = remap(m, d.On[i])
	}
}

// ClassRefs implements ClassUser.
func (a *Aggregate) ClassRefs() []int { return []int{a.LCL} }

// RemapClasses implements ClassRemapper.
func (a *Aggregate) RemapClasses(m map[int]int) { a.LCL = remap(m, a.LCL) }

// ClassRefs implements ClassUser.
func (s *Sort) ClassRefs() []int {
	out := make([]int, len(s.Keys))
	for i, k := range s.Keys {
		out[i] = k.LCL
	}
	return out
}

// RemapClasses implements ClassRemapper.
func (s *Sort) RemapClasses(m map[int]int) {
	for i := range s.Keys {
		s.Keys[i].LCL = remap(m, s.Keys[i].LCL)
	}
}

// ClassRefs implements ClassUser.
func (s *SortDocOrder) ClassRefs() []int { return []int{s.LCL} }

// RemapClasses implements ClassRemapper.
func (s *SortDocOrder) RemapClasses(m map[int]int) { s.LCL = remap(m, s.LCL) }

// ClassRefs implements ClassUser.
func (f *Flatten) ClassRefs() []int { return []int{f.PLCL, f.CLCL} }

// RemapClasses implements ClassRemapper.
func (f *Flatten) RemapClasses(m map[int]int) {
	f.PLCL = remap(m, f.PLCL)
	f.CLCL = remap(m, f.CLCL)
}

// ClassRefs implements ClassUser.
func (s *Shadow) ClassRefs() []int { return []int{s.PLCL, s.CLCL} }

// RemapClasses implements ClassRemapper.
func (s *Shadow) RemapClasses(m map[int]int) {
	s.PLCL = remap(m, s.PLCL)
	s.CLCL = remap(m, s.CLCL)
}

// ClassRefs implements ClassUser.
func (i *Illuminate) ClassRefs() []int { return []int{i.LCL} }

// RemapClasses implements ClassRemapper.
func (i *Illuminate) RemapClasses(m map[int]int) { i.LCL = remap(m, i.LCL) }

// ClassRefs implements ClassUser.
func (mt *Materialize) ClassRefs() []int { return append([]int(nil), mt.Classes...) }

// RemapClasses implements ClassRemapper.
func (mt *Materialize) RemapClasses(m map[int]int) {
	for i := range mt.Classes {
		mt.Classes[i] = remap(m, mt.Classes[i])
	}
}

// ClassRefs implements ClassUser.
func (g *GroupByOp) ClassRefs() []int { return []int{g.BasisLCL, g.MemberLCL} }

// RemapClasses implements ClassRemapper.
func (g *GroupByOp) RemapClasses(m map[int]int) {
	g.BasisLCL = remap(m, g.BasisLCL)
	g.MemberLCL = remap(m, g.MemberLCL)
}

// ClassRefs implements ClassUser: an extension Select reads its anchor
// class; a document Select reads nothing.
func (s *Select) ClassRefs() []int {
	if s.APT != nil && s.APT.Root != nil && s.APT.Root.Kind == pattern.TestLC {
		return []int{s.APT.Root.InClass}
	}
	return nil
}

// RemapClasses implements ClassRemapper for the anchor reference.
func (s *Select) RemapClasses(m map[int]int) {
	if s.APT != nil && s.APT.Root != nil && s.APT.Root.Kind == pattern.TestLC {
		s.APT.Root.InClass = remap(m, s.APT.Root.InClass)
	}
}

// ClassRefs implements ClassUser: a Construct reads every class its
// pattern references.
func (c *Construct) ClassRefs() []int {
	var out []int
	var walk func(n *pattern.ConstructNode)
	walk = func(n *pattern.ConstructNode) {
		if n.FromLCL > 0 {
			out = append(out, n.FromLCL)
		}
		for _, a := range n.Attrs {
			if a.FromLCL > 0 {
				out = append(out, a.FromLCL)
			}
		}
		for _, ch := range n.Children {
			walk(ch)
		}
	}
	if c.Pattern != nil {
		walk(c.Pattern)
	}
	return out
}

// RemapClasses implements ClassRemapper over the construct pattern.
func (c *Construct) RemapClasses(m map[int]int) {
	var walk func(n *pattern.ConstructNode)
	walk = func(n *pattern.ConstructNode) {
		if n.FromLCL > 0 {
			n.FromLCL = remap(m, n.FromLCL)
		}
		for i := range n.Attrs {
			if n.Attrs[i].FromLCL > 0 {
				n.Attrs[i].FromLCL = remap(m, n.Attrs[i].FromLCL)
			}
		}
		for _, ch := range n.Children {
			walk(ch)
		}
	}
	if c.Pattern != nil {
		walk(c.Pattern)
	}
}

// ClassRefs implements ClassUser.
func (s *StructuralJoinOp) ClassRefs() []int { return []int{s.LeftLCL} }

// RemapClasses implements ClassRemapper.
func (s *StructuralJoinOp) RemapClasses(m map[int]int) { s.LeftLCL = remap(m, s.LeftLCL) }

// RefsOf returns the class references of op, or nil when it has none.
func RefsOf(op Op) []int {
	if u, ok := op.(ClassUser); ok {
		return u.ClassRefs()
	}
	return nil
}

// RemapOf applies a class remapping to op when supported.
func RemapOf(op Op, m map[int]int) {
	if r, ok := op.(ClassRemapper); ok {
		r.RemapClasses(m)
	}
}
