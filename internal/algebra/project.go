package algebra

import (
	"fmt"
	"strings"

	"tlc/internal/seq"
)

// Project retains, per input tree, only the nodes of the listed logical
// classes (together with their witness subtrees) under the original root
// (Section 2.3: "if the output is not a tree, the input tree root is also
// retained" — the root is always kept here, which subsumes that case).
// Dropped intermediate nodes promote their kept descendants upward, so the
// relative structure of kept nodes is preserved.
type Project struct {
	unary
	Keep []int
}

// NewProject returns a Project over in keeping the given classes.
func NewProject(in Op, keep ...int) *Project {
	p := &Project{Keep: append([]int(nil), keep...)}
	p.In = in
	return p
}

// Label implements Op.
func (p *Project) Label() string {
	parts := make([]string, len(p.Keep))
	for i, k := range p.Keep {
		parts[i] = fmt.Sprintf("(%d)", k)
	}
	return "Project: keep " + strings.Join(parts, ", ")
}

func (p *Project) eval(ctx *Context, in []seq.Seq) (seq.Seq, error) {
	return chunkMap(ctx, in[0], false, func(chunk seq.Seq) (seq.Seq, error) {
		out := make(seq.Seq, 0, len(chunk))
		for _, t := range chunk {
			out = append(out, projectTree(t, p.Keep))
		}
		return out, nil
	})
}

// projectTree restructures the tree in place when the operator owns it
// (unfrozen single-consumer input; frozen shared trees are copied first):
// kept nodes move — with their witness subtrees — under their nearest kept
// ancestor (the original root when none), and a fresh class map restricted
// to the kept labels replaces the old one. Dropping the class bindings
// that are not listed matters even for nodes that survive inside a kept
// subtree: only (12) survives inside (14) in Figure 8 because it is listed
// in Project 11.
func projectTree(t *seq.Tree, rawKeep []int) *seq.Tree {
	t = t.Mutable()
	// Deduplicate the keep list: rewrites may append labels that are
	// already kept, and double registration would corrupt class counts.
	seen := make(map[int]bool, len(rawKeep))
	keep := rawKeep[:0:0]
	for _, lcl := range rawKeep {
		if !seen[lcl] {
			seen[lcl] = true
			keep = append(keep, lcl)
		}
	}
	kept := make(map[*seq.Node]bool)
	for _, lcl := range keep {
		for _, n := range t.ClassAll(lcl) {
			kept[n] = true
		}
	}
	// Collect the top-level kept nodes: walking stops at a kept node, so
	// kept nodes inside kept subtrees simply stay where they are.
	var tops []*seq.Node
	var walk func(n *seq.Node)
	walk = func(n *seq.Node) {
		for _, k := range n.Kids {
			if kept[k] {
				tops = append(tops, k)
				continue
			}
			walk(k)
		}
	}
	root := t.Root
	walk(root)
	root.Kids = nil
	nt := t.Arena().NewTree(root)
	for _, n := range tops {
		seq.Attach(root, n)
	}
	for _, lcl := range keep {
		for _, n := range t.ClassAll(lcl) {
			nt.AddToClass(lcl, n)
		}
	}
	return nt
}

// DupElim eliminates duplicate trees based on the nodes bound to the listed
// classes (Section 2.3). With ByContent unset it compares node identifiers
// — the cheap NodeIDDE the translation inserts after projection ("all
// identifiers are already in memory") — otherwise it compares content.
// Each listed class must bind to at most one node; an empty class
// contributes a distinguished empty key.
type DupElim struct {
	unary
	On        []int
	ByContent bool
}

// NewDupElim returns an identifier-based duplicate elimination.
func NewDupElim(in Op, on ...int) *DupElim {
	d := &DupElim{On: append([]int(nil), on...)}
	d.In = in
	return d
}

// NewDupElimContent returns a content-based duplicate elimination.
func NewDupElimContent(in Op, on ...int) *DupElim {
	d := NewDupElim(in, on...)
	d.ByContent = true
	return d
}

// Label implements Op.
func (d *DupElim) Label() string {
	kind := "NodeIDDE"
	if d.ByContent {
		kind = "ContentDE"
	}
	parts := make([]string, len(d.On))
	for i, k := range d.On {
		parts[i] = fmt.Sprintf("(%d)", k)
	}
	return kind + " on " + strings.Join(parts, ", ")
}

func (d *DupElim) eval(ctx *Context, in []seq.Seq) (seq.Seq, error) {
	seen := make(map[string]bool)
	var out seq.Seq
	for _, t := range in[0] {
		var key strings.Builder
		for _, lcl := range d.On {
			members := t.Class(lcl)
			switch len(members) {
			case 0:
				key.WriteString("|∅")
			case 1:
				if d.ByContent {
					key.WriteString("|" + seq.Content(ctx.Store, members[0]))
				} else {
					key.WriteString("|" + members[0].Identity())
				}
			default:
				return nil, fmt.Errorf("class %d binds to %d nodes, need at most 1", lcl, len(members))
			}
		}
		k := key.String()
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, t)
	}
	return out, nil
}

var _ Op = (*Project)(nil)
var _ Op = (*DupElim)(nil)
