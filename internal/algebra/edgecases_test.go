package algebra

import (
	"strings"
	"testing"

	"tlc/internal/pattern"
	"tlc/internal/seq"
	"tlc/internal/store"
)

func TestSelectErrors(t *testing.T) {
	s := loadAuction(t)
	// Select without a pattern.
	if _, err := Run(s, &Select{}); err == nil {
		t.Error("pattern-less select succeeded")
	}
	// Extension select with no input.
	anchor := pattern.NewLCAnchor(0, 1)
	anchor.Add(pattern.NewTagNode(5, "x"), pattern.Child, pattern.One)
	if _, err := Run(s, NewSelect(&pattern.Tree{Root: anchor})); err == nil {
		t.Error("inputless extension select succeeded")
	}
	// Document select with an input.
	bad := NewExtendSelect(personSelect(), q1APT())
	if _, err := Run(s, bad); err == nil {
		t.Error("document select with input succeeded")
	}
}

func q1APT() *pattern.Tree {
	root := pattern.NewDocRoot(0, "auction.xml")
	root.Add(pattern.NewTagNode(99, "person"), pattern.Descendant, pattern.One)
	return &pattern.Tree{Root: root}
}

func TestConstructErrors(t *testing.T) {
	s := loadAuction(t)
	if _, err := Run(s, &Construct{unary: unary{In: personSelect()}}); err == nil {
		t.Error("pattern-less construct succeeded")
	}
}

func TestAggregateErrors(t *testing.T) {
	s := loadAuction(t)
	// Unknown function.
	if _, err := Run(s, NewAggregate(personSelect(), AggFunc("median"), 1, 99)); err == nil {
		t.Error("unknown aggregate succeeded")
	}
	// Non-numeric content under sum.
	anchor := pattern.NewLCAnchor(0, 1)
	anchor.Add(pattern.NewTagNode(30, "name"), pattern.Child, pattern.One)
	ext := NewExtendSelect(personSelect(), &pattern.Tree{Root: anchor})
	if _, err := Run(s, NewAggregate(ext, Sum, 30, 99)); err == nil {
		t.Error("sum over names succeeded")
	}
}

func TestFilterCompare(t *testing.T) {
	s := loadAuction(t)
	// Compare @id against itself: always true.
	eq := NewFilterCompare(personSelect(), 2, pattern.EQ, 2)
	res, err := Run(s, eq)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Errorf("self-compare kept %d trees", len(res))
	}
	// Compare against an empty class: nothing passes.
	miss := NewFilterCompare(personSelect(), 2, pattern.EQ, 77)
	res, err = Run(s, miss)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Errorf("empty-class compare kept %d trees", len(res))
	}
}

func TestDisjFilterModes(t *testing.T) {
	s := loadAuction(t)
	// age > 35 OR age < 25 keeps Bob (20) and Carol (40).
	f := NewDisjFilter(personSelect(),
		FilterBranch{LCL: 3, Pred: pattern.Predicate{Op: pattern.GT, Value: "35"}, Mode: AtLeastOne},
		FilterBranch{LCL: 3, Pred: pattern.Predicate{Op: pattern.LT, Value: "25"}, Mode: AtLeastOne},
	)
	res, err := Run(s, f)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Errorf("disjunction kept %d trees, want 2", len(res))
	}
	// Every-mode disjunct over an empty class is a non-match (no vacuous
	// truth inside OR).
	f2 := NewDisjFilter(personSelect(),
		FilterBranch{LCL: 77, Pred: pattern.Predicate{Op: pattern.GT, Value: "0"}, Mode: Every})
	res, err = Run(s, f2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Errorf("empty-class EVERY disjunct kept %d trees", len(res))
	}
}

func TestPruneRemovesClassAndNodes(t *testing.T) {
	s := loadAuction(t)
	pr := NewPrune(personSelect(), 3) // drop the age branches
	res, err := Run(s, pr)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range res {
		if len(w.Class(3)) != 0 {
			t.Error("pruned class still populated")
		}
		p, _ := w.Singleton(1)
		for _, k := range p.Kids {
			if k.Tag == "age" {
				t.Error("pruned node still attached")
			}
		}
	}
}

func TestIdentityJoinOp(t *testing.T) {
	s := loadAuction(t)
	// Re-match person names from the root and merge them onto the bound
	// persons — the TAX RETURN-path stitch.
	nameRoot := pattern.NewDocRoot(0, "auction.xml")
	p2 := nameRoot.Add(pattern.NewTagNode(41, "person"), pattern.Descendant, pattern.One)
	p2.Add(pattern.NewTagNode(42, "name"), pattern.Child, pattern.One)
	fresh := NewSelect(&pattern.Tree{Root: nameRoot})
	join := NewIdentityJoin(personSelect(), fresh, 1, 41)
	res, err := Run(s, join)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("identity join produced %d trees", len(res))
	}
	for _, w := range res {
		if len(w.Class(42)) != 1 {
			t.Errorf("merged name class = %d", len(w.Class(42)))
		}
		n := w.Class(42)[0]
		p, _ := w.Singleton(1)
		if n.Parent != p {
			t.Error("name not grafted under the bound person")
		}
	}
}

func TestNestAllJoin(t *testing.T) {
	s := loadAuction(t)
	j := NewCartesianJoin(personSelect(), auctionSelect(), 50)
	j.RightSpec = pattern.ZeroOrMore
	res, err := Run(s, j)
	if err != nil {
		t.Fatal(err)
	}
	// One output per person, each nesting all three auctions.
	if len(res) != 3 {
		t.Fatalf("nest-all join produced %d trees, want 3", len(res))
	}
	if got := len(res[0].Class(4)); got != 3 {
		t.Errorf("nested auctions = %d, want 3", got)
	}
}

func TestSortDocOrderFallsBackToRoot(t *testing.T) {
	s := loadAuction(t)
	res, err := Run(s, NewSortDocOrder(personSelect(), 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("%d trees", len(res))
	}
}

func TestSortMissingKeysLast(t *testing.T) {
	s := store.New()
	if _, err := s.LoadXML("m.xml", strings.NewReader(
		`<r><p><v>2</v></p><p/><p><v>1</v></p></r>`)); err != nil {
		t.Fatal(err)
	}
	root := pattern.NewDocRoot(0, "m.xml")
	p := root.Add(pattern.NewTagNode(1, "p"), pattern.Child, pattern.One)
	p.Add(pattern.NewTagNode(2, "v"), pattern.Child, pattern.ZeroOrOne)
	res, err := Run(s, NewSort(NewSelect(&pattern.Tree{Root: root}), SortKey{LCL: 2}))
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, w := range res {
		if m := w.Class(2); len(m) == 1 {
			got = append(got, seq.Content(s, m[0]))
		} else {
			got = append(got, "-")
		}
	}
	if strings.Join(got, ",") != "1,2,-" {
		t.Errorf("sort order = %v (missing keys must sort last)", got)
	}
}

func TestUnionRemap(t *testing.T) {
	u := NewUnion(personSelect(), auctionSelect())
	if got := len(u.Inputs()); got != 2 {
		t.Fatalf("union inputs = %d", got)
	}
	repl := personSelect()
	if !ReplaceInput(u, u.Inputs()[0], repl) {
		t.Error("ReplaceInput on union failed")
	}
	if u.Inputs()[0] != repl {
		t.Error("union input not replaced")
	}
}

func TestOpsAndRefsCoverage(t *testing.T) {
	s := loadAuction(t)
	// Build a plan touching most operators and exercise RefsOf/RemapOf on
	// every node.
	sel := auctionSelect()
	agg := NewAggregate(sel, Count, 5, 11)
	fil := NewFilter(agg, 11, pattern.Predicate{Op: pattern.GT, Value: "0"}, AtLeastOne)
	prj := NewProject(fil, 4, 5)
	de := NewDupElim(prj, 4)
	srt := NewSort(de, SortKey{LCL: 4})
	fl := NewFlatten(srt, 4, 5)
	sh := NewShadow(srt, 4, 5)
	il := NewIlluminate(sh, 5)
	un := NewUnion(fl, il)
	for _, op := range Ops(un) {
		refs := RefsOf(op)
		RemapOf(op, map[int]int{99: 98}) // no-op remap
		_ = refs
		if op.Label() == "" {
			t.Errorf("%T has empty label", op)
		}
	}
	if _, err := Run(s, un); err != nil {
		t.Fatalf("combined plan: %v", err)
	}
}

func TestGroupByBasisErrors(t *testing.T) {
	s := loadAuction(t)
	// Basis class with several members per tree errors.
	sel := auctionSelect() // class 5 = bidder cluster (multi)
	if _, err := Run(s, NewGroupBy(sel, 5, 4)); err == nil {
		t.Error("multi-member basis succeeded")
	}
	// Empty basis class passes through.
	res, err := Run(s, NewGroupBy(auctionSelect(), 77, 5))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Errorf("pass-through grouping = %d trees", len(res))
	}
}
