package algebra

import (
	"fmt"

	"tlc/internal/seq"
)

// Flatten breaks clustered trees apart (Definition 5): for every tree and
// every pair (p, c) with p the singleton bound to PLCL and c a member of
// CLCL (a child class of p), it emits a copy of the tree retaining only c
// out of the members of CLCL — the other members and their subtrees are
// dropped. A tree whose child class is empty produces no output.
type Flatten struct {
	unary
	PLCL, CLCL int
}

// NewFlatten returns a Flatten over in.
func NewFlatten(in Op, pLCL, cLCL int) *Flatten {
	f := &Flatten{PLCL: pLCL, CLCL: cLCL}
	f.In = in
	return f
}

// Label implements Op.
func (f *Flatten) Label() string { return fmt.Sprintf("Flatten (%d, %d)", f.PLCL, f.CLCL) }

func (f *Flatten) eval(ctx *Context, in []seq.Seq) (seq.Seq, error) {
	return chunkMap(ctx, in[0], false, func(chunk seq.Seq) (seq.Seq, error) {
		var out seq.Seq
		for _, t := range chunk {
			trees, err := breakApart(t, f.PLCL, f.CLCL, false)
			if err != nil {
				return nil, err
			}
			out = append(out, trees...)
		}
		return out, nil
	})
}

// Shadow behaves like Flatten but retains the suppressed members as
// shadowed nodes (Definition 6): they stay in their logical class yet are
// invisible to every operator except Illuminate.
type Shadow struct {
	unary
	PLCL, CLCL int
}

// NewShadow returns a Shadow over in.
func NewShadow(in Op, pLCL, cLCL int) *Shadow {
	s := &Shadow{PLCL: pLCL, CLCL: cLCL}
	s.In = in
	return s
}

// Label implements Op.
func (s *Shadow) Label() string { return fmt.Sprintf("Shadow (%d, %d)", s.PLCL, s.CLCL) }

func (s *Shadow) eval(ctx *Context, in []seq.Seq) (seq.Seq, error) {
	return chunkMap(ctx, in[0], false, func(chunk seq.Seq) (seq.Seq, error) {
		var out seq.Seq
		for _, t := range chunk {
			trees, err := breakApart(t, s.PLCL, s.CLCL, true)
			if err != nil {
				return nil, err
			}
			out = append(out, trees...)
		}
		return out, nil
	})
}

// breakApart implements the common mechanics of Flatten and Shadow.
func breakApart(t *seq.Tree, pLCL, cLCL int, shadow bool) (seq.Seq, error) {
	p, err := t.Singleton(pLCL)
	if err != nil {
		return nil, fmt.Errorf("flatten/shadow parent: %w", err)
	}
	members := t.Class(cLCL)
	for _, c := range members {
		if c.Parent != p {
			return nil, fmt.Errorf("class %d member is not a child of the class %d node", cLCL, pLCL)
		}
	}
	if len(members) == 0 {
		return nil, nil
	}
	if len(members) == 1 {
		return seq.Seq{t}, nil
	}
	var out seq.Seq
	for i := range members {
		// Each retained member gets its own copy of the tree; the last one
		// consumes the original when this operator owns it (t is pristine
		// until then).
		nt, mapping := t, seq.NodeMap{}
		if i < len(members)-1 || t.Frozen() {
			nt, mapping = t.CloneWithMapping()
		}
		for j, c := range members {
			if j == i {
				continue
			}
			victim := mapping.Get(c)
			if shadow {
				victim.Walk(func(n *seq.Node) bool {
					n.Shadowed = true
					return true
				})
				continue
			}
			// Flatten removes the node, its subtree and their class
			// memberships entirely.
			seq.Detach(victim)
			victim.Walk(func(n *seq.Node) bool {
				nt.RemoveFromClasses(n)
				return true
			})
		}
		out = append(out, nt)
	}
	return out, nil
}

// Illuminate re-activates the shadowed members of a logical class and
// their subtrees (Definition 7). It never changes the number of trees.
type Illuminate struct {
	unary
	LCL int
}

// NewIlluminate returns an Illuminate over in.
func NewIlluminate(in Op, lcl int) *Illuminate {
	i := &Illuminate{LCL: lcl}
	i.In = in
	return i
}

// Label implements Op.
func (i *Illuminate) Label() string { return fmt.Sprintf("Illuminate (%d)", i.LCL) }

func (i *Illuminate) eval(_ *Context, in []seq.Seq) (seq.Seq, error) {
	// Illuminate flips flags in place on trees this operator owns — which
	// is precisely why replacing a re-matching Select with an Illuminate
	// pays off (Section 4.3). A frozen tree (shared with another consumer)
	// is copied first, and only when it actually has shadowed members to
	// flip; the copied tree replaces the original in the output slice.
	out := in[0]
	for ti, t := range out {
		needs := false
		for _, n := range t.ClassAll(i.LCL) {
			if n.Shadowed {
				needs = true
				break
			}
		}
		if !needs {
			continue
		}
		mt := t.Mutable()
		out[ti] = mt
		for _, n := range mt.ClassAll(i.LCL) {
			if !n.Shadowed {
				continue
			}
			n.Walk(func(m *seq.Node) bool {
				m.Shadowed = false
				return true
			})
		}
	}
	return out, nil
}

var _ Op = (*Flatten)(nil)
var _ Op = (*Shadow)(nil)
var _ Op = (*Illuminate)(nil)
