package algebra

import (
	"fmt"

	"tlc/internal/physical"
	"tlc/internal/seq"
)

// IdentityJoinOp stitches re-matched path selections back onto already
// bound nodes by node identity — the RETURN-clause join of TAX plans; see
// physical.IdentityMergeJoin.
type IdentityJoinOp struct {
	binary
	LeftLCL, RightLCL int
}

// NewIdentityJoin returns an identity join of left and right.
func NewIdentityJoin(left, right Op, leftLCL, rightLCL int) *IdentityJoinOp {
	j := &IdentityJoinOp{LeftLCL: leftLCL, RightLCL: rightLCL}
	j.Left, j.Right = left, right
	return j
}

// Label implements Op.
func (j *IdentityJoinOp) Label() string {
	return fmt.Sprintf("IdentityJoin: (%d) == (%d)", j.LeftLCL, j.RightLCL)
}

func (j *IdentityJoinOp) eval(ctx *Context, in []seq.Seq) (seq.Seq, error) {
	return physical.IdentityMergeJoin(ctx.GoContext(), ctx.Store, in[0], in[1], j.LeftLCL, j.RightLCL)
}

// ClassRefs implements ClassUser.
func (j *IdentityJoinOp) ClassRefs() []int { return []int{j.LeftLCL, j.RightLCL} }

// RemapClasses implements ClassRemapper.
func (j *IdentityJoinOp) RemapClasses(m map[int]int) {
	j.LeftLCL = remap(m, j.LeftLCL)
	j.RightLCL = remap(m, j.RightLCL)
}

var _ Op = (*IdentityJoinOp)(nil)
