package xmltree

import (
	"fmt"
	"strings"
)

// Document is a parsed XML document held as a flat arena of nodes in
// document (pre-order) order. The ordinal of a node in Nodes equals its
// NodeID.Start, so a NodeID is sufficient to locate a node in O(1).
type Document struct {
	// Name is the document name under which the document was loaded,
	// e.g. "auction.xml".
	Name string
	// Nodes holds every node of the document in pre-order.
	Nodes []Node
}

// Root returns the ordinal of the document root element (always 0).
func (d *Document) Root() int32 { return 0 }

// Node returns the node at the given arena ordinal.
func (d *Document) Node(ordinal int32) *Node { return &d.Nodes[ordinal] }

// Len returns the number of nodes in the document.
func (d *Document) Len() int { return len(d.Nodes) }

// Children returns the ordinals of the direct children of the node at the
// given ordinal, in document order.
func (d *Document) Children(ordinal int32) []int32 {
	n := &d.Nodes[ordinal]
	if n.FirstChild < 0 {
		return nil
	}
	var kids []int32
	for c := n.FirstChild; c <= n.ID.End; {
		kids = append(kids, c)
		c = d.Nodes[c].ID.End + 1
	}
	return kids
}

// Content returns the textual content of a node: the value itself for
// attributes and text nodes, and the concatenation of the direct text
// children for elements. This is the value used by content predicates such
// as age > 25 and by the value index.
func (d *Document) Content(ordinal int32) string {
	n := &d.Nodes[ordinal]
	switch n.Kind {
	case Attribute, Text:
		return n.Value
	}
	if n.FirstChild < 0 {
		return ""
	}
	var sb strings.Builder
	for _, c := range d.Children(ordinal) {
		if d.Nodes[c].Kind == Text {
			sb.WriteString(d.Nodes[c].Value)
		}
	}
	return sb.String()
}

// SubtreeSize returns the number of nodes in the subtree rooted at ordinal,
// including the root itself.
func (d *Document) SubtreeSize(ordinal int32) int {
	n := &d.Nodes[ordinal]
	return int(n.ID.End - n.ID.Start + 1)
}

// Validate checks the structural invariants of the arena encoding and
// returns a descriptive error for the first violation found. It is used by
// tests and by the store loader as a cheap integrity check.
func (d *Document) Validate() error {
	if len(d.Nodes) == 0 {
		return fmt.Errorf("xmltree: document %q has no nodes", d.Name)
	}
	for i := range d.Nodes {
		n := &d.Nodes[i]
		if n.ID.Start != int32(i) {
			return fmt.Errorf("xmltree: node %d has Start %d", i, n.ID.Start)
		}
		if n.ID.End < n.ID.Start || int(n.ID.End) >= len(d.Nodes) {
			return fmt.Errorf("xmltree: node %d has End %d out of range", i, n.ID.End)
		}
		if i == 0 {
			if n.Parent != -1 {
				return fmt.Errorf("xmltree: root has parent %d", n.Parent)
			}
			if n.ID.End != int32(len(d.Nodes)-1) {
				return fmt.Errorf("xmltree: root End %d does not span document of %d nodes", n.ID.End, len(d.Nodes))
			}
			continue
		}
		p := &d.Nodes[n.Parent]
		if !p.ID.Contains(n.ID) {
			return fmt.Errorf("xmltree: node %d not contained in parent %d", i, n.Parent)
		}
		if p.ID.Level+1 != n.ID.Level {
			return fmt.Errorf("xmltree: node %d level %d under parent level %d", i, n.ID.Level, p.ID.Level)
		}
	}
	return nil
}

// Builder assembles a Document in a single pre-order pass. It is used by
// the XML parser and by the synthetic XMark generator, which construct
// documents directly without an XML text round trip. Unbalanced usage
// (closing more elements than were opened, finishing with elements still
// open) is reported by Done as an error, not a panic: builder input can
// come from untrusted XML via POST /load, and malformed input must fail
// the load, not the process.
type Builder struct {
	doc   *Document
	stack []int32
	err   error
}

// NewBuilder returns a builder for a document with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{doc: &Document{Name: name}}
}

// OpenElement appends a new element node as a child of the currently open
// element (or as the root) and makes it the open element.
func (b *Builder) OpenElement(tag string) {
	b.push(Element, tag, "")
}

// Attr appends an attribute node to the currently open element. The name
// is stored with a leading "@".
func (b *Builder) Attr(name, value string) {
	b.leaf(Attribute, "@"+name, value)
}

// TextNode appends a text node with the given content to the currently
// open element. Empty content is ignored.
func (b *Builder) TextNode(content string) {
	if content == "" {
		return
	}
	b.leaf(Text, TextTag, content)
}

// CloseElement closes the currently open element, fixing its End interval.
// Closing with no element open is recorded and reported by Done.
func (b *Builder) CloseElement() {
	if len(b.stack) == 0 {
		if b.err == nil {
			b.err = fmt.Errorf("xmltree: document %q closes an element that was never opened", b.doc.Name)
		}
		return
	}
	top := b.stack[len(b.stack)-1]
	b.stack = b.stack[:len(b.stack)-1]
	b.doc.Nodes[top].ID.End = int32(len(b.doc.Nodes) - 1)
}

// Element appends a leaf element that carries only the given text content,
// a common shape in XMark data (e.g. <age>32</age>).
func (b *Builder) Element(tag, content string) {
	b.OpenElement(tag)
	b.TextNode(content)
	b.CloseElement()
}

// Done finishes the document and returns it, or an error when the builder
// input was unbalanced — elements still open, or a close without an open.
func (b *Builder) Done() (*Document, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.stack) != 0 {
		return nil, fmt.Errorf("xmltree: document %q finished with %d open elements", b.doc.Name, len(b.stack))
	}
	return b.doc, nil
}

func (b *Builder) push(kind Kind, tag, value string) {
	ord := int32(len(b.doc.Nodes))
	parent := int32(-1)
	level := int32(0)
	if len(b.stack) > 0 {
		parent = b.stack[len(b.stack)-1]
		level = b.doc.Nodes[parent].ID.Level + 1
		if b.doc.Nodes[parent].FirstChild < 0 {
			b.doc.Nodes[parent].FirstChild = ord
		}
	}
	b.doc.Nodes = append(b.doc.Nodes, Node{
		ID:         NodeID{Start: ord, End: ord, Level: level},
		Kind:       kind,
		Tag:        tag,
		Value:      value,
		Parent:     parent,
		FirstChild: -1,
	})
	b.stack = append(b.stack, ord)
}

func (b *Builder) leaf(kind Kind, tag, value string) {
	b.push(kind, tag, value)
	b.stack = b.stack[:len(b.stack)-1]
}
