package xmltree

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

const sampleXML = `<site>
  <people>
    <person id="p0"><name>Alice</name><age>30</age></person>
    <person id="p1"><name>Bob</name></person>
  </people>
  <open_auctions>
    <open_auction id="a0">
      <bidder><personref person="p0"/><increase>3</increase></bidder>
      <bidder><personref person="p1"/><increase>5</increase></bidder>
      <quantity>2</quantity>
    </open_auction>
  </open_auctions>
</site>`

func mustParse(t *testing.T, s string) *Document {
	t.Helper()
	d, err := ParseString("test.xml", s)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return d
}

func TestParseBasic(t *testing.T) {
	d := mustParse(t, sampleXML)
	root := d.Node(d.Root())
	if root.Tag != "site" {
		t.Errorf("root tag = %q, want site", root.Tag)
	}
	if root.ID.Level != 0 || root.ID.Start != 0 {
		t.Errorf("root id = %v", root.ID)
	}
	if got := int(root.ID.End); got != d.Len()-1 {
		t.Errorf("root End = %d, want %d", got, d.Len()-1)
	}
}

func countTag(d *Document, tag string) int {
	n := 0
	for i := range d.Nodes {
		if d.Nodes[i].Tag == tag {
			n++
		}
	}
	return n
}

func TestParseCounts(t *testing.T) {
	d := mustParse(t, sampleXML)
	for tag, want := range map[string]int{
		"person": 2, "bidder": 2, "@id": 3, "@person": 2, "name": 2, "age": 1,
	} {
		if got := countTag(d, tag); got != want {
			t.Errorf("count(%s) = %d, want %d", tag, got, want)
		}
	}
}

func TestChildren(t *testing.T) {
	d := mustParse(t, sampleXML)
	kids := d.Children(0)
	if len(kids) != 2 {
		t.Fatalf("root has %d children, want 2", len(kids))
	}
	if d.Node(kids[0]).Tag != "people" || d.Node(kids[1]).Tag != "open_auctions" {
		t.Errorf("children tags = %q, %q", d.Node(kids[0]).Tag, d.Node(kids[1]).Tag)
	}
	// person p0 has @id, name, age children.
	for i := range d.Nodes {
		if d.Nodes[i].Tag == "person" {
			kids := d.Children(int32(i))
			if len(kids) != 3 {
				t.Fatalf("first person has %d children, want 3", len(kids))
			}
			break
		}
	}
}

func TestContent(t *testing.T) {
	d := mustParse(t, sampleXML)
	for i := range d.Nodes {
		n := &d.Nodes[i]
		switch {
		case n.Tag == "age":
			if got := d.Content(int32(i)); got != "30" {
				t.Errorf("Content(age) = %q, want 30", got)
			}
		case n.Tag == "@person" && n.Value == "p1":
			if got := d.Content(int32(i)); got != "p1" {
				t.Errorf("Content(@person) = %q", got)
			}
		case n.Tag == "people":
			if got := d.Content(int32(i)); got != "" {
				t.Errorf("Content(people) = %q, want empty", got)
			}
		}
	}
}

func TestNodeIDRelations(t *testing.T) {
	d := mustParse(t, sampleXML)
	// Brute-force check: Contains agrees with parent-pointer reachability.
	anc := func(a, b int32) bool {
		for p := d.Nodes[b].Parent; p >= 0; p = d.Nodes[p].Parent {
			if p == a {
				return true
			}
		}
		return false
	}
	for i := 0; i < d.Len(); i++ {
		for j := 0; j < d.Len(); j++ {
			a, b := int32(i), int32(j)
			if got, want := d.Nodes[a].ID.Contains(d.Nodes[b].ID), anc(a, b); got != want {
				t.Fatalf("Contains(%d,%d) = %v, want %v", i, j, got, want)
			}
			if got, want := d.Nodes[a].ID.ParentOf(d.Nodes[b].ID), d.Nodes[b].Parent == a; got != want {
				t.Fatalf("ParentOf(%d,%d) = %v, want %v", i, j, got, want)
			}
		}
	}
}

func TestWriteXMLRoundTrip(t *testing.T) {
	d := mustParse(t, sampleXML)
	out := d.XML(0)
	d2 := mustParse(t, out)
	if d2.Len() != d.Len() {
		t.Fatalf("round trip length %d, want %d", d2.Len(), d.Len())
	}
	for i := range d.Nodes {
		if d.Nodes[i].Tag != d2.Nodes[i].Tag || d.Nodes[i].Value != d2.Nodes[i].Value {
			t.Fatalf("round trip node %d differs: %+v vs %+v", i, d.Nodes[i], d2.Nodes[i])
		}
	}
}

func TestXMLEscaping(t *testing.T) {
	d := mustParse(t, `<a v="x&amp;y"><b>1 &lt; 2</b></a>`)
	out := d.XML(0)
	if !strings.Contains(out, "&amp;") || !strings.Contains(out, "&lt;") {
		t.Errorf("escaping lost: %s", out)
	}
	if _, err := ParseString("re", out); err != nil {
		t.Errorf("reparse escaped output: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{"", "<a>", "<a></b>", "text only"} {
		if _, err := ParseString("bad", bad); err == nil {
			t.Errorf("ParseString(%q) succeeded, want error", bad)
		}
	}
}

func TestBuilderElementHelper(t *testing.T) {
	b := NewBuilder("t")
	b.OpenElement("r")
	b.Element("age", "25")
	b.CloseElement()
	d, err := b.Done()
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 3 {
		t.Fatalf("len = %d, want 3", d.Len())
	}
	if d.Content(1) != "25" {
		t.Errorf("Content = %q", d.Content(1))
	}
}

func TestSubtreeSize(t *testing.T) {
	d := mustParse(t, sampleXML)
	if got := d.SubtreeSize(0); got != d.Len() {
		t.Errorf("SubtreeSize(root) = %d, want %d", got, d.Len())
	}
}

// buildRandom constructs a random valid document with n element nodes,
// exercising the builder the way the XMark generator does.
func buildRandom(rng *rand.Rand, n int) *Document {
	b := NewBuilder("rand")
	b.OpenElement("root")
	open := 1
	justOpened := true
	for i := 0; i < n; i++ {
		switch rng.Intn(4) {
		case 0:
			b.OpenElement("e")
			open++
			justOpened = true
		case 1:
			if open > 1 {
				b.CloseElement()
				open--
			}
			justOpened = false
		case 2:
			b.Element("leaf", "v")
			justOpened = false
		case 3:
			// Attributes are only legal before any element/text children.
			if justOpened {
				b.Attr("k", "v")
			}
		}
	}
	for ; open > 0; open-- {
		b.CloseElement()
	}
	d, err := b.Done()
	if err != nil {
		panic(err)
	}
	return d
}

func TestQuickRandomDocumentsValid(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		d := buildRandom(rand.New(rand.NewSource(seed)), int(size))
		return d.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRoundTripPreservesShape(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		d := buildRandom(rand.New(rand.NewSource(seed)), int(size)%64)
		d2, err := ParseString("rt", d.XML(0))
		if err != nil {
			return false
		}
		if d.Len() != d2.Len() {
			return false
		}
		for i := range d.Nodes {
			if d.Nodes[i].Tag != d2.Nodes[i].Tag || d.Nodes[i].ID != d2.Nodes[i].ID {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickContainmentMatchesParents(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		d := buildRandom(rand.New(rand.NewSource(seed)), int(size)%48)
		for i := range d.Nodes {
			for p := d.Nodes[i].Parent; p >= 0; p = d.Nodes[p].Parent {
				if !d.Nodes[p].ID.Contains(d.Nodes[i].ID) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
