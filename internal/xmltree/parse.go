package xmltree

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"
)

// Parse reads an XML document from r and returns it as a Document named
// name. Comments, processing instructions and directives are skipped;
// whitespace-only character data between elements is dropped, matching the
// data model used by the paper's experiments.
func Parse(name string, r io.Reader) (*Document, error) {
	dec := xml.NewDecoder(r)
	b := NewBuilder(name)
	depth := 0
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmltree: parse %s: %w", name, err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			b.OpenElement(t.Name.Local)
			for _, a := range t.Attr {
				if a.Name.Space == "xmlns" || a.Name.Local == "xmlns" {
					continue
				}
				b.Attr(a.Name.Local, a.Value)
			}
			depth++
		case xml.EndElement:
			b.CloseElement()
			depth--
		case xml.CharData:
			if depth == 0 {
				continue
			}
			s := string(t)
			if strings.TrimSpace(s) == "" {
				continue
			}
			b.TextNode(strings.TrimSpace(s))
		}
	}
	if depth != 0 {
		return nil, fmt.Errorf("xmltree: parse %s: unbalanced document", name)
	}
	doc, err := b.Done()
	if err != nil {
		return nil, err
	}
	if doc.Len() == 0 {
		return nil, fmt.Errorf("xmltree: parse %s: empty document", name)
	}
	return doc, nil
}

// ParseString is a convenience wrapper around Parse for string input.
func ParseString(name, s string) (*Document, error) {
	return Parse(name, strings.NewReader(s))
}

// WriteXML serializes the subtree rooted at ordinal to w as XML text.
// Attributes are emitted on the start tag; text content is escaped.
func (d *Document) WriteXML(w io.Writer, ordinal int32) error {
	var sb strings.Builder
	d.appendXML(&sb, ordinal)
	_, err := io.WriteString(w, sb.String())
	return err
}

// XML returns the subtree rooted at ordinal as XML text.
func (d *Document) XML(ordinal int32) string {
	var sb strings.Builder
	d.appendXML(&sb, ordinal)
	return sb.String()
}

func (d *Document) appendXML(sb *strings.Builder, ordinal int32) {
	n := &d.Nodes[ordinal]
	switch n.Kind {
	case Text:
		xmlEscape(sb, n.Value)
		return
	case Attribute:
		// A bare attribute serializes as name="value"; this only happens
		// when an attribute node is itself the requested root.
		sb.WriteString(n.Tag[1:])
		sb.WriteString(`="`)
		xmlEscape(sb, n.Value)
		sb.WriteString(`"`)
		return
	}
	sb.WriteByte('<')
	sb.WriteString(n.Tag)
	kids := d.Children(ordinal)
	body := kids[:0:0]
	for _, c := range kids {
		if d.Nodes[c].Kind == Attribute {
			sb.WriteByte(' ')
			sb.WriteString(d.Nodes[c].Tag[1:])
			sb.WriteString(`="`)
			xmlEscape(sb, d.Nodes[c].Value)
			sb.WriteString(`"`)
		} else {
			body = append(body, c)
		}
	}
	if len(body) == 0 {
		sb.WriteString("/>")
		return
	}
	sb.WriteByte('>')
	for _, c := range body {
		d.appendXML(sb, c)
	}
	sb.WriteString("</")
	sb.WriteString(n.Tag)
	sb.WriteByte('>')
}

// EscapeXML appends s to sb with the XML special characters escaped,
// using exactly the replacement rules of the document serializer. The
// store's columnar serializer shares it so both emit identical bytes.
func EscapeXML(sb *strings.Builder, s string) { xmlEscape(sb, s) }

func xmlEscape(sb *strings.Builder, s string) {
	for _, r := range s {
		switch r {
		case '<':
			sb.WriteString("&lt;")
		case '>':
			sb.WriteString("&gt;")
		case '&':
			sb.WriteString("&amp;")
		case '"':
			sb.WriteString("&quot;")
		default:
			sb.WriteRune(r)
		}
	}
}
