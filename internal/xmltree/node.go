// Package xmltree implements the rooted node-labelled tree data model used
// throughout the system, together with the interval-based node identifiers
// described in Section 5.1 of the TLC paper.
//
// Every node in a parsed document carries a NodeID (Start, End, Level).
// The identifiers satisfy the four properties of Figure 13 of the paper:
//
//  1. uniqueness             — Start is unique within a document;
//  2. structural containment — a is an ancestor of b iff
//     a.Start < b.Start && b.End <= a.End;
//  3. absolute document order — pre-order position is exactly Start;
//  4. class order             — Start is monotone within any tag class.
//
// Documents are stored as flat arenas (slices of Node in document order),
// which keeps them cache-friendly and lets the store layer build indexes as
// plain sorted ordinal slices.
package xmltree

import "fmt"

// Kind classifies a node in the XML data model.
type Kind uint8

// Node kinds. Attributes and text are modelled as child nodes of their
// element, as in TIMBER's native storage.
const (
	Element Kind = iota
	Attribute
	Text
)

// String returns a short human-readable name for the kind.
func (k Kind) String() string {
	switch k {
	case Element:
		return "element"
	case Attribute:
		return "attribute"
	case Text:
		return "text"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// NodeID is the interval identifier of a stored node (Section 5.1).
//
// Start is the pre-order position of the node within its document, End is
// the largest Start among the node and its descendants, and Level is the
// depth from the document root (root has level 0).
type NodeID struct {
	Start int32
	End   int32
	Level int32
}

// Contains reports whether the node identified by id is a proper ancestor
// of the node identified by other (property 2 of Figure 13).
func (id NodeID) Contains(other NodeID) bool {
	return id.Start < other.Start && other.End <= id.End
}

// ParentOf reports whether id identifies the parent of other: containment
// at exactly one level apart.
func (id NodeID) ParentOf(other NodeID) bool {
	return id.Contains(other) && id.Level+1 == other.Level
}

// Before reports whether id precedes other in document order
// (property 3 of Figure 13). An ancestor precedes its descendants.
func (id NodeID) Before(other NodeID) bool { return id.Start < other.Start }

// String renders the identifier as (start:end@level).
func (id NodeID) String() string {
	return fmt.Sprintf("(%d:%d@%d)", id.Start, id.End, id.Level)
}

// Node is a single node of a stored document. Nodes live in a Document
// arena; Parent and the child span refer to arena ordinals, which coincide
// with NodeID.Start.
type Node struct {
	ID   NodeID
	Kind Kind
	// Tag is the element tag name or attribute name. Attribute names are
	// stored with a leading "@" so that tag indexes distinguish the element
	// class "id" from the attribute class "@id", matching pattern-tree
	// node tests. Text nodes have Tag "#text".
	Tag string
	// Value is the attribute value or text content; empty for elements.
	Value string
	// Parent is the arena ordinal of the parent node, or -1 for the root.
	Parent int32
	// FirstChild and LastChild delimit the children: the children of a
	// node n are exactly the nodes c with c.Parent == n ordinal, and they
	// occur in the arena between FirstChild and the node's End. FirstChild
	// is -1 if the node is a leaf.
	FirstChild int32
}

// TextTag is the pseudo tag name under which text nodes are stored.
const TextTag = "#text"

// IsAttr reports whether tag names an attribute class ("@name").
func IsAttr(tag string) bool { return len(tag) > 0 && tag[0] == '@' }
