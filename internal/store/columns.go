package store

import (
	"sort"
	"strings"

	"tlc/internal/xmltree"
)

// This file implements the columnar node table. A document is stored as a
// struct of flat arrays ("columns"), one entry per node in document
// (pre-order) order, instead of an arena of pointer-rich node structs:
//
//	ordinal   0     1     2     3    ...
//	start   [ 0  |  1  |  2  |  3  | ...]  int32   interval start (== ordinal)
//	end     [ 9  |  4  |  2  |  3  | ...]  int32   interval end
//	level   [ 0  |  1  |  2  |  2  | ...]  int32   depth from the root
//	parent  [-1  |  0  |  1  |  1  | ...]  int32   parent ordinal (-1 at root)
//	first   [ 1  |  2  | -1  | -1  | ...]  int32   first-child ordinal
//	kind    [ E  |  E  |  A  |  T  | ...]  uint8   Element / Attribute / Text
//	tag     [ 5  |  9  |  2  |  0  | ...]  uint32  tag dictionary ID
//	val     [ 0  |  7  |  3  |  3  | ...]  uint32  value dictionary ID + 1
//
// Tags and values are dictionary-encoded: the columns hold dense integer
// IDs, the strings live once in the owning shard's interned dictionaries
// (dict.go). The val column stores dictID+1 so that 0 means "no content";
// attributes and text nodes always carry content (possibly the empty
// string), elements only when the concatenation of their direct text
// children is non-empty — the same convention the value index has always
// used.
//
// The tag and value indexes are columns too: a postings array of node
// ordinals grouped by dictionary ID, plus a directory of (id, offset,
// count) entries sorted by ID for binary-search lookup. Because the
// paper's interval IDs make every structural decision position-based, the
// evaluation engines run straight over these arrays; and because every
// array is flat integers (strings reduced to dictionary offsets), the
// whole table serializes to — and maps back from — a snapshot file
// without any decoding (snapshot.go).

// cols is the struct-of-arrays node table of one document.
type cols struct {
	start      []int32
	end        []int32
	level      []int32
	parent     []int32
	firstChild []int32
	kind       []uint8
	tag        []uint32
	val        []uint32
}

// dirEntry is one tag- or value-index directory entry: the postings for
// dictionary ID id are post[off : off+n]. Directories are sorted by id.
type dirEntry struct {
	id  uint32
	off uint32
	n   uint32
}

// Doc is the columnar view of one loaded document. All accessors are
// read-only, lock-free and safe for concurrent use; none of them touch
// the store's access counters (counted access goes through the Store
// methods). For snapshot-opened documents the columns, directories,
// postings and dictionary strings are views into the mapped file — the
// accessors are identical either way.
type Doc struct {
	name  string
	id    DocID
	shard int
	c     cols
	// tagDir/valDir index the postings arrays, sorted by dictionary ID.
	tagDir, valDir []dirEntry
	// tagPost/valPost hold node ordinals grouped by dictionary ID,
	// ascending within each group.
	tagPost, valPost []int32
	// tags/vals resolve the dictionary IDs of this document's columns.
	tags, vals *dict
	// stats is the load-time statistics summary served through Catalog.
	stats *docStats
	// version is the document's MVCC version: 1 for a freshly loaded
	// document, incremented by every committed splice (mutate.go). A Doc is
	// immutable; a mutation builds a whole new Doc with version+1 and swaps
	// the directory entry, so readers holding the old version keep a
	// consistent view.
	version uint64
}

// Name returns the document name under which the document was loaded.
func (d *Doc) Name() string { return d.name }

// DocID returns the document's store-wide ID.
func (d *Doc) DocID() DocID { return d.id }

// Version returns the document's MVCC version (1 for a fresh load; each
// committed mutation increments it).
func (d *Doc) Version() uint64 { return d.version }

// Len returns the number of nodes in the document.
func (d *Doc) Len() int { return len(d.c.start) }

// Root returns the ordinal of the document root element (always 0).
func (d *Doc) Root() int32 { return 0 }

// Start returns the interval start of the node (== its ordinal).
func (d *Doc) Start(ord int32) int32 { return d.c.start[ord] }

// End returns the interval end of the node: the ordinal of the last node
// in its subtree.
func (d *Doc) End(ord int32) int32 { return d.c.end[ord] }

// Level returns the node's depth (root = 0).
func (d *Doc) Level(ord int32) int32 { return d.c.level[ord] }

// Parent returns the parent ordinal, -1 at the root.
func (d *Doc) Parent(ord int32) int32 { return d.c.parent[ord] }

// FirstChild returns the ordinal of the node's first child, -1 for leaves.
func (d *Doc) FirstChild(ord int32) int32 { return d.c.firstChild[ord] }

// Kind returns the node kind (Element, Attribute or Text).
func (d *Doc) Kind(ord int32) xmltree.Kind { return xmltree.Kind(d.c.kind[ord]) }

// ID returns the node's interval identifier.
func (d *Doc) ID(ord int32) xmltree.NodeID {
	return xmltree.NodeID{Start: d.c.start[ord], End: d.c.end[ord], Level: d.c.level[ord]}
}

// TagID returns the tag dictionary ID of the node.
func (d *Doc) TagID(ord int32) uint32 { return d.c.tag[ord] }

// Tag returns the node's tag (elements plain, attributes with "@", text
// nodes as "#text").
func (d *Doc) Tag(ord int32) string { return d.tags.str(d.c.tag[ord]) }

// Value returns the literal node value: the content for attributes and
// text nodes, "" for elements — the same field the old node records
// carried.
func (d *Doc) Value(ord int32) string {
	if xmltree.Kind(d.c.kind[ord]) == xmltree.Element {
		return ""
	}
	return d.vals.str(d.c.val[ord] - 1)
}

// Content returns the textual content of a node: the value itself for
// attributes and text nodes, the concatenation of the direct text
// children for elements. Unlike the old arena — which re-concatenated on
// every call — element content is interned at load time, so this is a
// single column read plus a dictionary lookup.
func (d *Doc) Content(ord int32) string {
	v := d.c.val[ord]
	if v == 0 {
		return ""
	}
	return d.vals.str(v - 1)
}

// Children returns the ordinals of the direct children of the node, in
// document order.
func (d *Doc) Children(ord int32) []int32 {
	c := d.c.firstChild[ord]
	if c < 0 {
		return nil
	}
	var kids []int32
	for end := d.c.end[ord]; c <= end; c = d.c.end[c] + 1 {
		kids = append(kids, c)
	}
	return kids
}

// SubtreeSize returns the number of nodes in the subtree rooted at ord,
// including the root itself.
func (d *Doc) SubtreeSize(ord int32) int {
	return int(d.c.end[ord] - d.c.start[ord] + 1)
}

// findDir binary-searches a directory for a dictionary ID.
func findDir(dir []dirEntry, id uint32) (dirEntry, bool) {
	i := sort.Search(len(dir), func(i int) bool { return dir[i].id >= id })
	if i < len(dir) && dir[i].id == id {
		return dir[i], true
	}
	return dirEntry{}, false
}

// tagRefs returns the postings of a tag dictionary ID.
func (d *Doc) tagRefs(id uint32) []int32 {
	e, ok := findDir(d.tagDir, id)
	if !ok {
		return nil
	}
	return d.tagPost[e.off : e.off+e.n : e.off+e.n]
}

// valueRefs returns the postings of a value dictionary ID.
func (d *Doc) valueRefs(id uint32) []int32 {
	e, ok := findDir(d.valDir, id)
	if !ok {
		return nil
	}
	return d.valPost[e.off : e.off+e.n : e.off+e.n]
}

// tagRefsByName resolves a tag through the dictionary and returns its
// postings (nil for tags the document does not contain).
func (d *Doc) tagRefsByName(tag string) []int32 {
	id, ok := d.tags.lookup(tag)
	if !ok {
		return nil
	}
	return d.tagRefs(id)
}

// valueRefsByName resolves a content value through the dictionary and
// returns its postings.
func (d *Doc) valueRefsByName(v string) []int32 {
	id, ok := d.vals.lookup(v)
	if !ok {
		return nil
	}
	return d.valueRefs(id)
}

// XML returns the subtree rooted at ord as XML text, byte-identical to
// the xmltree serializer the store used before the columnar layout.
func (d *Doc) XML(ord int32) string {
	var sb strings.Builder
	d.appendXML(&sb, ord)
	return sb.String()
}

func (d *Doc) appendXML(sb *strings.Builder, ord int32) {
	switch xmltree.Kind(d.c.kind[ord]) {
	case xmltree.Text:
		xmltree.EscapeXML(sb, d.Value(ord))
		return
	case xmltree.Attribute:
		sb.WriteString(d.Tag(ord)[1:])
		sb.WriteString(`="`)
		xmltree.EscapeXML(sb, d.Value(ord))
		sb.WriteString(`"`)
		return
	}
	sb.WriteByte('<')
	tag := d.Tag(ord)
	sb.WriteString(tag)
	// First pass over the children: attributes inline on the start tag.
	end := d.c.end[ord]
	first := d.c.firstChild[ord]
	hasBody := false
	if first >= 0 {
		for c := first; c <= end; c = d.c.end[c] + 1 {
			if xmltree.Kind(d.c.kind[c]) == xmltree.Attribute {
				sb.WriteByte(' ')
				sb.WriteString(d.Tag(c)[1:])
				sb.WriteString(`="`)
				xmltree.EscapeXML(sb, d.Value(c))
				sb.WriteString(`"`)
			} else {
				hasBody = true
			}
		}
	}
	if !hasBody {
		sb.WriteString("/>")
		return
	}
	sb.WriteByte('>')
	for c := first; c <= end; c = d.c.end[c] + 1 {
		if xmltree.Kind(d.c.kind[c]) != xmltree.Attribute {
			d.appendXML(sb, c)
		}
	}
	sb.WriteString("</")
	sb.WriteString(tag)
	sb.WriteByte('>')
}

// buildDoc converts a parsed xmltree arena into the columnar layout,
// interning its strings into the shard dictionaries and building the
// postings indexes and the statistics summary. The xmltree.Document is
// not retained: after conversion the columns are the only representation.
func buildDoc(doc *xmltree.Document, id DocID, shardIdx int, tags, vals *dict) *Doc {
	n := len(doc.Nodes)
	d := &Doc{
		name:  doc.Name,
		id:    id,
		shard: shardIdx,
		c: cols{
			start:      make([]int32, n),
			end:        make([]int32, n),
			level:      make([]int32, n),
			parent:     make([]int32, n),
			firstChild: make([]int32, n),
			kind:       make([]uint8, n),
			tag:        make([]uint32, n),
			val:        make([]uint32, n),
		},
		tags:    tags,
		vals:    vals,
		version: 1,
	}

	// Pass 1: fill the columns with document-local dictionary IDs and
	// collect the local string tables.
	var localTags, localVals []string
	localTagIdx := make(map[string]uint32)
	localValIdx := make(map[string]uint32)
	for i := range doc.Nodes {
		nd := &doc.Nodes[i]
		d.c.start[i] = nd.ID.Start
		d.c.end[i] = nd.ID.End
		d.c.level[i] = nd.ID.Level
		d.c.parent[i] = nd.Parent
		d.c.firstChild[i] = nd.FirstChild
		d.c.kind[i] = uint8(nd.Kind)

		lt, ok := localTagIdx[nd.Tag]
		if !ok {
			lt = uint32(len(localTags))
			localTags = append(localTags, nd.Tag)
			localTagIdx[nd.Tag] = lt
		}
		d.c.tag[i] = lt

		content, hasContent := "", false
		switch nd.Kind {
		case xmltree.Attribute, xmltree.Text:
			content, hasContent = nd.Value, true
		case xmltree.Element:
			if c := doc.Content(int32(i)); c != "" {
				content, hasContent = c, true
			}
		}
		if hasContent {
			lv, ok := localValIdx[content]
			if !ok {
				lv = uint32(len(localVals))
				localVals = append(localVals, content)
				localValIdx[content] = lv
			}
			d.c.val[i] = lv + 1
		}
	}

	// Postings, grouped by local ID while the column still holds local
	// IDs (ordinals ascend within each group because the scan is in
	// document order).
	d.tagDir, d.tagPost = buildPostings(d.c.tag, 0, len(localTags))
	d.valDir, d.valPost = buildPostings(d.c.val, 1, len(localVals))

	// Pass 2: intern the local tables into the shard dictionaries and
	// remap columns and directories from local to global IDs.
	gTag := tags.internAll(localTags)
	gVal := vals.internAll(localVals)
	for i := range d.c.tag {
		d.c.tag[i] = gTag[d.c.tag[i]]
		if v := d.c.val[i]; v != 0 {
			d.c.val[i] = gVal[v-1] + 1
		}
	}
	remapDir(d.tagDir, gTag)
	remapDir(d.valDir, gVal)

	// Pass 3: the statistics catalog, over the remapped columns.
	d.stats = buildDocStats(d)
	return d
}

// buildPostings groups the ordinals of col by dictionary ID. bias is the
// column's ID offset (1 for the value column, where 0 means "no entry").
// The returned directory is in local-ID order; remapDir re-sorts it after
// the local→global translation.
func buildPostings(col []uint32, bias uint32, nids int) ([]dirEntry, []int32) {
	counts := make([]uint32, nids)
	total := 0
	for _, v := range col {
		if v < bias {
			continue
		}
		counts[v-bias]++
		total++
	}
	dir := make([]dirEntry, nids)
	off := uint32(0)
	for id, c := range counts {
		dir[id] = dirEntry{id: uint32(id), off: off, n: c}
		off += c
	}
	post := make([]int32, total)
	cursor := make([]uint32, nids)
	for i, v := range col {
		if v < bias {
			continue
		}
		id := v - bias
		post[dir[id].off+cursor[id]] = int32(i)
		cursor[id]++
	}
	return dir, post
}

// remapDir translates a directory from local to global IDs and re-sorts
// it by ID so lookups can binary-search.
func remapDir(dir []dirEntry, remap []uint32) {
	for i := range dir {
		dir[i].id = remap[dir[i].id]
	}
	sort.Slice(dir, func(i, j int) bool { return dir[i].id < dir[j].id })
}
