package store

import (
	"strings"
	"testing"
)

// FuzzLoadDocument feeds arbitrary bytes through the XML parse + index
// pipeline. The contract under fuzzing: Load either returns an error or
// yields a document whose indexes answer lookups without panicking —
// malformed input must never take the process down (the parser used to
// panic on close-without-open before Builder.Done grew an error return).
func FuzzLoadDocument(f *testing.F) {
	f.Add("<site><person id=\"p0\"><name>Alice</name><age>30</age></person></site>")
	f.Add("<a><b>x</b><b>y</b></a>")
	f.Add("<a attr=\"v\">text<!--comment--><b/></a>")
	f.Add("<a xmlns:x=\"urn:u\"><x:b/></a>")
	f.Add("<unclosed")
	f.Add("</stray>")
	f.Add("<a></b>")
	f.Add("")
	f.Add("plain text, no markup")
	f.Add("<a>" + strings.Repeat("<b/>", 64) + "</a>")
	f.Add("<?xml version=\"1.0\"?><a/>")
	f.Fuzz(func(t *testing.T, xml string) {
		s := New()
		id, err := s.LoadXML("fuzz.xml", strings.NewReader(xml))
		if err != nil {
			return
		}
		// Accepted input must be fully queryable.
		doc := s.Doc(id)
		if doc.Len() == 0 {
			t.Fatal("accepted document has no nodes")
		}
		for i := 0; i < doc.Len(); i++ {
			ord := int32(i)
			n := s.Node(id, ord)
			if got := s.TagCount(id, n.Tag); got < 1 {
				t.Fatalf("TagCount(%q) = %d for a present tag", n.Tag, got)
			}
			for _, c := range s.Children(id, ord) {
				if c <= ord || c >= int32(doc.Len()) {
					t.Fatalf("child %d of %d out of preorder range", c, ord)
				}
			}
			s.Content(id, ord)
		}
		for _, name := range s.Names() {
			if _, ok := s.Lookup(name); !ok {
				t.Fatalf("Lookup(%q) failed for a listed name", name)
			}
		}
	})
}
