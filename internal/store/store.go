// Package store implements the native XML store that all four evaluation
// engines (TLC, GTP, TAX, navigational) run against. It stands in for the
// disk-based TIMBER storage manager used in the paper: documents are held
// as columnar node tables (flat start/end/level/parent/tag/value arrays
// with dictionary-encoded strings — see columns.go), and the store
// maintains the two index structures the paper's experiments rely on — an
// element tag-name index (tag → node ordinals in document order) and a
// value index (content → node ordinals). Access counters make the
// relative cost of the competing plans observable. The columnar layout
// serializes to checksummed per-shard snapshot files opened via mmap
// (snapshot.go), so a restart maps the node table instead of re-parsing
// XML.
//
// # Sharding
//
// The store is horizontally partitioned: documents are routed by a hash of
// their name to one of N shards, and each shard owns its node tables, its
// string dictionaries, its tag/value indexes, its statistics summaries,
// its access counters, its load generation and its load-vs-query RWMutex.
// Because the paper's interval node identifiers (Section 5.1) make every
// structural decision purely position-based *within* a document, nothing
// an engine does ever crosses a shard boundary mid-join — cross-document
// work composes from shard-local runs merged in document order — so a
// shard is a complete, independent lock domain: loading a document stalls
// only its own shard.
//
// Document identity stays global and shard-count independent: DocIDs are
// issued in load order from a single counter and resolved through a
// copy-on-write directory (an atomic pointer swap per load), so the same
// load sequence yields the same DocIDs whether the store has 1 shard or
// 64 — which is what makes results byte-identical across shard counts.
//
// Reads never lock. Loaded documents are immutable, the directory is
// replaced (never mutated) on load, the dictionaries publish through
// atomic pointers, and the per-shard statistics counters are maintained
// with sync/atomic, so the parallel executor's worker goroutines probe
// indexes and fetch nodes without coordination. Serial evaluation
// (parallelism 1) produces exactly the counter values the paper's
// single-query-at-a-time measurements would.
package store

import (
	"fmt"
	"hash/fnv"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"tlc/internal/faultinject"
	"tlc/internal/xmltree"
)

// DocID identifies a loaded document within a store. IDs are issued in
// global load order, independent of the shard the document lands on.
type DocID int32

// Stats counts the store accesses performed during query evaluation. The
// benchmark harness resets it per query and reports it next to wall-clock
// time, making visible *why* one plan beats another (redundant index scans,
// early materialization, navigation steps).
type Stats struct {
	// TagLookups counts tag-index probes.
	TagLookups int64
	// TagRefs counts node references returned by tag-index probes.
	TagRefs int64
	// ValueLookups counts value-index probes.
	ValueLookups int64
	// NodesRead counts individual node records fetched (navigation and
	// content reads).
	NodesRead int64
	// NodesMaterialized counts nodes copied out of the store into
	// intermediate results (subtree materialization).
	NodesMaterialized int64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.TagLookups += other.TagLookups
	s.TagRefs += other.TagRefs
	s.ValueLookups += other.ValueLookups
	s.NodesRead += other.NodesRead
	s.NodesMaterialized += other.NodesMaterialized
}

// String renders the counters in a compact single-line form.
func (s Stats) String() string {
	return fmt.Sprintf("tagLookups=%d tagRefs=%d valueLookups=%d nodesRead=%d materialized=%d",
		s.TagLookups, s.TagRefs, s.ValueLookups, s.NodesRead, s.NodesMaterialized)
}

// counters is the mutable, atomically-maintained form of Stats. Keeping
// the exported Stats a plain value type preserves the snapshot/Add/String
// API while making the live counters safe for concurrent writers.
type counters struct {
	tagLookups        atomic.Int64
	tagRefs           atomic.Int64
	valueLookups      atomic.Int64
	nodesRead         atomic.Int64
	nodesMaterialized atomic.Int64
}

func (c *counters) snapshot() Stats {
	return Stats{
		TagLookups:        c.tagLookups.Load(),
		TagRefs:           c.tagRefs.Load(),
		ValueLookups:      c.valueLookups.Load(),
		NodesRead:         c.nodesRead.Load(),
		NodesMaterialized: c.nodesMaterialized.Load(),
	}
}

func (c *counters) reset() {
	c.tagLookups.Store(0)
	c.tagRefs.Store(0)
	c.valueLookups.Store(0)
	c.nodesRead.Store(0)
	c.nodesMaterialized.Store(0)
}

// shard is one lock domain of the store: the documents routed to it, their
// string dictionaries, their access counters, and the load generation plan
// caches key their validity on. The document data itself is reached
// through the store's directory; the shard records ownership for counter
// attribution and per-shard introspection (/varz, tests).
type shard struct {
	// mu is the shard's load-vs-query lock. The store's own read paths
	// never take it (loaded entries are immutable and the directory swap is
	// atomic); it exists for embedders that want the stronger "store does
	// not grow during my evaluation" discipline — the query service write-
	// locks it for the duration of a load into this shard and read-locks it
	// for queries resolving on this shard, so a slow load stalls only the
	// queries that actually read the loading shard.
	mu sync.RWMutex
	// gen counts successful loads into this shard. Plan caches compare the
	// generations of only the shards a plan reads, so a load into one shard
	// no longer invalidates every cached plan.
	gen atomic.Uint64
	// docs lists the DocIDs owned by the shard, in load order.
	docs []DocID
	// tags and vals are the shard's interned string dictionaries for
	// XML-loaded documents. Snapshot-opened documents carry their own
	// frozen dictionaries (views into the mapped file) and do not share
	// these.
	tags, vals *dict
	// stats holds the shard's access counters.
	stats counters
}

// directory is the immutable global view of the loaded documents. Loads
// build a new directory (copying the slice header and map) and swap the
// store's pointer, so concurrent readers always observe a consistent
// snapshot without locking.
type directory struct {
	docs   []*Doc
	byName map[string]DocID
}

var emptyDirectory = &directory{byName: map[string]DocID{}}

// Store is a sharded collection of indexed XML documents.
type Store struct {
	shards []*shard
	dir    atomic.Pointer[directory]
	// loadMu serializes directory swaps between concurrent loads. The
	// expensive part of a load (parsing, indexing, statistics) runs before
	// taking it, so loads into different shards overlap almost entirely.
	loadMu  sync.Mutex
	noStats bool
	// maps holds the snapshot file mappings backing snapshot-opened
	// documents; Close unmaps them. Guarded by loadMu.
	maps []*mapping
	// mappedBytes tracks the total size of the live mappings (gauge for
	// /varz).
	mappedBytes atomic.Int64
	// pinned marks a read-only directory view returned by Pin: it shares
	// the shards (dictionaries, counters, locks) with its parent but its
	// dir pointer is frozen, giving a query snapshot isolation for its
	// whole lifetime. Pinned views reject loads and commits.
	pinned bool
	// writers counts in-flight mutations (BeginMutation/end). LoadSnapshot
	// refuses to run while writers are in flight (ErrConcurrentMutation).
	writers atomic.Int64
	// updateGen counts committed mutations store-wide. It is recorded in
	// snapshot manifests so a snapshot written before later updates is
	// detectably stale.
	updateGen atomic.Uint64
	// superseded counts document versions replaced by a commit and not yet
	// reclaimed by the garbage collector (their finalizer decrements it);
	// VersionsLive adds it to the live document count.
	superseded atomic.Int64
	// commitLog, when set, is invoked inside CommitLogged — after the
	// version-conflict check, before the directory swap — with the commit's
	// sequence number (the update generation it will publish) and the
	// logical operation payload. An error vetoes the commit: the write-ahead
	// rule that makes every acknowledged update recoverable.
	commitLog atomic.Pointer[CommitLogFunc]
}

// CommitLogFunc persists one logical update before its directory swap.
// It runs under the store's commit lock, so calls arrive with strictly
// increasing, contiguous sequence numbers.
type CommitLogFunc func(seq uint64, payload []byte) error

// SetCommitLog installs (or, with nil, removes) the durable commit hook.
func (s *Store) SetCommitLog(fn CommitLogFunc) {
	if fn == nil {
		s.commitLog.Store(nil)
		return
	}
	s.commitLog.Store(&fn)
}

// LogsCommits reports whether a commit hook is installed — callers use it
// to skip serializing the logical operation when nothing will log it.
func (s *Store) LogsCommits() bool { return s.commitLog.Load() != nil }

// AdvanceUpdateGen raises the update generation to at least gen (a no-op
// when it is already there). Recovery uses it to re-align the store with
// a log that records a deliberate sequence gap — e.g. a snapshot loaded
// at a generation past the log's tail — so each replayed record commits
// at exactly its logged sequence number.
func (s *Store) AdvanceUpdateGen(gen uint64) {
	for {
		cur := s.updateGen.Load()
		if cur >= gen || s.updateGen.CompareAndSwap(cur, gen) {
			return
		}
	}
}

// DefaultShards is the shard count New uses: one per available CPU, the
// configuration that lets loads and shard-local scans proceed on every
// core without sharing a lock domain.
func DefaultShards() int { return runtime.GOMAXPROCS(0) }

// New returns an empty store with DefaultShards shards.
func New() *Store { return NewSharded(0) }

// NewSharded returns an empty store with n shards (n < 1 selects
// DefaultShards; n is capped at 1024).
func NewSharded(n int) *Store {
	if n < 1 {
		n = DefaultShards()
	}
	if n > 1024 {
		n = 1024
	}
	s := &Store{shards: make([]*shard, n)}
	for i := range s.shards {
		s.shards[i] = &shard{tags: newDict(), vals: newDict()}
	}
	s.dir.Store(emptyDirectory)
	return s
}

// NumShards returns the store's shard count (fixed at creation).
func (s *Store) NumShards() int { return len(s.shards) }

// ShardOfName returns the shard index the document with the given name is
// (or would be) routed to. The routing is a pure hash of the name, so it
// can be computed before the document is loaded — the query service uses
// it to pick the lock for a /load, and the plan cache to key validity.
func (s *Store) ShardOfName(name string) int {
	h := fnv.New32a()
	io.WriteString(h, name)
	return int(h.Sum32() % uint32(len(s.shards)))
}

// ShardOf returns the shard index owning the loaded document id.
func (s *Store) ShardOf(id DocID) int { return s.dir.Load().docs[id].shard }

// ShardLock returns shard i's load-vs-query RWMutex. The store's own read
// paths are lock-free; the lock is the coordination point for embedders
// that serialize loads against in-flight queries per shard (see shard.mu).
func (s *Store) ShardLock(i int) *sync.RWMutex { return &s.shards[i].mu }

// ShardGeneration returns the number of successful loads into shard i.
func (s *Store) ShardGeneration(i int) uint64 { return s.shards[i].gen.Load() }

// Generations returns the per-shard load generations, indexed by shard.
func (s *Store) Generations() []uint64 {
	out := make([]uint64, len(s.shards))
	for i, sh := range s.shards {
		out[i] = sh.gen.Load()
	}
	return out
}

// ShardDocs returns the names of the documents owned by shard i, in load
// order.
func (s *Store) ShardDocs(i int) []string {
	dir := s.dir.Load()
	s.loadMu.Lock()
	ids := append([]DocID(nil), s.shards[i].docs...)
	s.loadMu.Unlock()
	names := make([]string, 0, len(ids))
	for _, id := range ids {
		if int(id) < len(dir.docs) {
			names = append(names, dir.docs[id].name)
		}
	}
	return names
}

// entry resolves a DocID through the current directory snapshot.
func (s *Store) entry(id DocID) *Doc { return s.dir.Load().docs[id] }

// stats returns the counter set accesses to document d are attributed to:
// the owning shard's counters.
func (s *Store) stats(d *Doc) *counters { return &s.shards[d.shard].stats }

// Load converts doc to the columnar layout, indexes it and adds it to the
// store, routed to the shard hashed from its name. Loading a document
// whose name is already present is an error. Loads may run concurrently
// with queries and with loads into other shards: all the heavy work
// happens before the directory swap, and readers observe the new document
// only after its indexes are complete.
func (s *Store) Load(doc *xmltree.Document) (DocID, error) {
	if err := faultinject.Hit(faultinject.PointStoreLoad); err != nil {
		return 0, err
	}
	if err := doc.Validate(); err != nil {
		return 0, fmt.Errorf("store: load: %w", err)
	}
	if _, dup := s.Lookup(doc.Name); dup {
		return 0, fmt.Errorf("store: document %q already loaded", doc.Name)
	}
	shardIdx := s.ShardOfName(doc.Name)
	sh := s.shards[shardIdx]
	// The DocID is not final until the publish below; buildDoc only
	// records it for accessors, so build against the expected next ID and
	// fix it up under the lock.
	d := buildDoc(doc, DocID(s.NumDocs()), shardIdx, sh.tags, sh.vals)
	return s.publish(d)
}

// publish adds a fully-built document to the directory under loadMu and
// bumps its shard's generation.
func (s *Store) publish(d *Doc) (DocID, error) {
	if s.pinned {
		return 0, fmt.Errorf("store: load into a pinned (read-only) view")
	}
	s.loadMu.Lock()
	defer s.loadMu.Unlock()
	old := s.dir.Load()
	if _, dup := old.byName[d.name]; dup {
		return 0, fmt.Errorf("store: document %q already loaded", d.name)
	}
	id := DocID(len(old.docs))
	d.id = id
	next := &directory{
		docs:   make([]*Doc, len(old.docs), len(old.docs)+1),
		byName: make(map[string]DocID, len(old.byName)+1),
	}
	copy(next.docs, old.docs)
	next.docs = append(next.docs, d)
	for k, v := range old.byName {
		next.byName[k] = v
	}
	next.byName[d.name] = id
	s.shards[d.shard].docs = append(s.shards[d.shard].docs, id)
	s.dir.Store(next)
	s.shards[d.shard].gen.Add(1)
	return id, nil
}

// LoadXML parses XML from r and loads it under the given document name.
func (s *Store) LoadXML(name string, r io.Reader) (DocID, error) {
	doc, err := xmltree.Parse(name, r)
	if err != nil {
		return 0, err
	}
	return s.Load(doc)
}

// Lookup returns the DocID for a loaded document name.
func (s *Store) Lookup(name string) (DocID, bool) {
	id, ok := s.dir.Load().byName[name]
	return id, ok
}

// Names returns the names of the loaded documents in load order.
func (s *Store) Names() []string {
	dir := s.dir.Load()
	names := make([]string, len(dir.docs))
	for i := range dir.docs {
		names[i] = dir.docs[i].name
	}
	return names
}

// Doc returns the columnar view of the document with the given ID. The
// view is immutable, lock-free and uncounted: engines walk it directly on
// hot paths, while counted access goes through the Store methods below.
func (s *Store) Doc(id DocID) *Doc { return s.entry(id) }

// NumDocs returns the number of loaded documents.
func (s *Store) NumDocs() int { return len(s.dir.Load().docs) }

// Pin returns a read-only view of the store frozen at the current
// directory state. The view shares the shards (dictionaries, access
// counters, locks) with its parent, so counted accesses are still
// attributed correctly, but its directory pointer never moves: a query
// evaluated against the view is snapshot-isolated — it sees no document
// version committed, and no document loaded, after the Pin. Pinning is
// one small allocation; readers never block writers and vice versa.
func (s *Store) Pin() *Store {
	p := &Store{shards: s.shards, noStats: s.noStats, pinned: true}
	p.dir.Store(s.dir.Load())
	return p
}

// DocVersion returns the current MVCC version of a loaded document.
func (s *Store) DocVersion(name string) (uint64, bool) {
	dir := s.dir.Load()
	id, ok := dir.byName[name]
	if !ok {
		return 0, false
	}
	return dir.docs[id].version, true
}

// DocVersions returns the current MVCC version of every loaded document,
// keyed by name — one consistent directory snapshot.
func (s *Store) DocVersions() map[string]uint64 {
	dir := s.dir.Load()
	out := make(map[string]uint64, len(dir.docs))
	for _, d := range dir.docs {
		out[d.name] = d.version
	}
	return out
}

// UpdateGeneration returns the number of mutations committed into the
// store over its lifetime. Snapshot manifests record it, so a snapshot
// written before later updates is detectably stale (SnapshotUpdateGen).
func (s *Store) UpdateGeneration() uint64 { return s.updateGen.Load() }

// VersionsLive returns the number of document versions currently alive:
// the loaded documents plus superseded versions that pinned readers (or
// the garbage collector) still hold.
func (s *Store) VersionsLive() int64 {
	return int64(s.NumDocs()) + s.superseded.Load()
}

// InFlightWriters returns the number of mutations currently between
// BeginMutation and its release.
func (s *Store) InFlightWriters() int64 { return s.writers.Load() }

// BeginMutation registers an in-flight writer and returns the function
// that ends it (idempotent). LoadSnapshot refuses to run while any writer
// is registered, so a bulk mmap load can never interleave with a splice.
func (s *Store) BeginMutation() func() {
	s.writers.Add(1)
	var once sync.Once
	return func() { once.Do(func() { s.writers.Add(-1) }) }
}

// MappedBytes returns the total size of the snapshot file mappings
// currently backing the store (0 for stores built purely from XML).
func (s *Store) MappedBytes() int64 { return s.mappedBytes.Load() }

// Close releases the snapshot file mappings backing snapshot-opened
// documents. After Close, accessing such documents is undefined; Close is
// for shutdown paths, not for reconfiguration.
func (s *Store) Close() error {
	s.loadMu.Lock()
	maps := s.maps
	s.maps = nil
	s.loadMu.Unlock()
	var firstErr error
	for _, m := range maps {
		s.mappedBytes.Add(-int64(len(m.data)))
		if err := m.close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// ResetStats zeroes the access counters of every shard.
func (s *Store) ResetStats() {
	for _, sh := range s.shards {
		sh.stats.reset()
	}
}

// Snapshot returns a copy of the current access counters, summed across
// shards.
func (s *Store) Snapshot() Stats {
	var out Stats
	for _, sh := range s.shards {
		out.Add(sh.stats.snapshot())
	}
	return out
}

// ShardSnapshot returns a copy of shard i's access counters.
func (s *Store) ShardSnapshot(i int) Stats { return s.shards[i].stats.snapshot() }

// DisableStats turns off counter maintenance; used by throughput-focused
// benchmarks where even the counter writes are unwanted.
func (s *Store) DisableStats() { s.noStats = true }

// TagCount returns the number of nodes with the given tag — catalog
// metadata used by the plan optimizer for selectivity estimates. Catalog
// probes are free (no access counting): a real system keeps these counts
// in its catalog.
func (s *Store) TagCount(id DocID, tag string) int {
	return len(s.entry(id).tagRefsByName(tag))
}

// Tag returns the ordinals of all nodes with the given tag in document id,
// in document order. The returned slice is shared and must not be modified.
func (s *Store) Tag(id DocID, tag string) []int32 {
	d := s.entry(id)
	refs := d.tagRefsByName(tag)
	if !s.noStats {
		st := s.stats(d)
		st.tagLookups.Add(1)
		st.tagRefs.Add(int64(len(refs)))
	}
	return refs
}

// TagWithin returns the ordinals of nodes with the given tag that lie
// strictly inside the interval of the node at ancestor, using binary search
// over the tag index (node-ID property 2 makes this a range scan).
func (s *Store) TagWithin(id DocID, tag string, ancestor int32) []int32 {
	d := s.entry(id)
	refs := d.tagRefsByName(tag)
	start, end := d.c.start[ancestor], d.c.end[ancestor]
	lo := sort.Search(len(refs), func(i int) bool { return refs[i] > start })
	hi := sort.Search(len(refs), func(i int) bool { return refs[i] > end })
	if !s.noStats {
		st := s.stats(d)
		st.tagLookups.Add(1)
		st.tagRefs.Add(int64(hi - lo))
	}
	return refs[lo:hi]
}

// Value returns the ordinals of all nodes in document id whose content is
// exactly v, in document order.
func (s *Store) Value(id DocID, v string) []int32 {
	d := s.entry(id)
	refs := d.valueRefsByName(v)
	if !s.noStats {
		st := s.stats(d)
		st.valueLookups.Add(1)
		st.tagRefs.Add(int64(len(refs)))
	}
	return refs
}

// TagValue returns the ordinals of nodes with the given tag and exact
// content v, computed by merging the tag and value index postings. This is
// how equality content predicates are answered when a value index exists.
func (s *Store) TagValue(id DocID, tag, v string) []int32 {
	d := s.entry(id)
	tagRefs := d.tagRefsByName(tag)
	valRefs := d.valueRefsByName(v)
	st := s.stats(d)
	if !s.noStats {
		st.tagLookups.Add(1)
		st.valueLookups.Add(1)
	}
	var out []int32
	i, j := 0, 0
	for i < len(tagRefs) && j < len(valRefs) {
		switch {
		case tagRefs[i] < valRefs[j]:
			i++
		case tagRefs[i] > valRefs[j]:
			j++
		default:
			out = append(out, tagRefs[i])
			i++
			j++
		}
	}
	if !s.noStats {
		st.tagRefs.Add(int64(len(out)))
	}
	return out
}

// NodeData is one decoded node record: the fields the old arena node
// carried, materialized from the columns on demand.
type NodeData struct {
	ID         xmltree.NodeID
	Kind       xmltree.Kind
	Tag        string
	Value      string
	Parent     int32
	FirstChild int32
}

// Node fetches a node record, counting the access.
func (s *Store) Node(id DocID, ord int32) NodeData {
	d := s.entry(id)
	if !s.noStats {
		s.stats(d).nodesRead.Add(1)
	}
	return NodeData{
		ID:         d.ID(ord),
		Kind:       d.Kind(ord),
		Tag:        d.Tag(ord),
		Value:      d.Value(ord),
		Parent:     d.c.parent[ord],
		FirstChild: d.c.firstChild[ord],
	}
}

// Content returns the content value of a node (see Doc.Content), counting
// the access.
func (s *Store) Content(id DocID, ord int32) string {
	d := s.entry(id)
	if !s.noStats {
		s.stats(d).nodesRead.Add(1)
	}
	return d.Content(ord)
}

// Children returns the child ordinals of a node, counting one read per
// child returned. This is the primitive the navigational engine uses.
func (s *Store) Children(id DocID, ord int32) []int32 {
	d := s.entry(id)
	kids := d.Children(ord)
	if !s.noStats {
		s.stats(d).nodesRead.Add(int64(len(kids)) + 1)
	}
	return kids
}

// CountMaterialized records that n nodes were copied out of the store into
// an intermediate result. Attribution is to shard 0 when the caller has no
// document in hand; materialization sites that know their document should
// prefer CountMaterializedDoc.
func (s *Store) CountMaterialized(n int) {
	if !s.noStats {
		s.shards[0].stats.nodesMaterialized.Add(int64(n))
	}
}

// CountMaterializedDoc records that n nodes of document id were copied out
// of the store into an intermediate result, attributed to the owning shard.
func (s *Store) CountMaterializedDoc(id DocID, n int) {
	if !s.noStats {
		s.stats(s.entry(id)).nodesMaterialized.Add(int64(n))
	}
}
