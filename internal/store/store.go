// Package store implements the native XML store that all four evaluation
// engines (TLC, GTP, TAX, navigational) run against. It stands in for the
// disk-based TIMBER storage manager used in the paper: documents are kept
// as xmltree arenas, and the store maintains the two index structures the
// paper's experiments rely on — an element tag-name index (tag → node IDs
// in document order) and a value index (content → node IDs). Access
// counters make the relative cost of the competing plans observable.
//
// A Store is immutable after loading and safe for concurrent readers,
// including the statistics counters, which are maintained with sync/atomic
// so the parallel executor's worker goroutines can probe indexes and fetch
// nodes without coordination. Serial evaluation (parallelism 1) produces
// exactly the counter values the paper's single-query-at-a-time
// measurements would.
package store

import (
	"fmt"
	"io"
	"sort"
	"sync/atomic"

	"tlc/internal/faultinject"
	"tlc/internal/xmltree"
)

// DocID identifies a loaded document within a store.
type DocID int32

// Stats counts the store accesses performed during query evaluation. The
// benchmark harness resets it per query and reports it next to wall-clock
// time, making visible *why* one plan beats another (redundant index scans,
// early materialization, navigation steps).
type Stats struct {
	// TagLookups counts tag-index probes.
	TagLookups int64
	// TagRefs counts node references returned by tag-index probes.
	TagRefs int64
	// ValueLookups counts value-index probes.
	ValueLookups int64
	// NodesRead counts individual node records fetched (navigation and
	// content reads).
	NodesRead int64
	// NodesMaterialized counts nodes copied out of the store into
	// intermediate results (subtree materialization).
	NodesMaterialized int64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.TagLookups += other.TagLookups
	s.TagRefs += other.TagRefs
	s.ValueLookups += other.ValueLookups
	s.NodesRead += other.NodesRead
	s.NodesMaterialized += other.NodesMaterialized
}

// String renders the counters in a compact single-line form.
func (s Stats) String() string {
	return fmt.Sprintf("tagLookups=%d tagRefs=%d valueLookups=%d nodesRead=%d materialized=%d",
		s.TagLookups, s.TagRefs, s.ValueLookups, s.NodesRead, s.NodesMaterialized)
}

// counters is the mutable, atomically-maintained form of Stats. Keeping
// the exported Stats a plain value type preserves the snapshot/Add/String
// API while making the live counters safe for concurrent writers.
type counters struct {
	tagLookups        atomic.Int64
	tagRefs           atomic.Int64
	valueLookups      atomic.Int64
	nodesRead         atomic.Int64
	nodesMaterialized atomic.Int64
}

func (c *counters) snapshot() Stats {
	return Stats{
		TagLookups:        c.tagLookups.Load(),
		TagRefs:           c.tagRefs.Load(),
		ValueLookups:      c.valueLookups.Load(),
		NodesRead:         c.nodesRead.Load(),
		NodesMaterialized: c.nodesMaterialized.Load(),
	}
}

func (c *counters) reset() {
	c.tagLookups.Store(0)
	c.tagRefs.Store(0)
	c.valueLookups.Store(0)
	c.nodesRead.Store(0)
	c.nodesMaterialized.Store(0)
}

type docEntry struct {
	doc *xmltree.Document
	// tags maps a tag name (elements plain, attributes with "@", text as
	// "#text") to the ordinals of matching nodes in document order.
	tags map[string][]int32
	// values maps textual content to the ordinals of nodes (elements with
	// text content, attributes, text nodes) having exactly that content.
	values map[string][]int32
	// stats is the load-time statistics summary served through Catalog.
	stats *docStats
}

// Store is a collection of indexed XML documents.
type Store struct {
	docs    []docEntry
	byName  map[string]DocID
	stats   counters
	noStats bool
}

// New returns an empty store.
func New() *Store {
	return &Store{byName: make(map[string]DocID)}
}

// Load indexes doc and adds it to the store. Loading a document whose name
// is already present is an error.
func (s *Store) Load(doc *xmltree.Document) (DocID, error) {
	if err := faultinject.Hit(faultinject.PointStoreLoad); err != nil {
		return 0, err
	}
	if err := doc.Validate(); err != nil {
		return 0, fmt.Errorf("store: load: %w", err)
	}
	if _, dup := s.byName[doc.Name]; dup {
		return 0, fmt.Errorf("store: document %q already loaded", doc.Name)
	}
	e := docEntry{
		doc:    doc,
		tags:   make(map[string][]int32),
		values: make(map[string][]int32),
	}
	stats := newDocStatsBuilder(doc)
	for i := range doc.Nodes {
		n := &doc.Nodes[i]
		e.tags[n.Tag] = append(e.tags[n.Tag], int32(i))
		content, hasContent := "", false
		switch n.Kind {
		case xmltree.Attribute, xmltree.Text:
			content, hasContent = n.Value, true
			e.values[n.Value] = append(e.values[n.Value], int32(i))
		case xmltree.Element:
			if c := doc.Content(int32(i)); c != "" {
				content, hasContent = c, true
				e.values[c] = append(e.values[c], int32(i))
			}
		}
		stats.visit(int32(i), n, content, hasContent)
	}
	e.stats = stats.finish()
	id := DocID(len(s.docs))
	s.docs = append(s.docs, e)
	s.byName[doc.Name] = id
	return id, nil
}

// LoadXML parses XML from r and loads it under the given document name.
func (s *Store) LoadXML(name string, r io.Reader) (DocID, error) {
	doc, err := xmltree.Parse(name, r)
	if err != nil {
		return 0, err
	}
	return s.Load(doc)
}

// Lookup returns the DocID for a loaded document name.
func (s *Store) Lookup(name string) (DocID, bool) {
	id, ok := s.byName[name]
	return id, ok
}

// Names returns the names of the loaded documents in load order.
func (s *Store) Names() []string {
	names := make([]string, len(s.docs))
	for i := range s.docs {
		names[i] = s.docs[i].doc.Name
	}
	return names
}

// Doc returns the document with the given ID.
func (s *Store) Doc(id DocID) *xmltree.Document { return s.docs[id].doc }

// NumDocs returns the number of loaded documents.
func (s *Store) NumDocs() int { return len(s.docs) }

// ResetStats zeroes the access counters.
func (s *Store) ResetStats() { s.stats.reset() }

// Snapshot returns a copy of the current access counters.
func (s *Store) Snapshot() Stats { return s.stats.snapshot() }

// DisableStats turns off counter maintenance; used by throughput-focused
// benchmarks where even the counter writes are unwanted.
func (s *Store) DisableStats() { s.noStats = true }

// TagCount returns the number of nodes with the given tag — catalog
// metadata used by the plan optimizer for selectivity estimates. Catalog
// probes are free (no access counting): a real system keeps these counts
// in its catalog.
func (s *Store) TagCount(id DocID, tag string) int {
	return len(s.docs[id].tags[tag])
}

// Tag returns the ordinals of all nodes with the given tag in document id,
// in document order. The returned slice is shared and must not be modified.
func (s *Store) Tag(id DocID, tag string) []int32 {
	refs := s.docs[id].tags[tag]
	if !s.noStats {
		s.stats.tagLookups.Add(1)
		s.stats.tagRefs.Add(int64(len(refs)))
	}
	return refs
}

// TagWithin returns the ordinals of nodes with the given tag that lie
// strictly inside the interval of the node at ancestor, using binary search
// over the tag index (node-ID property 2 makes this a range scan).
func (s *Store) TagWithin(id DocID, tag string, ancestor int32) []int32 {
	refs := s.docs[id].tags[tag]
	anc := s.docs[id].doc.Nodes[ancestor].ID
	lo := sort.Search(len(refs), func(i int) bool { return refs[i] > anc.Start })
	hi := sort.Search(len(refs), func(i int) bool { return refs[i] > anc.End })
	if !s.noStats {
		s.stats.tagLookups.Add(1)
		s.stats.tagRefs.Add(int64(hi - lo))
	}
	return refs[lo:hi]
}

// Value returns the ordinals of all nodes in document id whose content is
// exactly v, in document order.
func (s *Store) Value(id DocID, v string) []int32 {
	refs := s.docs[id].values[v]
	if !s.noStats {
		s.stats.valueLookups.Add(1)
		s.stats.tagRefs.Add(int64(len(refs)))
	}
	return refs
}

// TagValue returns the ordinals of nodes with the given tag and exact
// content v, computed by merging the tag and value index postings. This is
// how equality content predicates are answered when a value index exists.
func (s *Store) TagValue(id DocID, tag, v string) []int32 {
	tagRefs := s.docs[id].tags[tag]
	valRefs := s.docs[id].values[v]
	if !s.noStats {
		s.stats.tagLookups.Add(1)
		s.stats.valueLookups.Add(1)
	}
	var out []int32
	i, j := 0, 0
	for i < len(tagRefs) && j < len(valRefs) {
		switch {
		case tagRefs[i] < valRefs[j]:
			i++
		case tagRefs[i] > valRefs[j]:
			j++
		default:
			out = append(out, tagRefs[i])
			i++
			j++
		}
	}
	if !s.noStats {
		s.stats.tagRefs.Add(int64(len(out)))
	}
	return out
}

// Node fetches a node record, counting the access.
func (s *Store) Node(id DocID, ord int32) *xmltree.Node {
	if !s.noStats {
		s.stats.nodesRead.Add(1)
	}
	return s.docs[id].doc.Node(ord)
}

// Content returns the content value of a node (see xmltree.Document.Content),
// counting the access.
func (s *Store) Content(id DocID, ord int32) string {
	if !s.noStats {
		s.stats.nodesRead.Add(1)
	}
	return s.docs[id].doc.Content(ord)
}

// Children returns the child ordinals of a node, counting one read per
// child returned. This is the primitive the navigational engine uses.
func (s *Store) Children(id DocID, ord int32) []int32 {
	kids := s.docs[id].doc.Children(ord)
	if !s.noStats {
		s.stats.nodesRead.Add(int64(len(kids)) + 1)
	}
	return kids
}

// CountMaterialized records that n nodes were copied out of the store into
// an intermediate result.
func (s *Store) CountMaterialized(n int) {
	if !s.noStats {
		s.stats.nodesMaterialized.Add(int64(n))
	}
}
