//go:build !unix

package store

import (
	"fmt"
	"os"
)

// mapping is a read-only view of a snapshot file. On platforms without
// mmap support the file is read into the heap once; the accessors are
// identical, only the backing memory differs.
type mapping struct {
	data   []byte
	mapped bool
}

func openMapping(path string) (*mapping, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) == 0 {
		return nil, fmt.Errorf("%w: %s is empty", ErrSnapshotCorrupt, path)
	}
	return &mapping{data: data}, nil
}

func (m *mapping) close() error {
	m.data = nil
	return nil
}
