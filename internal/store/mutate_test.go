package store

import (
	"errors"
	"strings"
	"testing"

	"tlc/internal/faultinject"
	"tlc/internal/xmltree"
)

// checkOracle verifies a spliced document against a rebuild from its own
// serialized XML: a fresh load must produce a semantically identical
// document — same tree, same tag/value indexes, same statistics catalog —
// which the canonical fingerprint captures. The structural self-check
// runs first so a broken column shows up as itself, not as a diff.
func checkOracle(t *testing.T, d *Doc) {
	t.Helper()
	if err := d.validateSplice(); err != nil {
		t.Fatalf("validateSplice: %v", err)
	}
	fresh := New()
	id, err := fresh.LoadXML(d.Name(), strings.NewReader(d.XML(0)))
	if err != nil {
		t.Fatalf("oracle reload: %v", err)
	}
	want := fresh.Doc(id).Fingerprint()
	if got := d.Fingerprint(); got != want {
		t.Fatalf("fingerprint diverges from rebuild-from-XML oracle:\n--- spliced ---\n%s\n--- fresh load ---\n%s", got, want)
	}
}

func ordOf(t *testing.T, s *Store, id DocID, tag string, k int) int32 {
	t.Helper()
	refs := s.Tag(id, tag)
	if k >= len(refs) {
		t.Fatalf("tag %q has %d refs, want index %d", tag, len(refs), k)
	}
	return refs[k]
}

func mustFrag(t *testing.T, xml string) *xmltree.Document {
	t.Helper()
	f, err := ParseFragment(xml)
	if err != nil {
		t.Fatalf("ParseFragment(%q): %v", xml, err)
	}
	return f
}

func TestSpliceInsertAppend(t *testing.T) {
	s, id := load(t)
	d := s.Doc(id)
	people := ordOf(t, s, id, "people", 0)
	frag := mustFrag(t, `<person id="p2"><name>Carol</name><age>41</age></person>`)

	at := d.End(people) + 1
	nd, res, err := s.BuildSplice(d, SpliceOp{Parent: people, At: at, DelEnd: at, Frag: frag})
	if err != nil {
		t.Fatalf("BuildSplice: %v", err)
	}
	// person, @id, name, #text, age, #text.
	if res.NodesAdded != 6 || res.NodesRemoved != 0 {
		t.Fatalf("res = %+v, want 6 added, 0 removed", res)
	}
	if res.StatsDeltas == 0 {
		t.Fatalf("no stats deltas recorded")
	}
	if err := s.Commit(d, nd); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if s.Doc(id) != nd {
		t.Fatalf("commit did not publish the new version")
	}
	if nd.Version() != 2 {
		t.Fatalf("version = %d, want 2", nd.Version())
	}
	checkOracle(t, nd)
	if refs := s.Tag(id, "person"); len(refs) != 3 {
		t.Fatalf("person count after insert = %d, want 3", len(refs))
	}
	if refs := s.Value(id, "Carol"); len(refs) != 2 {
		t.Fatalf("Value(Carol) = %d refs, want 2 (element + text)", len(refs))
	}
}

func TestSpliceInsertFirst(t *testing.T) {
	s, id := load(t)
	d := s.Doc(id)
	people := ordOf(t, s, id, "people", 0)
	frag := mustFrag(t, `<person id="px"><name>Zed</name></person>`)

	at := d.FirstChild(people)
	nd, _, err := s.BuildSplice(d, SpliceOp{Parent: people, At: at, DelEnd: at, Frag: frag})
	if err != nil {
		t.Fatalf("BuildSplice: %v", err)
	}
	if err := s.Commit(d, nd); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	checkOracle(t, nd)
	// The new person is the first child; Alice shifted but survives.
	if got := nd.Tag(nd.FirstChild(people)); got != "person" {
		t.Fatalf("first child tag = %q", got)
	}
	if refs := s.Value(id, "Alice"); len(refs) != 2 {
		t.Fatalf("Value(Alice) = %d refs after shift, want 2", len(refs))
	}
}

func TestSpliceDelete(t *testing.T) {
	s, id := load(t)
	d := s.Doc(id)
	bob := ordOf(t, s, id, "person", 1)
	people := d.Parent(bob)

	nd, res, err := s.BuildSplice(d, SpliceOp{Parent: people, At: bob, DelEnd: d.End(bob) + 1})
	if err != nil {
		t.Fatalf("BuildSplice: %v", err)
	}
	if res.NodesRemoved != int(d.End(bob)+1-bob) || res.NodesAdded != 0 {
		t.Fatalf("res = %+v", res)
	}
	if err := s.Commit(d, nd); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	checkOracle(t, nd)
	if refs := s.Tag(id, "person"); len(refs) != 1 {
		t.Fatalf("person count after delete = %d, want 1", len(refs))
	}
	if refs := s.Value(id, "Bob"); len(refs) != 0 {
		t.Fatalf("Value(Bob) = %d refs after delete, want 0", len(refs))
	}
}

func TestSpliceReplace(t *testing.T) {
	s, id := load(t)
	d := s.Doc(id)
	bidder := ordOf(t, s, id, "bidder", 0)
	auction := d.Parent(bidder)
	frag := mustFrag(t, `<bidder><personref person="p1"/><increase>9</increase></bidder>`)

	nd, _, err := s.BuildSplice(d, SpliceOp{Parent: auction, At: bidder, DelEnd: d.End(bidder) + 1, Frag: frag})
	if err != nil {
		t.Fatalf("BuildSplice: %v", err)
	}
	if err := s.Commit(d, nd); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	checkOracle(t, nd)
	if refs := s.Tag(id, "bidder"); len(refs) != 2 {
		t.Fatalf("bidder count after replace = %d, want 2", len(refs))
	}
	if refs := s.Value(id, "9"); len(refs) != 2 {
		t.Fatalf("Value(9) = %d refs, want 2", len(refs))
	}
	if refs := s.Value(id, "3"); len(refs) != 0 {
		t.Fatalf("Value(3) = %d refs after replace, want 0", len(refs))
	}
}

func TestSpliceDeleteAttribute(t *testing.T) {
	s, id := load(t)
	d := s.Doc(id)
	attr := ordOf(t, s, id, "@id", 0)
	person := d.Parent(attr)

	nd, _, err := s.BuildSplice(d, SpliceOp{Parent: person, At: attr, DelEnd: attr + 1})
	if err != nil {
		t.Fatalf("BuildSplice: %v", err)
	}
	if err := s.Commit(d, nd); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	checkOracle(t, nd)
	if refs := s.Tag(id, "@id"); len(refs) != 2 {
		t.Fatalf("@id count = %d, want 2", len(refs))
	}
	// The deleted attribute's value drops out; the personref attribute
	// sharing the string survives.
	if refs := s.Value(id, "p0"); len(refs) != 1 {
		t.Fatalf("Value(p0) = %d refs after attribute delete, want 1", len(refs))
	}
}

func TestSpliceContentInvariant(t *testing.T) {
	s, id := load(t)
	d := s.Doc(id)
	name := ordOf(t, s, id, "name", 0)
	text := d.FirstChild(name)
	if d.Kind(text) != xmltree.Text {
		t.Fatalf("expected text child under name")
	}
	// Deleting the text child would change the parent's concatenated
	// content — the splice layer must refuse.
	_, _, err := s.BuildSplice(d, SpliceOp{Parent: name, At: text, DelEnd: text + 1})
	if !errors.Is(err, ErrSpliceContent) {
		t.Fatalf("err = %v, want ErrSpliceContent", err)
	}
}

func TestSpliceBadOps(t *testing.T) {
	s, id := load(t)
	d := s.Doc(id)
	people := ordOf(t, s, id, "people", 0)
	name := ordOf(t, s, id, "name", 0)
	text := d.FirstChild(name)
	person := ordOf(t, s, id, "person", 0)

	cases := []struct {
		what string
		op   SpliceOp
	}{
		{"text parent", SpliceOp{Parent: text, At: text + 1, DelEnd: text + 1, Frag: mustFrag(t, `<x/>`)}},
		{"not a child boundary", SpliceOp{Parent: people, At: name, DelEnd: name, Frag: mustFrag(t, `<x/>`)}},
		{"splits a subtree", SpliceOp{Parent: people, At: person, DelEnd: person + 2}},
		{"empty splice", SpliceOp{Parent: people, At: person, DelEnd: person}},
		{"range outside parent", SpliceOp{Parent: name, At: d.End(people) + 1, DelEnd: d.End(people) + 1, Frag: mustFrag(t, `<x/>`)}},
	}
	for _, c := range cases {
		if _, _, err := s.BuildSplice(d, c.op); !errors.Is(err, ErrBadSplice) {
			t.Errorf("%s: err = %v, want ErrBadSplice", c.what, err)
		}
	}
}

func TestCommitConflict(t *testing.T) {
	s, id := load(t)
	d := s.Doc(id)
	people := ordOf(t, s, id, "people", 0)
	at := d.End(people) + 1

	a, _, err := s.BuildSplice(d, SpliceOp{Parent: people, At: at, DelEnd: at, Frag: mustFrag(t, `<person id="a"><name>A</name></person>`)})
	if err != nil {
		t.Fatalf("BuildSplice a: %v", err)
	}
	b, _, err := s.BuildSplice(d, SpliceOp{Parent: people, At: at, DelEnd: at, Frag: mustFrag(t, `<person id="b"><name>B</name></person>`)})
	if err != nil {
		t.Fatalf("BuildSplice b: %v", err)
	}
	if err := s.Commit(d, a); err != nil {
		t.Fatalf("Commit a: %v", err)
	}
	if err := s.Commit(d, b); !errors.Is(err, ErrVersionConflict) {
		t.Fatalf("second commit from the same base: err = %v, want ErrVersionConflict", err)
	}
	// The losing commit left the winner in place.
	if s.Doc(id) != a {
		t.Fatalf("conflicting commit disturbed the published version")
	}
	checkOracle(t, s.Doc(id))
}

func TestPinSnapshotIsolation(t *testing.T) {
	s, id := load(t)
	d := s.Doc(id)
	pinned := s.Pin()

	people := ordOf(t, s, id, "people", 0)
	at := d.End(people) + 1
	nd, _, err := s.BuildSplice(d, SpliceOp{Parent: people, At: at, DelEnd: at, Frag: mustFrag(t, `<person id="p9"><name>New</name></person>`)})
	if err != nil {
		t.Fatalf("BuildSplice: %v", err)
	}
	if err := s.Commit(d, nd); err != nil {
		t.Fatalf("Commit: %v", err)
	}

	// The pinned view still resolves the pre-commit version.
	if got := pinned.Doc(id); got != d || got.Version() != 1 {
		t.Fatalf("pinned view sees version %d, want the pinned version 1", got.Version())
	}
	if refs := pinned.Tag(id, "person"); len(refs) != 2 {
		t.Fatalf("pinned view person count = %d, want pre-commit 2", len(refs))
	}
	if refs := s.Tag(id, "person"); len(refs) != 3 {
		t.Fatalf("live store person count = %d, want 3", len(refs))
	}

	// A pinned view is read-only.
	if _, err := pinned.LoadXML("other.xml", strings.NewReader(`<a/>`)); err == nil {
		t.Fatalf("LoadXML into pinned view succeeded")
	}
	if err := pinned.Commit(d, nd); err == nil {
		t.Fatalf("Commit into pinned view succeeded")
	}
	if err := pinned.LoadSnapshot(t.TempDir()); err == nil {
		t.Fatalf("LoadSnapshot into pinned view succeeded")
	}
}

func TestVersionCounters(t *testing.T) {
	s, id := load(t)
	d := s.Doc(id)
	if v, ok := s.DocVersion("auction.xml"); !ok || v != 1 {
		t.Fatalf("DocVersion = %d, %v; want 1, true", v, ok)
	}
	if g := s.UpdateGeneration(); g != 0 {
		t.Fatalf("UpdateGeneration = %d before any commit", g)
	}

	release := s.BeginMutation()
	if got := s.InFlightWriters(); got != 1 {
		t.Fatalf("InFlightWriters = %d, want 1", got)
	}
	release()
	release() // idempotent
	if got := s.InFlightWriters(); got != 0 {
		t.Fatalf("InFlightWriters = %d after release, want 0", got)
	}

	people := ordOf(t, s, id, "people", 0)
	at := d.End(people) + 1
	nd, _, err := s.BuildSplice(d, SpliceOp{Parent: people, At: at, DelEnd: at, Frag: mustFrag(t, `<extra/>`)})
	if err != nil {
		t.Fatalf("BuildSplice: %v", err)
	}
	if err := s.Commit(d, nd); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if g := s.UpdateGeneration(); g != 1 {
		t.Fatalf("UpdateGeneration = %d, want 1", g)
	}
	if v, ok := s.DocVersion("auction.xml"); !ok || v != 2 {
		t.Fatalf("DocVersion = %d, %v; want 2, true", v, ok)
	}
	vers := s.DocVersions()
	if len(vers) != 1 || vers["auction.xml"] != 2 {
		t.Fatalf("DocVersions = %v", vers)
	}
	// The superseded version is still reachable through d, so it counts as
	// live alongside the current one.
	if got := s.VersionsLive(); got != 2 {
		t.Fatalf("VersionsLive = %d, want 2", got)
	}
	_ = d.Len() // keep the old version reachable until the check above ran
}

func TestLoadSnapshotRejectsInFlightWriters(t *testing.T) {
	s, _ := load(t)
	dir := t.TempDir()
	if _, err := s.WriteSnapshot(dir); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}

	s2 := New()
	release := s2.BeginMutation()
	if err := s2.LoadSnapshot(dir); !errors.Is(err, ErrConcurrentMutation) {
		t.Fatalf("LoadSnapshot with writer in flight: err = %v, want ErrConcurrentMutation", err)
	}
	release()
	if err := s2.LoadSnapshot(dir); err != nil {
		t.Fatalf("LoadSnapshot after release: %v", err)
	}
	defer s2.Close()
}

func TestSnapshotVersionRoundTrip(t *testing.T) {
	s, id := load(t)
	d := s.Doc(id)
	people := ordOf(t, s, id, "people", 0)
	at := d.End(people) + 1
	nd, _, err := s.BuildSplice(d, SpliceOp{Parent: people, At: at, DelEnd: at, Frag: mustFrag(t, `<person id="s"><name>Snap</name></person>`)})
	if err != nil {
		t.Fatalf("BuildSplice: %v", err)
	}
	if err := s.Commit(d, nd); err != nil {
		t.Fatalf("Commit: %v", err)
	}

	dir := t.TempDir()
	if _, err := s.WriteSnapshot(dir); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	if g, err := SnapshotUpdateGen(dir); err != nil || g != 1 {
		t.Fatalf("SnapshotUpdateGen = %d, %v; want 1", g, err)
	}

	s2, err := OpenSnapshot(dir)
	if err != nil {
		t.Fatalf("OpenSnapshot: %v", err)
	}
	defer s2.Close()
	if v, ok := s2.DocVersion("auction.xml"); !ok || v != 2 {
		t.Fatalf("reopened DocVersion = %d, %v; want 2", v, ok)
	}
	if g := s2.UpdateGeneration(); g != 1 {
		t.Fatalf("reopened UpdateGeneration = %d, want 1", g)
	}
	id2, ok := s2.Lookup("auction.xml")
	if !ok {
		t.Fatalf("reopened snapshot lost the document")
	}
	if got, want := s2.Doc(id2).Fingerprint(), s.Doc(id).Fingerprint(); got != want {
		t.Fatalf("snapshot-after-update does not round-trip:\n--- reopened ---\n%s\n--- live ---\n%s", got, want)
	}
}

func TestMutateFaultInjection(t *testing.T) {
	s, id := load(t)
	d := s.Doc(id)
	people := ordOf(t, s, id, "people", 0)
	at := d.End(people) + 1
	op := SpliceOp{Parent: people, At: at, DelEnd: at, Frag: mustFrag(t, `<person id="f"><name>F</name></person>`)}

	if err := faultinject.Enable(faultinject.PointMutateStatsDelta + "=error"); err != nil {
		t.Fatalf("Enable: %v", err)
	}
	_, _, err := s.BuildSplice(d, op)
	faultinject.Disable()
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("stats-delta fault: err = %v, want ErrInjected", err)
	}
	if s.Doc(id) != d || s.UpdateGeneration() != 0 {
		t.Fatalf("failed splice left partial state behind")
	}

	nd, _, err := s.BuildSplice(d, op)
	if err != nil {
		t.Fatalf("BuildSplice: %v", err)
	}
	if err := faultinject.Enable(faultinject.PointMutateCommit + "=error"); err != nil {
		t.Fatalf("Enable: %v", err)
	}
	err = s.Commit(d, nd)
	faultinject.Disable()
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("commit fault: err = %v, want ErrInjected", err)
	}
	if s.Doc(id) != d || s.UpdateGeneration() != 0 {
		t.Fatalf("failed commit left the store on a new version")
	}

	// The same prepared version commits cleanly once the fault clears.
	if err := s.Commit(d, nd); err != nil {
		t.Fatalf("Commit after fault cleared: %v", err)
	}
	checkOracle(t, s.Doc(id))
}

// FuzzMutate drives random valid insert/delete/replace sequences against
// the store and checks after every commit that the spliced document is
// byte-for-byte semantically identical (columns, indexes, statistics) to
// a fresh load of its own serialization — the rebuild-from-XML oracle.
func FuzzMutate(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5})
	f.Add([]byte{9, 8, 7, 6, 5, 4, 3, 2, 1, 0, 11, 23})
	f.Add([]byte{200, 3, 17, 42, 250, 1, 7, 99, 128, 64, 32, 16, 8, 4, 2, 1})
	fragments := []string{
		`<person id="f0"><name>Fuzz</name></person>`,
		`<extra/>`,
		`<bidder><personref person="p9"/><increase>1</increase></bidder>`,
		`<note lang="en">hi</note>`,
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s := New()
		id, err := s.LoadXML("auction.xml", strings.NewReader(sampleXML))
		if err != nil {
			t.Fatalf("LoadXML: %v", err)
		}
		ops := 0
		for i := 0; i+3 < len(data) && ops < 6; i += 4 {
			d := s.Doc(id)
			n := int32(d.Len())
			p := int32(data[i]) % n
			for d.Kind(p) != xmltree.Element {
				p = (p + 1) % n
			}
			// Child boundaries past the attribute run (insert positions) and
			// deletable children (attributes and elements; deleting a text
			// child would change the parent's content).
			var bounds, dels []int32
			for c := d.FirstChild(p); c >= 0 && c <= d.End(p); c = d.End(c) + 1 {
				if d.Kind(c) != xmltree.Attribute {
					bounds = append(bounds, c)
				}
				if d.Kind(c) != xmltree.Text {
					dels = append(dels, c)
				}
			}
			bounds = append(bounds, d.End(p)+1)

			var op SpliceOp
			switch action := data[i+1] % 3; {
			case action == 0: // insert
				at := bounds[int(data[i+2])%len(bounds)]
				op = SpliceOp{Parent: p, At: at, DelEnd: at,
					Frag: mustFrag(t, fragments[int(data[i+3])%len(fragments)])}
			case action == 1 && len(dels) > 0: // delete
				c := dels[int(data[i+2])%len(dels)]
				op = SpliceOp{Parent: p, At: c, DelEnd: d.End(c) + 1}
			case action == 2 && len(dels) > 0: // replace
				c := dels[int(data[i+2])%len(dels)]
				op = SpliceOp{Parent: p, At: c, DelEnd: d.End(c) + 1,
					Frag: mustFrag(t, fragments[int(data[i+3])%len(fragments)])}
			default:
				continue
			}
			nd, _, err := s.BuildSplice(d, op)
			if err != nil {
				t.Fatalf("op %d: BuildSplice(%+v): %v", ops, op, err)
			}
			if err := s.Commit(d, nd); err != nil {
				t.Fatalf("op %d: Commit: %v", ops, err)
			}
			checkOracle(t, nd)
			ops++
		}
	})
}
