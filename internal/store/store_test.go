package store

import (
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

const sampleXML = `<site>
  <people>
    <person id="p0"><name>Alice</name><age>30</age></person>
    <person id="p1"><name>Bob</name><age>30</age></person>
  </people>
  <open_auctions>
    <open_auction id="a0">
      <bidder><personref person="p0"/><increase>3</increase></bidder>
      <bidder><personref person="p1"/><increase>5</increase></bidder>
    </open_auction>
  </open_auctions>
</site>`

func load(t *testing.T) (*Store, DocID) {
	t.Helper()
	s := New()
	id, err := s.LoadXML("auction.xml", strings.NewReader(sampleXML))
	if err != nil {
		t.Fatalf("LoadXML: %v", err)
	}
	return s, id
}

func TestTagIndex(t *testing.T) {
	s, id := load(t)
	for tag, want := range map[string]int{
		"person": 2, "bidder": 2, "@person": 2, "age": 2, "missing": 0,
	} {
		refs := s.Tag(id, tag)
		if len(refs) != want {
			t.Errorf("Tag(%s) = %d refs, want %d", tag, len(refs), want)
		}
		if !sort.SliceIsSorted(refs, func(i, j int) bool { return refs[i] < refs[j] }) {
			t.Errorf("Tag(%s) refs not sorted", tag)
		}
	}
}

func TestValueIndex(t *testing.T) {
	s, id := load(t)
	refs := s.Value(id, "30")
	// Two <age>30</age> elements and their two text children.
	if len(refs) != 4 {
		t.Errorf("Value(30) = %d refs, want 4", len(refs))
	}
	for _, r := range refs {
		if got := s.Doc(id).Content(r); got != "30" {
			t.Errorf("Value(30) returned node with content %q", got)
		}
	}
}

func TestTagValue(t *testing.T) {
	s, id := load(t)
	refs := s.TagValue(id, "age", "30")
	if len(refs) != 2 {
		t.Fatalf("TagValue(age,30) = %d refs, want 2", len(refs))
	}
	for _, r := range refs {
		if s.Doc(id).Tag(r) != "age" {
			t.Errorf("TagValue returned tag %q", s.Doc(id).Tag(r))
		}
	}
	if got := s.TagValue(id, "age", "31"); len(got) != 0 {
		t.Errorf("TagValue(age,31) = %d refs, want 0", len(got))
	}
}

func TestTagWithin(t *testing.T) {
	s, id := load(t)
	auctions := s.Tag(id, "open_auction")
	if len(auctions) != 1 {
		t.Fatalf("open_auction count %d", len(auctions))
	}
	within := s.TagWithin(id, "@person", auctions[0])
	if len(within) != 2 {
		t.Errorf("TagWithin(@person, open_auction) = %d, want 2", len(within))
	}
	if got := s.TagWithin(id, "person", auctions[0]); len(got) != 0 {
		t.Errorf("TagWithin(person, open_auction) = %d, want 0", len(got))
	}
}

func TestStatsCounting(t *testing.T) {
	s, id := load(t)
	s.ResetStats()
	s.Tag(id, "person")
	s.Value(id, "30")
	s.Node(id, 0)
	s.Children(id, 0)
	s.CountMaterialized(7)
	st := s.Snapshot()
	if st.TagLookups != 1 || st.ValueLookups != 1 {
		t.Errorf("lookups = %+v", st)
	}
	if st.NodesRead == 0 || st.NodesMaterialized != 7 {
		t.Errorf("reads = %+v", st)
	}
	s.ResetStats()
	if s.Snapshot() != (Stats{}) {
		t.Error("ResetStats did not zero counters")
	}
}

func TestDisableStats(t *testing.T) {
	s, id := load(t)
	s.DisableStats()
	s.ResetStats()
	s.Tag(id, "person")
	if s.Snapshot() != (Stats{}) {
		t.Error("stats counted while disabled")
	}
}

func TestDuplicateLoad(t *testing.T) {
	s, _ := load(t)
	if _, err := s.LoadXML("auction.xml", strings.NewReader("<a/>")); err == nil {
		t.Error("duplicate load succeeded, want error")
	}
}

func TestLookup(t *testing.T) {
	s, id := load(t)
	got, ok := s.Lookup("auction.xml")
	if !ok || got != id {
		t.Errorf("Lookup = %v, %v", got, ok)
	}
	if _, ok := s.Lookup("other.xml"); ok {
		t.Error("Lookup(other.xml) found something")
	}
	if names := s.Names(); len(names) != 1 || names[0] != "auction.xml" {
		t.Errorf("Names = %v", names)
	}
}

func TestStatsAddString(t *testing.T) {
	a := Stats{TagLookups: 1, NodesRead: 2}
	a.Add(Stats{TagLookups: 3, NodesMaterialized: 4})
	if a.TagLookups != 4 || a.NodesRead != 2 || a.NodesMaterialized != 4 {
		t.Errorf("Add = %+v", a)
	}
	if !strings.Contains(a.String(), "tagLookups=4") {
		t.Errorf("String = %q", a.String())
	}
}

// TestQuickTagWithinMatchesScan cross-checks the binary-search range scan
// against a brute-force containment scan on the sample document.
func TestQuickTagWithinMatchesScan(t *testing.T) {
	s, id := load(t)
	doc := s.Doc(id)
	tags := []string{"person", "bidder", "@person", "name", "#text"}
	f := func(tagIdx, ancIdx uint8) bool {
		tag := tags[int(tagIdx)%len(tags)]
		anc := int32(int(ancIdx) % doc.Len())
		got := s.TagWithin(id, tag, anc)
		var want []int32
		for _, r := range s.Tag(id, tag) {
			if doc.ID(anc).Contains(doc.ID(r)) {
				want = append(want, r)
			}
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
