//go:build unix

package store

import (
	"fmt"
	"os"
	"syscall"
)

// mapping is a read-only view of a snapshot file. On unix platforms it is
// an mmap'd region: opening a snapshot maps the file and lets the OS page
// cache hold cold documents, so startup cost is validation, not copying.
// The region stays mapped until Store.Close — column slices, dictionary
// strings and document names alias it directly.
type mapping struct {
	data   []byte
	mapped bool
}

func openMapping(path string) (*mapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size == 0 {
		return nil, fmt.Errorf("%w: %s is empty", ErrSnapshotCorrupt, path)
	}
	if size != int64(int(size)) {
		return nil, fmt.Errorf("%w: %s too large to map", ErrSnapshotCorrupt, path)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("store: mmap %s: %w", path, err)
	}
	return &mapping{data: data, mapped: true}, nil
}

func (m *mapping) close() error {
	if !m.mapped {
		return nil
	}
	m.mapped = false
	return syscall.Munmap(m.data)
}
