package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"os"
	"path/filepath"
	"sort"
	"unsafe"
)

// This file implements the persistent snapshot format of the columnar
// store. A snapshot is a directory of per-shard files plus a manifest:
//
//	snapdir/
//	  manifest.tlcm     document list in global DocID order, shard map
//	  shard-0000.tlcs   shard 0: columns, indexes, dictionaries, stats
//	  shard-0003.tlcs   (shards without documents write no file)
//
// Every file is a 48-byte header followed by a checksummed payload:
//
//	[0:8)   magic ("TLCSNAP1" / "TLCMANI1")
//	[8:12)  format version (1)
//	[12:16) byte-order marker 0x01020304, written in native order
//	[16:20) shard index (0xFFFFFFFF in the manifest)
//	[20:24) shard count
//	[24:28) document count
//	[28:32) update generation (manifest; reserved 0 in shard files)
//	[32:40) payload length
//	[40:48) CRC-64/ECMA of the payload
//
// The update generation records how many mutations had been committed
// into the store when the snapshot was written (word [28:32) was reserved
// as zero before MVCC updates existed, so the format version is
// unchanged). SnapshotUpdateGen reads it back without decoding the
// payload; comparing it against Store.UpdateGeneration detects a snapshot
// that has gone stale relative to a store that kept taking writes. Each
// document record likewise carries its MVCC version in the previously
// reserved Res0 word (0 in old snapshots, read back as version 1), so a
// snapshot written after updates round-trips the version chain.
//
// The shard payload opens with a fixed section table (21 entries of
// {offset, length}, offsets 8-byte aligned) locating the columns, the
// index directories and postings, the dictionary string blobs, and the
// flattened statistics records; the document records tie per-document
// spans into those shard-wide arrays. Because the in-memory layout is
// already flat integer columns plus string dictionaries, opening a
// snapshot is a validation pass plus pointer casts into the mapped file —
// no per-node decoding. Integer sections are written in native byte
// order; the order marker rejects a snapshot from a platform with the
// opposite endianness instead of misreading it.
//
// Writes are atomic: each file is assembled in memory, written to a .tmp
// name and renamed into place; the manifest is written last, so a crash
// mid-snapshot leaves no manifest and the snapshot is simply absent.
//
// Opened snapshots are backed by mmap where available (mmap_unix.go) with
// a plain read-into-memory fallback elsewhere (mmap_other.go). Column
// slices, dictionary strings and document names are zero-copy views into
// the mapping; they remain valid until Store.Close, which is the only
// point the mapping is unmapped.

// Typed snapshot errors. Every failure mode of open/load wraps one of
// these (use errors.Is); corrupted input must never panic.
var (
	// ErrSnapshotVersion reports a snapshot written by an incompatible
	// format version or byte order.
	ErrSnapshotVersion = errors.New("store: incompatible snapshot version")
	// ErrSnapshotChecksum reports payload corruption detected by CRC.
	ErrSnapshotChecksum = errors.New("store: snapshot checksum mismatch")
	// ErrSnapshotCorrupt reports structural corruption: truncation, bad
	// magic, out-of-bounds sections or records.
	ErrSnapshotCorrupt = errors.New("store: snapshot corrupt")
	// ErrSnapshotMismatch reports a snapshot that is internally valid but
	// incompatible with the target store (shard count, duplicate names).
	ErrSnapshotMismatch = errors.New("store: snapshot mismatch")
)

const (
	snapMagic   = "TLCSNAP1"
	maniMagic   = "TLCMANI1"
	snapVersion = 1
	orderMarker = 0x01020304

	headerSize  = 48
	numSections = 21

	manifestName = "manifest.tlcm"
)

// Section indexes of the shard payload.
const (
	secDocs = iota
	secNames
	secStart
	secEnd
	secLevel
	secParent
	secFirstChild
	secKind
	secTag
	secVal
	secTagDir
	secValDir
	secTagPost
	secValPost
	secTagDictOffs
	secTagDictBytes
	secValDictOffs
	secValDictBytes
	secTagStats
	secChildPairs
	secDescPairs
)

// docRec is the fixed-size per-document record of a shard file (18
// uint32 words). Spans index the shard-wide section arrays.
type docRec struct {
	NameOff, NameLen   uint32
	Base, Nodes        uint32
	TagDirOff, TagDirN uint32
	ValDirOff, ValDirN uint32
	RootTag            uint32
	Depth              int32
	TSOff, TSN         uint32
	CPOff, CPN         uint32
	DPOff, DPN         uint32
	Res0, Res1         uint32
}

// tagStatRec is the flattened form of one TagStats entry.
type tagStatRec struct {
	Tag, Count, Distinct, Children uint32
	MinLevel, MaxLevel             int32
}

// pairRec is one child- or descendant-pair count.
type pairRec struct{ Up, Down, Count uint32 }

var crcTable = crc64.MakeTable(crc64.ECMA)

func shardFileName(i int) string { return fmt.Sprintf("shard-%04d.tlcs", i) }

// rawBytes reinterprets a typed slice as its backing bytes (native byte
// order). The result aliases v.
func rawBytes[T any](v []T) []byte {
	if len(v) == 0 {
		return nil
	}
	size := int(unsafe.Sizeof(v[0]))
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*size)
}

// rawView reinterprets a byte section as a typed slice without copying
// when the data is aligned, falling back to a copy when it is not (the
// writer always aligns, but a hand-crafted file must not panic).
func rawView[T any](b []byte) ([]T, error) {
	var zero T
	size := int(unsafe.Sizeof(zero))
	if len(b)%size != 0 {
		return nil, fmt.Errorf("%w: section length %d not a multiple of %d", ErrSnapshotCorrupt, len(b), size)
	}
	n := len(b) / size
	if n == 0 {
		return nil, nil
	}
	if uintptr(unsafe.Pointer(&b[0]))%uintptr(unsafe.Alignof(zero)) == 0 {
		return unsafe.Slice((*T)(unsafe.Pointer(&b[0])), n), nil
	}
	out := make([]T, n)
	copy(rawBytes(out), b)
	return out, nil
}

// section is one entry of the payload section table.
type section struct{ off, n uint64 }

// assembler builds a payload: a section table followed by 8-aligned
// sections.
type assembler struct {
	buf  []byte
	secs []section
}

func newAssembler() *assembler {
	return &assembler{buf: make([]byte, numSections*16)}
}

func (a *assembler) add(b []byte) {
	for len(a.buf)%8 != 0 {
		a.buf = append(a.buf, 0)
	}
	a.secs = append(a.secs, section{off: uint64(len(a.buf)), n: uint64(len(b))})
	a.buf = append(a.buf, b...)
}

func (a *assembler) finish() []byte {
	if len(a.secs) != numSections {
		panic("store: snapshot assembler section count")
	}
	for i, s := range a.secs {
		binary.NativeEndian.PutUint64(a.buf[i*16:], s.off)
		binary.NativeEndian.PutUint64(a.buf[i*16+8:], s.n)
	}
	return a.buf
}

// putHeader prepends the 48-byte header for a payload. extra fills the
// word at [28:32): the update generation in the manifest, 0 elsewhere.
func putHeader(magic string, shardIdx, shardCount, docCount, extra uint32, payload []byte) []byte {
	out := make([]byte, headerSize, headerSize+len(payload))
	copy(out[0:8], magic)
	binary.NativeEndian.PutUint32(out[8:], snapVersion)
	binary.NativeEndian.PutUint32(out[12:], orderMarker)
	binary.NativeEndian.PutUint32(out[16:], shardIdx)
	binary.NativeEndian.PutUint32(out[20:], shardCount)
	binary.NativeEndian.PutUint32(out[24:], docCount)
	binary.NativeEndian.PutUint32(out[28:], extra)
	binary.NativeEndian.PutUint64(out[32:], uint64(len(payload)))
	binary.NativeEndian.PutUint64(out[40:], crc64.Checksum(payload, crcTable))
	return append(out, payload...)
}

// header is the decoded common file header.
type header struct {
	shardIdx, shardCount, docCount uint32
	extra                          uint32
	payload                        []byte
}

// parseHeader validates a file's header and checksum and returns the
// payload view.
func parseHeader(data []byte, magic, what string) (header, error) {
	var h header
	if len(data) < headerSize {
		return h, fmt.Errorf("%w: %s truncated (%d bytes)", ErrSnapshotCorrupt, what, len(data))
	}
	if string(data[0:8]) != magic {
		return h, fmt.Errorf("%w: %s has bad magic %q", ErrSnapshotCorrupt, what, string(data[0:8]))
	}
	if v := binary.NativeEndian.Uint32(data[8:]); v != snapVersion {
		return h, fmt.Errorf("%w: %s has version %d, this build reads %d", ErrSnapshotVersion, what, v, snapVersion)
	}
	if m := binary.NativeEndian.Uint32(data[12:]); m != orderMarker {
		return h, fmt.Errorf("%w: %s was written with a different byte order", ErrSnapshotVersion, what)
	}
	h.shardIdx = binary.NativeEndian.Uint32(data[16:])
	h.shardCount = binary.NativeEndian.Uint32(data[20:])
	h.docCount = binary.NativeEndian.Uint32(data[24:])
	h.extra = binary.NativeEndian.Uint32(data[28:])
	plen := binary.NativeEndian.Uint64(data[32:])
	if plen != uint64(len(data)-headerSize) {
		return h, fmt.Errorf("%w: %s payload length %d, file has %d", ErrSnapshotCorrupt, what, plen, len(data)-headerSize)
	}
	h.payload = data[headerSize:]
	if sum := crc64.Checksum(h.payload, crcTable); sum != binary.NativeEndian.Uint64(data[40:]) {
		return h, fmt.Errorf("%w: %s", ErrSnapshotChecksum, what)
	}
	return h, nil
}

// writeAtomic writes data to path via a temp file and rename.
func writeAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// SnapshotInfo summarizes a written snapshot.
type SnapshotInfo struct {
	// Dir is the snapshot directory.
	Dir string
	// Bytes is the total size of the written files.
	Bytes int64
	// Docs is the number of documents captured.
	Docs int
	// ShardFiles is the number of shard files written (shards that held
	// at least one document).
	ShardFiles int
	// UpdateGen is the update generation captured in the manifest — the
	// watermark below which WAL records are covered by this snapshot.
	UpdateGen uint64
}

// WriteSnapshot captures the current contents of the store into dir (one
// file per non-empty shard plus a manifest, each written atomically; the
// manifest last, so an interrupted snapshot is absent rather than
// partial). It may run concurrently with queries and loads: it writes the
// directory state current when it starts.
func (s *Store) WriteSnapshot(dir string) (SnapshotInfo, error) {
	info := SnapshotInfo{Dir: dir}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return info, fmt.Errorf("store: snapshot: %w", err)
	}
	// Capture a consistent (directory, shard membership, update
	// generation) triple.
	s.loadMu.Lock()
	d := s.dir.Load()
	updateGen := s.updateGen.Load()
	info.UpdateGen = updateGen
	shardDocs := make([][]DocID, len(s.shards))
	for i, sh := range s.shards {
		shardDocs[i] = append([]DocID(nil), sh.docs...)
	}
	s.loadMu.Unlock()

	for i, ids := range shardDocs {
		if len(ids) == 0 {
			continue
		}
		docs := make([]*Doc, len(ids))
		for j, id := range ids {
			docs[j] = d.docs[id]
		}
		payload := encodeShard(docs)
		file := putHeader(snapMagic, uint32(i), uint32(len(s.shards)), uint32(len(docs)), 0, payload)
		if err := writeAtomic(filepath.Join(dir, shardFileName(i)), file); err != nil {
			return info, fmt.Errorf("store: snapshot shard %d: %w", i, err)
		}
		info.Bytes += int64(len(file))
		info.ShardFiles++
	}

	mani := encodeManifest(d)
	file := putHeader(maniMagic, ^uint32(0), uint32(len(s.shards)), uint32(len(d.docs)), uint32(updateGen), mani)
	if err := writeAtomic(filepath.Join(dir, manifestName), file); err != nil {
		return info, fmt.Errorf("store: snapshot manifest: %w", err)
	}
	info.Bytes += int64(len(file))
	info.Docs = len(d.docs)
	return info, nil
}

// dictWriter interns strings into the per-file dictionary being written.
type dictWriter struct {
	strs []string
	idx  map[string]uint32
}

func newDictWriter() *dictWriter {
	return &dictWriter{idx: make(map[string]uint32)}
}

func (w *dictWriter) intern(s string) uint32 {
	if id, ok := w.idx[s]; ok {
		return id
	}
	id := uint32(len(w.strs))
	w.strs = append(w.strs, s)
	w.idx[s] = id
	return id
}

// remap builds (and caches) the translation from a live dictionary's IDs
// to the file dictionary's IDs.
func (w *dictWriter) remap(cache map[*dict][]uint32, d *dict) []uint32 {
	if r, ok := cache[d]; ok {
		return r
	}
	dv := d.v.Load()
	r := make([]uint32, len(dv.strs))
	for i, s := range dv.strs {
		r[i] = w.intern(s)
	}
	cache[d] = r
	return r
}

// encode appends the dictionary as an offsets array (len+1 entries) and a
// concatenated byte blob.
func (w *dictWriter) encode() ([]uint32, []byte) {
	offs := make([]uint32, len(w.strs)+1)
	total := 0
	for i, s := range w.strs {
		offs[i] = uint32(total)
		total += len(s)
	}
	offs[len(w.strs)] = uint32(total)
	blob := make([]byte, 0, total)
	for _, s := range w.strs {
		blob = append(blob, s...)
	}
	return offs, blob
}

// encodeShard flattens a shard's documents into one payload.
func encodeShard(docs []*Doc) []byte {
	var (
		recs                             []docRec
		names                            []byte
		start, end, level, parent, first []int32
		kind                             []uint8
		tagCol, valCol                   []uint32
		tagDir, valDir                   []dirEntry
		tagPost, valPost                 []int32
		statRecs                         []tagStatRec
		childPairs, descPairs            []pairRec
	)
	tagW, valW := newDictWriter(), newDictWriter()
	tagCache := make(map[*dict][]uint32)
	valCache := make(map[*dict][]uint32)

	for _, doc := range docs {
		rt := tagW.remap(tagCache, doc.tags)
		rv := valW.remap(valCache, doc.vals)
		rec := docRec{
			NameOff: uint32(len(names)), NameLen: uint32(len(doc.name)),
			Base: uint32(len(start)), Nodes: uint32(doc.Len()),
			RootTag: rt[doc.stats.rootTag], Depth: doc.stats.depth,
			Res0:    uint32(doc.version),
		}
		names = append(names, doc.name...)
		start = append(start, doc.c.start...)
		end = append(end, doc.c.end...)
		level = append(level, doc.c.level...)
		parent = append(parent, doc.c.parent...)
		first = append(first, doc.c.firstChild...)
		kind = append(kind, doc.c.kind...)
		for _, t := range doc.c.tag {
			tagCol = append(tagCol, rt[t])
		}
		for _, v := range doc.c.val {
			if v == 0 {
				valCol = append(valCol, 0)
			} else {
				valCol = append(valCol, rv[v-1]+1)
			}
		}

		// Indexes: postings are re-extracted per directory entry so the
		// encoding is identical whether the source document was built on
		// the heap (doc-local offsets) or opened from an earlier snapshot
		// (shard-wide offsets).
		rec.TagDirOff, rec.TagDirN = uint32(len(tagDir)), uint32(len(doc.tagDir))
		tagDir, tagPost = appendIndex(tagDir, tagPost, doc.tagDir, doc.tagPost, rt)
		rec.ValDirOff, rec.ValDirN = uint32(len(valDir)), uint32(len(doc.valDir))
		valDir, valPost = appendIndex(valDir, valPost, doc.valDir, doc.valPost, rv)

		// Statistics, in deterministic (sorted) order.
		rec.TSOff = uint32(len(statRecs))
		ts := make([]tagStatRec, 0, len(doc.stats.tags))
		for id, st := range doc.stats.tags {
			ts = append(ts, tagStatRec{
				Tag: rt[id], Count: uint32(st.Count), Distinct: uint32(st.Distinct),
				Children: uint32(st.Children), MinLevel: st.MinLevel, MaxLevel: st.MaxLevel,
			})
		}
		sort.Slice(ts, func(i, j int) bool { return ts[i].Tag < ts[j].Tag })
		statRecs = append(statRecs, ts...)
		rec.TSN = uint32(len(ts))

		rec.CPOff = uint32(len(childPairs))
		cp := encodePairs(doc.stats.child, rt)
		childPairs = append(childPairs, cp...)
		rec.CPN = uint32(len(cp))

		rec.DPOff = uint32(len(descPairs))
		dp := encodePairs(doc.stats.desc, rt)
		descPairs = append(descPairs, dp...)
		rec.DPN = uint32(len(dp))

		recs = append(recs, rec)
	}

	tagOffs, tagBytes := tagW.encode()
	valOffs, valBytes := valW.encode()

	a := newAssembler()
	a.add(rawBytes(recs))       // secDocs
	a.add(names)                // secNames
	a.add(rawBytes(start))      // secStart
	a.add(rawBytes(end))        // secEnd
	a.add(rawBytes(level))      // secLevel
	a.add(rawBytes(parent))     // secParent
	a.add(rawBytes(first))      // secFirstChild
	a.add(kind)                 // secKind
	a.add(rawBytes(tagCol))     // secTag
	a.add(rawBytes(valCol))     // secVal
	a.add(rawBytes(tagDir))     // secTagDir
	a.add(rawBytes(valDir))     // secValDir
	a.add(rawBytes(tagPost))    // secTagPost
	a.add(rawBytes(valPost))    // secValPost
	a.add(rawBytes(tagOffs))    // secTagDictOffs
	a.add(tagBytes)             // secTagDictBytes
	a.add(rawBytes(valOffs))    // secValDictOffs
	a.add(valBytes)             // secValDictBytes
	a.add(rawBytes(statRecs))   // secTagStats
	a.add(rawBytes(childPairs)) // secChildPairs
	a.add(rawBytes(descPairs))  // secDescPairs
	return a.finish()
}

// appendIndex copies one document's index into the shard-wide arrays,
// remapping directory IDs to the file dictionary and offsets to the
// shard-wide postings array, and re-sorting the directory by file ID.
func appendIndex(dir []dirEntry, post []int32, srcDir []dirEntry, srcPost []int32, remap []uint32) ([]dirEntry, []int32) {
	ds := make([]dirEntry, len(srcDir))
	for j, e := range srcDir {
		ds[j] = dirEntry{id: remap[e.id], off: uint32(len(post)), n: e.n}
		post = append(post, srcPost[e.off:e.off+e.n]...)
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i].id < ds[j].id })
	return append(dir, ds...), post
}

func encodePairs(m map[idPair]int, remap []uint32) []pairRec {
	out := make([]pairRec, 0, len(m))
	for p, n := range m {
		out = append(out, pairRec{Up: remap[p.up], Down: remap[p.down], Count: uint32(n)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Up != out[j].Up {
			return out[i].Up < out[j].Up
		}
		return out[i].Down < out[j].Down
	})
	return out
}

// encodeManifest lists the documents in global DocID order.
func encodeManifest(d *directory) []byte {
	var buf []byte
	var tmp [8]byte
	for _, doc := range d.docs {
		binary.NativeEndian.PutUint32(tmp[0:], uint32(doc.shard))
		binary.NativeEndian.PutUint32(tmp[4:], uint32(len(doc.name)))
		buf = append(buf, tmp[:]...)
		buf = append(buf, doc.name...)
	}
	return buf
}

// maniEntry is one decoded manifest record.
type maniEntry struct {
	shard int
	name  string
}

func decodeManifest(data []byte) (shardCount int, updateGen uint64, entries []maniEntry, err error) {
	h, err := parseHeader(data, maniMagic, "manifest")
	if err != nil {
		return 0, 0, nil, err
	}
	if h.shardCount == 0 || h.shardCount > 1024 {
		return 0, 0, nil, fmt.Errorf("%w: manifest shard count %d", ErrSnapshotCorrupt, h.shardCount)
	}
	p := h.payload
	entries = make([]maniEntry, 0, h.docCount)
	for i := uint32(0); i < h.docCount; i++ {
		if len(p) < 8 {
			return 0, 0, nil, fmt.Errorf("%w: manifest truncated at entry %d", ErrSnapshotCorrupt, i)
		}
		sh := binary.NativeEndian.Uint32(p[0:])
		nameLen := binary.NativeEndian.Uint32(p[4:])
		p = p[8:]
		if sh >= h.shardCount {
			return 0, 0, nil, fmt.Errorf("%w: manifest entry %d names shard %d of %d", ErrSnapshotCorrupt, i, sh, h.shardCount)
		}
		if uint64(nameLen) > uint64(len(p)) {
			return 0, 0, nil, fmt.Errorf("%w: manifest entry %d name overruns payload", ErrSnapshotCorrupt, i)
		}
		entries = append(entries, maniEntry{shard: int(sh), name: string(p[:nameLen])})
		p = p[nameLen:]
	}
	if len(p) != 0 {
		return 0, 0, nil, fmt.Errorf("%w: manifest has %d trailing bytes", ErrSnapshotCorrupt, len(p))
	}
	return int(h.shardCount), uint64(h.extra), entries, nil
}

// SnapshotUpdateGen reads the update generation recorded in a snapshot's
// manifest without decoding the document payloads. Compared against
// Store.UpdateGeneration it detects a snapshot that predates later
// commits (stale relative to the live store). Snapshots written before
// MVCC updates report 0.
func SnapshotUpdateGen(dir string) (uint64, error) {
	maniData, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return 0, fmt.Errorf("store: open snapshot: %w", err)
	}
	h, err := parseHeader(maniData, maniMagic, "manifest")
	if err != nil {
		return 0, fmt.Errorf("store: open snapshot %s: %w", dir, err)
	}
	return uint64(h.extra), nil
}

// sectionView locates one section of a payload.
func sectionView(payload []byte, secs []section, i int) ([]byte, error) {
	s := secs[i]
	if s.off%8 != 0 || s.off > uint64(len(payload)) || s.n > uint64(len(payload))-s.off {
		return nil, fmt.Errorf("%w: section %d spans [%d, %d) of %d", ErrSnapshotCorrupt, i, s.off, s.off+s.n, len(payload))
	}
	return payload[s.off : s.off+s.n : s.off+s.n], nil
}

// decodeShard turns one mapped shard file into document views. The
// returned Docs have no DocID assigned yet (the manifest order decides
// that); every slice and string aliases data.
func decodeShard(data []byte, wantShard, wantCount int) ([]*Doc, error) {
	what := shardFileName(wantShard)
	h, err := parseHeader(data, snapMagic, what)
	if err != nil {
		return nil, err
	}
	if int(h.shardIdx) != wantShard || int(h.shardCount) != wantCount {
		return nil, fmt.Errorf("%w: %s claims shard %d of %d, manifest says %d of %d",
			ErrSnapshotMismatch, what, h.shardIdx, h.shardCount, wantShard, wantCount)
	}
	if len(h.payload) < numSections*16 {
		return nil, fmt.Errorf("%w: %s payload too short for section table", ErrSnapshotCorrupt, what)
	}
	secs := make([]section, numSections)
	for i := range secs {
		secs[i] = section{
			off: binary.NativeEndian.Uint64(h.payload[i*16:]),
			n:   binary.NativeEndian.Uint64(h.payload[i*16+8:]),
		}
	}
	raw := make([][]byte, numSections)
	for i := range raw {
		if raw[i], err = sectionView(h.payload, secs, i); err != nil {
			return nil, err
		}
	}

	recs, err := rawView[docRec](raw[secDocs])
	if err != nil {
		return nil, err
	}
	if uint32(len(recs)) != h.docCount {
		return nil, fmt.Errorf("%w: %s has %d doc records, header says %d", ErrSnapshotCorrupt, what, len(recs), h.docCount)
	}
	start, err1 := rawView[int32](raw[secStart])
	end, err2 := rawView[int32](raw[secEnd])
	level, err3 := rawView[int32](raw[secLevel])
	parent, err4 := rawView[int32](raw[secParent])
	first, err5 := rawView[int32](raw[secFirstChild])
	tagCol, err6 := rawView[uint32](raw[secTag])
	valCol, err7 := rawView[uint32](raw[secVal])
	tagDir, err8 := rawView[dirEntry](raw[secTagDir])
	valDir, err9 := rawView[dirEntry](raw[secValDir])
	tagPost, err10 := rawView[int32](raw[secTagPost])
	valPost, err11 := rawView[int32](raw[secValPost])
	statRecs, err12 := rawView[tagStatRec](raw[secTagStats])
	childPairs, err13 := rawView[pairRec](raw[secChildPairs])
	descPairs, err14 := rawView[pairRec](raw[secDescPairs])
	for _, e := range []error{err1, err2, err3, err4, err5, err6, err7, err8, err9, err10, err11, err12, err13, err14} {
		if e != nil {
			return nil, e
		}
	}
	kind := raw[secKind]
	rows := len(start)
	if len(end) != rows || len(level) != rows || len(parent) != rows ||
		len(first) != rows || len(kind) != rows || len(tagCol) != rows || len(valCol) != rows {
		return nil, fmt.Errorf("%w: %s column lengths disagree", ErrSnapshotCorrupt, what)
	}

	tags, err := decodeDict(raw[secTagDictOffs], raw[secTagDictBytes], what)
	if err != nil {
		return nil, err
	}
	vals, err := decodeDict(raw[secValDictOffs], raw[secValDictBytes], what)
	if err != nil {
		return nil, err
	}
	nTags, nVals := tags.size(), vals.size()

	// Validate shard-wide invariants once: directory entries stay inside
	// the postings and dictionaries, columns stay inside the dictionaries.
	for _, e := range tagDir {
		if int(e.id) >= nTags || uint64(e.off)+uint64(e.n) > uint64(len(tagPost)) {
			return nil, fmt.Errorf("%w: %s tag directory entry out of bounds", ErrSnapshotCorrupt, what)
		}
	}
	for _, e := range valDir {
		if int(e.id) >= nVals || uint64(e.off)+uint64(e.n) > uint64(len(valPost)) {
			return nil, fmt.Errorf("%w: %s value directory entry out of bounds", ErrSnapshotCorrupt, what)
		}
	}
	for _, r := range statRecs {
		if int(r.Tag) >= nTags {
			return nil, fmt.Errorf("%w: %s statistics name tag %d of %d", ErrSnapshotCorrupt, what, r.Tag, nTags)
		}
	}

	names := raw[secNames]
	docs := make([]*Doc, 0, len(recs))
	for di, rec := range recs {
		base, n := uint64(rec.Base), uint64(rec.Nodes)
		if n == 0 || base+n > uint64(rows) {
			return nil, fmt.Errorf("%w: %s doc %d rows [%d, %d) of %d", ErrSnapshotCorrupt, what, di, base, base+n, rows)
		}
		if uint64(rec.NameOff)+uint64(rec.NameLen) > uint64(len(names)) {
			return nil, fmt.Errorf("%w: %s doc %d name out of bounds", ErrSnapshotCorrupt, what, di)
		}
		if uint64(rec.TagDirOff)+uint64(rec.TagDirN) > uint64(len(tagDir)) ||
			uint64(rec.ValDirOff)+uint64(rec.ValDirN) > uint64(len(valDir)) {
			return nil, fmt.Errorf("%w: %s doc %d directory span out of bounds", ErrSnapshotCorrupt, what, di)
		}
		if uint64(rec.TSOff)+uint64(rec.TSN) > uint64(len(statRecs)) ||
			uint64(rec.CPOff)+uint64(rec.CPN) > uint64(len(childPairs)) ||
			uint64(rec.DPOff)+uint64(rec.DPN) > uint64(len(descPairs)) {
			return nil, fmt.Errorf("%w: %s doc %d statistics span out of bounds", ErrSnapshotCorrupt, what, di)
		}
		if int(rec.RootTag) >= nTags {
			return nil, fmt.Errorf("%w: %s doc %d root tag out of bounds", ErrSnapshotCorrupt, what, di)
		}
		version := uint64(rec.Res0)
		if version == 0 {
			version = 1 // snapshot written before document versions existed
		}
		d := &Doc{
			name:    string(names[rec.NameOff : rec.NameOff+rec.NameLen]),
			shard:   wantShard,
			version: version,
			c: cols{
				start:      start[base : base+n],
				end:        end[base : base+n],
				level:      level[base : base+n],
				parent:     parent[base : base+n],
				firstChild: first[base : base+n],
				kind:       kind[base : base+n],
				tag:        tagCol[base : base+n],
				val:        valCol[base : base+n],
			},
			tagDir:  tagDir[rec.TagDirOff : rec.TagDirOff+rec.TagDirN],
			valDir:  valDir[rec.ValDirOff : rec.ValDirOff+rec.ValDirN],
			tagPost: tagPost,
			valPost: valPost,
			tags:    tags,
			vals:    vals,
		}
		// Per-node structural bounds: nothing an accessor indexes with may
		// escape the document, whatever the file claims.
		nn := int32(n)
		for i := int32(0); i < nn; i++ {
			if d.c.start[i] != i ||
				d.c.end[i] < i || d.c.end[i] >= nn ||
				d.c.parent[i] < -1 || d.c.parent[i] >= nn ||
				d.c.firstChild[i] < -1 || d.c.firstChild[i] >= nn ||
				d.c.level[i] < 0 ||
				int(d.c.tag[i]) >= nTags ||
				int(d.c.val[i]) > nVals {
				return nil, fmt.Errorf("%w: %s doc %d node %d fails bounds checks", ErrSnapshotCorrupt, what, di, i)
			}
		}
		// Rebuild the per-document statistics maps from the flat records.
		st := &docStats{
			rootTag: rec.RootTag,
			nodes:   int(n),
			depth:   rec.Depth,
			tags:    make(map[uint32]TagStats, rec.TSN),
			child:   make(map[idPair]int, rec.CPN),
			desc:    make(map[idPair]int, rec.DPN),
		}
		for _, r := range statRecs[rec.TSOff : rec.TSOff+rec.TSN] {
			st.tags[r.Tag] = TagStats{
				Count: int(r.Count), Distinct: int(r.Distinct), Children: int(r.Children),
				MinLevel: r.MinLevel, MaxLevel: r.MaxLevel,
			}
		}
		for _, p := range childPairs[rec.CPOff : rec.CPOff+rec.CPN] {
			st.child[idPair{p.Up, p.Down}] = int(p.Count)
		}
		for _, p := range descPairs[rec.DPOff : rec.DPOff+rec.DPN] {
			st.desc[idPair{p.Up, p.Down}] = int(p.Count)
		}
		d.stats = st
		docs = append(docs, d)
	}
	return docs, nil
}

// decodeDict rebuilds a frozen dictionary whose strings are views into
// the mapped blob.
func decodeDict(offsRaw, blob []byte, what string) (*dict, error) {
	offs, err := rawView[uint32](offsRaw)
	if err != nil {
		return nil, err
	}
	if len(offs) == 0 {
		return newDict(), nil
	}
	n := len(offs) - 1
	if uint64(offs[n]) != uint64(len(blob)) {
		return nil, fmt.Errorf("%w: %s dictionary blob length %d, offsets end at %d", ErrSnapshotCorrupt, what, len(blob), offs[n])
	}
	strs := make([]string, n)
	for i := 0; i < n; i++ {
		lo, hi := offs[i], offs[i+1]
		if lo > hi {
			return nil, fmt.Errorf("%w: %s dictionary offsets not monotonic at %d", ErrSnapshotCorrupt, what, i)
		}
		if lo == hi {
			strs[i] = ""
			continue
		}
		strs[i] = unsafe.String(&blob[lo], int(hi-lo))
	}
	return newFrozenDict(strs), nil
}

// LoadSnapshot opens the snapshot directory and adds every document it
// contains to the store. The snapshot's shard count must equal the
// store's (DocIDs and shard routing are shard-count dependent); loading a
// document name that is already present is an error. On success only the
// generations of the shards that received documents are bumped, so plan
// caches keyed on untouched shards stay valid. On any error the store is
// unchanged.
func (s *Store) LoadSnapshot(dir string) error {
	if s.pinned {
		return fmt.Errorf("store: load snapshot into a pinned (read-only) view")
	}
	// A load while a mutation is being built would race the directory
	// rewrite against the splice's version chain; reject it up front (and
	// again under loadMu, where the check is authoritative).
	if s.writers.Load() != 0 {
		return fmt.Errorf("store: load snapshot %s: %w", dir, ErrConcurrentMutation)
	}
	maniData, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return fmt.Errorf("store: open snapshot: %w", err)
	}
	shardCount, snapGen, entries, err := decodeManifest(maniData)
	if err != nil {
		return fmt.Errorf("store: open snapshot %s: %w", dir, err)
	}
	if shardCount != len(s.shards) {
		return fmt.Errorf("%w: snapshot has %d shards, store has %d", ErrSnapshotMismatch, shardCount, len(s.shards))
	}

	// Which shards hold documents, and in what per-shard order.
	perShard := make([][]string, shardCount)
	for _, e := range entries {
		perShard[e.shard] = append(perShard[e.shard], e.name)
	}

	var maps []*mapping
	cleanup := func() {
		for _, m := range maps {
			m.close()
		}
	}
	byName := make(map[string]*Doc, len(entries))
	for i, names := range perShard {
		if len(names) == 0 {
			continue
		}
		m, err := openMapping(filepath.Join(dir, shardFileName(i)))
		if err != nil {
			cleanup()
			return fmt.Errorf("store: open snapshot shard %d: %w", i, err)
		}
		maps = append(maps, m)
		docs, err := decodeShard(m.data, i, shardCount)
		if err != nil {
			cleanup()
			return fmt.Errorf("store: open snapshot %s: %w", dir, err)
		}
		if len(docs) != len(names) {
			cleanup()
			return fmt.Errorf("%w: shard %d holds %d documents, manifest lists %d", ErrSnapshotCorrupt, i, len(docs), len(names))
		}
		for j, d := range docs {
			if d.name != names[j] {
				cleanup()
				return fmt.Errorf("%w: shard %d doc %d is %q, manifest lists %q", ErrSnapshotCorrupt, i, j, d.name, names[j])
			}
			byName[d.name] = d
		}
	}
	if len(byName) != len(entries) {
		cleanup()
		return fmt.Errorf("%w: snapshot lists %d documents, shards hold %d (duplicate names?)", ErrSnapshotCorrupt, len(entries), len(byName))
	}

	// Publish all documents in manifest (global load) order under one
	// directory swap.
	s.loadMu.Lock()
	defer s.loadMu.Unlock()
	if s.writers.Load() != 0 {
		cleanup()
		return fmt.Errorf("store: load snapshot %s: %w", dir, ErrConcurrentMutation)
	}
	old := s.dir.Load()
	for _, e := range entries {
		if _, dup := old.byName[e.name]; dup {
			cleanup()
			return fmt.Errorf("%w: document %q already loaded", ErrSnapshotMismatch, e.name)
		}
	}
	next := &directory{
		docs:   make([]*Doc, len(old.docs), len(old.docs)+len(entries)),
		byName: make(map[string]DocID, len(old.byName)+len(entries)),
	}
	copy(next.docs, old.docs)
	for k, v := range old.byName {
		next.byName[k] = v
	}
	touched := make(map[int]bool)
	for _, e := range entries {
		d := byName[e.name]
		id := DocID(len(next.docs))
		d.id = id
		next.docs = append(next.docs, d)
		next.byName[d.name] = id
		s.shards[d.shard].docs = append(s.shards[d.shard].docs, id)
		touched[d.shard] = true
	}
	s.dir.Store(next)
	// Carry the snapshot's update generation forward so a later snapshot
	// of this store never reports an older generation than its source.
	for {
		cur := s.updateGen.Load()
		if snapGen <= cur || s.updateGen.CompareAndSwap(cur, snapGen) {
			break
		}
	}
	for i := range touched {
		s.shards[i].gen.Add(1)
	}
	for _, m := range maps {
		s.mappedBytes.Add(int64(len(m.data)))
	}
	s.maps = append(s.maps, maps...)
	return nil
}

// SnapshotExists reports whether dir holds a complete snapshot: the
// manifest is written last, so its presence implies the shard files it
// references were fully written.
func SnapshotExists(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, manifestName))
	return err == nil
}

// OpenSnapshot creates a store with the snapshot's shard count and loads
// the snapshot into it.
func OpenSnapshot(dir string) (*Store, error) {
	maniData, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("store: open snapshot: %w", err)
	}
	shardCount, _, _, err := decodeManifest(maniData)
	if err != nil {
		return nil, fmt.Errorf("store: open snapshot %s: %w", dir, err)
	}
	s := NewSharded(shardCount)
	if err := s.LoadSnapshot(dir); err != nil {
		return nil, err
	}
	return s, nil
}
