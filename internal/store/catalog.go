package store

// This file implements the statistics catalog: per-document, per-tag
// summaries computed once at load time and served to the cost-based
// planner (internal/planner). Catalog probes are free — no access
// counters are touched — because a real system keeps these numbers in
// its catalog, not in the data pages.
//
// The summaries are keyed by dictionary IDs (the same IDs the node
// columns hold), so they serialize into snapshots as flat integer
// records; the string-keyed Catalog API resolves names through the
// owning document's dictionaries.
//
// The collected statistics are:
//
//   - tag cardinality: number of nodes per tag class (elements plain,
//     attributes with "@", text as "#text");
//   - distinct-value counts: number of distinct content values per tag
//     class, the basis of equality-predicate and value-join selectivity;
//   - child fanout: per (parentTag, childTag) pair, the number of
//     childTag nodes whose parent carries parentTag — which makes
//     E[children per parent] an exact figure, not a guess;
//   - tag co-occurrence depth: per (ancestorTag, descendantTag) pair,
//     the number of descendantTag nodes with at least one ancestorTag
//     ancestor — the "//" analogue of the child-fanout pair counts;
//   - per-tag level bounds and total children (average fanout).

// TagStats summarizes one tag class within one document.
type TagStats struct {
	// Count is the number of nodes carrying the tag.
	Count int
	// Distinct is the number of distinct content values over those nodes
	// (attribute values, text content, element text concatenations).
	Distinct int
	// Children is the total number of child nodes under nodes of this
	// tag; Children/Count is the average fanout.
	Children int
	// MinLevel and MaxLevel bound the depth at which the tag occurs.
	MinLevel, MaxLevel int32
}

// idPair keys the structural co-occurrence maps by tag dictionary IDs.
type idPair struct{ up, down uint32 }

// docStats holds the per-document catalog, built once at load (or
// decoded from a snapshot).
type docStats struct {
	// rootTag is the tag dictionary ID of the document root.
	rootTag uint32
	nodes   int
	depth   int32
	tags    map[uint32]TagStats
	// child counts childTag nodes per parentTag.
	child map[idPair]int
	// desc counts descTag nodes having at least one ancTag ancestor.
	desc map[idPair]int
}

// buildDocStats computes the catalog summary in one pass over the
// document's columns (document order, so the ancestor chain is a stack).
func buildDocStats(d *Doc) *docStats {
	n := d.Len()
	st := &docStats{
		rootTag: d.c.tag[0],
		nodes:   n,
		tags:    make(map[uint32]TagStats),
		child:   make(map[idPair]int),
		desc:    make(map[idPair]int),
	}
	type stackEntry struct {
		ord int32
		tag uint32
	}
	var stack []stackEntry
	distinct := make(map[uint32]map[string]struct{})
	seen := make([]uint32, 0, 16)
	for i := 0; i < n; i++ {
		tag := d.c.tag[i]
		level := d.c.level[i]
		// Restore the ancestor stack: pop until the top is the parent
		// (document order guarantees the parent is on it).
		for len(stack) > 0 && stack[len(stack)-1].ord != d.c.parent[i] {
			stack = stack[:len(stack)-1]
		}

		ts := st.tags[tag]
		if ts.Count == 0 {
			ts.MinLevel = level
		}
		ts.Count++
		if level < ts.MinLevel {
			ts.MinLevel = level
		}
		if level > ts.MaxLevel {
			ts.MaxLevel = level
		}
		st.tags[tag] = ts
		if level > st.depth {
			st.depth = level
		}

		if v := d.c.val[i]; v != 0 {
			set := distinct[tag]
			if set == nil {
				set = make(map[string]struct{})
				distinct[tag] = set
			}
			set[d.vals.str(v-1)] = struct{}{}
		}

		if len(stack) > 0 {
			parentTag := stack[len(stack)-1].tag
			st.child[idPair{parentTag, tag}]++
			pts := st.tags[parentTag]
			pts.Children++
			st.tags[parentTag] = pts
			// Distinct ancestor tags: the stack is short (document
			// depth), so a linear dedup beats a map.
			seen = seen[:0]
			for _, a := range stack {
				dup := false
				for _, s := range seen {
					if s == a.tag {
						dup = true
						break
					}
				}
				if dup {
					continue
				}
				seen = append(seen, a.tag)
				st.desc[idPair{a.tag, tag}]++
			}
		}
		stack = append(stack, stackEntry{ord: int32(i), tag: tag})
	}
	for tag, set := range distinct {
		ts := st.tags[tag]
		ts.Distinct = len(set)
		st.tags[tag] = ts
	}
	return st
}

// tagStats resolves a tag name against one document's summary (zero value
// when the tag does not occur in the document's dictionary or summary).
func (d *Doc) tagStats(tag string) TagStats {
	id, ok := d.tags.lookup(tag)
	if !ok {
		return TagStats{}
	}
	return d.stats.tags[id]
}

// Catalog is a read-only view of the load-time statistics of a store.
// Every query method takes a document scope: nil means "all loaded
// documents", the conservative scope for patterns whose document is not
// statically known (extension selects anchored at a logical class).
//
// The catalog is shard-structured like the store itself: each document's
// summary lives with its owning shard, scoped figures are computed as
// per-shard partial aggregates summed across the scope's shards (see
// TagCountByShard), and a catalog probe resolves documents through the
// same lock-free directory the data reads use — so planning never blocks
// on a load, it just plans against the snapshot it started from.
type Catalog struct {
	s *Store
}

// Catalog returns the statistics catalog of the store. The view is
// immutable once the documents are loaded and safe for concurrent use.
func (s *Store) Catalog() Catalog { return Catalog{s: s} }

// Docs returns the IDs of all loaded documents.
func (c Catalog) Docs() []DocID {
	n := c.s.NumDocs()
	out := make([]DocID, n)
	for i := range out {
		out[i] = DocID(i)
	}
	return out
}

// scope resolves nil to all documents.
func (c Catalog) scope(docs []DocID) []DocID {
	if docs == nil {
		return c.Docs()
	}
	return docs
}

// shardScope groups the scope by owning shard, preserving document order
// within each group. The planner's aggregates are computed per shard and
// summed, mirroring how the evaluator scatters the corresponding work.
func (c Catalog) shardScope(docs []DocID) map[int][]DocID {
	out := make(map[int][]DocID)
	for _, id := range c.scope(docs) {
		sh := c.s.entry(id).shard
		out[sh] = append(out[sh], id)
	}
	return out
}

// RootTag returns the tag of the document's root element.
func (c Catalog) RootTag(id DocID) string {
	d := c.s.entry(id)
	return d.tags.str(d.stats.rootTag)
}

// NodeCount returns the total number of stored nodes in scope.
func (c Catalog) NodeCount(docs []DocID) int {
	n := 0
	for _, id := range c.scope(docs) {
		n += c.s.entry(id).stats.nodes
	}
	return n
}

// Depth returns the maximum node level in scope.
func (c Catalog) Depth(docs []DocID) int {
	d := int32(0)
	for _, id := range c.scope(docs) {
		if s := c.s.entry(id).stats.depth; s > d {
			d = s
		}
	}
	return int(d)
}

// TagCountByShard returns the number of nodes carrying tag in scope,
// broken down by owning shard — the per-shard partial cardinalities whose
// sum is TagCount. The planner costs scatter–gather plans from these
// partials (the sum drives selectivity, the spread shows skew).
func (c Catalog) TagCountByShard(docs []DocID, tag string) map[int]int {
	out := make(map[int]int)
	for sh, ids := range c.shardScope(docs) {
		n := 0
		for _, id := range ids {
			n += c.s.entry(id).tagStats(tag).Count
		}
		out[sh] = n
	}
	return out
}

// TagCount returns the number of nodes carrying tag in scope: the sum of
// the per-shard partial counts.
func (c Catalog) TagCount(docs []DocID, tag string) int {
	n := 0
	for _, partial := range c.TagCountByShard(docs, tag) {
		n += partial
	}
	return n
}

// DistinctValues returns the number of distinct content values among
// nodes carrying tag in scope (summed across documents — values are not
// deduplicated across document boundaries).
func (c Catalog) DistinctValues(docs []DocID, tag string) int {
	n := 0
	for _, id := range c.scope(docs) {
		n += c.s.entry(id).tagStats(tag).Distinct
	}
	return n
}

// AvgFanout returns the average number of children per node of tag in
// scope, 0 when the tag does not occur.
func (c Catalog) AvgFanout(docs []DocID, tag string) float64 {
	count, children := 0, 0
	for _, id := range c.scope(docs) {
		ts := c.s.entry(id).tagStats(tag)
		count += ts.Count
		children += ts.Children
	}
	if count == 0 {
		return 0
	}
	return float64(children) / float64(count)
}

// ChildPerParent returns E[number of childTag children per parentTag
// node] in scope — exact, from the load-time pair counts.
func (c Catalog) ChildPerParent(docs []DocID, parentTag, childTag string) float64 {
	parents, pairs := 0, 0
	for _, id := range c.scope(docs) {
		d := c.s.entry(id)
		parents += d.tagStats(parentTag).Count
		if up, ok := d.tags.lookup(parentTag); ok {
			if down, ok := d.tags.lookup(childTag); ok {
				pairs += d.stats.child[idPair{up, down}]
			}
		}
	}
	if parents == 0 {
		return 0
	}
	return float64(pairs) / float64(parents)
}

// DescPerAncestor returns E[number of descTag descendants per ancTag
// node] in scope, from the load-time co-occurrence counts. (Each descTag
// node is counted once per distinct ancestor tag, so for recursive tags
// the figure is a lower bound on the pair count and still the right
// per-ancestor average under uniformity.)
func (c Catalog) DescPerAncestor(docs []DocID, ancTag, descTag string) float64 {
	ancs, pairs := 0, 0
	for _, id := range c.scope(docs) {
		d := c.s.entry(id)
		ancs += d.tagStats(ancTag).Count
		if up, ok := d.tags.lookup(ancTag); ok {
			if down, ok := d.tags.lookup(descTag); ok {
				pairs += d.stats.desc[idPair{up, down}]
			}
		}
	}
	if ancs == 0 {
		return 0
	}
	return float64(pairs) / float64(ancs)
}

// Tag returns the full per-tag summary for one document (zero value when
// the tag does not occur). Exposed for tests and tooling.
func (c Catalog) Tag(id DocID, tag string) TagStats { return c.s.entry(id).tagStats(tag) }
