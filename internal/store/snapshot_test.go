package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// snapDocs is a small multi-document corpus with enough variety to cover
// every column: attributes, text, empty elements, repeated tags and
// values, and content that needs XML escaping.
var snapDocs = map[string]string{
	"auction.xml": sampleXML,
	"catalog.xml": `<catalog><item sku="a&lt;1"><name>Widget &amp; Co</name><price>3</price></item>` +
		`<item sku="b2"><name></name><price>3</price></item><empty/></catalog>`,
	"notes.xml": `<notes lang="en"><note>first</note><note>second</note><note>first</note></notes>`,
}

func loadSnapDocs(t *testing.T, shards int) *Store {
	t.Helper()
	s := NewSharded(shards)
	for _, name := range []string{"auction.xml", "catalog.xml", "notes.xml"} {
		if _, err := s.LoadXML(name, strings.NewReader(snapDocs[name])); err != nil {
			t.Fatalf("LoadXML(%s): %v", name, err)
		}
	}
	return s
}

// requireSameDoc asserts the snapshot-opened document view is byte- and
// structure-identical to the heap-built one: every column, every string,
// the serialized XML, and the index postings.
func requireSameDoc(t *testing.T, want, got *Doc) {
	t.Helper()
	if got.Name() != want.Name() {
		t.Fatalf("name = %q, want %q", got.Name(), want.Name())
	}
	if got.Len() != want.Len() {
		t.Fatalf("%s: len = %d, want %d", want.Name(), got.Len(), want.Len())
	}
	for i := int32(0); i < int32(want.Len()); i++ {
		if got.Start(i) != want.Start(i) || got.End(i) != want.End(i) ||
			got.Level(i) != want.Level(i) || got.Parent(i) != want.Parent(i) ||
			got.FirstChild(i) != want.FirstChild(i) || got.Kind(i) != want.Kind(i) {
			t.Fatalf("%s node %d: structural columns differ", want.Name(), i)
		}
		if got.Tag(i) != want.Tag(i) {
			t.Fatalf("%s node %d: tag %q, want %q", want.Name(), i, got.Tag(i), want.Tag(i))
		}
		if got.Value(i) != want.Value(i) {
			t.Fatalf("%s node %d: value %q, want %q", want.Name(), i, got.Value(i), want.Value(i))
		}
		if got.Content(i) != want.Content(i) {
			t.Fatalf("%s node %d: content %q, want %q", want.Name(), i, got.Content(i), want.Content(i))
		}
	}
	if gx, wx := got.XML(got.Root()), want.XML(want.Root()); gx != wx {
		t.Fatalf("%s: XML differs\nwant: %s\ngot:  %s", want.Name(), wx, gx)
	}
	// Index parity, probed through every tag and value in the document.
	for i := int32(0); i < int32(want.Len()); i++ {
		tag := want.Tag(i)
		if tag != "" {
			g, w := got.tagRefsByName(tag), want.tagRefsByName(tag)
			if fmt.Sprint(g) != fmt.Sprint(w) {
				t.Fatalf("%s: tagRefs(%q) = %v, want %v", want.Name(), tag, g, w)
			}
		}
		if v := want.Value(i); v != "" || want.Kind(i) != 0 {
			g, w := got.valueRefsByName(v), want.valueRefsByName(v)
			if fmt.Sprint(g) != fmt.Sprint(w) {
				t.Fatalf("%s: valueRefs(%q) = %v, want %v", want.Name(), v, g, w)
			}
		}
	}
}

// TestSnapshotRoundTrip: write a snapshot of a populated sharded store,
// open it into a fresh store, and require byte-identical documents,
// indexes and statistics.
func TestSnapshotRoundTrip(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			src := loadSnapDocs(t, shards)
			dir := t.TempDir()
			info, err := src.WriteSnapshot(dir)
			if err != nil {
				t.Fatalf("WriteSnapshot: %v", err)
			}
			if info.Docs != 3 {
				t.Fatalf("info.Docs = %d, want 3", info.Docs)
			}
			if info.Bytes <= 0 || info.ShardFiles < 1 {
				t.Fatalf("implausible snapshot info: %+v", info)
			}

			snap, err := OpenSnapshot(dir)
			if err != nil {
				t.Fatalf("OpenSnapshot: %v", err)
			}
			defer snap.Close()
			if snap.NumShards() != shards {
				t.Fatalf("NumShards = %d, want %d", snap.NumShards(), shards)
			}

			for _, name := range []string{"auction.xml", "catalog.xml", "notes.xml"} {
				wid, ok := src.Lookup(name)
				if !ok {
					t.Fatalf("source lost %s", name)
				}
				gid, ok := snap.Lookup(name)
				if !ok {
					t.Fatalf("snapshot store has no %s", name)
				}
				requireSameDoc(t, src.Doc(wid), snap.Doc(gid))

				// Statistics catalog parity for every tag in the document.
				wd, gd := src.Doc(wid), snap.Doc(gid)
				wc, gc := src.Catalog(), snap.Catalog()
				if wc.RootTag(wid) != gc.RootTag(gid) {
					t.Fatalf("%s: root tag differs", name)
				}
				if wc.NodeCount([]DocID{wid}) != gc.NodeCount([]DocID{gid}) {
					t.Fatalf("%s: node count differs", name)
				}
				if wc.Depth([]DocID{wid}) != gc.Depth([]DocID{gid}) {
					t.Fatalf("%s: depth differs", name)
				}
				for i := int32(0); i < int32(wd.Len()); i++ {
					tag := wd.Tag(i)
					if tag == "" {
						continue
					}
					if w, g := wc.Tag(wid, tag), gc.Tag(gid, tag); w != g {
						t.Fatalf("%s: TagStats(%q) = %+v, want %+v", name, tag, g, w)
					}
					if w, g := wc.DistinctValues([]DocID{wid}, tag), gc.DistinctValues([]DocID{gid}, tag); w != g {
						t.Fatalf("%s: DistinctValues(%q) = %d, want %d", name, tag, g, w)
					}
					for j := int32(0); j < int32(wd.Len()); j++ {
						dtag := wd.Tag(j)
						if dtag == "" {
							continue
						}
						if w, g := wc.ChildPerParent([]DocID{wid}, tag, dtag), gc.ChildPerParent([]DocID{gid}, tag, dtag); w != g {
							t.Fatalf("%s: ChildPerParent(%q,%q) = %v, want %v", name, tag, dtag, g, w)
						}
						if w, g := wc.DescPerAncestor([]DocID{wid}, tag, dtag), gc.DescPerAncestor([]DocID{gid}, tag, dtag); w != g {
							t.Fatalf("%s: DescPerAncestor(%q,%q) = %v, want %v", name, tag, dtag, g, w)
						}
					}
				}
				_ = gd
			}
		})
	}
}

// TestSnapshotWriteIdempotent: snapshotting the same store twice produces
// byte-identical files — the format has no nondeterminism (map iteration
// is sorted out before encoding).
func TestSnapshotWriteIdempotent(t *testing.T) {
	s := loadSnapDocs(t, 2)
	d1, d2 := t.TempDir(), t.TempDir()
	if _, err := s.WriteSnapshot(d1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.WriteSnapshot(d2); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(d1, "*"))
	if err != nil || len(files) == 0 {
		t.Fatalf("glob: %v (%d files)", err, len(files))
	}
	for _, f := range files {
		b1, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		b2, err := os.ReadFile(filepath.Join(d2, filepath.Base(f)))
		if err != nil {
			t.Fatal(err)
		}
		if string(b1) != string(b2) {
			t.Errorf("%s differs between runs", filepath.Base(f))
		}
	}
}

// snapshotShardFile returns the path of the first shard file in dir.
func snapshotShardFile(t *testing.T, dir string) string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "shard-*.tlcs"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no shard files in %s: %v", dir, err)
	}
	return files[0]
}

// TestSnapshotTruncated: a truncated shard file is a typed corruption
// error, not a panic.
func TestSnapshotTruncated(t *testing.T) {
	s := loadSnapDocs(t, 1)
	dir := t.TempDir()
	if _, err := s.WriteSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	path := snapshotShardFile(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, keep := range []int{0, 7, headerSize - 1, headerSize, len(data) - 1} {
		if err := os.WriteFile(path, data[:keep], 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := OpenSnapshot(dir)
		if err == nil {
			t.Fatalf("truncation to %d bytes: no error", keep)
		}
		if !errors.Is(err, ErrSnapshotCorrupt) {
			t.Fatalf("truncation to %d bytes: err = %v, want ErrSnapshotCorrupt", keep, err)
		}
	}
}

// TestSnapshotBadChecksum: a flipped payload byte fails the CRC with the
// typed checksum error.
func TestSnapshotBadChecksum(t *testing.T) {
	s := loadSnapDocs(t, 1)
	dir := t.TempDir()
	if _, err := s.WriteSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	path := snapshotShardFile(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[headerSize+len(data)/2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = OpenSnapshot(dir)
	if !errors.Is(err, ErrSnapshotChecksum) {
		t.Fatalf("err = %v, want ErrSnapshotChecksum", err)
	}
}

// TestSnapshotVersionSkew: a future format version is rejected with the
// typed version error before any payload is touched.
func TestSnapshotVersionSkew(t *testing.T) {
	s := loadSnapDocs(t, 1)
	dir := t.TempDir()
	if _, err := s.WriteSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	path := snapshotShardFile(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[8]++ // version field, first byte in either byte order
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = OpenSnapshot(dir)
	if !errors.Is(err, ErrSnapshotVersion) {
		t.Fatalf("err = %v, want ErrSnapshotVersion", err)
	}
}

// TestSnapshotByteFlipsNeverPanic sweeps single-byte corruptions across
// the whole shard file: every flip must produce either a typed error or
// (for bytes the format ignores) a clean open — never a panic. Payload
// flips are always caught by the checksum; header flips by the field
// validation.
func TestSnapshotByteFlipsNeverPanic(t *testing.T) {
	s := loadSnapDocs(t, 1)
	dir := t.TempDir()
	if _, err := s.WriteSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	path := snapshotShardFile(t, dir)
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	step := len(orig)/128 + 1
	for off := 0; off < len(orig); off += step {
		data := append([]byte(nil), orig...)
		data[off] ^= 0xA5
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("byte flip at %d: panic: %v", off, r)
				}
			}()
			if st, err := OpenSnapshot(dir); err == nil {
				st.Close()
			}
		}()
	}
}

// TestSnapshotShardMismatch: a snapshot can only be loaded into a store
// with the same shard count; OpenSnapshot sizes the store itself.
func TestSnapshotShardMismatch(t *testing.T) {
	s := loadSnapDocs(t, 2)
	dir := t.TempDir()
	if _, err := s.WriteSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	err := NewSharded(3).LoadSnapshot(dir)
	if !errors.Is(err, ErrSnapshotMismatch) {
		t.Fatalf("err = %v, want ErrSnapshotMismatch", err)
	}
}

// TestSnapshotDuplicateName: loading a snapshot over a store that already
// holds one of its document names is rejected atomically — nothing is
// published.
func TestSnapshotDuplicateName(t *testing.T) {
	s := loadSnapDocs(t, 2)
	dir := t.TempDir()
	if _, err := s.WriteSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	dst := NewSharded(2)
	if _, err := dst.LoadXML("notes.xml", strings.NewReader(`<n/>`)); err != nil {
		t.Fatal(err)
	}
	gens := dst.Generations()
	err := dst.LoadSnapshot(dir)
	if !errors.Is(err, ErrSnapshotMismatch) {
		t.Fatalf("err = %v, want ErrSnapshotMismatch", err)
	}
	if len(dst.Names()) != 1 {
		t.Fatalf("failed load published documents: %v", dst.Names())
	}
	for i, g := range dst.Generations() {
		if g != gens[i] {
			t.Fatalf("failed load bumped shard %d generation", i)
		}
	}
}

// TestSnapshotGenerations is the per-shard invalidation regression test:
// loading a snapshot bumps the generation of exactly the shards that
// received documents, so cached plans scoped to untouched shards stay
// valid.
func TestSnapshotGenerations(t *testing.T) {
	const shards = 8
	src := loadSnapDocs(t, shards)
	dir := t.TempDir()
	if _, err := src.WriteSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	// Which shards hold the three documents (routing is a pure name hash,
	// identical in src and dst).
	expect := make(map[int]bool)
	for _, name := range []string{"auction.xml", "catalog.xml", "notes.xml"} {
		expect[src.ShardOfName(name)] = true
	}
	if len(expect) == shards {
		t.Fatalf("fixture routes to every shard; pick more shards")
	}

	dst := NewSharded(shards)
	before := dst.Generations()
	if err := dst.LoadSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	after := dst.Generations()
	for i := 0; i < shards; i++ {
		bumped := after[i] != before[i]
		if bumped != expect[i] {
			t.Errorf("shard %d: generation bumped=%v, want %v (before=%d after=%d)",
				i, bumped, expect[i], before[i], after[i])
		}
	}
}

// TestSnapshotEmptyStore: an empty store snapshots to a manifest-only
// directory that opens back into an empty store.
func TestSnapshotEmptyStore(t *testing.T) {
	dir := t.TempDir()
	info, err := NewSharded(2).WriteSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if info.Docs != 0 || info.ShardFiles != 0 {
		t.Fatalf("info = %+v, want no docs, no shard files", info)
	}
	s, err := OpenSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if n := len(s.Names()); n != 0 {
		t.Fatalf("opened empty snapshot has %d documents", n)
	}
	if s.NumShards() != 2 {
		t.Fatalf("NumShards = %d, want 2", s.NumShards())
	}
}

// TestSnapshotMissingManifest: a directory without a manifest is not a
// snapshot.
func TestSnapshotMissingManifest(t *testing.T) {
	if _, err := OpenSnapshot(t.TempDir()); err == nil {
		t.Fatal("OpenSnapshot on an empty directory succeeded")
	}
}

// TestSnapshotCloseUnmaps: Close releases the mappings and zeroes the
// mapped-bytes gauge.
func TestSnapshotCloseUnmaps(t *testing.T) {
	s := loadSnapDocs(t, 2)
	dir := t.TempDir()
	if _, err := s.WriteSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	snap, err := OpenSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if snap.MappedBytes() <= 0 {
		t.Fatalf("MappedBytes = %d, want > 0", snap.MappedBytes())
	}
	if err := snap.Close(); err != nil {
		t.Fatal(err)
	}
	if snap.MappedBytes() != 0 {
		t.Fatalf("MappedBytes after Close = %d, want 0", snap.MappedBytes())
	}
}
