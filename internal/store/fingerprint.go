package store

import (
	"fmt"
	"sort"
	"strings"

	"tlc/internal/xmltree"
)

// Fingerprint renders a canonical, dictionary-independent dump of the
// document: columns with strings resolved, index postings grouped by
// resolved name in sorted order, and the statistics catalog with tags and
// pairs resolved and sorted. Two documents with equal fingerprints are
// semantically identical — same tree, same indexes, same catalog — even
// when their dictionary IDs or postings-array packing differ (a mutated
// document interns fragment strings in commit order; a fresh load interns
// in first-occurrence order). The mutation oracle tests compare a spliced
// store against a rebuild-from-XML via this.
func (d *Doc) Fingerprint() string {
	var sb strings.Builder
	n := int32(d.Len())
	fmt.Fprintf(&sb, "doc %s nodes=%d\n", d.name, n)
	for i := int32(0); i < n; i++ {
		fmt.Fprintf(&sb, "n%d k=%d s=%d e=%d l=%d p=%d fc=%d tag=%s val=%q\n",
			i, d.c.kind[i], d.c.start[i], d.c.end[i], d.c.level[i],
			d.c.parent[i], d.c.firstChild[i], d.Tag(i), d.Content(i))
	}

	writeIndex := func(label string, dir []dirEntry, dict *dict, refs func(uint32) []int32) {
		names := make([]string, 0, len(dir))
		byName := make(map[string][]int32, len(dir))
		for _, e := range dir {
			name := dict.str(e.id)
			names = append(names, name)
			byName[name] = refs(e.id)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(&sb, "%s %q ->", label, name)
			for _, r := range byName[name] {
				fmt.Fprintf(&sb, " %d", r)
			}
			sb.WriteByte('\n')
		}
	}
	writeIndex("tagidx", d.tagDir, d.tags, d.tagRefs)
	writeIndex("validx", d.valDir, d.vals, d.valueRefs)

	st := d.stats
	fmt.Fprintf(&sb, "stats root=%s nodes=%d depth=%d\n", d.tags.str(st.rootTag), st.nodes, st.depth)
	tagNames := make([]string, 0, len(st.tags))
	byName := make(map[string]TagStats, len(st.tags))
	for id, ts := range st.tags {
		name := d.tags.str(id)
		tagNames = append(tagNames, name)
		byName[name] = ts
	}
	sort.Strings(tagNames)
	for _, name := range tagNames {
		ts := byName[name]
		fmt.Fprintf(&sb, "tag %q count=%d distinct=%d children=%d lvl=[%d,%d]\n",
			name, ts.Count, ts.Distinct, ts.Children, ts.MinLevel, ts.MaxLevel)
	}
	writePairs := func(label string, m map[idPair]int) {
		lines := make([]string, 0, len(m))
		for p, c := range m {
			lines = append(lines, fmt.Sprintf("%s %q %q = %d", label, d.tags.str(p.up), d.tags.str(p.down), c))
		}
		sort.Strings(lines)
		for _, l := range lines {
			sb.WriteString(l)
			sb.WriteByte('\n')
		}
	}
	writePairs("child", st.child)
	writePairs("desc", st.desc)
	return sb.String()
}

// validateSplice is a structural self-check used by tests: it re-derives
// the invariants decodeShard enforces (interval containment, levels,
// firstChild) plus index/column agreement, returning the first violation.
func (d *Doc) validateSplice() error {
	n := int32(d.Len())
	if n == 0 {
		return fmt.Errorf("empty document")
	}
	if d.c.parent[0] != -1 || d.c.end[0] != n-1 || d.c.level[0] != 0 {
		return fmt.Errorf("bad root record")
	}
	for i := int32(0); i < n; i++ {
		if d.c.start[i] != i {
			return fmt.Errorf("node %d: start %d", i, d.c.start[i])
		}
		if d.c.end[i] < i || d.c.end[i] >= n {
			return fmt.Errorf("node %d: end %d", i, d.c.end[i])
		}
		if p := d.c.parent[i]; i > 0 {
			if p < 0 || p >= i {
				return fmt.Errorf("node %d: parent %d", i, p)
			}
			if i > d.c.end[p] {
				return fmt.Errorf("node %d outside parent %d interval", i, p)
			}
			if d.c.level[i] != d.c.level[p]+1 {
				return fmt.Errorf("node %d: level %d under parent level %d", i, d.c.level[i], d.c.level[p])
			}
		}
		want := int32(-1)
		if d.c.end[i] > i {
			want = i + 1
		}
		if d.c.firstChild[i] != want {
			return fmt.Errorf("node %d: firstChild %d, want %d", i, d.c.firstChild[i], want)
		}
	}
	// Index agreement: every node appears exactly once under its tag, and
	// under its value when it has content.
	for i := int32(0); i < n; i++ {
		if !containsOrd(d.tagRefs(d.c.tag[i]), i) {
			return fmt.Errorf("node %d missing from tag index", i)
		}
		if v := d.c.val[i]; v != 0 {
			if !containsOrd(d.valueRefs(v-1), i) {
				return fmt.Errorf("node %d missing from value index", i)
			}
		}
	}
	return nil
}

func containsOrd(refs []int32, ord int32) bool {
	i := sort.Search(len(refs), func(k int) bool { return refs[k] >= ord })
	return i < len(refs) && refs[i] == ord
}

// ParseFragment parses an XML fragment (a single element) into the
// preorder form SpliceOp.Frag takes. Exposed for the mutate package and
// tests.
func ParseFragment(xml string) (*xmltree.Document, error) {
	return xmltree.ParseString("#fragment", xml)
}

// TextFragment builds a single-text-node fragment carrying value; the
// mutate package inserts it when a deletion makes two text siblings
// adjacent and they must coalesce (exactly what re-parsing the serialized
// document would do).
func TextFragment(value string) *xmltree.Document {
	return &xmltree.Document{
		Name: "#fragment",
		Nodes: []xmltree.Node{{
			ID:         xmltree.NodeID{Start: 0, End: 0, Level: 0},
			Kind:       xmltree.Text,
			Tag:        xmltree.TextTag,
			Value:      value,
			Parent:     -1,
			FirstChild: -1,
		}},
	}
}
