package store

import (
	"strings"
	"testing"
)

func TestCatalogSingleDoc(t *testing.T) {
	s, id := load(t)
	c := s.Catalog()

	if got := c.RootTag(id); got != "site" {
		t.Errorf("RootTag = %q, want site", got)
	}
	if got, want := c.NodeCount(nil), s.Doc(id).Len(); got != want {
		t.Errorf("NodeCount = %d, want %d", got, want)
	}

	// Per-tag counts must agree with the tag index.
	for _, tag := range []string{"person", "bidder", "@person", "age", "#text", "missing"} {
		if got, want := c.TagCount(nil, tag), s.TagCount(id, tag); got != want {
			t.Errorf("TagCount(%s) = %d, want %d", tag, got, want)
		}
	}

	// Both <age> elements carry "30": one distinct value. The two @person
	// attributes are p0 and p1: two distinct values.
	if got := c.DistinctValues(nil, "age"); got != 1 {
		t.Errorf("DistinctValues(age) = %d, want 1", got)
	}
	if got := c.DistinctValues(nil, "@person"); got != 2 {
		t.Errorf("DistinctValues(@person) = %d, want 2", got)
	}

	// Each person has @id, name, age children.
	if got := c.AvgFanout(nil, "person"); got != 3 {
		t.Errorf("AvgFanout(person) = %g, want 3", got)
	}
	if got := c.ChildPerParent(nil, "person", "name"); got != 1 {
		t.Errorf("ChildPerParent(person,name) = %g, want 1", got)
	}
	if got := c.ChildPerParent(nil, "person", "bidder"); got != 0 {
		t.Errorf("ChildPerParent(person,bidder) = %g, want 0", got)
	}

	// Two person descendants under the single site root; one personref per
	// bidder.
	if got := c.DescPerAncestor(nil, "site", "person"); got != 2 {
		t.Errorf("DescPerAncestor(site,person) = %g, want 2", got)
	}
	if got := c.DescPerAncestor(nil, "bidder", "personref"); got != 1 {
		t.Errorf("DescPerAncestor(bidder,personref) = %g, want 1", got)
	}
	if got := c.DescPerAncestor(nil, "person", "bidder"); got != 0 {
		t.Errorf("DescPerAncestor(person,bidder) = %g, want 0", got)
	}

	// Depth must match the deepest tag's level bound.
	text := c.Tag(id, "#text")
	if got := c.Depth(nil); int32(got) != text.MaxLevel {
		t.Errorf("Depth = %d, want %d (#text MaxLevel)", got, text.MaxLevel)
	}
	person := c.Tag(id, "person")
	if person.MinLevel != person.MaxLevel {
		t.Errorf("person levels = [%d,%d], want a single level", person.MinLevel, person.MaxLevel)
	}
}

func TestCatalogMultiDoc(t *testing.T) {
	s, id1 := load(t)
	id2, err := s.LoadXML("second.xml", strings.NewReader(
		`<site><people><person id="p9"><name>Eve</name></person></people></site>`))
	if err != nil {
		t.Fatalf("LoadXML: %v", err)
	}
	c := s.Catalog()

	// nil scope sums across both documents; explicit scopes isolate them.
	if got := c.TagCount(nil, "person"); got != 3 {
		t.Errorf("TagCount(all, person) = %d, want 3", got)
	}
	if got := c.TagCount([]DocID{id1}, "person"); got != 2 {
		t.Errorf("TagCount(doc1, person) = %d, want 2", got)
	}
	if got := c.TagCount([]DocID{id2}, "person"); got != 1 {
		t.Errorf("TagCount(doc2, person) = %d, want 1", got)
	}

	// doc2 persons have two children (@id, name): pooled fanout (6+2)/3.
	if got, want := c.AvgFanout(nil, "person"), float64(8)/3; got != want {
		t.Errorf("AvgFanout(all, person) = %g, want %g", got, want)
	}
	if got := c.AvgFanout([]DocID{id2}, "person"); got != 2 {
		t.Errorf("AvgFanout(doc2, person) = %g, want 2", got)
	}
	if got := c.ChildPerParent([]DocID{id2}, "person", "age"); got != 0 {
		t.Errorf("ChildPerParent(doc2, person, age) = %g, want 0", got)
	}

	if got := len(c.Docs()); got != 2 {
		t.Errorf("Docs = %d entries, want 2", got)
	}
}
