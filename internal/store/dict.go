package store

import (
	"sync"
	"sync/atomic"
)

// dict is an interned string dictionary: a bijection between strings and
// dense uint32 IDs. One dictionary instance serves one shard's tag (or
// value) namespace — every tag/value column of the shard's documents holds
// IDs of the shard dictionary, so equal strings are stored once and
// compared as integers.
//
// Reads are lock-free: the current (strs, idx) pair is published through
// an atomic pointer and never mutated after publication. Interning — which
// happens only while loading a document — builds the next version under a
// mutex and swaps it in, exactly like the store's document directory. The
// strs backing array is append-grown in place, which is safe because a
// published version never reads past its own length and the pointer swap
// orders the appends before any reader that can see the new length.
type dict struct {
	mu sync.Mutex
	v  atomic.Pointer[dictV]
}

// dictV is one immutable published version of the dictionary.
type dictV struct {
	// strs maps ID -> string.
	strs []string
	// idx maps string -> ID.
	idx map[string]uint32
}

var emptyDictV = &dictV{idx: map[string]uint32{}}

func newDict() *dict {
	d := &dict{}
	d.v.Store(emptyDictV)
	return d
}

// newFrozenDict returns a dictionary pre-populated with strs (ID i maps to
// strs[i]); used when opening a snapshot, where the string data are views
// into the mapped file and only the lookup index lives on the heap.
func newFrozenDict(strs []string) *dict {
	idx := make(map[string]uint32, len(strs))
	for i, s := range strs {
		idx[s] = uint32(i)
	}
	d := &dict{}
	d.v.Store(&dictV{strs: strs, idx: idx})
	return d
}

// lookup resolves a string to its ID without locking.
func (d *dict) lookup(s string) (uint32, bool) {
	id, ok := d.v.Load().idx[s]
	return id, ok
}

// str resolves an ID to its string without locking.
func (d *dict) str(id uint32) string { return d.v.Load().strs[id] }

// size returns the number of interned strings.
func (d *dict) size() int { return len(d.v.Load().strs) }

// internAll interns every string of local (a document-local string table,
// deduplicated by the caller) and returns the global ID of each, aligned
// with local. A single published-version rebuild covers the whole batch,
// so a load pays one map copy regardless of document size.
func (d *dict) internAll(local []string) []uint32 {
	out := make([]uint32, len(local))
	d.mu.Lock()
	defer d.mu.Unlock()
	cur := d.v.Load()
	missing := 0
	for _, s := range local {
		if _, ok := cur.idx[s]; !ok {
			missing++
		}
	}
	if missing == 0 {
		for i, s := range local {
			out[i] = cur.idx[s]
		}
		return out
	}
	next := &dictV{
		strs: append(cur.strs[:len(cur.strs):len(cur.strs)], make([]string, 0, missing)...),
		idx:  make(map[string]uint32, len(cur.idx)+missing),
	}
	for k, v := range cur.idx {
		next.idx[k] = v
	}
	for i, s := range local {
		id, ok := next.idx[s]
		if !ok {
			id = uint32(len(next.strs))
			next.strs = append(next.strs, s)
			next.idx[s] = id
		}
		out[i] = id
	}
	d.v.Store(next)
	return out
}
