package store

// This file implements the store half of the MVCC update subsystem: the
// subtree splice primitive and the versioned commit.
//
// A splice is the one structural edit every update reduces to: under a
// parent element P, delete a contiguous run of whole sibling subtrees
// [At, DelEnd) and/or insert one fragment subtree at position At. Because
// the paper's interval node IDs make every structural relation a pure
// function of (start, end, level), the spliced document is computed by
// column arithmetic — survivors before the splice point keep their
// ordinals, survivors after it shift by (inserted − deleted), ancestor
// intervals stretch or shrink by the same amount, and levels never change
// for survivors. Nothing is edited in place: BuildSplice produces a fresh
// *Doc (a new version) and Commit swaps the copy-on-write directory entry,
// so readers pinned on the old version keep a consistent view to
// completion while writers never wait for them.
//
// The tag/value postings indexes are maintained incrementally: for every
// dictionary ID, the new postings list is the concatenation of the
// unshifted prefix (< At), the fragment's ordinals ([At, At+m)), and the
// shifted suffix (>= DelEnd) — a merge, never a rebuild from the columns.
// The statistics catalog is maintained by delta counts: each deleted and
// inserted node adjusts its tag cardinality, its parent pair and its
// distinct-ancestor pairs by ±1; only the level bounds and distinct-value
// counts of the touched tags are rescanned (they are extrema, not sums).
//
// One invariant keeps the arithmetic exact: a splice must not change the
// concatenated text content of the parent P. Deleting an element between
// two text siblings therefore extends the deletion to both texts and
// re-inserts one merged text node (the mutate package does this), which is
// also exactly what re-parsing the serialized document would produce.

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"

	"tlc/internal/faultinject"
	"tlc/internal/xmltree"
)

// Typed mutation errors.
var (
	// ErrVersionConflict reports a commit whose base document version was
	// superseded by a concurrent commit; the caller must re-read and retry.
	ErrVersionConflict = errors.New("store: stale document version")
	// ErrConcurrentMutation reports an operation that cannot run while
	// writers are in flight (LoadSnapshot).
	ErrConcurrentMutation = errors.New("store: concurrent mutation in flight")
	// ErrDurability reports a commit vetoed because its write-ahead log
	// record could not be persisted; the store is unchanged.
	ErrDurability = errors.New("store: durable log write failed")
	// ErrBadSplice reports a structurally invalid splice specification.
	ErrBadSplice = errors.New("store: invalid splice")
	// ErrSpliceContent reports a splice that would change the concatenated
	// text content of the parent element, which the incremental index and
	// statistics maintenance rely on being invariant.
	ErrSpliceContent = errors.New("store: splice changes parent text content")
)

// SpliceOp is one structural edit of a document: under the element at
// ordinal Parent, delete the sibling subtrees covering ordinals
// [At, DelEnd) and insert Frag (a single-rooted fragment) at position At.
// DelEnd == At deletes nothing (pure insert); Frag == nil inserts nothing
// (pure delete); both at once is a replace.
type SpliceOp struct {
	// Parent is the ordinal of the element the edit happens under.
	Parent int32
	// At is the splice position: the ordinal of the first deleted node,
	// and the ordinal the fragment root lands on. It must be a child
	// boundary of Parent (the start of a child subtree, or end(Parent)+1
	// to append after the last child).
	At int32
	// DelEnd is the exclusive end of the deleted ordinal range. The range
	// [At, DelEnd) must cover whole sibling subtrees of Parent.
	DelEnd int32
	// Frag is the fragment to insert, in parsed preorder form; its root
	// becomes a child of Parent at position At. Levels in the fragment are
	// relative (root at 0). Nil for a pure delete.
	Frag *xmltree.Document
}

// SpliceResult summarizes a built splice.
type SpliceResult struct {
	// NodesRemoved and NodesAdded count the deleted range and the
	// fragment.
	NodesRemoved, NodesAdded int
	// StatsDeltas counts the individual ±1 adjustments applied to the
	// statistics catalog (tag cardinalities, child pairs, ancestor pairs).
	StatsDeltas int
}

// BuildSplice computes the new version of document d produced by op. The
// input document is not modified; the result is a fresh *Doc with
// version d.Version()+1 that shares d's dictionaries. The heavy work runs
// outside every lock — pass the result to Commit to publish it.
func (s *Store) BuildSplice(d *Doc, op SpliceOp) (*Doc, SpliceResult, error) {
	var res SpliceResult
	n := int32(d.Len())
	P, d0, d1 := op.Parent, op.At, op.DelEnd
	if P < 0 || P >= n || xmltree.Kind(d.c.kind[P]) != xmltree.Element {
		return nil, res, fmt.Errorf("%w: parent %d is not an element", ErrBadSplice, P)
	}
	limit := d.c.end[P] + 1
	if d0 <= P || d0 > limit || d1 < d0 || d1 > limit {
		return nil, res, fmt.Errorf("%w: range [%d, %d) outside parent %d", ErrBadSplice, d0, d1, P)
	}
	if d0 <= d.c.end[P] && d.c.parent[d0] != P {
		return nil, res, fmt.Errorf("%w: position %d is not a child boundary of %d", ErrBadSplice, d0, P)
	}
	for c := d0; c < d1; {
		if d.c.parent[c] != P {
			return nil, res, fmt.Errorf("%w: node %d is not a child of %d", ErrBadSplice, c, P)
		}
		c = d.c.end[c] + 1
		if c > d1 {
			return nil, res, fmt.Errorf("%w: range [%d, %d) splits a subtree", ErrBadSplice, d0, d1)
		}
	}
	var m int32
	if op.Frag != nil {
		if err := op.Frag.Validate(); err != nil {
			return nil, res, fmt.Errorf("%w: fragment: %v", ErrBadSplice, err)
		}
		m = int32(len(op.Frag.Nodes))
	}
	if m == 0 && d1 == d0 {
		return nil, res, fmt.Errorf("%w: empty splice", ErrBadSplice)
	}

	delN := d1 - d0
	shift := m - delN
	n2 := n + shift
	res.NodesRemoved, res.NodesAdded = int(delN), int(m)

	// Ancestors of the splice point (P and up): the only survivors before
	// At whose interval ends move.
	isAnc := make([]bool, d0)
	for a := P; a >= 0; a = d.c.parent[a] {
		isAnc[a] = true
	}

	nd := &Doc{
		name:  d.name,
		id:    d.id,
		shard: d.shard,
		c: cols{
			start:      make([]int32, n2),
			end:        make([]int32, n2),
			level:      make([]int32, n2),
			parent:     make([]int32, n2),
			firstChild: make([]int32, n2),
			kind:       make([]uint8, n2),
			tag:        make([]uint32, n2),
			val:        make([]uint32, n2),
		},
		tags:    d.tags,
		vals:    d.vals,
		version: d.version + 1,
	}

	// Prefix: ordinals below the splice point are stable; only ancestor
	// interval ends (and ends at or past the deleted range) move.
	for j := int32(0); j < d0; j++ {
		e := d.c.end[j]
		if isAnc[j] || e >= d1 {
			e += shift
		}
		nd.c.start[j] = j
		nd.c.end[j] = e
		nd.c.level[j] = d.c.level[j]
		nd.c.parent[j] = d.c.parent[j]
		nd.c.kind[j] = d.c.kind[j]
		nd.c.tag[j] = d.c.tag[j]
		nd.c.val[j] = d.c.val[j]
	}

	// Fragment: local preorder shifted to [At, At+m), levels rebased under
	// P, strings interned into the document's dictionaries.
	if m > 0 {
		var localTags, localVals []string
		localTagIdx := make(map[string]uint32)
		localValIdx := make(map[string]uint32)
		fragTag := make([]uint32, m)
		fragVal := make([]uint32, m) // local ID + 1; 0 = no content
		for k := int32(0); k < m; k++ {
			fn := &op.Frag.Nodes[k]
			lt, ok := localTagIdx[fn.Tag]
			if !ok {
				lt = uint32(len(localTags))
				localTags = append(localTags, fn.Tag)
				localTagIdx[fn.Tag] = lt
			}
			fragTag[k] = lt
			content, hasContent := "", false
			switch fn.Kind {
			case xmltree.Attribute, xmltree.Text:
				content, hasContent = fn.Value, true
			case xmltree.Element:
				if c := op.Frag.Content(k); c != "" {
					content, hasContent = c, true
				}
			}
			if hasContent {
				lv, ok := localValIdx[content]
				if !ok {
					lv = uint32(len(localVals))
					localVals = append(localVals, content)
					localValIdx[content] = lv
				}
				fragVal[k] = lv + 1
			}
		}
		gTag := d.tags.internAll(localTags)
		gVal := d.vals.internAll(localVals)
		baseLevel := d.c.level[P] + 1
		for k := int32(0); k < m; k++ {
			fn := &op.Frag.Nodes[k]
			j := d0 + k
			nd.c.start[j] = j
			nd.c.end[j] = fn.ID.End + d0
			nd.c.level[j] = fn.ID.Level + baseLevel
			if fn.Parent < 0 {
				nd.c.parent[j] = P
			} else {
				nd.c.parent[j] = fn.Parent + d0
			}
			nd.c.kind[j] = uint8(fn.Kind)
			nd.c.tag[j] = gTag[fragTag[k]]
			if v := fragVal[k]; v != 0 {
				nd.c.val[j] = gVal[v-1] + 1
			}
		}
	}

	// Suffix: everything at or past the deleted range shifts as a block.
	for j := d1; j < n; j++ {
		j2 := j + shift
		pp := d.c.parent[j]
		if pp >= d1 {
			pp += shift
		}
		nd.c.start[j2] = j2
		nd.c.end[j2] = d.c.end[j] + shift
		nd.c.level[j2] = d.c.level[j]
		nd.c.parent[j2] = pp
		nd.c.kind[j2] = d.c.kind[j]
		nd.c.tag[j2] = d.c.tag[j]
		nd.c.val[j2] = d.c.val[j]
	}

	// firstChild is derivable in preorder: the first child of any interior
	// node is the next ordinal.
	for i := int32(0); i < n2; i++ {
		if nd.c.end[i] > i {
			nd.c.firstChild[i] = i + 1
		} else {
			nd.c.firstChild[i] = -1
		}
	}

	// The parent-content invariant: P's element content (the concatenation
	// of its direct text children) must be unchanged, or the interned val
	// column and the value index entries for P would be stale.
	if textConcat(&nd.c, nd.vals, P) != textConcat(&d.c, d.vals, P) {
		return nil, res, fmt.Errorf("%w: parent %d", ErrSpliceContent, P)
	}

	// Incremental index maintenance: merge, never rebuild.
	nd.tagDir, nd.tagPost = spliceIndex(d.tagDir, d.tagPost, nd.c.tag, 0, d0, d1, m, shift)
	nd.valDir, nd.valPost = spliceIndex(d.valDir, d.valPost, nd.c.val, 1, d0, d1, m, shift)

	// Incremental statistics: delta counts against the old catalog.
	if err := faultinject.Hit(faultinject.PointMutateStatsDelta); err != nil {
		return nil, res, err
	}
	nd.stats, res.StatsDeltas = spliceStats(d, nd, d0, d1, m)
	return nd, res, nil
}

// textConcat returns the concatenated direct text children of p.
func textConcat(c *cols, vals *dict, p int32) string {
	fc := c.firstChild[p]
	if fc < 0 {
		return ""
	}
	var sb strings.Builder
	for ch := fc; ch <= c.end[p]; ch = c.end[ch] + 1 {
		if xmltree.Kind(c.kind[ch]) == xmltree.Text {
			sb.WriteString(vals.str(c.val[ch] - 1))
		}
	}
	return sb.String()
}

// spliceIndex produces the postings index of the spliced document from
// the old index and the new column. For every dictionary ID the new list
// is prefix (old ordinals < d0, unshifted) ++ fragment ordinals
// ([d0, d0+m), read from the new column) ++ suffix (old ordinals >= d1,
// shifted) — each part is already sorted and the parts are disjoint
// ascending ranges, so the merge is pure concatenation. Directory entries
// that end up empty are dropped, exactly as a fresh build would never
// create them.
func spliceIndex(oldDir []dirEntry, oldPost []int32, newCol []uint32, bias uint32, d0, d1, m, shift int32) ([]dirEntry, []int32) {
	frag := make(map[uint32][]int32)
	var fragIDs []uint32
	for k := int32(0); k < m; k++ {
		v := newCol[d0+k]
		if v < bias {
			continue // val column: 0 means "no content"
		}
		id := v - bias
		if _, ok := frag[id]; !ok {
			fragIDs = append(fragIDs, id)
		}
		frag[id] = append(frag[id], d0+k)
	}
	sort.Slice(fragIDs, func(i, j int) bool { return fragIDs[i] < fragIDs[j] })

	dir := make([]dirEntry, 0, len(oldDir)+len(fragIDs))
	post := make([]int32, 0, len(oldPost)+int(m))
	emit := func(id uint32, pre, ins, suf []int32) {
		total := len(pre) + len(ins) + len(suf)
		if total == 0 {
			return
		}
		dir = append(dir, dirEntry{id: id, off: uint32(len(post)), n: uint32(total)})
		post = append(post, pre...)
		post = append(post, ins...)
		for _, r := range suf {
			post = append(post, r+shift)
		}
	}
	i, j := 0, 0
	for i < len(oldDir) || j < len(fragIDs) {
		switch {
		case j >= len(fragIDs) || (i < len(oldDir) && oldDir[i].id < fragIDs[j]):
			e := oldDir[i]
			refs := oldPost[e.off : e.off+e.n]
			lo := sort.Search(len(refs), func(k int) bool { return refs[k] >= d0 })
			hi := sort.Search(len(refs), func(k int) bool { return refs[k] >= d1 })
			emit(e.id, refs[:lo], nil, refs[hi:])
			i++
		case i >= len(oldDir) || oldDir[i].id > fragIDs[j]:
			emit(fragIDs[j], nil, frag[fragIDs[j]], nil)
			j++
		default:
			e := oldDir[i]
			refs := oldPost[e.off : e.off+e.n]
			lo := sort.Search(len(refs), func(k int) bool { return refs[k] >= d0 })
			hi := sort.Search(len(refs), func(k int) bool { return refs[k] >= d1 })
			emit(e.id, refs[:lo], frag[e.id], refs[hi:])
			i++
			j++
		}
	}
	return dir, post
}

// spliceStats produces the spliced document's catalog from the old one by
// delta counts: every deleted node subtracts, every inserted node adds,
// its tag cardinality, its (parentTag, tag) child pair, its parent tag's
// child total, and one (ancestorTag, tag) pair per distinct ancestor tag.
// Level bounds and distinct-value counts are extrema, not sums, so they
// are rescanned — but only over the postings of the touched tags. The
// second result counts the individual adjustments applied.
func spliceStats(old, nd *Doc, d0, d1, m int32) (*docStats, int) {
	os := old.stats
	st := &docStats{
		rootTag: os.rootTag,
		nodes:   os.nodes + int(m) - int(d1-d0),
		depth:   os.depth,
		tags:    make(map[uint32]TagStats, len(os.tags)),
		child:   make(map[idPair]int, len(os.child)),
		desc:    make(map[idPair]int, len(os.desc)),
	}
	for k, v := range os.tags {
		st.tags[k] = v
	}
	for k, v := range os.child {
		st.child[k] = v
	}
	for k, v := range os.desc {
		st.desc[k] = v
	}

	deltas := 0
	affected := make(map[uint32]bool)
	seen := make([]uint32, 0, 16)
	apply := func(c *cols, i int32, sign int) {
		tag := c.tag[i]
		affected[tag] = true
		ts := st.tags[tag]
		ts.Count += sign
		st.tags[tag] = ts
		deltas++
		p := c.parent[i] // never -1: the root cannot be spliced out
		ptag := c.tag[p]
		st.child[idPair{ptag, tag}] += sign
		pts := st.tags[ptag]
		pts.Children += sign
		st.tags[ptag] = pts
		deltas += 2
		seen = seen[:0]
		for a := p; a >= 0; a = c.parent[a] {
			atag := c.tag[a]
			dup := false
			for _, s := range seen {
				if s == atag {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			seen = append(seen, atag)
			st.desc[idPair{atag, tag}] += sign
			deltas++
		}
	}
	for i := d0; i < d1; i++ {
		apply(&old.c, i, -1)
	}
	for k := int32(0); k < m; k++ {
		apply(&nd.c, d0+k, +1)
	}

	// Extrema and distinct counts of the touched tags, from the already
	// spliced index.
	for t := range affected {
		refs := nd.tagRefs(t)
		if len(refs) == 0 {
			delete(st.tags, t)
			continue
		}
		ts := st.tags[t]
		minL, maxL := nd.c.level[refs[0]], nd.c.level[refs[0]]
		distinct := make(map[uint32]struct{})
		for _, r := range refs {
			if l := nd.c.level[r]; l < minL {
				minL = l
			}
			if l := nd.c.level[r]; l > maxL {
				maxL = l
			}
			if v := nd.c.val[r]; v != 0 {
				distinct[v] = struct{}{}
			}
		}
		ts.MinLevel, ts.MaxLevel = minL, maxL
		ts.Distinct = len(distinct)
		st.tags[t] = ts
	}
	depth := int32(0)
	for _, ts := range st.tags {
		if ts.MaxLevel > depth {
			depth = ts.MaxLevel
		}
	}
	st.depth = depth
	for k, v := range st.child {
		if v <= 0 {
			delete(st.child, k)
		}
	}
	for k, v := range st.desc {
		if v <= 0 {
			delete(st.desc, k)
		}
	}
	return st, deltas
}

// Commit publishes nd as the new version of old: the directory entry is
// swapped copy-on-write under the same lock document loads use, after
// verifying old is still the current version (pointer identity — the
// optimistic concurrency check). On conflict the store is unchanged and
// ErrVersionConflict is returned; the caller re-reads and retries or
// surfaces the conflict. Readers that resolved the document before the
// swap — or pinned the directory — keep the old version until they finish;
// its memory is reclaimed by the garbage collector once the last reader
// drops it (VersionsLive watches this via a finalizer).
//
// A commit does not bump the owning shard's load generation: loads and
// mutations invalidate differently (per-shard vs per-document), and the
// plan cache checks document versions for exactly this reason.
func (s *Store) Commit(old, nd *Doc) error {
	return s.CommitLogged(old, nd, nil)
}

// CommitLogged is Commit plus the write-ahead step: when a commit hook is
// installed (SetCommitLog) and payload is non-nil, the hook runs after the
// conflict check and before the directory swap, with the sequence number
// this commit will publish. A hook failure aborts the commit with
// ErrDurability and the store unchanged — an update is never visible to
// readers unless its log record was accepted first.
func (s *Store) CommitLogged(old, nd *Doc, payload []byte) error {
	if s.pinned {
		return fmt.Errorf("store: commit into a pinned (read-only) view")
	}
	if err := faultinject.Hit(faultinject.PointMutateCommit); err != nil {
		return err
	}
	s.loadMu.Lock()
	defer s.loadMu.Unlock()
	cur := s.dir.Load()
	if int(old.id) >= len(cur.docs) || cur.docs[old.id] != old {
		return fmt.Errorf("store: document %q: %w", old.name, ErrVersionConflict)
	}
	if fn := s.commitLog.Load(); fn != nil && payload != nil {
		if err := (*fn)(s.updateGen.Load()+1, payload); err != nil {
			return fmt.Errorf("%w: document %q: %w", ErrDurability, old.name, err)
		}
	}
	next := &directory{
		docs:   make([]*Doc, len(cur.docs)),
		byName: cur.byName, // names and IDs are untouched by a commit
	}
	copy(next.docs, cur.docs)
	next.docs[old.id] = nd
	s.dir.Store(next)
	s.updateGen.Add(1)
	s.superseded.Add(1)
	runtime.SetFinalizer(old, func(*Doc) { s.superseded.Add(-1) })
	return nil
}
