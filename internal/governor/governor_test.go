package governor

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestNewZeroLimitsIsNil(t *testing.T) {
	if g := New(Limits{}); g != nil {
		t.Fatalf("New(zero) = %v, want nil", g)
	}
}

func TestNilGovernorPermitsEverything(t *testing.T) {
	var g *Governor
	if err := g.AddAlloc(1<<40, 1<<50); err != nil {
		t.Errorf("nil AddAlloc = %v", err)
	}
	if err := g.CheckCard(1 << 30); err != nil {
		t.Errorf("nil CheckCard = %v", err)
	}
	if err := g.Check(); err != nil {
		t.Errorf("nil Check = %v", err)
	}
	if err := g.Err(); err != nil {
		t.Errorf("nil Err = %v", err)
	}
}

func TestAddAllocNodeBudget(t *testing.T) {
	g := New(Limits{MaxArenaNodes: 1000})
	if err := g.AddAlloc(512, 1); err != nil {
		t.Fatalf("first slab: %v", err)
	}
	err := g.AddAlloc(512, 1)
	var be *ErrBudgetExceeded
	if !errors.As(err, &be) {
		t.Fatalf("second slab err = %v, want *ErrBudgetExceeded", err)
	}
	if be.Resource != ResourceNodes || be.Limit != 1000 || be.Observed != 1024 {
		t.Errorf("got %+v", be)
	}
	// The kill is latched: every later check fails identically.
	if err := g.CheckCard(0); !errors.As(err, &be) {
		t.Errorf("CheckCard after kill = %v", err)
	}
	if err := g.Check(); !errors.As(err, &be) {
		t.Errorf("Check after kill = %v", err)
	}
}

func TestAddAllocByteBudget(t *testing.T) {
	g := New(Limits{MaxArenaBytes: 100})
	err := g.AddAlloc(1, 101)
	var be *ErrBudgetExceeded
	if !errors.As(err, &be) || be.Resource != ResourceBytes {
		t.Fatalf("err = %v, want byte budget", err)
	}
}

func TestCheckCard(t *testing.T) {
	g := New(Limits{MaxResultCard: 10})
	if err := g.CheckCard(10); err != nil {
		t.Fatalf("at limit: %v", err)
	}
	err := g.CheckCard(11)
	var be *ErrBudgetExceeded
	if !errors.As(err, &be) || be.Resource != ResourceCardinality {
		t.Fatalf("err = %v, want cardinality budget", err)
	}
}

func TestWallBudget(t *testing.T) {
	g := New(Limits{MaxWall: time.Nanosecond})
	time.Sleep(time.Millisecond)
	err := g.Check()
	var be *ErrBudgetExceeded
	if !errors.As(err, &be) || be.Resource != ResourceWall {
		t.Fatalf("err = %v, want wall budget", err)
	}
}

func TestFirstKillWinsUnderConcurrency(t *testing.T) {
	g := New(Limits{MaxResultCard: 1})
	var wg sync.WaitGroup
	errs := make([]error, 16)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = g.CheckCard(2 + i)
		}(i)
	}
	wg.Wait()
	var first *ErrBudgetExceeded
	if !errors.As(errs[0], &first) {
		t.Fatalf("errs[0] = %v", errs[0])
	}
	for i, err := range errs {
		var be *ErrBudgetExceeded
		if !errors.As(err, &be) {
			t.Fatalf("errs[%d] = %v", i, err)
		}
		if be != first {
			t.Errorf("errs[%d] latched a different kill: %v vs %v", i, be, first)
		}
	}
}

func TestContextRoundTrip(t *testing.T) {
	g := New(Limits{MaxResultCard: 1})
	ctx := WithContext(context.Background(), g)
	if got := FromContext(ctx); got != g {
		t.Fatalf("FromContext = %v, want %v", got, g)
	}
	if got := FromContext(context.Background()); got != nil {
		t.Fatalf("FromContext(empty) = %v, want nil", got)
	}
	// Poll on an ungoverned context is free and nil.
	if err := Poll(context.Background()); err != nil {
		t.Fatalf("Poll(empty) = %v", err)
	}
}

func TestAbortRoundTrip(t *testing.T) {
	want := &ErrBudgetExceeded{Resource: ResourceNodes, Limit: 1, Observed: 2}
	defer func() {
		r := recover()
		err, ok := AbortError(r)
		if !ok {
			t.Fatalf("AbortError(%v) not an abort", r)
		}
		if !errors.Is(err, want) {
			t.Errorf("unwrapped %v, want %v", err, want)
		}
		if _, ok := AbortError("ordinary panic"); ok {
			t.Error("AbortError claimed an ordinary panic value")
		}
	}()
	Abort(want)
}

func TestErrorStrings(t *testing.T) {
	e := &ErrBudgetExceeded{Resource: ResourceNodes, Limit: 10, Observed: 20}
	if e.Error() == "" {
		t.Error("empty error string")
	}
	w := &ErrBudgetExceeded{Resource: ResourceWall, Limit: int64(time.Second), Observed: int64(2 * time.Second)}
	if want := "2s"; !contains(w.Error(), want) {
		t.Errorf("wall error %q does not mention %q", w.Error(), want)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestKillTotalsCount(t *testing.T) {
	before := KillTotals()[ResourceCardinality]
	g := New(Limits{MaxResultCard: 1})
	g.CheckCard(5)
	g.CheckCard(6) // latched, must not double-count
	if got := KillTotals()[ResourceCardinality]; got != before+1 {
		t.Errorf("kill total = %d, want %d", got, before+1)
	}
}
