// Package governor enforces per-query resource budgets. A Governor is
// created per query run and threaded to the places where runaway queries
// actually spend resources: witness-node arena slab allocation (memory),
// the physical operators' PollStride checkpoints (wall time, piggybacking
// on the existing cancellation polls), and the evaluator's per-operator
// output check (intermediate sequence cardinality). Exceeding any budget
// aborts that query only, with a typed *ErrBudgetExceeded the service
// layer maps to a 422 — the process and every other in-flight query keep
// running.
//
// The package is a dependency leaf (standard library only) so that seq,
// physical, algebra, nav, tlc and service can all import it without
// cycles. The Governor travels in the context.Context of the evaluation,
// which keeps every existing function signature intact.
package governor

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"
)

// Resource names a budgeted resource in ErrBudgetExceeded and in the
// process-wide kill counters.
type Resource string

// Budgeted resources.
const (
	// ResourceNodes is the number of witness nodes drawn from the run's
	// arena (slab-granular: enforced when a new slab is allocated).
	ResourceNodes Resource = "arena_nodes"
	// ResourceBytes is the arena memory in bytes backing those nodes.
	ResourceBytes Resource = "arena_bytes"
	// ResourceCardinality is the cardinality of any intermediate operator
	// output sequence.
	ResourceCardinality Resource = "result_cardinality"
	// ResourceWall is elapsed wall-clock time since the run started.
	ResourceWall Resource = "wall_time"
)

// Resources lists every budgeted resource, in reporting order.
func Resources() []Resource {
	return []Resource{ResourceNodes, ResourceBytes, ResourceCardinality, ResourceWall}
}

// Limits is a per-query budget. Zero fields are unlimited; the zero value
// disables governance entirely (New returns nil).
type Limits struct {
	// MaxArenaNodes caps witness nodes allocated from the run's arena.
	MaxArenaNodes int64
	// MaxArenaBytes caps the arena memory backing those nodes.
	MaxArenaBytes int64
	// MaxResultCard caps the cardinality of any intermediate sequence.
	MaxResultCard int64
	// MaxWall caps elapsed evaluation wall-clock time. Unlike a context
	// deadline it surfaces as *ErrBudgetExceeded, not DeadlineExceeded —
	// "your query is over its time budget" rather than "the request timed
	// out" — so clients can tell policy from infrastructure.
	MaxWall time.Duration
}

// Enabled reports whether any budget is set.
func (l Limits) Enabled() bool { return l != Limits{} }

// ErrBudgetExceeded reports that a query went over one of its budgets.
// It aborts only the query that exceeded; the service maps it to 422.
type ErrBudgetExceeded struct {
	// Resource is the budget that was exceeded.
	Resource Resource
	// Limit is the configured budget and Observed the value that tripped it.
	Limit, Observed int64
}

func (e *ErrBudgetExceeded) Error() string {
	if e.Resource == ResourceWall {
		return fmt.Sprintf("governor: %s budget exceeded: %v > limit %v",
			e.Resource, time.Duration(e.Observed), time.Duration(e.Limit))
	}
	return fmt.Sprintf("governor: %s budget exceeded: %d > limit %d", e.Resource, e.Observed, e.Limit)
}

// Governor tracks one query's resource consumption against its Limits.
// All methods are safe for the parallel executor's worker goroutines and
// are valid (no-ops) on a nil receiver, so ungoverned runs pay a single
// nil check.
type Governor struct {
	limits Limits
	start  time.Time
	nodes  atomic.Int64
	bytes  atomic.Int64
	// killed latches the first budget error so every later check on the
	// same run fails fast with the same verdict (workers racing past the
	// first trip all abort identically).
	killed atomic.Pointer[ErrBudgetExceeded]
}

// New returns a Governor enforcing l, with the wall clock starting now.
// It returns nil — a valid, all-permitting governor — when l is zero.
func New(l Limits) *Governor {
	if !l.Enabled() {
		return nil
	}
	return &Governor{limits: l, start: time.Now()}
}

// kill records the budget violation, counts it process-wide, and returns
// the latched error (first trip wins).
func (g *Governor) kill(e *ErrBudgetExceeded) error {
	if g.killed.CompareAndSwap(nil, e) {
		countKill(e.Resource)
	}
	return g.killed.Load()
}

// Err returns the latched budget error, or nil while the query is within
// budget.
func (g *Governor) Err() error {
	if g == nil {
		return nil
	}
	if e := g.killed.Load(); e != nil {
		return e
	}
	return nil
}

// AddAlloc records an arena allocation of n nodes occupying b bytes and
// returns *ErrBudgetExceeded once the node or byte budget is exhausted.
// Called at slab granularity, so its cost is amortized over hundreds of
// node allocations.
func (g *Governor) AddAlloc(n, b int64) error {
	if g == nil {
		return nil
	}
	if e := g.killed.Load(); e != nil {
		return e
	}
	nodes := g.nodes.Add(n)
	bytes := g.bytes.Add(b)
	if g.limits.MaxArenaNodes > 0 && nodes > g.limits.MaxArenaNodes {
		return g.kill(&ErrBudgetExceeded{Resource: ResourceNodes, Limit: g.limits.MaxArenaNodes, Observed: nodes})
	}
	if g.limits.MaxArenaBytes > 0 && bytes > g.limits.MaxArenaBytes {
		return g.kill(&ErrBudgetExceeded{Resource: ResourceBytes, Limit: g.limits.MaxArenaBytes, Observed: bytes})
	}
	return nil
}

// CheckCard checks one operator output's cardinality against the budget.
func (g *Governor) CheckCard(n int) error {
	if g == nil {
		return nil
	}
	if e := g.killed.Load(); e != nil {
		return e
	}
	if g.limits.MaxResultCard > 0 && int64(n) > g.limits.MaxResultCard {
		return g.kill(&ErrBudgetExceeded{Resource: ResourceCardinality, Limit: g.limits.MaxResultCard, Observed: int64(n)})
	}
	return nil
}

// Check is the cheap periodic check run at PollStride checkpoints: it
// verifies the wall-time budget and reports any already-latched kill.
func (g *Governor) Check() error {
	if g == nil {
		return nil
	}
	if e := g.killed.Load(); e != nil {
		return e
	}
	if g.limits.MaxWall > 0 {
		if elapsed := time.Since(g.start); elapsed > g.limits.MaxWall {
			return g.kill(&ErrBudgetExceeded{Resource: ResourceWall, Limit: int64(g.limits.MaxWall), Observed: int64(elapsed)})
		}
	}
	return nil
}

// ctxKey keys the Governor in a context.Context.
type ctxKey struct{}

// WithContext returns ctx carrying g. A nil g returns ctx unchanged.
func WithContext(ctx context.Context, g *Governor) context.Context {
	if g == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, g)
}

// FromContext returns the Governor carried by ctx, or nil.
func FromContext(ctx context.Context) *Governor {
	g, _ := ctx.Value(ctxKey{}).(*Governor)
	return g
}

// Poll runs the periodic budget check for the governor carried by ctx
// (nil-safe). The physical operators' poll sites call it next to ctx.Err().
func Poll(ctx context.Context) error {
	return FromContext(ctx).Check()
}

// abort wraps a budget error for the panic-based abort path used where no
// error return exists (arena node allocation deep inside operator code).
// The recover barriers at the evaluator boundaries unwrap it back into the
// budget error; it is not an "internal panic".
type abort struct{ err error }

// Abort panics with err in a form the evaluator's recover barriers convert
// back into a plain error return.
func Abort(err error) {
	panic(abort{err: err})
}

// AbortError reports whether a recovered panic value is a governor abort,
// returning the wrapped error.
func AbortError(r any) (error, bool) {
	if a, ok := r.(abort); ok {
		return a.err, true
	}
	return nil, false
}

// Process-wide kill counters by resource, exported through /varz and the
// shell's .stats: how many queries each budget has aborted since start.
var (
	killsNodes atomic.Int64
	killsBytes atomic.Int64
	killsCard  atomic.Int64
	killsWall  atomic.Int64
)

func countKill(r Resource) {
	switch r {
	case ResourceNodes:
		killsNodes.Add(1)
	case ResourceBytes:
		killsBytes.Add(1)
	case ResourceCardinality:
		killsCard.Add(1)
	case ResourceWall:
		killsWall.Add(1)
	}
}

// KillTotals reports the process-wide budget-kill counts by resource.
func KillTotals() map[Resource]int64 {
	return map[Resource]int64{
		ResourceNodes:       killsNodes.Load(),
		ResourceBytes:       killsBytes.Load(),
		ResourceCardinality: killsCard.Load(),
		ResourceWall:        killsWall.Load(),
	}
}
