package translate

import (
	"strings"
	"testing"

	"tlc/internal/algebra"
	"tlc/internal/seq"
	"tlc/internal/store"
	"tlc/internal/xquery"
)

// testAuction is a hand-checkable auction document:
//   - Alice (p0, 30), Bob (p1, 20), Carol (p2, 40), Dave (p3, no age)
//   - a0: 6 bidders referencing p0,p2,p0,p2,p0,p2 with increases 3..8, qty 2
//   - a1: 1 bidder referencing p2, increase 1, qty 5
//   - a2: no bidders, qty 1
const testAuction = `<site>
  <people>
    <person id="p0"><name>Alice</name><age>30</age></person>
    <person id="p1"><name>Bob</name><age>20</age></person>
    <person id="p2"><name>Carol</name><age>40</age></person>
    <person id="p3"><name>Dave</name></person>
  </people>
  <open_auctions>
    <open_auction id="a0">
      <bidder><personref person="p0"/><increase>3</increase></bidder>
      <bidder><personref person="p2"/><increase>4</increase></bidder>
      <bidder><personref person="p0"/><increase>5</increase></bidder>
      <bidder><personref person="p2"/><increase>6</increase></bidder>
      <bidder><personref person="p0"/><increase>7</increase></bidder>
      <bidder><personref person="p2"/><increase>8</increase></bidder>
      <quantity>2</quantity>
    </open_auction>
    <open_auction id="a1">
      <bidder><personref person="p2"/><increase>1</increase></bidder>
      <quantity>5</quantity>
    </open_auction>
    <open_auction id="a2">
      <quantity>1</quantity>
    </open_auction>
  </open_auctions>
</site>`

const q1Text = `
FOR $p IN document("auction.xml")//person
FOR $o IN document("auction.xml")//open_auction
WHERE count($o/bidder) > 5 AND $p/age > 25
  AND $p/@id = $o/bidder//@person
RETURN
<person name={$p/name/text()}> $o/bidder </person>`

const q2Text = `
FOR $p IN document("auction.xml")//person
LET $a := FOR $o IN document("auction.xml")//open_auction
          WHERE count($o/bidder) > 5
            AND $p/@id = $o/bidder//@person
          RETURN <myauction> {$o/bidder}
                   <myquan>{$o/quantity/text()}</myquan>
                 </myauction>
WHERE $p/age > 25
  AND EVERY $i IN $a/myquan SATISFIES $i > 1
RETURN
<person name={$p/name/text()}>{$a/bidder}</person>`

func loadStore(t *testing.T) *store.Store {
	t.Helper()
	s := store.New()
	if _, err := s.LoadXML("auction.xml", strings.NewReader(testAuction)); err != nil {
		t.Fatal(err)
	}
	return s
}

func run(t *testing.T, s *store.Store, query string) seq.Seq {
	t.Helper()
	ast, err := xquery.Parse(query)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res, err := Translate(ast)
	if err != nil {
		t.Fatalf("translate: %v", err)
	}
	out, err := algebra.Run(s, res.Plan)
	if err != nil {
		t.Fatalf("eval: %v\nplan:\n%s", err, algebra.Explain(res.Plan))
	}
	return out
}

func TestQ1EndToEnd(t *testing.T) {
	s := loadStore(t)
	out := run(t, s, q1Text)
	// Only a0 has >5 bidders; its bidders reference p0 and p2; both Alice
	// (30) and Carol (40) pass age>25.
	if len(out) != 2 {
		t.Fatalf("Q1 produced %d trees, want 2:\n%s", len(out), out.XML(s))
	}
	xml := out.XML(s)
	if !strings.Contains(xml, `<person name="Alice">`) || !strings.Contains(xml, `<person name="Carol">`) {
		t.Errorf("Q1 output missing persons:\n%s", xml)
	}
	// Every result carries all six bidder subtrees of a0.
	for _, w := range out {
		if got := strings.Count(w.XML(s), "<bidder>"); got != 6 {
			t.Errorf("result has %d bidders, want 6:\n%s", got, w.XML(s))
		}
	}
}

func TestQ1PlanShape(t *testing.T) {
	ast, err := xquery.Parse(q1Text)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Translate(ast)
	if err != nil {
		t.Fatal(err)
	}
	plan := algebra.Explain(res.Plan)
	// The Figure 7 plan shape: Construct on top of extension Selects on
	// NodeIDDE on Project on a value Join of two document Selects, with an
	// Aggregate/Filter pair spliced above the auction Select.
	for _, want := range []string{
		"Construct", "NodeIDDE", "Project", "Join: (", "Aggregate: count",
		"Filter: ALO", "doc_root(auction.xml)", "class(",
	} {
		if !strings.Contains(plan, want) {
			t.Errorf("plan missing %q:\n%s", want, plan)
		}
	}
	// Two document selects (person, open_auction) and two extension
	// selects (name, bidder).
	if got := strings.Count(plan, "Select"); got != 4 {
		t.Errorf("plan has %d Selects, want 4:\n%s", got, plan)
	}
}

func TestQ2EndToEnd(t *testing.T) {
	s := loadStore(t)
	out := run(t, s, q2Text)
	// Same survivors as Q1 (myquan = 2 > 1 passes EVERY).
	if len(out) != 2 {
		t.Fatalf("Q2 produced %d trees, want 2:\n%s", len(out), out.XML(s))
	}
	xml := out.XML(s)
	if !strings.Contains(xml, `<person name="Alice">`) || !strings.Contains(xml, `<person name="Carol">`) {
		t.Errorf("Q2 output missing persons:\n%s", xml)
	}
	for _, w := range out {
		if got := strings.Count(w.XML(s), "<bidder>"); got != 6 {
			t.Errorf("Q2 result has %d bidders, want 6:\n%s", got, w.XML(s))
		}
	}
}

func TestQ2EveryFiltersAll(t *testing.T) {
	s := loadStore(t)
	// Tighten the EVERY condition so myquan=2 fails: no results.
	q := strings.Replace(q2Text, "SATISFIES $i > 1", "SATISFIES $i > 3", 1)
	out := run(t, s, q)
	if len(out) != 0 {
		t.Fatalf("strict EVERY produced %d trees, want 0:\n%s", len(out), out.XML(s))
	}
}

func TestSimpleFor(t *testing.T) {
	s := loadStore(t)
	out := run(t, s, `FOR $p IN document("auction.xml")//person RETURN $p/name`)
	if len(out) != 4 {
		t.Fatalf("%d trees, want 4", len(out))
	}
	xml := out.XML(s)
	for _, name := range []string{"Alice", "Bob", "Carol", "Dave"} {
		if !strings.Contains(xml, "<name>"+name+"</name>") {
			t.Errorf("missing %s:\n%s", name, xml)
		}
	}
}

func TestSimplePredicate(t *testing.T) {
	s := loadStore(t)
	out := run(t, s, `FOR $p IN document("auction.xml")//person
		WHERE $p/age > 25
		RETURN $p/name/text()`)
	if len(out) != 2 {
		t.Fatalf("%d trees, want 2 (Alice, Carol)", len(out))
	}
}

func TestEqualityPredicate(t *testing.T) {
	s := loadStore(t)
	out := run(t, s, `FOR $p IN document("auction.xml")//person
		WHERE $p/@id = "p1"
		RETURN <hit>{$p/name/text()}</hit>`)
	if len(out) != 1 || !strings.Contains(out.XML(s), "<hit>Bob</hit>") {
		t.Fatalf("got: %s", out.XML(s))
	}
}

func TestCountInReturn(t *testing.T) {
	s := loadStore(t)
	out := run(t, s, `FOR $o IN document("auction.xml")//open_auction
		RETURN <n>{count($o/bidder)}</n>`)
	if len(out) != 3 {
		t.Fatalf("%d trees", len(out))
	}
	if got := out.XML(s); !strings.Contains(got, "<n>6</n>") || !strings.Contains(got, "<n>1</n>") || !strings.Contains(got, "<n>0</n>") {
		t.Errorf("counts: %s", got)
	}
}

func TestOrderByDescending(t *testing.T) {
	s := loadStore(t)
	out := run(t, s, `FOR $p IN document("auction.xml")//person
		WHERE $p/age > 0
		ORDER BY $p/age DESCENDING
		RETURN $p/age/text()`)
	var ages []string
	for _, w := range out {
		ages = append(ages, w.XML(s))
	}
	joined := strings.Join(ages, "|")
	if !strings.Contains(joined, "40") || strings.Index(joined, "40") > strings.Index(joined, "30") {
		t.Errorf("order = %v", ages)
	}
}

func TestOrTranslation(t *testing.T) {
	s := loadStore(t)
	out := run(t, s, `FOR $p IN document("auction.xml")//person
		WHERE $p/age > 35 OR $p/age < 25
		RETURN $p/name/text()`)
	// Carol (40) and Bob (20).
	if len(out) != 2 {
		t.Fatalf("%d trees, want 2: %s", len(out), out.XML(s))
	}
}

func TestSomeQuantifier(t *testing.T) {
	s := loadStore(t)
	out := run(t, s, `FOR $o IN document("auction.xml")//open_auction
		WHERE SOME $b IN $o/bidder SATISFIES $b/increase > 7
		RETURN $o/@id`)
	// Only a0 has increase 8.
	if len(out) != 1 {
		t.Fatalf("%d trees, want 1: %s", len(out), out.XML(s))
	}
}

func TestEveryQuantifierVacuous(t *testing.T) {
	s := loadStore(t)
	out := run(t, s, `FOR $o IN document("auction.xml")//open_auction
		WHERE EVERY $b IN $o/bidder SATISFIES $b/increase > 0
		RETURN $o/@id`)
	// All three auctions pass (a2 vacuously: no bidders).
	if len(out) != 3 {
		t.Fatalf("%d trees, want 3: %s", len(out), out.XML(s))
	}
}

func TestVariableRootedFor(t *testing.T) {
	s := loadStore(t)
	out := run(t, s, `FOR $o IN document("auction.xml")//open_auction
		FOR $b IN $o/bidder
		WHERE $b/increase > 6
		RETURN $b/increase/text()`)
	// increases 7 and 8.
	if len(out) != 2 {
		t.Fatalf("%d trees, want 2: %s", len(out), out.XML(s))
	}
}

func TestLetClusters(t *testing.T) {
	s := loadStore(t)
	out := run(t, s, `FOR $o IN document("auction.xml")//open_auction
		LET $b := $o/bidder
		RETURN <auction><cnt>{count($b)}</cnt></auction>`)
	if len(out) != 3 {
		t.Fatalf("%d trees, want 3 (LET must not multiply)", len(out))
	}
	xml := out.XML(s)
	for _, want := range []string{"<cnt>6</cnt>", "<cnt>1</cnt>", "<cnt>0</cnt>"} {
		if !strings.Contains(xml, want) {
			t.Errorf("missing %s in %s", want, xml)
		}
	}
}

func TestAggregateFunctions(t *testing.T) {
	s := loadStore(t)
	out := run(t, s, `FOR $o IN document("auction.xml")//open_auction
		WHERE avg($o/bidder/increase) >= 5
		RETURN $o/@id`)
	// a0 has avg (3+4+5+6+7+8)/6 = 5.5; a1 avg 1; a2 empty (fails).
	if len(out) != 1 {
		t.Fatalf("%d trees, want 1: %s", len(out), out.XML(s))
	}
}

func TestTranslateErrors(t *testing.T) {
	bad := []string{
		`FOR $p IN document("auction.xml")//person WHERE $q/age > 5 RETURN $p`, // unbound in where
		`FOR $p IN document("auction.xml")//person RETURN $q/name`,             // unbound in return
		`FOR $p IN $q/person RETURN $p`,                                        // unbound source
		`FOR $p IN document("auction.xml")//person FOR $p IN $p/x RETURN $p`,   // double binding
	}
	for _, src := range bad {
		ast, err := xquery.Parse(src)
		if err != nil {
			t.Errorf("parse(%q): %v", src, err)
			continue
		}
		if _, err := Translate(ast); err == nil {
			t.Errorf("Translate(%q) succeeded, want error", src)
		}
	}
}

func TestDeferredJoinThreadsExports(t *testing.T) {
	ast, err := xquery.Parse(q2Text)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Translate(ast)
	if err != nil {
		t.Fatal(err)
	}
	plan := algebra.Explain(res.Plan)
	// The deferred correlated predicate must show up as the outer Join's
	// condition with a "*" right edge, as in Figure 8's Join 9.
	if !strings.Contains(plan, "{*}") {
		t.Errorf("no nested join edge in plan:\n%s", plan)
	}
	joins := strings.Count(plan, "Join: (")
	if joins != 1 {
		t.Errorf("plan has %d value joins, want 1:\n%s", joins, plan)
	}
}
