// Package translate implements Algorithm TLC (Figure 6 of the paper): it
// compiles the XQuery fragment of Figure 5 into TLC algebra plans.
//
// The shape of the generated plans follows the paper's worked examples
// (Figures 7 and 8): one Select per document-rooted FOR/LET clause with a
// Cartesian Join stitching multiple clauses, WHERE conditions accreted into
// the selects' annotated pattern trees (simple predicates with "-" edges,
// aggregate paths with "*" edges plus an Aggregate/Filter pair spliced
// above the owning Select, value-join paths with "-" edges feeding the Join
// predicate), then Project over the bound variables, NodeIDDE over the
// FOR-bound variables, one extension Select per RETURN path, and a final
// Construct. Nested FLWORs translate recursively; correlated predicates are
// deferred to a Join between the outer and inner plans, with the inner
// join values threaded through the inner Project and Construct so they
// survive to the join (the LCL=9 threading of Figure 8).
package translate

import (
	"fmt"

	"tlc/internal/algebra"
	"tlc/internal/pattern"
	"tlc/internal/xquery"
)

// Result is a translated query.
type Result struct {
	// Plan is the root of the TLC algebra plan.
	Plan algebra.Op
	// RootLCL is the logical class of the constructed result roots.
	RootLCL int
	// TagOf maps every assigned logical class label to the tag (or
	// doc_root/construct tag) it classifies — diagnostic metadata used by
	// plan explanation and the rewriter.
	TagOf map[int]string
	// VarLCLs are the classes bound to FOR/LET variables across every
	// block (outer and nested), in binding order. The TAX baseline uses
	// them to decide which subtrees to materialize early.
	VarLCLs []int
	// DocNames are the documents the query reads, in first-use order.
	DocNames []string
	// PredSites are the conjunctive simple-comparison predicates of the
	// query in translation order (outer bindings' nested blocks first,
	// then this block's WHERE conjuncts left to right, then RETURN
	// sub-blocks). The plan cache's containment probe aligns these with
	// the canonicalizer's literal sites to place residual filters.
	PredSites []PredSite
}

// PredSite is one conjunctive simple-comparison predicate and the logical
// class its pattern leaf binds.
type PredSite struct {
	// LCL is the class whose (single, for liftable sites) member per
	// witness tree carries the compared content.
	LCL   int
	Op    pattern.Cmp
	Value string
	// Liftable marks sites where a weaker predicate plus a residual
	// Filter directly above the owning Select reproduces the original
	// results exactly: the site's path is a chain of required "-" edges
	// from a document root through FOR-bound variables, so every emitted
	// witness tree has exactly one class member and the per-tree Filter
	// is equivalent to the match-time predicate.
	Liftable bool
}

// Options tune the translation.
type Options struct {
	// LegacyDisjuncts disables native OR/NOT pattern-edge annotations and
	// compiles disjunctions to the pre-PR9 optional-branch + DisjFilter
	// form. Kept as an ablation baseline for tlcbench -disjuncts.
	LegacyDisjuncts bool
}

// Translate compiles a parsed query into a TLC plan.
func Translate(f *xquery.FLWOR) (*Result, error) {
	return TranslateOpts(f, Options{})
}

// TranslateOpts compiles a parsed query into a TLC plan with options.
func TranslateOpts(f *xquery.FLWOR, opts Options) (*Result, error) {
	counter := 0
	tagOf := make(map[int]string)
	shared := &sharedState{opts: opts}
	t := &translator{lclCounter: &counter, tagOf: tagOf, shared: shared}
	res, err := t.block(f)
	if err != nil {
		return nil, err
	}
	return &Result{
		Plan:      res.plan,
		RootLCL:   res.rootLCL,
		TagOf:     tagOf,
		VarLCLs:   shared.varLCLs,
		DocNames:  shared.docNames,
		PredSites: shared.predSites,
	}, nil
}

// bindKind discriminates variable bindings.
type bindKind uint8

const (
	bindPattern   bindKind = iota // a node of some select's APT
	bindConstruct                 // the construct result of a nested FLWOR
)

type binding struct {
	kind bindKind
	// pattern binding
	sel  *algebra.Select
	node *pattern.Node
	// construct binding
	construct *pattern.ConstructNode
	rootLCL   int
	// isFor marks FOR (vs LET) bindings; NodeIDDE applies to FOR only.
	isFor bool
}

type joinInfo struct {
	op        *algebra.Join
	leftVars  map[string]bool
	rightVars map[string]bool
}

type deferredPred struct {
	outerLCL int
	op       pattern.Cmp // oriented outer-side-first
	innerLCL int
}

type blockResult struct {
	plan    algebra.Op
	pat     *pattern.ConstructNode
	rootLCL int
}

// sharedState is carried by every translator of one query (outer and
// nested blocks alike).
type sharedState struct {
	varLCLs  []int
	docNames []string
	opts     Options
	// predSites accumulates conjunctive simple predicates in translation
	// order (see Result.PredSites).
	predSites []PredSite
	// groupCounter hands out OR-group identifiers, unique per query.
	groupCounter int
}

func (s *sharedState) nextGroup() int {
	s.groupCounter++
	return s.groupCounter
}

type translator struct {
	parent     *translator
	lclCounter *int
	tagOf      map[int]string
	shared     *sharedState

	root     algebra.Op
	vars     map[string]*binding
	varOrder []string
	joins    []joinInfo
	// boundVars tracks which select each variable's pattern lives in, for
	// locating the join that should receive a value-join predicate.
	selectVars map[*algebra.Select]map[string]bool
	// deferred collects correlated predicates referencing outer variables;
	// the enclosing block turns them into the outer-inner Join condition.
	deferred []deferredPred
	// exports are inner classes that must survive this block's Project and
	// Construct because an outer Join references them.
	exports []int
}

func (t *translator) newLCL(tag string) int {
	*t.lclCounter++
	t.tagOf[*t.lclCounter] = tag
	return *t.lclCounter
}

func (t *translator) lookup(name string) (*binding, *translator) {
	for tr := t; tr != nil; tr = tr.parent {
		if b, ok := tr.vars[name]; ok {
			return b, tr
		}
	}
	return nil, nil
}

// block translates one FLWOR block (the SingleBlock procedure).
func (t *translator) block(f *xquery.FLWOR) (*blockResult, error) {
	t.vars = make(map[string]*binding)
	t.selectVars = make(map[*algebra.Select]map[string]bool)

	for _, b := range f.Bindings {
		if err := t.bind(b); err != nil {
			return nil, err
		}
	}
	if t.root == nil {
		return nil, fmt.Errorf("translate: block binds no data source")
	}
	if f.Where != nil {
		if err := t.where(f.Where); err != nil {
			return nil, err
		}
	}
	if err := t.orderBy(f.OrderBy); err != nil {
		return nil, err
	}
	return t.processReturn(f)
}

// bind processes one FOR/LET clause.
func (t *translator) bind(b xquery.Binding) error {
	if _, dup := t.vars[b.Var]; dup {
		return fmt.Errorf("translate: variable %s bound twice", b.Var)
	}
	if b.Sub != nil {
		return t.bindNested(b)
	}
	spec := pattern.One
	if b.Kind == xquery.BindLet {
		spec = pattern.ZeroOrMore
	}
	path := b.Path
	switch path.Root {
	case xquery.RootDocument:
		if len(path.Steps) == 0 {
			return fmt.Errorf("translate: %s binds a bare document", b.Var)
		}
		if t.shared != nil && !contains(t.shared.docNames, path.Doc) {
			t.shared.docNames = append(t.shared.docNames, path.Doc)
		}
		root := pattern.NewDocRoot(t.newLCL("doc_root"), path.Doc)
		leaf, err := t.extendChain(root, path.Steps, spec)
		if err != nil {
			return err
		}
		sel := algebra.NewSelect(&pattern.Tree{Root: root})
		t.addSource(sel, b.Var)
		t.setVar(b.Var, &binding{kind: bindPattern, sel: sel, node: leaf, isFor: b.Kind == xquery.BindFor})
		return nil
	default: // variable-rooted
		vb, _ := t.lookup(path.Var)
		if vb == nil {
			return fmt.Errorf("translate: %s references unbound variable %s", b.Var, path.Var)
		}
		if vb.kind != bindPattern {
			return fmt.Errorf("translate: FOR/LET over construct-bound variable %s is not supported", path.Var)
		}
		if len(path.Steps) == 0 {
			return fmt.Errorf("translate: %s aliases %s without a path", b.Var, path.Var)
		}
		leaf, err := t.extendChain(vb.node, path.Steps, spec)
		if err != nil {
			return err
		}
		t.setVar(b.Var, &binding{kind: bindPattern, sel: vb.sel, node: leaf, isFor: b.Kind == xquery.BindFor})
		if set := t.selectVars[vb.sel]; set != nil {
			set[b.Var] = true
		}
		return nil
	}
}

// addSource hooks a fresh document Select into the block plan: the first
// source becomes the root, later ones are stitched with a Cartesian Join
// that a value join predicate may later refine.
func (t *translator) addSource(sel *algebra.Select, varName string) {
	t.selectVars[sel] = map[string]bool{varName: true}
	if t.root == nil {
		t.root = sel
		return
	}
	leftVars := t.allBoundVars()
	join := algebra.NewCartesianJoin(t.root, sel, t.newLCL("join_root"))
	t.joins = append(t.joins, joinInfo{
		op:        join,
		leftVars:  leftVars,
		rightVars: map[string]bool{varName: true},
	})
	t.root = join
}

func (t *translator) allBoundVars() map[string]bool {
	out := make(map[string]bool, len(t.varOrder))
	for _, v := range t.varOrder {
		out[v] = true
	}
	return out
}

func (t *translator) setVar(name string, b *binding) {
	t.vars[name] = b
	t.varOrder = append(t.varOrder, name)
	if b.node != nil && b.node.LCL == 0 {
		b.node.LCL = t.newLCL(tagOfNode(b.node))
	}
	if t.shared != nil {
		if b.node != nil {
			t.shared.varLCLs = append(t.shared.varLCLs, b.node.LCL)
		} else if b.rootLCL > 0 {
			t.shared.varLCLs = append(t.shared.varLCLs, b.rootLCL)
		}
	}
}

// extendChain grows the APT below from with one pattern node per step,
// every node freshly labelled, all edges carrying spec (the SPtoAPT +
// addToAPT helpers of Figure 6).
func (t *translator) extendChain(from *pattern.Node, steps []xquery.Step, spec pattern.MSpec) (*pattern.Node, error) {
	cur := from
	for _, s := range steps {
		n := pattern.NewTagNode(t.newLCL(s.Name), s.Name)
		cur.Add(n, s.Axis, spec)
		cur = n
	}
	return cur, nil
}

func tagOfNode(n *pattern.Node) string {
	switch n.Kind {
	case pattern.TestDocRoot:
		return "doc_root"
	case pattern.TestTag:
		return n.Tag
	default:
		return "?"
	}
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
