package translate

import (
	"fmt"

	"tlc/internal/algebra"
	"tlc/internal/pattern"
	"tlc/internal/xquery"
)

// bindNested handles FOR/LET over a nested FLWOR (the NestedQuery
// procedure of Figure 6): the inner block is translated recursively with
// this block as its parent scope; correlated value joins recorded by the
// inner block become the predicate of a Join between the outer plan and
// the inner plan. FOR uses a "-" join edge (one output per inner tree) and
// LET a "*" edge (the whole inner result nested under each binding tuple).
func (t *translator) bindNested(b xquery.Binding) error {
	child := &translator{parent: t, lclCounter: t.lclCounter, tagOf: t.tagOf, shared: t.shared}
	res, err := child.block(b.Sub)
	if err != nil {
		return fmt.Errorf("translate: nested query for %s: %w", b.Var, err)
	}
	spec := pattern.ZeroOrMore
	if b.Kind == xquery.BindFor {
		spec = pattern.One
	}
	rootLCL := t.newLCL("join_root")
	var join *algebra.Join
	if len(child.deferred) > 0 {
		d := child.deferred[0]
		join = algebra.NewValueJoin(t.root, res.plan,
			algebra.JoinPred{LeftLCL: d.outerLCL, Op: d.op, RightLCL: d.innerLCL},
			spec, rootLCL)
	} else {
		join = algebra.NewCartesianJoin(t.root, res.plan, rootLCL)
		join.RightSpec = spec
	}
	t.joins = append(t.joins, joinInfo{
		op:        join,
		leftVars:  t.allBoundVars(),
		rightVars: map[string]bool{b.Var: true},
	})
	t.root = join
	// Additional correlated predicates become post-join comparisons.
	for _, d := range child.deferred[min(1, len(child.deferred)):] {
		t.root = algebra.NewFilterCompare(t.root, d.outerLCL, d.op, d.innerLCL)
	}
	// The exported join-value copies have served their purpose; strip them
	// from the inner construct results so they do not leak into output.
	if len(child.exports) > 0 {
		t.root = algebra.NewPrune(t.root, child.exports...)
	}
	t.setVar(b.Var, &binding{
		kind:      bindConstruct,
		construct: res.pat,
		rootLCL:   res.rootLCL,
		isFor:     b.Kind == xquery.BindFor,
	})
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
