package translate

import (
	"strings"
	"testing"

	"tlc/internal/algebra"
	"tlc/internal/xquery"
)

func TestNestedFLWORInReturn(t *testing.T) {
	s := loadStore(t)
	out := run(t, s, `FOR $p IN document("auction.xml")//person
		WHERE $p/age > 25
		RETURN <p name={$p/name/text()}>{
			FOR $o IN document("auction.xml")//open_auction
			WHERE $o/bidder//@person = $p/@id
			RETURN <won>{$o/@id}</won>
		}</p>`)
	// Alice and Carol qualify; their auctions nest inside.
	if len(out) != 2 {
		t.Fatalf("%d trees, want 2: %s", len(out), out.XML(s))
	}
	xml := out.XML(s)
	if !strings.Contains(xml, "<won ") && !strings.Contains(xml, "<won>") {
		t.Errorf("nested return missing: %s", xml)
	}
	// Carol bids on a0 and a1.
	for _, w := range out {
		x := w.XML(s)
		if strings.Contains(x, "Carol") && strings.Count(x, "<won") != 2 {
			t.Errorf("Carol should have 2 wins: %s", x)
		}
	}
}

func TestOrderByMultipleKeys(t *testing.T) {
	s := loadStore(t)
	out := run(t, s, `FOR $b IN document("auction.xml")//bidder
		ORDER BY $b/increase ASCENDING
		RETURN $b/increase/text()`)
	var prev float64 = -1
	for _, w := range out {
		x := w.XML(s)
		var v float64
		if _, err := sscanFloat(x, &v); err != nil {
			t.Fatalf("bad value %q", x)
		}
		if v < prev {
			t.Fatalf("order violated: %v after %v", v, prev)
		}
		prev = v
	}
}

func sscanFloat(s string, v *float64) (int, error) {
	var f float64
	var err error
	n := 0
	f, err = parseFloat(strings.TrimSpace(s))
	if err == nil {
		*v = f
		n = 1
	}
	return n, err
}

func parseFloat(s string) (float64, error) {
	var out float64
	var neg bool
	if s == "" {
		return 0, errEmpty{}
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '-' && i == 0:
			neg = true
		case c >= '0' && c <= '9':
			out = out*10 + float64(c-'0')
		default:
			return 0, errEmpty{}
		}
	}
	if neg {
		out = -out
	}
	return out, nil
}

type errEmpty struct{}

func (errEmpty) Error() string { return "empty" }

func TestVarRootedLet(t *testing.T) {
	s := loadStore(t)
	out := run(t, s, `FOR $o IN document("auction.xml")//open_auction
		LET $i := $o/bidder/increase
		WHERE count($i) > 5
		RETURN <sum>{count($i)}</sum>`)
	if len(out) != 1 || !strings.Contains(out.XML(s), "<sum>6</sum>") {
		t.Fatalf("got: %s", out.XML(s))
	}
}

func TestReturnBareVariable(t *testing.T) {
	s := loadStore(t)
	out := run(t, s, `FOR $p IN document("auction.xml")//person
		WHERE $p/@id = "p0" RETURN $p`)
	if len(out) != 1 {
		t.Fatalf("%d trees", len(out))
	}
	xml := out.XML(s)
	if !strings.Contains(xml, "<name>Alice</name>") || !strings.Contains(xml, `id="p0"`) {
		t.Errorf("bare variable return lost the subtree: %s", xml)
	}
}

func TestDeepReturnPath(t *testing.T) {
	s := loadStore(t)
	out := run(t, s, `FOR $o IN document("auction.xml")//open_auction
		WHERE $o/@id = "a0"
		RETURN <refs>{$o/bidder/personref/@person}</refs>`)
	if len(out) != 1 {
		t.Fatalf("%d trees", len(out))
	}
	if got := strings.Count(out.XML(s), "person="); got != 6 {
		t.Errorf("deep path found %d refs, want 6: %s", got, out.XML(s))
	}
}

func TestDescendantWherePath(t *testing.T) {
	s := loadStore(t)
	out := run(t, s, `FOR $o IN document("auction.xml")//open_auction
		WHERE $o//increase > 7
		RETURN $o/@id`)
	// Only a0 has an increase of 8.
	if len(out) != 1 || !strings.Contains(out.XML(s), "a0") {
		t.Fatalf("got: %s", out.XML(s))
	}
}

func TestTwoValueJoinsOnSamePair(t *testing.T) {
	s := loadStore(t)
	// Second predicate on an already-joined pair becomes a FilterCompare.
	out := run(t, s, `FOR $p IN document("auction.xml")//person
		FOR $o IN document("auction.xml")//open_auction
		WHERE $p/@id = $o/bidder//@person
		  AND $p/@id = $o/bidder/personref/@person
		RETURN <x>{$p/name/text()}</x>`)
	if len(out) == 0 {
		t.Fatal("double join produced nothing")
	}
	ast, err := xquery.Parse(`FOR $p IN document("auction.xml")//person
		FOR $o IN document("auction.xml")//open_auction
		WHERE $p/@id = $o/bidder//@person
		  AND $p/@id = $o/bidder/personref/@person
		RETURN <x>{$p/name/text()}</x>`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Translate(ast)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(algebra.Explain(res.Plan), "FilterCompare") {
		t.Errorf("second predicate not compiled to FilterCompare:\n%s", algebra.Explain(res.Plan))
	}
}

func TestUncorrelatedLetNestAll(t *testing.T) {
	s := loadStore(t)
	out := run(t, s, `FOR $p IN document("auction.xml")//person
		LET $a := FOR $o IN document("auction.xml")//open_auction
		          WHERE count($o/bidder) > 5
		          RETURN $o/@id
		WHERE $p/age > 35
		RETURN <r name={$p/name/text()}><n>{count($a)}</n></r>`)
	// Carol only; the uncorrelated LET nests the single busy auction.
	if len(out) != 1 || !strings.Contains(out.XML(s), "<n>1</n>") {
		t.Fatalf("got: %s", out.XML(s))
	}
}

func TestSortStability(t *testing.T) {
	s := loadStore(t)
	// Equal ages (none here — all distinct) but exercise multiple keys.
	out := run(t, s, `FOR $p IN document("auction.xml")//person
		WHERE $p/age > 0
		ORDER BY $p/age ASCENDING
		RETURN <a>{$p/age/text()}</a>`)
	if len(out) != 3 {
		t.Fatalf("%d trees", len(out))
	}
	if !strings.HasPrefix(out[0].XML(s), "<a>20") {
		t.Errorf("first = %s", out[0].XML(s))
	}
}

func TestTagOfMetadata(t *testing.T) {
	ast, err := xquery.Parse(q1Text)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Translate(ast)
	if err != nil {
		t.Fatal(err)
	}
	foundPerson, foundBidder := false, false
	for _, tag := range res.TagOf {
		if tag == "person" {
			foundPerson = true
		}
		if tag == "bidder" {
			foundBidder = true
		}
	}
	if !foundPerson || !foundBidder {
		t.Errorf("TagOf incomplete: %v", res.TagOf)
	}
	if len(res.VarLCLs) != 2 {
		t.Errorf("VarLCLs = %v, want 2 entries", res.VarLCLs)
	}
	if len(res.DocNames) != 1 || res.DocNames[0] != "auction.xml" {
		t.Errorf("DocNames = %v", res.DocNames)
	}
}
