package translate

import (
	"fmt"

	"tlc/internal/algebra"
	"tlc/internal/pattern"
	"tlc/internal/xquery"
)

// orderBy processes the ORDER BY clause: one extension Select per key path
// ("-" edges, per Figure 6) followed by a Sort on the leaf classes.
func (t *translator) orderBy(keys []xquery.OrderKey) error {
	if len(keys) == 0 {
		return nil
	}
	sortKeys := make([]algebra.SortKey, 0, len(keys))
	for _, k := range keys {
		lcl, err := t.refClass(k.Path, pattern.One, false)
		if err != nil {
			return err
		}
		sortKeys = append(sortKeys, algebra.SortKey{LCL: lcl, Descending: k.Descending})
	}
	t.root = algebra.NewSort(t.root, sortKeys...)
	return nil
}

// processReturn builds the tail of the block plan: Project over the bound
// variables (plus the classes outer blocks reference), NodeIDDE over the
// FOR variables, the extension Selects and Aggregates the RETURN paths
// need, and the final Construct.
func (t *translator) processReturn(f *xquery.FLWOR) (*blockResult, error) {
	rb := &returnBuilder{t: t}
	pat, err := rb.build(f.Return)
	if err != nil {
		return nil, err
	}
	if pat.NewLCL == 0 {
		switch pat.Kind {
		case pattern.ConstructElement:
			pat.NewLCL = t.newLCL(pat.Tag)
		case pattern.ConstructSubtree, pattern.ConstructText:
			pat.NewLCL = pat.FromLCL
		default:
			pat.NewLCL = t.newLCL("result")
		}
	}

	// Projection keep list: join roots, variable classes, classes the
	// RETURN references directly, and classes exported to an outer Join.
	var keep []int
	seen := make(map[int]bool)
	add := func(lcl int) {
		if lcl > 0 && !seen[lcl] {
			seen[lcl] = true
			keep = append(keep, lcl)
		}
	}
	for _, j := range t.joins {
		add(j.op.RootLCL)
	}
	var forVars []int
	for _, v := range t.varOrder {
		b := t.vars[v]
		var lcl int
		if b.kind == bindPattern {
			lcl = b.node.LCL
		} else {
			lcl = b.rootLCL
		}
		add(lcl)
		if b.isFor {
			forVars = append(forVars, lcl)
		}
	}
	for _, lcl := range rb.keepExtra {
		add(lcl)
	}
	for _, lcl := range t.exports {
		add(lcl)
	}
	root := algebra.Op(algebra.NewProject(t.root, keep...))
	if len(forVars) > 0 {
		root = algebra.NewDupElim(root, forVars...)
	}
	for _, pend := range rb.pending {
		root = pend(root)
	}
	cons := algebra.NewConstruct(root, pat)
	t.root = cons

	// Exported join values ride along as labelled subtree copies inside
	// the construct result (the "(9)" child of Construct 8 in Figure 8).
	for _, lcl := range t.exports {
		pat.Children = append(pat.Children, &pattern.ConstructNode{
			Kind: pattern.ConstructSubtree, FromLCL: lcl, NewLCL: lcl,
		})
	}
	return &blockResult{plan: cons, pat: pat, rootLCL: pat.NewLCL}, nil
}

// returnBuilder accumulates the construct pattern, the deferred extension
// selects/aggregates and the extra projection classes of a RETURN clause.
type returnBuilder struct {
	t *translator
	// pending wraps the extension Selects and Aggregates to stack above
	// the Project/NodeIDDE, in encounter order.
	pending []func(algebra.Op) algebra.Op
	// keepExtra are already-existing classes the RETURN references, which
	// must survive the projection.
	keepExtra []int
}

func (rb *returnBuilder) build(r *xquery.RetNode) (*pattern.ConstructNode, error) {
	switch r.Kind {
	case xquery.RetElement:
		el := pattern.NewElement(r.Tag)
		for _, a := range r.Attrs {
			if a.Path == nil {
				el.Attrs = append(el.Attrs, pattern.ConstructAttr{Name: a.Name, Literal: a.Literal})
				continue
			}
			lcl, err := rb.ref(a.Path)
			if err != nil {
				return nil, err
			}
			el.Attrs = append(el.Attrs, pattern.ConstructAttr{Name: a.Name, FromLCL: lcl})
		}
		for _, ch := range r.Children {
			c, err := rb.build(ch)
			if err != nil {
				return nil, err
			}
			el.Children = append(el.Children, c)
		}
		return el, nil

	case xquery.RetPath:
		lcl, err := rb.ref(r.Path)
		if err != nil {
			return nil, err
		}
		if r.Path.Text {
			return &pattern.ConstructNode{Kind: pattern.ConstructText, FromLCL: lcl, NewLCL: lcl}, nil
		}
		return &pattern.ConstructNode{Kind: pattern.ConstructSubtree, FromLCL: lcl, NewLCL: lcl}, nil

	case xquery.RetAggr:
		lcl, err := rb.ref(r.Path)
		if err != nil {
			return nil, err
		}
		aggLCL := rb.t.newLCL(r.Fn)
		fn := algebra.AggFunc(r.Fn)
		rb.pending = append(rb.pending, func(in algebra.Op) algebra.Op {
			return algebra.NewAggregate(in, fn, lcl, aggLCL)
		})
		return &pattern.ConstructNode{Kind: pattern.ConstructText, FromLCL: aggLCL, NewLCL: aggLCL}, nil

	case xquery.RetLiteral:
		return &pattern.ConstructNode{Kind: pattern.ConstructLiteral, Literal: r.Literal}, nil

	case xquery.RetSub:
		// A nested FLWOR in the RETURN clause behaves like an anonymous
		// LET: join now (the plan root grows), reference its construct.
		v := fmt.Sprintf("$%s_ret%d", "sub", len(rb.pending))
		if err := rb.t.bindNested(xquery.Binding{Kind: xquery.BindLet, Var: v, Sub: r.Sub}); err != nil {
			return nil, err
		}
		b := rb.t.vars[v]
		rb.keepExtra = append(rb.keepExtra, b.rootLCL)
		return &pattern.ConstructNode{Kind: pattern.ConstructSubtree, FromLCL: b.rootLCL, NewLCL: b.rootLCL}, nil

	default:
		return nil, fmt.Errorf("translate: unsupported RETURN node kind %d", r.Kind)
	}
}

// ref resolves a RETURN path reference to a class label, creating a
// deferred extension Select (with "*" edges, per the NestedQuery notes of
// Figure 6) when the path walks below the variable's node.
func (rb *returnBuilder) ref(p *xquery.Path) (int, error) {
	return rb.t.refClassPending(p, &rb.pending, &rb.keepExtra)
}

// refClass resolves a variable-rooted path to a class, materializing any
// needed extension select immediately above the current root (used by
// ORDER BY, which runs before projection).
func (t *translator) refClass(p *xquery.Path, spec pattern.MSpec, _ bool) (int, error) {
	var pending []func(algebra.Op) algebra.Op
	var keep []int
	lcl, err := t.resolveRef(p, spec, &pending, &keep)
	if err != nil {
		return 0, err
	}
	for _, fn := range pending {
		t.root = fn(t.root)
	}
	return lcl, nil
}

func (t *translator) refClassPending(p *xquery.Path, pending *[]func(algebra.Op) algebra.Op, keep *[]int) (int, error) {
	return t.resolveRef(p, pattern.ZeroOrMore, pending, keep)
}

func (t *translator) resolveRef(p *xquery.Path, spec pattern.MSpec, pending *[]func(algebra.Op) algebra.Op, keep *[]int) (int, error) {
	if p.Root != xquery.RootVariable {
		return 0, fmt.Errorf("translate: reference %s must be variable-rooted", p)
	}
	b, _ := t.lookup(p.Var)
	if b == nil {
		return 0, fmt.Errorf("translate: unbound variable %s", p.Var)
	}
	switch b.kind {
	case bindConstruct:
		if lcl, ok := t.resolveConstructStep(b, p.Steps); ok {
			*keep = append(*keep, lcl)
			return lcl, nil
		}
		return t.extensionSelect(b.rootLCL, p.Steps, spec, pending)
	default:
		if len(p.Steps) == 0 {
			return b.node.LCL, nil
		}
		return t.extensionSelect(b.node.LCL, p.Steps, spec, pending)
	}
}

// extensionSelect queues an extension Select anchored at the given class,
// returning the leaf class the new branch will bind.
func (t *translator) extensionSelect(anchorLCL int, steps []xquery.Step, spec pattern.MSpec, pending *[]func(algebra.Op) algebra.Op) (int, error) {
	if len(steps) == 0 {
		return anchorLCL, nil
	}
	anchor := pattern.NewLCAnchor(0, anchorLCL)
	leaf, err := t.extendChain(anchor, steps, spec)
	if err != nil {
		return 0, err
	}
	apt := &pattern.Tree{Root: anchor}
	*pending = append(*pending, func(in algebra.Op) algebra.Op {
		return algebra.NewExtendSelect(in, apt)
	})
	return leaf.LCL, nil
}
