package translate

import (
	"fmt"

	"tlc/internal/algebra"
	"tlc/internal/pattern"
	"tlc/internal/xquery"
)

// where processes the WHERE clause. Conjunctions are flattened and each
// conjunct handled by its Figure 6 case; disjunctions compile to optional
// pattern branches plus a disjunctive filter.
func (t *translator) where(e xquery.Expr) error {
	switch x := e.(type) {
	case *xquery.And:
		if err := t.where(x.L); err != nil {
			return err
		}
		return t.where(x.R)
	case *xquery.Or:
		return t.whereOr(x)
	case *xquery.Comparison:
		if x.RightPath != nil {
			return t.whereValueJoin(x)
		}
		return t.whereSimple(x)
	case *xquery.AggrPred:
		return t.whereAggr(x)
	case *xquery.Quantified:
		return t.whereQuantified(x)
	case *xquery.Not:
		return t.whereNot(x)
	case *xquery.Exists:
		return t.whereExists(x)
	default:
		return fmt.Errorf("translate: unsupported WHERE expression %T", e)
	}
}

// whereNot compiles not(...). Negations over connectives are pushed inward
// (De Morgan) and double negations cancel, so the base cases are a negated
// simple predicate or a negated existence test — both become a NOT-
// annotated (anti-join) pattern edge when the path walks below the
// variable, or a NoneOf filter when the predicate sits on the bound node
// itself.
func (t *translator) whereNot(n *xquery.Not) error {
	switch x := n.X.(type) {
	case *xquery.And:
		return t.where(&xquery.Or{L: &xquery.Not{X: x.L}, R: &xquery.Not{X: x.R}})
	case *xquery.Or:
		if err := t.where(&xquery.Not{X: x.L}); err != nil {
			return err
		}
		return t.where(&xquery.Not{X: x.R})
	case *xquery.Not:
		return t.where(x.X)
	case *xquery.Comparison:
		if x.RightPath != nil {
			return fmt.Errorf("translate: not() over a value join is not supported")
		}
		return t.whereNotSimple(x.Left, &pattern.Predicate{Op: x.Op, Value: x.RightVal})
	case *xquery.Exists:
		return t.whereNotSimple(x.Path, nil)
	default:
		return fmt.Errorf("translate: not() over %T is not supported", n.X)
	}
}

// whereNotSimple negates one simple predicate (pred == nil: a bare
// existence test): the tree survives only when NO match of the path
// satisfies the predicate.
func (t *translator) whereNotSimple(path *xquery.Path, pred *pattern.Predicate) error {
	b, err := t.patternVar(path)
	if err != nil {
		return err
	}
	if len(path.Steps) == 0 {
		if pred == nil {
			return fmt.Errorf("translate: not(%s) over a bare variable is not supported", path)
		}
		t.root = algebra.NewFilter(t.root, b.node.LCL, *pred, algebra.NoneOf)
		return nil
	}
	if t.shared.opts.LegacyDisjuncts {
		// Ablation mode: no pattern annotations; compile to an optional
		// "*" branch plus a NoneOf filter over its class.
		leaf, err := t.extendChain(b.node, path.Steps, pattern.ZeroOrMore)
		if err != nil {
			return err
		}
		p := pattern.Predicate{Op: pattern.NE, Value: "\x00tlc-never"}
		if pred != nil {
			p = *pred
		}
		t.root = algebra.NewFilter(t.root, leaf.LCL, p, algebra.NoneOf)
		return nil
	}
	t.logicalChain(b.node, path.Steps, pred, 0, true)
	return nil
}

// whereExists compiles a bare-path existence conjunct: the path accretes
// with required "-" edges, so trees without a match are dropped by the
// Select itself.
func (t *translator) whereExists(x *xquery.Exists) error {
	b, err := t.patternVar(x.Path)
	if err != nil {
		return err
	}
	if len(x.Path.Steps) == 0 {
		return nil // a bound variable trivially exists
	}
	_, err = t.extendChain(b.node, x.Path.Steps, pattern.One)
	return err
}

// logicalChain hangs an anonymous existence-test chain below from: the
// first edge carries the logical annotation (OR-group id and/or NOT), the
// rest are plain "-" edges, and the optional predicate lands on the leaf
// (so equality probes are answered by the tag+value index).
func (t *translator) logicalChain(from *pattern.Node, steps []xquery.Step, pred *pattern.Predicate, group int, not bool) {
	cur := from
	for i, s := range steps {
		n := &pattern.Node{Kind: pattern.TestTag, Tag: s.Name}
		if i == 0 {
			cur.Edges = append(cur.Edges, pattern.Edge{
				Axis: s.Axis, Spec: pattern.ZeroOrMore, To: n, Group: group, Not: not,
			})
		} else {
			cur.Add(n, s.Axis, pattern.One)
		}
		cur = n
	}
	if cur != from {
		cur.Pred = pred
	}
}

// whereSimple handles SimplePredicateExpr: the path is accreted into the
// variable's APT with "-" edges and the predicate attached to the leaf.
func (t *translator) whereSimple(c *xquery.Comparison) error {
	pred := &pattern.Predicate{Op: c.Op, Value: c.RightVal}
	b, err := t.patternVar(c.Left)
	if err != nil {
		return err
	}
	if len(c.Left.Steps) == 0 {
		t.recordSite(PredSite{LCL: b.node.LCL, Op: c.Op, Value: c.RightVal})
		// Predicate on the bound node itself.
		if b.node.Pred == nil {
			b.node.Pred = pred
			return nil
		}
		t.root = algebra.NewFilter(t.root, b.node.LCL, *pred, algebra.AtLeastOne)
		return nil
	}
	leaf, err := t.extendChain(b.node, c.Left.Steps, pattern.One)
	if err != nil {
		return err
	}
	leaf.Pred = pred
	t.recordSite(PredSite{LCL: leaf.LCL, Op: c.Op, Value: c.RightVal, Liftable: t.liftableSite(b)})
	return nil
}

// recordSite appends one conjunctive simple-comparison site in translation
// order (see Result.PredSites).
func (t *translator) recordSite(s PredSite) {
	t.shared.predSites = append(t.shared.predSites, s)
}

// liftableSite reports whether a predicate accreted below b's node can be
// weakened and re-applied by a per-tree residual filter without changing
// results: the binding must be a FOR over a required "-" chain from a
// document root (so every emitted witness tree carries exactly one member
// of the site's class). The chain whereSimple adds is itself all "-"
// edges.
func (t *translator) liftableSite(b *binding) bool {
	if !b.isFor || b.kind != bindPattern || b.sel == nil || b.sel.APT == nil {
		return false
	}
	root := b.sel.APT.Root
	if root == nil || root.Kind != pattern.TestDocRoot {
		return false
	}
	for n := b.node; n != root; {
		parent, edge := b.sel.APT.ParentOf(n)
		if parent == nil || edge == nil || edge.Spec != pattern.One || edge.Logical() {
			return false
		}
		n = parent
	}
	return true
}

// whereAggr handles AggrPredExpr: the aggregated path joins the APT with
// "*" edges, and an Aggregate/Filter pair is spliced directly above the
// Select owning the variable (operators 3 and 4 of Figure 7).
func (t *translator) whereAggr(a *xquery.AggrPred) error {
	b, err := t.patternVar(a.Path)
	if err != nil {
		return err
	}
	// A bare variable aggregates over the variable's own class (a LET
	// binding's cluster); a path accretes a fresh "*" branch.
	leaf := b.node
	if len(a.Path.Steps) > 0 {
		leaf, err = t.extendChain(b.node, a.Path.Steps, pattern.ZeroOrMore)
		if err != nil {
			return err
		}
	}
	newLCL := t.newLCL(a.Fn)
	pred := pattern.Predicate{Op: a.Op, Value: a.Value}
	t.spliceAbove(b.sel, func(in algebra.Op) algebra.Op {
		return algebra.NewFilter(
			algebra.NewAggregate(in, algebra.AggFunc(a.Fn), leaf.LCL, newLCL),
			newLCL, pred, algebra.AtLeastOne)
	})
	return nil
}

// whereValueJoin handles ValueJoin: both paths accrete with "-" edges; if
// both variables are local the predicate lands on the Cartesian Join of
// their sources, otherwise the predicate is deferred to the enclosing
// block's outer-inner Join (Figure 8, Join 9).
func (t *translator) whereValueJoin(c *xquery.Comparison) error {
	// Which side is correlated (references an outer variable)? A local
	// join path accretes with "-" edges per Figure 7; a deferred join's
	// inner path accretes with "*" so the join values stay clustered in a
	// single tree per binding (the class-9 cluster of Figure 8) and the
	// deferred Join evaluates the predicate existentially over them.
	lTrPeek := t.sideOwner(c.Left)
	rTrPeek := t.sideOwner(c.RightPath)
	lOuter := lTrPeek != nil && lTrPeek != t
	rOuter := rTrPeek != nil && rTrPeek != t
	lSpec, rSpec := pattern.One, pattern.One
	if lOuter || rOuter {
		if lOuter && rOuter {
			return fmt.Errorf("translate: value join referencing only outer variables")
		}
		if lOuter {
			rSpec = pattern.ZeroOrMore
		} else {
			lSpec = pattern.ZeroOrMore
		}
	}
	lb, _, lLCL, err := t.joinSide(c.Left, lSpec)
	if err != nil {
		return err
	}
	rb, _, rLCL, err := t.joinSide(c.RightPath, rSpec)
	if err != nil {
		return err
	}
	switch {
	case lOuter:
		t.deferred = append(t.deferred, deferredPred{outerLCL: lLCL, op: c.Op, innerLCL: rLCL})
		t.exports = append(t.exports, rLCL)
		return nil
	case rOuter:
		t.deferred = append(t.deferred, deferredPred{outerLCL: rLCL, op: c.Op.Flip(), innerLCL: lLCL})
		t.exports = append(t.exports, lLCL)
		return nil
	}
	// Both sides local: refine the Cartesian Join of their selects.
	lVar, rVar := c.Left.Var, c.RightPath.Var
	for i := range t.joins {
		j := &t.joins[i]
		var predSpec *algebra.JoinPred
		switch {
		case j.leftVars[lVar] && j.rightVars[rVar]:
			predSpec = &algebra.JoinPred{LeftLCL: lLCL, Op: c.Op, RightLCL: rLCL}
		case j.leftVars[rVar] && j.rightVars[lVar]:
			predSpec = &algebra.JoinPred{LeftLCL: rLCL, Op: c.Op.Flip(), RightLCL: lLCL}
		default:
			continue
		}
		if j.op.Pred == nil {
			j.op.Pred = predSpec
			return nil
		}
		// The join already carries a predicate: evaluate this one as a
		// post-join comparison filter.
		t.root = algebra.NewFilterCompare(t.root, lLCL, c.Op, rLCL)
		return nil
	}
	// Same select on both sides (variables over one tree): compare inside
	// each tree.
	_ = lb
	_ = rb
	t.root = algebra.NewFilterCompare(t.root, lLCL, c.Op, rLCL)
	return nil
}

// sideOwner returns the translator owning a join path's root variable, or
// nil when unbound (the error surfaces in joinSide).
func (t *translator) sideOwner(p *xquery.Path) *translator {
	if p.Root != xquery.RootVariable {
		return nil
	}
	_, tr := t.lookup(p.Var)
	return tr
}

// joinSide accretes one side of a value join with the given edge spec and
// returns the binding, its owning translator and the leaf class.
func (t *translator) joinSide(p *xquery.Path, spec pattern.MSpec) (*binding, *translator, int, error) {
	if p.Root != xquery.RootVariable {
		return nil, nil, 0, fmt.Errorf("translate: join path %s must be variable-rooted", p)
	}
	b, tr := t.lookup(p.Var)
	if b == nil {
		return nil, nil, 0, fmt.Errorf("translate: unbound variable %s", p.Var)
	}
	if b.kind != bindPattern {
		return nil, nil, 0, fmt.Errorf("translate: value join over construct-bound variable %s", p.Var)
	}
	if len(p.Steps) == 0 {
		return b, tr, b.node.LCL, nil
	}
	leaf, err := t.extendChain(b.node, p.Steps, spec)
	if err != nil {
		return nil, nil, 0, err
	}
	return b, tr, leaf.LCL, nil
}

// whereQuantified handles EVERY/SOME: the quantified path accretes with
// "*" edges so that non-satisfying members do not eliminate trees at match
// time; the condition is evaluated by a Filter in EVERY (resp. ALO) mode.
func (t *translator) whereQuantified(q *xquery.Quantified) error {
	condLCL, err := t.quantTarget(q)
	if err != nil {
		return err
	}
	mode := algebra.AtLeastOne
	if q.Every {
		mode = algebra.Every
	}
	t.root = algebra.NewFilter(t.root, condLCL,
		pattern.Predicate{Op: q.Cond.Op, Value: q.Cond.RightVal}, mode)
	return nil
}

// quantTarget resolves the class the quantifier condition ranges over.
func (t *translator) quantTarget(q *xquery.Quantified) (int, error) {
	if q.Cond.Left.Root != xquery.RootVariable || q.Cond.Left.Var != q.Var {
		return 0, fmt.Errorf("translate: quantifier condition must test %s", q.Var)
	}
	condSteps := q.Cond.Left.Steps
	if q.Path.Root != xquery.RootVariable {
		return 0, fmt.Errorf("translate: quantified path %s must be variable-rooted", q.Path)
	}
	b, _ := t.lookup(q.Path.Var)
	if b == nil {
		return 0, fmt.Errorf("translate: unbound variable %s", q.Path.Var)
	}
	switch b.kind {
	case bindConstruct:
		lcl, ok := t.resolveConstructStep(b, q.Path.Steps)
		if !ok {
			return 0, fmt.Errorf("translate: cannot resolve %s inside the construct bound to %s", q.Path, q.Path.Var)
		}
		if len(condSteps) != 0 {
			return 0, fmt.Errorf("translate: quantifier condition paths below a construct binding are not supported")
		}
		return lcl, nil
	default:
		leaf := b.node
		if len(q.Path.Steps) > 0 {
			var err error
			leaf, err = t.extendChain(b.node, q.Path.Steps, pattern.ZeroOrMore)
			if err != nil {
				return 0, err
			}
		}
		if len(condSteps) > 0 {
			var err error
			leaf, err = t.extendChain(leaf, condSteps, pattern.ZeroOrMore)
			if err != nil {
				return 0, err
			}
		}
		return leaf.LCL, nil
	}
}

// whereOr compiles a disjunction: every disjunct must be a simple
// predicate; the paths accrete with "*" edges (optional — absence must not
// drop the tree before the disjunction is decided) and a DisjFilter
// evaluates the OR. Per Figure 6 the paper formulates OR as a UNION of
// plans; the optional-branch formulation yields the same trees without
// duplicating the block plan, keeping class labels consistent across
// disjuncts, which is what the ORExp case demands.
func (t *translator) whereOr(o *xquery.Or) error {
	if t.shared == nil || !t.shared.opts.LegacyDisjuncts {
		if done, err := t.whereOrNative(o); done || err != nil {
			return err
		}
	}
	var branches []algebra.FilterBranch
	var collect func(e xquery.Expr, neg bool) error
	collect = func(e xquery.Expr, neg bool) error {
		switch x := e.(type) {
		case *xquery.Or:
			if err := collect(x.L, neg); err != nil {
				return err
			}
			return collect(x.R, neg)
		case *xquery.Not:
			return collect(x.X, !neg)
		case *xquery.Exists:
			leaf, err := t.disjLeaf(x.Path)
			if err != nil {
				return err
			}
			branches = append(branches, algebra.FilterBranch{
				LCL:  leaf.LCL,
				Pred: predAlwaysTrue,
				Mode: disjMode(neg),
			})
			return nil
		case *xquery.Comparison:
			if x.RightPath != nil {
				return fmt.Errorf("translate: value joins inside OR are not supported")
			}
			leaf, err := t.disjLeaf(x.Left)
			if err != nil {
				return err
			}
			branches = append(branches, algebra.FilterBranch{
				LCL:  leaf.LCL,
				Pred: pattern.Predicate{Op: x.Op, Value: x.RightVal},
				Mode: disjMode(neg),
			})
			return nil
		default:
			return fmt.Errorf("translate: unsupported expression %T inside OR", e)
		}
	}
	if err := collect(o, false); err != nil {
		return err
	}
	t.root = algebra.NewDisjFilter(t.root, branches...)
	return nil
}

// predAlwaysTrue holds at any content value (no document carries the NUL
// sentinel); used to turn existence branches into predicate branches.
var predAlwaysTrue = pattern.Predicate{Op: pattern.NE, Value: "\x00tlc-never"}

func disjMode(neg bool) algebra.FilterMode {
	if neg {
		return algebra.NoneOf
	}
	return algebra.AtLeastOne
}

// disjLeaf resolves one disjunct path to an optional-branch pattern leaf
// (the legacy "*"-edge formulation).
func (t *translator) disjLeaf(p *xquery.Path) (*pattern.Node, error) {
	b, err := t.patternVar(p)
	if err != nil {
		return nil, err
	}
	if len(p.Steps) == 0 {
		return b.node, nil
	}
	return t.extendChain(b.node, p.Steps, pattern.ZeroOrMore)
}

// whereOrNative compiles a disjunction of same-node path predicates into an
// OR-annotated edge group on the shared pattern node, evaluated natively by
// the matcher in a single pass (one index probe per alternative tag,
// candidates merged in document order). It reports done=false when the
// disjunction does not fit that shape — mixed anchor nodes, value joins, or
// predicates on the bound node itself — and the caller falls back to the
// optional-branch + DisjFilter form.
func (t *translator) whereOrNative(o *xquery.Or) (bool, error) {
	type disjunct struct {
		path *xquery.Path
		pred *pattern.Predicate
		not  bool
	}
	var ds []disjunct
	fits := true
	var collect func(e xquery.Expr, neg bool)
	collect = func(e xquery.Expr, neg bool) {
		if !fits {
			return
		}
		switch x := e.(type) {
		case *xquery.Or:
			collect(x.L, neg)
			collect(x.R, neg)
		case *xquery.Not:
			collect(x.X, !neg)
		case *xquery.Exists:
			if len(x.Path.Steps) == 0 {
				fits = false
				return
			}
			ds = append(ds, disjunct{path: x.Path, not: neg})
		case *xquery.Comparison:
			if x.RightPath != nil || len(x.Left.Steps) == 0 {
				fits = false
				return
			}
			ds = append(ds, disjunct{
				path: x.Left,
				pred: &pattern.Predicate{Op: x.Op, Value: x.RightVal},
				not:  neg,
			})
		default:
			fits = false
		}
	}
	collect(o, false)
	if !fits || len(ds) < 2 {
		return false, nil
	}
	var anchor *binding
	for _, d := range ds {
		if d.path.Root != xquery.RootVariable {
			return false, nil
		}
		b, _ := t.lookup(d.path.Var)
		if b == nil || b.kind != bindPattern {
			return false, nil
		}
		if anchor == nil {
			anchor = b
		} else if b.node != anchor.node {
			return false, nil
		}
	}
	gid := t.shared.nextGroup()
	for _, d := range ds {
		t.logicalChain(anchor.node, d.path.Steps, d.pred, gid, d.not)
	}
	return true, nil
}

// patternVar resolves a path's root variable to a pattern binding.
func (t *translator) patternVar(p *xquery.Path) (*binding, error) {
	if p.Root != xquery.RootVariable {
		return nil, fmt.Errorf("translate: WHERE path %s must be variable-rooted", p)
	}
	b, _ := t.lookup(p.Var)
	if b == nil {
		return nil, fmt.Errorf("translate: unbound variable %s", p.Var)
	}
	if b.kind != bindPattern {
		return nil, fmt.Errorf("translate: predicate over construct-bound variable %s is not supported here", p.Var)
	}
	return b, nil
}

// spliceAbove inserts build(target) between target and its consumer in the
// current block plan (or re-roots the plan when target is the root).
func (t *translator) spliceAbove(target algebra.Op, build func(algebra.Op) algebra.Op) {
	if t.root == target {
		t.root = build(target)
		return
	}
	for _, op := range algebra.Ops(t.root) {
		for _, in := range op.Inputs() {
			if in == target {
				algebra.ReplaceInput(op, target, build(target))
				return
			}
		}
	}
	// target not in this block's plan (cannot happen for well-formed
	// queries); degrade gracefully by stacking on the root.
	t.root = build(t.root)
}

// resolveConstructStep resolves a one-step path below a construct-bound
// variable to the class label the inner Construct assigned (Figure 8: the
// myquan child of myauction is class 15, the copied bidders class 12).
func (t *translator) resolveConstructStep(b *binding, steps []xquery.Step) (int, bool) {
	if len(steps) == 0 {
		return b.rootLCL, true
	}
	if len(steps) != 1 {
		return 0, false
	}
	name := steps[0].Name
	var found int
	var walk func(c *pattern.ConstructNode, depth int)
	walk = func(c *pattern.ConstructNode, depth int) {
		if found != 0 {
			return
		}
		for _, ch := range c.Children {
			switch ch.Kind {
			case pattern.ConstructElement:
				if ch.Tag == name {
					// Label the constructed element on demand (the LCL=15
					// myquan label of Figure 8 exists precisely because the
					// outer block references it).
					if ch.NewLCL == 0 {
						ch.NewLCL = t.newLCL(name)
					}
					found = ch.NewLCL
					return
				}
			case pattern.ConstructSubtree:
				if ch.NewLCL > 0 && t.tagOf[ch.NewLCL] == name {
					found = ch.NewLCL
					return
				}
				if ch.NewLCL == 0 && t.tagOf[ch.FromLCL] == name {
					ch.NewLCL = ch.FromLCL
					found = ch.NewLCL
					return
				}
			}
			if steps[0].Axis == pattern.Descendant {
				walk(ch, depth+1)
			}
		}
	}
	walk(b.construct, 0)
	return found, found != 0
}
