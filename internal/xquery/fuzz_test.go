package xquery

import (
	"strings"
	"testing"

	"tlc/internal/xmark"
)

// FuzzParse feeds arbitrary input to the parser. Parse must either return
// an AST or an error — never panic, hang, or blow the stack — because the
// query service hands it attacker-controlled request bodies. The corpus
// seeds with the 23 workload queries (real accepted syntax), their
// mutations below, and a handful of inputs aimed at the parser's
// recursive structure.
func FuzzParse(f *testing.F) {
	for _, q := range xmark.Queries() {
		f.Add(q.Text)
		// Truncations exercise unexpected-EOF paths at every token edge.
		f.Add(q.Text[:len(q.Text)/2])
		// Doubling exercises trailing-garbage handling.
		f.Add(q.Text + " " + q.Text)
	}
	f.Add("")
	f.Add(";")
	f.Add(`FOR $p IN document("a.xml")//person RETURN $p`)
	f.Add(`FOR $p IN document("a.xml")//person RETURN <x>{$p/name}</x>`)
	f.Add(`LET $a := FOR $b IN document("x")//y RETURN $b RETURN $a`)
	f.Add(strings.Repeat(`FOR $x IN document("a")//b `, 40) + "RETURN $x")
	f.Add("FOR $x IN document(\"a\")//b WHERE " + strings.Repeat("$x/y = 1 AND ", 40) + "$x/z = 2 RETURN $x")
	f.Add("RETURN " + strings.Repeat("<a>", 100))
	f.Add(`FOR $p IN document("a.xml")/` + strings.Repeat("x/", 200) + "y RETURN $p")
	f.Add("\x00\xff\xfe")
	f.Add(`FOR $p IN document("unterminated`)
	f.Add(`FOR $p IN document("a")//b ORDER BY $p/x DESCENDING RETURN $p`)
	// Boolean-connective syntax: or/not()/exists and their nestings feed the
	// logical-edge translation paths.
	f.Add(`FOR $p IN document("a")//b WHERE $p/x = "1" OR $p/y = "2" RETURN $p`)
	f.Add(`FOR $p IN document("a")//b WHERE not($p/x) RETURN $p`)
	f.Add(`FOR $p IN document("a")//b WHERE not($p/x > 3) RETURN $p`)
	f.Add(`FOR $p IN document("a")//b WHERE not(not($p/x)) RETURN $p`)
	f.Add(`FOR $p IN document("a")//b WHERE $p/x OR not($p/y) OR $p/z = "9" RETURN $p`)
	f.Add(`FOR $p IN document("a")//b WHERE $p/a > 1 AND ($p/x OR $p/y) RETURN $p`)
	f.Add(`FOR $p IN document("a")//b WHERE not($p/x AND $p/y OR not($p/z)) RETURN $p`)
	f.Add(`FOR $p IN document("a")//b WHERE ` + strings.Repeat("not(", 50) + "$p/x" + strings.Repeat(")", 50) + " RETURN $p")
	f.Add(`FOR $p IN document("a")//b WHERE ` + strings.Repeat("$p/x OR ", 40) + "$p/y RETURN $p")
	f.Add(`FOR $p IN document("a")//b WHERE not($p/x RETURN $p`)
	f.Add(`FOR $p IN document("a")//b WHERE not() RETURN $p`)
	f.Add(`FOR $p IN document("a")//b WHERE (($p/x OR ($p/y)) AND not(($p/z))) RETURN $p`)

	f.Fuzz(func(t *testing.T, src string) {
		// Deep recursion on pathological nesting is the realistic failure
		// mode; cap input size the same way the service caps request
		// bodies, so the fuzzer explores syntax rather than sheer length.
		if len(src) > 1<<16 {
			t.Skip()
		}
		ast, err := Parse(src)
		if err == nil && ast == nil {
			t.Fatal("Parse returned nil AST and nil error")
		}
	})
}
