package xquery

import (
	"strings"
	"testing"

	"tlc/internal/pattern"
)

// q1Text is Query Q1 from the paper (Figure 1).
const q1Text = `
FOR $p IN document("auction.xml")//person
FOR $o IN document("auction.xml")//open_auction
WHERE count($o/bidder) > 5 AND $p/age > 25
  AND $p/@id = $o/bidder//@person
RETURN
<person name={$p/name/text()}> $o/bidder </person>`

// q2Text is Query Q2 from the paper (Figure 3).
const q2Text = `
FOR $p IN document("auction.xml")//person
LET $a := FOR $o IN document("auction.xml")//open_auction
          WHERE count($o/bidder) > 5
            AND $p/@id = $o/bidder//@person
          RETURN <myauction> {$o/bidder}
                   <myquan>{$o/quantity/text()}</myquan>
                 </myauction>
WHERE $p/age > 25
  AND EVERY $i IN $a/myquan SATISFIES $i > 2
RETURN
<person name={$p/name/text()}>{$a/bidder}</person>`

func mustParse(t *testing.T, src string) *FLWOR {
	t.Helper()
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return f
}

func TestParseQ1(t *testing.T) {
	f := mustParse(t, q1Text)
	if len(f.Bindings) != 2 {
		t.Fatalf("bindings = %d, want 2", len(f.Bindings))
	}
	if f.Bindings[0].Var != "$p" || f.Bindings[0].Kind != BindFor {
		t.Errorf("binding 0 = %+v", f.Bindings[0])
	}
	p := f.Bindings[0].Path
	if p.Root != RootDocument || p.Doc != "auction.xml" {
		t.Errorf("path root = %+v", p)
	}
	if len(p.Steps) != 1 || p.Steps[0].Name != "person" || p.Steps[0].Axis != pattern.Descendant {
		t.Errorf("steps = %+v", p.Steps)
	}
	// WHERE: ((count(...) > 5 AND age > 25) AND @id = @person)
	and, ok := f.Where.(*And)
	if !ok {
		t.Fatalf("where = %T", f.Where)
	}
	join, ok := and.R.(*Comparison)
	if !ok || join.RightPath == nil {
		t.Fatalf("value join = %+v", and.R)
	}
	if join.Left.String() != "$p/@id" {
		t.Errorf("join left = %s", join.Left)
	}
	if join.RightPath.String() != "$o/bidder//@person" {
		t.Errorf("join right = %s", join.RightPath)
	}
	inner, ok := and.L.(*And)
	if !ok {
		t.Fatalf("inner = %T", and.L)
	}
	agg, ok := inner.L.(*AggrPred)
	if !ok || agg.Fn != "count" || agg.Op != pattern.GT || agg.Value != "5" {
		t.Fatalf("aggregate predicate = %+v", inner.L)
	}
	simple, ok := inner.R.(*Comparison)
	if !ok || simple.RightVal != "25" || simple.Left.String() != "$p/age" {
		t.Fatalf("simple predicate = %+v", inner.R)
	}
	// RETURN element.
	r := f.Return
	if r.Kind != RetElement || r.Tag != "person" {
		t.Fatalf("return = %+v", r)
	}
	if len(r.Attrs) != 1 || r.Attrs[0].Name != "name" || !r.Attrs[0].Path.Text {
		t.Errorf("return attrs = %+v", r.Attrs)
	}
	if len(r.Children) != 1 || r.Children[0].Kind != RetPath || r.Children[0].Path.String() != "$o/bidder" {
		t.Errorf("return children = %+v", r.Children[0])
	}
}

func TestParseQ2Nested(t *testing.T) {
	f := mustParse(t, q2Text)
	if len(f.Bindings) != 2 {
		t.Fatalf("bindings = %d", len(f.Bindings))
	}
	let := f.Bindings[1]
	if let.Kind != BindLet || let.Var != "$a" || let.Sub == nil {
		t.Fatalf("let binding = %+v", let)
	}
	inner := let.Sub
	if len(inner.Bindings) != 1 || inner.Bindings[0].Var != "$o" {
		t.Errorf("inner bindings = %+v", inner.Bindings)
	}
	if inner.Return.Kind != RetElement || inner.Return.Tag != "myauction" {
		t.Errorf("inner return = %+v", inner.Return)
	}
	if len(inner.Return.Children) != 2 {
		t.Fatalf("inner return children = %d", len(inner.Return.Children))
	}
	if inner.Return.Children[1].Tag != "myquan" {
		t.Errorf("second child = %+v", inner.Return.Children[1])
	}
	// Outer WHERE has the EVERY quantifier.
	and, ok := f.Where.(*And)
	if !ok {
		t.Fatalf("outer where = %T", f.Where)
	}
	q, ok := and.R.(*Quantified)
	if !ok || !q.Every || q.Var != "$i" {
		t.Fatalf("quantifier = %+v", and.R)
	}
	if q.Path.String() != "$a/myquan" || q.Cond.Left.String() != "$i" {
		t.Errorf("quantifier paths: %s, %s", q.Path, q.Cond.Left)
	}
}

func TestParseOrderBy(t *testing.T) {
	f := mustParse(t, `FOR $p IN document("a.xml")//person
		ORDER BY $p/name DESCENDING
		RETURN $p/name`)
	if len(f.OrderBy) != 1 || !f.OrderBy[0].Descending {
		t.Fatalf("order by = %+v", f.OrderBy)
	}
	if f.Return.Kind != RetPath {
		t.Errorf("return kind = %v", f.Return.Kind)
	}
}

func TestParseOrExpression(t *testing.T) {
	f := mustParse(t, `FOR $p IN document("a.xml")//person
		WHERE $p/age > 60 OR $p/age < 18
		RETURN $p/name`)
	if _, ok := f.Where.(*Or); !ok {
		t.Fatalf("where = %T", f.Where)
	}
}

func TestParseAggregateReturn(t *testing.T) {
	f := mustParse(t, `FOR $p IN document("a.xml")//site
		RETURN count($p/person)`)
	if f.Return.Kind != RetAggr || f.Return.Fn != "count" {
		t.Fatalf("return = %+v", f.Return)
	}
}

func TestParseEmptyElementAndLiteral(t *testing.T) {
	f := mustParse(t, `FOR $p IN document("a.xml")//x
		RETURN <out note="hi"><empty/>"lit"</out>`)
	r := f.Return
	if len(r.Attrs) != 1 || r.Attrs[0].Literal != "hi" {
		t.Errorf("attrs = %+v", r.Attrs)
	}
	if len(r.Children) != 2 || r.Children[0].Tag != "empty" || r.Children[1].Kind != RetLiteral {
		t.Errorf("children = %+v", r.Children)
	}
}

func TestParseSomeQuantifier(t *testing.T) {
	f := mustParse(t, `FOR $p IN document("a.xml")//person
		WHERE SOME $w IN $p/watch SATISFIES $w/price > 10
		RETURN $p`)
	q, ok := f.Where.(*Quantified)
	if !ok || q.Every {
		t.Fatalf("where = %+v", f.Where)
	}
}

func TestParseForOverNestedFLWOR(t *testing.T) {
	f := mustParse(t, `FOR $x IN (FOR $y IN document("a.xml")//b RETURN $y/c)
		RETURN $x`)
	if f.Bindings[0].Sub == nil {
		t.Fatal("nested FOR source not parsed")
	}
}

func TestParseComments(t *testing.T) {
	f := mustParse(t, `(: find people :) FOR $p IN document("a.xml")//person (: nested (: ok :) :)
		RETURN $p/name`)
	if len(f.Bindings) != 1 {
		t.Fatal("comment handling broke parse")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`WHERE $p/a > 1 RETURN $p`,   // no FOR
		`FOR $p IN RETURN $p`,        // missing path
		`FOR $p IN document("a")//x`, // missing RETURN
		`FOR $p IN document("a")//x RETURN <a></b>`,             // tag mismatch
		`FOR $p IN document("a")//x WHERE not($p/a RETURN $p`,   // unclosed not()
		`FOR $p IN document("a")//x WHERE count $p RETURN $p`,   // malformed count
		`FOR $p IN document("a")//x RETURN <a`,                  // unterminated
		`FOR $p IN document("a")//x[1] RETURN $p`,               // branching predicate
		`FOR $p IN document("a")//x RETURN $p/text()/more`,      // steps after text()
		`FOR $p IN document("a")//x RETURN $p "extra" trailing`, // trailing junk
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestPathString(t *testing.T) {
	f := mustParse(t, `FOR $p IN document("auction.xml")//open_auction/bidder RETURN $p/@id`)
	if got := f.Bindings[0].Path.String(); got != `document("auction.xml")//open_auction/bidder` {
		t.Errorf("path string = %s", got)
	}
	if got := f.Return.Path.String(); got != "$p/@id" {
		t.Errorf("return path = %s", got)
	}
}

func TestExprStrings(t *testing.T) {
	f := mustParse(t, q2Text)
	s := f.Where.String()
	for _, want := range []string{"$p/age > 25", "EVERY $i IN $a/myquan", "AND"} {
		if !strings.Contains(s, want) {
			t.Errorf("where string missing %q: %s", want, s)
		}
	}
}

func TestLexerTokens(t *testing.T) {
	toks, err := lex(`$v <= 5.5 != 'str' () {} </ /> . * , :=`)
	if err != nil {
		t.Fatal(err)
	}
	kinds := []tokenKind{tokVariable, tokLE, tokNumber, tokNE, tokString,
		tokLParen, tokRParen, tokLBrace, tokRBrace, tokLTSlash, tokSlashGT,
		tokDot, tokStar, tokComma, tokAssign, tokEOF}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(kinds), toks)
	}
	for i, k := range kinds {
		if toks[i].kind != k {
			t.Errorf("token %d = %v, want %v", i, toks[i].kind, k)
		}
	}
}

func TestLexerErrors(t *testing.T) {
	for _, bad := range []string{`"unterminated`, `$`, `(: open comment`, "\x01"} {
		if _, err := lex(bad); err == nil {
			t.Errorf("lex(%q) succeeded", bad)
		}
	}
}

func TestTokenKindStrings(t *testing.T) {
	if tokEOF.String() != "end of input" || tokLE.String() != "<=" {
		t.Error("token kind strings wrong")
	}
	if tokenKind(200).String() == "" {
		t.Error("unknown kind has empty string")
	}
}

func TestCaseInsensitiveKeywords(t *testing.T) {
	f := mustParse(t, `for $p in document("a.xml")//person where $p/age > 1 return $p/name`)
	if len(f.Bindings) != 1 || f.Where == nil {
		t.Error("lower-case keywords rejected")
	}
}

func TestSingleQuoteStrings(t *testing.T) {
	f := mustParse(t, `FOR $p IN document('a.xml')//x WHERE $p/@k = 'v' RETURN $p`)
	c := f.Where.(*Comparison)
	if c.RightVal != "v" {
		t.Errorf("single-quoted literal = %q", c.RightVal)
	}
}
