package xquery

import (
	"fmt"
	"strings"

	"tlc/internal/pattern"
)

// Parse parses a query in the Figure 5 fragment and returns its AST.
func Parse(src string) (*FLWOR, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{src: src, toks: toks}
	f, err := p.parseFLWOR()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, p.errf("trailing input starting with %s", p.peek().kind)
	}
	return f, nil
}

type parser struct {
	src  string
	toks []token
	pos  int
}

func (p *parser) peek() token  { return p.toks[p.pos] }
func (p *parser) peek2() token { return p.toks[min(p.pos+1, len(p.toks)-1)] }
func (p *parser) next() token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) errf(format string, args ...any) error {
	t := p.peek()
	line := 1 + strings.Count(p.src[:t.pos], "\n")
	return fmt.Errorf("xquery: line %d (offset %d): %s", line, t.pos, fmt.Sprintf(format, args...))
}

func (p *parser) expect(k tokenKind) (token, error) {
	if p.peek().kind != k {
		return token{}, p.errf("expected %s, found %s %q", k, p.peek().kind, p.peek().text)
	}
	return p.next(), nil
}

func (p *parser) expectKeyword(kw string) error {
	if !keyword(p.peek(), kw) {
		return p.errf("expected %s, found %q", strings.ToUpper(kw), p.peek().text)
	}
	p.next()
	return nil
}

// aggregate function names of the fragment.
var aggFuncs = map[string]bool{"count": true, "avg": true, "sum": true, "min": true, "max": true}

func (p *parser) parseFLWOR() (*FLWOR, error) {
	f := &FLWOR{}
	for {
		switch {
		case keyword(p.peek(), "for"):
			p.next()
			b, err := p.parseBinding(BindFor)
			if err != nil {
				return nil, err
			}
			f.Bindings = append(f.Bindings, b)
		case keyword(p.peek(), "let"):
			p.next()
			b, err := p.parseBinding(BindLet)
			if err != nil {
				return nil, err
			}
			f.Bindings = append(f.Bindings, b)
		default:
			if len(f.Bindings) == 0 {
				return nil, p.errf("expected FOR or LET, found %q", p.peek().text)
			}
			goto clauses
		}
	}
clauses:
	if keyword(p.peek(), "where") {
		p.next()
		w, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		f.Where = w
	}
	if keyword(p.peek(), "order") {
		p.next()
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			path, err := p.parsePath()
			if err != nil {
				return nil, err
			}
			f.OrderBy = append(f.OrderBy, OrderKey{Path: path})
			if p.peek().kind == tokComma {
				p.next()
				continue
			}
			break
		}
		switch {
		case keyword(p.peek(), "ascending"):
			p.next()
		case keyword(p.peek(), "descending"):
			p.next()
			for i := range f.OrderBy {
				f.OrderBy[i].Descending = true
			}
		}
	}
	if err := p.expectKeyword("return"); err != nil {
		return nil, err
	}
	ret, err := p.parseReturnExpr()
	if err != nil {
		return nil, err
	}
	f.Return = ret
	return f, nil
}

func (p *parser) parseBinding(kind BindKind) (Binding, error) {
	v, err := p.expect(tokVariable)
	if err != nil {
		return Binding{}, err
	}
	if kind == BindFor {
		if err := p.expectKeyword("in"); err != nil {
			return Binding{}, err
		}
	} else {
		if _, err := p.expect(tokAssign); err != nil {
			return Binding{}, err
		}
	}
	b := Binding{Kind: kind, Var: v.text}
	// Nested FLWOR source, optionally parenthesized.
	if keyword(p.peek(), "for") || keyword(p.peek(), "let") {
		sub, err := p.parseFLWOR()
		if err != nil {
			return Binding{}, err
		}
		b.Sub = sub
		return b, nil
	}
	if p.peek().kind == tokLParen && (keyword(p.peek2(), "for") || keyword(p.peek2(), "let")) {
		p.next()
		sub, err := p.parseFLWOR()
		if err != nil {
			return Binding{}, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return Binding{}, err
		}
		b.Sub = sub
		return b, nil
	}
	path, err := p.parsePath()
	if err != nil {
		return Binding{}, err
	}
	b.Path = path
	return b, nil
}

// parsePath parses a Simple Path.
func (p *parser) parsePath() (*Path, error) {
	path := &Path{}
	switch {
	case keyword(p.peek(), "document") || keyword(p.peek(), "doc"):
		p.next()
		if _, err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		name, err := p.expect(tokString)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		path.Root = RootDocument
		path.Doc = name.text
	case p.peek().kind == tokVariable:
		path.Root = RootVariable
		path.Var = p.next().text
	default:
		return nil, p.errf("expected document(...) or a variable, found %q", p.peek().text)
	}
	for {
		var axis pattern.Axis
		switch p.peek().kind {
		case tokSlash:
			axis = pattern.Child
		case tokSlashSlash:
			axis = pattern.Descendant
		default:
			return path, nil
		}
		p.next()
		switch {
		case p.peek().kind == tokAt:
			p.next()
			name, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			path.Steps = append(path.Steps, Step{Axis: axis, Name: "@" + name.text})
		case p.peek().kind == tokIdent && p.peek().text == "text" && p.peek2().kind == tokLParen:
			p.next()
			p.next()
			if _, err := p.expect(tokRParen); err != nil {
				return nil, err
			}
			if axis != pattern.Child {
				return nil, p.errf("text() requires the / axis")
			}
			path.Text = true
			return path, nil
		case p.peek().kind == tokIdent:
			path.Steps = append(path.Steps, Step{Axis: axis, Name: p.next().text})
		default:
			return nil, p.errf("expected a step name after %s", axis)
		}
	}
}

// parseOr parses WhereExpr with OR as the lowest-precedence connective.
func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for keyword(p.peek(), "or") {
		p.next()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Or{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseWhereAtom()
	if err != nil {
		return nil, err
	}
	for keyword(p.peek(), "and") {
		p.next()
		r, err := p.parseWhereAtom()
		if err != nil {
			return nil, err
		}
		l = &And{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseWhereAtom() (Expr, error) {
	t := p.peek()
	switch {
	case t.kind == tokLParen:
		p.next()
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case keyword(t, "every") || keyword(t, "some"):
		return p.parseQuantified()
	case t.kind == tokIdent && strings.ToLower(t.text) == "not" && p.peek2().kind == tokLParen:
		p.next()
		p.next()
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return &Not{X: e}, nil
	case t.kind == tokIdent && aggFuncs[strings.ToLower(t.text)]:
		fn := strings.ToLower(p.next().text)
		if _, err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		path, err := p.parsePath()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		op, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		val, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		return &AggrPred{Fn: fn, Path: path, Op: op, Value: val}, nil
	default:
		left, err := p.parsePath()
		if err != nil {
			return nil, err
		}
		// A path not followed by a comparison operator is a bare existence
		// test (useful inside not(...)).
		switch p.peek().kind {
		case tokEQ, tokNE, tokLT, tokLE, tokGT, tokGE:
		default:
			return &Exists{Path: left}, nil
		}
		op, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		// Value join or simple predicate?
		if p.peek().kind == tokVariable || keyword(p.peek(), "document") || keyword(p.peek(), "doc") {
			right, err := p.parsePath()
			if err != nil {
				return nil, err
			}
			return &Comparison{Left: left, Op: op, RightPath: right}, nil
		}
		val, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		return &Comparison{Left: left, Op: op, RightVal: val}, nil
	}
}

func (p *parser) parseQuantified() (Expr, error) {
	every := keyword(p.peek(), "every")
	p.next()
	v, err := p.expect(tokVariable)
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("in"); err != nil {
		return nil, err
	}
	path, err := p.parsePath()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("satisfies"); err != nil {
		return nil, err
	}
	left, err := p.parsePath()
	if err != nil {
		return nil, err
	}
	op, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	val, err := p.parseLiteral()
	if err != nil {
		return nil, err
	}
	return &Quantified{
		Every: every,
		Var:   v.text,
		Path:  path,
		Cond:  &Comparison{Left: left, Op: op, RightVal: val},
	}, nil
}

func (p *parser) parseCmp() (pattern.Cmp, error) {
	switch p.peek().kind {
	case tokEQ:
		p.next()
		return pattern.EQ, nil
	case tokNE:
		p.next()
		return pattern.NE, nil
	case tokLT:
		p.next()
		return pattern.LT, nil
	case tokLE:
		p.next()
		return pattern.LE, nil
	case tokGT:
		p.next()
		return pattern.GT, nil
	case tokGE:
		p.next()
		return pattern.GE, nil
	default:
		return 0, p.errf("expected a comparison operator, found %q", p.peek().text)
	}
}

func (p *parser) parseLiteral() (string, error) {
	t := p.peek()
	if t.kind == tokString || t.kind == tokNumber {
		p.next()
		return t.text, nil
	}
	return "", p.errf("expected a string or number literal, found %q", t.text)
}

// parseReturnExpr parses one RETURN expression.
func (p *parser) parseReturnExpr() (*RetNode, error) {
	t := p.peek()
	switch {
	case t.kind == tokLT:
		return p.parseElementConstructor()
	case t.kind == tokLBrace:
		p.next()
		inner, err := p.parseReturnExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRBrace); err != nil {
			return nil, err
		}
		return inner, nil
	case keyword(t, "for") || keyword(t, "let"):
		sub, err := p.parseFLWOR()
		if err != nil {
			return nil, err
		}
		return &RetNode{Kind: RetSub, Sub: sub}, nil
	case t.kind == tokIdent && aggFuncs[strings.ToLower(t.text)]:
		fn := strings.ToLower(p.next().text)
		if _, err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		path, err := p.parsePath()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return &RetNode{Kind: RetAggr, Fn: fn, Path: path}, nil
	case t.kind == tokString:
		p.next()
		return &RetNode{Kind: RetLiteral, Literal: t.text}, nil
	default:
		path, err := p.parsePath()
		if err != nil {
			return nil, err
		}
		return &RetNode{Kind: RetPath, Path: path}, nil
	}
}

// parseElementConstructor parses <tag attr={path}...> children </tag>.
func (p *parser) parseElementConstructor() (*RetNode, error) {
	if _, err := p.expect(tokLT); err != nil {
		return nil, err
	}
	tag, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	el := &RetNode{Kind: RetElement, Tag: tag.text}
	for p.peek().kind == tokIdent {
		name := p.next()
		if _, err := p.expect(tokEQ); err != nil {
			return nil, err
		}
		switch p.peek().kind {
		case tokLBrace:
			p.next()
			path, err := p.parsePath()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokRBrace); err != nil {
				return nil, err
			}
			el.Attrs = append(el.Attrs, RetAttr{Name: name.text, Path: path})
		case tokString:
			el.Attrs = append(el.Attrs, RetAttr{Name: name.text, Literal: p.next().text})
		default:
			return nil, p.errf("expected {path} or a string as attribute value")
		}
	}
	if p.peek().kind == tokSlashGT {
		p.next()
		return el, nil
	}
	if _, err := p.expect(tokGT); err != nil {
		return nil, err
	}
	for p.peek().kind != tokLTSlash {
		if p.peek().kind == tokEOF {
			return nil, p.errf("unterminated element constructor <%s>", el.Tag)
		}
		child, err := p.parseReturnExpr()
		if err != nil {
			return nil, err
		}
		el.Children = append(el.Children, child)
	}
	p.next() // consume </
	closeTag, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if closeTag.text != el.Tag {
		return nil, p.errf("mismatched closing tag </%s> for <%s>", closeTag.text, el.Tag)
	}
	if _, err := p.expect(tokGT); err != nil {
		return nil, err
	}
	return el, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
