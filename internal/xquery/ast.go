package xquery

import (
	"fmt"
	"sort"
	"strings"

	"tlc/internal/pattern"
)

// FLWOR is a (possibly nested) FOR-LET-WHERE-ORDER BY-RETURN expression.
type FLWOR struct {
	Bindings []Binding
	Where    Expr // nil when absent
	OrderBy  []OrderKey
	Return   *RetNode
}

// BindKind discriminates FOR from LET bindings.
type BindKind uint8

// Binding kinds.
const (
	BindFor BindKind = iota
	BindLet
)

// Binding is one FOR or LET clause. Exactly one of Path and Sub is set:
// the variable ranges over a simple path or over the result of a nested
// FLWOR.
type Binding struct {
	Kind BindKind
	Var  string // with the leading $
	Path *Path
	Sub  *FLWOR
}

// PathRoot discriminates the anchor of a simple path.
type PathRoot uint8

// Path roots.
const (
	// RootDocument anchors at document("name").
	RootDocument PathRoot = iota
	// RootVariable anchors at a bound variable.
	RootVariable
)

// Path is a Simple Path: an anchor followed by /, // steps without
// branching predicates. A trailing text() is recorded in Text.
type Path struct {
	Root PathRoot
	Doc  string // document name for RootDocument
	Var  string // variable for RootVariable
	// Steps are the location steps in order. Attribute steps carry the
	// "@" prefix in Name.
	Steps []Step
	// Text marks a trailing /text() step.
	Text bool
}

// Step is one location step of a simple path.
type Step struct {
	Axis pattern.Axis
	Name string
}

// String renders the path in XPath syntax.
func (p *Path) String() string {
	var sb strings.Builder
	if p.Root == RootDocument {
		fmt.Fprintf(&sb, "document(%q)", p.Doc)
	} else {
		sb.WriteString(p.Var)
	}
	for _, s := range p.Steps {
		sb.WriteString(s.Axis.String())
		sb.WriteString(s.Name)
	}
	if p.Text {
		sb.WriteString("/text()")
	}
	return sb.String()
}

// Expr is a WHERE expression.
type Expr interface {
	exprNode()
	String() string
}

// And is a conjunction.
type And struct{ L, R Expr }

// Or is a disjunction.
type Or struct{ L, R Expr }

// Comparison is either a simple predicate expression (path op literal) or
// a value join (path op path); exactly one of RightValue / RightPath is
// meaningful, discriminated by RightPath != nil.
type Comparison struct {
	Left      *Path
	Op        pattern.Cmp
	RightVal  string
	RightPath *Path
}

// AggrPred is an aggregate predicate expression: Fn(path) op literal.
type AggrPred struct {
	Fn    string
	Path  *Path
	Op    pattern.Cmp
	Value string
}

// Quantified is EVERY/SOME $v IN path SATISFIES cond, where cond is a
// simple predicate over $v.
type Quantified struct {
	Every bool
	Var   string
	Path  *Path
	Cond  *Comparison
}

// Not is a boolean negation: not(expr).
type Not struct{ X Expr }

// Exists is a bare-path existence test: true when the path has at least
// one match. Produced for paths used as predicates, e.g. not($p/phone).
type Exists struct{ Path *Path }

func (*And) exprNode()        {}
func (*Or) exprNode()         {}
func (*Comparison) exprNode() {}
func (*AggrPred) exprNode()   {}
func (*Quantified) exprNode() {}
func (*Not) exprNode()        {}
func (*Exists) exprNode()     {}

// String implementations render expressions for diagnostics.
func (e *And) String() string { return "(" + e.L.String() + " AND " + e.R.String() + ")" }
func (e *Or) String() string  { return "(" + e.L.String() + " OR " + e.R.String() + ")" }
func (e *Comparison) String() string {
	if e.RightPath != nil {
		return e.Left.String() + " " + e.Op.String() + " " + e.RightPath.String()
	}
	return e.Left.String() + " " + e.Op.String() + " " + e.RightVal
}
func (e *AggrPred) String() string {
	return fmt.Sprintf("%s(%s) %s %s", e.Fn, e.Path, e.Op, e.Value)
}
func (e *Quantified) String() string {
	q := "SOME"
	if e.Every {
		q = "EVERY"
	}
	return fmt.Sprintf("%s %s IN %s SATISFIES %s", q, e.Var, e.Path, e.Cond)
}
func (e *Not) String() string    { return "not(" + e.X.String() + ")" }
func (e *Exists) String() string { return e.Path.String() }

// OrderKey is one ORDER BY key.
type OrderKey struct {
	Path       *Path
	Descending bool
}

// RetKind discriminates RETURN expression nodes.
type RetKind uint8

// Return node kinds.
const (
	// RetPath emits the subtrees (or text) that a simple path selects.
	RetPath RetKind = iota
	// RetAggr emits an aggregate over a simple path.
	RetAggr
	// RetElement constructs an element with attributes and children.
	RetElement
	// RetSub emits the result of a nested FLWOR.
	RetSub
	// RetLiteral emits literal text.
	RetLiteral
)

// RetNode is a node of a RETURN expression tree.
type RetNode struct {
	Kind     RetKind
	Path     *Path  // RetPath, RetAggr
	Fn       string // RetAggr
	Tag      string // RetElement
	Attrs    []RetAttr
	Children []*RetNode
	Sub      *FLWOR // RetSub
	Literal  string // RetLiteral
}

// RetAttr is an attribute of a constructed element; its value comes from a
// simple path (usually with a trailing text()) or a literal.
type RetAttr struct {
	Name    string
	Path    *Path
	Literal string
}

// Vars returns the variables bound by the FLWOR's own clauses, in order.
func (f *FLWOR) Vars() []string {
	out := make([]string, len(f.Bindings))
	for i, b := range f.Bindings {
		out[i] = b.Var
	}
	return out
}

// Documents returns the names of every document("...") reference anywhere
// in the query (bindings, WHERE, ORDER BY, RETURN, nested FLWORs), sorted
// and deduplicated. The sharded store routes locks and plan-cache validity
// by document, so the set of referenced documents is the query's shard
// footprint.
func (f *FLWOR) Documents() []string {
	set := make(map[string]struct{})
	f.collectDocuments(set)
	out := make([]string, 0, len(set))
	for name := range set {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func (f *FLWOR) collectDocuments(set map[string]struct{}) {
	if f == nil {
		return
	}
	addPath := func(p *Path) {
		if p != nil && p.Root == RootDocument {
			set[p.Doc] = struct{}{}
		}
	}
	var addExpr func(e Expr)
	addExpr = func(e Expr) {
		switch x := e.(type) {
		case *And:
			addExpr(x.L)
			addExpr(x.R)
		case *Or:
			addExpr(x.L)
			addExpr(x.R)
		case *Comparison:
			addPath(x.Left)
			addPath(x.RightPath)
		case *AggrPred:
			addPath(x.Path)
		case *Quantified:
			addPath(x.Path)
			if x.Cond != nil {
				addExpr(x.Cond)
			}
		case *Not:
			addExpr(x.X)
		case *Exists:
			addPath(x.Path)
		}
	}
	var addRet func(r *RetNode)
	addRet = func(r *RetNode) {
		if r == nil {
			return
		}
		addPath(r.Path)
		for _, a := range r.Attrs {
			addPath(a.Path)
		}
		for _, c := range r.Children {
			addRet(c)
		}
		r.Sub.collectDocuments(set)
	}
	for _, b := range f.Bindings {
		addPath(b.Path)
		b.Sub.collectDocuments(set)
	}
	if f.Where != nil {
		addExpr(f.Where)
	}
	for _, k := range f.OrderBy {
		addPath(k.Path)
	}
	addRet(f.Return)
}
