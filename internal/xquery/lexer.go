// Package xquery implements a lexer, AST and recursive-descent parser for
// the XQuery fragment of Figure 5 of the TLC paper: FLWOR expressions with
// FOR/LET clauses over simple paths or nested FLWORs, WHERE expressions
// built from simple predicates, aggregate predicates, value joins,
// EVERY/SOME quantifiers and AND/OR, an optional ORDER BY, and RETURN
// expressions combining paths, aggregates, nested FLWORs and element
// constructors.
package xquery

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer tokens.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokVariable // $name
	tokString   // "..." or '...'
	tokNumber
	tokSlash      // /
	tokSlashSlash // //
	tokAt         // @
	tokLParen     // (
	tokRParen     // )
	tokLBrace     // {
	tokRBrace     // }
	tokLT         // <
	tokGT         // >
	tokLE         // <=
	tokGE         // >=
	tokEQ         // =
	tokNE         // !=
	tokComma      // ,
	tokAssign     // :=
	tokLTSlash    // </
	tokSlashGT    // />
	tokDot        // .
	tokStar       // *
)

func (k tokenKind) String() string {
	names := map[tokenKind]string{
		tokEOF: "end of input", tokIdent: "identifier", tokVariable: "variable",
		tokString: "string", tokNumber: "number", tokSlash: "/", tokSlashSlash: "//",
		tokAt: "@", tokLParen: "(", tokRParen: ")", tokLBrace: "{", tokRBrace: "}",
		tokLT: "<", tokGT: ">", tokLE: "<=", tokGE: ">=", tokEQ: "=", tokNE: "!=",
		tokComma: ",", tokAssign: ":=", tokLTSlash: "</", tokSlashGT: "/>",
		tokDot: ".", tokStar: "*",
	}
	if n, ok := names[k]; ok {
		return n
	}
	return fmt.Sprintf("token(%d)", k)
}

type token struct {
	kind tokenKind
	text string
	pos  int // byte offset in the input, for error messages
}

// lex tokenizes the query text. It is context-free; the parser resolves
// the "<" comparison-vs-constructor ambiguity.
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	n := len(src)
	emit := func(k tokenKind, text string, pos int) {
		toks = append(toks, token{kind: k, text: text, pos: pos})
	}
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(' && i+1 < n && src[i+1] == ':':
			// XQuery comment (: ... :), possibly nested.
			depth := 1
			j := i + 2
			for j+1 < n && depth > 0 {
				if src[j] == '(' && src[j+1] == ':' {
					depth++
					j += 2
				} else if src[j] == ':' && src[j+1] == ')' {
					depth--
					j += 2
				} else {
					j++
				}
			}
			if depth != 0 {
				return nil, fmt.Errorf("xquery: unterminated comment at offset %d", i)
			}
			i = j
		case c == '$':
			j := i + 1
			for j < n && isNameByte(src[j]) {
				j++
			}
			if j == i+1 {
				return nil, fmt.Errorf("xquery: bare $ at offset %d", i)
			}
			emit(tokVariable, src[i:j], i)
			i = j
		case c == '"' || c == '\'':
			q := c
			j := i + 1
			for j < n && src[j] != q {
				j++
			}
			if j >= n {
				return nil, fmt.Errorf("xquery: unterminated string at offset %d", i)
			}
			emit(tokString, src[i+1:j], i)
			i = j + 1
		case c >= '0' && c <= '9':
			j := i
			for j < n && (src[j] >= '0' && src[j] <= '9' || src[j] == '.') {
				j++
			}
			emit(tokNumber, src[i:j], i)
			i = j
		case isNameStart(rune(c)):
			j := i
			for j < n && isNameByte(src[j]) {
				j++
			}
			emit(tokIdent, src[i:j], i)
			i = j
		default:
			two := ""
			if i+1 < n {
				two = src[i : i+2]
			}
			switch two {
			case "//":
				emit(tokSlashSlash, two, i)
				i += 2
				continue
			case "<=":
				emit(tokLE, two, i)
				i += 2
				continue
			case ">=":
				emit(tokGE, two, i)
				i += 2
				continue
			case "!=":
				emit(tokNE, two, i)
				i += 2
				continue
			case ":=":
				emit(tokAssign, two, i)
				i += 2
				continue
			case "</":
				emit(tokLTSlash, two, i)
				i += 2
				continue
			case "/>":
				emit(tokSlashGT, two, i)
				i += 2
				continue
			}
			switch c {
			case '/':
				emit(tokSlash, "/", i)
			case '@':
				emit(tokAt, "@", i)
			case '(':
				emit(tokLParen, "(", i)
			case ')':
				emit(tokRParen, ")", i)
			case '{':
				emit(tokLBrace, "{", i)
			case '}':
				emit(tokRBrace, "}", i)
			case '<':
				emit(tokLT, "<", i)
			case '>':
				emit(tokGT, ">", i)
			case '=':
				emit(tokEQ, "=", i)
			case ',':
				emit(tokComma, ",", i)
			case '.':
				emit(tokDot, ".", i)
			case '*':
				emit(tokStar, "*", i)
			default:
				return nil, fmt.Errorf("xquery: unexpected character %q at offset %d", c, i)
			}
			i++
		}
	}
	emit(tokEOF, "", n)
	return toks, nil
}

// isNameStart holds for bytes that may begin a name. The lexer scans
// bytes, so a byte >= 0x80 must not qualify even though casting it to a
// rune can name a Unicode letter (U+00FF etc.): such a byte would start a
// name that isNameByte immediately ends, emitting empty tokens without
// consuming input. Non-ASCII input is rejected as an unexpected character.
func isNameStart(r rune) bool {
	return r < 0x80 && (unicode.IsLetter(r) || r == '_')
}

func isNameByte(b byte) bool {
	return b == '_' || b == '-' || b >= '0' && b <= '9' ||
		b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z'
}

// keyword reports whether an identifier token equals the given keyword,
// case-insensitively (the paper writes keywords in upper case, common
// XQuery style is lower case).
func keyword(t token, kw string) bool {
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}
