package seq

import (
	"fmt"
	"sync"
	"sync/atomic"
	"unsafe"

	"tlc/internal/governor"
	"tlc/internal/store"
	"tlc/internal/xmltree"
)

// slabNodes is the number of Node structs per slab. A Node is ~100 bytes,
// so one slab is ~50KB — large enough that a query allocating millions of
// witness nodes pays thousands of allocations instead of millions, small
// enough that a tiny query wastes at most one mostly-empty slab.
const slabNodes = 512

// slab is one contiguous allocation of witness nodes. Nodes are handed out
// by bumping len(buf); the backing array is never reallocated (cap is
// fixed), so pointers into it stay valid for the life of the slab.
type slab struct {
	buf []Node
}

// Arena is a per-evaluation slab allocator for witness nodes. One Arena is
// created per query run (see algebra.NewContextFor); every operator
// allocates its short-lived nodes from it, turning the per-node `new`
// into a pointer bump most of the time.
//
// Concurrency: partially filled slabs live in a sync.Pool. A goroutine
// Gets a slab (gaining exclusive access), bumps it, and Puts it back, so
// the parallel executor's workers allocate without a shared lock. A slab
// dropped by the pool only wastes its unused tail — nodes already handed
// out are kept alive by the trees referencing them.
//
// Lifetime: slabs are never recycled across queries. Result trees returned
// to the caller keep their slabs reachable, and the GC frees everything
// when the result is dropped — there is no explicit release, which is what
// makes handing aliased trees to the plan-cache/service layer safe.
//
// A nil *Arena is valid and falls back to plain `new` for every node —
// the path used by package-level constructors, tests, and nodes that must
// outlive any particular run.
type Arena struct {
	free  sync.Pool // *slab with spare capacity
	nodes atomic.Int64
	slabs atomic.Int64
	// gov, when non-nil, budgets this arena's memory: every new slab is
	// charged against the run's governor, and an exhausted budget aborts
	// the allocating query via governor.Abort (recovered into a typed
	// *ErrBudgetExceeded at the evaluator's containment barriers). Slab
	// granularity keeps the check off the per-node fast path.
	gov *governor.Governor
}

// slabBytes is the memory charged to the governor per slab.
const slabBytes = slabNodes * int64(unsafe.Sizeof(Node{}))

// Engine-wide allocation counters, surfaced in /varz. They deliberately
// count since process start, not per arena.
var (
	arenaNodesTotal atomic.Int64
	arenaSlabsTotal atomic.Int64
	plainNodesTotal atomic.Int64
)

// ArenaTotals reports process-wide witness-node allocation counts:
// arena-backed nodes, slabs allocated, and plain `new` fallbacks (nil
// arena or package-level constructors).
func ArenaTotals() (nodes, slabs, plain int64) {
	return arenaNodesTotal.Load(), arenaSlabsTotal.Load(), plainNodesTotal.Load()
}

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// WithGovernor makes the arena charge its slab allocations against g (nil
// disables budgeting) and returns the arena for chaining. Set once, before
// allocation starts.
func (a *Arena) WithGovernor(g *governor.Governor) *Arena {
	if a != nil {
		a.gov = g
	}
	return a
}

// ArenaStats is a snapshot of one arena's allocation counters.
type ArenaStats struct {
	// Nodes is the number of witness nodes handed out by this arena.
	Nodes int64
	// Slabs is the number of slabs allocated to serve them.
	Slabs int64
}

func (s ArenaStats) String() string {
	return fmt.Sprintf("arena: %d nodes in %d slabs", s.Nodes, s.Slabs)
}

// Stats snapshots the arena's counters. Safe to call concurrently with
// allocation.
func (a *Arena) Stats() ArenaStats {
	if a == nil {
		return ArenaStats{}
	}
	return ArenaStats{Nodes: a.nodes.Load(), Slabs: a.slabs.Load()}
}

// node returns a zeroed witness node. Arena-backed when a is non-nil,
// plain `new` otherwise.
func (a *Arena) node() *Node {
	if a == nil {
		plainNodesTotal.Add(1)
		return &Node{}
	}
	s, _ := a.free.Get().(*slab)
	if s == nil || len(s.buf) == cap(s.buf) {
		if err := a.gov.AddAlloc(slabNodes, slabBytes); err != nil {
			// No error return exists on the node-allocation path; abort the
			// query with a controlled panic the evaluator barriers convert
			// back into the budget error.
			governor.Abort(err)
		}
		s = &slab{buf: make([]Node, 0, slabNodes)}
		a.slabs.Add(1)
		arenaSlabsTotal.Add(1)
	}
	s.buf = append(s.buf, Node{})
	n := &s.buf[len(s.buf)-1]
	a.free.Put(s)
	a.nodes.Add(1)
	arenaNodesTotal.Add(1)
	return n
}

// StoreNode returns a witness node referencing the store node at
// (doc, ord), allocated from the arena. Kind, tag and value are cached
// from the store's columns (tag and value are dictionary-interned
// strings, so caching them copies two string headers, not bytes).
func (a *Arena) StoreNode(doc store.DocID, ord int32, kind xmltree.Kind, tag, value string) *Node {
	n := a.node()
	n.Doc, n.Ord = doc, ord
	n.Kind, n.Tag, n.Value = kind, tag, value
	return n
}

// StoreNodeOf is StoreNode reading the cached fields from the columnar
// document view d (which must be the view of doc).
func (a *Arena) StoreNodeOf(doc store.DocID, ord int32, d *store.Doc) *Node {
	return a.StoreNode(doc, ord, d.Kind(ord), d.Tag(ord), d.Value(ord))
}

// TempElement returns a fresh temporary element node from the arena.
func (a *Arena) TempElement(tag string) *Node {
	n := a.node()
	n.Ord, n.TempID = -1, tempCounter.Add(1)
	n.Kind, n.Tag = xmltree.Element, tag
	return n
}

// TempText returns a fresh temporary text node from the arena.
func (a *Arena) TempText(value string) *Node {
	n := a.node()
	n.Ord, n.TempID = -1, tempCounter.Add(1)
	n.Kind, n.Tag, n.Value = xmltree.Text, xmltree.TextTag, value
	return n
}

// TempAttr returns a fresh temporary attribute node from the arena; name
// is stored with the "@" prefix like stored attributes.
func (a *Arena) TempAttr(name, value string) *Node {
	n := a.node()
	n.Ord, n.TempID = -1, tempCounter.Add(1)
	n.Kind, n.Tag, n.Value = xmltree.Attribute, "@"+name, value
	return n
}

// NewTree returns a tree rooted at root whose future node copies (Mutable,
// Clone) draw from this arena.
func (a *Arena) NewTree(root *Node) *Tree {
	return &Tree{Root: root, arena: a}
}
