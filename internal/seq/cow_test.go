package seq

import (
	"fmt"
	"testing"

	"tlc/internal/xmltree"
)

// buildTempTree makes a small tree root(a(b), c) with classes 1:{a}, 2:{b,c}.
func buildTempTree() (*Tree, *Node, *Node, *Node) {
	root := NewTempElement("root")
	a := NewTempElement("a")
	b := NewTempElement("b")
	c := NewTempElement("c")
	Attach(root, a)
	Attach(a, b)
	Attach(root, c)
	t := NewTree(root)
	t.AddToClass(1, a)
	t.AddToClass(2, b)
	t.AddToClass(2, c)
	return t, a, b, c
}

func TestMutableUnfrozenReturnsSelf(t *testing.T) {
	tr, _, _, _ := buildTempTree()
	if tr.Mutable() != tr {
		t.Error("Mutable on an unfrozen tree must return the tree itself")
	}
	mt, nm := tr.MutableWithMapping()
	if mt != tr {
		t.Error("MutableWithMapping on an unfrozen tree must return the tree itself")
	}
	if got := nm.Get(tr.Root); got != tr.Root {
		t.Error("identity NodeMap must map nodes to themselves")
	}
}

func TestMutableFrozenCopies(t *testing.T) {
	tr, a, b, _ := buildTempTree()
	tr.Freeze()
	if !tr.Frozen() {
		t.Fatal("Freeze did not stick")
	}
	mt, nm := tr.MutableWithMapping()
	if mt == tr {
		t.Fatal("MutableWithMapping on a frozen tree must copy")
	}
	if mt.Frozen() {
		t.Error("the copy must be mutable")
	}
	if nm.Get(a) == a {
		t.Error("mapping must translate original nodes to their copies")
	}
	// Mutating the copy must not show through the frozen original.
	ca := nm.Get(a)
	Detach(nm.Get(b))
	mt.AddToClass(3, ca)
	if len(a.Kids) != 1 {
		t.Errorf("original lost its kid: %d kids, want 1", len(a.Kids))
	}
	if len(tr.ClassAll(3)) != 0 {
		t.Error("class added to the copy leaked into the original")
	}
	// TempIDs carry over, so Identity stays stable across the copy.
	if a.Identity() != ca.Identity() {
		t.Errorf("copy changed node identity: %s vs %s", a.Identity(), ca.Identity())
	}
}

func TestSeqFreezeAndAlias(t *testing.T) {
	t1, _, _, _ := buildTempTree()
	t2, _, _, _ := buildTempTree()
	s := Seq{t1, t2}
	s.Freeze()
	if !t1.Frozen() || !t2.Frozen() {
		t.Fatal("Seq.Freeze must freeze every tree")
	}
	al := s.Alias()
	if &al[0] == &s[0] {
		t.Error("Alias must return a fresh slice")
	}
	if al[0] != s[0] || al[1] != s[1] {
		t.Error("Alias must share the trees themselves")
	}
	// Replacing a tree in the alias (what a consumer's Mutable write-back
	// does) must not disturb the sibling's view.
	al[0] = al[0].Mutable()
	if s[0] != t1 {
		t.Error("write to the aliased slice leaked into the original slice")
	}
}

func TestNodeMapFallsBackToMap(t *testing.T) {
	// Build a chain longer than the linear-scan threshold so the map
	// fallback path is exercised.
	root := NewTempElement("root")
	cur := root
	nodes := []*Node{root}
	for i := 0; i < nodeMapLinearMax+10; i++ {
		n := NewTempElement(fmt.Sprintf("n%d", i))
		Attach(cur, n)
		nodes = append(nodes, n)
		cur = n
	}
	tr := NewTree(root)
	for i, n := range nodes {
		tr.AddToClass(i%5, n)
	}
	tr.Freeze()
	mt, nm := tr.MutableWithMapping()
	for _, n := range nodes {
		cp := nm.Get(n)
		if cp == n {
			t.Fatalf("node %s not mapped", n.Tag)
		}
		if cp.Tag != n.Tag {
			t.Fatalf("mapped to wrong node: %s vs %s", cp.Tag, n.Tag)
		}
	}
	for lcl := 0; lcl < 5; lcl++ {
		if len(mt.ClassAll(lcl)) != len(tr.ClassAll(lcl)) {
			t.Errorf("class %d lost members in the copy", lcl)
		}
	}
}

func TestArenaAllocatesAndCounts(t *testing.T) {
	a := NewArena()
	n := a.TempElement("x")
	if n.Tag != "x" {
		t.Fatal("arena node not initialized")
	}
	// Cross the slab boundary to count slab growth.
	for i := 0; i < slabNodes+5; i++ {
		a.StoreNode(0, int32(i), xmltree.Element, "e", "")
	}
	st := a.Stats()
	if st.Nodes != int64(slabNodes+6) {
		t.Errorf("arena counted %d nodes, want %d", st.Nodes, slabNodes+6)
	}
	if st.Slabs < 2 {
		t.Errorf("arena used %d slabs, want >= 2 after crossing the slab size", st.Slabs)
	}
}

func TestNilArenaFallsBack(t *testing.T) {
	var a *Arena
	n := a.TempText("v")
	if n.Value != "v" || n.IsStore() {
		t.Error("nil arena must still hand out working nodes")
	}
	tr := a.NewTree(n)
	if tr.Arena() != nil {
		t.Error("nil arena tree must report a nil arena")
	}
}

func TestCloneSharesNothing(t *testing.T) {
	tr, a, _, c := buildTempTree()
	cp, nm := tr.CloneWithMapping()
	if nm.Get(a) == a || nm.Get(c) == c {
		t.Fatal("clone mapping must translate to fresh nodes")
	}
	Detach(nm.Get(c))
	if len(tr.Root.Kids) != 2 {
		t.Error("mutating the clone leaked into the original")
	}
	if got, want := len(cp.ClassAll(2)), len(tr.ClassAll(2)); got != want {
		t.Errorf("clone class sizes differ: %d vs %d", got, want)
	}
}
