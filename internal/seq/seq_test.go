package seq

import (
	"strings"
	"testing"
	"testing/quick"

	"tlc/internal/store"
)

const sampleXML = `<site>
  <person id="p0"><name>Alice</name><age>30</age></person>
  <person id="p1"><name>Bob</name></person>
</site>`

func loadSample(t *testing.T) (*store.Store, store.DocID) {
	t.Helper()
	s := store.New()
	id, err := s.LoadXML("s.xml", strings.NewReader(sampleXML))
	if err != nil {
		t.Fatal(err)
	}
	return s, id
}

func storeNode(s *store.Store, id store.DocID, ord int32) *Node {
	return NewStoreNode(id, ord, s.Doc(id))
}

func TestTempIDsMonotone(t *testing.T) {
	a := NewTempElement("a")
	b := NewTempText("x")
	c := NewTempAttr("k", "v")
	if !(a.TempID < b.TempID && b.TempID < c.TempID) {
		t.Errorf("temp ids not monotone: %d %d %d", a.TempID, b.TempID, c.TempID)
	}
	if a.IsStore() {
		t.Error("temp node claims to be store node")
	}
	if c.Tag != "@k" {
		t.Errorf("attr tag = %q", c.Tag)
	}
}

func TestIdentity(t *testing.T) {
	s, id := loadSample(t)
	n1 := storeNode(s, id, 1)
	n1b := storeNode(s, id, 1)
	n2 := storeNode(s, id, 2)
	if n1.Identity() != n1b.Identity() {
		t.Error("same store node, different identity")
	}
	if n1.Identity() == n2.Identity() {
		t.Error("different store nodes, same identity")
	}
	t1, t2 := NewTempElement("x"), NewTempElement("x")
	if t1.Identity() == t2.Identity() {
		t.Error("different temp nodes, same identity")
	}
}

func TestLessOrdering(t *testing.T) {
	s, id := loadSample(t)
	a, b := storeNode(s, id, 1), storeNode(s, id, 5)
	ta, tb := NewTempElement("x"), NewTempElement("y")
	if !Less(a, b) || Less(b, a) {
		t.Error("store order wrong")
	}
	if !Less(ta, tb) || Less(tb, ta) {
		t.Error("temp order wrong")
	}
	if !Less(a, ta) || Less(ta, a) {
		t.Error("store/temp order wrong")
	}
}

func TestClassMembership(t *testing.T) {
	s, id := loadSample(t)
	root := NewTempElement("join_root")
	p := storeNode(s, id, 1)
	Attach(root, p)
	tr := NewTree(root)
	tr.AddToClass(1, root)
	tr.AddToClass(3, p)
	if got := tr.Class(3); len(got) != 1 || got[0] != p {
		t.Fatalf("Class(3) = %v", got)
	}
	if got := tr.Class(99); len(got) != 0 {
		t.Errorf("Class(99) = %v", got)
	}
	n, err := tr.Singleton(3)
	if err != nil || n != p {
		t.Errorf("Singleton(3) = %v, %v", n, err)
	}
	if _, err := tr.Singleton(99); err == nil {
		t.Error("Singleton(99) succeeded")
	}
	tr.AddToClass(3, storeNode(s, id, 8))
	if _, err := tr.Singleton(3); err == nil {
		t.Error("Singleton on 2-member class succeeded")
	}
	if got := tr.Classes(); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("Classes = %v", got)
	}
}

func TestShadowedInvisible(t *testing.T) {
	tr := NewTree(NewTempElement("r"))
	a, b := NewTempElement("a"), NewTempElement("b")
	Attach(tr.Root, a)
	Attach(tr.Root, b)
	tr.AddToClass(2, a)
	tr.AddToClass(2, b)
	a.Shadowed = true
	if got := tr.Class(2); len(got) != 1 || got[0] != b {
		t.Fatalf("Class(2) = %v, want only b", got)
	}
	if got := tr.ClassAll(2); len(got) != 2 {
		t.Fatalf("ClassAll(2) = %v", got)
	}
}

func TestClassOfAndRemove(t *testing.T) {
	tr := NewTree(NewTempElement("r"))
	a := NewTempElement("a")
	Attach(tr.Root, a)
	tr.AddToClass(1, a)
	tr.AddToClass(5, a)
	if got := tr.ClassOf(a); len(got) != 2 || got[0] != 1 || got[1] != 5 {
		t.Errorf("ClassOf = %v", got)
	}
	tr.RemoveFromClasses(a)
	if len(tr.Class(1)) != 0 || len(tr.Class(5)) != 0 {
		t.Error("RemoveFromClasses left members")
	}
}

func TestDetach(t *testing.T) {
	r := NewTempElement("r")
	a, b := NewTempElement("a"), NewTempElement("b")
	Attach(r, a)
	Attach(r, b)
	Detach(a)
	if len(r.Kids) != 1 || r.Kids[0] != b || a.Parent != nil {
		t.Errorf("Detach wrong: kids=%v", r.Kids)
	}
	Detach(a) // detaching an orphan is a no-op
}

func TestCloneIndependence(t *testing.T) {
	s, id := loadSample(t)
	root := NewTempElement("r")
	p := storeNode(s, id, 1)
	Attach(root, p)
	tr := NewTree(root)
	tr.AddToClass(3, p)
	cp := tr.Clone()
	// Structure copied.
	if cp.Root == tr.Root || cp.Root.Kids[0] == p {
		t.Fatal("Clone shares nodes")
	}
	// Class map points into the copy.
	if cp.Class(3)[0] != cp.Root.Kids[0] {
		t.Fatal("clone class map points at original nodes")
	}
	// Mutating the copy leaves the original alone.
	cp.Root.Kids[0].Shadowed = true
	if tr.Class(3)[0].Shadowed {
		t.Error("clone shares Shadowed flag")
	}
	// Temp IDs are preserved: the clone denotes the same logical node.
	if cp.Root.TempID != tr.Root.TempID {
		t.Error("clone changed TempID")
	}
}

func TestContent(t *testing.T) {
	s, id := loadSample(t)
	var ageOrd int32 = -1
	doc := s.Doc(id)
	for i := 0; i < doc.Len(); i++ {
		if doc.Tag(int32(i)) == "age" {
			ageOrd = int32(i)
		}
	}
	if got := Content(s, storeNode(s, id, ageOrd)); got != "30" {
		t.Errorf("Content(age) = %q", got)
	}
	el := NewTempElement("count")
	Attach(el, NewTempText("7"))
	if got := Content(s, el); got != "7" {
		t.Errorf("Content(temp) = %q", got)
	}
	if got := Content(s, NewTempAttr("id", "p9")); got != "p9" {
		t.Errorf("Content(attr) = %q", got)
	}
}

func TestMaterialize(t *testing.T) {
	s, id := loadSample(t)
	s.ResetStats()
	persons := s.Tag(id, "person")
	n := Materialize(s, id, persons[0])
	if !n.Full || len(n.Kids) != 3 {
		t.Fatalf("materialized person: full=%v kids=%d", n.Full, len(n.Kids))
	}
	if got := s.Snapshot().NodesMaterialized; got != int64(s.Doc(id).SubtreeSize(persons[0])) {
		t.Errorf("materialized count = %d", got)
	}
	var names int
	n.Walk(func(m *Node) bool {
		if m.Tag == "name" {
			names++
		}
		return true
	})
	if names != 1 {
		t.Errorf("materialized subtree has %d name nodes", names)
	}
}

func TestXMLSerialization(t *testing.T) {
	s, id := loadSample(t)
	persons := s.Tag(id, "person")
	// Unmaterialized store ref serializes the full store subtree.
	tr := NewTree(storeNode(s, id, persons[0]))
	xml := tr.XML(s)
	if !strings.Contains(xml, "<name>Alice</name>") || !strings.Contains(xml, `id="p0"`) {
		t.Errorf("store ref XML = %s", xml)
	}
	// Constructed tree serializes its kids; shadowed nodes are invisible.
	el := NewTempElement("person")
	Attach(el, NewTempAttr("name", "Alice"))
	hidden := NewTempElement("secret")
	hidden.Shadowed = true
	Attach(el, hidden)
	Attach(el, NewTempText("x<y"))
	out := NewTree(el).XML(s)
	if out != `<person name="Alice">x&lt;y</person>` {
		t.Errorf("constructed XML = %s", out)
	}
}

func TestSeqXML(t *testing.T) {
	s, id := loadSample(t)
	persons := s.Tag(id, "person")
	sq := Seq{NewTree(storeNode(s, id, persons[0])), NewTree(storeNode(s, id, persons[1]))}
	out := sq.XML(s)
	if strings.Count(out, "<person") != 2 || !strings.Contains(out, "\n") {
		t.Errorf("Seq.XML = %s", out)
	}
	cp := sq.Clone()
	if cp[0] == sq[0] || cp[0].Root == sq[0].Root {
		t.Error("Seq.Clone shares trees")
	}
}

// TestQuickLessIsStrictOrder checks that Less is a strict weak order over
// mixed node populations.
func TestQuickLessIsStrictOrder(t *testing.T) {
	s, id := loadSample(t)
	mk := func(sel uint8) *Node {
		if sel%2 == 0 {
			return storeNode(s, id, int32(sel)%int32(s.Doc(id).Len()))
		}
		return NewTempElement("t")
	}
	f := func(a, b, c uint8) bool {
		x, y, z := mk(a), mk(b), mk(c)
		if Less(x, x) || Less(y, y) {
			return false
		}
		if Less(x, y) && Less(y, x) {
			return false
		}
		if Less(x, y) && Less(y, z) && !Less(x, z) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestExpandInPlacePreservesMatchedKids(t *testing.T) {
	s, id := loadSample(t)
	persons := s.Tag(id, "person")
	p := storeNode(s, id, persons[0])
	// Attach a matched witness kid (the @id attribute) and classify it.
	var idOrd int32 = -1
	doc := s.Doc(id)
	for _, c := range doc.Children(persons[0]) {
		if doc.Tag(c) == "@id" {
			idOrd = c
		}
	}
	kid := storeNode(s, id, idOrd)
	Attach(p, kid)
	tr := NewTree(p)
	tr.AddToClass(7, kid)

	ExpandInPlace(s, p)
	if !p.Full {
		t.Fatal("node not expanded")
	}
	// The classified kid is still the same pointer, now among full kids.
	if got := tr.Class(7); len(got) != 1 || got[0] != kid {
		t.Fatal("classified kid lost by expansion")
	}
	found := false
	for _, k := range p.Kids {
		if k == kid {
			found = true
		}
	}
	if !found {
		t.Error("matched kid not reused in expanded child list")
	}
	// All stored children are present exactly once.
	if len(p.Kids) != len(doc.Children(persons[0])) {
		t.Errorf("expanded kids = %d, want %d", len(p.Kids), len(doc.Children(persons[0])))
	}
	// Idempotent.
	ExpandInPlace(s, p)
	if len(p.Kids) != len(doc.Children(persons[0])) {
		t.Error("second expansion changed kids")
	}
}

func TestExpandInPlaceKeepsTemporaries(t *testing.T) {
	s, id := loadSample(t)
	persons := s.Tag(id, "person")
	p := storeNode(s, id, persons[0])
	agg := NewTempElement("count")
	Attach(p, agg)
	ExpandInPlace(s, p)
	found := false
	for _, k := range p.Kids {
		if k == agg {
			found = true
		}
	}
	if !found {
		t.Error("temporary kid dropped by expansion")
	}
}

func TestAppendXMLOnExpandedTree(t *testing.T) {
	s, id := loadSample(t)
	persons := s.Tag(id, "person")
	p := storeNode(s, id, persons[0])
	ExpandInPlace(s, p)
	out := NewTree(p).XML(s)
	if !strings.Contains(out, "<name>Alice</name>") || !strings.Contains(out, `id="p0"`) {
		t.Errorf("expanded XML = %s", out)
	}
}
