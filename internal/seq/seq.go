// Package seq implements the intermediate results flowing between TLC
// algebra operators: sequences of witness trees whose nodes either
// reference stored nodes or are temporary nodes created during evaluation
// (join roots, aggregate results, constructed elements).
//
// Each tree carries its logical class reduction (Definition 4): a map from
// logical class labels to the member nodes within the tree. Operators
// address nodes exclusively through that map, which is what lets them treat
// heterogeneous sets of trees homogeneously.
//
// Temporary node identifiers follow Section 5.1 of the paper: they satisfy
// node-ID properties 1 (uniqueness) and 4 (order within a class) but not
// properties 2–3, avoiding the in-memory renumbering that full dynamic
// interval assignment would require. They are drawn from a process-wide
// monotone counter, so nodes of the same class created in sequence order
// sort correctly.
package seq

import (
	"fmt"
	"sort"
	"sync/atomic"

	"tlc/internal/store"
	"tlc/internal/xmltree"
)

// tempCounter issues temporary node identifiers (properties 1 and 4 of
// Figure 13). It is atomic so the parallel executor's worker goroutines,
// concurrent queries and tests may build trees concurrently.
var tempCounter atomic.Int64

// TempWatermark returns the highest temporary identifier issued so far.
// The parallel executor reads it before scattering a per-tree operator over
// worker goroutines: every identifier issued by the workers is above the
// watermark, which is what lets the gather step renumber exactly the nodes
// this operator created (see RenumberTemps).
func TempWatermark() int64 { return tempCounter.Load() }

// NextTempID issues a fresh temporary identifier without building a node.
// Used by RenumberTemps to re-issue identifiers in deterministic order.
func NextTempID() int64 { return tempCounter.Add(1) }

// RenumberTemps restores property 4 (order within a class follows sequence
// order) after parallel chunk processing: temporary nodes created by
// concurrent workers carry identifiers in whatever order the goroutines
// interleaved, so a node of tree i may outnumber a node of tree j > i.
// Walking the gathered sequence in order and re-issuing identifiers in
// first-encounter order reproduces the assignment a serial left-to-right
// evaluation would have made. Only identifiers above the watermark — nodes
// created by the operator being gathered — are touched, and equal old
// identifiers map to equal new ones, so clone identity (NodeIDDE, identity
// joins) is preserved.
func RenumberTemps(s Seq, watermark int64) {
	remap := make(map[int64]int64)
	renumber := func(n *Node) bool {
		if n.TempID > watermark {
			nid, ok := remap[n.TempID]
			if !ok {
				nid = NextTempID()
				remap[n.TempID] = nid
				// Fresh identifiers are above the watermark too; mapping
				// them to themselves keeps revisits (a node reachable both
				// through the tree walk and a class map) idempotent.
				remap[nid] = nid
			}
			n.TempID = nid
		}
		return true
	}
	for _, t := range s {
		t.Root.Walk(renumber)
		// Class members detached from the tree structure (defensive: well-
		// formed operators attach everything they classify).
		for _, lcl := range t.Classes() {
			for _, m := range t.ClassAll(lcl) {
				renumber(m)
			}
		}
	}
}

// Node is a witness tree node. A node either references a stored node
// (Ord >= 0) or is a temporary node (Ord < 0, TempID > 0).
type Node struct {
	// Doc and Ord locate the referenced store node; Ord is -1 for
	// temporary nodes.
	Doc store.DocID
	Ord int32
	// TempID is the temporary identifier; 0 for store references.
	TempID int64
	// Kind, Tag and Value mirror the node's model data. For store
	// references they are cached copies of the stored record; Value holds
	// attribute/text values only (element content is always read through
	// Content).
	Kind  xmltree.Kind
	Tag   string
	Value string
	// Parent is the node's parent within this witness tree, nil at the root.
	Parent *Node
	// Kids are the node's children within this witness tree. For store
	// references this is in general a *subset* of the stored children:
	// only nodes attached by pattern matching. If Full is set, Kids is the
	// complete materialized child list.
	Kids []*Node
	// Full marks a store reference whose Kids are a complete copy of the
	// stored subtree (set by materialization).
	Full bool
	// Shadowed marks the node invisible to every operator except
	// Illuminate (Definition 6).
	Shadowed bool
}

// NewStoreNode returns a witness node referencing the store node at
// (doc, ord). Kind, tag and value are cached from the record n.
func NewStoreNode(doc store.DocID, ord int32, n *xmltree.Node) *Node {
	return &Node{Doc: doc, Ord: ord, Kind: n.Kind, Tag: n.Tag, Value: n.Value}
}

// NewTempElement returns a fresh temporary element node.
func NewTempElement(tag string) *Node {
	return &Node{Ord: -1, TempID: tempCounter.Add(1), Kind: xmltree.Element, Tag: tag}
}

// NewTempText returns a fresh temporary text node.
func NewTempText(value string) *Node {
	return &Node{Ord: -1, TempID: tempCounter.Add(1), Kind: xmltree.Text, Tag: xmltree.TextTag, Value: value}
}

// NewTempAttr returns a fresh temporary attribute node; name is stored with
// the "@" prefix like stored attributes.
func NewTempAttr(name, value string) *Node {
	return &Node{Ord: -1, TempID: tempCounter.Add(1), Kind: xmltree.Attribute, Tag: "@" + name, Value: value}
}

// IsStore reports whether the node references a stored node.
func (n *Node) IsStore() bool { return n.Ord >= 0 }

// Identity returns a string key unique to the underlying node: the store
// coordinates for store references, the temporary ID otherwise. It is the
// key used by identifier-based duplicate elimination.
func (n *Node) Identity() string {
	if n.IsStore() {
		return fmt.Sprintf("s%d:%d", n.Doc, n.Ord)
	}
	return fmt.Sprintf("t%d", n.TempID)
}

// Less orders nodes for document-order sorts: store references order by
// (document, start) — property 3 — and temporary nodes by creation order —
// property 4. Store references sort before temporaries, which only matters
// when a class mixes both (constructed nodes are "later" than base data).
func Less(a, b *Node) bool {
	as, bs := a.IsStore(), b.IsStore()
	switch {
	case as && bs:
		if a.Doc != b.Doc {
			return a.Doc < b.Doc
		}
		return a.Ord < b.Ord
	case as:
		return true
	case bs:
		return false
	default:
		return a.TempID < b.TempID
	}
}

// Attach links child under parent, keeping Parent pointers consistent.
func Attach(parent, child *Node) {
	child.Parent = parent
	parent.Kids = append(parent.Kids, child)
}

// Walk visits the subtree rooted at n in pre-order, including shadowed
// nodes, until fn returns false.
func (n *Node) Walk(fn func(*Node) bool) bool {
	if !fn(n) {
		return false
	}
	for _, k := range n.Kids {
		if !k.Walk(fn) {
			return false
		}
	}
	return true
}

// Tree is one witness tree together with its logical class reduction.
type Tree struct {
	Root *Node
	// lc maps a logical class label to the member nodes, in the order they
	// were classified (pattern matching classifies in document order).
	lc map[int][]*Node
}

// NewTree returns a tree rooted at root with an empty class map.
func NewTree(root *Node) *Tree {
	return &Tree{Root: root, lc: make(map[int][]*Node)}
}

// AddToClass records n as a member of logical class lcl.
func (t *Tree) AddToClass(lcl int, n *Node) {
	if lcl <= 0 {
		return
	}
	t.lc[lcl] = append(t.lc[lcl], n)
}

// Class returns the active (non-shadowed) members of class lcl. The result
// aliases internal state when no member is shadowed and must not be
// modified by callers.
func (t *Tree) Class(lcl int) []*Node {
	members := t.lc[lcl]
	shadowed := 0
	for _, m := range members {
		if m.Shadowed {
			shadowed++
		}
	}
	if shadowed == 0 {
		return members
	}
	out := make([]*Node, 0, len(members)-shadowed)
	for _, m := range members {
		if !m.Shadowed {
			out = append(out, m)
		}
	}
	return out
}

// ClassAll returns every member of class lcl including shadowed nodes.
func (t *Tree) ClassAll(lcl int) []*Node { return t.lc[lcl] }

// Classes returns the labels present in the tree, sorted.
func (t *Tree) Classes() []int {
	out := make([]int, 0, len(t.lc))
	for l := range t.lc {
		out = append(out, l)
	}
	sort.Ints(out)
	return out
}

// Singleton returns the single active member of class lcl, or an error if
// the class does not bind to exactly one node — the per-operator
// requirement stated in Section 2.3.
func (t *Tree) Singleton(lcl int) (*Node, error) {
	m := t.Class(lcl)
	if len(m) != 1 {
		return nil, fmt.Errorf("seq: logical class %d binds to %d nodes, need exactly 1", lcl, len(m))
	}
	return m[0], nil
}

// ClassOf returns the labels whose class contains n.
func (t *Tree) ClassOf(n *Node) []int {
	var out []int
	for l, members := range t.lc {
		for _, m := range members {
			if m == n {
				out = append(out, l)
				break
			}
		}
	}
	sort.Ints(out)
	return out
}

// RemoveFromClasses removes n (by pointer identity) from every class.
func (t *Tree) RemoveFromClasses(n *Node) {
	for l, members := range t.lc {
		for i, m := range members {
			if m == n {
				t.lc[l] = append(members[:i:i], members[i+1:]...)
				break
			}
		}
	}
}

// Clone returns a deep copy of the tree: fresh Node structs wired
// identically, with the class map rebuilt to point at the copies. Store
// references keep their coordinates; temporary nodes keep their TempIDs
// (a clone denotes the same logical nodes).
func (t *Tree) Clone() *Tree {
	nt, _ := t.CloneWithMapping()
	return nt
}

// CloneWithMapping deep-copies the tree like Clone and additionally returns
// the original-node → copied-node mapping, which operators that must keep
// addressing specific nodes across the copy (extension matching, Flatten,
// Shadow) use to re-locate their targets.
func (t *Tree) CloneWithMapping() (*Tree, map[*Node]*Node) {
	mapping := make(map[*Node]*Node)
	var cp func(*Node, *Node) *Node
	cp = func(n, parent *Node) *Node {
		m := *n
		m.Parent = parent
		m.Kids = make([]*Node, len(n.Kids))
		mapping[n] = &m
		for i, k := range n.Kids {
			m.Kids[i] = cp(k, &m)
		}
		return &m
	}
	nt := NewTree(cp(t.Root, nil))
	for l, members := range t.lc {
		nm := make([]*Node, len(members))
		for i, m := range members {
			if c, ok := mapping[m]; ok {
				nm[i] = c
			} else {
				// Class member detached from the tree structure; keep the
				// original pointer (cannot happen with well-formed trees,
				// but do not silently drop data).
				nm[i] = m
			}
		}
		nt.lc[l] = nm
	}
	return nt, mapping
}

// Detach removes child from its parent's kid list (pointer identity) and
// clears its Parent link. It does not touch class membership.
func Detach(child *Node) {
	p := child.Parent
	if p == nil {
		return
	}
	for i, k := range p.Kids {
		if k == child {
			p.Kids = append(p.Kids[:i:i], p.Kids[i+1:]...)
			break
		}
	}
	child.Parent = nil
}

// Seq is a sequence of witness trees — the value flowing along every
// algebra edge. Order is significant (document order of the results).
type Seq []*Tree

// Clone deep-copies every tree in the sequence.
func (s Seq) Clone() Seq {
	out := make(Seq, len(s))
	for i, t := range s {
		out[i] = t.Clone()
	}
	return out
}
