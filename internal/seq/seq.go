// Package seq implements the intermediate results flowing between TLC
// algebra operators: sequences of witness trees whose nodes either
// reference stored nodes or are temporary nodes created during evaluation
// (join roots, aggregate results, constructed elements).
//
// Each tree carries its logical class reduction (Definition 4): a small
// table from logical class labels to the member nodes within the tree.
// Operators address nodes exclusively through that table, which is what
// lets them treat heterogeneous sets of trees homogeneously.
//
// Trees support copy-on-write sharing: a tree handed to more than one
// consumer is frozen (Freeze) and aliased (Seq.Alias); consumers that only
// read pass the frozen tree through untouched, and consumers that mutate
// first obtain a private copy via Mutable/MutableWithMapping. Unfrozen
// trees are owned by their single consumer and are mutated in place, so
// the linear parts of a plan pay zero copies.
//
// Temporary node identifiers follow Section 5.1 of the paper: they satisfy
// node-ID properties 1 (uniqueness) and 4 (order within a class) but not
// properties 2–3, avoiding the in-memory renumbering that full dynamic
// interval assignment would require. They are drawn from a process-wide
// monotone counter, so nodes of the same class created in sequence order
// sort correctly.
package seq

import (
	"fmt"
	"sort"
	"sync/atomic"

	"tlc/internal/store"
	"tlc/internal/xmltree"
)

// tempCounter issues temporary node identifiers (properties 1 and 4 of
// Figure 13). It is atomic so the parallel executor's worker goroutines,
// concurrent queries and tests may build trees concurrently.
var tempCounter atomic.Int64

// TempWatermark returns the highest temporary identifier issued so far.
// The parallel executor reads it before scattering a per-tree operator over
// worker goroutines: every identifier issued by the workers is above the
// watermark, which is what lets the gather step renumber exactly the nodes
// this operator created (see RenumberTemps).
func TempWatermark() int64 { return tempCounter.Load() }

// NextTempID issues a fresh temporary identifier without building a node.
// Used by RenumberTemps to re-issue identifiers in deterministic order.
func NextTempID() int64 { return tempCounter.Add(1) }

// RenumberTemps restores property 4 (order within a class follows sequence
// order) after parallel chunk processing: temporary nodes created by
// concurrent workers carry identifiers in whatever order the goroutines
// interleaved, so a node of tree i may outnumber a node of tree j > i.
// Walking the gathered sequence in order and re-issuing identifiers in
// first-encounter order reproduces the assignment a serial left-to-right
// evaluation would have made. Only identifiers above the watermark — nodes
// created by the operator being gathered — are touched, and equal old
// identifiers map to equal new ones, so clone identity (NodeIDDE, identity
// joins) is preserved. Callers pass only unfrozen trees: the gathered
// sequences are the operator's own fresh outputs, never shared aliases.
func RenumberTemps(s Seq, watermark int64) {
	remap := make(map[int64]int64)
	renumber := func(n *Node) bool {
		if n.TempID > watermark {
			nid, ok := remap[n.TempID]
			if !ok {
				nid = NextTempID()
				remap[n.TempID] = nid
				// Fresh identifiers are above the watermark too; mapping
				// them to themselves keeps revisits (a node reachable both
				// through the tree walk and a class map) idempotent.
				remap[nid] = nid
			}
			n.TempID = nid
		}
		return true
	}
	for _, t := range s {
		t.Root.Walk(renumber)
		// Class members detached from the tree structure (defensive: well-
		// formed operators attach everything they classify).
		for _, b := range t.lc {
			for _, m := range b.members {
				renumber(m)
			}
		}
	}
}

// Node is a witness tree node. A node either references a stored node
// (Ord >= 0) or is a temporary node (Ord < 0, TempID > 0).
type Node struct {
	// Doc and Ord locate the referenced store node; Ord is -1 for
	// temporary nodes.
	Doc store.DocID
	Ord int32
	// TempID is the temporary identifier; 0 for store references.
	TempID int64
	// Kind, Tag and Value mirror the node's model data. For store
	// references they are cached copies of the stored record; Value holds
	// attribute/text values only (element content is always read through
	// Content).
	Kind  xmltree.Kind
	Tag   string
	Value string
	// Parent is the node's parent within this witness tree, nil at the root.
	Parent *Node
	// Kids are the node's children within this witness tree. For store
	// references this is in general a *subset* of the stored children:
	// only nodes attached by pattern matching. If Full is set, Kids is the
	// complete materialized child list.
	Kids []*Node
	// Full marks a store reference whose Kids are a complete copy of the
	// stored subtree (set by materialization).
	Full bool
	// Shadowed marks the node invisible to every operator except
	// Illuminate (Definition 6).
	Shadowed bool
}

// NewStoreNode returns a witness node referencing the store node at
// (doc, ord). Kind, tag and value are cached from the columnar view d.
func NewStoreNode(doc store.DocID, ord int32, d *store.Doc) *Node {
	return (*Arena)(nil).StoreNodeOf(doc, ord, d)
}

// NewTempElement returns a fresh temporary element node.
func NewTempElement(tag string) *Node {
	return (*Arena)(nil).TempElement(tag)
}

// NewTempText returns a fresh temporary text node.
func NewTempText(value string) *Node {
	return (*Arena)(nil).TempText(value)
}

// NewTempAttr returns a fresh temporary attribute node; name is stored with
// the "@" prefix like stored attributes.
func NewTempAttr(name, value string) *Node {
	return (*Arena)(nil).TempAttr(name, value)
}

// IsStore reports whether the node references a stored node.
func (n *Node) IsStore() bool { return n.Ord >= 0 }

// Identity returns a string key unique to the underlying node: the store
// coordinates for store references, the temporary ID otherwise. It is the
// key used by identifier-based duplicate elimination.
func (n *Node) Identity() string {
	if n.IsStore() {
		return fmt.Sprintf("s%d:%d", n.Doc, n.Ord)
	}
	return fmt.Sprintf("t%d", n.TempID)
}

// Less orders nodes for document-order sorts: store references order by
// (document, start) — property 3 — and temporary nodes by creation order —
// property 4. Store references sort before temporaries, which only matters
// when a class mixes both (constructed nodes are "later" than base data).
func Less(a, b *Node) bool {
	as, bs := a.IsStore(), b.IsStore()
	switch {
	case as && bs:
		if a.Doc != b.Doc {
			return a.Doc < b.Doc
		}
		return a.Ord < b.Ord
	case as:
		return true
	case bs:
		return false
	default:
		return a.TempID < b.TempID
	}
}

// Attach links child under parent, keeping Parent pointers consistent.
func Attach(parent, child *Node) {
	child.Parent = parent
	parent.Kids = append(parent.Kids, child)
}

// Walk visits the subtree rooted at n in pre-order, including shadowed
// nodes, until fn returns false.
func (n *Node) Walk(fn func(*Node) bool) bool {
	if !fn(n) {
		return false
	}
	for _, k := range n.Kids {
		if !k.Walk(fn) {
			return false
		}
	}
	return true
}

// classBucket is one logical class of a tree: the label and its member
// nodes, in the order they were classified (pattern matching classifies in
// document order). Trees carry a handful of classes, so a linear scan over
// a small slice beats a map — and a tree with no classes costs nothing.
type classBucket struct {
	lcl     int
	members []*Node
}

// lcInline is the number of class buckets a tree stores inline before the
// class table spills to the heap. Witness trees bind a handful of classes
// (one per classified pattern node), so four buckets cover the common case
// without any table allocation.
const lcInline = 4

// Tree is one witness tree together with its logical class reduction.
// Trees are always handled by pointer; copying a Tree value would alias
// the inline class-table backing below.
type Tree struct {
	Root *Node
	// lc is the class table; buckets appear in first-classification order.
	// Backed by lc0 until it outgrows it.
	lc  []classBucket
	lc0 [lcInline]classBucket
	// mspill is a bump block member slices are carved from: a fresh class's
	// single-member slice comes from here (full-slice-capped, so growing a
	// class reallocates instead of stomping the neighbour). Most classes
	// stay singletons, so this turns one allocation per class into one per
	// memberSpill classes.
	mspill []*Node
	// arena is the allocator node copies of this tree draw from (nil =
	// plain new). It rides along with the tree so physical operators
	// deep in the call graph allocate from the owning run's arena without
	// signature plumbing.
	arena *Arena
	// frozen marks the tree as shared between consumers: it must not be
	// mutated, only read or copied (Mutable). Set by Freeze at DAG
	// fan-out points; never cleared.
	frozen bool
}

// memberSpill is the size of the member bump block; see Tree.mspill.
const memberSpill = 16

// NewTree returns a tree rooted at root with an empty class table and no
// arena (copies use plain new).
func NewTree(root *Node) *Tree {
	return &Tree{Root: root}
}

// Arena returns the arena this tree's copies allocate from; nil means
// plain new. Operators use it to allocate sibling nodes (join roots,
// constructed elements) into the same run-scoped slabs.
func (t *Tree) Arena() *Arena { return t.arena }

// Freeze marks the tree shared: from now on it must not be mutated.
// Operators needing to restructure it obtain a private copy via Mutable.
// Freezing is idempotent and never reversed — a frozen tree may be read
// (and copied) concurrently, provided the freeze happened-before the reads
// (the evaluator freezes before publishing a result to other consumers).
func (t *Tree) Freeze() { t.frozen = true }

// Frozen reports whether the tree is shared (copy before mutating).
func (t *Tree) Frozen() bool { return t.frozen }

// Mutable returns a tree the caller may mutate: t itself when unfrozen
// (single consumer owns it), a private deep copy otherwise.
func (t *Tree) Mutable() *Tree {
	if !t.frozen {
		return t
	}
	nt, _ := t.cloneTree()
	return nt
}

// MutableWithMapping is Mutable for callers holding pointers at t's nodes:
// the returned NodeMap translates original nodes to their counterparts in
// the returned tree (the identity when no copy was needed).
func (t *Tree) MutableWithMapping() (*Tree, NodeMap) {
	if !t.frozen {
		return t, NodeMap{}
	}
	return t.cloneTree()
}

// bucket returns the members slice index for lcl, or -1.
func (t *Tree) bucket(lcl int) int {
	for i := range t.lc {
		if t.lc[i].lcl == lcl {
			return i
		}
	}
	return -1
}

// AddToClass records n as a member of logical class lcl.
func (t *Tree) AddToClass(lcl int, n *Node) {
	if lcl <= 0 {
		return
	}
	if i := t.bucket(lcl); i >= 0 {
		t.lc[i].members = append(t.lc[i].members, n)
		return
	}
	if t.lc == nil {
		t.lc = t.lc0[:0]
	}
	t.lc = append(t.lc, classBucket{lcl: lcl, members: t.newMembers(n)})
}

// newMembers carves a one-element member slice for n out of the spill
// block, starting a fresh block when the current one is full. The slice is
// full-slice-capped: appending a second member reallocates it onto the
// heap, leaving the spill block untouched.
func (t *Tree) newMembers(n *Node) []*Node {
	if len(t.mspill) == cap(t.mspill) {
		t.mspill = make([]*Node, 0, memberSpill)
	}
	t.mspill = append(t.mspill, n)
	return t.mspill[len(t.mspill)-1 : len(t.mspill) : len(t.mspill)]
}

// Class returns the active (non-shadowed) members of class lcl. The result
// aliases internal state when no member is shadowed and must not be
// modified by callers.
func (t *Tree) Class(lcl int) []*Node {
	i := t.bucket(lcl)
	if i < 0 {
		return nil
	}
	members := t.lc[i].members
	shadowed := 0
	for _, m := range members {
		if m.Shadowed {
			shadowed++
		}
	}
	if shadowed == 0 {
		return members
	}
	out := make([]*Node, 0, len(members)-shadowed)
	for _, m := range members {
		if !m.Shadowed {
			out = append(out, m)
		}
	}
	return out
}

// ClassAll returns every member of class lcl including shadowed nodes.
func (t *Tree) ClassAll(lcl int) []*Node {
	if i := t.bucket(lcl); i >= 0 {
		return t.lc[i].members
	}
	return nil
}

// Classes returns the labels present in the tree, sorted.
func (t *Tree) Classes() []int {
	out := make([]int, 0, len(t.lc))
	for i := range t.lc {
		out = append(out, t.lc[i].lcl)
	}
	sort.Ints(out)
	return out
}

// Singleton returns the single active member of class lcl, or an error if
// the class does not bind to exactly one node — the per-operator
// requirement stated in Section 2.3.
func (t *Tree) Singleton(lcl int) (*Node, error) {
	m := t.Class(lcl)
	if len(m) != 1 {
		return nil, fmt.Errorf("seq: logical class %d binds to %d nodes, need exactly 1", lcl, len(m))
	}
	return m[0], nil
}

// ClassOf returns the labels whose class contains n.
func (t *Tree) ClassOf(n *Node) []int {
	var out []int
	for i := range t.lc {
		for _, m := range t.lc[i].members {
			if m == n {
				out = append(out, t.lc[i].lcl)
				break
			}
		}
	}
	sort.Ints(out)
	return out
}

// RemoveFromClasses removes n (by pointer identity) from every class.
func (t *Tree) RemoveFromClasses(n *Node) {
	for i := range t.lc {
		members := t.lc[i].members
		for j, m := range members {
			if m == n {
				t.lc[i].members = append(members[:j:j], members[j+1:]...)
				break
			}
		}
	}
}

// nodeMapLinearMax is the subtree size above which NodeMap switches from a
// linear pointer scan to a hash map. Witness trees are typically a handful
// of nodes, where scanning a pair of slices beats allocating a map.
const nodeMapLinearMax = 64

// NodeMap translates original nodes to their copies after a deep copy
// (CopySubtree, CloneWithMapping, MutableWithMapping). The zero NodeMap is
// the identity. Nodes not covered by the copy map to themselves — the
// caller's pointer is already the right one.
type NodeMap struct {
	orig, cp []*Node         // parallel pre-order pairs
	m        map[*Node]*Node // built once the pair list outgrows linear scan
}

// Get returns the copy corresponding to n, or n itself when n was not part
// of the copied subtree (including the identity NodeMap).
func (nm NodeMap) Get(n *Node) *Node {
	if nm.m != nil {
		if c, ok := nm.m[n]; ok {
			return c
		}
		return n
	}
	for i, o := range nm.orig {
		if o == n {
			return nm.cp[i]
		}
	}
	return n
}

// add records one original/copy pair.
func (nm *NodeMap) add(o, c *Node) {
	nm.orig = append(nm.orig, o)
	nm.cp = append(nm.cp, c)
}

// seal switches to map lookups when the pair list is large.
func (nm *NodeMap) seal() {
	if len(nm.orig) <= nodeMapLinearMax {
		return
	}
	nm.m = make(map[*Node]*Node, len(nm.orig))
	for i, o := range nm.orig {
		nm.m[o] = nm.cp[i]
	}
}

// copySubtree deep-copies the subtree under n into nodes from a, recording
// original/copy pairs in nm.
func copySubtree(a *Arena, n, parent *Node, nm *NodeMap) *Node {
	c := a.node()
	*c = *n
	c.Parent = parent
	nm.add(n, c)
	if len(n.Kids) == 0 {
		c.Kids = nil
		return c
	}
	c.Kids = make([]*Node, len(n.Kids))
	for i, k := range n.Kids {
		c.Kids[i] = copySubtree(a, k, c, nm)
	}
	return c
}

// CopySubtree deep-copies the subtree rooted at n, allocating from a (nil
// = plain new), and returns the copied root plus the original→copy
// mapping. Store references keep their coordinates; temporary nodes keep
// their TempIDs (a copy denotes the same logical nodes).
func CopySubtree(a *Arena, n *Node) (*Node, NodeMap) {
	var nm NodeMap
	root := copySubtree(a, n, nil, &nm)
	nm.seal()
	return root, nm
}

// cloneTree deep-copies the tree and rebuilds its class table against the
// copies. The copy is unfrozen and draws from the same arena.
func (t *Tree) cloneTree() (*Tree, NodeMap) {
	var nm NodeMap
	root := copySubtree(t.arena, t.Root, nil, &nm)
	nm.seal()
	nt := &Tree{Root: root, arena: t.arena}
	if len(t.lc) > 0 {
		if len(t.lc) <= lcInline {
			nt.lc = nt.lc0[:len(t.lc)]
		} else {
			nt.lc = make([]classBucket, len(t.lc))
		}
		// One backing array for all member slices of the copy; full-slice
		// caps keep a later AddToClass on one class from overwriting the
		// next class's members.
		total := 0
		for i := range t.lc {
			total += len(t.lc[i].members)
		}
		backing := make([]*Node, 0, total)
		for i, b := range t.lc {
			start := len(backing)
			for _, m := range b.members {
				// Class members detached from the tree structure keep the
				// original pointer (cannot happen with well-formed trees,
				// but do not silently drop data) — Get's fallback.
				backing = append(backing, nm.Get(m))
			}
			nt.lc[i] = classBucket{lcl: b.lcl, members: backing[start:len(backing):len(backing)]}
		}
	}
	return nt, nm
}

// Clone returns a deep copy of the tree: fresh Node structs wired
// identically, with the class table rebuilt to point at the copies. Store
// references keep their coordinates; temporary nodes keep their TempIDs
// (a clone denotes the same logical nodes).
func (t *Tree) Clone() *Tree {
	nt, _ := t.cloneTree()
	return nt
}

// CloneWithMapping deep-copies the tree like Clone and additionally returns
// the original-node → copied-node mapping, which operators that must keep
// addressing specific nodes across the copy (extension matching, Flatten,
// Shadow) use to re-locate their targets.
func (t *Tree) CloneWithMapping() (*Tree, NodeMap) {
	return t.cloneTree()
}

// Detach removes child from its parent's kid list (pointer identity) and
// clears its Parent link. It does not touch class membership.
func Detach(child *Node) {
	p := child.Parent
	if p == nil {
		return
	}
	for i, k := range p.Kids {
		if k == child {
			p.Kids = append(p.Kids[:i:i], p.Kids[i+1:]...)
			break
		}
	}
	child.Parent = nil
}

// Seq is a sequence of witness trees — the value flowing along every
// algebra edge. Order is significant (document order of the results).
type Seq []*Tree

// Clone deep-copies every tree in the sequence.
func (s Seq) Clone() Seq {
	out := make(Seq, len(s))
	for i, t := range s {
		out[i] = t.Clone()
	}
	return out
}

// Freeze marks every tree in the sequence shared. The evaluator calls it
// once before handing the sequence to multiple consumers; it must
// happen-before any consumer reads the trees (the evaluator publishes
// under its memo lock / future close).
func (s Seq) Freeze() {
	for _, t := range s {
		t.frozen = true
	}
}

// Alias returns a fresh slice sharing the frozen trees — the per-consumer
// handout at DAG fan-out points. Each consumer owns its slice (it may
// filter, reorder, or replace elements) while the trees themselves stay
// shared until a consumer needs a Mutable copy.
func (s Seq) Alias() Seq {
	out := make(Seq, len(s))
	copy(out, s)
	return out
}
