package seq

import (
	"strings"

	"tlc/internal/store"
	"tlc/internal/xmltree"
)

// Content returns the textual content of a witness node: element content is
// read through the store for store references (concatenated direct text
// children) and computed from temporary kids otherwise; attributes and text
// nodes return their value directly.
func Content(st *store.Store, n *Node) string {
	switch n.Kind {
	case xmltree.Attribute, xmltree.Text:
		return n.Value
	}
	if n.IsStore() {
		return st.Content(n.Doc, n.Ord)
	}
	var sb strings.Builder
	for _, k := range n.Kids {
		if k.Kind == xmltree.Text {
			sb.WriteString(Content(st, k))
		}
	}
	return sb.String()
}

// Materialize copies the complete stored subtree under the store reference
// at (doc, ord) into witness nodes and returns its root. Every copied node
// is counted as materialized — this is the cost that TAX's early
// materialization pays up front and TLC defers to Construct.
func Materialize(st *store.Store, doc store.DocID, ord int32) *Node {
	return MaterializeIn(nil, st, doc, ord)
}

// MaterializeIn is Materialize with the copied nodes drawn from arena a
// (nil = plain new).
func MaterializeIn(a *Arena, st *store.Store, doc store.DocID, ord int32) *Node {
	d := st.Doc(doc)
	st.CountMaterializedDoc(doc, d.SubtreeSize(ord))
	var build func(int32, *Node) *Node
	build = func(o int32, parent *Node) *Node {
		n := a.StoreNodeOf(doc, o, d)
		n.Parent = parent
		n.Full = true
		for _, c := range d.Children(o) {
			n.Kids = append(n.Kids, build(c, n))
		}
		return n
	}
	return build(ord, nil)
}

// ExpandInPlace materializes the full stored subtree under the store
// reference n while *preserving* the witness nodes already attached to it:
// existing kids referencing a stored child are reused (and expanded
// recursively), so their logical class memberships survive; missing
// children are copied in. Non-store kids (temporary nodes such as
// aggregate results) are kept after the stored children. This is the
// materialization used by the TAX baseline's early-materialization step.
func ExpandInPlace(st *store.Store, n *Node) {
	ExpandInPlaceIn(nil, st, n)
}

// ExpandInPlaceIn is ExpandInPlace with the copied-in nodes drawn from
// arena a (nil = plain new). The caller must own n's tree (unfrozen).
func ExpandInPlaceIn(a *Arena, st *store.Store, n *Node) {
	if !n.IsStore() || n.Full {
		return
	}
	st.CountMaterializedDoc(n.Doc, st.Doc(n.Doc).SubtreeSize(n.Ord)-1)
	expandInPlace(a, st, n)
}

func expandInPlace(a *Arena, st *store.Store, n *Node) {
	d := st.Doc(n.Doc)
	existing := make(map[int32][]*Node)
	var leftovers []*Node
	for _, k := range n.Kids {
		if k.IsStore() && k.Doc == n.Doc {
			existing[k.Ord] = append(existing[k.Ord], k)
		} else {
			leftovers = append(leftovers, k)
		}
	}
	var kids []*Node
	for _, c := range d.Children(n.Ord) {
		if reuse := existing[c]; len(reuse) > 0 {
			k := reuse[0]
			existing[c] = reuse[1:]
			if !k.Full {
				expandInPlace(a, st, k)
			}
			kids = append(kids, k)
			continue
		}
		cp := buildFull(a, d, n.Doc, c, n)
		kids = append(kids, cp)
	}
	// Duplicate witness references to the same stored child (redundant
	// branch matches) ride along after the canonical children, still
	// classified but not duplicated into the stored child list.
	for _, rest := range existing {
		leftovers = append(leftovers, rest...)
	}
	n.Kids = kids
	for _, k := range kids {
		k.Parent = n
	}
	for _, k := range leftovers {
		k.Parent = n
		n.Kids = append(n.Kids, k)
	}
	n.Full = true
}

func buildFull(a *Arena, d *store.Doc, doc store.DocID, ord int32, parent *Node) *Node {
	n := a.StoreNodeOf(doc, ord, d)
	n.Parent = parent
	n.Full = true
	for _, c := range d.Children(ord) {
		n.Kids = append(n.Kids, buildFull(a, d, doc, c, n))
	}
	return n
}

// AppendXML serializes the witness subtree under n to sb. Store references
// that have not been materialized (Full unset) are serialized directly from
// the store — the store subtree is authoritative for them; partial matched
// kids are scaffolding, not content. Temporary nodes serialize their kids.
// Shadowed nodes are invisible to output.
func AppendXML(sb *strings.Builder, st *store.Store, n *Node) {
	if n.Shadowed {
		return
	}
	if n.IsStore() && !n.Full {
		st.CountMaterializedDoc(n.Doc, st.Doc(n.Doc).SubtreeSize(n.Ord))
		sb.WriteString(st.Doc(n.Doc).XML(n.Ord))
		return
	}
	switch n.Kind {
	case xmltree.Text:
		xmlEscape(sb, n.Value)
		return
	case xmltree.Attribute:
		sb.WriteString(n.Tag[1:])
		sb.WriteString(`="`)
		xmlEscape(sb, n.Value)
		sb.WriteString(`"`)
		return
	}
	sb.WriteByte('<')
	sb.WriteString(n.Tag)
	var body []*Node
	for _, k := range n.Kids {
		if k.Shadowed {
			continue
		}
		if k.Kind == xmltree.Attribute {
			sb.WriteByte(' ')
			sb.WriteString(k.Tag[1:])
			sb.WriteString(`="`)
			xmlEscape(sb, k.Value)
			sb.WriteString(`"`)
		} else {
			body = append(body, k)
		}
	}
	if len(body) == 0 {
		sb.WriteString("/>")
		return
	}
	sb.WriteByte('>')
	for _, k := range body {
		AppendXML(sb, st, k)
	}
	sb.WriteString("</")
	sb.WriteString(n.Tag)
	sb.WriteByte('>')
}

// XML returns the XML serialization of the whole tree.
func (t *Tree) XML(st *store.Store) string {
	var sb strings.Builder
	AppendXML(&sb, st, t.Root)
	return sb.String()
}

// XML returns the serialization of every tree in the sequence, newline
// separated — the shape the example binaries print.
func (s Seq) XML(st *store.Store) string {
	var sb strings.Builder
	for i, t := range s {
		if i > 0 {
			sb.WriteByte('\n')
		}
		AppendXML(&sb, st, t.Root)
	}
	return sb.String()
}

func xmlEscape(sb *strings.Builder, s string) {
	for _, r := range s {
		switch r {
		case '<':
			sb.WriteString("&lt;")
		case '>':
			sb.WriteString("&gt;")
		case '&':
			sb.WriteString("&amp;")
		case '"':
			sb.WriteString("&quot;")
		default:
			sb.WriteRune(r)
		}
	}
}
