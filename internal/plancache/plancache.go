// Package plancache caches compiled query plans (tlc.Prepared) behind an
// LRU keyed on everything that determines compilation output: the query
// text, the engine, and the planner and parallelism options. Because a
// Prepared is safe for concurrent Run calls (the plan DAG is immutable
// after compile; per-run state lives in the evaluation context), one
// cached entry can serve many concurrent requests — the cache is what
// turns the service's per-request compile cost into a one-time cost per
// distinct query.
//
// Invalidation is by database generation: every successful document load
// bumps tlc.Database.Generation(), and the first lookup that observes a
// new generation flushes the whole cache. Plans embed document references
// and the cost-based planner's decisions embed the statistics catalog, so
// any load can invalidate any plan; flushing everything is both correct
// and cheap at the load rates a query service sees.
package plancache

import (
	"container/list"
	"context"
	"sync"

	"tlc"
	"tlc/internal/faultinject"
)

// Key identifies a compilation: two requests with equal keys get the same
// Prepared back.
type Key struct {
	// Query is the exact query text (no normalization: whitespace-different
	// queries compile separately, which keeps the key cheap and exact).
	Query string
	// Engine is the evaluation engine.
	Engine tlc.Engine
	// PlannerOff mirrors tlc.WithPlanner(false).
	PlannerOff bool
	// Parallelism mirrors tlc.WithParallelism; it is baked into the
	// Prepared at compile time, so it must be part of the key.
	Parallelism int
	// Limits mirrors tlc.WithLimits: the resource budget is baked into the
	// Prepared too, so differently-budgeted requests must not share plans.
	// tlc.Limits is a flat comparable struct, so it keys directly.
	Limits tlc.Limits
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	// Hits counts lookups served from the cache.
	Hits uint64 `json:"hits"`
	// Misses counts lookups that had to compile.
	Misses uint64 `json:"misses"`
	// Evictions counts entries dropped to capacity pressure.
	Evictions uint64 `json:"evictions"`
	// Invalidations counts entries flushed by a generation change.
	Invalidations uint64 `json:"invalidations"`
	// Size and Capacity describe the current occupancy.
	Size     int `json:"size"`
	Capacity int `json:"capacity"`
}

type entry struct {
	key  Key
	prep *tlc.Prepared
}

// Cache is a fixed-capacity LRU of compiled plans. The zero value is not
// usable; call New.
type Cache struct {
	mu       sync.Mutex
	capacity int
	gen      uint64 // database generation the cached plans were compiled at
	byKey    map[Key]*list.Element
	order    *list.List // front = most recently used

	hits, misses, evictions, invalidations uint64
}

// New returns an empty cache holding at most capacity plans (minimum 1).
func New(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		capacity: capacity,
		byKey:    make(map[Key]*list.Element, capacity),
		order:    list.New(),
	}
}

// Load returns the cached Prepared for key, compiling it on a miss. The
// bool reports whether the lookup was a hit. Compilation runs outside the
// cache lock, so a slow compile never blocks hits for other keys;
// concurrent misses for the same key may compile twice, and the last
// finisher's plan stays cached (both plans are valid, so either may be
// handed out).
func (c *Cache) Load(ctx context.Context, db *tlc.Database, key Key) (*tlc.Prepared, bool, error) {
	gen := db.Generation()

	c.mu.Lock()
	c.flushIfStale(gen)
	if el, ok := c.byKey[key]; ok {
		c.hits++
		c.order.MoveToFront(el)
		prep := el.Value.(*entry).prep
		c.mu.Unlock()
		return prep, true, nil
	}
	c.misses++
	c.mu.Unlock()

	if err := faultinject.Hit(faultinject.PointPlanCacheFill); err != nil {
		return nil, false, err
	}
	opts := []tlc.Option{
		tlc.WithEngine(key.Engine),
		tlc.WithPlanner(!key.PlannerOff),
		tlc.WithParallelism(key.Parallelism),
		tlc.WithLimits(key.Limits),
	}
	prep, err := db.CompileContext(ctx, key.Query, opts...)
	if err != nil {
		return nil, false, err
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	// A load may have landed while we compiled; a plan compiled against the
	// old store must not enter the cache (it is still returned — the caller
	// observed the old generation, which is the best a racing request can
	// claim anyway).
	if db.Generation() != gen {
		return prep, false, nil
	}
	c.flushIfStale(gen)
	if el, ok := c.byKey[key]; ok {
		// A concurrent miss beat us here; keep the incumbent entry hot and
		// hand out our own compile.
		c.order.MoveToFront(el)
		return prep, false, nil
	}
	el := c.order.PushFront(&entry{key: key, prep: prep})
	c.byKey[key] = el
	for c.order.Len() > c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.byKey, oldest.Value.(*entry).key)
		c.evictions++
	}
	return prep, false, nil
}

// flushIfStale drops every entry if gen differs from the generation the
// cached plans were compiled at. Caller holds c.mu.
func (c *Cache) flushIfStale(gen uint64) {
	if gen == c.gen {
		return
	}
	c.invalidations += uint64(c.order.Len())
	c.order.Init()
	c.byKey = make(map[Key]*list.Element, c.capacity)
	c.gen = gen
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:          c.hits,
		Misses:        c.misses,
		Evictions:     c.evictions,
		Invalidations: c.invalidations,
		Size:          c.order.Len(),
		Capacity:      c.capacity,
	}
}
