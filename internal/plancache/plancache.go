// Package plancache caches compiled query plans (tlc.Prepared) behind an
// LRU keyed on everything that determines compilation output: the
// canonicalized query, the engine, and the planner and parallelism
// options. Because a Prepared is safe for concurrent Run calls (the plan
// DAG is immutable after compile; per-run state lives in the evaluation
// context), one cached entry can serve many concurrent requests — the
// cache is what turns the service's per-request compile cost into a
// one-time cost per distinct query.
//
// Keying is by canonical form, not raw text: tlc.Canonicalize α-renames
// variables and renders deterministically, so two spellings of the same
// query (different variable names, whitespace) share one entry. On an
// exact miss the cache additionally probes a structural-signature index
// with the canonical Struct key (liftable predicate literals elided): a
// cached plan whose predicates are implied by the new query's serves the
// request through tlc.Prepared.WithResidual — the plan is reused with
// residual filters grafted above the owning Selects, skipping parse,
// translate, rewrite and planning entirely. Exact and containment hits
// are counted separately.
//
// Invalidation is by shard generation and document version: every
// successful document load bumps the owning shard's generation, and every
// committed update bumps only the mutated document's version. Each cached
// entry records both the generations of the shards its plan's documents
// route to and the versions of those documents at compile time; a lookup
// revalidates exactly that footprint — so loading a document invalidates
// the plans whose input shards moved, and updating a document invalidates
// only the plans that reference that document, not every plan on its
// shard. Plans whose document footprint cannot be fully resolved (no
// document references, or a referenced document not yet loaded — the
// cases where the planner falls back to whole-database statistics scope)
// keep the conservative whole-database generation check (which updates
// also bump), and Flush remains the whole-cache path for schema-wide
// changes.
package plancache

import (
	"container/list"
	"context"
	"sync"

	"tlc"
	"tlc/internal/faultinject"
)

// Key identifies a compilation: two requests with equal keys get the same
// Prepared back.
type Key struct {
	// Query is the query text as submitted. Internally the cache indexes
	// by the canonical form (see tlc.Canonicalize), so queries differing
	// only in variable names or whitespace share an entry.
	Query string
	// Engine is the evaluation engine.
	Engine tlc.Engine
	// PlannerOff mirrors tlc.WithPlanner(false).
	PlannerOff bool
	// Parallelism mirrors tlc.WithParallelism; it is baked into the
	// Prepared at compile time, so it must be part of the key.
	Parallelism int
	// Limits mirrors tlc.WithLimits: the resource budget is baked into the
	// Prepared too, so differently-budgeted requests must not share plans.
	// tlc.Limits is a flat comparable struct, so it keys directly.
	Limits tlc.Limits
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	// Hits counts lookups served from the cache (exact + containment).
	Hits uint64 `json:"hits"`
	// HitsExact counts lookups whose canonical key matched an entry.
	HitsExact uint64 `json:"plan_hits_exact"`
	// HitsContainment counts lookups served by reusing a subsuming plan
	// with residual filters.
	HitsContainment uint64 `json:"plan_hits_containment"`
	// ContainmentProbes counts exact misses that consulted the structural
	// signature index (whether or not a subsuming plan was found).
	ContainmentProbes uint64 `json:"containment_probes"`
	// Misses counts lookups that had to compile.
	Misses uint64 `json:"misses"`
	// Evictions counts entries dropped to capacity pressure.
	Evictions uint64 `json:"evictions"`
	// Invalidations counts entries dropped because a shard, a referenced
	// document's version, or (for footprint-less plans) the whole database
	// moved past their compile-time record, plus entries removed by Flush.
	Invalidations uint64 `json:"invalidations"`
	// Size and Capacity describe the current occupancy.
	Size     int `json:"size"`
	Capacity int `json:"capacity"`
}

type entry struct {
	key  Key // canonical: key.Query is the canonical Exact string
	prep *tlc.Prepared
	// structKey is key with Query replaced by the canonical Struct string;
	// set (and indexed) only for containable entries.
	structKey Key
	// canonSites / predSites align elementwise: canonical literal site i is
	// the translator's predicate site i. Recorded only when the entry is
	// containable.
	canonSites []tlc.CanonicalSite
	predSites  []tlc.PredSite
	// containable marks entries eligible to serve containment reuse: an
	// eligible engine whose canonicalizer and translator agree on every
	// predicate site.
	containable bool
	// shardGens maps each shard the plan's referenced documents route to
	// onto that shard's generation at compile time; the entry is valid
	// while every recorded shard still reports its recorded generation.
	// nil marks a conservatively scoped entry validated against gen.
	shardGens map[int]uint64
	// docVers maps each referenced document onto its MVCC version at
	// compile time. Commits bump a document's version without touching its
	// shard's load generation, so this is what invalidates per document:
	// an update to one document drops only the plans that reference it.
	// Set exactly when shardGens is.
	docVers map[string]uint64
	// gen is the whole-database generation at compile time, used only when
	// shardGens is nil.
	gen uint64
}

// Cache is a fixed-capacity LRU of compiled plans. The zero value is not
// usable; call New.
type Cache struct {
	mu       sync.Mutex
	capacity int
	byKey    map[Key]*list.Element
	// byStruct indexes containable entries by their structural-signature
	// key; a signature can be shared by several entries differing only in
	// liftable literal values.
	byStruct map[Key][]*list.Element
	order    *list.List // front = most recently used

	hits, hitsExact, hitsContainment, containmentProbes uint64
	misses, evictions, invalidations                    uint64
}

// New returns an empty cache holding at most capacity plans (minimum 1).
func New(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		capacity: capacity,
		byKey:    make(map[Key]*list.Element, capacity),
		byStruct: make(map[Key][]*list.Element),
		order:    list.New(),
	}
}

// containmentEngine reports whether an engine's plans can serve
// containment reuse. TLCOpt is excluded: the Section 4 rewrites (Flatten,
// Shadow, pattern reuse) restructure class membership in ways the residual
// filter's one-member-per-tree premise does not survive. Nav has no plan.
func containmentEngine(e tlc.Engine) bool {
	return e == tlc.TLC || e == tlc.GTP || e == tlc.TAX
}

// valid reports whether an entry's recorded generations still match the
// database: per recorded shard for footprint-scoped entries, the whole
// database generation otherwise.
func valid(db *tlc.Database, e *entry) bool {
	if e.shardGens == nil {
		return db.Generation() == e.gen
	}
	for sh, g := range e.shardGens {
		if db.ShardGeneration(sh) != g {
			return false
		}
	}
	for name, v := range e.docVers {
		if cur, ok := db.DocumentVersion(name); !ok || cur != v {
			return false
		}
	}
	return true
}

// footprint resolves a compiled plan's shard-generation and
// document-version record against the pre-compile snapshots. It returns
// nils when the plan references no documents or references one that is
// not loaded — the cases where compilation (planner statistics scope,
// name resolution) may depend on documents beyond the footprint, which
// must keep whole-database validity.
func footprint(db *tlc.Database, prep *tlc.Prepared, gens []uint64, vers map[string]uint64) (map[int]uint64, map[string]uint64) {
	docs := prep.Documents()
	if len(docs) == 0 {
		return nil, nil
	}
	shards := make(map[int]uint64, len(docs))
	dv := make(map[string]uint64, len(docs))
	for _, name := range docs {
		v, loaded := vers[name]
		if !loaded {
			return nil, nil
		}
		dv[name] = v
		sh := db.ShardOfDocument(name)
		if sh >= 0 && sh < len(gens) {
			shards[sh] = gens[sh]
		}
	}
	return shards, dv
}

// remove drops one entry from the LRU and both indexes. Caller holds mu.
func (c *Cache) remove(el *list.Element) {
	e := el.Value.(*entry)
	c.order.Remove(el)
	delete(c.byKey, e.key)
	if e.containable {
		peers := c.byStruct[e.structKey]
		for i, p := range peers {
			if p == el {
				peers = append(peers[:i], peers[i+1:]...)
				break
			}
		}
		if len(peers) == 0 {
			delete(c.byStruct, e.structKey)
		} else {
			c.byStruct[e.structKey] = peers
		}
	}
}

// probeContainment scans the structural-signature peers of skey for a
// valid entry whose predicates the new query's imply, and derives a
// residual-filtered Prepared from it. Caller holds mu.
func (c *Cache) probeContainment(db *tlc.Database, skey Key, sites []tlc.CanonicalSite) (*tlc.Prepared, bool) {
	for _, el := range c.byStruct[skey] {
		e := el.Value.(*entry)
		if !valid(db, e) || len(e.canonSites) != len(sites) {
			continue
		}
		var residuals []tlc.ResidualSite
		ok := true
		for i, s := range sites {
			cs := e.canonSites[i]
			if s.Op == cs.Op && s.Value == cs.Value {
				continue
			}
			// The predicates differ: only a liftable site may (non-liftable
			// comparisons are inline in the struct key), and only when the
			// new predicate implies the cached one — cross-op entailments
			// like age = 30 under age > 18 included. WithResidual re-verifies
			// the implication at the pattern-tree level before grafting.
			if !cs.Liftable || !e.predSites[i].Liftable {
				ok = false
				break
			}
			if !impliesSite(s, cs) {
				ok = false
				break
			}
			residuals = append(residuals, tlc.ResidualSite{LCL: e.predSites[i].LCL, Op: s.Op, Value: s.Value})
		}
		if !ok {
			continue
		}
		if len(residuals) == 0 {
			// Identical predicate values: the entry serves as-is.
			c.order.MoveToFront(el)
			return e.prep, true
		}
		derived, ok := e.prep.WithResidual(residuals)
		if !ok {
			continue
		}
		c.order.MoveToFront(el)
		return derived, true
	}
	return nil, false
}

// impliesSite wraps pattern.Implies over two canonical sites.
func impliesSite(strong, weak tlc.CanonicalSite) bool {
	return tlc.SiteImplies(strong.Op, strong.Value, weak.Op, weak.Value)
}

// Load returns the cached Prepared for key, compiling it on a miss. The
// bool reports whether the lookup was a hit (exact or containment).
// Compilation runs outside the cache lock, so a slow compile never blocks
// hits for other keys; concurrent misses for the same key may compile
// twice, and the last finisher's plan stays cached (both plans are valid,
// so either may be handed out).
func (c *Cache) Load(ctx context.Context, db *tlc.Database, key Key) (*tlc.Prepared, bool, error) {
	// Snapshot the generations and document versions before compiling: a
	// load or update landing during the compile must make the freshly
	// compiled plan uncacheable (it may have seen a half-updated catalog),
	// which the post-compile re-check below detects by comparing against
	// this snapshot.
	gen := db.Generation()
	gens := db.ShardGenerations()
	vers := db.DocumentVersions()

	canon, canonErr := tlc.Canonicalize(key.Query)
	ekey := key
	var skey Key
	if canonErr == nil {
		ekey.Query = canon.Exact
		skey = key
		skey.Query = canon.Struct
	}
	// A query the canonicalizer cannot parse cannot compile either; fall
	// through to CompileContext for the authoritative error.

	if canonErr == nil {
		c.mu.Lock()
		if el, ok := c.byKey[ekey]; ok {
			e := el.Value.(*entry)
			if valid(db, e) {
				c.hits++
				c.hitsExact++
				c.order.MoveToFront(el)
				prep := e.prep
				c.mu.Unlock()
				return prep, true, nil
			}
			// Stale: one of the plan's input shards moved. Drop just this
			// entry; plans on untouched shards stay cached.
			c.remove(el)
			c.invalidations++
		}
		if containmentEngine(key.Engine) {
			c.containmentProbes++
			if prep, ok := c.probeContainment(db, skey, canon.Sites); ok {
				c.hits++
				c.hitsContainment++
				c.mu.Unlock()
				return prep, true, nil
			}
		}
		c.misses++
		c.mu.Unlock()
	} else {
		c.mu.Lock()
		c.misses++
		c.mu.Unlock()
	}

	if err := faultinject.Hit(faultinject.PointPlanCacheFill); err != nil {
		return nil, false, err
	}
	opts := []tlc.Option{
		tlc.WithEngine(key.Engine),
		tlc.WithPlanner(!key.PlannerOff),
		tlc.WithParallelism(key.Parallelism),
		tlc.WithLimits(key.Limits),
	}
	prep, err := db.CompileContext(ctx, key.Query, opts...)
	if err != nil {
		return nil, false, err
	}
	if canonErr != nil {
		// Unparseable for the canonicalizer yet compiled? Impossible today
		// (both start from xquery.Parse); hand the plan out uncached.
		return prep, false, nil
	}
	shardGens, docVers := footprint(db, prep, gens, vers)
	e := &entry{key: ekey, prep: prep, shardGens: shardGens, docVers: docVers, gen: gen}
	e.fillContainment(key, skey, canon)

	c.mu.Lock()
	defer c.mu.Unlock()
	// A load may have landed on one of the plan's shards while we compiled;
	// such a plan must not enter the cache (it is still returned — the
	// caller observed the old generations, which is the best a racing
	// request can claim anyway).
	if !valid(db, e) {
		return prep, false, nil
	}
	if el, ok := c.byKey[ekey]; ok && valid(db, el.Value.(*entry)) {
		// A concurrent miss beat us here; keep the incumbent entry hot and
		// hand out our own compile.
		c.order.MoveToFront(el)
		return prep, false, nil
	} else if ok {
		c.remove(el)
		c.invalidations++
	}
	el := c.order.PushFront(e)
	c.byKey[ekey] = el
	if e.containable {
		c.byStruct[e.structKey] = append(c.byStruct[e.structKey], el)
	}
	for c.order.Len() > c.capacity {
		oldest := c.order.Back()
		c.remove(oldest)
		c.evictions++
	}
	return prep, false, nil
}

// fillContainment decides whether the freshly compiled entry may serve
// containment reuse and records the aligned site lists if so. The
// canonicalizer's parse-level liftability judgment must not outrun the
// translator's: a site the canonicalizer elided from the struct key but
// the translator cannot lift residually makes the whole entry exact-only.
func (e *entry) fillContainment(key, skey Key, canon *tlc.Canonical) {
	if !containmentEngine(key.Engine) {
		return
	}
	ps := e.prep.PredSites()
	if len(ps) != len(canon.Sites) {
		return
	}
	anyLiftable := false
	for i, cs := range canon.Sites {
		if ps[i].Op != cs.Op || ps[i].Value != cs.Value {
			return
		}
		if cs.Liftable && !ps[i].Liftable {
			return
		}
		if cs.Liftable {
			anyLiftable = true
		}
	}
	if !anyLiftable {
		return
	}
	e.structKey = skey
	e.canonSites = canon.Sites
	e.predSites = ps
	e.containable = true
}

// Flush drops every entry — the whole-cache invalidation path for
// schema-wide changes that per-shard generations cannot describe.
func (c *Cache) Flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.invalidations += uint64(c.order.Len())
	c.order.Init()
	c.byKey = make(map[Key]*list.Element, c.capacity)
	c.byStruct = make(map[Key][]*list.Element)
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:              c.hits,
		HitsExact:         c.hitsExact,
		HitsContainment:   c.hitsContainment,
		ContainmentProbes: c.containmentProbes,
		Misses:            c.misses,
		Evictions:         c.evictions,
		Invalidations:     c.invalidations,
		Size:              c.order.Len(),
		Capacity:          c.capacity,
	}
}
