package plancache

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"tlc"
)

// parityXML holds enough value spread that weak and strict thresholds
// select different, non-empty result sets — a residual filter that does
// nothing would be caught.
const parityXML = `<site>
  <person id="p0"><name>Alice</name><age>30</age></person>
  <person id="p1"><name>Bob</name><age>20</age></person>
  <person id="p2"><name>Carol</name><age>40</age></person>
  <person id="p3"><name>Dave</name><age>55</age></person>
  <person id="p4"><name>Eve</name><age>35</age></person>
  <person id="p5"><name>Frank</name></person>
</site>`

func newParityDB(t *testing.T, shards int) *tlc.Database {
	t.Helper()
	db := tlc.Open(tlc.WithShards(shards))
	if err := db.LoadXMLString("a.xml", parityXML); err != nil {
		t.Fatal(err)
	}
	return db
}

// sortedResults evaluates prep and returns its result trees serialized and
// sorted — the byte-identity representative.
func sortedResults(t *testing.T, db *tlc.Database, prep *tlc.Prepared) string {
	t.Helper()
	res, err := db.Run(prep)
	if err != nil {
		t.Fatal(err)
	}
	return strings.Join(res.SortedXML(), "\n")
}

// TestContainmentParity seeds the cache with a weak-threshold query and
// then loads stricter variants: each must be served by containment (no
// compile) and produce results byte-identical to a fresh compilation of
// the same text — per containment-capable engine, at one shard and four.
func TestContainmentParity(t *testing.T) {
	const weak = `FOR $p IN document("a.xml")//person WHERE $p/age > 18 RETURN $p/name`
	stricter := []string{
		`FOR $p IN document("a.xml")//person WHERE $p/age > 32 RETURN $p/name`,
		`FOR $p IN document("a.xml")//person WHERE $p/age > 50 RETURN $p/name`,
		`FOR $p IN document("a.xml")//person WHERE $p/age >= 40 RETURN $p/name`,
		`FOR $p IN document("a.xml")//person WHERE $p/age = 30 RETURN $p/name`,
	}
	for _, shards := range []int{1, 4} {
		for _, eng := range []tlc.Engine{tlc.TLC, tlc.GTP, tlc.TAX} {
			t.Run(fmt.Sprintf("%s/shards=%d", eng, shards), func(t *testing.T) {
				db := newParityDB(t, shards)
				c := New(16)
				if _, hit, err := c.Load(context.Background(), db, Key{Query: weak, Engine: eng}); err != nil {
					t.Fatal(err)
				} else if hit {
					t.Fatal("seed load reported a hit")
				}
				for _, q := range stricter {
					before := c.Stats()
					prep, hit, err := c.Load(context.Background(), db, Key{Query: q, Engine: eng})
					if err != nil {
						t.Fatal(err)
					}
					after := c.Stats()
					if !hit || after.HitsContainment != before.HitsContainment+1 {
						t.Fatalf("%q: want a containment hit, got hit=%v stats %+v", q, hit, after)
					}
					if after.Misses != before.Misses {
						t.Fatalf("%q: containment hit still compiled (misses %d -> %d)", q, before.Misses, after.Misses)
					}
					fresh, err := db.Compile(q, tlc.WithEngine(eng))
					if err != nil {
						t.Fatal(err)
					}
					got, want := sortedResults(t, db, prep), sortedResults(t, db, fresh)
					if got != want {
						t.Errorf("%q: containment-served results differ from fresh compile.\ncontainment:\n%s\nfresh:\n%s", q, got, want)
					}
					if got == "" {
						t.Errorf("%q: empty result set exercises nothing", q)
					}
				}
			})
		}
	}
}

// TestContainmentWeakerMisses checks the direction of the lattice: a query
// weaker than everything cached must compile, not be served by containment
// (the cached match set would be too small).
func TestContainmentWeakerMisses(t *testing.T) {
	db := newParityDB(t, 1)
	c := New(16)
	strict := `FOR $p IN document("a.xml")//person WHERE $p/age > 50 RETURN $p/name`
	weak := `FOR $p IN document("a.xml")//person WHERE $p/age > 18 RETURN $p/name`
	if _, _, err := c.Load(context.Background(), db, Key{Query: strict}); err != nil {
		t.Fatal(err)
	}
	prep, hit, err := c.Load(context.Background(), db, Key{Query: weak})
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("a weaker query must not be served from a stricter cached plan")
	}
	if got := sortedResults(t, db, prep); !strings.Contains(got, "Bob") {
		t.Errorf("weak query results missing Bob: %s", got)
	}
}

// TestContainmentAlphaEquivalence: queries differing only in variable
// naming and whitespace share one cache entry via the canonical exact key.
func TestContainmentAlphaEquivalence(t *testing.T) {
	db := newParityDB(t, 1)
	c := New(16)
	a := `FOR $p IN document("a.xml")//person WHERE $p/age > 25 RETURN $p/name`
	b := `FOR  $q  IN document("a.xml")//person
		WHERE $q/age > 25
		RETURN $q/name`
	if _, _, err := c.Load(context.Background(), db, Key{Query: a}); err != nil {
		t.Fatal(err)
	}
	before := c.Stats()
	_, hit, err := c.Load(context.Background(), db, Key{Query: b})
	if err != nil {
		t.Fatal(err)
	}
	after := c.Stats()
	if !hit || after.HitsExact != before.HitsExact+1 {
		t.Errorf("alpha-equivalent query missed the exact index: hit=%v stats %+v", hit, after)
	}
	if after.Size != 1 {
		t.Errorf("alpha-equivalent queries created %d entries, want 1", after.Size)
	}
}

// TestContainmentNavExcluded: the navigational engine evaluates the AST
// directly (no plan to graft a residual onto), so its entries never serve
// containment.
func TestContainmentNavExcluded(t *testing.T) {
	db := newParityDB(t, 1)
	c := New(16)
	weak := `FOR $p IN document("a.xml")//person WHERE $p/age > 18 RETURN $p/name`
	strict := `FOR $p IN document("a.xml")//person WHERE $p/age > 50 RETURN $p/name`
	if _, _, err := c.Load(context.Background(), db, Key{Query: weak, Engine: tlc.Nav}); err != nil {
		t.Fatal(err)
	}
	_, hit, err := c.Load(context.Background(), db, Key{Query: strict, Engine: tlc.Nav})
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("Nav entries must not serve containment")
	}
}

// TestContainmentConcurrent hammers one cache from many goroutines with a
// mix of exact repeats and stricter variants; run under -race this checks
// the byStruct index and the shared Prepared reuse for data races, and the
// counters must add up to the operation count.
func TestContainmentConcurrent(t *testing.T) {
	db := newParityDB(t, 4)
	c := New(16)
	if _, _, err := c.Load(context.Background(), db,
		Key{Query: `FOR $p IN document("a.xml")//person WHERE $p/age > 18 RETURN $p/name`}); err != nil {
		t.Fatal(err)
	}
	const goroutines, iters = 8, 25
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				threshold := 19 + (g*7+i*3)%30
				q := fmt.Sprintf(`FOR $p IN document("a.xml")//person WHERE $p/age > %d RETURN $p/name`, threshold)
				prep, _, err := c.Load(context.Background(), db, Key{Query: q})
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := db.Run(prep); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits+st.Misses != goroutines*iters+1 {
		t.Errorf("hits %d + misses %d != %d ops", st.Hits, st.Misses, goroutines*iters+1)
	}
	if st.HitsContainment == 0 {
		t.Error("concurrent mix produced no containment hits")
	}
	if st.HitsExact+st.HitsContainment != st.Hits {
		t.Errorf("exact %d + containment %d != total hits %d", st.HitsExact, st.HitsContainment, st.Hits)
	}
}
